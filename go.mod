module github.com/edge-hdc/generic

go 1.22
