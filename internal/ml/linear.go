package ml

import (
	"math"

	"github.com/edge-hdc/generic/internal/rng"
)

// LinearKind distinguishes the two linear baselines, which share the
// one-weight-vector-per-class architecture but differ in loss.
type LinearKind int

const (
	// HingeSVM trains one-vs-rest linear SVMs with the Pegasos
	// stochastic sub-gradient solver.
	HingeSVM LinearKind = iota
	// SoftmaxLR trains multinomial logistic regression with SGD.
	SoftmaxLR
)

// LinearConfig parameterizes linear-model training.
type LinearConfig struct {
	Kind   LinearKind
	Epochs int     // default 30
	Lambda float64 // L2 regularization (default 1e-4)
	LR     float64 // SoftmaxLR learning rate (default 0.1)
	Seed   uint64
}

func (c LinearConfig) withDefaults() LinearConfig {
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.Lambda == 0 {
		c.Lambda = 1e-4
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	return c
}

// Linear is a trained linear multi-class model: scores = Wx + b.
type Linear struct {
	w       [][]float64 // [classes][features]
	b       []float64
	classes int
}

// FitLinear trains a linear classifier per cfg.Kind.
func FitLinear(X [][]float64, y []int, classes int, cfg LinearConfig) *Linear {
	checkXY(X, y, classes)
	cfg = cfg.withDefaults()
	nf := len(X[0])
	m := &Linear{classes: classes, b: make([]float64, classes)}
	m.w = make([][]float64, classes)
	for c := range m.w {
		m.w[c] = make([]float64, nf)
	}
	switch cfg.Kind {
	case HingeSVM:
		m.fitPegasos(X, y, cfg)
	case SoftmaxLR:
		m.fitSoftmax(X, y, cfg)
	}
	return m
}

// fitPegasos trains one-vs-rest SVMs with the averaged Pegasos schedule
// (Shalev-Shwartz et al.): step 1/(λt) on the hinge sub-gradient, returning
// the running average of the iterates, which converges far more stably than
// the last iterate on imbalanced one-vs-rest splits.
func (m *Linear) fitPegasos(X [][]float64, y []int, cfg LinearConfig) {
	r := rng.New(cfg.Seed)
	n := len(X)
	nf := len(X[0])
	counts := make([]int, m.classes)
	for _, yi := range y {
		counts[yi]++
	}
	for c := 0; c < m.classes; c++ {
		// Balanced example weights keep the one-vs-rest scores calibrated
		// around zero even for minority classes (sklearn's
		// class_weight="balanced").
		posW := float64(n) / (2 * float64(counts[c]))
		negW := float64(n) / (2 * float64(n-counts[c]))
		w := make([]float64, nf)
		avgW := make([]float64, nf)
		b, avgB := 0.0, 0.0
		t := 0
		avgN := 0.0
		radius := 1 / math.Sqrt(cfg.Lambda)
		burnIn := n // skip the first epoch's iterates in the average
		for e := 0; e < cfg.Epochs; e++ {
			for k := 0; k < n; k++ {
				t++
				i := r.Intn(n)
				yi, wi := -1.0, negW
				if y[i] == c {
					yi, wi = 1, posW
				}
				eta := 1 / (cfg.Lambda * float64(t))
				margin := b
				for j, v := range X[i] {
					margin += w[j] * v
				}
				// L2 shrink.
				decay := 1 - eta*cfg.Lambda
				for j := range w {
					w[j] *= decay
				}
				if yi*margin < 1 {
					step := eta * yi * wi
					for j, v := range X[i] {
						w[j] += step * v
					}
					b += step
				}
				// Pegasos projection: keep w inside the 1/√λ ball, which
				// bounds the iterates and is required for convergence with
				// large feature norms.
				var norm2 float64
				for _, v := range w {
					norm2 += v * v
				}
				if norm2 > radius*radius {
					scale := radius / math.Sqrt(norm2)
					for j := range w {
						w[j] *= scale
					}
					b *= scale
				}
				// Running average of post-burn-in iterates.
				if t > burnIn {
					avgN++
					inv := 1 / avgN
					for j := range avgW {
						avgW[j] += (w[j] - avgW[j]) * inv
					}
					avgB += (b - avgB) * inv
				}
			}
		}
		if avgN == 0 {
			copy(avgW, w)
			avgB = b
		}
		copy(m.w[c], avgW)
		m.b[c] = avgB
	}
	// Normalize each one-vs-rest hyperplane to unit weight norm so the
	// argmax compares signed geometric margins: raw Pegasos scores have
	// per-class scales that depend on convergence dynamics and would make
	// the one-vs-rest decision meaningless.
	for c := 0; c < m.classes; c++ {
		var norm float64
		for _, v := range m.w[c] {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		for j := range m.w[c] {
			m.w[c][j] /= norm
		}
		m.b[c] /= norm
	}
}

// fitSoftmax trains multinomial logistic regression with plain SGD and a
// 1/√epoch learning-rate decay.
func (m *Linear) fitSoftmax(X [][]float64, y []int, cfg LinearConfig) {
	r := rng.New(cfg.Seed)
	n := len(X)
	scores := make([]float64, m.classes)
	probs := make([]float64, m.classes)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for e := 0; e < cfg.Epochs; e++ {
		lr := cfg.LR / math.Sqrt(float64(e+1))
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			x := X[i]
			for c := 0; c < m.classes; c++ {
				s := m.b[c]
				w := m.w[c]
				for j, v := range x {
					s += w[j] * v
				}
				scores[c] = s
			}
			softmax(scores, probs)
			for c := 0; c < m.classes; c++ {
				g := probs[c]
				if c == y[i] {
					g -= 1
				}
				w := m.w[c]
				for j, v := range x {
					w[j] -= lr * (g*v + cfg.Lambda*w[j])
				}
				m.b[c] -= lr * g
			}
		}
	}
}

func softmax(scores, out []float64) {
	max := scores[0]
	for _, s := range scores[1:] {
		if s > max {
			max = s
		}
	}
	var sum float64
	for i, s := range scores {
		out[i] = math.Exp(s - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}

// Predict returns argmax_c w_c·x + b_c.
func (m *Linear) Predict(x []float64) int {
	best, bestS := 0, math.Inf(-1)
	for c := 0; c < m.classes; c++ {
		s := m.b[c]
		w := m.w[c]
		for j, v := range x {
			s += w[j] * v
		}
		if s > bestS {
			best, bestS = c, s
		}
	}
	return best
}

// InferenceOps counts one MAC per weight plus the argmax.
func (m *Linear) InferenceOps() int64 {
	if len(m.w) == 0 {
		return 0
	}
	return int64(len(m.w))*int64(len(m.w[0])+1) + int64(m.classes)
}

// KNN is a k-nearest-neighbors classifier (the paper evaluates and then
// discards it for accuracy; it remains here for the device-efficiency
// comparisons of Fig. 3).
type KNN struct {
	X       [][]float64
	y       []int
	k       int
	classes int
}

// FitKNN stores the training set.
func FitKNN(X [][]float64, y []int, classes, k int) *KNN {
	checkXY(X, y, classes)
	if k < 1 {
		k = 1
	}
	if k > len(X) {
		k = len(X)
	}
	return &KNN{X: X, y: y, k: k, classes: classes}
}

// Predict votes among the k nearest training points (Euclidean).
func (m *KNN) Predict(x []float64) int {
	type cand struct {
		d float64
		y int
	}
	// Keep the k best with a simple insertion pass; k is small.
	best := make([]cand, 0, m.k)
	for i, xi := range m.X {
		var d float64
		for j, v := range xi {
			dv := v - x[j]
			d += dv * dv
		}
		if len(best) < m.k {
			best = append(best, cand{d, m.y[i]})
			for p := len(best) - 1; p > 0 && best[p].d < best[p-1].d; p-- {
				best[p], best[p-1] = best[p-1], best[p]
			}
		} else if d < best[m.k-1].d {
			best[m.k-1] = cand{d, m.y[i]}
			for p := m.k - 1; p > 0 && best[p].d < best[p-1].d; p-- {
				best[p], best[p-1] = best[p-1], best[p]
			}
		}
	}
	votes := make([]int, m.classes)
	for _, c := range best {
		votes[c.y]++
	}
	bi, bn := 0, -1
	for c, n := range votes {
		if n > bn {
			bi, bn = c, n
		}
	}
	return bi
}

// InferenceOps counts distance MACs over the stored training set.
func (m *KNN) InferenceOps() int64 {
	if len(m.X) == 0 {
		return 0
	}
	return int64(len(m.X)) * int64(len(m.X[0])) * 2
}
