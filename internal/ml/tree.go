package ml

import (
	"math"
	"sort"

	"github.com/edge-hdc/generic/internal/rng"
)

// TreeConfig parameterizes CART decision trees.
type TreeConfig struct {
	MaxDepth        int // 0 means unlimited
	MinSamplesLeaf  int // minimum samples per leaf (default 1)
	MaxFeatures     int // features tried per split; 0 means all (√d for forests)
	MinImpurityDrop float64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinSamplesLeaf == 0 {
		c.MinSamplesLeaf = 1
	}
	return c
}

type treeNode struct {
	feature  int // -1 for leaf
	thresh   float64
	left     int // child indices into Tree.nodes
	right    int
	class    int
	nSamples int
}

// Tree is a trained CART decision tree with gini-impurity splits.
type Tree struct {
	nodes   []treeNode
	classes int
	depth   int
}

// FitTree trains a decision tree.
func FitTree(X [][]float64, y []int, classes int, cfg TreeConfig, seed uint64) *Tree {
	checkXY(X, y, classes)
	cfg = cfg.withDefaults()
	t := &Tree{classes: classes}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	r := rng.New(seed)
	t.build(X, y, idx, cfg, 0, r)
	return t
}

// build grows the subtree over the samples in idx and returns its node index.
func (t *Tree) build(X [][]float64, y []int, idx []int, cfg TreeConfig, depth int, r *rng.Rand) int {
	if depth > t.depth {
		t.depth = depth
	}
	counts := make([]int, t.classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	major, majorN := 0, 0
	for c, n := range counts {
		if n > majorN {
			major, majorN = c, n
		}
	}
	nodeIdx := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{feature: -1, class: major, nSamples: len(idx)})

	pure := majorN == len(idx)
	if pure || len(idx) < 2*cfg.MinSamplesLeaf || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return nodeIdx
	}

	feat, thresh, gain := t.bestSplit(X, y, idx, cfg, r)
	if feat < 0 || gain <= cfg.MinImpurityDrop {
		return nodeIdx
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinSamplesLeaf || len(right) < cfg.MinSamplesLeaf {
		return nodeIdx
	}
	l := t.build(X, y, left, cfg, depth+1, r)
	rt := t.build(X, y, right, cfg, depth+1, r)
	t.nodes[nodeIdx].feature = feat
	t.nodes[nodeIdx].thresh = thresh
	t.nodes[nodeIdx].left = l
	t.nodes[nodeIdx].right = rt
	return nodeIdx
}

// bestSplit scans candidate features for the gini-optimal threshold.
func (t *Tree) bestSplit(X [][]float64, y []int, idx []int, cfg TreeConfig, r *rng.Rand) (feature int, thresh, gain float64) {
	nf := len(X[0])
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if cfg.MaxFeatures > 0 && cfg.MaxFeatures < nf {
		r.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:cfg.MaxFeatures]
	}

	parentGini := giniOf(y, idx, t.classes)
	bestGain := 0.0
	feature = -1

	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, len(idx))
	leftCounts := make([]int, t.classes)
	rightCounts := make([]int, t.classes)

	for _, f := range features {
		for k, i := range idx {
			vals[k] = fv{X[i][f], y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		for c := range leftCounts {
			leftCounts[c] = 0
			rightCounts[c] = 0
		}
		for _, v := range vals {
			rightCounts[v.y]++
		}
		nLeft, nRight := 0, len(vals)
		for k := 0; k < len(vals)-1; k++ {
			leftCounts[vals[k].y]++
			rightCounts[vals[k].y]--
			nLeft++
			nRight--
			if vals[k].v == vals[k+1].v {
				continue // cannot split between equal values
			}
			g := parentGini - (float64(nLeft)*gini(leftCounts, nLeft)+
				float64(nRight)*gini(rightCounts, nRight))/float64(len(vals))
			if g > bestGain {
				bestGain = g
				feature = f
				thresh = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	return feature, thresh, bestGain
}

func giniOf(y []int, idx []int, classes int) float64 {
	counts := make([]int, classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	return gini(counts, len(idx))
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		s -= p * p
	}
	return s
}

// Predict walks the tree to a leaf.
func (t *Tree) Predict(x []float64) int {
	n := 0
	for {
		node := &t.nodes[n]
		if node.feature < 0 {
			return node.class
		}
		if x[node.feature] <= node.thresh {
			n = node.left
		} else {
			n = node.right
		}
	}
}

// Depth returns the trained tree depth; Nodes the node count.
func (t *Tree) Depth() int { return t.depth }
func (t *Tree) Nodes() int { return len(t.nodes) }

// InferenceOps estimates one comparison per level walked (average depth/2
// rounded up to depth for a conservative bound).
func (t *Tree) InferenceOps() int64 { return int64(t.depth) }

// Forest is a bagged random forest of CART trees.
type Forest struct {
	trees   []*Tree
	classes int
}

// ForestConfig parameterizes random-forest training.
type ForestConfig struct {
	Trees    int // default 100 (scikit-learn default, as the paper uses)
	MaxDepth int
	Seed     uint64
}

// FitForest trains a random forest: each tree sees a bootstrap sample and
// √d random features per split.
func FitForest(X [][]float64, y []int, classes int, cfg ForestConfig) *Forest {
	checkXY(X, y, classes)
	if cfg.Trees == 0 {
		cfg.Trees = 100
	}
	nf := len(X[0])
	maxFeat := int(math.Sqrt(float64(nf)))
	if maxFeat < 1 {
		maxFeat = 1
	}
	r := rng.New(cfg.Seed)
	f := &Forest{classes: classes, trees: make([]*Tree, cfg.Trees)}
	bx := make([][]float64, len(X))
	by := make([]int, len(X))
	for k := range f.trees {
		for i := range bx {
			j := r.Intn(len(X))
			bx[i], by[i] = X[j], y[j]
		}
		f.trees[k] = FitTree(bx, by, classes, TreeConfig{
			MaxDepth:    cfg.MaxDepth,
			MaxFeatures: maxFeat,
		}, r.Uint64())
	}
	return f
}

// Predict returns the majority vote across trees.
func (f *Forest) Predict(x []float64) int {
	votes := make([]int, f.classes)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// InferenceOps sums the per-tree costs plus the vote.
func (f *Forest) InferenceOps() int64 {
	var ops int64
	for _, t := range f.trees {
		ops += t.InferenceOps()
	}
	return ops + int64(f.classes)
}
