// Package ml implements the classical machine-learning baselines the paper
// compares HDC against (Table 1, Figs. 3/8/9): decision-tree random
// forests, linear SVM (Pegasos), logistic regression, k-nearest neighbors,
// and multi-layer perceptrons (the "DNN" baseline is a deeper MLP). All are
// built from scratch on the standard library so the repository is
// self-contained and the device energy models can count their operations
// exactly.
package ml

import "fmt"

// Classifier is a trained multi-class model.
type Classifier interface {
	// Predict returns the class index for one feature vector.
	Predict(x []float64) int
	// InferenceOps estimates the arithmetic operations (MACs/comparisons)
	// one prediction costs, used by the device energy models.
	InferenceOps() int64
}

// PredictAll applies a classifier to every row.
func PredictAll(c Classifier, X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = c.Predict(x)
	}
	return out
}

// Accuracy scores a classifier against labels.
func Accuracy(c Classifier, X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i, x := range X {
		if c.Predict(x) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

func checkXY(X [][]float64, y []int, classes int) {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("ml: bad training set: %d samples, %d labels", len(X), len(y)))
	}
	if classes < 2 {
		panic(fmt.Sprintf("ml: need at least 2 classes, got %d", classes))
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			panic(fmt.Sprintf("ml: label %d at row %d out of range [0,%d)", label, i, classes))
		}
	}
}

func argmax(xs []float64) int {
	best, bestV := 0, xs[0]
	for i, v := range xs[1:] {
		if v > bestV {
			best, bestV = i+1, v
		}
	}
	return best
}
