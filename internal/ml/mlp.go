package ml

import (
	"math"

	"github.com/edge-hdc/generic/internal/rng"
)

// MLPConfig parameterizes multi-layer-perceptron training. The paper's
// "MLP" baseline is one hidden layer; its "DNN" baseline (found via
// AutoKeras) is modeled as a deeper, wider MLP (see DNNConfig).
type MLPConfig struct {
	Hidden    []int   // hidden layer sizes, e.g. {128}
	Epochs    int     // default 40
	BatchSize int     // default 32
	LR        float64 // Adam learning rate, default 1e-3
	L2        float64 // weight decay, default 1e-5
	Seed      uint64
}

func (c MLPConfig) withDefaults() MLPConfig {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{128}
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.L2 == 0 {
		c.L2 = 1e-5
	}
	return c
}

// DNNConfig returns the deeper configuration used as the paper's DNN
// baseline stand-in.
func DNNConfig(seed uint64) MLPConfig {
	return MLPConfig{Hidden: []int{256, 128, 64}, Epochs: 60, Seed: seed}
}

type layer struct {
	in, out int
	w       []float64 // row-major [out][in]
	b       []float64
	// Adam moments.
	mw, vw []float64
	mb, vb []float64
}

// MLP is a feed-forward ReLU network trained with Adam on softmax
// cross-entropy.
type MLP struct {
	layers  []*layer
	classes int
	// scratch per Predict call (single-threaded use).
	acts [][]float64
}

// FitMLP trains an MLP.
func FitMLP(X [][]float64, y []int, classes int, cfg MLPConfig) *MLP {
	checkXY(X, y, classes)
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	sizes := append([]int{len(X[0])}, cfg.Hidden...)
	sizes = append(sizes, classes)
	m := &MLP{classes: classes}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		ly := &layer{
			in: in, out: out,
			w: make([]float64, in*out), b: make([]float64, out),
			mw: make([]float64, in*out), vw: make([]float64, in*out),
			mb: make([]float64, out), vb: make([]float64, out),
		}
		// He initialization for ReLU.
		scale := math.Sqrt(2 / float64(in))
		for i := range ly.w {
			ly.w[i] = scale * r.NormFloat64()
		}
		m.layers = append(m.layers, ly)
	}
	m.acts = make([][]float64, len(m.layers)+1)
	for l, s := range sizes {
		m.acts[l] = make([]float64, s)
	}
	m.train(X, y, cfg, r)
	return m
}

func (m *MLP) train(X [][]float64, y []int, cfg MLPConfig, r *rng.Rand) {
	n := len(X)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Gradient buffers mirroring layers.
	gw := make([][]float64, len(m.layers))
	gb := make([][]float64, len(m.layers))
	deltas := make([][]float64, len(m.layers))
	for l, ly := range m.layers {
		gw[l] = make([]float64, len(ly.w))
		gb[l] = make([]float64, len(ly.b))
		deltas[l] = make([]float64, ly.out)
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0
	for e := 0; e < cfg.Epochs; e++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			for l := range gw {
				zero(gw[l])
				zero(gb[l])
			}
			for _, i := range order[start:end] {
				m.forward(X[i])
				// Output delta: softmax − one-hot.
				out := m.acts[len(m.layers)]
				softmax(out, deltas[len(m.layers)-1])
				deltas[len(m.layers)-1][y[i]] -= 1
				// Backward pass.
				for l := len(m.layers) - 1; l >= 0; l-- {
					ly := m.layers[l]
					din := m.acts[l]
					delta := deltas[l]
					for o := 0; o < ly.out; o++ {
						d := delta[o]
						if d == 0 {
							continue
						}
						row := ly.w[o*ly.in : (o+1)*ly.in]
						grow := gw[l][o*ly.in : (o+1)*ly.in]
						for j, v := range din {
							grow[j] += d * v
						}
						gb[l][o] += d
						_ = row
					}
					if l > 0 {
						prev := deltas[l-1]
						zero(prev)
						for o := 0; o < ly.out; o++ {
							d := delta[o]
							if d == 0 {
								continue
							}
							row := ly.w[o*ly.in : (o+1)*ly.in]
							for j := range prev {
								prev[j] += d * row[j]
							}
						}
						// ReLU gate on the pre-layer activation.
						for j, a := range m.acts[l] {
							if a <= 0 {
								prev[j] = 0
							}
						}
					}
				}
			}
			// Adam update.
			step++
			bs := float64(end - start)
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			for l, ly := range m.layers {
				for i := range ly.w {
					g := gw[l][i]/bs + cfg.L2*ly.w[i]
					ly.mw[i] = beta1*ly.mw[i] + (1-beta1)*g
					ly.vw[i] = beta2*ly.vw[i] + (1-beta2)*g*g
					ly.w[i] -= cfg.LR * (ly.mw[i] / bc1) / (math.Sqrt(ly.vw[i]/bc2) + eps)
				}
				for i := range ly.b {
					g := gb[l][i] / bs
					ly.mb[i] = beta1*ly.mb[i] + (1-beta1)*g
					ly.vb[i] = beta2*ly.vb[i] + (1-beta2)*g*g
					ly.b[i] -= cfg.LR * (ly.mb[i] / bc1) / (math.Sqrt(ly.vb[i]/bc2) + eps)
				}
			}
		}
	}
}

// forward fills m.acts; the final activation is the raw logits.
func (m *MLP) forward(x []float64) {
	copy(m.acts[0], x)
	for l, ly := range m.layers {
		in := m.acts[l]
		out := m.acts[l+1]
		for o := 0; o < ly.out; o++ {
			s := ly.b[o]
			row := ly.w[o*ly.in : (o+1)*ly.in]
			for j, v := range in {
				s += row[j] * v
			}
			if l < len(m.layers)-1 && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			out[o] = s
		}
	}
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// Predict returns the argmax logit class.
func (m *MLP) Predict(x []float64) int {
	m.forward(x)
	return argmax(m.acts[len(m.layers)])
}

// InferenceOps counts one MAC per weight.
func (m *MLP) InferenceOps() int64 {
	var ops int64
	for _, ly := range m.layers {
		ops += int64(ly.in+1) * int64(ly.out)
	}
	return ops
}

// Weights returns the total parameter count, used by device energy models
// to estimate training cost (≈ 3 ops per weight per sample per epoch for
// forward+backward+update).
func (m *MLP) Weights() int64 {
	var n int64
	for _, ly := range m.layers {
		n += int64(len(ly.w) + len(ly.b))
	}
	return n
}
