package ml

import (
	"testing"

	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/rng"
)

// blobs builds an easy Gaussian-blob problem.
func blobs(r *rng.Rand, classes, perClass, nf int, noise float64) (X [][]float64, y []int) {
	centers := make([][]float64, classes)
	for c := range centers {
		ctr := make([]float64, nf)
		for j := range ctr {
			ctr[j] = 3 * r.NormFloat64()
		}
		centers[c] = ctr
	}
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			x := make([]float64, nf)
			for j := range x {
				x[j] = centers[c][j] + noise*r.NormFloat64()
			}
			X = append(X, x)
			y = append(y, c)
		}
	}
	r.Shuffle(len(X), func(i, j int) {
		X[i], X[j] = X[j], X[i]
		y[i], y[j] = y[j], y[i]
	})
	return X, y
}

// xorData builds the classic non-linearly-separable XOR problem.
func xorData(r *rng.Rand, n int) (X [][]float64, y []int) {
	for i := 0; i < n; i++ {
		a, b := r.Float64() > 0.5, r.Float64() > 0.5
		x := []float64{0.15 * r.NormFloat64(), 0.15 * r.NormFloat64()}
		if a {
			x[0] += 1
		}
		if b {
			x[1] += 1
		}
		X = append(X, x)
		if a != b {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	return X, y
}

func TestTreeOnBlobs(t *testing.T) {
	r := rng.New(1)
	X, y := blobs(r, 3, 100, 5, 0.5)
	tree := FitTree(X, y, 3, TreeConfig{MaxDepth: 10}, 1)
	if acc := Accuracy(tree, X, y); acc < 0.95 {
		t.Errorf("tree train accuracy = %.3f, want > 0.95", acc)
	}
	if tree.Depth() < 1 || tree.Nodes() < 3 {
		t.Errorf("degenerate tree: depth %d, nodes %d", tree.Depth(), tree.Nodes())
	}
	if tree.InferenceOps() <= 0 {
		t.Error("InferenceOps must be positive")
	}
}

func TestTreePureLeafStopsEarly(t *testing.T) {
	X := [][]float64{{0}, {0.1}, {0.9}, {1}}
	y := []int{0, 0, 1, 1}
	tree := FitTree(X, y, 2, TreeConfig{}, 1)
	if acc := Accuracy(tree, X, y); acc != 1 {
		t.Errorf("separable 1-D data accuracy = %v", acc)
	}
	if tree.Nodes() > 7 {
		t.Errorf("tree grew %d nodes on a 1-split problem", tree.Nodes())
	}
}

func TestTreeXor(t *testing.T) {
	r := rng.New(2)
	X, y := xorData(r, 400)
	tree := FitTree(X, y, 2, TreeConfig{MaxDepth: 6}, 1)
	if acc := Accuracy(tree, X, y); acc < 0.95 {
		t.Errorf("tree should solve XOR with depth 2+: accuracy %.3f", acc)
	}
}

func TestForestGeneralizes(t *testing.T) {
	r := rng.New(3)
	X, y := blobs(r, 4, 80, 8, 1.2)
	Xt, yt := blobs(rng.New(4), 4, 20, 8, 1.2)
	_ = Xt
	_ = yt
	f := FitForest(X, y, 4, ForestConfig{Trees: 30, MaxDepth: 10, Seed: 1})
	if f.Trees() != 30 {
		t.Fatalf("Trees() = %d", f.Trees())
	}
	if acc := Accuracy(f, X, y); acc < 0.95 {
		t.Errorf("forest train accuracy = %.3f", acc)
	}
	if f.InferenceOps() <= int64(f.Trees()) {
		t.Error("forest ops should include tree depths")
	}
}

func TestForestBeatsSingleTreeOnNoisy(t *testing.T) {
	r := rng.New(5)
	X, y := blobs(r, 3, 120, 6, 2.4)
	XT, yT := blobs(rng.New(77), 3, 0, 6, 2.4)
	_ = XT
	_ = yT
	// Hold out the last quarter for testing.
	cut := len(X) * 3 / 4
	tree := FitTree(X[:cut], y[:cut], 3, TreeConfig{}, 1)
	forest := FitForest(X[:cut], y[:cut], 3, ForestConfig{Trees: 40, Seed: 1})
	accT := Accuracy(tree, X[cut:], y[cut:])
	accF := Accuracy(forest, X[cut:], y[cut:])
	if accF+0.05 < accT {
		t.Errorf("forest (%.3f) much worse than single tree (%.3f)", accF, accT)
	}
}

func TestSVMOnBlobs(t *testing.T) {
	r := rng.New(6)
	X, y := blobs(r, 3, 100, 5, 0.6)
	svm := FitLinear(X, y, 3, LinearConfig{Kind: HingeSVM, Epochs: 20, Seed: 1})
	if acc := Accuracy(svm, X, y); acc < 0.95 {
		t.Errorf("SVM train accuracy = %.3f", acc)
	}
	if svm.InferenceOps() <= 0 {
		t.Error("SVM ops must be positive")
	}
}

func TestLROnBlobs(t *testing.T) {
	r := rng.New(7)
	X, y := blobs(r, 4, 100, 5, 0.6)
	lr := FitLinear(X, y, 4, LinearConfig{Kind: SoftmaxLR, Epochs: 20, Seed: 1})
	if acc := Accuracy(lr, X, y); acc < 0.95 {
		t.Errorf("LR train accuracy = %.3f", acc)
	}
}

func TestLinearFailsXor(t *testing.T) {
	// Sanity: a linear model cannot solve XOR; this guards against the
	// implementation accidentally being non-linear.
	r := rng.New(8)
	X, y := xorData(r, 400)
	svm := FitLinear(X, y, 2, LinearConfig{Kind: HingeSVM, Epochs: 30, Seed: 1})
	if acc := Accuracy(svm, X, y); acc > 0.8 {
		t.Errorf("linear SVM 'solved' XOR (%.3f) — implementation is not linear", acc)
	}
}

func TestMLPSolvesXor(t *testing.T) {
	r := rng.New(9)
	X, y := xorData(r, 400)
	mlp := FitMLP(X, y, 2, MLPConfig{Hidden: []int{16}, Epochs: 80, Seed: 1})
	if acc := Accuracy(mlp, X, y); acc < 0.97 {
		t.Errorf("MLP XOR accuracy = %.3f, want ≈1", acc)
	}
}

func TestMLPOnBlobs(t *testing.T) {
	r := rng.New(10)
	X, y := blobs(r, 5, 80, 6, 0.8)
	mlp := FitMLP(X, y, 5, MLPConfig{Hidden: []int{32}, Epochs: 30, Seed: 1})
	if acc := Accuracy(mlp, X, y); acc < 0.95 {
		t.Errorf("MLP blob accuracy = %.3f", acc)
	}
	if mlp.InferenceOps() <= 0 || mlp.Weights() <= 0 {
		t.Error("MLP op counts must be positive")
	}
}

func TestDNNConfigDeeper(t *testing.T) {
	cfg := DNNConfig(1)
	if len(cfg.Hidden) < 2 {
		t.Fatal("DNN config should have multiple hidden layers")
	}
}

func TestKNNOnBlobs(t *testing.T) {
	r := rng.New(11)
	X, y := blobs(r, 3, 60, 4, 0.5)
	knn := FitKNN(X, y, 3, 5)
	if acc := Accuracy(knn, X, y); acc < 0.95 {
		t.Errorf("kNN train accuracy = %.3f", acc)
	}
	if knn.InferenceOps() <= 0 {
		t.Error("kNN ops must be positive")
	}
}

func TestKNNKClamped(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}}
	y := []int{0, 1, 1}
	knn := FitKNN(X, y, 2, 100) // k > n must clamp, not crash
	if p := knn.Predict([]float64{1.5}); p != 1 {
		t.Errorf("clamped kNN predicted %d", p)
	}
}

func TestCheckXYPanics(t *testing.T) {
	cases := []struct {
		X [][]float64
		y []int
		c int
	}{
		{nil, nil, 2},
		{[][]float64{{1}}, []int{0, 1}, 2},
		{[][]float64{{1}}, []int{0}, 1},
		{[][]float64{{1}}, []int{5}, 2},
	}
	for i, cse := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			checkXY(cse.X, cse.y, cse.c)
		}()
	}
}

func TestPredictAll(t *testing.T) {
	r := rng.New(12)
	X, y := blobs(r, 2, 20, 3, 0.3)
	tree := FitTree(X, y, 2, TreeConfig{}, 1)
	preds := PredictAll(tree, X)
	if len(preds) != len(X) {
		t.Fatal("PredictAll length mismatch")
	}
}

func TestDeterministicTraining(t *testing.T) {
	r := rng.New(13)
	X, y := blobs(r, 3, 50, 4, 1.0)
	a := FitMLP(X, y, 3, MLPConfig{Hidden: []int{16}, Epochs: 5, Seed: 42})
	b := FitMLP(X, y, 3, MLPConfig{Hidden: []int{16}, Epochs: 5, Seed: 42})
	for i, x := range X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatalf("MLP training not deterministic at sample %d", i)
		}
	}
}

// TestBaselinesOnRealBenchmark runs every baseline on a generated benchmark
// end to end (normalized features), guarding integration regressions.
func TestBaselinesOnRealBenchmark(t *testing.T) {
	ds := dataset.MustLoad("PAGE", 1)
	trainX, testX := ds.Normalized()
	models := map[string]Classifier{
		"RF":  FitForest(trainX, ds.TrainY, ds.Classes, ForestConfig{Trees: 30, Seed: 1}),
		"SVM": FitLinear(trainX, ds.TrainY, ds.Classes, LinearConfig{Kind: HingeSVM, Seed: 1}),
		"LR":  FitLinear(trainX, ds.TrainY, ds.Classes, LinearConfig{Kind: SoftmaxLR, Seed: 1}),
		"MLP": FitMLP(trainX, ds.TrainY, ds.Classes, MLPConfig{Hidden: []int{64}, Epochs: 20, Seed: 1}),
		"KNN": FitKNN(trainX, ds.TrainY, ds.Classes, 5),
	}
	for name, m := range models {
		acc := 0.0
		correct := 0
		for i, x := range testX {
			if m.Predict(x) == ds.TestY[i] {
				correct++
			}
		}
		acc = float64(correct) / float64(len(testX))
		if acc < 0.8 {
			t.Errorf("%s on PAGE: accuracy %.3f below sanity floor", name, acc)
		}
	}
}

func BenchmarkForestTrain(b *testing.B) {
	r := rng.New(1)
	X, y := blobs(r, 4, 50, 8, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FitForest(X, y, 4, ForestConfig{Trees: 10, Seed: uint64(i)})
	}
}

func BenchmarkMLPEpoch(b *testing.B) {
	r := rng.New(1)
	X, y := blobs(r, 4, 50, 16, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FitMLP(X, y, 4, MLPConfig{Hidden: []int{32}, Epochs: 1, Seed: uint64(i)})
	}
}
