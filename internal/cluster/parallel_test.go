package cluster

import (
	"testing"

	"github.com/edge-hdc/generic/internal/dataset"
)

// Parallel clustering must be bit-identical to the serial path: the model
// is frozen during each epoch's assignment scan, so chunking the scan
// cannot change any assignment or the resulting centroids.
func TestHDCWorkersBitIdentical(t *testing.T) {
	cs := dataset.MustLoadCluster("Iris", 1)
	encoded := encodeCluster(cs, 1024)
	serial := HDC(encoded, cs.K, 7)
	for _, workers := range []int{2, 3, 4, 8} {
		par := HDCWorkers(encoded, cs.K, 7, workers)
		for i := range serial.Assignments {
			if par.Assignments[i] != serial.Assignments[i] {
				t.Fatalf("workers=%d: assignment %d differs: %d vs %d",
					workers, i, par.Assignments[i], serial.Assignments[i])
			}
		}
		if len(par.Centroids) != len(serial.Centroids) {
			t.Fatalf("workers=%d: centroid count differs", workers)
		}
		for c := range serial.Centroids {
			for j := range serial.Centroids[c] {
				if par.Centroids[c][j] != serial.Centroids[c][j] {
					t.Fatalf("workers=%d: centroid %d element %d differs", workers, c, j)
				}
			}
		}
	}
}
