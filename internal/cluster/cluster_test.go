package cluster

import (
	"testing"

	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/metrics"
	"github.com/edge-hdc/generic/internal/rng"
)

func TestKMeansHepta(t *testing.T) {
	cs := dataset.MustLoadCluster("Hepta", 1)
	res := KMeansBest(cs.X, cs.K, 100, 10, 3)
	if nmi := metrics.NMI(res.Assignments, cs.Labels); nmi < 0.95 {
		t.Errorf("k-means on Hepta NMI = %.3f, want ≈1 (well-separated clusters)", nmi)
	}
	if res.Iters < 1 {
		t.Error("k-means reported zero iterations")
	}
}

func TestKMeansTwoDiamonds(t *testing.T) {
	cs := dataset.MustLoadCluster("TwoDiamonds", 1)
	res := KMeans(cs.X, cs.K, 100, 3)
	if nmi := metrics.NMI(res.Assignments, cs.Labels); nmi < 0.9 {
		t.Errorf("k-means on TwoDiamonds NMI = %.3f, want high", nmi)
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	cs := dataset.MustLoadCluster("Tetra", 1)
	i2 := KMeans(cs.X, 2, 100, 1).Inertia
	i4 := KMeans(cs.X, 4, 100, 1).Inertia
	i8 := KMeans(cs.X, 8, 100, 1).Inertia
	if !(i2 > i4 && i4 > i8) {
		t.Errorf("inertia not decreasing with k: %v, %v, %v", i2, i4, i8)
	}
}

func TestKMeansDeterministicBySeed(t *testing.T) {
	cs := dataset.MustLoadCluster("Iris", 1)
	a := KMeans(cs.X, 3, 100, 9)
	b := KMeans(cs.X, 3, 100, 9)
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("k-means not deterministic for equal seeds")
		}
	}
}

func TestKMeansPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n did not panic")
		}
	}()
	KMeans([][]float64{{1}, {2}}, 3, 10, 1)
}

func TestKMeansDegenerateData(t *testing.T) {
	// All identical points: must terminate and assign everything somewhere.
	X := make([][]float64, 10)
	for i := range X {
		X[i] = []float64{1, 1}
	}
	res := KMeans(X, 3, 50, 1)
	for _, a := range res.Assignments {
		if a < 0 || a >= 3 {
			t.Fatalf("bad assignment %d", a)
		}
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %v on coincident points", res.Inertia)
	}
}

// encodeCluster encodes a ClusterSet with the GENERIC encoding as the
// accelerator would (windowed, id-bound, over the quantization range).
func encodeCluster(cs *dataset.ClusterSet, d int) []hdc.Vec {
	n := 3
	if cs.Features < 3 {
		n = cs.Features
	}
	enc := encoding.MustNew(encoding.Generic, encoding.Config{
		D: d, Features: cs.Features, Bins: 32, Lo: cs.Lo, Hi: cs.Hi,
		N: n, UseID: true, Seed: 11,
	})
	return encoding.EncodeAll(enc, cs.X)
}

func TestHDCClusterHepta(t *testing.T) {
	cs := dataset.MustLoadCluster("Hepta", 1)
	encoded := encodeCluster(cs, 2048)
	res := HDC(encoded, cs.K, 10)
	if nmi := metrics.NMI(res.Assignments, cs.Labels); nmi < 0.75 {
		t.Errorf("HDC clustering on Hepta NMI = %.3f, want ≥ 0.75 (paper: 0.904)", nmi)
	}
}

func TestHDCClusterTwoDiamonds(t *testing.T) {
	cs := dataset.MustLoadCluster("TwoDiamonds", 1)
	encoded := encodeCluster(cs, 2048)
	res := HDC(encoded, cs.K, 10)
	if nmi := metrics.NMI(res.Assignments, cs.Labels); nmi < 0.7 {
		t.Errorf("HDC clustering on TwoDiamonds NMI = %.3f, want ≥ 0.7 (paper: 0.981)", nmi)
	}
}

func TestHDCClusterAssignmentsInRange(t *testing.T) {
	cs := dataset.MustLoadCluster("Iris", 1)
	encoded := encodeCluster(cs, 1024)
	res := HDC(encoded, cs.K, 5)
	if len(res.Assignments) != len(cs.X) {
		t.Fatal("assignment count mismatch")
	}
	for _, a := range res.Assignments {
		if a < 0 || a >= cs.K {
			t.Fatalf("assignment %d out of range", a)
		}
	}
	if len(res.Centroids) != cs.K {
		t.Fatal("wrong centroid count")
	}
}

func TestHDCClusterSingleCluster(t *testing.T) {
	r := rng.New(5)
	encoded := make([]hdc.Vec, 20)
	for i := range encoded {
		encoded[i] = make(hdc.Vec, 256)
		for j := range encoded[i] {
			encoded[i][j] = int32(r.Intn(9) - 4)
		}
	}
	res := HDC(encoded, 1, 3)
	for _, a := range res.Assignments {
		if a != 0 {
			t.Fatal("k=1 produced nonzero assignment")
		}
	}
}

func TestHDCClusterPanicsWhenTooFewInputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n did not panic")
		}
	}()
	HDC([]hdc.Vec{make(hdc.Vec, 64)}, 2, 3)
}

func TestHDCVsKMeansShape(t *testing.T) {
	// Table 2's qualitative claim: k-means scores slightly higher on the
	// low-feature FCPS sets, and both methods land in the same band. Verify
	// HDC is within 0.3 NMI of k-means on Hepta.
	cs := dataset.MustLoadCluster("Hepta", 1)
	km := KMeansBest(cs.X, cs.K, 100, 10, 3)
	hd := HDC(encodeCluster(cs, 2048), cs.K, 10)
	kmNMI := metrics.NMI(km.Assignments, cs.Labels)
	hdNMI := metrics.NMI(hd.Assignments, cs.Labels)
	if kmNMI-hdNMI > 0.3 {
		t.Errorf("HDC NMI %.3f too far below k-means %.3f", hdNMI, kmNMI)
	}
}

func BenchmarkKMeansTetra(b *testing.B) {
	cs := dataset.MustLoadCluster("Tetra", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(cs.X, cs.K, 100, uint64(i))
	}
}

func BenchmarkHDCClusterIris(b *testing.B) {
	cs := dataset.MustLoadCluster("Iris", 1)
	encoded := encodeCluster(cs, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HDC(encoded, cs.K, 5)
	}
}
