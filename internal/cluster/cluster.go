// Package cluster implements the two clustering algorithms compared in the
// paper's §5.3: HDC clustering in hyperspace (the GENERIC engine's
// unsupervised mode, §2.1/§4.2.3) and classical k-means (the software
// baseline run on Raspberry Pi / CPU).
package cluster

import (
	"fmt"
	"math"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/parallel"
	"github.com/edge-hdc/generic/internal/rng"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// HDCResult holds the outcome of HDC clustering.
type HDCResult struct {
	// Assignments[i] is the centroid index of input i under the final model.
	Assignments []int
	// Centroids are the final centroid hypervectors.
	Centroids []hdc.Vec
	// Epochs actually run (equals the requested count; exposed for
	// reporting).
	Epochs int
}

// nearestCentroid returns the index of the centroid most similar to h under
// the modified cosine metric; norm2[c] must be ‖centroids[c]‖². Both the
// per-epoch scan and the final assignment pass rank with this helper.
func nearestCentroid(h hdc.Vec, centroids []hdc.Vec, norm2 []int64) int {
	best, bestScore := 0, -math.MaxFloat64
	for c := range centroids {
		s := hdc.CosineScore(h.Dot(centroids[c]), norm2[c])
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// HDC clusters pre-encoded hypervectors into k groups the way the GENERIC
// accelerator does: the first k encodings seed the centroids; each epoch
// assigns every input to its most-similar centroid (modified cosine) while
// bundling it into a *copy* centroid, and the copies replace the model at
// the end of the epoch (the in-flight model stays frozen, §2.1). It runs
// serially; HDCWorkers is the parallel batch form.
func HDC(encoded []hdc.Vec, k, epochs int) *HDCResult {
	return HDCWorkers(encoded, k, epochs, 1)
}

// HDCWorkers is HDC with the per-epoch assignment scan and the final
// assignment pass fanned across workers workers (<= 0 means GOMAXPROCS,
// 1 is the serial path). Parallelism is safe because the in-flight model is
// frozen within an epoch (§2.1): workers score against the same read-only
// centroids, bundle into per-worker copy centroids, and the partials merge
// in worker order — integer accumulation commutes, so assignments and
// centroids are bit-identical to the serial run.
func HDCWorkers(encoded []hdc.Vec, k, epochs, workers int) *HDCResult {
	if k < 1 || len(encoded) < k {
		panic(fmt.Sprintf("cluster: need at least k=%d inputs, got %d", k, len(encoded)))
	}
	if epochs < 1 {
		epochs = 1
	}
	workers = parallel.Workers(workers)
	d := len(encoded[0])
	centroids := make([]hdc.Vec, k)
	for c := range centroids {
		centroids[c] = encoded[c].Clone()
	}
	norm2 := make([]int64, k)
	refresh := func() {
		for c := range centroids {
			norm2[c] = centroids[c].Norm2()
		}
	}
	refresh()

	type epochPartial struct {
		copies []hdc.Vec
		counts []int
	}
	assign := make([]int, len(encoded))
	for e := 0; e < epochs; e++ {
		epochStart := telemetry.Now()
		partials := make([]epochPartial, workers)
		parallel.ForChunks(workers, len(encoded), func(w, lo, hi int) {
			copies := make([]hdc.Vec, k)
			counts := make([]int, k)
			for c := range copies {
				copies[c] = hdc.NewVec(d)
			}
			for i := lo; i < hi; i++ {
				best := nearestCentroid(encoded[i], centroids, norm2)
				assign[i] = best
				copies[best].AddInto(encoded[i])
				counts[best]++
			}
			partials[w] = epochPartial{copies: copies, counts: counts}
		})
		// Merge worker partials in worker order.
		copies, counts := partials[0].copies, partials[0].counts
		for _, p := range partials[1:] {
			if p.copies == nil { // unused worker (fewer chunks than workers)
				continue
			}
			for c := range copies {
				copies[c].AddInto(p.copies[c])
				counts[c] += p.counts[c]
			}
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = copies[c]
			} // empty centroid keeps its previous hypervector
		}
		refresh()
		telemetry.ClusterAssigns.Add(int64(len(encoded)))
		telemetry.ClusterEpochNS.ObserveSince(epochStart)
	}
	// Final assignment pass against the final model.
	parallel.For(workers, len(encoded), func(_, i int) {
		assign[i] = nearestCentroid(encoded[i], centroids, norm2)
	})
	return &HDCResult{Assignments: assign, Centroids: centroids, Epochs: epochs}
}

// KMeansResult holds the outcome of Lloyd's k-means.
type KMeansResult struct {
	Assignments []int
	Centroids   [][]float64
	// Iters is the number of Lloyd iterations executed before convergence
	// or the iteration cap.
	Iters int
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
}

// KMeans runs Lloyd's algorithm with k-means++ initialization on raw
// feature vectors. It stops when assignments stabilize or after maxIter
// iterations.
func KMeans(X [][]float64, k, maxIter int, seed uint64) *KMeansResult {
	if k < 1 || len(X) < k {
		panic(fmt.Sprintf("cluster: need at least k=%d inputs, got %d", k, len(X)))
	}
	if maxIter < 1 {
		maxIter = 100
	}
	r := rng.New(seed)
	nf := len(X[0])
	centroids := kppInit(X, k, r)

	assign := make([]int, len(X))
	for i := range assign {
		assign[i] = -1
	}
	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for i, x := range X {
			best, bestD := 0, math.MaxFloat64
			for c := range centroids {
				d := sqDist(x, centroids[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, nf)
		}
		for i, x := range X {
			c := assign[i]
			counts[c]++
			for j, v := range x {
				next[c][j] += v
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid assignment, the standard fix.
				next[c] = append([]float64(nil), X[farthestPoint(X, centroids, assign)]...)
				continue
			}
			for j := range next[c] {
				next[c][j] /= float64(counts[c])
			}
		}
		centroids = next
	}
	var inertia float64
	for i, x := range X {
		inertia += sqDist(x, centroids[assign[i]])
	}
	return &KMeansResult{Assignments: assign, Centroids: centroids, Iters: iters, Inertia: inertia}
}

// KMeansBest runs KMeans restarts times with derived seeds and returns the
// run with the lowest inertia — the usual guard against k-means++ landing in
// a poor local optimum (scikit-learn's n_init, which the paper's baseline
// uses with its default of 10).
func KMeansBest(X [][]float64, k, maxIter, restarts int, seed uint64) *KMeansResult {
	if restarts < 1 {
		restarts = 1
	}
	r := rng.New(seed)
	var best *KMeansResult
	for i := 0; i < restarts; i++ {
		res := KMeans(X, k, maxIter, r.Uint64())
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best
}

// kppInit performs k-means++ seeding.
func kppInit(X [][]float64, k int, r *rng.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), X[r.Intn(len(X))]...))
	d2 := make([]float64, len(X))
	for len(centroids) < k {
		var sum float64
		for i, x := range X {
			best := math.MaxFloat64
			for _, c := range centroids {
				if d := sqDist(x, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		if sum == 0 {
			// All points coincide with centroids; seed uniformly.
			centroids = append(centroids, append([]float64(nil), X[r.Intn(len(X))]...))
			continue
		}
		u := r.Float64() * sum
		idx := 0
		for acc := 0.0; idx < len(X)-1; idx++ {
			acc += d2[idx]
			if acc >= u {
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), X[idx]...))
	}
	return centroids
}

func farthestPoint(X [][]float64, centroids [][]float64, assign []int) int {
	worst, worstD := 0, -1.0
	for i, x := range X {
		if d := sqDist(x, centroids[assign[i]]); d > worstD {
			worst, worstD = i, d
		}
	}
	return worst
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		dv := v - b[i]
		s += dv * dv
	}
	return s
}
