package modelio

import (
	"bytes"
	"testing"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
)

// FuzzRead hardens the model-file parser against corrupt or adversarial
// input: it must return an error or a valid bundle — never panic or
// allocate absurdly.
func FuzzRead(f *testing.F) {
	// Seed with a valid file and a few mutations.
	b := fuzzBundle(f)
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("GHDC"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[6] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed successfully: the bundle must be internally consistent.
		if got.Model == nil {
			t.Fatal("nil model without error")
		}
		if got.Model.D() <= 0 || got.Model.Classes() < 2 {
			t.Fatalf("implausible model accepted: D=%d classes=%d", got.Model.D(), got.Model.Classes())
		}
	})
}

// fuzzBundle builds a minimal deterministic bundle (no dataset dependency
// keeps the fuzz target fast).
func fuzzBundle(f *testing.F) *Bundle {
	f.Helper()
	m := classifier.NewModel(128, 2, 16)
	h := make(hdc.Vec, 128)
	for i := range h {
		h[i] = int32(i%7 - 3)
	}
	m.AddEncoded(h, 0)
	for i := range h {
		h[i] = -h[i]
	}
	m.AddEncoded(h, 1)
	return &Bundle{
		Kind: encoding.Generic,
		Cfg: encoding.Config{
			D: 128, Features: 8, Bins: 16, Lo: 0, Hi: 1, N: 3, Seed: 1,
		},
		Model: m,
	}
}
