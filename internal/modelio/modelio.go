// Package modelio serializes trained GENERIC models and encoder
// configurations to a compact binary format — the software counterpart of
// the accelerator's config port, through which level hypervectors, id
// seeds, and (for offline training) class hypervectors are loaded (§4.1).
//
// The format is versioned and self-describing:
//
//	magic "GHDC" | version u16 | header | payload
//
// All integers are little-endian. Class elements are stored at the model's
// bit-width: 16-bit two's complement words (narrower widths still occupy
// 16 bits; the density win of sub-16-bit packing is not worth the format
// complexity at 4K×32 scale).
package modelio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
)

const (
	magic   = "GHDC"
	version = 1
)

// Bundle couples a trained model with the encoder configuration that
// produced its encodings — both are needed to reconstruct a working
// pipeline.
type Bundle struct {
	Kind  encoding.Kind
	Cfg   encoding.Config
	Model *classifier.Model
}

// Write serializes the bundle.
func Write(w io.Writer, b *Bundle) error {
	if b == nil || b.Model == nil {
		return fmt.Errorf("modelio: nil bundle or model")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU16 := func(v uint16) error { return binary.Write(bw, le, v) }
	writeU32 := func(v uint32) error { return binary.Write(bw, le, v) }
	writeU64 := func(v uint64) error { return binary.Write(bw, le, v) }
	writeF64 := func(v float64) error { return binary.Write(bw, le, math.Float64bits(v)) }

	if err := writeU16(version); err != nil {
		return err
	}
	// Encoder header.
	if err := writeU16(uint16(b.Kind)); err != nil {
		return err
	}
	cfg := b.Cfg.Default()
	for _, v := range []uint32{
		uint32(cfg.D), uint32(cfg.Features), uint32(cfg.Bins), uint32(cfg.N),
	} {
		if err := writeU32(v); err != nil {
			return err
		}
	}
	useID := uint16(0)
	if cfg.UseID {
		useID = 1
	}
	if err := writeU16(useID); err != nil {
		return err
	}
	if err := writeU64(cfg.Seed); err != nil {
		return err
	}
	if err := writeF64(cfg.Lo); err != nil {
		return err
	}
	if err := writeF64(cfg.Hi); err != nil {
		return err
	}
	// Model header + class payload.
	m := b.Model
	for _, v := range []uint32{uint32(m.D()), uint32(m.Classes()), uint32(m.BW())} {
		if err := writeU32(v); err != nil {
			return err
		}
	}
	buf := make([]byte, 2)
	for c := 0; c < m.Classes(); c++ {
		for _, x := range m.Class(c) {
			if x > math.MaxInt16 || x < math.MinInt16 {
				return fmt.Errorf("modelio: class %d element %d exceeds 16-bit range", c, x)
			}
			le.PutUint16(buf, uint16(int16(x)))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a bundle and rebuilds the encoder-ready configuration
// and the model (with norms recomputed).
func Read(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("modelio: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("modelio: bad magic %q", head)
	}
	le := binary.LittleEndian
	readU16 := func() (uint16, error) {
		var v uint16
		err := binary.Read(br, le, &v)
		return v, err
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, le, &v)
		return v, err
	}
	ver, err := readU16()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("modelio: unsupported version %d", ver)
	}
	kind, err := readU16()
	if err != nil {
		return nil, err
	}
	var b Bundle
	b.Kind = encoding.Kind(kind)
	var d, features, bins, n uint32
	for _, p := range []*uint32{&d, &features, &bins, &n} {
		if *p, err = readU32(); err != nil {
			return nil, err
		}
	}
	useID, err := readU16()
	if err != nil {
		return nil, err
	}
	var seed uint64
	if err := binary.Read(br, le, &seed); err != nil {
		return nil, err
	}
	var loBits, hiBits uint64
	if err := binary.Read(br, le, &loBits); err != nil {
		return nil, err
	}
	if err := binary.Read(br, le, &hiBits); err != nil {
		return nil, err
	}
	b.Cfg = encoding.Config{
		D: int(d), Features: int(features), Bins: int(bins), N: int(n),
		UseID: useID != 0, Seed: seed,
		Lo: math.Float64frombits(loBits), Hi: math.Float64frombits(hiBits),
	}
	var mD, mClasses, mBW uint32
	for _, p := range []*uint32{&mD, &mClasses, &mBW} {
		if *p, err = readU32(); err != nil {
			return nil, err
		}
	}
	// Bound the header before allocating: a corrupt D or class count must
	// not drive a giant allocation.
	const maxD = 1 << 20
	if mD == 0 || mD > maxD || mD%classifier.SubNormGranularity != 0 || mClasses < 2 || mClasses > 4096 {
		return nil, fmt.Errorf("modelio: implausible model header D=%d classes=%d", mD, mClasses)
	}
	if mBW < 1 || mBW > 16 {
		return nil, fmt.Errorf("modelio: bad bit-width %d", mBW)
	}
	m := classifier.NewModel(int(mD), int(mClasses), int(mBW))
	buf := make([]byte, 2)
	tmp := hdc.NewVec(int(mD))
	for c := 0; c < int(mClasses); c++ {
		for i := 0; i < int(mD); i++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("modelio: class payload truncated: %w", err)
			}
			tmp[i] = int32(int16(le.Uint16(buf)))
		}
		m.SetClass(c, tmp)
	}
	b.Model = m
	return &b, nil
}
