// Package modelio serializes trained GENERIC models and encoder
// configurations to a compact binary format — the software counterpart of
// the accelerator's config port, through which level hypervectors, id
// seeds, and (for offline training) class hypervectors are loaded (§4.1).
//
// The format is versioned and self-describing:
//
//	magic "GHDC" | version u16 | header | payload | crc32 u32 (v2+)
//
// All integers are little-endian. Class elements are stored at the model's
// bit-width: 16-bit two's complement words (narrower widths still occupy
// 16 bits; the density win of sub-16-bit packing is not worth the format
// complexity at 4K×32 scale).
//
// Version 2 appends a CRC32 (IEEE) integrity footer computed over every
// preceding byte (magic through payload). Version-1 files have no footer
// and still load; Bundle.HasChecksum reports which kind was read, so
// callers can surface a "no checksum" note for legacy files.
//
// Version 3 records the training strategy that produced the model — a
// length-prefixed name (u16 length + bytes, at most 64) between the model
// header and the class payload, covered by the CRC footer. Version-1 and -2
// files still load with an empty Trainer.
//
// Version 4 records the inference representation: a flags word (bit 0 set
// when the pipeline was binarized for packed Hamming inference) and the
// counter bit-width the binary model was derived from, between the trainer
// name and the class payload. The payload stays the integer counters — the
// packed class vectors are a pure function of their signs and are
// re-derived on load — so binarized and exact files differ only in these
// four bytes. Files predating version 4 load as not binarized.
package modelio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"syscall"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
)

const (
	magic   = "GHDC"
	version = 4
	// versionNoBinary is the pre-representation format (trainer name but no
	// binarization flags), still readable and writable for tests.
	versionNoBinary = 3
	// versionNoTrainer is the pre-strategy format (checksummed but without
	// the trainer-name field), still readable and writable for tests.
	versionNoTrainer = 2
	// versionNoChecksum is the legacy footerless format, still readable.
	versionNoChecksum = 1
	// maxTrainerLen bounds the trainer-name field so a corrupt length word
	// cannot drive a large allocation.
	maxTrainerLen = 64
)

// ErrChecksum reports a version-2 stream whose CRC32 footer does not match
// its contents: the payload was corrupted (or truncated at a 4-byte
// boundary) after writing.
var ErrChecksum = errors.New("modelio: checksum mismatch, file is corrupt")

// Bundle couples a trained model with the encoder configuration that
// produced its encodings — both are needed to reconstruct a working
// pipeline.
type Bundle struct {
	Kind  encoding.Kind
	Cfg   encoding.Config
	Model *classifier.Model
	// Trainer names the training strategy that produced the model
	// ("perceptron", "lehdc"); empty for files predating version 3 or for
	// models whose provenance is unknown.
	Trainer string
	// HasChecksum is set by Read: true when the stream carried (and passed)
	// a CRC32 integrity footer, false for legacy version-1 files.
	HasChecksum bool
	// Binarized records that the pipeline's inference representation was the
	// packed binary model when saved; loaders re-derive the packed class
	// vectors from the counter signs. False for files predating version 4.
	Binarized bool
	// BinarizedFromBW is the counter bit-width the binary model was derived
	// from — binarization provenance. Zero when Binarized is false.
	BinarizedFromBW int
}

// Write serializes the bundle in the current format version, including the
// CRC32 integrity footer.
func Write(w io.Writer, b *Bundle) error {
	return writeVersioned(w, b, version)
}

// AtomicWriteFile writes a file through the crash-safe temp-fsync-rename
// protocol: the payload is produced by write into a temporary file in the
// destination's directory, fsynced, closed, and renamed over path, and the
// directory entry is fsynced so the rename itself survives power loss. On
// any error the temporary file is removed and the previous contents of path
// are untouched — a mid-write crash or a failing serializer can never leave
// a truncated or half-written file at path.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Platforms
// whose directory handles reject Sync (it is optional in POSIX) degrade to
// rename-only atomicity, which still never exposes a partial file.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// WriteFile atomically serializes the bundle to path: Write through the
// AtomicWriteFile protocol. The previous file at path (if any) survives any
// failure bit-for-bit.
func WriteFile(path string, b *Bundle) error {
	return AtomicWriteFile(path, func(w io.Writer) error { return Write(w, b) })
}

// ReadFile reads a bundle from a file written by WriteFile (or any Write
// stream on disk).
func ReadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// writeVersioned writes the requested format version — the legacy
// footerless version stays writable so compatibility tests can produce it.
func writeVersioned(w io.Writer, b *Bundle, ver uint16) error {
	if b == nil || b.Model == nil {
		return fmt.Errorf("modelio: nil bundle or model")
	}
	// Everything up to the footer streams through the CRC as it is written;
	// the footer itself goes to w alone.
	h := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU16 := func(v uint16) error { return binary.Write(bw, le, v) }
	writeU32 := func(v uint32) error { return binary.Write(bw, le, v) }
	writeU64 := func(v uint64) error { return binary.Write(bw, le, v) }
	writeF64 := func(v float64) error { return binary.Write(bw, le, math.Float64bits(v)) }

	if err := writeU16(ver); err != nil {
		return err
	}
	// Encoder header.
	if err := writeU16(uint16(b.Kind)); err != nil {
		return err
	}
	cfg := b.Cfg.Default()
	for _, v := range []uint32{
		uint32(cfg.D), uint32(cfg.Features), uint32(cfg.Bins), uint32(cfg.N),
	} {
		if err := writeU32(v); err != nil {
			return err
		}
	}
	useID := uint16(0)
	if cfg.UseID {
		useID = 1
	}
	if err := writeU16(useID); err != nil {
		return err
	}
	if err := writeU64(cfg.Seed); err != nil {
		return err
	}
	if err := writeF64(cfg.Lo); err != nil {
		return err
	}
	if err := writeF64(cfg.Hi); err != nil {
		return err
	}
	// Model header + trainer name (v3+) + class payload.
	m := b.Model
	for _, v := range []uint32{uint32(m.D()), uint32(m.Classes()), uint32(m.BW())} {
		if err := writeU32(v); err != nil {
			return err
		}
	}
	if ver >= 3 {
		if len(b.Trainer) > maxTrainerLen {
			return fmt.Errorf("modelio: trainer name %d bytes, limit %d", len(b.Trainer), maxTrainerLen)
		}
		if err := writeU16(uint16(len(b.Trainer))); err != nil {
			return err
		}
		if _, err := bw.WriteString(b.Trainer); err != nil {
			return err
		}
	}
	if ver >= 4 {
		flags := uint16(0)
		srcBW := uint16(0)
		if b.Binarized {
			flags |= 1
			if b.BinarizedFromBW < 1 || b.BinarizedFromBW > 16 {
				return fmt.Errorf("modelio: binarization source bit-width %d out of range", b.BinarizedFromBW)
			}
			srcBW = uint16(b.BinarizedFromBW)
		}
		if err := writeU16(flags); err != nil {
			return err
		}
		if err := writeU16(srcBW); err != nil {
			return err
		}
	}
	buf := make([]byte, 2)
	for c := 0; c < m.Classes(); c++ {
		for _, x := range m.Class(c) {
			if x > math.MaxInt16 || x < math.MinInt16 {
				return fmt.Errorf("modelio: class %d element %d exceeds 16-bit range", c, x)
			}
			le.PutUint16(buf, uint16(int16(x)))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if ver < 2 {
		return nil
	}
	var footer [4]byte
	le.PutUint32(footer[:], h.Sum32())
	_, err := w.Write(footer[:])
	return err
}

// Read deserializes a bundle and rebuilds the encoder-ready configuration
// and the model (with norms recomputed). Version-2 streams are verified
// against their CRC32 footer; a mismatch returns an error wrapping
// ErrChecksum.
func Read(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	// Every content byte read through tr feeds the CRC; the footer (v2) is
	// read from br directly so it is not hashed itself.
	h := crc32.NewIEEE()
	tr := io.TeeReader(br, h)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(tr, head); err != nil {
		return nil, fmt.Errorf("modelio: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("modelio: bad magic %q", head)
	}
	le := binary.LittleEndian
	readU16 := func() (uint16, error) {
		var v uint16
		err := binary.Read(tr, le, &v)
		return v, err
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(tr, le, &v)
		return v, err
	}
	ver, err := readU16()
	if err != nil {
		return nil, err
	}
	if ver != version && ver != versionNoBinary && ver != versionNoTrainer && ver != versionNoChecksum {
		return nil, fmt.Errorf("modelio: unsupported version %d", ver)
	}
	kind, err := readU16()
	if err != nil {
		return nil, err
	}
	var b Bundle
	b.Kind = encoding.Kind(kind)
	var d, features, bins, n uint32
	for _, p := range []*uint32{&d, &features, &bins, &n} {
		if *p, err = readU32(); err != nil {
			return nil, err
		}
	}
	useID, err := readU16()
	if err != nil {
		return nil, err
	}
	var seed uint64
	if err := binary.Read(tr, le, &seed); err != nil {
		return nil, err
	}
	var loBits, hiBits uint64
	if err := binary.Read(tr, le, &loBits); err != nil {
		return nil, err
	}
	if err := binary.Read(tr, le, &hiBits); err != nil {
		return nil, err
	}
	b.Cfg = encoding.Config{
		D: int(d), Features: int(features), Bins: int(bins), N: int(n),
		UseID: useID != 0, Seed: seed,
		Lo: math.Float64frombits(loBits), Hi: math.Float64frombits(hiBits),
	}
	var mD, mClasses, mBW uint32
	for _, p := range []*uint32{&mD, &mClasses, &mBW} {
		if *p, err = readU32(); err != nil {
			return nil, err
		}
	}
	// Bound the header before allocating: a corrupt D or class count must
	// not drive a giant allocation.
	const maxD = 1 << 20
	if mD == 0 || mD > maxD || mD%classifier.SubNormGranularity != 0 || mClasses < 2 || mClasses > 4096 {
		return nil, fmt.Errorf("modelio: implausible model header D=%d classes=%d", mD, mClasses)
	}
	if mBW < 1 || mBW > 16 {
		return nil, fmt.Errorf("modelio: bad bit-width %d", mBW)
	}
	if ver >= 3 {
		tlen, err := readU16()
		if err != nil {
			return nil, fmt.Errorf("modelio: reading trainer name: %w", err)
		}
		if tlen > maxTrainerLen {
			return nil, fmt.Errorf("modelio: trainer name %d bytes, limit %d", tlen, maxTrainerLen)
		}
		name := make([]byte, tlen)
		if _, err := io.ReadFull(tr, name); err != nil {
			return nil, fmt.Errorf("modelio: reading trainer name: %w", err)
		}
		b.Trainer = string(name)
	}
	if ver >= 4 {
		flags, err := readU16()
		if err != nil {
			return nil, fmt.Errorf("modelio: reading representation flags: %w", err)
		}
		srcBW, err := readU16()
		if err != nil {
			return nil, fmt.Errorf("modelio: reading binarization bit-width: %w", err)
		}
		if flags&1 != 0 {
			if srcBW < 1 || srcBW > 16 {
				return nil, fmt.Errorf("modelio: bad binarization source bit-width %d", srcBW)
			}
			b.Binarized = true
			b.BinarizedFromBW = int(srcBW)
		}
	}
	m := classifier.NewModel(int(mD), int(mClasses), int(mBW))
	buf := make([]byte, 2)
	tmp := hdc.NewVec(int(mD))
	for c := 0; c < int(mClasses); c++ {
		for i := 0; i < int(mD); i++ {
			if _, err := io.ReadFull(tr, buf); err != nil {
				return nil, fmt.Errorf("modelio: class payload truncated: %w", err)
			}
			tmp[i] = int32(int16(le.Uint16(buf)))
		}
		m.SetClass(c, tmp)
	}
	if ver >= 2 {
		sum := h.Sum32() // hash of magic..payload, before touching the footer
		var footer [4]byte
		if _, err := io.ReadFull(br, footer[:]); err != nil {
			return nil, fmt.Errorf("modelio: reading checksum footer: %w", err)
		}
		if le.Uint32(footer[:]) != sum {
			return nil, fmt.Errorf("%w (stored %08x, computed %08x)", ErrChecksum, le.Uint32(footer[:]), sum)
		}
		b.HasChecksum = true
	}
	b.Model = m
	return &b, nil
}
