package modelio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"strings"
	"testing"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
)

func trainedBundle(t *testing.T) *Bundle {
	t.Helper()
	ds := dataset.MustLoad("EEG", 1)
	cfg := encoding.Config{
		D: 1024, Features: ds.Features, Bins: 64, Lo: ds.Lo, Hi: ds.Hi,
		N: 3, UseID: ds.UseID, Seed: 7,
	}
	enc := encoding.MustNew(encoding.Generic, cfg)
	trainH := encoding.EncodeAll(enc, ds.TrainX[:200])
	m, _ := classifier.TrainEncoded(trainH, ds.TrainY[:200], ds.Classes, classifier.Options{Epochs: 3, Seed: 1})
	return &Bundle{Kind: encoding.Generic, Cfg: cfg, Model: m}
}

func TestRoundTrip(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != b.Kind {
		t.Errorf("kind %v != %v", got.Kind, b.Kind)
	}
	if got.Cfg != b.Cfg.Default() {
		t.Errorf("config mismatch: %+v vs %+v", got.Cfg, b.Cfg.Default())
	}
	if got.Model.D() != b.Model.D() || got.Model.Classes() != b.Model.Classes() ||
		got.Model.BW() != b.Model.BW() {
		t.Fatal("model header mismatch")
	}
	for c := 0; c < b.Model.Classes(); c++ {
		want := b.Model.Class(c)
		have := got.Model.Class(c)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("class %d dim %d: %d != %d", c, i, have[i], want[i])
			}
		}
		if got.Model.Norm2(c) != b.Model.Norm2(c) {
			t.Fatalf("class %d norm mismatch", c)
		}
	}
}

func TestRoundTripPredictionsIdentical(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the encoder from the stored config: same seed → identical
	// hypervector material → identical predictions.
	enc := encoding.MustNew(got.Kind, got.Cfg)
	ds := dataset.MustLoad("EEG", 1)
	for i := 0; i < 50; i++ {
		h := encoding.EncodeAll(enc, ds.TestX[i:i+1])[0]
		p1, _ := b.Model.Predict(h)
		p2, _ := got.Model.Predict(h)
		if p1 != p2 {
			t.Fatalf("prediction diverged after round trip at sample %d", i)
		}
	}
}

func TestWriteNil(t *testing.T) {
	if err := Write(io.Discard, nil); err == nil {
		t.Error("nil bundle accepted")
	}
	if err := Write(io.Discard, &Bundle{}); err == nil {
		t.Error("nil model accepted")
	}
}

func TestReadBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadTruncated(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 5, 20, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadBadVersion(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version low byte
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReadImplausibleHeader(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The model-D field sits after magic(4)+ver(2)+kind(2)+4×u32(16)+
	// useID(2)+seed(8)+lo(8)+hi(8) = offset 50.
	data[50], data[51], data[52], data[53] = 13, 0, 0, 0 // D=13: not ×128
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("implausible model dimensionality accepted")
	}
}

func TestQuantizedModelRoundTrip(t *testing.T) {
	b := trainedBundle(t)
	b.Model.Quantize(4)
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model.BW() != 4 {
		t.Errorf("bw after round trip = %d, want 4", got.Model.BW())
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in each region of the stream: header, payload middle,
	// payload tail. Every corruption must be caught by the footer.
	for _, pos := range []int{6, buf.Len() / 2, buf.Len() - 8} {
		raw := append([]byte(nil), buf.Bytes()...)
		raw[pos] ^= 0x04
		_, err := Read(bytes.NewReader(raw))
		if err == nil {
			t.Fatalf("corruption at byte %d not detected", pos)
		}
		// Header corruption may fail structural validation before the CRC
		// check; payload corruption must surface the checksum sentinel.
		if pos > 64 && !errors.Is(err, ErrChecksum) {
			t.Fatalf("corruption at byte %d: err = %v, want ErrChecksum", pos, err)
		}
	}
	// A corrupted footer itself is also a checksum mismatch.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[len(raw)-1] ^= 0xff
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("footer corruption: err = %v, want ErrChecksum", err)
	}
}

func TestChecksumFooterTruncated(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-2])); err == nil {
		t.Fatal("truncated footer accepted")
	}
}

func TestHasChecksumReported(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasChecksum {
		t.Error("current-version stream did not report HasChecksum")
	}
}

func TestTrainerRoundTrip(t *testing.T) {
	b := trainedBundle(t)
	b.Trainer = "lehdc"
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trainer != "lehdc" {
		t.Errorf("trainer after round trip = %q, want %q", got.Trainer, "lehdc")
	}
	// An empty trainer (provenance unknown) round-trips too.
	b.Trainer = ""
	buf.Reset()
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	if got, err = Read(&buf); err != nil || got.Trainer != "" {
		t.Errorf("empty trainer round trip: %q, %v", got.Trainer, err)
	}
}

func TestTrainerNameTooLong(t *testing.T) {
	b := trainedBundle(t)
	b.Trainer = strings.Repeat("x", maxTrainerLen+1)
	if err := Write(io.Discard, b); err == nil {
		t.Error("oversized trainer name accepted")
	}
}

// Version-2 files (checksummed, no trainer field) must still load, with an
// empty Trainer.
func TestVersion2Compatibility(t *testing.T) {
	b := trainedBundle(t)
	b.Trainer = "perceptron" // must be dropped, not mis-written, at v2
	var buf bytes.Buffer
	if err := writeVersioned(&buf, b, versionNoTrainer); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("reading v2 stream: %v", err)
	}
	if !got.HasChecksum {
		t.Error("v2 stream did not report HasChecksum")
	}
	if got.Trainer != "" {
		t.Errorf("v2 stream produced trainer %q, want empty", got.Trainer)
	}
	for c := 0; c < b.Model.Classes(); c++ {
		want, have := b.Model.Class(c), got.Model.Class(c)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("v2 class %d dim %d: %d != %d", c, i, have[i], want[i])
			}
		}
	}
}

// Legacy version-1 files (no footer) must still load, with HasChecksum
// false so callers can surface the "no checksum" note.
func TestVersion1Compatibility(t *testing.T) {
	b := trainedBundle(t)
	var buf bytes.Buffer
	if err := writeVersioned(&buf, b, versionNoChecksum); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("reading v1 stream: %v", err)
	}
	if got.HasChecksum {
		t.Error("v1 stream claims a checksum")
	}
	for c := 0; c < b.Model.Classes(); c++ {
		want, have := b.Model.Class(c), got.Model.Class(c)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("v1 class %d dim %d: %d != %d", c, i, have[i], want[i])
			}
		}
	}
	// v1 payload corruption goes undetected by design (no footer) as long
	// as the values stay structurally plausible — that is exactly why v2
	// exists. Corrupting a class word must therefore load "successfully".
	var raw bytes.Buffer
	if err := writeVersioned(&raw, b, versionNoChecksum); err != nil {
		t.Fatal(err)
	}
	bs := raw.Bytes()
	bs[len(bs)-3] ^= 0x01
	if _, err := Read(bytes.NewReader(bs)); err != nil {
		t.Fatalf("v1 stream with silent corruption rejected: %v", err)
	}
}

// TestAtomicWriteFilePreservesOriginal is the crash-safety contract of the
// save path: a write that fails mid-stream (here: a class element beyond
// the 16-bit wire range, detected halfway through serialization) must leave
// the previously saved file bit-for-bit intact and no temp litter behind.
func TestAtomicWriteFilePreservesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/m.model"
	good := trainedBundle(t)
	if err := WriteFile(path, good); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Poison the model so Write errors after the header is already out.
	bad := trainedBundle(t)
	bad.Model.Class(0)[0] = 1 << 20
	if err := WriteFile(path, bad); err == nil {
		t.Fatal("out-of-range class element serialized without error")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save corrupted the existing file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		for _, e := range entries {
			t.Logf("left behind: %s", e.Name())
		}
		t.Errorf("failed save left %d entries in the directory, want 1", len(entries))
	}

	// The intact original still loads and round-trips.
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model.D() != good.Model.D() {
		t.Error("reloaded model header mismatch")
	}

	// A failed write must also not clobber when no original exists.
	fresh := dir + "/fresh.model"
	if err := WriteFile(fresh, bad); err == nil {
		t.Fatal("poisoned bundle accepted")
	}
	if _, err := os.Stat(fresh); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("failed first save left a file: %v", err)
	}
}

func TestBinarizedRoundTrip(t *testing.T) {
	b := trainedBundle(t)
	b.Binarized = true
	b.BinarizedFromBW = b.Model.BW()
	if b.BinarizedFromBW == 0 {
		b.BinarizedFromBW = 16
	}
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Binarized {
		t.Error("binarized flag lost in round trip")
	}
	if got.BinarizedFromBW != b.BinarizedFromBW {
		t.Errorf("source bit-width %d, want %d", got.BinarizedFromBW, b.BinarizedFromBW)
	}
	// The payload stays the integer counters: they round-trip bit-exactly so
	// the binary model can be re-derived (and the file re-exactified).
	for c := 0; c < b.Model.Classes(); c++ {
		want, have := b.Model.Class(c), got.Model.Class(c)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("class %d dim %d: %d != %d", c, i, have[i], want[i])
			}
		}
	}

	// A non-binarized bundle reads back with the flag clear.
	plain := trainedBundle(t)
	buf.Reset()
	if err := Write(&buf, plain); err != nil {
		t.Fatal(err)
	}
	if got, err = Read(&buf); err != nil || got.Binarized || got.BinarizedFromBW != 0 {
		t.Errorf("plain bundle: binarized=%v srcBW=%d err=%v", got.Binarized, got.BinarizedFromBW, err)
	}
}

func TestBinarizedWriteValidatesSourceBW(t *testing.T) {
	b := trainedBundle(t)
	b.Binarized = true
	for _, bad := range []int{0, -1, 17} {
		b.BinarizedFromBW = bad
		if err := Write(io.Discard, b); err == nil {
			t.Errorf("source bit-width %d accepted", bad)
		}
	}
}

func TestBinarizedReadValidatesSourceBW(t *testing.T) {
	b := trainedBundle(t)
	b.Binarized = true
	b.BinarizedFromBW = 8
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	// The srcBW u16 sits just before the class payload (classes×D×2 bytes)
	// and the 4-byte CRC footer.
	off := len(raw) - 4 - b.Model.Classes()*b.Model.D()*2 - 2
	if raw[off] != 8 || raw[off+1] != 0 {
		t.Fatalf("srcBW not at computed offset %d (got % x)", off, raw[off:off+2])
	}
	raw[off] = 99 // out of [1,16]
	// Re-seal the CRC so the corruption reaches the semantic validator.
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(raw[:len(raw)-4]))
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("implausible binarization source bit-width accepted")
	} else if errors.Is(err, ErrChecksum) {
		t.Errorf("want a validation error, got checksum mismatch: %v", err)
	}
}

// Version-3 files (trainer, no representation block) must still load, as
// not binarized.
func TestVersion3Compatibility(t *testing.T) {
	b := trainedBundle(t)
	b.Trainer = "perceptron"
	b.Binarized = true // must be dropped, not mis-written, at v3
	b.BinarizedFromBW = 8
	var buf bytes.Buffer
	if err := writeVersioned(&buf, b, versionNoBinary); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("reading v3 stream: %v", err)
	}
	if got.Binarized || got.BinarizedFromBW != 0 {
		t.Errorf("v3 stream produced binarized=%v srcBW=%d, want false/0", got.Binarized, got.BinarizedFromBW)
	}
	if got.Trainer != "perceptron" {
		t.Errorf("v3 trainer %q, want perceptron", got.Trainer)
	}
	for c := 0; c < b.Model.Classes(); c++ {
		want, have := b.Model.Class(c), got.Model.Class(c)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("v3 class %d dim %d: %d != %d", c, i, have[i], want[i])
			}
		}
	}
}
