// Package parallel is the shared worker-pool core behind every batch API in
// this repository: a chunked parallel-for over contiguous index ranges.
//
// Determinism is the design constraint. Work is split into at most `workers`
// contiguous chunks, each chunk is owned by exactly one goroutine, and chunk
// boundaries depend only on (workers, n) — never on scheduling. Callers that
// reduce across chunks receive per-chunk results indexed by chunk and merge
// them in chunk order, so a parallel run is bit-identical to the serial run
// whenever the per-item work is independent (or the reduction operator is
// associative and commutative, as integer accumulation is).
//
// A worker count of 1 short-circuits to a plain loop on the calling
// goroutine: the serial path pays nothing for the abstraction.
package parallel

import (
	"runtime"
	"sync"
)

// Workers normalizes a worker-count knob: n <= 0 means GOMAXPROCS, anything
// else is returned unchanged. Every `Workers` field in the library funnels
// through this, so 0 (the zero value) always means "use all cores".
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// chunks returns the number of contiguous chunks to split n items into for
// the given (normalized) worker count.
func chunks(workers, n int) int {
	if workers > n {
		return n
	}
	return workers
}

// For runs fn(worker, i) for every i in [0, n). Indices are split into
// contiguous chunks, one per worker; fn observes the owning chunk index as
// `worker` (0 ≤ worker < min(Workers(workers), n)), so callers can maintain
// per-worker scratch without locking. workers <= 0 means GOMAXPROCS;
// workers == 1 runs serially on the calling goroutine.
func For(workers, n int, fn func(worker, i int)) {
	ForChunks(workers, n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(worker, i)
		}
	})
}

// ForChunks splits [0, n) into contiguous chunks and runs fn(worker, lo, hi)
// once per chunk, each on its own goroutine. Chunk w covers indices
// [lo, hi) with sizes differing by at most one, assigned low-to-high, so the
// partition is a pure function of (workers, n). workers <= 0 means
// GOMAXPROCS; a single chunk runs on the calling goroutine.
func ForChunks(workers, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := chunks(Workers(workers), n)
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	size, rem := n/w, n%w
	lo := 0
	for c := 0; c < w; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			fn(c, lo, hi)
		}(c, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForErr runs fn(i) for every i in [0, n) across workers and returns the
// error of the lowest failing index (matching what a serial loop that stops
// at the first error would report), or nil. All indices run even when an
// early one fails, so fn must not depend on earlier iterations.
func ForErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(workers, n, func(_, i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
