package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must normalize non-positive counts to >= 1")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		for _, n := range []int{0, 1, 2, 3, 5, 16, 97} {
			hits := make([]int32, n)
			For(workers, n, func(_, i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8} {
		for _, n := range []int{1, 2, 7, 64, 101} {
			var total int64
			seen := make([]int32, n)
			ForChunks(workers, n, func(worker, lo, hi int) {
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty chunk [%d,%d)", workers, n, lo, hi)
				}
				atomic.AddInt64(&total, int64(hi-lo))
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			if total != int64(n) {
				t.Fatalf("workers=%d n=%d: chunks cover %d indices", workers, n, total)
			}
			for i, s := range seen {
				if s != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, s)
				}
			}
		}
	}
}

// Chunk boundaries must be a pure function of (workers, n), so per-worker
// reductions merged in chunk order are deterministic.
func TestForChunksDeterministicBoundaries(t *testing.T) {
	bounds := func() string {
		ranges := make([]string, 4)
		ForChunks(4, 1001, func(worker, lo, hi int) {
			ranges[worker] = fmt.Sprintf("[%d,%d)", lo, hi)
		})
		return strings.Join(ranges, " ")
	}
	first := bounds()
	for i := 0; i < 10; i++ {
		if b := bounds(); b != first {
			t.Fatalf("chunk boundaries changed between identical calls: %s vs %s", first, b)
		}
	}
}

func TestForWorkerIndexOwnsContiguousRange(t *testing.T) {
	n, workers := 100, 4
	owner := make([]int32, n)
	For(workers, n, func(worker, i int) { owner[i] = int32(worker) })
	// Owners must be non-decreasing across the index space.
	for i := 1; i < n; i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("index %d owned by worker %d after worker %d", i, owner[i], owner[i-1])
		}
	}
}

func TestSerialShortCircuitRunsOnCaller(t *testing.T) {
	// With workers=1 the loop must run on the calling goroutine: a value
	// mutated without synchronization is visible immediately after.
	x := 0
	For(1, 10, func(_, i int) { x += i })
	if x != 45 {
		t.Fatalf("serial For sum = %d, want 45", x)
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForErr(4, 10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Fatalf("ForErr returned %v, want error of lowest failing index", err)
	}
	if err := ForErr(4, 10, func(int) error { return nil }); err != nil {
		t.Fatalf("ForErr returned %v on success", err)
	}
}
