// Package classifier implements GENERIC's HDC classification model:
// one-shot training by class bundling, iterative retraining on
// mispredictions (Fig. 1), inference with the modified cosine metric, plus
// the model-side hooks for the paper's energy-reduction techniques —
// bit-width quantization (§4.3.4/Fig. 6), on-demand dimension reduction
// with per-128-dimension sub-norms (§4.3.3/Fig. 5), and class-memory
// bit-error injection for voltage over-scaling studies.
package classifier

import (
	"fmt"
	"math"
	"sort"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/parallel"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/quality"
	"github.com/edge-hdc/generic/internal/rng"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// SubNormGranularity is the dimension granularity at which GENERIC stores
// squared sub-norms in the norm2 memory, enabling accurate similarity after
// on-demand dimension reduction (paper §4.3.3).
const SubNormGranularity = 128

// Options configures training.
type Options struct {
	// Epochs is the number of retraining passes after initialization.
	// The paper uses a constant 20.
	Epochs int
	// Seed drives the per-epoch shuffling of the training set.
	Seed uint64
	// BW is the class-element bit-width; class values saturate at this
	// width during accumulation, like the accelerator's 16-bit memories.
	// Zero means 16.
	BW int
	// Workers bounds the parallelism of the batch phases of training (the
	// initialization bundling and norm refresh). Zero or negative means
	// GOMAXPROCS; 1 forces the serial path. Retraining stays sequential
	// regardless — its per-sample update order is part of the algorithm —
	// so results are bit-identical for every worker count.
	Workers int
	// Trainer selects the training strategy by registry name (see
	// TrainerNames): "" or "perceptron" is the paper's one-shot+perceptron
	// path, "lehdc" the learned-classifier strategy.
	Trainer string
	// LR is the LeHDC initial learning rate (zero means 0.5); LRDecay the
	// per-epoch multiplicative decay (zero means 0.95); BatchSize the
	// mini-batch size (zero means 16). The perceptron strategy ignores all
	// three.
	LR        float64
	LRDecay   float64
	BatchSize int
}

func (o Options) withDefaults() Options {
	if o.Epochs == 0 {
		o.Epochs = 20
	}
	if o.BW == 0 {
		o.BW = 16
	}
	if o.LR == 0 {
		o.LR = 0.5
	}
	if o.LRDecay == 0 {
		o.LRDecay = 0.95
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	return o
}

// Model is a trained HDC classification model: one integer hypervector per
// class plus the squared-norm bookkeeping the similarity metric needs.
type Model struct {
	d       int
	classes []hdc.Vec
	bw      int
	// norm2[c] is ‖C_c‖²; subNorm2[c][k] is the squared norm of the first
	// (k+1)·SubNormGranularity dimensions of class c.
	norm2    []int64
	subNorm2 [][]int64
}

// NewModel returns an all-zero model with nC classes of dimensionality d.
func NewModel(d, nC, bw int) *Model {
	if d <= 0 || d%SubNormGranularity != 0 {
		panic(fmt.Sprintf("classifier: D=%d must be a positive multiple of %d", d, SubNormGranularity))
	}
	if nC < 2 {
		panic(fmt.Sprintf("classifier: need at least 2 classes, got %d", nC))
	}
	if bw == 0 {
		bw = 16
	}
	m := &Model{d: d, bw: bw}
	m.classes = make([]hdc.Vec, nC)
	for c := range m.classes {
		m.classes[c] = hdc.NewVec(d)
	}
	m.norm2 = make([]int64, nC)
	m.subNorm2 = make([][]int64, nC)
	for c := range m.subNorm2 {
		m.subNorm2[c] = make([]int64, d/SubNormGranularity)
	}
	return m
}

// D returns the model dimensionality; Classes the class count; BW the
// class-element bit-width.
func (m *Model) D() int       { return m.d }
func (m *Model) Classes() int { return len(m.classes) }
func (m *Model) BW() int      { return m.bw }

// Class exposes class c's hypervector. Callers must not modify it; use
// AddEncoded/Update. The fault layer (internal/faults) is the sanctioned
// exception: it mutates class words in place to model memory bit errors and
// refreshes norms afterwards.
func (m *Model) Class(c int) hdc.Vec { return m.classes[c] }

// Norm2 returns ‖C_c‖².
func (m *Model) Norm2(c int) int64 { return m.norm2[c] }

// SetClass overwrites class c's hypervector with a copy of v and refreshes
// its norms — the model-loading path of the config port.
func (m *Model) SetClass(c int, v hdc.Vec) {
	if len(v) != m.d {
		panic(fmt.Sprintf("classifier: SetClass length %d, want %d", len(v), m.d))
	}
	copy(m.classes[c], v)
	m.refreshNorms(c)
}

// AddEncoded bundles an encoded hypervector into class c (training
// initialization, Fig. 1a) and refreshes that class's norms, in one fused
// pass over the class vector.
//
//generic:hotpath
func (m *Model) AddEncoded(h hdc.Vec, c int) {
	m.norm2[c] = m.classes[c].AddSatNorms(h, m.bw, SubNormGranularity, m.subNorm2[c])
}

// Update applies the retraining rule for a query encoded as h that was
// predicted as class wrong but belongs to class correct (Fig. 1c). Each
// class is updated by one fused accumulate-saturate-renorm sweep instead of
// the historical Sub/Add + Saturate + norm-recompute sequence (six full
// class-vector passes); results are bit-identical.
//
//generic:hotpath
func (m *Model) Update(h hdc.Vec, correct, wrong int) {
	m.norm2[wrong] = m.classes[wrong].SubSatNorms(h, m.bw, SubNormGranularity, m.subNorm2[wrong])
	m.norm2[correct] = m.classes[correct].AddSatNorms(h, m.bw, SubNormGranularity, m.subNorm2[correct])
}

// refreshNorms recomputes norm2 and the sub-norm ladder for class c.
//
//generic:hotpath
func (m *Model) refreshNorms(c int) {
	v := m.classes[c]
	var acc int64
	sub := m.subNorm2[c]
	for k := range sub {
		end := (k + 1) * SubNormGranularity
		for i := k * SubNormGranularity; i < end; i++ {
			acc += int64(v[i]) * int64(v[i])
		}
		sub[k] = acc
	}
	m.norm2[c] = acc
}

// RefreshAllNorms recomputes the norm bookkeeping for every class. Call it
// after mutating class vectors externally (quantization, fault injection).
func (m *Model) RefreshAllNorms() {
	for c := range m.classes {
		m.refreshNorms(c)
	}
}

// Predict returns the class with the highest modified-cosine score for the
// encoded query h, and that score.
//
//generic:hotpath
func (m *Model) Predict(h hdc.Vec) (class int, score float64) {
	return m.PredictDims(h, m.d, true)
}

// PredictDims scores only the first dims dimensions (rounded down to the
// sub-norm granularity, minimum one chunk), modeling on-demand dimension
// reduction. When updatedNorms is true the per-chunk sub-norms are used
// (the paper's fix); when false the full-model norms are used (the
// "Constant" curves of Fig. 5, which lose up to 20% accuracy).
//
//generic:hotpath
func (m *Model) PredictDims(h hdc.Vec, dims int, updatedNorms bool) (class int, score float64) {
	class, score, _ = m.PredictDimsMargin(h, dims, updatedNorms)
	return class, score
}

// PredictDimsMargin is PredictDims plus the normalized top-2 confidence
// margin in [0,1] (score gap over combined score magnitude — the quality
// signal the scoring loop computes for free). Every observing predict path
// funnels through here; the margin and winner feed internal/quality.
//
//generic:hotpath
func (m *Model) PredictDimsMargin(h hdc.Vec, dims int, updatedNorms bool) (class int, score, margin float64) {
	start := telemetry.Now()
	best, s1, s2 := m.scoreTop2(h, dims, updatedNorms)
	margin = normMargin(s1, s2)
	quality.ObservePredict(best, margin)
	telemetry.PredictNS.ObserveSince(start)
	return best, s1, margin
}

// MarginDims scores the query without telemetry or quality observation —
// the profiling and shadow-comparison path, which must not count itself as
// serving traffic.
func (m *Model) MarginDims(h hdc.Vec, dims int) (class int, margin float64) {
	best, s1, s2 := m.scoreTop2(h, dims, true)
	return best, normMargin(s1, s2)
}

// scoreTop2 runs the scoring loop tracking the two highest modified-cosine
// scores. Ties keep the lower class index, so the winner is bit-identical
// to the historical single-best loop.
//
//generic:hotpath
func (m *Model) scoreTop2(h hdc.Vec, dims int, updatedNorms bool) (best int, s1, s2 float64) {
	if dims > m.d {
		dims = m.d
	}
	chunks := dims / SubNormGranularity
	if chunks < 1 {
		chunks = 1
	}
	dims = chunks * SubNormGranularity
	best, s1, s2 = 0, -1e308, -1e308
	for c, cv := range m.classes {
		dot := h.DotPrefix(cv, dims)
		var n2 int64
		if updatedNorms {
			n2 = m.subNorm2[c][chunks-1]
		} else {
			n2 = m.norm2[c]
		}
		s := hdc.CosineScore(dot, n2)
		if s > s1 {
			best, s1, s2 = c, s, s1
		} else if s > s2 {
			s2 = s
		}
	}
	return best, s1, s2
}

// normMargin normalizes a top-2 score gap to [0,1]: the gap over the
// combined score magnitude. Degenerate cases (non-positive gap, zero
// magnitude, single-class models) collapse to zero — "no confidence".
//
//generic:hotpath
func normMargin(s1, s2 float64) float64 {
	num := s1 - s2
	den := math.Abs(s1) + math.Abs(s2)
	if num <= 0 || den <= 0 || num != num || den != den {
		return 0
	}
	m := num / den
	if m > 1 {
		m = 1
	}
	return m
}

// Quantize rescales every class vector to bw-bit precision (bw ≤ 16) and
// refreshes norms, modeling loading a quantized model into the accelerator
// whose mask unit masks out unused bits. bw=1 produces a bipolar ±1 model.
func (m *Model) Quantize(bw int) {
	if bw < 1 || bw > 16 {
		panic(fmt.Sprintf("classifier: Quantize bw=%d out of range [1,16]", bw))
	}
	if bw == 1 {
		for _, cv := range m.classes {
			for i, v := range cv {
				if v >= 0 {
					cv[i] = 1
				} else {
					cv[i] = -1
				}
			}
		}
	} else {
		// Scale by a percentile of |value| rather than the maximum:
		// class-element distributions are heavy-tailed, and letting a few
		// outliers set the step size would flush most elements to zero at
		// low widths. The percentile adapts to the width — a bw-bit grid
		// has 2^(bw−1) positive levels, so the scale is placed where all
		// levels stay populated (50th percentile at 2 bits up to ~99th at
		// 8+); values beyond it saturate (QuantizeTo clamps).
		mags := make([]int32, 0, len(m.classes)*m.d)
		for _, cv := range m.classes {
			for _, v := range cv {
				if v < 0 {
					v = -v
				}
				mags = append(mags, v)
			}
		}
		sort.Slice(mags, func(i, j int) bool { return mags[i] < mags[j] })
		pct := 1 - 1/float64(int32(1)<<uint(bw-1))
		idx := int(pct * float64(len(mags)))
		if idx >= len(mags) {
			idx = len(mags) - 1
		}
		scale := mags[idx]
		if scale == 0 {
			scale = 1
		}
		for _, cv := range m.classes {
			cv.QuantizeTo(bw, scale)
		}
	}
	m.bw = bw
	m.RefreshAllNorms()
}

// InjectBitErrors flips each stored class-memory bit independently with
// probability ber, modeling SRAM faults under voltage over-scaling
// (Fig. 6). Elements are interpreted as bw-bit two's-complement words
// (sign-magnitude ±1 for bw=1). It returns the number of bits flipped and
// refreshes norms.
func (m *Model) InjectBitErrors(ber float64, r *rng.Rand) int {
	if ber <= 0 {
		return 0
	}
	flipped := 0
	if m.bw == 1 {
		for _, cv := range m.classes {
			for i := range cv {
				if r.Float64() < ber {
					cv[i] = -cv[i]
					flipped++
				}
			}
		}
	} else {
		mask := uint32(1)<<uint(m.bw) - 1
		signBit := uint32(1) << uint(m.bw-1)
		for _, cv := range m.classes {
			for i := range cv {
				u := uint32(cv[i]) & mask
				for b := 0; b < m.bw; b++ {
					if r.Float64() < ber {
						u ^= 1 << uint(b)
						flipped++
					}
				}
				// Sign-extend back to int32.
				if u&signBit != 0 {
					u |= ^mask
				}
				cv[i] = int32(u)
			}
		}
	}
	m.RefreshAllNorms()
	return flipped
}

// Adapt performs one online-learning step on an encoded sample: predict,
// and on misprediction apply the retraining rule. It returns the prediction
// made before any update and whether an update occurred. This is the
// streaming path of the paper's IoT-gateway scenario: the model keeps
// improving from labelled feedback without a batch retraining pass.
//
//generic:hotpath
func (m *Model) Adapt(h hdc.Vec, label int) (pred int, updated bool) {
	start := telemetry.Now()
	pred, _ = m.Predict(h)
	// The predict-before-apply doubles as a streaming accuracy sample: the
	// label arrived with the request, so correctness costs nothing extra.
	quality.ObserveAdapt(label, pred == label)
	if pred != label {
		m.Update(h, label, pred)
		updated = true
		telemetry.AdaptUpdates.Inc()
	}
	telemetry.AdaptNS.ObserveSince(start)
	return pred, updated
}

// InjectBitErrorsSeeded is InjectBitErrors with a self-contained seed, for
// callers outside the module's internal packages.
func (m *Model) InjectBitErrorsSeeded(ber float64, seed uint64) int {
	return m.InjectBitErrors(ber, rng.New(seed))
}

// Clone returns a deep copy of the model, so fault-injection sweeps can
// reuse one trained model.
func (m *Model) Clone() *Model {
	c := &Model{d: m.d, bw: m.bw}
	c.classes = make([]hdc.Vec, len(m.classes))
	for i, v := range m.classes {
		c.classes[i] = v.Clone()
	}
	c.norm2 = append([]int64(nil), m.norm2...)
	c.subNorm2 = make([][]int64, len(m.subNorm2))
	for i, s := range m.subNorm2 {
		c.subNorm2[i] = append([]int64(nil), s...)
	}
	return c
}

// TrainEncoded builds a model from pre-encoded hypervectors with the
// strategy selected by opt.Trainer (the paper's one-shot bundling +
// perceptron retraining by default). Labels must lie in [0, nC). The number
// of misclassified samples in the final epoch is returned alongside the
// model (zero means the model converged).
//
// Like TrainEncodedResult, this is the Must form of Train: malformed input
// or an unknown trainer name panics with the error Train would return.
func TrainEncoded(encoded []hdc.Vec, labels []int, nC int, opt Options) (*Model, int) {
	m, res := TrainEncodedResult(encoded, labels, nC, opt)
	return m, res.FinalUpdates
}

// TrainEncodedResult is the Must wrapper over Train, reporting the full
// TrainResult: validation failures panic instead of returning an error, for
// call sites (experiments, benchmarks, tests) whose inputs are correct by
// construction. Pipeline.Fit and other error-propagating callers use Train.
func TrainEncodedResult(encoded []hdc.Vec, labels []int, nC int, opt Options) (*Model, TrainResult) {
	m, res, err := Train(encoded, labels, nC, opt)
	if err != nil {
		panic(err)
	}
	return m, res
}

// PredictBatch classifies every encoded query across workers workers
// (<= 0 means GOMAXPROCS, 1 is serial) and returns the predictions in input
// order. Scoring only reads the model, so any worker count yields identical
// results; the model must not be mutated concurrently.
func (m *Model) PredictBatch(encoded []hdc.Vec, workers int) []int {
	return m.PredictDimsBatch(encoded, m.d, true, workers)
}

// PredictDimsBatch is PredictBatch under dimension reduction (see
// PredictDims).
func (m *Model) PredictDimsBatch(encoded []hdc.Vec, dims int, updatedNorms bool, workers int) []int {
	sp := perf.Begin("score.batch")
	defer sp.End()
	out := make([]int, len(encoded))
	parallel.For(workers, len(encoded), func(_, i int) {
		out[i], _ = m.PredictDims(encoded[i], dims, updatedNorms)
	})
	return out
}

// Accuracy returns the fraction of encoded queries whose prediction matches
// labels, with the scoring fanned across workers workers (<= 0 means
// GOMAXPROCS, 1 is serial). It is the canonical batch scorer — the single
// form behind the facade's Pipeline.Accuracy — and is bit-identical for
// every worker count: each worker counts its own contiguous chunk and the
// counts are summed.
func Accuracy(m *Model, encoded []hdc.Vec, labels []int, workers int) float64 {
	return EvaluateDimsBatch(m, encoded, labels, m.d, true, workers)
}

// EvaluateDims is Accuracy under dimension reduction (see PredictDims).
func EvaluateDims(m *Model, encoded []hdc.Vec, labels []int, dims int, updatedNorms bool) float64 {
	return EvaluateDimsBatch(m, encoded, labels, dims, updatedNorms, 1)
}

// EvaluateDimsBatch is EvaluateDims across workers workers.
func EvaluateDimsBatch(m *Model, encoded []hdc.Vec, labels []int, dims int, updatedNorms bool, workers int) float64 {
	if len(encoded) == 0 {
		return 0
	}
	w := parallel.Workers(workers)
	counts := make([]int, w)
	parallel.ForChunks(w, len(encoded), func(worker, lo, hi int) {
		correct := 0
		for i := lo; i < hi; i++ {
			if pred, _ := m.PredictDims(encoded[i], dims, updatedNorms); pred == labels[i] {
				correct++
			}
		}
		counts[worker] = correct
	})
	correct := 0
	for _, c := range counts {
		correct += c
	}
	return float64(correct) / float64(len(encoded))
}
