package classifier

import (
	"fmt"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/parallel"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/quality"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// BinaryModel is the packed binary inference representation: one
// sign-binarized hypervector per class, scored by Hamming distance (XOR +
// popcount) instead of the integer dot product — the BinHD-style limit case
// of the accelerator's bw-programmable memories. It is derived from a
// trained Model by Binarize and is immutable under inference; training and
// adaptation stay on the integer Model, which re-derives the packed classes
// it touched.
//
// Scoring equivalence: on a sign-binarized model every class vector is
// bipolar, so all (sub-)norms equal the scored dimension count and the
// modified-cosine ranking degenerates to the dot-product ranking, which is
// exactly the min-Hamming ranking (dot = dims − 2·hamming). BinaryModel
// therefore predicts bit-identically to the integer path on a Quantize(1)
// model — the golden equivalence test locks this.
type BinaryModel struct {
	d        int
	classes  []*hdc.BinVec
	sourceBW int // bit-width of the counters this model was binarized from
}

// Binarize packs the sign of every class counter of m (v >= 0 → +1) into a
// binary model. The source model is not modified.
func Binarize(m *Model) *BinaryModel {
	b := &BinaryModel{d: m.d, sourceBW: m.bw, classes: make([]*hdc.BinVec, len(m.classes))}
	for c, cv := range m.classes {
		bv := hdc.NewBinVec(m.d)
		bv.PackSigns(cv)
		b.classes[c] = bv
	}
	return b
}

// D returns the dimensionality; Classes the class count; SourceBW the
// class-element bit-width of the integer model this was binarized from
// (binarization provenance, persisted by modelio v4).
func (b *BinaryModel) D() int        { return b.d }
func (b *BinaryModel) Classes() int  { return len(b.classes) }
func (b *BinaryModel) SourceBW() int { return b.sourceBW }

// Class exposes class c's packed hypervector. Callers must not modify it;
// the fault layer (internal/faults) is the sanctioned exception — it flips
// stored bits in place to model memory errors on the packed representation.
func (b *BinaryModel) Class(c int) *hdc.BinVec { return b.classes[c] }

// RebinarizeClass re-derives class c's packed vector from the integer model
// — the maintenance hook for online adaptation, which touches at most two
// classes per step.
func (b *BinaryModel) RebinarizeClass(m *Model, c int) {
	if m.d != b.d {
		panic(fmt.Sprintf("classifier: RebinarizeClass D=%d, binary model D=%d", m.d, b.d))
	}
	b.classes[c].PackSigns(m.classes[c])
	b.sourceBW = m.bw
}

// Predict returns the class whose packed vector is nearest to the packed
// query q in Hamming distance, and that distance. Ties break toward the
// lower class index, like the integer path.
//
//generic:hotpath
func (b *BinaryModel) Predict(q *hdc.BinVec) (class, hamming int) {
	return b.PredictDims(q, b.d)
}

// PredictDims scores only the first dims dimensions (rounded down to the
// sub-norm granularity, minimum one chunk — the exact path's rounding), the
// packed form of on-demand dimension reduction. On a bipolar model the
// per-chunk norms are the chunk sizes, so no sub-norm memory is consulted:
// min-Hamming over the prefix is already the updated-norms ranking.
//
//generic:hotpath
func (b *BinaryModel) PredictDims(q *hdc.BinVec, dims int) (class, hamming int) {
	class, hamming, _ = b.PredictDimsMargin(q, dims)
	return class, hamming
}

// PredictDimsMargin is PredictDims plus the normalized top-2 confidence
// margin: the Hamming gap between the two nearest classes over the scored
// dimension count, the binary-mode analogue of the exact path's score-gap
// margin. Every observing binary predict funnels through here.
//
//generic:hotpath
func (b *BinaryModel) PredictDimsMargin(q *hdc.BinVec, dims int) (class, hamming int, margin float64) {
	start := telemetry.Now()
	best, h1, h2, scored := b.scoreTop2(q, dims)
	margin = hammingMargin(h1, h2, scored)
	quality.ObservePredict(best, margin)
	telemetry.PredictNS.ObserveSince(start)
	return best, h1, margin
}

// MarginDims scores the packed query without telemetry or quality
// observation — the profiling path.
func (b *BinaryModel) MarginDims(q *hdc.BinVec, dims int) (class int, margin float64) {
	best, h1, h2, scored := b.scoreTop2(q, dims)
	return best, hammingMargin(h1, h2, scored)
}

// scoreTop2 runs the Hamming scoring loop tracking the two nearest classes.
// Ties keep the lower class index, matching the historical single-best loop.
//
//generic:hotpath
func (b *BinaryModel) scoreTop2(q *hdc.BinVec, dims int) (best, h1, h2, scored int) {
	if dims > b.d {
		dims = b.d
	}
	chunks := dims / SubNormGranularity
	if chunks < 1 {
		chunks = 1
	}
	dims = chunks * SubNormGranularity
	best, h1, h2 = 0, b.d+1, b.d+1
	if dims == b.d {
		for c, cv := range b.classes {
			if h := q.Hamming(cv); h < h1 {
				best, h1, h2 = c, h, h1
			} else if h < h2 {
				h2 = h
			}
		}
	} else {
		for c, cv := range b.classes {
			if h := q.HammingPrefix(cv, dims); h < h1 {
				best, h1, h2 = c, h, h1
			} else if h < h2 {
				h2 = h
			}
		}
	}
	return best, h1, h2, dims
}

// hammingMargin normalizes a Hamming gap to [0,1] over the scored dimension
// count. A missing runner-up (single-class model) collapses to zero.
//
//generic:hotpath
func hammingMargin(h1, h2, dims int) float64 {
	if dims <= 0 || h2 <= h1 || h2 > dims {
		return 0
	}
	m := float64(h2-h1) / float64(dims)
	if m > 1 {
		m = 1
	}
	return m
}

// PredictBatch classifies every packed query across workers workers (<= 0
// means GOMAXPROCS, 1 is serial) and returns predictions in input order.
// Scoring only reads the model, so any worker count yields identical
// results.
func (b *BinaryModel) PredictBatch(encoded []*hdc.BinVec, workers int) []int {
	out := make([]int, len(encoded))
	b.PredictBatchInto(out, encoded, workers)
	return out
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice —
// the zero-allocation batch scoring path. dst must have len(encoded).
func (b *BinaryModel) PredictBatchInto(dst []int, encoded []*hdc.BinVec, workers int) {
	if len(dst) != len(encoded) {
		panic(fmt.Sprintf("classifier: PredictBatchInto dst length %d, want %d", len(dst), len(encoded)))
	}
	sp := perf.Begin("score.batch")
	defer sp.End()
	if parallel.Workers(workers) == 1 {
		// Serial fast path: no closures, so steady-state batch scoring is
		// allocation-free (the alloc-budget gate binds this at zero).
		for i, q := range encoded {
			dst[i], _ = b.Predict(q)
		}
		return
	}
	parallel.For(workers, len(encoded), func(_, i int) {
		dst[i], _ = b.Predict(encoded[i])
	})
}

// Clone returns a deep copy, so fault sweeps can corrupt a binary model
// without losing the original.
func (b *BinaryModel) Clone() *BinaryModel {
	c := &BinaryModel{d: b.d, sourceBW: b.sourceBW, classes: make([]*hdc.BinVec, len(b.classes))}
	for i, v := range b.classes {
		c.classes[i] = v.Clone()
	}
	return c
}

// BinaryAccuracy returns the fraction of packed queries predicted as their
// label, chunk-counted per worker and summed like the integer Accuracy.
func BinaryAccuracy(b *BinaryModel, encoded []*hdc.BinVec, labels []int, workers int) float64 {
	if len(encoded) == 0 {
		return 0
	}
	w := parallel.Workers(workers)
	counts := make([]int, w)
	parallel.ForChunks(w, len(encoded), func(worker, lo, hi int) {
		correct := 0
		for i := lo; i < hi; i++ {
			if pred, _ := b.Predict(encoded[i]); pred == labels[i] {
				correct++
			}
		}
		counts[worker] = correct
	})
	correct := 0
	for _, c := range counts {
		correct += c
	}
	return float64(correct) / float64(len(encoded))
}
