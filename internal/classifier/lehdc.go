package classifier

import (
	"math"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/rng"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// lehdcTemp is the softmax temperature (inverse): logits are cosine-scaled
// dot products in roughly [-1, 1], and multiplying by this sharpens them
// into a useful cross-entropy regime. Fixed rather than an Option — it
// trades off against LR, and one free scale knob is enough.
const lehdcTemp = 8.0

// lehdcMomentum is the SGD velocity coefficient.
const lehdcMomentum = 0.9

// LeHDCTrainer trains the class hypervectors as a learned linear classifier
// (LeHDC: "Learning-Based Hyperdimensional Computing Classifier", DAC'22 —
// see PAPERS.md): float32 shadow weights are initialized from the one-shot
// bundled model and refined by mini-batch softmax/cross-entropy gradient
// descent with per-epoch learning-rate decay, then quantized back to the
// accelerator's bw-saturated int representation. The deployed artifact is a
// plain *Model — Predict, Quantize, fault injection, and modelio consume it
// unmodified, and the paper's bw-programmable class memory loads it
// unchanged.
//
// Geometry: each sample is used L2-normalized (x = h/‖h‖, applied as a
// per-sample scale, never materialized), so logits start as lehdcTemp·cosine
// similarities against the unit-normalized bundled classes. Compared with
// the perceptron rule, the softmax loss moves every class vector on every
// sample — weighted by how wrong its probability is — instead of only the
// confused pair, which is what closes the accuracy gap at equal D.
//
// Determinism: the initialization bundling reuses bundleClasses (worker-fanned,
// order-independent integer sums); everything after it — shuffling, logits,
// gradient accumulation, weight updates — runs sequentially in shuffle
// order, so the model is bit-identical for every Options.Workers value.
type LeHDCTrainer struct{}

// Name implements Trainer.
func (LeHDCTrainer) Name() string { return "lehdc" }

// Train implements Trainer.
func (LeHDCTrainer) Train(encoded []hdc.Vec, labels []int, nC int, opt Options) (*Model, TrainResult) {
	sp := perf.Begin("fit")
	defer sp.End()
	m := bundleClasses(encoded, labels, nC, opt, sp)
	d := m.d

	// Shadow weights: unit-normalized float32 copies of the bundled classes —
	// the warm start LeHDC prescribes (a random init wastes the one-shot
	// model's head start).
	W := make([][]float32, nC)
	for c := 0; c < nC; c++ {
		W[c] = make([]float32, d)
		inv := 1.0
		if n2 := m.norm2[c]; n2 > 0 {
			inv = 1 / math.Sqrt(float64(n2))
		}
		for j, v := range m.classes[c] {
			W[c][j] = float32(float64(v) * inv)
		}
	}
	// Per-sample inverse norms, applied as logit/gradient scales.
	invNorm := make([]float64, len(encoded))
	for i, h := range encoded {
		if n2 := h.Norm2(); n2 > 0 {
			invNorm[i] = 1 / math.Sqrt(float64(n2))
		}
	}

	r := rng.New(opt.Seed)
	order := make([]int, len(encoded))
	for i := range order {
		order[i] = i
	}
	grad := make([][]float32, nC)
	vel := make([][]float32, nC)
	for c := range grad {
		grad[c] = make([]float32, d)
		vel[c] = make([]float32, d)
	}
	z := make([]float64, nC)
	probs := make([]float64, nC)

	lr := opt.LR
	res := TrainResult{}
	for e := 0; e < opt.Epochs; e++ {
		epochSpan := sp.Child("fit.epoch.lehdc")
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lossSum := 0.0
		wrong := 0
		for lo := 0; lo < len(order); lo += opt.BatchSize {
			hi := lo + opt.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			for c := range grad {
				clear(grad[c])
			}
			for _, i := range order[lo:hi] {
				h, y := encoded[i], labels[i]
				scale := lehdcTemp * invNorm[i]
				best := 0
				for c := 0; c < nC; c++ {
					var acc float64
					wc := W[c]
					for j, x := range h {
						acc += float64(wc[j]) * float64(x)
					}
					z[c] = acc * scale
					if z[c] > z[best] {
						best = c
					}
				}
				if best != y {
					wrong++
				}
				// Stable softmax and cross-entropy against label y.
				var sum float64
				for c := 0; c < nC; c++ {
					probs[c] = math.Exp(z[c] - z[best])
					sum += probs[c]
				}
				lossSum += math.Log(sum) - (z[y] - z[best])
				// dL/dW[c] = (p_c − 1{c=y}) · temp/‖h‖ · h, accumulated over
				// the mini-batch.
				for c := 0; c < nC; c++ {
					g := probs[c] / sum
					if c == y {
						g -= 1
					}
					a := float32(g * scale)
					if a == 0 {
						continue
					}
					gc := grad[c]
					for j, x := range h {
						gc[j] += a * float32(x)
					}
				}
			}
			// Momentum SGD: the near-parallel class geometry (bundled classes
			// share a large common component) makes plain SGD ill-conditioned;
			// the velocity term accumulates the consistent discriminative
			// direction across batches.
			step := float32(lr / float64(hi-lo))
			for c := range W {
				wc, gc, vc := W[c], grad[c], vel[c]
				for j := range wc {
					vc[j] = lehdcMomentum*vc[j] - step*gc[j]
					wc[j] += vc[j]
				}
			}
		}
		loss := lossSum / float64(len(encoded))
		res.EpochsRun = e + 1
		res.FinalUpdates = wrong
		res.FinalLoss = loss
		res.Epochs = append(res.Epochs, EpochStat{Epoch: e + 1, Updates: wrong, Loss: loss, LR: lr})
		telemetry.FitUpdates.Add(int64(wrong))
		telemetry.FitLossMicro.Set(int64(loss * 1e6))
		epochSpan.End()
		lr *= opt.LRDecay
		// No early stop at wrong == 0: unlike the perceptron (for which zero
		// updates is a fixed point), cross-entropy keeps widening margins
		// after the training set is separated, and those margins are what
		// survive quantize-back.
	}

	quantizeShadow(m, W, sp)
	return m, res
}

// quantizeShadow writes the float32 shadow weights back into the model's
// bw-saturated int class memory: every weight is scaled so the largest
// magnitude lands on the top positive bw-bit level, rounded, clamped via
// Saturate, and the norm bookkeeping is rebuilt with RefreshAllNorms. This
// is the quantize-back rule of DESIGN.md §12 — after it the model is
// indistinguishable in kind from a perceptron-trained one.
func quantizeShadow(m *Model, W [][]float32, sp *perf.Span) {
	qSpan := sp.Child("fit.quantize")
	defer qSpan.End()
	var maxAbs float32
	for _, wc := range W {
		for _, w := range wc {
			if w < 0 {
				w = -w
			}
			if w > maxAbs {
				maxAbs = w
			}
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	hi := float64(int32(1)<<uint(m.bw-1) - 1)
	for c, wc := range W {
		cv := m.classes[c]
		for j, w := range wc {
			cv[j] = int32(math.Round(float64(w) / float64(maxAbs) * hi))
		}
		cv.Saturate(m.bw)
	}
	m.RefreshAllNorms()
}
