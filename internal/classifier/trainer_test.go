package classifier

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"testing"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// modelHash fingerprints a model's class memory: SHA-256 over every class
// element in class-major order, little-endian int32.
func modelHash(m *Model) string {
	h := sha256.New()
	var buf [4]byte
	for c := 0; c < m.Classes(); c++ {
		for _, v := range m.Class(c) {
			binary.LittleEndian.PutUint32(buf[:], uint32(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestPerceptronGoldenBytes pins PerceptronTrainer to the pre-refactor
// TrainEncodedResult output: the hash below was captured from the monolithic
// trainer at the commit before the strategy split, on this exact synthetic
// problem and Options. If this test fails, the refactor changed the paper
// path's arithmetic — that is a bug, not a baseline to update.
func TestPerceptronGoldenBytes(t *testing.T) {
	const preRefactorSHA256 = "a6941cc86ae2ec141ad8d339a98a765863f0ce900fbe436d73b80d4bf896c049"
	r := rng.New(42)
	train, labels, _ := syntheticEncoded(r, 256, 8, 40, 0.47)
	m, res := TrainEncodedResult(train, labels, 8, Options{Epochs: 7, Seed: 99})
	if res.EpochsRun != 7 || res.FinalUpdates != 7 {
		t.Fatalf("golden run shape drifted: epochs=%d finalUpdates=%d, want 7/7", res.EpochsRun, res.FinalUpdates)
	}
	if got := modelHash(m); got != preRefactorSHA256 {
		t.Fatalf("PerceptronTrainer model bytes diverged from pre-refactor trainer:\n got %s\nwant %s", got, preRefactorSHA256)
	}
}

// TestTrainerDeterminismAcrossWorkers is the table-driven determinism suite:
// for every registered strategy, the same seed must produce a bit-identical
// model for Workers ∈ {1, 2, 8}, and re-running at the same worker count
// must reproduce the model exactly.
func TestTrainerDeterminismAcrossWorkers(t *testing.T) {
	cases := []struct {
		trainer string
		opt     Options
	}{
		{"perceptron", Options{Epochs: 5, Seed: 7}},
		{"lehdc", Options{Epochs: 5, Seed: 7}},
		{"lehdc", Options{Epochs: 4, Seed: 11, BW: 8, LR: 0.1, LRDecay: 0.9, BatchSize: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.trainer, func(t *testing.T) {
			r := rng.New(21)
			train, labels, _ := syntheticEncoded(r, 256, 6, 25, 0.4)
			opt := tc.opt
			opt.Trainer = tc.trainer

			var want string
			var wantRes TrainResult
			for _, workers := range []int{1, 1, 2, 8} {
				opt.Workers = workers
				m, res, err := Train(train, labels, 6, opt)
				if err != nil {
					t.Fatal(err)
				}
				if res.Trainer != tc.trainer {
					t.Fatalf("TrainResult.Trainer = %q, want %q", res.Trainer, tc.trainer)
				}
				got := modelHash(m)
				if want == "" {
					want, wantRes = got, res
					continue
				}
				if got != want {
					t.Errorf("workers=%d: model bytes differ from serial run", workers)
				}
				if res.EpochsRun != wantRes.EpochsRun || res.FinalUpdates != wantRes.FinalUpdates ||
					res.FinalLoss != wantRes.FinalLoss {
					t.Errorf("workers=%d: TrainResult differs: %+v vs %+v", workers, res, wantRes)
				}
			}
		})
	}
}

// TestTrainValidation covers the validated error path that replaced the
// historical panic, plus the Must wrapper's panic behavior.
func TestTrainValidation(t *testing.T) {
	r := rng.New(1)
	train, labels, _ := syntheticEncoded(r, 256, 3, 4, 0.2)
	bad := []struct {
		name    string
		encoded []hdc.Vec
		labels  []int
		nC      int
		opt     Options
		wantSub string
	}{
		{"empty", nil, nil, 3, Options{}, "empty training set"},
		{"length mismatch", train, labels[:5], 3, Options{}, "vs 5 labels"},
		{"one class", train, labels, 1, Options{}, "at least 2 classes"},
		{"label out of range", train, append(append([]int{}, labels[:len(labels)-1]...), 9), 3, Options{}, "out of range"},
		{"ragged dims", append(append([]hdc.Vec{}, train...), hdc.NewVec(128)), append(append([]int{}, labels...), 0), 3, Options{}, "has 128 dims"},
		{"bad dimensionality", []hdc.Vec{hdc.NewVec(100), hdc.NewVec(100)}, []int{0, 1}, 2, Options{}, "positive multiple"},
		{"unknown trainer", train, labels, 3, Options{Trainer: "nope"}, "unknown trainer"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Train(tc.encoded, tc.labels, tc.nC, tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Train error = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
	// The Must wrapper panics with the same error.
	defer func() {
		if recover() == nil {
			t.Error("TrainEncodedResult did not panic on malformed input")
		}
	}()
	TrainEncodedResult(nil, nil, 2, Options{})
}

// TestTrainerNames pins the registry surface the CLIs enumerate.
func TestTrainerNames(t *testing.T) {
	names := TrainerNames()
	if len(names) != 2 || names[0] != "lehdc" || names[1] != "perceptron" {
		t.Fatalf("TrainerNames() = %v", names)
	}
	if _, err := NewTrainer(""); err != nil {
		t.Fatalf("empty trainer name must resolve to the default: %v", err)
	}
	if _, err := NewTrainer("nope"); err == nil {
		t.Fatal("unknown trainer name accepted")
	}
}

// TestLeHDCOutputIsDeployable checks the quantize-back contract: the LeHDC
// model is a plain bw-saturated int model whose norm bookkeeping matches a
// recomputation, so Predict/Quantize/faults/modelio work on it unmodified.
func TestLeHDCOutputIsDeployable(t *testing.T) {
	r := rng.New(33)
	train, labels, _ := syntheticEncoded(r, 512, 4, 20, 0.3)
	for _, bw := range []int{16, 8, 4} {
		m, res, err := Train(train, labels, 4, Options{Epochs: 6, Seed: 3, BW: bw, Trainer: "lehdc"})
		if err != nil {
			t.Fatal(err)
		}
		if res.EpochsRun < 1 || len(res.Epochs) != res.EpochsRun {
			t.Fatalf("bw=%d: per-epoch stats missing: %+v", bw, res)
		}
		lo, hi := int32(-1)<<uint(bw-1), int32(1)<<uint(bw-1)-1
		for c := 0; c < m.Classes(); c++ {
			for i, v := range m.Class(c) {
				if v < lo || v > hi {
					t.Fatalf("bw=%d class %d dim %d = %d outside saturated range [%d,%d]", bw, c, i, v, lo, hi)
				}
			}
			if m.Norm2(c) != m.Class(c).Norm2() {
				t.Fatalf("bw=%d class %d: cached norm stale after quantize-back", bw, c)
			}
		}
		// The learned model must still classify the separable set well.
		if acc := Accuracy(m, train, labels, 1); acc < 0.95 {
			t.Errorf("bw=%d: train accuracy %.3f after LeHDC training", bw, acc)
		}
		// And survive further quantization like any other model.
		q := m.Clone()
		q.Quantize(1)
		if acc := Accuracy(q, train, labels, 1); acc < 0.8 {
			t.Errorf("bw=%d: 1-bit accuracy %.3f after LeHDC training", bw, acc)
		}
	}
}

// TestLeHDCLossDecreases: cross-entropy on the shadow model must trend down
// over epochs on a learnable problem, and the recorded learning rate must
// decay.
func TestLeHDCLossDecreases(t *testing.T) {
	r := rng.New(5)
	train, labels, _ := syntheticEncoded(r, 256, 6, 30, 0.4)
	_, res, err := Train(train, labels, 6, Options{Epochs: 8, Seed: 2, Trainer: "lehdc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) < 2 {
		t.Fatalf("only %d epochs recorded", len(res.Epochs))
	}
	first, last := res.Epochs[0], res.Epochs[len(res.Epochs)-1]
	if last.Loss >= first.Loss {
		t.Errorf("loss did not decrease: %.4f -> %.4f", first.Loss, last.Loss)
	}
	if last.LR >= first.LR {
		t.Errorf("learning rate did not decay: %.4f -> %.4f", first.LR, last.LR)
	}
	if res.FinalLoss != last.Loss || res.FinalUpdates != last.Updates {
		t.Errorf("Final* fields disagree with the last EpochStat: %+v", res)
	}
}
