package classifier

import (
	"fmt"
	"sort"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/parallel"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// A Trainer is a pluggable training strategy: it turns pre-encoded
// hypervectors into a *Model carrying the accelerator's bw-saturated int
// class representation. Every strategy must honor the package's determinism
// contract — same inputs, same Options.Seed ⇒ bit-identical model for every
// Options.Workers value — and must leave the model with refreshed norms so
// Predict/Quantize/fault-injection/modelio consume its output unmodified.
//
// Train may assume its inputs were validated (by classifier.Train): encoded
// is nonempty with uniform dimensionality divisible by SubNormGranularity,
// len(encoded) == len(labels), and every label lies in [0, nC).
type Trainer interface {
	// Name returns the registry name used for selection ("perceptron",
	// "lehdc"); it is recorded in TrainResult.Trainer.
	Name() string
	// Train builds a model and reports how training went.
	Train(encoded []hdc.Vec, labels []int, nC int, opt Options) (*Model, TrainResult)
}

// EpochStat records one training epoch's statistics — the per-epoch view
// that dimension-scoring (DistHD-style) and training dashboards consume.
type EpochStat struct {
	// Epoch is the 1-based epoch index.
	Epoch int
	// Updates counts misclassified training samples this epoch: perceptron
	// misprediction updates, or samples the LeHDC shadow model got wrong.
	Updates int
	// Loss is the epoch's mean training loss: the 0/1 error rate for the
	// perceptron strategy, mean cross-entropy for LeHDC.
	Loss float64
	// LR is the learning rate in effect this epoch (1 for the perceptron
	// rule, whose update has no scale knob).
	LR float64
}

// TrainResult reports how a training run went.
type TrainResult struct {
	// Trainer is the resolved strategy name that produced the model.
	Trainer string
	// EpochsRun is the number of retraining epochs executed — at most
	// opt.Epochs, fewer when the model converges early.
	EpochsRun int
	// FinalUpdates is the number of misprediction updates in the last epoch
	// run (zero means the model converged).
	FinalUpdates int
	// FinalLoss is the last epoch's mean training loss (see EpochStat.Loss).
	FinalLoss float64
	// Epochs holds the per-epoch statistics, one entry per epoch run.
	Epochs []EpochStat
}

// trainerFactories is the strategy registry. The empty name selects the
// paper's perceptron strategy, keeping zero-valued Options meaning "train
// exactly as the paper does".
var trainerFactories = map[string]func() Trainer{
	"":           func() Trainer { return PerceptronTrainer{} },
	"perceptron": func() Trainer { return PerceptronTrainer{} },
	"lehdc":      func() Trainer { return LeHDCTrainer{} },
}

// NewTrainer resolves a strategy name from the registry.
func NewTrainer(name string) (Trainer, error) {
	f, ok := trainerFactories[name]
	if !ok {
		return nil, fmt.Errorf("classifier: unknown trainer %q (known: %v)", name, TrainerNames())
	}
	return f(), nil
}

// TrainerNames returns the selectable strategy names, sorted.
func TrainerNames() []string {
	keys := make([]string, 0, len(trainerFactories))
	for name := range trainerFactories {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	names := keys[:0]
	for _, name := range keys {
		if name != "" { // the "" alias of the default strategy is not selectable
			names = append(names, name)
		}
	}
	return names
}

// Train is the canonical training entry point: it validates the training
// set, resolves the strategy selected by opt.Trainer, and dispatches. The
// TrainEncoded/TrainEncodedResult wrappers panic on the errors this returns.
func Train(encoded []hdc.Vec, labels []int, nC int, opt Options) (*Model, TrainResult, error) {
	opt = opt.withDefaults()
	if err := validateTraining(encoded, labels, nC); err != nil {
		return nil, TrainResult{}, err
	}
	tr, err := NewTrainer(opt.Trainer)
	if err != nil {
		return nil, TrainResult{}, err
	}
	start := telemetry.Now()
	m, res := tr.Train(encoded, labels, nC, opt)
	res.Trainer = tr.Name()
	telemetry.FitEpochs.Add(int64(res.EpochsRun))
	telemetry.FitSamples.Add(int64(len(encoded)))
	telemetry.FitNS.ObserveSince(start)
	return m, res, nil
}

// validateTraining checks the encoded set's shape upfront — mirroring
// Pipeline.Fit's raw-input validation — so malformed input is an error here
// rather than a panic deep inside a strategy.
func validateTraining(encoded []hdc.Vec, labels []int, nC int) error {
	if nC < 2 {
		return fmt.Errorf("classifier: Train: need at least 2 classes, got %d", nC)
	}
	if len(encoded) == 0 {
		return fmt.Errorf("classifier: Train: empty training set")
	}
	if len(encoded) != len(labels) {
		return fmt.Errorf("classifier: Train: %d encoded samples vs %d labels", len(encoded), len(labels))
	}
	d := len(encoded[0])
	if d <= 0 || d%SubNormGranularity != 0 {
		return fmt.Errorf("classifier: Train: D=%d must be a positive multiple of %d", d, SubNormGranularity)
	}
	for i, h := range encoded {
		if len(h) != d {
			return fmt.Errorf("classifier: Train: sample %d has %d dims, want %d", i, len(h), d)
		}
	}
	for i, y := range labels {
		if y < 0 || y >= nC {
			return fmt.Errorf("classifier: Train: label %d at sample %d out of range [0,%d)", y, i, nC)
		}
	}
	return nil
}

// bundleClasses is the shared one-shot initialization (Fig. 1a): per-class
// accumulation of the encoded set, saturation at opt.BW, and a norm refresh.
// The bundling fans across opt.Workers workers with per-worker partial class
// sums merged in worker order — integer accumulation is order-independent,
// so the result is bit-identical to a serial build. Both strategies start
// from this model.
func bundleClasses(encoded []hdc.Vec, labels []int, nC int, opt Options, sp *perf.Span) *Model {
	initSpan := sp.Child("fit.init")
	defer initSpan.End()
	m := NewModel(len(encoded[0]), nC, opt.BW)
	workers := parallel.Workers(opt.Workers)
	if workers > 1 && len(encoded) >= 2*workers {
		d := m.d
		partials := make([][]hdc.Vec, workers)
		parallel.ForChunks(workers, len(encoded), func(w, lo, hi int) {
			sums := make([]hdc.Vec, nC)
			for i := lo; i < hi; i++ {
				c := labels[i]
				if sums[c] == nil {
					sums[c] = hdc.NewVec(d)
				}
				sums[c].AddInto(encoded[i])
			}
			partials[w] = sums
		})
		for _, sums := range partials {
			for c, s := range sums {
				if s != nil {
					m.classes[c].AddInto(s)
				}
			}
		}
	} else {
		for i, h := range encoded {
			m.classes[labels[i]].AddInto(h)
		}
	}
	parallel.For(workers, nC, func(_, c int) {
		m.classes[c].Saturate(m.bw)
		m.refreshNorms(c)
	})
	return m
}
