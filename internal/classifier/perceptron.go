package classifier

import (
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/rng"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// PerceptronTrainer is the paper's training strategy (Fig. 1): one-shot
// class bundling followed by opt.Epochs perceptron-style retraining passes —
// predict each shuffled sample and, on misprediction, subtract the encoding
// from the wrong class and add it to the correct one. This is the exact
// pre-refactor TrainEncodedResult computation, locked bit-identical by the
// golden test in trainer_test.go.
//
// Retraining is sequential by construction — its per-sample update order is
// part of the algorithm — so opt.Workers only fans the initialization
// bundling, and results are bit-identical for every worker count.
type PerceptronTrainer struct{}

// Name implements Trainer.
func (PerceptronTrainer) Name() string { return "perceptron" }

// Train implements Trainer.
func (PerceptronTrainer) Train(encoded []hdc.Vec, labels []int, nC int, opt Options) (*Model, TrainResult) {
	sp := perf.Begin("fit")
	defer sp.End()
	m := bundleClasses(encoded, labels, nC, opt, sp)

	r := rng.New(opt.Seed)
	order := make([]int, len(encoded))
	for i := range order {
		order[i] = i
	}
	res := TrainResult{}
	for e := 0; e < opt.Epochs; e++ {
		epochSpan := sp.Child("fit.epoch")
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		updates := 0
		for _, i := range order {
			pred, _ := m.Predict(encoded[i])
			if pred != labels[i] {
				m.Update(encoded[i], labels[i], pred)
				updates++
			}
		}
		loss := float64(updates) / float64(len(encoded))
		res.EpochsRun = e + 1
		res.FinalUpdates = updates
		res.FinalLoss = loss
		res.Epochs = append(res.Epochs, EpochStat{Epoch: e + 1, Updates: updates, Loss: loss, LR: 1})
		telemetry.FitUpdates.Add(int64(updates))
		telemetry.FitLossMicro.Set(int64(loss * 1e6))
		epochSpan.End()
		if updates == 0 {
			break
		}
	}
	return m, res
}
