package classifier

import (
	"testing"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// faultModel trains a small deterministic model for fault tests.
func faultModel(t *testing.T, bw int) *Model {
	t.Helper()
	const d, nC, n = 256, 4, 64
	r := rng.New(31)
	encoded := make([]hdc.Vec, n)
	labels := make([]int, n)
	for i := range encoded {
		v := make(hdc.Vec, d)
		c := i % nC
		for j := range v {
			v[j] = int32(r.Intn(3) - 1)
			if j%nC == c {
				v[j] += 2 // class-correlated structure
			}
		}
		encoded[i] = v
		labels[i] = c
	}
	m, _ := TrainEncoded(encoded, labels, nC, Options{Epochs: 2, Seed: 31})
	if bw != m.BW() {
		m.Quantize(bw)
	}
	return m
}

func classStateEqual(a, b *Model) bool {
	for c := 0; c < a.Classes(); c++ {
		av, bv := a.Class(c), b.Class(c)
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
		if a.Norm2(c) != b.Norm2(c) {
			return false
		}
	}
	return true
}

// fig6Sweep is the BER grid of the paper's Fig. 6 VOS experiment.
var fig6Sweep = []float64{1e-5, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1}

// The determinism contract of InjectBitErrorsSeeded: the same (ber, seed)
// on clones of the same model corrupts them bit-identically, at every
// bit-width and at every BER of the Fig. 6 sweep.
func TestInjectBitErrorsSeededDeterministic(t *testing.T) {
	for _, bw := range []int{16, 4, 1} {
		base := faultModel(t, bw)
		for _, ber := range fig6Sweep {
			a, b := base.Clone(), base.Clone()
			na := a.InjectBitErrorsSeeded(ber, 0xfa117)
			nb := b.InjectBitErrorsSeeded(ber, 0xfa117)
			if na != nb {
				t.Fatalf("bw=%d ber=%g: flip counts differ (%d vs %d)", bw, ber, na, nb)
			}
			if !classStateEqual(a, b) {
				t.Fatalf("bw=%d ber=%g: corrupted models diverged", bw, ber)
			}
		}
	}
}

// Norms must be refreshed at every BER in the sweep: the stored norm2 after
// injection must equal a from-scratch recompute over the corrupted vectors.
func TestInjectBitErrorsRefreshesNorms(t *testing.T) {
	base := faultModel(t, 16)
	for _, ber := range fig6Sweep {
		m := base.Clone()
		m.InjectBitErrorsSeeded(ber, 99)
		want := make([]int64, m.Classes())
		for c := range want {
			var s int64
			for _, v := range m.Class(c) {
				s += int64(v) * int64(v)
			}
			want[c] = s
		}
		for c := range want {
			if got := m.Norm2(c); got != want[c] {
				t.Fatalf("ber=%g class %d: stored norm2 %d, recomputed %d", ber, c, got, want[c])
			}
		}
	}
}

func TestNorm2WordRoundTrip(t *testing.T) {
	m := faultModel(t, 16)
	orig := m.Norm2(1)
	w := m.Norm2Word(1)
	if int64(w) != orig {
		t.Fatalf("Norm2Word = %d, want %d", w, orig)
	}
	m.SetNorm2Word(1, w^(1<<40))
	if m.Norm2(1) == orig {
		t.Fatal("SetNorm2Word did not change the stored norm")
	}
	m.RefreshAllNorms()
	if m.Norm2(1) != orig {
		t.Fatalf("RefreshAllNorms did not repair the norm: %d vs %d", m.Norm2(1), orig)
	}
}

func TestMaskDims(t *testing.T) {
	m := faultModel(t, 16)
	const offset, stride = 5, 16
	masked := m.MaskDims(offset, stride)
	if want := m.D() / stride; masked != want {
		t.Fatalf("masked %d dims per class, want %d", masked, want)
	}
	for c := 0; c < m.Classes(); c++ {
		var want int64
		for i, v := range m.Class(c) {
			if i%stride == offset && v != 0 {
				t.Fatalf("class %d dim %d survived masking", c, i)
			}
			want += int64(v) * int64(v)
		}
		if m.Norm2(c) != want {
			t.Fatalf("class %d norm2 not refreshed after masking", c)
		}
	}
	for _, bad := range [][2]int{{-1, 16}, {16, 16}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MaskDims(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			m.MaskDims(bad[0], bad[1])
		}()
	}
}
