package classifier

import (
	"testing"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// synthEncoded builds a deterministic pseudo-encoded training set with
// class-dependent structure so retraining actually updates.
func synthEncoded(t testing.TB, n, d, nC int, seed uint64) ([]hdc.Vec, []int) {
	t.Helper()
	r := rng.New(seed)
	encoded := make([]hdc.Vec, n)
	labels := make([]int, n)
	for i := range encoded {
		c := r.Intn(nC)
		labels[i] = c
		v := hdc.NewVec(d)
		for j := range v {
			v[j] = int32(r.Intn(7)) - 3
			if (j+c)%nC == 0 {
				v[j] += int32(2 + c)
			}
		}
		encoded[i] = v
	}
	return encoded, labels
}

func modelsEqual(t *testing.T, a, b *Model) {
	t.Helper()
	if a.Classes() != b.Classes() || a.D() != b.D() {
		t.Fatalf("model shapes differ: (%d,%d) vs (%d,%d)", a.D(), a.Classes(), b.D(), b.Classes())
	}
	for c := 0; c < a.Classes(); c++ {
		av, bv := a.Class(c), b.Class(c)
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("class %d element %d differs: %d vs %d", c, i, av[i], bv[i])
			}
		}
		if a.Norm2(c) != b.Norm2(c) {
			t.Fatalf("class %d norm2 differs: %d vs %d", c, a.Norm2(c), b.Norm2(c))
		}
		for k := range a.subNorm2[c] {
			if a.subNorm2[c][k] != b.subNorm2[c][k] {
				t.Fatalf("class %d sub-norm %d differs", c, k)
			}
		}
	}
}

// The hard tentpole requirement: parallel training is bit-identical to
// serial training for a fixed seed.
func TestTrainEncodedParallelBitIdentical(t *testing.T) {
	encoded, labels := synthEncoded(t, 300, 512, 5, 11)
	serial, serialLast := TrainEncoded(encoded, labels, 5, Options{Epochs: 5, Seed: 3, Workers: 1})
	for _, workers := range []int{2, 3, 4, 8} {
		par, parLast := TrainEncoded(encoded, labels, 5, Options{Epochs: 5, Seed: 3, Workers: workers})
		if parLast != serialLast {
			t.Fatalf("workers=%d: final-epoch updates %d, serial %d", workers, parLast, serialLast)
		}
		modelsEqual(t, serial, par)
	}
}

func TestEvaluateAndPredictBatchMatchSerial(t *testing.T) {
	encoded, labels := synthEncoded(t, 300, 512, 5, 12)
	m, _ := TrainEncoded(encoded, labels, 5, Options{Epochs: 3, Seed: 1, Workers: 1})
	queries, qLabels := synthEncoded(t, 157, 512, 5, 13)

	wantAcc := Accuracy(m, queries, qLabels, 1)
	wantPreds := m.PredictBatch(queries, 1)
	for _, workers := range []int{2, 4, 7} {
		if acc := Accuracy(m, queries, qLabels, workers); acc != wantAcc {
			t.Fatalf("workers=%d: Accuracy %v, serial %v", workers, acc, wantAcc)
		}
		preds := m.PredictBatch(queries, workers)
		for i := range preds {
			if preds[i] != wantPreds[i] {
				t.Fatalf("workers=%d: prediction %d differs: %d vs %d", workers, i, preds[i], wantPreds[i])
			}
		}
		for _, dims := range []int{128, 256} {
			if got, want := EvaluateDimsBatch(m, queries, qLabels, dims, true, workers),
				EvaluateDims(m, queries, qLabels, dims, true); got != want {
				t.Fatalf("workers=%d dims=%d: %v vs %v", workers, dims, got, want)
			}
		}
	}
}

// The fused Update path must reproduce the historical unfused sequence on
// the model level (element values, norms, and the sub-norm ladder).
func TestUpdateMatchesUnfusedSequence(t *testing.T) {
	encoded, labels := synthEncoded(t, 60, 256, 4, 21)
	fused := NewModel(256, 4, 8)
	ref := NewModel(256, 4, 8)
	for i, h := range encoded {
		fused.AddEncoded(h, labels[i])
		// Historical three-pass sequence.
		ref.classes[labels[i]].AddInto(h)
		ref.classes[labels[i]].Saturate(ref.bw)
		ref.refreshNorms(labels[i])
	}
	modelsEqual(t, ref, fused)
	for i, h := range encoded {
		wrong := (labels[i] + 1) % 4
		fused.Update(h, labels[i], wrong)
		ref.classes[wrong].SubInto(h)
		ref.classes[wrong].Saturate(ref.bw)
		ref.classes[labels[i]].AddInto(h)
		ref.classes[labels[i]].Saturate(ref.bw)
		ref.refreshNorms(wrong)
		ref.refreshNorms(labels[i])
	}
	modelsEqual(t, ref, fused)
}
