package classifier

import (
	"testing"

	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// syntheticEncoded builds a toy encoded problem: nC prototype vectors with
// noisy copies, mimicking what an encoder produces for separable classes.
func syntheticEncoded(r *rng.Rand, d, nC, perClass int, noise float64) (train []hdc.Vec, labels []int, protos []hdc.Vec) {
	protos = make([]hdc.Vec, nC)
	for c := range protos {
		p := hdc.NewVec(d)
		for i := range p {
			if r.Bool() {
				p[i] = 1
			} else {
				p[i] = -1
			}
		}
		protos[c] = p
	}
	for c := 0; c < nC; c++ {
		for k := 0; k < perClass; k++ {
			v := protos[c].Clone()
			for i := range v {
				if r.Float64() < noise {
					v[i] = -v[i]
				}
			}
			train = append(train, v)
			labels = append(labels, c)
		}
	}
	return train, labels, protos
}

func TestNewModelValidation(t *testing.T) {
	for _, bad := range []struct{ d, nc int }{{0, 2}, {100, 2}, {256, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewModel(%d,%d) did not panic", bad.d, bad.nc)
				}
			}()
			NewModel(bad.d, bad.nc, 16)
		}()
	}
}

func TestTrainAndPredictSeparable(t *testing.T) {
	r := rng.New(1)
	train, labels, protos := syntheticEncoded(r, 512, 4, 20, 0.15)
	m, _ := TrainEncoded(train, labels, 4, Options{Epochs: 5, Seed: 2})
	// Prototypes themselves must classify correctly.
	for c, p := range protos {
		if pred, _ := m.Predict(p); pred != c {
			t.Errorf("prototype %d predicted as %d", c, pred)
		}
	}
	if acc := Accuracy(m, train, labels, 1); acc < 0.99 {
		t.Errorf("train accuracy = %v, want ≈1 on separable data", acc)
	}
}

func TestRetrainingImproves(t *testing.T) {
	r := rng.New(3)
	// Overlapping classes: one-shot bundling struggles, retraining helps.
	train, labels, _ := syntheticEncoded(r, 512, 6, 30, 0.42)
	m0, _ := TrainEncoded(train, labels, 6, Options{Epochs: 1, Seed: 1})
	m20, _ := TrainEncoded(train, labels, 6, Options{Epochs: 25, Seed: 1})
	a0 := Accuracy(m0, train, labels, 1)
	a20 := Accuracy(m20, train, labels, 1)
	if a20 < a0 {
		t.Errorf("retraining reduced accuracy: %v -> %v", a0, a20)
	}
}

func TestUpdateMovesDecision(t *testing.T) {
	d := 256
	m := NewModel(d, 2, 16)
	h := hdc.NewVec(d)
	for i := range h {
		h[i] = 1
	}
	// Put h in the wrong class, then correct it via updates.
	m.AddEncoded(h, 1)
	if pred, _ := m.Predict(h); pred != 1 {
		t.Fatal("setup failed")
	}
	for i := 0; i < 3; i++ {
		m.Update(h, 0, 1)
	}
	if pred, _ := m.Predict(h); pred != 0 {
		t.Error("updates did not move the decision to the correct class")
	}
}

func TestNormBookkeepingConsistent(t *testing.T) {
	r := rng.New(5)
	train, labels, _ := syntheticEncoded(r, 512, 3, 10, 0.3)
	m, _ := TrainEncoded(train, labels, 3, Options{Epochs: 3, Seed: 1})
	for c := 0; c < 3; c++ {
		if got, want := m.Norm2(c), m.Class(c).Norm2(); got != want {
			t.Errorf("class %d: cached norm2 %d != recomputed %d", c, got, want)
		}
		// Last sub-norm chunk must equal the full norm.
		sub := m.subNorm2[c]
		if sub[len(sub)-1] != m.Norm2(c) {
			t.Errorf("class %d: final sub-norm != full norm", c)
		}
		// Sub-norms must be non-decreasing.
		for k := 1; k < len(sub); k++ {
			if sub[k] < sub[k-1] {
				t.Errorf("class %d: sub-norms decrease at chunk %d", c, k)
			}
		}
	}
}

func TestPredictDimsUpdatedNormsBeatConstant(t *testing.T) {
	// The Fig. 5 effect: with few dimensions, constant (full-model) norms
	// misrank classes with very different magnitudes; updated sub-norms fix
	// it. Construct classes with wildly different norms to expose this.
	d := 512
	m := NewModel(d, 2, 16)
	// Class 0: strong on the first 128 dims only.
	for i := 0; i < 128; i++ {
		m.classes[0][i] = 10
	}
	// Class 1: moderate everywhere (huge full norm, weak prefix signal).
	for i := 0; i < d; i++ {
		m.classes[1][i] = 6
	}
	m.RefreshAllNorms()
	// Query aligned with class 0's prefix.
	q := hdc.NewVec(d)
	for i := 0; i < 128; i++ {
		q[i] = 10
	}
	predUpdated, _ := m.PredictDims(q, 128, true)
	if predUpdated != 0 {
		t.Errorf("updated norms: predicted %d, want 0", predUpdated)
	}
	// With constant norms class 1's large full norm deflates its score
	// incorrectly less than class 0's... verify the two modes can differ.
	predConst, _ := m.PredictDims(q, 128, false)
	_ = predConst // documented: modes may disagree; accuracy comparison is in experiments
}

func TestPredictDimsClampsAndRounds(t *testing.T) {
	r := rng.New(7)
	train, labels, _ := syntheticEncoded(r, 512, 3, 5, 0.1)
	m, _ := TrainEncoded(train, labels, 3, Options{Epochs: 1})
	// dims beyond D clamps; dims below granularity rounds up to one chunk.
	p1, _ := m.PredictDims(train[0], 100000, true)
	p2, _ := m.Predict(train[0])
	if p1 != p2 {
		t.Error("dims clamp changed prediction vs full predict")
	}
	p3, _ := m.PredictDims(train[0], 1, true)
	_ = p3 // must not panic
}

func TestQuantizePreservesSeparableAccuracy(t *testing.T) {
	r := rng.New(9)
	train, labels, _ := syntheticEncoded(r, 1024, 4, 20, 0.1)
	m, _ := TrainEncoded(train, labels, 4, Options{Epochs: 3, Seed: 1})
	for _, bw := range []int{8, 4, 2, 1} {
		q := m.Clone()
		q.Quantize(bw)
		if q.BW() != bw {
			t.Fatalf("BW() = %d after Quantize(%d)", q.BW(), bw)
		}
		if acc := Accuracy(q, train, labels, 1); acc < 0.95 {
			t.Errorf("bw=%d: accuracy %v too low on well-separated data", bw, acc)
		}
	}
}

func TestQuantizeOneBitIsBipolar(t *testing.T) {
	r := rng.New(11)
	train, labels, _ := syntheticEncoded(r, 256, 2, 5, 0.2)
	m, _ := TrainEncoded(train, labels, 2, Options{Epochs: 1})
	m.Quantize(1)
	for c := 0; c < 2; c++ {
		for i, v := range m.Class(c) {
			if v != 1 && v != -1 {
				t.Fatalf("class %d dim %d = %d after 1-bit quantization", c, i, v)
			}
		}
	}
}

func TestQuantizePanics(t *testing.T) {
	m := NewModel(256, 2, 16)
	for _, bw := range []int{0, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantize(%d) did not panic", bw)
				}
			}()
			m.Quantize(bw)
		}()
	}
}

func TestInjectBitErrorsZeroRate(t *testing.T) {
	r := rng.New(13)
	train, labels, _ := syntheticEncoded(r, 256, 2, 5, 0.2)
	m, _ := TrainEncoded(train, labels, 2, Options{Epochs: 1})
	before := m.Class(0).Clone()
	if n := m.InjectBitErrors(0, rng.New(1)); n != 0 {
		t.Fatalf("BER=0 flipped %d bits", n)
	}
	for i := range before {
		if m.Class(0)[i] != before[i] {
			t.Fatal("BER=0 modified the model")
		}
	}
}

func TestInjectBitErrorsRateAndEffect(t *testing.T) {
	r := rng.New(15)
	train, labels, _ := syntheticEncoded(r, 1024, 4, 20, 0.1)
	m, _ := TrainEncoded(train, labels, 4, Options{Epochs: 3, Seed: 1})
	m.Quantize(8)
	faulty := m.Clone()
	n := faulty.InjectBitErrors(0.05, rng.New(2))
	totalBits := 4 * 1024 * 8
	if n < totalBits*3/100 || n > totalBits*7/100 {
		t.Errorf("BER=5%%: flipped %d of %d bits", n, totalBits)
	}
	// Norms must be refreshed (match recomputation).
	for c := 0; c < 4; c++ {
		if faulty.Norm2(c) != faulty.Class(c).Norm2() {
			t.Errorf("class %d norms stale after injection", c)
		}
	}
	// Graceful degradation: moderate BER should not destroy a separable
	// model (HDC's error resilience).
	if acc := Accuracy(faulty, train, labels, 1); acc < 0.8 {
		t.Errorf("accuracy %v under 5%% BER; expected HDC resilience", acc)
	}
}

func TestInjectBitErrorsBipolar(t *testing.T) {
	m := NewModel(256, 2, 16)
	for i := range m.classes[0] {
		m.classes[0][i] = 1
		m.classes[1][i] = -1
	}
	m.RefreshAllNorms()
	m.Quantize(1)
	n := m.InjectBitErrors(0.5, rng.New(3))
	if n == 0 {
		t.Fatal("no flips at BER=0.5")
	}
	for c := 0; c < 2; c++ {
		for i, v := range m.Class(c) {
			if v != 1 && v != -1 {
				t.Fatalf("class %d dim %d = %d not bipolar after flips", c, i, v)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := rng.New(17)
	train, labels, _ := syntheticEncoded(r, 256, 2, 5, 0.2)
	m, _ := TrainEncoded(train, labels, 2, Options{Epochs: 1})
	c := m.Clone()
	c.Class(0)[0] += 100
	c.RefreshAllNorms()
	if m.Class(0)[0] == c.Class(0)[0] {
		t.Fatal("clone shares class storage")
	}
}

func TestSaturationRespectsBW(t *testing.T) {
	m := NewModel(128, 2, 4) // 4-bit classes: range [-8, 7]
	h := hdc.NewVec(128)
	for i := range h {
		h[i] = 5
	}
	for k := 0; k < 10; k++ {
		m.AddEncoded(h, 0)
	}
	for i, v := range m.Class(0) {
		if v > 7 || v < -8 {
			t.Fatalf("dim %d = %d exceeds 4-bit range", i, v)
		}
	}
}

// TestEndToEndDataset ties encoder + classifier together on a real
// generated benchmark: GENERIC encoding on EEG must beat 75% accuracy.
func TestEndToEndDataset(t *testing.T) {
	ds := dataset.MustLoad("EEG", 1)
	enc := encoding.MustNew(encoding.Generic, encoding.Config{
		D: 2048, Features: ds.Features, Bins: 64, Lo: ds.Lo, Hi: ds.Hi,
		N: 3, UseID: ds.UseID, Seed: 7,
	})
	trainH := encoding.EncodeAll(enc, ds.TrainX)
	testH := encoding.EncodeAll(enc, ds.TestX)
	m, _ := TrainEncoded(trainH, ds.TrainY, ds.Classes, Options{Epochs: 10, Seed: 1})
	if acc := Accuracy(m, testH, ds.TestY, 1); acc < 0.72 {
		t.Errorf("GENERIC on EEG accuracy = %.3f, want > 0.72", acc)
	}
}

func BenchmarkPredict(b *testing.B) {
	r := rng.New(1)
	train, labels, _ := syntheticEncoded(r, 4096, 16, 10, 0.2)
	m, _ := TrainEncoded(train, labels, 16, Options{Epochs: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(train[i%len(train)])
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	r := rng.New(1)
	train, labels, _ := syntheticEncoded(r, 4096, 8, 25, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainEncoded(train, labels, 8, Options{Epochs: 1})
	}
}
