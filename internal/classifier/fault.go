package classifier

import "fmt"

// This file holds the model-side hooks of the fault layer (internal/faults):
// raw access to the norm2 memory words and the DistHD-style dimension drop
// that lets a dead class-memory bank degrade gracefully instead of failing.

// Norm2Word returns ‖C_c‖² as the raw 64-bit memory word the accelerator's
// norm2 memory would hold, for norm-memory fault injection.
func (m *Model) Norm2Word(c int) uint64 { return uint64(m.norm2[c]) }

// SetNorm2Word overwrites class c's stored squared norm with a raw memory
// word, bypassing the usual recompute — this models norm2-memory corruption,
// so the stored value may disagree with the class vector (or even be
// negative) until RefreshAllNorms or a scrub pass repairs it. Sub-norms are
// left untouched: the full-dimension score path reads norm2 only.
func (m *Model) SetNorm2Word(c int, w uint64) { m.norm2[c] = int64(w) }

// MaskDims zeroes dimension i of every class whenever i%stride == offset and
// refreshes all norms. With stride = 16 (the accelerator's lane count) this
// models losing one striped class-memory bank: the dead lane's dimensions
// drop out of every dot product, and because the modified cosine divides by
// the recomputed ‖C‖², the score renormalizes automatically over the
// surviving dimensions. It returns the number of dimensions masked per
// class.
func (m *Model) MaskDims(offset, stride int) int {
	if stride <= 0 || offset < 0 || offset >= stride {
		panic(fmt.Sprintf("classifier: MaskDims offset %d out of range for stride %d", offset, stride))
	}
	masked := 0
	for i := offset; i < m.d; i += stride {
		for _, cv := range m.classes {
			cv[i] = 0
		}
		masked++
	}
	m.RefreshAllNorms()
	return masked
}
