package classifier

import (
	"testing"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

func TestAdaptNoUpdateWhenCorrect(t *testing.T) {
	r := rng.New(1)
	train, labels, _ := syntheticEncoded(r, 512, 2, 10, 0.1)
	m, _ := TrainEncoded(train, labels, 2, Options{Epochs: 3, Seed: 1})
	before := m.Class(0).Clone()
	pred, updated := m.Adapt(train[0], labels[0])
	if pred != labels[0] {
		t.Fatalf("separable sample mispredicted: %d vs %d", pred, labels[0])
	}
	if updated {
		t.Fatal("Adapt updated on a correct prediction")
	}
	for i := range before {
		if m.Class(0)[i] != before[i] {
			t.Fatal("model changed despite no update")
		}
	}
}

func TestAdaptCorrectsMislabeledRegion(t *testing.T) {
	// Start with an empty-ish model and feed a stream: Adapt must converge
	// to classify the stream correctly.
	r := rng.New(2)
	protos := make([]hdc.Vec, 3)
	for c := range protos {
		p := hdc.NewVec(512)
		for i := range p {
			if r.Bool() {
				p[i] = 1
			} else {
				p[i] = -1
			}
		}
		protos[c] = p
	}
	m := NewModel(512, 3, 16)
	// Seed each class with one noisy example (cold start).
	for c, p := range protos {
		m.AddEncoded(p, c)
	}
	// Stream: noisy prototype copies; count errors over time.
	errorsFirst, errorsLast := 0, 0
	const steps = 300
	for s := 0; s < steps; s++ {
		c := r.Intn(3)
		v := protos[c].Clone()
		for i := range v {
			if r.Float64() < 0.3 {
				v[i] = -v[i]
			}
		}
		pred, _ := m.Adapt(v, c)
		if pred != c {
			if s < steps/3 {
				errorsFirst++
			} else if s >= 2*steps/3 {
				errorsLast++
			}
		}
	}
	if errorsLast > errorsFirst {
		t.Errorf("online adaptation did not improve: %d early errors vs %d late", errorsFirst, errorsLast)
	}
}

func TestAdaptTracksDrift(t *testing.T) {
	// Concept drift: class prototypes swap mid-stream. Adapt must recover.
	r := rng.New(3)
	a := hdc.NewVec(1024)
	b := hdc.NewVec(1024)
	for i := range a {
		if r.Bool() {
			a[i] = 1
		} else {
			a[i] = -1
		}
		if r.Bool() {
			b[i] = 1
		} else {
			b[i] = -1
		}
	}
	m := NewModel(1024, 2, 16)
	m.AddEncoded(a, 0)
	m.AddEncoded(b, 1)
	noisy := func(p hdc.Vec) hdc.Vec {
		v := p.Clone()
		for i := range v {
			if r.Float64() < 0.15 {
				v[i] = -v[i]
			}
		}
		return v
	}
	// Phase 1: prototypes as labelled.
	for s := 0; s < 100; s++ {
		m.Adapt(noisy(a), 0)
		m.Adapt(noisy(b), 1)
	}
	// Drift: the semantics swap — a-like inputs are now class 1.
	recovered := 0
	const phase2 = 200
	for s := 0; s < phase2; s++ {
		m.Adapt(noisy(a), 1)
		m.Adapt(noisy(b), 0)
		if s >= phase2-50 {
			if p, _ := m.Predict(noisy(a)); p == 1 {
				recovered++
			}
		}
	}
	if recovered < 40 {
		t.Errorf("model failed to track drift: only %d/50 late predictions correct", recovered)
	}
}
