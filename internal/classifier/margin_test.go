package classifier

import (
	"testing"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/quality"
)

func TestPredictDimsMarginConsistency(t *testing.T) {
	const d, nC = 512, 4
	m, train, _ := trainSmall(t, 3, d, nC)
	for i, h := range train {
		wantC, wantS := m.PredictDims(h, d, true)
		gotC, gotS, margin := m.PredictDimsMargin(h, d, true)
		if gotC != wantC || gotS != wantS {
			t.Fatalf("query %d: margin path (%d,%v) != plain path (%d,%v)", i, gotC, gotS, wantC, wantS)
		}
		if margin < 0 || margin > 1 {
			t.Fatalf("query %d: margin %v out of [0,1]", i, margin)
		}
		mc, mm := m.MarginDims(h, d)
		if mc != wantC || mm != margin {
			t.Fatalf("query %d: MarginDims (%d,%v) != observing path (%d,%v)", i, mc, mm, wantC, margin)
		}
	}
}

// TestMarginSeparation: a query that is a training vector of a separable
// problem must carry more confidence than an all-zero query, which scores
// every class identically (margin exactly zero).
func TestMarginSeparation(t *testing.T) {
	const d, nC = 512, 4
	m, train, _ := trainSmall(t, 4, d, nC)

	var sum float64
	for _, h := range train {
		_, mg := m.MarginDims(h, d)
		sum += mg
	}
	if mean := sum / float64(len(train)); mean <= 0 {
		t.Fatalf("separable training set mean margin = %v, want > 0", mean)
	}

	zero := make(hdc.Vec, d)
	if _, mg := m.MarginDims(zero, d); mg != 0 {
		t.Fatalf("all-zero query margin = %v, want 0 (all scores tie)", mg)
	}
}

func TestBinaryMarginConsistency(t *testing.T) {
	const d, nC = 512, 4
	m, train, _ := trainSmall(t, 5, d, nC)
	b := Binarize(m)
	queries := packAll(train, d)
	for _, dims := range []int{d, d / 2} {
		for i, q := range queries {
			wantC, wantH := b.PredictDims(q, dims)
			gotC, gotH, margin := b.PredictDimsMargin(q, dims)
			if gotC != wantC || gotH != wantH {
				t.Fatalf("dims=%d query %d: margin path (%d,%d) != plain (%d,%d)", dims, i, gotC, gotH, wantC, wantH)
			}
			if margin < 0 || margin > 1 {
				t.Fatalf("dims=%d query %d: margin %v out of [0,1]", dims, i, margin)
			}
			mc, mm := b.MarginDims(q, dims)
			if mc != wantC || mm != margin {
				t.Fatalf("dims=%d query %d: MarginDims (%d,%v) != observing (%d,%v)", dims, i, mc, mm, wantC, margin)
			}
		}
	}
}

func TestNormMarginEdgeCases(t *testing.T) {
	cases := []struct {
		s1, s2, want float64
	}{
		{1, 1, 0},  // tie
		{1, 2, 0},  // inverted (cannot happen, but must not go negative)
		{0, 0, 0},  // zero magnitude
		{1, -1, 1}, // clamped to 1
		{0.5, 0.25, (0.5 - 0.25) / 0.75},
	}
	for _, c := range cases {
		if got := normMargin(c.s1, c.s2); got != c.want {
			t.Fatalf("normMargin(%v,%v) = %v, want %v", c.s1, c.s2, got, c.want)
		}
	}
	if got := hammingMargin(10, 30, 100); got != 0.2 {
		t.Fatalf("hammingMargin(10,30,100) = %v, want 0.2", got)
	}
	if got := hammingMargin(10, 513, 512); got != 0 {
		t.Fatalf("hammingMargin with absent runner-up = %v, want 0", got)
	}
}

// TestAdaptFeedsStreamingAccuracy: each labeled adapt must contribute one
// accuracy sample (predict-before-apply) to the default quality observer.
func TestAdaptFeedsStreamingAccuracy(t *testing.T) {
	const d, nC = 512, 4
	m, train, labels := trainSmall(t, 6, d, nC)
	before := quality.Default.Total()
	hits := int64(0)
	for i, h := range train {
		pred, _ := m.Adapt(h, labels[i])
		if pred == labels[i] {
			hits++
		}
	}
	after := quality.Default.Total()
	if got := after.AdaptEvals - before.AdaptEvals; got != int64(len(train)) {
		t.Fatalf("adapt evals delta = %d, want %d", got, len(train))
	}
	if got := after.AdaptHits - before.AdaptHits; got != hits {
		t.Fatalf("adapt hits delta = %d, want %d", got, hits)
	}
}
