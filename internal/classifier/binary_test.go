package classifier

import (
	"testing"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// trainSmall builds a trained integer model plus a packed query set from the
// synthetic separable problem.
func trainSmall(t *testing.T, seed uint64, d, nC int) (*Model, []hdc.Vec, []int) {
	t.Helper()
	r := rng.New(seed)
	train, labels, _ := syntheticEncoded(r, d, nC, 12, 0.15)
	m, _ := TrainEncoded(train, labels, nC, Options{Epochs: 3})
	return m, train, labels
}

func packAll(vecs []hdc.Vec, d int) []*hdc.BinVec {
	out := make([]*hdc.BinVec, len(vecs))
	for i, v := range vecs {
		b := hdc.NewBinVec(d)
		b.PackSigns(v)
		out[i] = b
	}
	return out
}

func TestBinarizeProvenance(t *testing.T) {
	const d, nC = 256, 3
	m, _, _ := trainSmall(t, 1, d, nC)
	b := Binarize(m)
	if b.D() != d || b.Classes() != nC {
		t.Fatalf("binary model shape %dx%d, want %dx%d", b.Classes(), b.D(), nC, d)
	}
	if b.SourceBW() != m.BW() {
		t.Fatalf("SourceBW = %d, want %d", b.SourceBW(), m.BW())
	}
	// Binarize must not touch the source model.
	for c := 0; c < nC; c++ {
		bv := hdc.NewBinVec(d)
		bv.PackSigns(m.Class(c))
		if !b.Class(c).Equal(bv) {
			t.Fatalf("class %d packed bits differ from sign of counters", c)
		}
	}
}

// TestBinaryPredictMatchesQuantizedExact is the package-level equivalence
// core: on a sign-binarized model, min-Hamming prediction over packed
// queries must match the integer path run on a Quantize(1) copy of the same
// model, for full and reduced dimensions.
func TestBinaryPredictMatchesQuantizedExact(t *testing.T) {
	const d, nC = 512, 4
	m, train, _ := trainSmall(t, 2, d, nC)
	b := Binarize(m)

	q1 := m.Clone()
	q1.Quantize(1)

	queries := packAll(train, d)
	for _, dims := range []int{d, d / 2, SubNormGranularity, 1} {
		for i, q := range queries {
			wantC, _ := q1.PredictDims(train[i], dims, true)
			gotC, _ := b.PredictDims(q, dims)
			if gotC != wantC {
				t.Fatalf("dims=%d query %d: binary %d, quantized exact %d", dims, i, gotC, wantC)
			}
		}
	}
}

func TestBinaryPredictHammingValue(t *testing.T) {
	const d, nC = 256, 2
	m, _, _ := trainSmall(t, 3, d, nC)
	b := Binarize(m)
	q := b.Class(1).Clone()
	c, h := b.Predict(q)
	if h != 0 {
		t.Fatalf("predicting a class vector itself: hamming %d, want 0", h)
	}
	// Ties break toward the lower index, so class 1 wins only if class 0
	// differs from it.
	if b.Class(0).Equal(b.Class(1)) {
		t.Skip("degenerate model: classes binarized identically")
	}
	if c != 1 {
		t.Fatalf("predicted %d, want 1", c)
	}
}

func TestRebinarizeClass(t *testing.T) {
	const d, nC = 256, 3
	m, train, _ := trainSmall(t, 4, d, nC)
	b := Binarize(m)
	// Drift class 2 on the integer model, then rebinarize just that class.
	m.Update(train[0], 2, 1)
	m.Update(train[1], 2, 1)
	b.RebinarizeClass(m, 2)
	for c := 0; c < nC; c++ {
		want := hdc.NewBinVec(d)
		want.PackSigns(m.Class(c))
		if c == 1 {
			// Class 1 was the "wrong" side of the updates; its packed copy is
			// intentionally stale until its own rebinarize.
			continue
		}
		if !b.Class(c).Equal(want) {
			t.Fatalf("class %d stale after RebinarizeClass", c)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RebinarizeClass across dimensionalities did not panic")
			}
		}()
		b.RebinarizeClass(NewModel(128, nC, 0), 0)
	}()
}

func TestBinaryBatchMatchesSingle(t *testing.T) {
	const d, nC = 512, 4
	m, train, labels := trainSmall(t, 5, d, nC)
	b := Binarize(m)
	queries := packAll(train, d)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i], _ = b.Predict(q)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		got := b.PredictBatch(queries, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d query %d: batch %d, single %d", workers, i, got[i], want[i])
			}
		}
	}
	// BinaryAccuracy agrees with counting single predictions.
	correct := 0
	for i := range want {
		if want[i] == labels[i] {
			correct++
		}
	}
	wantAcc := float64(correct) / float64(len(want))
	for _, workers := range []int{1, 3} {
		if acc := BinaryAccuracy(b, queries, labels, workers); acc != wantAcc {
			t.Fatalf("workers=%d: BinaryAccuracy %v, want %v", workers, acc, wantAcc)
		}
	}
}

func TestBinaryPredictBatchIntoGuard(t *testing.T) {
	m, train, _ := trainSmall(t, 6, 256, 2)
	b := Binarize(m)
	queries := packAll(train[:4], 256)
	defer func() {
		if recover() == nil {
			t.Fatal("PredictBatchInto with short dst did not panic")
		}
	}()
	b.PredictBatchInto(make([]int, 3), queries, 1)
}

func TestBinaryCloneIndependence(t *testing.T) {
	m, _, _ := trainSmall(t, 7, 256, 3)
	b := Binarize(m)
	c := b.Clone()
	if c.D() != b.D() || c.Classes() != b.Classes() || c.SourceBW() != b.SourceBW() {
		t.Fatal("clone metadata differs")
	}
	c.Class(0).SetBit(0, 1-c.Class(0).Bit(0))
	if b.Class(0).Equal(c.Class(0)) {
		t.Fatal("mutating clone affected original")
	}
}
