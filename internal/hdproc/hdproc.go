// Package hdproc models the programmable hyperdimensional processor of
// Datta et al. (IEEE JETCAS 2019 — the paper's ref [10]): the trainable
// HDC *processor* GENERIC is compared against in Figures 8/9.
//
// Unlike GENERIC's fixed-function pipeline, the processor executes an HDC
// instruction stream on a vector register file. Each vector instruction
// streams a D-bit (or D-element) operand through LaneBits-wide lanes, so a
// D=4096 XOR takes D/LaneBits cycles — plus the fetch/decode/issue
// overhead every instruction pays, which is exactly the inefficiency the
// paper attributes to programmable designs ("an HDC-tailored processor …
// consumes ∼1−2 orders of magnitude more energy than ASIC counterparts"
// for PULP; the JETCAS design sits in between).
//
// The model is functional: programs really execute on architectural state
// (binary vector registers, an integer accumulator file, scalar registers),
// and the packaged GENERIC-encoding program produces bit-identical results
// to internal/encoding. Correctness is asserted by tests; cycle counts and
// per-instruction energies feed Figure 9.
package hdproc

import (
	"fmt"
	"math"

	"github.com/edge-hdc/generic/internal/approx"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// Architectural parameters of the modeled processor.
const (
	// LaneBits is the vector datapath width: bits (or accumulator
	// elements·16b) processed per cycle.
	LaneBits = 256
	// VRegs is the number of D-bit binary vector registers.
	VRegs = 8
	// ARegs is the number of D-element integer accumulator registers.
	ARegs = 4
	// SRegs is the number of 64-bit scalar registers.
	SRegs = 8
	// ClockHz matches GENERIC's node and clock for a fair comparison.
	ClockHz = 500e6
)

// Op is an instruction opcode.
type Op int

const (
	// OpLDLV rd, bin: load the level hypervector for quantization bin
	// s-reg[src] into v-reg rd.
	OpLDLV Op = iota
	// OpLDID rd, k: load id(k) (rotated seed) into v-reg rd.
	OpLDID
	// OpXORV rd, ra, rb: rd = ra ⊕ rb.
	OpXORV
	// OpROTV rd, ra, k: rd = ρ(k)(ra).
	OpROTV
	// OpACCV ad, ra: bundle binary v-reg ra into accumulator ad (±1).
	OpACCV
	// OpCLRA ad: clear accumulator ad.
	OpCLRA
	// OpDOTC sd, aa, c: sd = dot(accumulator aa, class c).
	OpDOTC
	// OpSCOR sd, sa, c: sd = approximate score of dot sa against class
	// c's stored norm.
	OpSCOR
	// OpMAXS sd, sa, c: if scalar sa > current max, record class c and
	// update the max held in sd.
	OpMAXS
	// OpQNTZ sd, f: quantize input feature f into a level bin (scalar).
	OpQNTZ
)

// Instr is one instruction.
type Instr struct {
	Op         Op
	Rd, Ra, Rb int
	Imm        int
}

// Program is an instruction sequence.
type Program []Instr

// Stats accounts executed work.
type Stats struct {
	Instructions int64
	Cycles       int64
	VectorCycles int64 // cycles spent streaming vector lanes
	MemReads     int64 // level/id/class memory row reads (LaneBits-wide)
}

// Seconds converts cycles to time at the modeled clock.
func (s Stats) Seconds() float64 { return float64(s.Cycles) / ClockHz }

// Processor is an instance with loaded hypervector material and a class
// model.
type Processor struct {
	d      int
	levels *hdc.LevelTable
	idGen  *hdc.IDGenerator
	lo, hi float64

	classes []hdc.Vec
	norms   []int64

	vregs []*hdc.BitVec
	aregs []hdc.Vec
	sregs []int64

	input []float64
	stats Stats

	// argmax state for OpMAXS
	bestClass int
	bestScore int64
}

// Config parameterizes a processor instance.
type Config struct {
	D      int
	Bins   int
	Lo, Hi float64
	Seed   uint64
}

// New builds a processor with fresh hypervector material.
func New(cfg Config) (*Processor, error) {
	if cfg.D <= 0 || cfg.D%hdc.WordBits != 0 {
		return nil, fmt.Errorf("hdproc: D=%d must be a positive multiple of %d", cfg.D, hdc.WordBits)
	}
	if cfg.Bins == 0 {
		cfg.Bins = 64
	}
	if cfg.Hi == cfg.Lo {
		cfg.Hi = cfg.Lo + 1
	}
	// Split the seed the way internal/encoding does, so the processor's
	// hypervector material is bit-identical to an encoding.Generic encoder
	// built with the same seed.
	r := rng.New(cfg.Seed)
	p := &Processor{
		d:      cfg.D,
		levels: hdc.NewLevelTable(cfg.D, cfg.Bins, r.Split()),
		idGen:  hdc.NewIDGenerator(cfg.D, r.Split()),
		lo:     cfg.Lo,
		hi:     cfg.Hi,
	}
	p.vregs = make([]*hdc.BitVec, VRegs)
	for i := range p.vregs {
		p.vregs[i] = hdc.NewBitVec(cfg.D)
	}
	p.aregs = make([]hdc.Vec, ARegs)
	for i := range p.aregs {
		p.aregs[i] = hdc.NewVec(cfg.D)
	}
	p.sregs = make([]int64, SRegs)
	return p, nil
}

// LoadClasses installs the class model (hypervectors and squared norms).
func (p *Processor) LoadClasses(classes []hdc.Vec, norms []int64) error {
	if len(classes) != len(norms) {
		return fmt.Errorf("hdproc: %d classes vs %d norms", len(classes), len(norms))
	}
	for i, c := range classes {
		if len(c) != p.d {
			return fmt.Errorf("hdproc: class %d has D=%d, want %d", i, len(c), p.d)
		}
	}
	p.classes = classes
	p.norms = norms
	return nil
}

// SetInput installs the feature vector subsequent OpQNTZ instructions read.
func (p *Processor) SetInput(x []float64) { p.input = x }

// Stats returns accumulated counters; ResetStats clears them.
func (p *Processor) Stats() Stats { return p.stats }
func (p *Processor) ResetStats()  { p.stats = Stats{} }

// Sreg reads a scalar register (results of DOTC/SCOR/MAXS programs).
func (p *Processor) Sreg(i int) int64 { return p.sregs[i] }

// BestClass returns the argmax tracked by OpMAXS since the last ClearMax.
func (p *Processor) BestClass() int { return p.bestClass }

// ClearMax resets the argmax tracker.
func (p *Processor) ClearMax() {
	p.bestClass = -1
	p.bestScore = math.MinInt64
}

// vcycles is the lane-streaming cost of one D-wide vector instruction.
func (p *Processor) vcycles() int64 { return int64((p.d + LaneBits - 1) / LaneBits) }

// Run executes a program.
func (p *Processor) Run(prog Program) error {
	for pc, in := range prog {
		if err := p.exec(in); err != nil {
			return fmt.Errorf("hdproc: pc %d: %w", pc, err)
		}
	}
	return nil
}

func (p *Processor) exec(in Instr) error {
	p.stats.Instructions++
	p.stats.Cycles++ // fetch/decode/issue
	switch in.Op {
	case OpQNTZ:
		if in.Imm < 0 || in.Imm >= len(p.input) {
			return fmt.Errorf("QNTZ feature %d out of range", in.Imm)
		}
		p.sregs[in.Rd] = int64(p.levels.Quantize(p.input[in.Imm], p.lo, p.hi))
	case OpLDLV:
		bin := int(p.sregs[in.Ra])
		if bin < 0 || bin >= p.levels.Bins() {
			return fmt.Errorf("LDLV bin %d out of range", bin)
		}
		p.vregs[in.Rd].CopyFrom(p.levels.Level(bin))
		p.stats.Cycles += p.vcycles()
		p.stats.VectorCycles += p.vcycles()
		p.stats.MemReads += p.vcycles()
	case OpLDID:
		p.idGen.ID(in.Imm, p.vregs[in.Rd])
		p.stats.Cycles += p.vcycles()
		p.stats.VectorCycles += p.vcycles()
		p.stats.MemReads += p.vcycles()
	case OpXORV:
		hdc.XorInto(p.vregs[in.Rd], p.vregs[in.Ra], p.vregs[in.Rb])
		p.stats.Cycles += p.vcycles()
		p.stats.VectorCycles += p.vcycles()
	case OpROTV:
		if in.Rd == in.Ra {
			tmp := hdc.Rotate(p.vregs[in.Ra], in.Imm)
			p.vregs[in.Rd].CopyFrom(tmp)
		} else {
			hdc.RotateInto(p.vregs[in.Rd], p.vregs[in.Ra], in.Imm)
		}
		p.stats.Cycles += p.vcycles()
		p.stats.VectorCycles += p.vcycles()
	case OpACCV:
		a := p.aregs[in.Rd]
		v := p.vregs[in.Ra]
		for i := range a {
			a[i] += int32(2*v.Bit(i) - 1)
		}
		// Accumulation streams 16-bit elements: 16× the binary lanes.
		c := p.vcycles() * 16
		p.stats.Cycles += c
		p.stats.VectorCycles += c
	case OpCLRA:
		a := p.aregs[in.Rd]
		for i := range a {
			a[i] = 0
		}
		c := p.vcycles() * 16
		p.stats.Cycles += c
		p.stats.VectorCycles += c
	case OpDOTC:
		if in.Imm < 0 || in.Imm >= len(p.classes) {
			return fmt.Errorf("DOTC class %d out of range", in.Imm)
		}
		p.sregs[in.Rd] = p.aregs[in.Ra].Dot(p.classes[in.Imm])
		c := p.vcycles() * 16
		p.stats.Cycles += c
		p.stats.VectorCycles += c
		p.stats.MemReads += c
	case OpSCOR:
		if in.Imm < 0 || in.Imm >= len(p.classes) {
			return fmt.Errorf("SCOR class %d out of range", in.Imm)
		}
		p.sregs[in.Rd] = approx.ScoreApprox(p.sregs[in.Ra], p.norms[in.Imm])
	case OpMAXS:
		if s := p.sregs[in.Ra]; s > p.bestScore {
			p.bestScore = s
			p.bestClass = in.Imm
		}
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}
	return nil
}
