package hdproc

import "fmt"

// EncodeParams describes the GENERIC-encoding workload a program is built
// for (mirrors encoding.Config's shape parameters).
type EncodeParams struct {
	Features int
	N        int
	UseID    bool
	Classes  int
}

// Register conventions used by the generated programs.
const (
	sBin   = 0 // quantized bin
	sDot   = 1 // dot product
	sScore = 2 // approximate score
	vLevel = 0 // freshly loaded/rotated level
	vWin   = 1 // window accumulator
	vID    = 2 // window id
	aEnc   = 0 // encoding accumulator
)

// GenericEncodeProgram emits the instruction sequence that computes the
// GENERIC encoding (Eq. 1) of the processor's current input into
// accumulator a0: for every window, load+rotate+XOR the member levels,
// optionally bind the window id, and bundle.
func GenericEncodeProgram(p EncodeParams) (Program, error) {
	if p.N < 1 || p.Features < p.N {
		return nil, fmt.Errorf("hdproc: bad window %d for %d features", p.N, p.Features)
	}
	var prog Program
	prog = append(prog, Instr{Op: OpCLRA, Rd: aEnc})
	windows := p.Features - p.N + 1
	for w := 0; w < windows; w++ {
		for j := 0; j < p.N; j++ {
			prog = append(prog,
				Instr{Op: OpQNTZ, Rd: sBin, Imm: w + j},
				Instr{Op: OpLDLV, Rd: vLevel, Ra: sBin},
				Instr{Op: OpROTV, Rd: vLevel, Ra: vLevel, Imm: j},
			)
			if j == 0 {
				// Move level into the window register (rotate by 0).
				prog = append(prog, Instr{Op: OpROTV, Rd: vWin, Ra: vLevel, Imm: 0})
			} else {
				prog = append(prog, Instr{Op: OpXORV, Rd: vWin, Ra: vWin, Rb: vLevel})
			}
		}
		if p.UseID {
			prog = append(prog,
				Instr{Op: OpLDID, Rd: vID, Imm: w},
				Instr{Op: OpXORV, Rd: vWin, Ra: vWin, Rb: vID},
			)
		}
		prog = append(prog, Instr{Op: OpACCV, Rd: aEnc, Ra: vWin})
	}
	return prog, nil
}

// InferProgram emits the similarity search over the loaded classes:
// dot-product, approximate score, and argmax per class. Callers must
// ClearMax() before running it.
func InferProgram(classes int) Program {
	var prog Program
	for c := 0; c < classes; c++ {
		prog = append(prog,
			Instr{Op: OpDOTC, Rd: sDot, Ra: aEnc, Imm: c},
			Instr{Op: OpSCOR, Rd: sScore, Ra: sDot, Imm: c},
			Instr{Op: OpMAXS, Rd: 3, Ra: sScore, Imm: c},
		)
	}
	return prog
}

// Infer runs the full encode+classify flow for one input and returns the
// predicted class.
func (p *Processor) Infer(x []float64, params EncodeParams) (int, error) {
	enc, err := GenericEncodeProgram(params)
	if err != nil {
		return 0, err
	}
	p.SetInput(x)
	p.ClearMax()
	if err := p.Run(enc); err != nil {
		return 0, err
	}
	if err := p.Run(InferProgram(len(p.classes))); err != nil {
		return 0, err
	}
	return p.BestClass(), nil
}

// Encoding exposes accumulator a0 (the encoded hypervector) after an
// encode program ran. The returned slice aliases processor state.
func (p *Processor) Encoding() []int32 { return p.aregs[aEnc] }
