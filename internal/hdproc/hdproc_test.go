package hdproc

import (
	"testing"

	"github.com/edge-hdc/generic/internal/approx"
	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/metrics"
	"github.com/edge-hdc/generic/internal/rng"
)

// scoreApproxRef mirrors the hardware scorer for the agreement test.
func scoreApproxRef(dot, norm2 int64) int64 { return approx.ScoreApprox(dot, norm2) }

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{D: 100}); err == nil {
		t.Error("bad D accepted")
	}
	p, err := New(Config{D: 512, Lo: 0, Hi: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.vcycles() != 2 {
		t.Errorf("vcycles = %d for D=512, want 2", p.vcycles())
	}
}

func TestEncodeProgramMatchesEncoder(t *testing.T) {
	// The processor's encode program must reproduce internal/encoding's
	// GENERIC encoder bit-for-bit (same seed → same material → same math).
	const d, features, n = 1024, 24, 3
	for _, useID := range []bool{true, false} {
		cfg := encoding.Config{
			D: d, Features: features, Bins: 64, Lo: 0, Hi: 1,
			N: n, UseID: useID, Seed: 9,
		}
		enc := encoding.MustNew(encoding.Generic, cfg)
		proc, err := New(Config{D: d, Bins: 64, Lo: 0, Hi: 1, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(3)
		x := make([]float64, features)
		for i := range x {
			x[i] = r.Float64()
		}
		want := hdc.NewVec(d)
		enc.Encode(x, want)

		prog, err := GenericEncodeProgram(EncodeParams{Features: features, N: n, UseID: useID})
		if err != nil {
			t.Fatal(err)
		}
		proc.SetInput(x)
		if err := proc.Run(prog); err != nil {
			t.Fatal(err)
		}
		got := proc.Encoding()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("useID=%v: dim %d: processor %d != encoder %d", useID, i, got[i], want[i])
			}
		}
	}
}

func TestInferMatchesClassifier(t *testing.T) {
	ds := dataset.MustLoad("EEG", 1)
	const d = 2048
	cfg := encoding.Config{
		D: d, Features: ds.Features, Bins: 64, Lo: ds.Lo, Hi: ds.Hi,
		N: 3, UseID: ds.UseID, Seed: 9,
	}
	enc := encoding.MustNew(encoding.Generic, cfg)
	trainH := encoding.EncodeAll(enc, ds.TrainX)
	m, _ := classifier.TrainEncoded(trainH, ds.TrainY, ds.Classes, classifier.Options{Epochs: 10, Seed: 1})

	proc, err := New(Config{D: d, Bins: 64, Lo: ds.Lo, Hi: ds.Hi, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]hdc.Vec, m.Classes())
	norms := make([]int64, m.Classes())
	for c := 0; c < m.Classes(); c++ {
		classes[c] = m.Class(c)
		norms[c] = m.Norm2(c)
	}
	if err := proc.LoadClasses(classes, norms); err != nil {
		t.Fatal(err)
	}
	params := EncodeParams{Features: ds.Features, N: 3, UseID: ds.UseID, Classes: ds.Classes}
	preds := make([]int, 100)
	for i := 0; i < 100; i++ {
		pred, err := proc.Infer(ds.TestX[i], params)
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = pred
	}
	if acc := metrics.MustAccuracy(preds, ds.TestY[:100]); acc < 0.85 {
		t.Errorf("processor inference accuracy = %.3f, want ≥ 0.85", acc)
	}
	// Against a reference using the SAME encodings and the SAME integer
	// scorer, agreement must be exact — the processor and the ASIC share
	// every bit of the decision math.
	for i := 0; i < 100; i++ {
		h := hdc.NewVec(d)
		enc.Encode(ds.TestX[i], h)
		best, bestScore := -1, int64(-1)<<62
		for c := 0; c < m.Classes(); c++ {
			if s := scoreApproxRef(h.Dot(m.Class(c)), m.Norm2(c)); s > bestScore {
				best, bestScore = c, s
			}
		}
		if preds[i] != best {
			t.Fatalf("sample %d: processor %d != integer-scorer reference %d", i, preds[i], best)
		}
	}
}

func TestProcessorSlowerThanASIC(t *testing.T) {
	// The architectural point of Figure 9: instruction fetch and lane
	// streaming make the programmable processor slower than GENERIC's
	// fixed-function pipeline on the same workload and clock.
	proc, err := New(Config{D: 4096, Bins: 64, Lo: 0, Hi: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]hdc.Vec, 10)
	norms := make([]int64, 10)
	for c := range classes {
		classes[c] = hdc.NewVec(4096)
		norms[c] = 1
	}
	if err := proc.LoadClasses(classes, norms); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 128)
	if _, err := proc.Infer(x, EncodeParams{Features: 128, N: 3, UseID: true, Classes: 10}); err != nil {
		t.Fatal(err)
	}
	procSec := proc.Stats().Seconds()
	// GENERIC's cycle model for the same shape: ≈ (D/16)·d cycles.
	asicSec := float64(4096/16*132+128+20) / ClockHz
	if procSec <= asicSec {
		t.Errorf("processor (%.1f µs) should be slower than the ASIC pipeline (%.1f µs)",
			procSec*1e6, asicSec*1e6)
	}
	if procSec > 100*asicSec {
		t.Errorf("processor %.1f µs implausibly slow vs ASIC %.1f µs", procSec*1e6, asicSec*1e6)
	}
}

func TestProgramErrors(t *testing.T) {
	proc, _ := New(Config{D: 512, Lo: 0, Hi: 1, Seed: 1})
	proc.SetInput(make([]float64, 4))
	cases := []Instr{
		{Op: OpQNTZ, Rd: 0, Imm: 99},       // feature out of range
		{Op: OpDOTC, Rd: 0, Ra: 0, Imm: 0}, // no classes loaded
		{Op: OpSCOR, Rd: 0, Ra: 0, Imm: 0}, // no classes loaded
		{Op: Op(99)},                       // unknown opcode
	}
	for i, in := range cases {
		if err := proc.Run(Program{in}); err == nil {
			t.Errorf("case %d: invalid instruction accepted", i)
		}
	}
	if _, err := GenericEncodeProgram(EncodeParams{Features: 2, N: 3}); err == nil {
		t.Error("bad window accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	proc, _ := New(Config{D: 512, Bins: 64, Lo: 0, Hi: 1, Seed: 1})
	proc.SetInput(make([]float64, 8))
	prog, _ := GenericEncodeProgram(EncodeParams{Features: 8, N: 3, UseID: true})
	if err := proc.Run(prog); err != nil {
		t.Fatal(err)
	}
	st := proc.Stats()
	if st.Instructions != int64(len(prog)) {
		t.Errorf("instructions = %d, want %d", st.Instructions, len(prog))
	}
	if st.Cycles <= st.Instructions {
		t.Error("cycles must exceed instruction count (vector streaming)")
	}
	if st.VectorCycles == 0 || st.MemReads == 0 {
		t.Errorf("missing vector/memory accounting: %+v", st)
	}
	proc.ResetStats()
	if proc.Stats().Cycles != 0 {
		t.Error("ResetStats did not clear")
	}
}

func BenchmarkProcessorInfer(b *testing.B) {
	proc, err := New(Config{D: 2048, Bins: 64, Lo: 0, Hi: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	classes := make([]hdc.Vec, 4)
	norms := make([]int64, 4)
	for c := range classes {
		classes[c] = hdc.NewVec(2048)
		norms[c] = 1
	}
	proc.LoadClasses(classes, norms)
	x := make([]float64, 64)
	params := EncodeParams{Features: 64, N: 3, UseID: true, Classes: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proc.Infer(x, params); err != nil {
			b.Fatal(err)
		}
	}
}
