package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/faults"
)

func TestResilienceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains and sweeps faults over ISOLET")
	}
	res, err := Resilience(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline < 0.80 {
		t.Fatalf("baseline accuracy %.3f too low for shape assertions", res.Baseline)
	}
	if want := len(ResilienceSites) * len(ResilienceBERs); len(res.Points) != want {
		t.Fatalf("%d sweep points, want %d (ISOLET binds ids, so no site skips)", len(res.Points), want)
	}
	for _, p := range res.Points {
		// The id seed register is only D bits, so the lowest BER can
		// legitimately inject nothing; every other cell must.
		if p.InjectedBits == 0 && !(p.Site == "id" && p.BER <= 0.001) {
			t.Errorf("%s @ %.1f%%: no bits injected", p.Site, 100*p.BER)
		}
		switch p.Site {
		case "level", "id", "norm":
			// These memories repair exactly: level/id regenerate from seed,
			// norms recompute from the (untouched) class vectors.
			if p.Recovered != res.Baseline {
				t.Errorf("%s @ %.1f%%: recovered %.4f != baseline %.4f",
					p.Site, 100*p.BER, p.Recovered, res.Baseline)
			}
		case "class":
			// Class memory is detect-only: the scrub must never make
			// things worse than the corrupted state. Uniform corruption is
			// widespread by construction, so the scrub stands down and
			// tolerates rather than quarantines (Fig. 6's premise).
			if p.Recovered < p.Corrupted-0.05 {
				t.Errorf("class @ %.1f%%: scrub degraded accuracy %.4f -> %.4f",
					100*p.BER, p.Corrupted, p.Recovered)
			}
			if p.LanesMasked == 0 && p.Quarantined == 0 && p.Tolerated == 0 && p.BER >= 0.01 {
				t.Errorf("class @ %.1f%%: scrub detected nothing", 100*p.BER)
			}
		}
	}
	// The binary column: packed class memory swept at the same BERs.
	if res.BinaryBaseline < 0.70 {
		t.Fatalf("binary baseline accuracy %.3f too low", res.BinaryBaseline)
	}
	if len(res.BinaryPoints) != len(ResilienceBERs) {
		t.Fatalf("%d binary sweep points, want %d", len(res.BinaryPoints), len(ResilienceBERs))
	}
	for _, p := range res.BinaryPoints {
		if p.InjectedBits == 0 && p.BER > 0.001 {
			t.Errorf("binary class @ %.1f%%: no bits injected", 100*p.BER)
		}
		// Rebinarization re-derives the packed classes from the intact
		// integer counters, so recovery is exact by construction.
		if p.Rebinarized != res.BinaryBaseline {
			t.Errorf("binary class @ %.1f%%: rebinarized %.4f != baseline %.4f",
				100*p.BER, p.Rebinarized, res.BinaryBaseline)
		}
	}
	// Rendering and the JSON artifact must both carry the sweep.
	s := res.String()
	for _, needle := range []string{"Resilience", "bank failure", "level", "datapath", "binary"} {
		if needle == "datapath" {
			continue // transient sites are not part of the persistent sweep
		}
		if !strings.Contains(s, needle) {
			t.Errorf("String() missing %q", needle)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ResilienceResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON artifact does not round-trip: %v", err)
	}
	if back.Baseline != res.Baseline || len(back.Points) != len(res.Points) {
		t.Error("JSON artifact dropped fields")
	}
	if back.BinaryBaseline != res.BinaryBaseline || len(back.BinaryPoints) != len(res.BinaryPoints) {
		t.Error("JSON artifact dropped the binary sweep")
	}
}

// The paper-scale acceptance criterion: at D=4096, losing one whole class
// bank (1/16 of the dimensions) costs less than 2 accuracy points after the
// scrub masks the lane, because the modified cosine renormalizes over the
// survivors.
func TestBankFailureUnderTwoPointsAtD4096(t *testing.T) {
	if testing.Short() {
		t.Skip("trains ISOLET at D=4096")
	}
	const d = 4096
	seed := uint64(1)
	ds, err := dataset.Load(ResilienceDataset, seed)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encoderFor(encoding.Generic, ds, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	trainH := encoding.EncodeAllWorkers(enc, ds.TrainX, 0)
	testH := encoding.EncodeAllWorkers(enc, ds.TestX, 0)
	m, _ := classifier.TrainEncoded(trainH, ds.TrainY, ds.Classes, classifier.Options{Epochs: 5, Seed: seed, Workers: 0})
	baseline := classifier.Accuracy(m, testH, ds.TestY, 0)

	ctl := faults.NewController(m, enc)
	if _, err := ctl.Inject(faults.Spec{Site: faults.SiteClass, Kind: faults.BankFail, Lane: 7, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	rep := ctl.Scrub()
	if rep.LanesMasked != 1 {
		t.Fatalf("scrub masked %d lanes, want 1", rep.LanesMasked)
	}
	recovered := classifier.Accuracy(m, testH, ds.TestY, 0)
	if drop := 100 * (baseline - recovered); drop >= 2 {
		t.Errorf("dead bank costs %.2f accuracy points at D=%d, want < 2 (%.4f -> %.4f)",
			drop, d, baseline, recovered)
	}
}
