package experiments

import (
	"fmt"

	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/metrics"
	"github.com/edge-hdc/generic/internal/power"
	"github.com/edge-hdc/generic/internal/sim"
)

// GatingRow is one benchmark's class-memory occupancy and the resulting
// power-gating state (§4.3.2).
type GatingRow struct {
	Dataset     string
	Classes     int
	Fill        float64 // fraction of class-memory rows used
	ActiveBanks float64 // of sim.Banks per memory
	StaticMW    float64 // gated static power
}

// GatingResult reproduces the §4.3.2 analysis: the paper reports that its
// applications fill 28% of the class memories on average (6% minimum for
// EEG/FACE, 81% maximum for ISOLET), that 1.6 of 4 banks stay active on
// average, and that gating saves ~59% of class-memory power, yielding the
// §5.1 average static power of 0.09 mW.
type GatingResult struct {
	Rows []GatingRow
	// MeanFill is the average occupancy; MeanActiveBanks the average
	// powered banks; MeanStaticMW the average gated static power;
	// ClassSaving the average class-memory static saving vs all-banks-on.
	MeanFill        float64
	MeanActiveBanks float64
	MeanStaticMW    float64
	ClassSaving     float64
}

// PowerGating computes the gating state for every classification benchmark
// at the paper's D=4096 operating point.
func PowerGating(cfg Config) (*GatingResult, error) {
	cfg = cfg.normalized()
	res := &GatingResult{}
	var fills, banks, statics, savings []float64
	for _, name := range dataset.Names() {
		ds, err := dataset.Load(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		feat := ds.Features
		if feat > sim.MaxFeatures {
			feat = sim.MaxFeatures
		}
		n := 3
		if feat < n {
			n = feat
		}
		spec := sim.Spec{D: PaperD, Features: feat, N: n, Classes: ds.Classes, BW: 16}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("gating: %s: %w", name, err)
		}
		frac := spec.ActiveBankFrac()
		staticW := power.StaticPowerW(power.Config{ActiveBankFrac: frac})
		res.Rows = append(res.Rows, GatingRow{
			Dataset:     name,
			Classes:     ds.Classes,
			Fill:        spec.Fill(),
			ActiveBanks: frac * sim.Banks,
			StaticMW:    staticW * 1e3,
		})
		fills = append(fills, spec.Fill())
		banks = append(banks, frac*sim.Banks)
		statics = append(statics, staticW*1e3)
		savings = append(savings, 1-frac)
	}
	res.MeanFill = metrics.Mean(fills)
	res.MeanActiveBanks = metrics.Mean(banks)
	res.MeanStaticMW = metrics.Mean(statics)
	res.ClassSaving = metrics.Mean(savings)
	return res, nil
}

// String renders the per-benchmark table plus the §4.3.2/§5.1 summary.
func (r *GatingResult) String() string {
	t := &table{header: []string{"Dataset", "Classes", "Fill %", "Banks on", "Static mW"}}
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			fmt.Sprintf("%d", row.Classes),
			fmt.Sprintf("%.1f", 100*row.Fill),
			fmt.Sprintf("%.0f/%d", row.ActiveBanks, sim.Banks),
			fmt.Sprintf("%.3f", row.StaticMW))
	}
	return fmt.Sprintf(
		"Power gating (§4.3.2): class-memory occupancy at D=%d\n%s"+
			"mean fill %.0f%% (paper: 28%%) | mean banks %.1f/4 (paper: 1.6) | "+
			"class-mem static saving %.0f%% (paper: ~59%%) | mean static %.3f mW (paper: 0.09)\n",
		PaperD, t.String(), 100*r.MeanFill, r.MeanActiveBanks,
		100*r.ClassSaving, r.MeanStaticMW)
}
