package experiments

import (
	"fmt"
	"strings"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/metrics"
)

// This file implements ablation studies for the design choices the paper
// fixes by experiment but does not tabulate:
//
//   - §3.1: "We use n=3 as it achieved the highest accuracy (on average)
//     for our examined benchmarks" — AblationWindow sweeps n.
//   - §3.1/Eq. 1: per-window id binding restores global order —
//     AblationID removes it everywhere and shows which benchmarks break.
//   - §2.2/§5.1: 64 level bins ("using more levels does not considerably
//     affect the area or power") — AblationBins sweeps the bin count and
//     shows accuracy saturates.

// AblationDatasets is the benchmark subset used for ablations: one of each
// structural family, so every effect has a witness.
var AblationDatasets = []string{"EEG", "LANG", "MNIST", "ISOLET", "PAGE"}

// ablationEval trains a GENERIC-encoded model with the given overrides and
// returns test accuracy.
func ablationEval(ds *dataset.Dataset, cfg Config, n, bins int, useID bool) (float64, error) {
	if n > ds.Features {
		n = ds.Features
	}
	enc, err := encoding.New(encoding.Generic, encoding.Config{
		D: cfg.D, Features: ds.Features, Bins: bins, Lo: ds.Lo, Hi: ds.Hi,
		N: n, UseID: useID, Seed: cfg.Seed,
	})
	if err != nil {
		return 0, err
	}
	trainH := encoding.EncodeAllWorkers(enc, ds.TrainX, cfg.Workers)
	testH := encoding.EncodeAllWorkers(enc, ds.TestX, cfg.Workers)
	m, _ := classifier.TrainEncoded(trainH, ds.TrainY, ds.Classes, classifier.Options{
		Epochs: cfg.Epochs, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	return classifier.Accuracy(m, testH, ds.TestY, cfg.Workers), nil
}

// AblationWindowResult sweeps the window length n.
type AblationWindowResult struct {
	Ns       []int
	Datasets []string
	// Acc[dataset][nIndex]
	Acc map[string][]float64
	// MeanByN[nIndex] is the cross-benchmark mean accuracy.
	MeanByN []float64
}

// AblationWindow sweeps n ∈ {2,3,4,5} with the per-dataset id policy.
func AblationWindow(cfg Config) (*AblationWindowResult, error) {
	cfg = cfg.normalized()
	res := &AblationWindowResult{
		Ns:       []int{2, 3, 4, 5},
		Datasets: AblationDatasets,
		Acc:      map[string][]float64{},
	}
	accs := make([][]float64, len(res.Datasets))
	err := cfg.fanOut(len(res.Datasets), func(i int) error {
		ds, err := dataset.Load(res.Datasets[i], cfg.Seed)
		if err != nil {
			return err
		}
		for _, n := range res.Ns {
			acc, err := ablationEval(ds, cfg, n, 64, ds.UseID)
			if err != nil {
				return err
			}
			accs[i] = append(accs[i], acc)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range res.Datasets {
		res.Acc[name] = accs[i]
	}
	for i := range res.Ns {
		var col []float64
		for _, name := range res.Datasets {
			col = append(col, res.Acc[name][i])
		}
		res.MeanByN = append(res.MeanByN, metrics.Mean(col))
	}
	return res, nil
}

// BestN returns the window length with the highest mean accuracy.
func (r *AblationWindowResult) BestN() int {
	best, bestAcc := r.Ns[0], -1.0
	for i, n := range r.Ns {
		if r.MeanByN[i] > bestAcc {
			best, bestAcc = n, r.MeanByN[i]
		}
	}
	return best
}

func (r *AblationWindowResult) String() string {
	t := &table{header: []string{"Dataset"}}
	for _, n := range r.Ns {
		t.header = append(t.header, fmt.Sprintf("n=%d", n))
	}
	for _, name := range r.Datasets {
		row := []string{name}
		for _, a := range r.Acc[name] {
			row = append(row, fmtPct(a))
		}
		t.addRow(row...)
	}
	mean := []string{"Mean"}
	for _, a := range r.MeanByN {
		mean = append(mean, fmtPct(a))
	}
	t.addRow(mean...)
	return fmt.Sprintf("Ablation: GENERIC window length (paper picks n=3; best here n=%d)\n%s",
		r.BestN(), t.String())
}

// AblationIDResult compares GENERIC with and without per-window id binding
// on every ablation benchmark.
type AblationIDResult struct {
	Datasets  []string
	WithID    []float64
	WithoutID []float64
}

// AblationID forces ids on and off regardless of the per-dataset policy.
func AblationID(cfg Config) (*AblationIDResult, error) {
	cfg = cfg.normalized()
	res := &AblationIDResult{
		Datasets:  AblationDatasets,
		WithID:    make([]float64, len(AblationDatasets)),
		WithoutID: make([]float64, len(AblationDatasets)),
	}
	err := cfg.fanOut(len(res.Datasets), func(i int) error {
		ds, err := dataset.Load(res.Datasets[i], cfg.Seed)
		if err != nil {
			return err
		}
		if res.WithID[i], err = ablationEval(ds, cfg, 3, 64, true); err != nil {
			return err
		}
		if res.WithoutID[i], err = ablationEval(ds, cfg, 3, 64, false); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Acc returns (withID, withoutID) for a dataset.
func (r *AblationIDResult) AccFor(name string) (on, off float64, ok bool) {
	for i, d := range r.Datasets {
		if d == name {
			return r.WithID[i], r.WithoutID[i], true
		}
	}
	return 0, 0, false
}

func (r *AblationIDResult) String() string {
	t := &table{header: []string{"Dataset", "with id", "without id", "Δ"}}
	for i, name := range r.Datasets {
		t.addRow(name, fmtPct(r.WithID[i]), fmtPct(r.WithoutID[i]),
			fmt.Sprintf("%+.1f", 100*(r.WithID[i]-r.WithoutID[i])))
	}
	return "Ablation: per-window id binding (Eq. 1's global-order term)\n" + t.String()
}

// AblationBinsResult sweeps the level-hypervector bin count.
type AblationBinsResult struct {
	Bins     []int
	Datasets []string
	Acc      map[string][]float64
	MeanBy   []float64
}

// AblationBins sweeps the quantization bins ∈ {4,16,64}.
func AblationBins(cfg Config) (*AblationBinsResult, error) {
	cfg = cfg.normalized()
	res := &AblationBinsResult{
		Bins:     []int{4, 16, 64},
		Datasets: AblationDatasets,
		Acc:      map[string][]float64{},
	}
	accs := make([][]float64, len(res.Datasets))
	err := cfg.fanOut(len(res.Datasets), func(i int) error {
		ds, err := dataset.Load(res.Datasets[i], cfg.Seed)
		if err != nil {
			return err
		}
		for _, bins := range res.Bins {
			acc, err := ablationEval(ds, cfg, 3, bins, ds.UseID)
			if err != nil {
				return err
			}
			accs[i] = append(accs[i], acc)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range res.Datasets {
		res.Acc[name] = accs[i]
	}
	for i := range res.Bins {
		var col []float64
		for _, name := range res.Datasets {
			col = append(col, res.Acc[name][i])
		}
		res.MeanBy = append(res.MeanBy, metrics.Mean(col))
	}
	return res, nil
}

func (r *AblationBinsResult) String() string {
	t := &table{header: []string{"Dataset"}}
	for _, b := range r.Bins {
		t.header = append(t.header, fmt.Sprintf("%d bins", b))
	}
	for _, name := range r.Datasets {
		row := []string{name}
		for _, a := range r.Acc[name] {
			row = append(row, fmtPct(a))
		}
		t.addRow(row...)
	}
	mean := []string{"Mean"}
	for _, a := range r.MeanBy {
		mean = append(mean, fmtPct(a))
	}
	t.addRow(mean...)
	var b strings.Builder
	b.WriteString("Ablation: level quantization bins (paper uses 64)\n")
	b.WriteString(t.String())
	return b.String()
}
