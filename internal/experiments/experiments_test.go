package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run the Quick configuration and assert the *shape*
// properties DESIGN.md §4 commits to — orderings, crossovers, dominance —
// rather than absolute numbers.

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 takes ~15 s even in quick mode")
	}
	res, err := Table1(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("expected 11 benchmarks, got %d", len(res.Rows))
	}
	// GENERIC has the best mean accuracy among HDC encodings...
	m := res.Mean
	for _, other := range []float64{m.RP, m.LevelID, m.Ngram, m.Permute} {
		if m.Generic <= other {
			t.Errorf("GENERIC mean %.3f not above all HDC baselines (one is %.3f)", m.Generic, other)
		}
	}
	// ...and the lowest standard deviation (it fails nowhere).
	s := res.Std
	for _, other := range []float64{s.RP, s.LevelID, s.Ngram, s.Permute} {
		if s.Generic >= other {
			t.Errorf("GENERIC std %.3f not below all HDC baselines (one is %.3f)", s.Generic, other)
		}
	}
	// GENERIC beats the best classical baseline on mean accuracy.
	for _, other := range []float64{m.MLP, m.SVM, m.RF, m.DNN} {
		if m.Generic <= other {
			t.Errorf("GENERIC mean %.3f not above all ML baselines (one is %.3f)", m.Generic, other)
		}
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Dataset] = r
	}
	// RP collapses on the zero-mean time-series benchmarks.
	if eeg := byName["EEG"]; eeg.RP > eeg.Generic-0.2 {
		t.Errorf("RP should collapse on EEG: RP %.3f vs GENERIC %.3f", eeg.RP, eeg.Generic)
	}
	if emg := byName["EMG"]; emg.RP > emg.LevelID-0.2 {
		t.Errorf("RP should collapse on EMG: RP %.3f vs level-id %.3f", emg.RP, emg.LevelID)
	}
	// ngram collapses on positional benchmarks but aces sequences.
	if mn := byName["MNIST"]; mn.Ngram > mn.Generic-0.2 {
		t.Errorf("ngram should collapse on MNIST: %.3f vs %.3f", mn.Ngram, mn.Generic)
	}
	if iso := byName["ISOLET"]; iso.Ngram > iso.Generic-0.2 {
		t.Errorf("ngram should collapse on ISOLET: %.3f vs %.3f", iso.Ngram, iso.Generic)
	}
	lang := byName["LANG"]
	if lang.Ngram < 0.85 || lang.Generic < 0.85 {
		t.Errorf("ngram/GENERIC should ace LANG: %.3f / %.3f", lang.Ngram, lang.Generic)
	}
	if lang.RP > 0.3 || lang.LevelID > lang.Generic-0.3 {
		t.Errorf("positional encodings should fail LANG: RP %.3f, level-id %.3f", lang.RP, lang.LevelID)
	}
	// Rendering sanity.
	out := res.String()
	if !strings.Contains(out, "GENERIC") || !strings.Contains(out, "Mean") {
		t.Error("Table 1 rendering incomplete")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 clustering benchmarks, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.KMeans < 0.5 {
			t.Errorf("%s: k-means NMI %.3f unexpectedly low", row.Dataset, row.KMeans)
		}
		if row.HDC < row.KMeans-0.35 {
			t.Errorf("%s: HDC NMI %.3f too far below k-means %.3f", row.Dataset, row.HDC, row.KMeans)
		}
	}
	// Paper: k-means slightly ahead on average (gap 0.031); allow generous
	// room but require "same band".
	if res.MeanGap > 0.25 || res.MeanGap < -0.25 {
		t.Errorf("mean NMI gap %.3f outside the same-band expectation", res.MeanGap)
	}
	if !strings.Contains(res.String(), "Hepta") {
		t.Error("Table 2 rendering incomplete")
	}
}

func TestFigure3Shape(t *testing.T) {
	res, err := Figure3(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// HDC on eGPU must be ≥ 2 orders of magnitude cheaper than on the Pi.
	rpi, ok1 := res.Cell("Raspberry Pi", "GENERIC")
	egpu, ok2 := res.Cell("eGPU", "GENERIC")
	cpu, ok3 := res.Cell("CPU", "GENERIC")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing GENERIC cells")
	}
	if ratio := rpi.InferEnergyJ / egpu.InferEnergyJ; ratio < 50 {
		t.Errorf("RPi/eGPU GENERIC inference energy ratio = %.0f, want ≥ 50 (paper: 134)", ratio)
	}
	if ratio := cpu.InferEnergyJ / egpu.InferEnergyJ; ratio < 10 {
		t.Errorf("CPU/eGPU GENERIC inference energy ratio = %.0f, want ≥ 10 (paper: 70)", ratio)
	}
	// On Pi and CPU, every classical baseline costs less energy than
	// GENERIC-encoded HDC (Fig. 3 claim (i)).
	for _, dev := range []string{"Raspberry Pi", "CPU"} {
		hdc, _ := res.Cell(dev, "GENERIC")
		for _, alg := range []string{"MLP", "SVM", "RF", "LR", "DNN"} {
			mlCell, ok := res.Cell(dev, alg)
			if !ok {
				t.Fatalf("missing %s/%s", dev, alg)
			}
			if mlCell.InferEnergyJ >= hdc.InferEnergyJ {
				t.Errorf("%s: %s inference (%g) not cheaper than HDC (%g)",
					dev, alg, mlCell.InferEnergyJ, hdc.InferEnergyJ)
			}
		}
	}
	// GENERIC encoding costs more than level-id on conventional hardware
	// (claim (ii): it processes multiple hypervectors per window).
	lid, _ := res.Cell("CPU", "level-id")
	genc, _ := res.Cell("CPU", "GENERIC")
	if genc.InferEnergyJ <= lid.InferEnergyJ {
		t.Errorf("GENERIC (%g) should cost more than level-id (%g) on CPU",
			genc.InferEnergyJ, lid.InferEnergyJ)
	}
	// The eGPU table only carries HDC + DNN (the paper omits other ML).
	if _, ok := res.Cell("eGPU", "RF"); ok {
		t.Error("eGPU should not report RF (omitted in the paper)")
	}
	if !strings.Contains(res.String(), "Figure 3") {
		t.Error("Figure 3 rendering incomplete")
	}
}

func TestFigure5Shape(t *testing.T) {
	res, err := Figure5(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("expected EEG and ISOLET curves, got %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		last := c.Points[len(c.Points)-1]
		// At full dimensionality both modes coincide.
		if last.ConstantNorm != last.UpdatedNorm {
			t.Errorf("%s: full-D accuracies differ (%.3f vs %.3f)",
				c.Dataset, last.ConstantNorm, last.UpdatedNorm)
		}
		// Updated norms must dominate constant norms at every point.
		for _, p := range c.Points {
			if p.UpdatedNorm < p.ConstantNorm-0.02 {
				t.Errorf("%s @ %d dims: updated %.3f below constant %.3f",
					c.Dataset, p.Dims, p.UpdatedNorm, p.ConstantNorm)
			}
		}
	}
	// The paper's headline: a substantial gap opens at reduced dimensions
	// on EEG (up to 20.1%).
	if gap := res.MaxGap("EEG"); gap < 0.03 {
		t.Errorf("EEG constant-vs-updated max gap = %.3f, want noticeable (paper: 0.201)", gap)
	}
	if !strings.Contains(res.String(), "Figure 5") {
		t.Error("Figure 5 rendering incomplete")
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := Figure6(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("expected ISOLET and FACE curves, got %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		// Fault-free accuracy must be healthy for every bit-width.
		for _, bw := range Fig6BitWidths {
			if c.Points[0].Accuracy[bw] < 0.6 {
				t.Errorf("%s bw=%d: fault-free accuracy %.3f too low",
					c.Dataset, bw, c.Points[0].Accuracy[bw])
			}
		}
		// Power savings grow monotonically with BER.
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].StaticSaving < c.Points[i-1].StaticSaving {
				t.Errorf("%s: static saving not monotone at BER %.3f",
					c.Dataset, c.Points[i].BER)
			}
		}
	}
	// FACE's 1-bit model tolerates high BER (paper: up to 7% with little
	// loss) — a key error-resilience claim.
	if tol := res.ToleratedBER("FACE", 1, 0.05); tol < 0.02 {
		t.Errorf("FACE 1-bit tolerated BER = %.3f, want ≥ 0.02 (paper: ~0.07)", tol)
	}
	if !strings.Contains(res.String(), "Figure 6") {
		t.Error("Figure 6 rendering incomplete")
	}
}

func TestFigure7Shape(t *testing.T) {
	res, err := Figure7(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AreaMM2.Total() < 0.29 || res.AreaMM2.Total() > 0.31 {
		t.Errorf("area = %.3f mm², paper: 0.30", res.AreaMM2.Total())
	}
	if res.GatedStaticMW < 0.06 || res.GatedStaticMW > 0.13 {
		t.Errorf("gated static = %.3f mW, paper: 0.09", res.GatedStaticMW)
	}
	if res.AvgDynamicMW < 1.0 || res.AvgDynamicMW > 3.0 {
		t.Errorf("avg dynamic = %.2f mW, paper: 1.79", res.AvgDynamicMW)
	}
	if res.DynamicShares.ClassMem < 0.55 {
		t.Errorf("class-memory dynamic share = %.2f, must dominate", res.DynamicShares.ClassMem)
	}
	if !strings.Contains(res.String(), "class mem") {
		t.Error("Figure 7 rendering incomplete")
	}
}

func TestFigure8Shape(t *testing.T) {
	res, err := Figure8(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := res.Bar("GENERIC")
	rf, _ := res.Bar("RF (CPU)")
	dnn, _ := res.Bar("DNN (eGPU)")
	hdc, _ := res.Bar("HDC (eGPU)")
	// GENERIC's training energy sits orders of magnitude below every
	// conventional platform (paper: 528× vs RF, 1257× vs DNN, 694× vs
	// eGPU-HDC).
	for _, other := range []Fig8Bar{rf, dnn, hdc} {
		if ratio := other.EnergyJ / gen.EnergyJ; ratio < 50 {
			t.Errorf("GENERIC training energy advantage over %s = %.0f×, want ≫ 50", other.Label, ratio)
		}
	}
	// RF trains faster than GENERIC (paper: 12×); DNN slower (11×).
	if rf.TimeS >= gen.TimeS {
		t.Errorf("RF should train faster per input: RF %g s vs GENERIC %g s", rf.TimeS, gen.TimeS)
	}
	if dnn.TimeS <= gen.TimeS {
		t.Errorf("DNN should train slower per input: DNN %g s vs GENERIC %g s", dnn.TimeS, gen.TimeS)
	}
	// GENERIC's training power is milliwatt-scale (paper: 2.06 mW).
	if p := res.GenericTrainPowerW * 1e3; p < 0.5 || p > 6 {
		t.Errorf("GENERIC training power = %.2f mW, want ≈ 2", p)
	}
	if !strings.Contains(res.String(), "Figure 8") {
		t.Error("Figure 8 rendering incomplete")
	}
}

func TestFigure9Shape(t *testing.T) {
	res, err := Figure9(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	lp, _ := res.Bar("GENERIC-LP")
	gen, _ := res.Bar("GENERIC")
	tiny, _ := res.Bar("tiny-HD [8]")
	datta, _ := res.Bar("Datta et al. [10]")
	rf, _ := res.Bar("RF (CPU)")
	hdc, _ := res.Bar("HDC (eGPU)")
	// Ordering: LP < tiny-HD < Datta ≤ conventional platforms.
	if !(lp.EnergyJ < tiny.EnergyJ && tiny.EnergyJ < datta.EnergyJ) {
		t.Errorf("ASIC ordering violated: LP %g, tiny-HD %g, Datta %g",
			lp.EnergyJ, tiny.EnergyJ, datta.EnergyJ)
	}
	if datta.EnergyJ >= rf.EnergyJ {
		t.Errorf("even the least efficient ASIC should beat CPU baselines: Datta %g vs RF %g",
			datta.EnergyJ, rf.EnergyJ)
	}
	// LP reduction over baseline in the paper's 15.5× ballpark.
	if red := res.LPReduction(); red < 5 || red > 60 {
		t.Errorf("LP reduction = %.1f×, want same ballpark as paper's 15.5×", red)
	}
	// Headline orders of magnitude: LP vs RF ≥ 3 decades; vs eGPU-HDC more.
	if ratio := rf.EnergyJ / lp.EnergyJ; ratio < 300 {
		t.Errorf("LP vs RF = %.0f×, want ≥ 300 (paper: 1593×)", ratio)
	}
	// Our eGPU model is more favorable to the eGPU than the paper's
	// measured Python stack, so the ratio lands near ~900× instead of
	// 8796× — same direction, one decade tighter (see EXPERIMENTS.md).
	if ratio := hdc.EnergyJ / lp.EnergyJ; ratio < 500 {
		t.Errorf("LP vs eGPU-HDC = %.0f×, want ≥ 500 (paper: 8796×)", ratio)
	}
	if gen.EnergyJ >= rf.EnergyJ {
		t.Error("baseline GENERIC must already beat CPU baselines")
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Error("Figure 9 rendering incomplete")
	}
}

func TestFigure10Shape(t *testing.T) {
	res, err := Figure10(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 clustering benchmarks, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.GenericJ >= row.KMeansCPUJ || row.GenericJ >= row.KMeansRPiJ {
			t.Errorf("%s: GENERIC (%g J) should be far below k-means (CPU %g, RPi %g)",
				row.Dataset, row.GenericJ, row.KMeansCPUJ, row.KMeansRPiJ)
		}
	}
	// Orders of magnitude (paper: 61,400× CPU / 17,523× RPi energy;
	// 26×/41× latency).
	if adv := res.MeanEnergyAdvantage("CPU"); adv < 100 {
		t.Errorf("clustering energy advantage vs CPU = %.0f×, want ≥ 100", adv)
	}
	if sp := res.MeanSpeedup("RPi"); sp < 2 {
		t.Errorf("clustering speedup vs RPi = %.1f×, want > 2", sp)
	}
	if !strings.Contains(res.String(), "Figure 10") {
		t.Error("Figure 10 rendering incomplete")
	}
}
