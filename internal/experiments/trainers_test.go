package experiments

import (
	"strings"
	"testing"
)

func TestTrainersShape(t *testing.T) {
	cfg := QuickConfig()
	res, err := Trainers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("expected 11 benchmarks, got %d", len(res.Rows))
	}
	d := trainersD(cfg)
	for _, r := range res.Rows {
		if r.D != d {
			t.Errorf("%s ran at D=%d, want the shared compact D=%d", r.Dataset, r.D, d)
		}
		if r.Perceptron <= 0 || r.LeHDC <= 0 {
			t.Errorf("%s has a zero accuracy column: %+v", r.Dataset, r)
		}
		if r.PerceptronEpochs < 1 || r.LeHDCEpochs < 1 {
			t.Errorf("%s reports no epochs: %+v", r.Dataset, r)
		}
	}
	// The acceptance bar for the learned strategy: it beats the perceptron
	// on at least one benchmark at equal D.
	if res.Wins < 1 {
		t.Errorf("lehdc beats the perceptron on %d benchmarks, want >= 1", res.Wins)
	}
	out := res.String()
	for _, want := range []string{"perceptron", "lehdc", "Mean", "CARDIO"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTrainersDatasetSingleRow(t *testing.T) {
	row, err := TrainersDataset("EEG", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.Dataset != "EEG" || row.Perceptron == 0 || row.LeHDC == 0 {
		t.Fatalf("bad row: %+v", row)
	}
}

func TestTrainersUnknownDataset(t *testing.T) {
	if _, err := TrainersDataset("NOPE", QuickConfig()); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
