package experiments

import (
	"fmt"
	"strings"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/power"
	"github.com/edge-hdc/generic/internal/rng"
)

// Fig6BitWidths are the class-memory bit-widths Figure 6 sweeps.
var Fig6BitWidths = []int{8, 4, 2, 1}

// Fig6BERs are the injected bit-error rates (0–10%, as in the figure).
var Fig6BERs = []float64{0, 0.005, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10}

// Fig6Datasets lists the benchmarks the paper plots (ISOLET and FACE).
var Fig6Datasets = []string{"ISOLET", "FACE"}

// Fig6Point is accuracy at one (bw, BER) cell plus the corresponding
// voltage-over-scaling power factors.
type Fig6Point struct {
	BER          float64
	Accuracy     map[int]float64 // keyed by bit-width
	StaticSaving float64         // 1/StaticFactor, the figure's right axis
	DynSaving    float64
}

// Fig6Curve is one dataset's fault-injection sweep.
type Fig6Curve struct {
	Dataset string
	Points  []Fig6Point
}

// Fig6Result reproduces Figure 6: accuracy and power reduction versus
// class-memory bit-error rate for quantized models (§4.3.4).
type Fig6Result struct {
	Curves []Fig6Curve
}

// Figure6 trains one model per dataset, quantizes it to each bit-width,
// injects memory faults at each BER, and pairs the resulting accuracy with
// the voltage-over-scaling power savings the BER buys.
func Figure6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.normalized()
	res := &Fig6Result{}
	faultRNG := rng.New(cfg.Seed ^ 0xfa117)
	for _, name := range Fig6Datasets {
		ds, err := dataset.Load(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		enc, err := encoderFor(encoding.Generic, ds, cfg.D, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// The dataset loop stays serial: fault injection draws from one
		// shared RNG stream, so fanning datasets out would change results.
		// The batch encode/evaluate inside it still parallelizes safely.
		trainH := encoding.EncodeAllWorkers(enc, ds.TrainX, cfg.Workers)
		testH := encoding.EncodeAllWorkers(enc, ds.TestX, cfg.Workers)
		base, _ := classifier.TrainEncoded(trainH, ds.TrainY, ds.Classes, classifier.Options{
			Epochs: cfg.Epochs, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		curve := Fig6Curve{Dataset: name}
		for _, ber := range Fig6BERs {
			pt := Fig6Point{BER: ber, Accuracy: map[int]float64{}}
			vos := power.VOSForBER(ber)
			pt.StaticSaving = 1 / vos.StaticFactor
			pt.DynSaving = 1 / vos.DynFactor
			for _, bw := range Fig6BitWidths {
				m := base.Clone()
				m.Quantize(bw)
				m.InjectBitErrors(ber, faultRNG)
				pt.Accuracy[bw] = classifier.Accuracy(m, testH, ds.TestY, cfg.Workers)
			}
			curve.Points = append(curve.Points, pt)
		}
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}

// ToleratedBER returns the largest swept BER at which the dataset's bw-bit
// model stays within drop of its fault-free accuracy.
func (r *Fig6Result) ToleratedBER(dataset string, bw int, drop float64) float64 {
	for _, c := range r.Curves {
		if c.Dataset != dataset {
			continue
		}
		base := c.Points[0].Accuracy[bw]
		tolerated := 0.0
		for _, p := range c.Points {
			if base-p.Accuracy[bw] <= drop {
				tolerated = p.BER
			}
		}
		return tolerated
	}
	return 0
}

// String renders the sweep tables.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: accuracy and power reduction vs class-memory bit-error rate\n")
	for _, c := range r.Curves {
		t := &table{header: []string{"BER", "8b", "4b", "2b", "1b", "static ×", "dyn ×"}}
		for _, p := range c.Points {
			t.addRow(
				fmt.Sprintf("%.1f%%", 100*p.BER),
				fmtPct(p.Accuracy[8]), fmtPct(p.Accuracy[4]),
				fmtPct(p.Accuracy[2]), fmtPct(p.Accuracy[1]),
				fmt.Sprintf("%.1f", p.StaticSaving), fmt.Sprintf("%.1f", p.DynSaving),
			)
		}
		b.WriteString(c.Dataset + "\n" + t.String() + "\n")
	}
	return b.String()
}
