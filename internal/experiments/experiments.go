// Package experiments regenerates every table and figure of the GENERIC
// paper's evaluation (DAC'22 §3.2, §5): each experiment is a function that
// runs the actual implementations in this repository — encoders,
// classifiers, baselines, the accelerator simulator, and the device energy
// models — and returns structured rows plus a paper-style text rendering.
//
// The EXPERIMENTS.md file at the repository root records, for each
// experiment, the paper's reported numbers next to the numbers this harness
// measures, and which shape properties are expected to hold.
package experiments

import (
	"fmt"
	"strings"

	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/parallel"
)

// Config controls the fidelity/runtime trade-off of the harness.
type Config struct {
	// Seed drives all stochastic components.
	Seed uint64
	// D is the hypervector dimensionality (paper default 4096).
	D int
	// Epochs is the HDC retraining epoch count (paper: 20).
	Epochs int
	// Quick shrinks dimensionalities and training budgets so the whole
	// suite runs in seconds (used by tests and Go benchmarks); the shapes
	// of every result are preserved, only variances grow.
	Quick bool
	// Workers fans the per-dataset/per-config sweeps of each harness (and
	// the batch evaluate inside them) across this many workers. Zero or
	// negative means GOMAXPROCS; 1 forces the serial path. Every sweep
	// iteration is independently seeded from Config, so results are
	// bit-identical for any worker count.
	Workers int
}

// fanOut runs fn(i) for every i in [0, n) across cfg.Workers workers,
// returning the error of the lowest failing index (what the serial loop
// would have reported). Harnesses write row i of a pre-sized slice inside
// fn, keeping output order — and therefore rendered tables — deterministic.
func (c Config) fanOut(n int, fn func(i int) error) error {
	return parallel.ForErr(c.Workers, n, fn)
}

// Default returns the paper-fidelity configuration.
func Default() Config { return Config{Seed: 1, D: 4096, Epochs: 20} }

// QuickConfig returns the fast configuration for tests and benches.
func QuickConfig() Config { return Config{Seed: 1, D: 1024, Epochs: 5, Quick: true} }

func (c Config) normalized() Config {
	if c.D == 0 {
		c.D = 4096
	}
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// encoderFor builds the encoder of the given kind for a dataset, honoring
// the per-application id setting the paper prescribes for the GENERIC
// encoding (§3.1: id hypervectors are zeroed where global window order is
// uninformative).
func encoderFor(kind encoding.Kind, ds *dataset.Dataset, d int, seed uint64) (encoding.Encoder, error) {
	n := 3
	if ds.Features < n {
		n = ds.Features
	}
	return encoding.New(kind, encoding.Config{
		D: d, Features: ds.Features, Bins: 64, Lo: ds.Lo, Hi: ds.Hi,
		N: n, UseID: ds.UseID, Seed: seed,
	})
}

// fmtPct renders 0.935 as "93.5".
func fmtPct(x float64) string { return fmt.Sprintf("%5.1f", 100*x) }

// fmtEng renders a quantity in engineering notation with a unit.
func fmtEng(x float64, unit string) string {
	switch {
	case x == 0:
		return "0 " + unit
	case x >= 1:
		return fmt.Sprintf("%.3g %s", x, unit)
	case x >= 1e-3:
		return fmt.Sprintf("%.3g m%s", x*1e3, unit)
	case x >= 1e-6:
		return fmt.Sprintf("%.3g µ%s", x*1e6, unit)
	case x >= 1e-9:
		return fmt.Sprintf("%.3g n%s", x*1e9, unit)
	default:
		return fmt.Sprintf("%.3g p%s", x*1e12, unit)
	}
}

// table is a tiny fixed-width text-table builder for paper-style output.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
