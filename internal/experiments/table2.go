package experiments

import (
	"fmt"

	"github.com/edge-hdc/generic/internal/cluster"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/metrics"
)

// Table2Row compares clustering quality on one benchmark.
type Table2Row struct {
	Dataset string
	KMeans  float64 // NMI of k-means (10 restarts)
	HDC     float64 // NMI of HDC clustering
}

// Table2Result is the clustering comparison of paper Table 2.
type Table2Result struct {
	Rows []Table2Row
	// MeanKMeans − MeanHDC; the paper reports k-means ahead by 0.031.
	MeanGap float64
}

// ClusterEpochs is the HDC clustering epoch budget used throughout.
const ClusterEpochs = 10

// Table2 reproduces the paper's Table 2: normalized mutual information of
// k-means versus HDC clustering on the FCPS benchmarks and Iris.
func Table2(cfg Config) (*Table2Result, error) {
	cfg = cfg.normalized()
	names := dataset.ClusterNames()
	rows := make([]Table2Row, len(names))
	err := cfg.fanOut(len(names), func(i int) error {
		name := names[i]
		cs, err := dataset.LoadCluster(name, cfg.Seed)
		if err != nil {
			return err
		}
		kres := cluster.KMeansBest(cs.X, cs.K, 100, 10, cfg.Seed)
		kNMI := metrics.NMI(kres.Assignments, cs.Labels)

		n := 3
		if cs.Features < n {
			n = cs.Features
		}
		enc, err := encoding.New(encoding.Generic, encoding.Config{
			D: cfg.D, Features: cs.Features, Bins: 32, Lo: cs.Lo, Hi: cs.Hi,
			N: n, UseID: true, Seed: cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("table2: %s: %w", name, err)
		}
		encoded := encoding.EncodeAllWorkers(enc, cs.X, cfg.Workers)
		hres := cluster.HDCWorkers(encoded, cs.K, ClusterEpochs, cfg.Workers)
		rows[i] = Table2Row{
			Dataset: name, KMeans: kNMI,
			HDC: metrics.NMI(hres.Assignments, cs.Labels),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Rows: rows}
	var km, hd []float64
	for _, row := range rows {
		km = append(km, row.KMeans)
		hd = append(hd, row.HDC)
	}
	res.MeanGap = metrics.Mean(km) - metrics.Mean(hd)
	return res, nil
}

// String renders the result in the paper's layout.
func (r *Table2Result) String() string {
	t := &table{header: []string{"Method"}}
	for _, row := range r.Rows {
		t.header = append(t.header, row.Dataset)
	}
	km := []string{"K-means"}
	hd := []string{"HDC"}
	for _, row := range r.Rows {
		km = append(km, fmt.Sprintf("%.3f", row.KMeans))
		hd = append(hd, fmt.Sprintf("%.3f", row.HDC))
	}
	t.addRow(km...)
	t.addRow(hd...)
	return fmt.Sprintf("Table 2: Mutual information score of K-means and HDC (mean gap %.3f)\n%s",
		r.MeanGap, t.String())
}
