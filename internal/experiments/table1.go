package experiments

import (
	"fmt"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/metrics"
	"github.com/edge-hdc/generic/internal/ml"
)

// Table1Row holds one benchmark's test accuracies across all algorithms
// (paper Table 1 columns).
type Table1Row struct {
	Dataset string
	// HDC encodings, in the paper's column order.
	RP, LevelID, Ngram, Permute, Generic float64
	// Classical ML baselines.
	MLP, SVM, RF, DNN float64
}

// hdc returns the HDC columns in order.
func (r Table1Row) hdc() []float64 {
	return []float64{r.RP, r.LevelID, r.Ngram, r.Permute, r.Generic}
}

func (r Table1Row) mlCols() []float64 {
	return []float64{r.MLP, r.SVM, r.RF, r.DNN}
}

// Table1Result is the full accuracy comparison plus the summary rows.
type Table1Result struct {
	Rows []Table1Row
	Mean Table1Row
	Std  Table1Row
}

// Table1 reproduces the paper's Table 1: the accuracy of the five HDC
// encodings and four classical baselines on the eleven benchmarks.
func Table1(cfg Config) (*Table1Result, error) {
	cfg = cfg.normalized()
	names := dataset.Names()
	rows := make([]Table1Row, len(names))
	err := cfg.fanOut(len(names), func(i int) error {
		row, err := table1Dataset(names[i], cfg)
		if err != nil {
			return fmt.Errorf("table1: %s: %w", names[i], err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Rows: rows}
	res.summarize()
	return res, nil
}

// Table1Dataset runs a single benchmark's Table 1 row.
func Table1Dataset(name string, cfg Config) (Table1Row, error) {
	return table1Dataset(name, cfg.normalized())
}

func table1Dataset(name string, cfg Config) (Table1Row, error) {
	ds, err := dataset.Load(name, cfg.Seed)
	if err != nil {
		return Table1Row{}, err
	}
	row := Table1Row{Dataset: name}

	// HDC encodings.
	hdcAcc := func(kind encoding.Kind) (float64, error) {
		enc, err := encoderFor(kind, ds, cfg.D, cfg.Seed+uint64(kind)*7919)
		if err != nil {
			return 0, err
		}
		trainH := encoding.EncodeAllWorkers(enc, ds.TrainX, cfg.Workers)
		testH := encoding.EncodeAllWorkers(enc, ds.TestX, cfg.Workers)
		m, _ := classifier.TrainEncoded(trainH, ds.TrainY, ds.Classes, classifier.Options{
			Epochs: cfg.Epochs, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		return classifier.Accuracy(m, testH, ds.TestY, cfg.Workers), nil
	}
	if row.RP, err = hdcAcc(encoding.RP); err != nil {
		return row, err
	}
	if row.LevelID, err = hdcAcc(encoding.LevelID); err != nil {
		return row, err
	}
	if row.Ngram, err = hdcAcc(encoding.Ngram); err != nil {
		return row, err
	}
	if row.Permute, err = hdcAcc(encoding.Permute); err != nil {
		return row, err
	}
	if row.Generic, err = hdcAcc(encoding.Generic); err != nil {
		return row, err
	}

	// Classical baselines on standardized features.
	trainX, testX := ds.Normalized()
	evalML := func(c ml.Classifier) float64 {
		return metrics.MustAccuracy(ml.PredictAll(c, testX), ds.TestY)
	}
	mlpEpochs, dnnEpochs, trees := 40, 60, 100
	if cfg.Quick {
		mlpEpochs, dnnEpochs, trees = 10, 12, 25
	}
	row.MLP = evalML(ml.FitMLP(trainX, ds.TrainY, ds.Classes, ml.MLPConfig{
		Hidden: []int{128}, Epochs: mlpEpochs, Seed: cfg.Seed,
	}))
	row.SVM = evalML(ml.FitLinear(trainX, ds.TrainY, ds.Classes, ml.LinearConfig{
		Kind: ml.HingeSVM, Seed: cfg.Seed,
	}))
	row.RF = evalML(ml.FitForest(trainX, ds.TrainY, ds.Classes, ml.ForestConfig{
		Trees: trees, Seed: cfg.Seed,
	}))
	dnnCfg := ml.MLPConfig{Hidden: []int{256, 128, 64}, Epochs: dnnEpochs, Seed: cfg.Seed}
	if cfg.Quick {
		dnnCfg.Hidden = []int{64, 32}
	}
	row.DNN = evalML(ml.FitMLP(trainX, ds.TrainY, ds.Classes, dnnCfg))
	return row, nil
}

func (r *Table1Result) summarize() {
	n := float64(len(r.Rows))
	if n == 0 {
		return
	}
	cols := func(get func(Table1Row) float64) (mean, std float64) {
		xs := make([]float64, len(r.Rows))
		for i, row := range r.Rows {
			xs[i] = get(row)
		}
		return metrics.Mean(xs), metrics.StdDev(xs)
	}
	r.Mean.Dataset, r.Std.Dataset = "Mean", "STDV"
	r.Mean.RP, r.Std.RP = cols(func(x Table1Row) float64 { return x.RP })
	r.Mean.LevelID, r.Std.LevelID = cols(func(x Table1Row) float64 { return x.LevelID })
	r.Mean.Ngram, r.Std.Ngram = cols(func(x Table1Row) float64 { return x.Ngram })
	r.Mean.Permute, r.Std.Permute = cols(func(x Table1Row) float64 { return x.Permute })
	r.Mean.Generic, r.Std.Generic = cols(func(x Table1Row) float64 { return x.Generic })
	r.Mean.MLP, r.Std.MLP = cols(func(x Table1Row) float64 { return x.MLP })
	r.Mean.SVM, r.Std.SVM = cols(func(x Table1Row) float64 { return x.SVM })
	r.Mean.RF, r.Std.RF = cols(func(x Table1Row) float64 { return x.RF })
	r.Mean.DNN, r.Std.DNN = cols(func(x Table1Row) float64 { return x.DNN })
}

// String renders the result in the paper's layout.
func (r *Table1Result) String() string {
	t := &table{header: []string{
		"Dataset", "RP", "level-id", "ngram", "permute", "GENERIC",
		"MLP", "SVM", "RF", "DNN",
	}}
	add := func(row Table1Row) {
		t.addRow(row.Dataset,
			fmtPct(row.RP), fmtPct(row.LevelID), fmtPct(row.Ngram),
			fmtPct(row.Permute), fmtPct(row.Generic),
			fmtPct(row.MLP), fmtPct(row.SVM), fmtPct(row.RF), fmtPct(row.DNN))
	}
	for _, row := range r.Rows {
		add(row)
	}
	add(r.Mean)
	add(r.Std)
	return "Table 1: Accuracy of HDC and ML algorithms\n" + t.String()
}
