package experiments

import (
	"strings"
	"testing"
)

func TestAblationWindowShape(t *testing.T) {
	res, err := AblationWindow(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanByN) != len(res.Ns) {
		t.Fatal("missing mean columns")
	}
	// The paper picks n=3 as the average-best; allow n∈{2,3} here (the
	// synthetic benchmarks are slightly friendlier to short windows), but
	// long windows must not win.
	if best := res.BestN(); best > 3 {
		t.Errorf("best window length %d; expected 2 or 3", best)
	}
	// Window length must matter somewhere: the spread across n on at least
	// one benchmark exceeds 2%.
	spreadSeen := false
	for _, name := range res.Datasets {
		lo, hi := 1.0, 0.0
		for _, a := range res.Acc[name] {
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
		if hi-lo > 0.02 {
			spreadSeen = true
		}
	}
	if !spreadSeen {
		t.Error("window length had no effect on any benchmark")
	}
	if !strings.Contains(res.String(), "n=3") {
		t.Error("rendering incomplete")
	}
}

func TestAblationIDShape(t *testing.T) {
	res, err := AblationID(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Positional benchmarks need the id binding...
	for _, name := range []string{"MNIST", "ISOLET"} {
		on, off, ok := res.AccFor(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if on < off+0.05 {
			t.Errorf("%s: id binding should help clearly (on %.3f, off %.3f)", name, on, off)
		}
	}
	// ...while motif/sequence benchmarks must not need it (the reason the
	// paper allows id = 0 per application).
	for _, name := range []string{"EEG", "LANG"} {
		on, off, ok := res.AccFor(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if off < on-0.05 {
			t.Errorf("%s: disabling ids should not hurt (on %.3f, off %.3f)", name, on, off)
		}
	}
	if !strings.Contains(res.String(), "with id") {
		t.Error("rendering incomplete")
	}
}

func TestAblationBinsShape(t *testing.T) {
	res, err := AblationBins(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy with 64 bins must be at least as good as with 4 bins on
	// average (saturating, not degrading).
	if res.MeanBy[len(res.MeanBy)-1] < res.MeanBy[0]-0.02 {
		t.Errorf("64 bins (%.3f) worse than 4 bins (%.3f) on average",
			res.MeanBy[len(res.MeanBy)-1], res.MeanBy[0])
	}
	if !strings.Contains(res.String(), "bins") {
		t.Error("rendering incomplete")
	}
}

func TestPowerGatingShape(t *testing.T) {
	res, err := PowerGating(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("expected 11 benchmarks, got %d", len(res.Rows))
	}
	// The paper's §4.3.2 landscape: average fill ~28%, small apps at the
	// 1-bank floor, mean gated static near 0.09 mW.
	if res.MeanFill < 0.1 || res.MeanFill > 0.5 {
		t.Errorf("mean fill = %.2f, want ≈ 0.28", res.MeanFill)
	}
	if res.MeanStaticMW < 0.05 || res.MeanStaticMW > 0.15 {
		t.Errorf("mean gated static = %.3f mW, want ≈ 0.09", res.MeanStaticMW)
	}
	minFill, maxFill := 1.0, 0.0
	for _, row := range res.Rows {
		if row.Fill < minFill {
			minFill = row.Fill
		}
		if row.Fill > maxFill {
			maxFill = row.Fill
		}
		if row.ActiveBanks < 1 || row.ActiveBanks > 4 {
			t.Errorf("%s: %.1f active banks out of range", row.Dataset, row.ActiveBanks)
		}
	}
	if maxFill <= minFill {
		t.Error("occupancy should vary across benchmarks")
	}
	if !strings.Contains(res.String(), "Power gating") {
		t.Error("rendering incomplete")
	}
}

func TestEpochSaturationShape(t *testing.T) {
	res, err := EpochSaturation(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range res.Datasets {
		accs := res.Acc[name]
		if len(accs) != len(res.Epochs) {
			t.Fatalf("%s: %d points for %d budgets", name, len(accs), len(res.Epochs))
		}
		// More epochs never hurt badly (retraining is stable)...
		if accs[len(accs)-1] < accs[0]-0.05 {
			t.Errorf("%s: accuracy degraded with epochs: %.3f -> %.3f",
				name, accs[0], accs[len(accs)-1])
		}
		// ...and the §5.2.1 claim: saturation well before the constant 20.
		if sat := res.SaturationEpoch(name, 0.02); sat > 10 {
			t.Errorf("%s: saturates only at %d epochs, paper says 'a few'", name, sat)
		}
	}
	if !strings.Contains(res.String(), "saturates by") {
		t.Error("rendering incomplete")
	}
}
