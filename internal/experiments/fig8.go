package experiments

import (
	"fmt"
	"strings"

	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/device"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/metrics"
	"github.com/edge-hdc/generic/internal/power"
	"github.com/edge-hdc/generic/internal/sim"
)

// Fig8Bar is one platform's per-input training cost (geomean over the
// eleven benchmarks).
type Fig8Bar struct {
	Label   string
	EnergyJ float64
	TimeS   float64
}

// Fig8Result reproduces Figure 8: training energy and execution time of
// GENERIC versus RF and SVM on the CPU and DNN and HDC on the eGPU.
type Fig8Result struct {
	Bars []Fig8Bar
	// GENERIC's average training power (paper: 2.06 mW).
	GenericTrainPowerW float64
}

// Bar finds a bar by label.
func (r *Fig8Result) Bar(label string) (Fig8Bar, bool) {
	for _, b := range r.Bars {
		if b.Label == label {
			return b, true
		}
	}
	return Fig8Bar{}, false
}

// Figure8 measures per-input training cost for each platform. GENERIC's
// numbers come from the accelerator simulator plus the power model; the
// baselines come from op counts on the device models.
func Figure8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.normalized()
	var gE, gT, rfE, rfT, svmE, svmT, dnnE, dnnT, hdcE, hdcT []float64
	var powerSum, secSum float64

	subCap := 200
	if cfg.Quick {
		subCap = 60
	}
	simEpochs := 5
	if cfg.Quick {
		simEpochs = 2
	}

	for _, name := range dataset.Names() {
		ds, err := dataset.Load(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		nTrain := ds.TrainLen()
		n := 3
		if ds.Features < n {
			n = ds.Features
		}

		// GENERIC on the accelerator: simulate training on a subsample and
		// scale per-input costs (per-sample work is uniform). Feature count
		// is capped by the input memory.
		feat := ds.Features
		if feat > sim.MaxFeatures {
			feat = sim.MaxFeatures
		}
		spec := sim.Spec{
			D: PaperD, Features: feat, N: n, Classes: ds.Classes,
			BW: 16, UseID: ds.UseID, Mode: sim.Train,
		}
		acc, err := sim.NewWithRange(spec, cfg.Seed, ds.Lo, ds.Hi)
		if err != nil {
			return nil, err
		}
		nSub := nTrain
		if nSub > subCap {
			nSub = subCap
		}
		acc.Train(ds.TrainX[:nSub], ds.TrainY[:nSub], simEpochs)
		rep := power.Energy(acc.Stats(), power.Config{ActiveBankFrac: spec.ActiveBankFrac()})
		// Scale the simulated epoch budget to the paper's constant 20.
		scale := float64(cfg.Epochs+1) / float64(simEpochs+1)
		perInput := 1 / float64(nSub)
		gE = append(gE, rep.TotalJ*perInput*scale)
		gT = append(gT, rep.Seconds*perInput*scale)
		powerSum += rep.AvgPowerW
		secSum++

		// Baselines.
		p := device.MLTrainParams{Samples: nTrain, Features: ds.Features, Classes: ds.Classes}
		t, e := device.CPU.Run(p.ForestTrainOps(100, 0, 0))
		rfE, rfT = append(rfE, e/float64(nTrain)), append(rfT, t/float64(nTrain))
		t, e = device.CPU.Run(p.SVMTrainOps(30))
		svmE, svmT = append(svmE, e/float64(nTrain)), append(svmT, t/float64(nTrain))
		w := int64(ds.Features+1)*256 + 257*128 + 129*64 + 65*int64(ds.Classes)
		t, e = device.EGPU.Run(p.MLPTrainOps(w, 60))
		dnnE, dnnT = append(dnnE, e/float64(nTrain)), append(dnnT, t/float64(nTrain))
		hp := device.HDCParams{
			Kind: encoding.Generic, D: PaperD, Features: ds.Features, N: n,
			Classes: ds.Classes, UseID: ds.UseID,
		}
		t, e = device.EGPU.Run(hp.TrainOps(nTrain, cfg.Epochs))
		hdcE, hdcT = append(hdcE, e/float64(nTrain)), append(hdcT, t/float64(nTrain))
	}

	res := &Fig8Result{GenericTrainPowerW: powerSum / secSum}
	add := func(label string, es, ts []float64) {
		res.Bars = append(res.Bars, Fig8Bar{label, metrics.GeoMean(es), metrics.GeoMean(ts)})
	}
	add("GENERIC", gE, gT)
	add("RF (CPU)", rfE, rfT)
	add("SVM (CPU)", svmE, svmT)
	add("DNN (eGPU)", dnnE, dnnT)
	add("HDC (eGPU)", hdcE, hdcT)
	return res, nil
}

// String renders the two bar groups.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8: per-input training energy and execution time\n")
	t := &table{header: []string{"Platform", "Energy", "Time"}}
	for _, bar := range r.Bars {
		t.addRow(bar.Label, fmtEng(bar.EnergyJ, "J"), fmtEng(bar.TimeS, "s"))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "GENERIC average training power: %.2f mW (paper: 2.06 mW)\n",
		r.GenericTrainPowerW*1e3)
	return b.String()
}
