package experiments

import (
	"fmt"
	"strings"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
)

// EpochCurve reproduces the §5.2.1 observation behind the constant
// 20-epoch training budget: "the accuracy of most datasets saturates after
// a few epochs". For each benchmark it trains with increasing retraining
// budgets and records test accuracy.
type EpochCurve struct {
	Epochs   []int
	Datasets []string
	// Acc[dataset][epochIndex]
	Acc map[string][]float64
}

// EpochCurveDatasets is the benchmark subset swept (one per family).
var EpochCurveDatasets = []string{"EEG", "MNIST", "ISOLET", "PAGE"}

// EpochSaturation sweeps the retraining budget.
func EpochSaturation(cfg Config) (*EpochCurve, error) {
	cfg = cfg.normalized()
	res := &EpochCurve{
		Epochs:   []int{1, 2, 5, 10, 20},
		Datasets: EpochCurveDatasets,
		Acc:      map[string][]float64{},
	}
	accs := make([][]float64, len(res.Datasets))
	err := cfg.fanOut(len(res.Datasets), func(i int) error {
		ds, err := dataset.Load(res.Datasets[i], cfg.Seed)
		if err != nil {
			return err
		}
		enc, err := encoderFor(encoding.Generic, ds, cfg.D, cfg.Seed)
		if err != nil {
			return err
		}
		trainH := encoding.EncodeAllWorkers(enc, ds.TrainX, cfg.Workers)
		testH := encoding.EncodeAllWorkers(enc, ds.TestX, cfg.Workers)
		for _, e := range res.Epochs {
			m, _ := classifier.TrainEncoded(trainH, ds.TrainY, ds.Classes, classifier.Options{
				Epochs: e, Seed: cfg.Seed, Workers: cfg.Workers,
			})
			accs[i] = append(accs[i], classifier.Accuracy(m, testH, ds.TestY, cfg.Workers))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range res.Datasets {
		res.Acc[name] = accs[i]
	}
	return res, nil
}

// SaturationEpoch returns the smallest swept budget whose accuracy is
// within tol of the largest budget's.
func (r *EpochCurve) SaturationEpoch(dataset string, tol float64) int {
	accs := r.Acc[dataset]
	if len(accs) == 0 {
		return 0
	}
	final := accs[len(accs)-1]
	for i, a := range accs {
		if final-a <= tol {
			return r.Epochs[i]
		}
	}
	return r.Epochs[len(r.Epochs)-1]
}

func (r *EpochCurve) String() string {
	t := &table{header: []string{"Dataset"}}
	for _, e := range r.Epochs {
		t.header = append(t.header, fmt.Sprintf("%d ep", e))
	}
	t.header = append(t.header, "saturates by")
	for _, name := range r.Datasets {
		row := []string{name}
		for _, a := range r.Acc[name] {
			row = append(row, fmtPct(a))
		}
		row = append(row, fmt.Sprintf("%d epochs", r.SaturationEpoch(name, 0.01)))
		t.addRow(row...)
	}
	var b strings.Builder
	b.WriteString("Retraining saturation (§5.2.1: accuracy saturates after a few epochs)\n")
	b.WriteString(t.String())
	return b.String()
}
