package experiments

import (
	"fmt"
	"strings"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/device"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/hdproc"
	"github.com/edge-hdc/generic/internal/metrics"
	"github.com/edge-hdc/generic/internal/power"
	"github.com/edge-hdc/generic/internal/sim"
	"github.com/edge-hdc/generic/internal/tinyhd"
)

// Fig9Bar is one platform's per-input inference energy (geomean across the
// eleven benchmarks).
type Fig9Bar struct {
	Label   string
	EnergyJ float64
}

// Fig9Result reproduces Figure 9: inference energy of GENERIC and
// GENERIC-LP against the prior HDC ASICs (Datta et al. [10], tiny-HD [8]),
// classical baselines on the CPU, and HDC on the eGPU.
type Fig9Result struct {
	Bars []Fig9Bar
}

// Bar finds a bar by label.
func (r *Fig9Result) Bar(label string) (Fig9Bar, bool) {
	for _, b := range r.Bars {
		if b.Label == label {
			return b, true
		}
	}
	return Fig9Bar{}, false
}

// LPReduction returns baseline-GENERIC energy over GENERIC-LP energy
// (paper: 15.5×).
func (r *Fig9Result) LPReduction() float64 {
	base, _ := r.Bar("GENERIC")
	lp, _ := r.Bar("GENERIC-LP")
	if lp.EnergyJ == 0 {
		return 0
	}
	return base.EnergyJ / lp.EnergyJ
}

// Figure9 measures per-input inference energy on every platform of the
// figure. GENERIC-LP applies the three §4.3 techniques together: bank
// gating, 4× dimension reduction (the accuracy-tolerant point of Fig. 5),
// 8-bit masking, and voltage over-scaling at the ~1% BER point of Fig. 6.
// tiny-HD [8] is placed by its architectural model (internal/tinyhd: 4-bit
// inference-only memories on the same encoder datapath), and the Datta et
// al. programmable processor [10] by executing the same workload as an
// instruction stream on the internal/hdproc vector-processor model.
func Figure9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.normalized()
	var gen, lp, tiny, datta, rf, svm, dnn, hdcGPU []float64

	for _, name := range dataset.Names() {
		ds, err := dataset.Load(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		n := 3
		if ds.Features < n {
			n = ds.Features
		}
		feat := ds.Features
		if feat > sim.MaxFeatures {
			feat = sim.MaxFeatures
		}

		// Baseline GENERIC: full dimensionality, gating only (gating is
		// free and always on; the paper's baseline bar includes it).
		runSim := func(d, bw int, vos power.VOSPoint) (float64, error) {
			spec := sim.Spec{
				D: d, Features: feat, N: n, Classes: ds.Classes,
				BW: bw, UseID: ds.UseID, Mode: sim.Inference,
			}
			acc, err := sim.NewWithRange(spec, cfg.Seed, ds.Lo, ds.Hi)
			if err != nil {
				return 0, err
			}
			const queries = 4
			for q := 0; q < queries; q++ {
				acc.Infer(ds.TestX[q%ds.TestLen()])
			}
			rep := power.Energy(acc.Stats(), power.Config{
				ActiveBankFrac: spec.ActiveBankFrac(), VOS: vos, BW: bw,
			})
			return rep.TotalJ / queries, nil
		}
		base, err := runSim(PaperD, 16, power.Nominal())
		if err != nil {
			return nil, err
		}
		dLP := PaperD / 4
		if dLP < 2*classifier.SubNormGranularity {
			dLP = 2 * classifier.SubNormGranularity
		}
		lpE, err := runSim(dLP, 8, power.VOSForBER(0.01))
		if err != nil {
			return nil, err
		}
		gen = append(gen, base)
		lp = append(lp, lpE)

		// tiny-HD: architectural model. Energy depends only on geometry,
		// so an unprovisioned model of the right shape suffices.
		tEnc, err := encoding.New(encoding.Generic, encoding.Config{
			D: PaperD, Features: feat, Bins: 64, Lo: ds.Lo, Hi: ds.Hi,
			N: n, UseID: ds.UseID, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		nc := ds.Classes
		if nc < 2 {
			nc = 2
		}
		engine, err := tinyhd.FromModel(classifier.NewModel(PaperD, nc, 16), tEnc)
		if err != nil {
			return nil, err
		}
		engine.ResetStats()
		const tq = 4
		for q := 0; q < tq; q++ {
			engine.Infer(ds.TestX[q%ds.TestLen()][:feat])
		}
		spec := sim.Spec{D: PaperD, Features: feat, N: n, Classes: ds.Classes}
		tiny = append(tiny, power.TinyHDEnergy(engine.Stats(), spec.ActiveBankFrac()).TotalJ/tq)

		// Datta et al.: run the same inference as an instruction stream on
		// the programmable-processor model.
		proc, err := hdproc.New(hdproc.Config{D: PaperD, Bins: 64, Lo: ds.Lo, Hi: ds.Hi, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		pcl := make([]hdc.Vec, nc)
		pnorm := make([]int64, nc)
		for c := range pcl {
			pcl[c] = hdc.NewVec(PaperD)
			pnorm[c] = 1
		}
		if err := proc.LoadClasses(pcl, pnorm); err != nil {
			return nil, err
		}
		params := hdproc.EncodeParams{Features: feat, N: n, UseID: ds.UseID, Classes: nc}
		for q := 0; q < tq; q++ {
			if _, err := proc.Infer(ds.TestX[q%ds.TestLen()][:feat], params); err != nil {
				return nil, err
			}
		}
		pst := proc.Stats()
		datta = append(datta, power.ProcEnergy(pst.Instructions, pst.VectorCycles, pst.MemReads, pst.Seconds()).TotalJ/tq)

		// Conventional baselines (per-query dispatch overhead included —
		// it dominates models as cheap as forest prediction).
		nTrain := ds.TrainLen()
		_, e := device.CPU.RunInference(device.MLInferOps(100 * int64(log2i(nTrain))))
		rf = append(rf, e)
		_, e = device.CPU.RunInference(device.MLInferOps(int64(ds.Classes) * int64(ds.Features+1)))
		svm = append(svm, e)
		_, e = device.CPU.RunInference(device.MLInferOps(
			int64(ds.Features+1)*256 + 257*128 + 129*64 + 65*int64(ds.Classes)))
		dnn = append(dnn, e)
		hp := device.HDCParams{
			Kind: encoding.Generic, D: PaperD, Features: ds.Features, N: n,
			Classes: ds.Classes, UseID: ds.UseID,
		}
		_, e = device.EGPU.RunInference(hp.InferOps())
		hdcGPU = append(hdcGPU, e)
	}

	res := &Fig9Result{}
	add := func(label string, es []float64) {
		res.Bars = append(res.Bars, Fig9Bar{label, metrics.GeoMean(es)})
	}
	add("Datta et al. [10]", datta)
	add("tiny-HD [8]", tiny)
	add("RF (CPU)", rf)
	add("SVM (CPU)", svm)
	add("DNN (CPU)", dnn)
	add("HDC (eGPU)", hdcGPU)
	add("GENERIC", gen)
	add("GENERIC-LP", lp)
	return res, nil
}

// String renders the bars with the headline ratios.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: per-input inference energy\n")
	t := &table{header: []string{"Platform", "Energy/input"}}
	for _, bar := range r.Bars {
		t.addRow(bar.Label, fmtEng(bar.EnergyJ, "J"))
	}
	b.WriteString(t.String())
	lp, _ := r.Bar("GENERIC-LP")
	if lp.EnergyJ > 0 {
		tiny, _ := r.Bar("tiny-HD [8]")
		datta, _ := r.Bar("Datta et al. [10]")
		rf, _ := r.Bar("RF (CPU)")
		hdc, _ := r.Bar("HDC (eGPU)")
		fmt.Fprintf(&b, "GENERIC-LP vs baseline GENERIC: %.1f× (paper: 15.5×)\n", r.LPReduction())
		fmt.Fprintf(&b, "GENERIC-LP vs tiny-HD: %.1f× (paper: 4.1×) | vs Datta: %.1f× (paper: 15.7×)\n",
			tiny.EnergyJ/lp.EnergyJ, datta.EnergyJ/lp.EnergyJ)
		fmt.Fprintf(&b, "GENERIC-LP vs RF (CPU): %.0f× (paper: 1593×) | vs HDC (eGPU): %.0f× (paper: 8796×)\n",
			rf.EnergyJ/lp.EnergyJ, hdc.EnergyJ/lp.EnergyJ)
	}
	return b.String()
}
