package experiments

import (
	"fmt"
	"strings"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
)

// Fig5Point is one (dimensions, accuracy) sample of Figure 5's curves.
type Fig5Point struct {
	Dims         int
	ConstantNorm float64 // accuracy using the full-model L2 norms
	UpdatedNorm  float64 // accuracy using the per-128-dim sub-norms
}

// Fig5Curve is one dataset's dimension-reduction sweep.
type Fig5Curve struct {
	Dataset string
	Points  []Fig5Point
}

// Fig5Result reproduces Figure 5: accuracy under on-demand dimension
// reduction with constant versus updated L2 norms (§4.3.3), on the two
// datasets the paper plots (EEG and ISOLET).
type Fig5Result struct {
	Curves []Fig5Curve
}

// Fig5Datasets lists the benchmarks Figure 5 plots.
var Fig5Datasets = []string{"EEG", "ISOLET"}

// Figure5 trains a full-dimensional GENERIC model per dataset and evaluates
// it at truncated dimensionalities, with and without the sub-norm fix.
func Figure5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.normalized()
	curves := make([]Fig5Curve, len(Fig5Datasets))
	err := cfg.fanOut(len(Fig5Datasets), func(i int) error {
		name := Fig5Datasets[i]
		ds, err := dataset.Load(name, cfg.Seed)
		if err != nil {
			return err
		}
		enc, err := encoderFor(encoding.Generic, ds, cfg.D, cfg.Seed)
		if err != nil {
			return err
		}
		trainH := encoding.EncodeAllWorkers(enc, ds.TrainX, cfg.Workers)
		testH := encoding.EncodeAllWorkers(enc, ds.TestX, cfg.Workers)
		m, _ := classifier.TrainEncoded(trainH, ds.TrainY, ds.Classes, classifier.Options{
			Epochs: cfg.Epochs, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		curve := Fig5Curve{Dataset: name}
		for dims := classifier.SubNormGranularity; dims <= cfg.D; dims *= 2 {
			curve.Points = append(curve.Points, Fig5Point{
				Dims:         dims,
				ConstantNorm: classifier.EvaluateDimsBatch(m, testH, ds.TestY, dims, false, cfg.Workers),
				UpdatedNorm:  classifier.EvaluateDimsBatch(m, testH, ds.TestY, dims, true, cfg.Workers),
			})
		}
		curves[i] = curve
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Curves: curves}, nil
}

// MaxGap returns the largest accuracy gap (updated − constant) across a
// dataset's sweep — the quantity the paper reports as "up to 20.1% for EEG
// and 8.5% for ISOLET".
func (r *Fig5Result) MaxGap(dataset string) float64 {
	for _, c := range r.Curves {
		if c.Dataset != dataset {
			continue
		}
		gap := 0.0
		for _, p := range c.Points {
			if g := p.UpdatedNorm - p.ConstantNorm; g > gap {
				gap = g
			}
		}
		return gap
	}
	return 0
}

// String renders the curves as a table.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: accuracy with constant vs updated L2 norms under dimension reduction\n")
	for _, c := range r.Curves {
		t := &table{header: []string{"Dims", c.Dataset + " constant", c.Dataset + " updated"}}
		for _, p := range c.Points {
			t.addRow(fmt.Sprintf("%d", p.Dims), fmtPct(p.ConstantNorm), fmtPct(p.UpdatedNorm))
		}
		b.WriteString(t.String())
		fmt.Fprintf(&b, "max gap: %.1f%%\n\n", 100*r.MaxGap(c.Dataset))
	}
	return b.String()
}
