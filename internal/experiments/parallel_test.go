package experiments

import "testing"

// A harness-level determinism check: fanning a sweep across workers must
// render the exact same table as the serial run.
func TestHarnessParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs figure 5 twice in quick mode")
	}
	serialCfg := QuickConfig()
	serialCfg.Workers = 1
	parCfg := QuickConfig()
	parCfg.Workers = 4

	serial, err := Figure5(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure5(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.String(), serial.String(); got != want {
		t.Errorf("parallel figure 5 differs from serial:\n--- workers=4 ---\n%s\n--- workers=1 ---\n%s", got, want)
	}
}
