package experiments

import (
	"fmt"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/metrics"
)

// TrainersRow compares the training strategies on one benchmark at equal
// dimensionality: same encoder, same encoded set, same epoch budget — only
// the Trainer differs.
type TrainersRow struct {
	Dataset string
	// D is the hypervector dimensionality both strategies trained at.
	D int
	// Perceptron / LeHDC are test accuracies; the *Epochs fields report how
	// many epochs each strategy actually ran (early convergence stops both).
	Perceptron       float64
	PerceptronEpochs int
	LeHDC            float64
	LeHDCEpochs      int
}

// Delta is the LeHDC accuracy gain over the perceptron baseline.
func (r TrainersRow) Delta() float64 { return r.LeHDC - r.Perceptron }

// TrainersResult is the strategy comparison over every benchmark.
type TrainersResult struct {
	Rows []TrainersRow
	// MeanPerceptron / MeanLeHDC average the accuracy columns.
	MeanPerceptron, MeanLeHDC float64
	// Wins counts benchmarks where LeHDC strictly beats the perceptron.
	Wins int
}

// trainersD picks the comparison dimensionality: the strategies separate in
// the compact-model regime (at the paper's D=4096 both sit at the accuracy
// ceiling on most benchmarks), so the sweep runs at an eighth of the
// configured D, floored at the sub-norm granularity.
func trainersD(cfg Config) int {
	d := cfg.D / 8
	if d < classifier.SubNormGranularity {
		d = classifier.SubNormGranularity
	}
	return d - d%classifier.SubNormGranularity
}

// Trainers compares the perceptron and LeHDC training strategies on the
// eleven benchmarks with the GENERIC encoding at equal (compact)
// dimensionality — the Table 1 protocol with the trainer as the only
// variable.
func Trainers(cfg Config) (*TrainersResult, error) {
	cfg = cfg.normalized()
	names := dataset.Names()
	rows := make([]TrainersRow, len(names))
	err := cfg.fanOut(len(names), func(i int) error {
		row, err := trainersDataset(names[i], cfg)
		if err != nil {
			return fmt.Errorf("trainers: %s: %w", names[i], err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &TrainersResult{Rows: rows}
	var accP, accL []float64
	for _, r := range rows {
		accP = append(accP, r.Perceptron)
		accL = append(accL, r.LeHDC)
		if r.LeHDC > r.Perceptron {
			res.Wins++
		}
	}
	res.MeanPerceptron, res.MeanLeHDC = metrics.Mean(accP), metrics.Mean(accL)
	return res, nil
}

// TrainersDataset runs a single benchmark's strategy-comparison row.
func TrainersDataset(name string, cfg Config) (TrainersRow, error) {
	return trainersDataset(name, cfg.normalized())
}

func trainersDataset(name string, cfg Config) (TrainersRow, error) {
	ds, err := dataset.Load(name, cfg.Seed)
	if err != nil {
		return TrainersRow{}, err
	}
	d := trainersD(cfg)
	enc, err := encoderFor(encoding.Generic, ds, d, cfg.Seed)
	if err != nil {
		return TrainersRow{}, err
	}
	trainH := encoding.EncodeAllWorkers(enc, ds.TrainX, cfg.Workers)
	testH := encoding.EncodeAllWorkers(enc, ds.TestX, cfg.Workers)
	row := TrainersRow{Dataset: name, D: d}
	for _, trainer := range []string{"perceptron", "lehdc"} {
		m, res, err := classifier.Train(trainH, ds.TrainY, ds.Classes, classifier.Options{
			Epochs: cfg.Epochs, Seed: cfg.Seed, Workers: cfg.Workers, Trainer: trainer,
		})
		if err != nil {
			return row, err
		}
		acc := classifier.Accuracy(m, testH, ds.TestY, cfg.Workers)
		switch trainer {
		case "perceptron":
			row.Perceptron, row.PerceptronEpochs = acc, res.EpochsRun
		case "lehdc":
			row.LeHDC, row.LeHDCEpochs = acc, res.EpochsRun
		}
	}
	return row, nil
}

// String renders the comparison as a paper-style table.
func (r *TrainersResult) String() string {
	t := &table{header: []string{
		"Dataset", "D", "perceptron", "ep", "lehdc", "ep", "delta",
	}}
	for _, row := range r.Rows {
		t.addRow(row.Dataset, fmt.Sprintf("%d", row.D),
			fmtPct(row.Perceptron), fmt.Sprintf("%d", row.PerceptronEpochs),
			fmtPct(row.LeHDC), fmt.Sprintf("%d", row.LeHDCEpochs),
			fmt.Sprintf("%+5.1f", 100*row.Delta()))
	}
	t.addRow("Mean", "", fmtPct(r.MeanPerceptron), "", fmtPct(r.MeanLeHDC), "", fmt.Sprintf("%+5.1f", 100*(r.MeanLeHDC-r.MeanPerceptron)))
	return fmt.Sprintf("Training strategies: accuracy at compact D (GENERIC encoding, lehdc wins %d/%d)\n%s",
		r.Wins, len(r.Rows), t.String())
}
