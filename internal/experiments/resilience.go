package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/faults"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// ResilienceDataset is the benchmark the resilience sweep runs on. ISOLET
// is the paper's fault-injection workload (Fig. 6) and binds per-window
// ids, so every persistent fault site is exercisable.
const ResilienceDataset = "ISOLET"

// ResilienceSites are the persistent fault sites the sweep covers — every
// Fig. 4 memory with stored state. Input and datapath faults are transient
// and belong to the accelerator sim's per-operation injection.
var ResilienceSites = []faults.Site{faults.SiteClass, faults.SiteLevel, faults.SiteID, faults.SiteNorm}

// ResilienceBERs is the per-bit corruption-rate grid.
var ResilienceBERs = []float64{0.001, 0.01, 0.05, 0.1}

// ResiliencePoint is one (site, BER) cell: accuracy right after corruption
// and again after a scrub-and-repair pass.
type ResiliencePoint struct {
	Site         string  `json:"site"`
	BER          float64 `json:"ber"`
	InjectedBits int     `json:"injected_bits"`
	Corrupted    float64 `json:"corrupted_accuracy"`
	Recovered    float64 `json:"recovered_accuracy"`
	LanesMasked  int     `json:"lanes_masked"`
	Quarantined  int     `json:"quarantined_rows"`
	Tolerated    int     `json:"tolerated_rows"`
}

// ResilienceBinaryPoint is one class-site BER cell on the packed binary
// representation: bits are flipped directly in the binary model's packed
// words (faults.BinaryClassMem), accuracy is measured on packed Hamming
// inference, and the repair is rebinarization from the intact integer
// counters — the binary analogue of the scrub pass. Only the class site is
// swept: the binary path has no norm memory to corrupt, and level/id faults
// hit the encoder before representation and so affect both paths alike.
type ResilienceBinaryPoint struct {
	BER          float64 `json:"ber"`
	InjectedBits int     `json:"injected_bits"`
	Corrupted    float64 `json:"corrupted_accuracy"`
	Rebinarized  float64 `json:"rebinarized_accuracy"`
}

// ResilienceBank is the whole-bank-failure case: one striped class memory
// dies, the scrub masks its lane, and the dot product renormalizes over the
// surviving 15/16 of the dimensions.
type ResilienceBank struct {
	Lane       int     `json:"lane"`
	Corrupted  float64 `json:"corrupted_accuracy"`
	Recovered  float64 `json:"recovered_accuracy"`
	DropPoints float64 `json:"drop_points"` // baseline − recovered, in accuracy points
}

// ResilienceResult is the accuracy-vs-BER-per-fault-site sweep plus the
// bank-failure case.
type ResilienceResult struct {
	Dataset  string            `json:"dataset"`
	D        int               `json:"d"`
	Seed     uint64            `json:"seed"`
	Baseline float64           `json:"baseline_accuracy"`
	Points   []ResiliencePoint `json:"points"`
	// BinaryBaseline and BinaryPoints are the packed-representation column:
	// the same trained model binarized, scored by Hamming distance, with
	// class-memory bit errors injected into the packed words themselves.
	BinaryBaseline float64                 `json:"binary_baseline_accuracy"`
	BinaryPoints   []ResilienceBinaryPoint `json:"binary_points"`
	Bank           ResilienceBank          `json:"bank_failure"`
}

// Resilience sweeps uniform bit errors over every persistent fault site of
// the accelerator, measuring accuracy after corruption and after the
// scrub-and-repair pass, then kills one whole class-memory bank and
// measures the post-mask degradation. Every cell is independently seeded
// from cfg.Seed, so the sweep is bit-reproducible.
func Resilience(cfg Config) (*ResilienceResult, error) {
	cfg = cfg.normalized()
	ds, err := dataset.Load(ResilienceDataset, cfg.Seed)
	if err != nil {
		return nil, err
	}
	enc, err := encoderFor(encoding.Generic, ds, cfg.D, cfg.Seed)
	if err != nil {
		return nil, err
	}
	trainH := encoding.EncodeAllWorkers(enc, ds.TrainX, cfg.Workers)
	testH := encoding.EncodeAllWorkers(enc, ds.TestX, cfg.Workers)
	base, _ := classifier.TrainEncoded(trainH, ds.TrainY, ds.Classes, classifier.Options{
		Epochs: cfg.Epochs, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	res := &ResilienceResult{
		Dataset:  ds.Name,
		D:        cfg.D,
		Seed:     cfg.Seed,
		Baseline: classifier.Accuracy(base, testH, ds.TestY, cfg.Workers),
	}

	// evaluate scores the model against the current encoder state: when the
	// encoder material is corrupt, the pre-encoded test set is stale and the
	// samples must pass through the (faulted) level/id memories again.
	evaluate := func(m *classifier.Model, reEncode bool) float64 {
		h := testH
		if reEncode {
			h = encoding.EncodeAllWorkers(enc, ds.TestX, cfg.Workers)
		}
		return classifier.Accuracy(m, h, ds.TestY, cfg.Workers)
	}

	// The site × BER sweep stays serial: level/id cells mutate the shared
	// encoder in place (scrubbing it back before the next cell), so fanning
	// out would race. Batch encode/evaluate inside each cell parallelizes.
	for si, site := range ResilienceSites {
		encoderSite := site == faults.SiteLevel || site == faults.SiteID
		for bi, ber := range ResilienceBERs {
			m := base.Clone()
			ctl := faults.NewController(m, enc)
			spec := faults.Spec{
				Site: site, Kind: faults.Uniform, Rate: ber,
				Seed: cfg.Seed ^ uint64(si+1)<<32 ^ uint64(bi+1),
			}
			n, err := ctl.Inject(spec)
			if err != nil {
				if errors.Is(err, faults.ErrNoIDMemory) {
					continue // dataset encodes id-less; nothing to corrupt
				}
				return nil, err
			}
			pt := ResiliencePoint{
				Site: site.String(), BER: ber, InjectedBits: n,
				Corrupted: evaluate(m, encoderSite),
			}
			rep := ctl.Scrub()
			pt.Recovered = evaluate(m, encoderSite)
			pt.LanesMasked = rep.LanesMasked
			pt.Quarantined = rep.QuarantinedRows
			pt.Tolerated = rep.ToleratedRows
			res.Points = append(res.Points, pt)
		}
	}

	// Binary column: binarize the trained model, pack the encoded test set,
	// and sweep class-memory bit errors over the packed words directly. The
	// repair path rebinarizes from the intact integer counters — class
	// counters are the durable state, packed words a derived cache.
	{
		bbase := classifier.Binarize(base)
		testB := make([]*hdc.BinVec, len(testH))
		for i, h := range testH {
			bv := hdc.NewBinVec(len(h))
			bv.PackSigns(h)
			testB[i] = bv
		}
		res.BinaryBaseline = classifier.BinaryAccuracy(bbase, testB, ds.TestY, cfg.Workers)
		for bi, ber := range ResilienceBERs {
			bm := bbase.Clone()
			spec := faults.Spec{
				Site: faults.SiteClass, Kind: faults.Uniform, Rate: ber,
				Seed: cfg.Seed ^ 0xb1<<48 ^ uint64(bi+1),
			}
			inj, err := spec.Injector()
			if err != nil {
				return nil, err
			}
			n := inj.Apply(faults.BinaryClassMem(bm), rng.New(spec.Seed))
			pt := ResilienceBinaryPoint{
				BER: ber, InjectedBits: n,
				Corrupted: classifier.BinaryAccuracy(bm, testB, ds.TestY, cfg.Workers),
			}
			for c := 0; c < bm.Classes(); c++ {
				bm.RebinarizeClass(base, c)
			}
			pt.Rebinarized = classifier.BinaryAccuracy(bm, testB, ds.TestY, cfg.Workers)
			res.BinaryPoints = append(res.BinaryPoints, pt)
		}
	}

	// Whole-bank failure: lane 0 dies, the guard flags it, the scrub masks
	// it, and the model limps on with 15/16 of its dimensions.
	{
		m := base.Clone()
		ctl := faults.NewController(m, enc)
		spec := faults.Spec{Site: faults.SiteClass, Kind: faults.BankFail, Lane: 0, Seed: cfg.Seed ^ 0xbeef}
		if _, err := ctl.Inject(spec); err != nil {
			return nil, err
		}
		res.Bank.Lane = 0
		res.Bank.Corrupted = evaluate(m, false)
		ctl.Scrub()
		res.Bank.Recovered = evaluate(m, false)
		res.Bank.DropPoints = 100 * (res.Baseline - res.Bank.Recovered)
	}
	return res, nil
}

// WriteJSON writes the result as an indented JSON artifact (the BENCH-style
// machine-readable counterpart of String's table).
func (r *ResilienceResult) WriteJSON(w io.Writer) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(r)
}

// String renders the sweep table.
func (r *ResilienceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilience: accuracy vs BER per fault site (%s, D=%d, baseline %s)\n",
		r.Dataset, r.D, fmtPct(r.Baseline))
	t := &table{header: []string{"site", "BER", "bits", "corrupted", "scrubbed", "masked", "quarantined", "tolerated"}}
	for _, p := range r.Points {
		t.addRow(
			p.Site, fmt.Sprintf("%.1f%%", 100*p.BER), fmt.Sprintf("%d", p.InjectedBits),
			fmtPct(p.Corrupted), fmtPct(p.Recovered),
			fmt.Sprintf("%d", p.LanesMasked), fmt.Sprintf("%d", p.Quarantined),
			fmt.Sprintf("%d", p.Tolerated),
		)
	}
	b.WriteString(t.String())
	if len(r.BinaryPoints) > 0 {
		fmt.Fprintf(&b, "binary (packed class memory, baseline %s):\n", fmtPct(r.BinaryBaseline))
		bt := &table{header: []string{"BER", "bits", "corrupted", "rebinarized"}}
		for _, p := range r.BinaryPoints {
			bt.addRow(
				fmt.Sprintf("%.1f%%", 100*p.BER), fmt.Sprintf("%d", p.InjectedBits),
				fmtPct(p.Corrupted), fmtPct(p.Rebinarized),
			)
		}
		b.WriteString(bt.String())
	}
	fmt.Fprintf(&b, "bank failure (lane %d): %s corrupted -> %s after mask (%.1f-point drop)\n",
		r.Bank.Lane, fmtPct(r.Bank.Corrupted), fmtPct(r.Bank.Recovered), r.Bank.DropPoints)
	return b.String()
}
