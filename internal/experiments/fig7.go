package experiments

import (
	"fmt"
	"strings"

	"github.com/edge-hdc/generic/internal/power"
	"github.com/edge-hdc/generic/internal/sim"
)

// Fig7Result reproduces Figure 7 and the §5.1 silicon summary: the area,
// static-power, and dynamic-power component breakdowns of the accelerator.
type Fig7Result struct {
	AreaMM2       power.Breakdown
	StaticMW      power.Breakdown // all banks powered (worst case)
	DynamicShares power.Breakdown // fractions of dynamic energy on a
	// representative classification workload
	GatedStaticMW float64 // application-average static power (§5.1: 0.09)
	AvgDynamicMW  float64 // application-average dynamic power (§5.1: 1.79)
}

// Figure7 evaluates the component model on a representative workload
// (D=4K, d=128, nC=10, 28% class-memory fill — the datasets' average).
func Figure7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.normalized()
	spec := sim.Spec{D: 4096, Features: 128, N: 3, Classes: 10, BW: 16, UseID: true}
	acc, err := sim.New(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	x := make([]float64, spec.Features)
	for i := range x {
		x[i] = float64(i%13) / 13
	}
	for i := 0; i < 16; i++ {
		acc.Infer(x)
	}
	pcfg := power.Config{ActiveBankFrac: 0.3} // ≈28% average fill (§4.3.2)
	rep := power.Energy(acc.Stats(), pcfg)
	return &Fig7Result{
		AreaMM2:       power.Area(),
		StaticMW:      power.StaticPowerAllBanks(),
		DynamicShares: rep.DynParts.Fractions(),
		GatedStaticMW: power.StaticPowerW(pcfg) * 1e3,
		AvgDynamicMW:  rep.DynamicJ / rep.Seconds * 1e3,
	}, nil
}

// String renders the three pies as percentage tables plus the §5.1 summary.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: area and power breakdown\n")
	t := &table{header: []string{"Component", "Area %", "Static %", "Dynamic %"}}
	area := r.AreaMM2.Fractions()
	st := r.StaticMW.Fractions()
	rows := []struct {
		name    string
		a, s, d float64
	}{
		{"control", area.Control, st.Control, r.DynamicShares.Control},
		{"datapath", area.Datapath, st.Datapath, r.DynamicShares.Datapath},
		{"base mem", area.BaseMem, st.BaseMem, r.DynamicShares.BaseMem},
		{"feature mem", area.FeatureMem, st.FeatureMem, r.DynamicShares.FeatureMem},
		{"level mem", area.LevelMem, st.LevelMem, r.DynamicShares.LevelMem},
		{"class mem", area.ClassMem, st.ClassMem, r.DynamicShares.ClassMem},
	}
	for _, row := range rows {
		t.addRow(row.name, fmtPct(row.a), fmtPct(row.s), fmtPct(row.d))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "total area: %.2f mm² | worst-case static: %.2f mW | "+
		"gated static: %.3f mW | avg dynamic: %.2f mW @ %d MHz\n",
		r.AreaMM2.Total(), r.StaticMW.Total(), r.GatedStaticMW, r.AvgDynamicMW,
		int(sim.ClockHz/1e6))
	return b.String()
}
