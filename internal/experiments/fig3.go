package experiments

import (
	"strings"

	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/device"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/metrics"
)

// Fig3Algorithms lists the algorithm labels of Figure 3 in display order.
// HDC encodings come first, classical baselines after.
var Fig3Algorithms = []string{"RP", "level-id", "GENERIC", "MLP", "SVM", "RF", "LR", "KNN", "DNN"}

// Fig3Cell is one (device, algorithm) measurement: per-input averages over
// the geometric mean of the eleven benchmarks.
type Fig3Cell struct {
	Device    string
	Algorithm string
	// Per-input energy (J) and time (s).
	TrainEnergyJ, InferEnergyJ float64
	TrainTimeS, InferTimeS     float64
}

// Fig3Result reproduces Figure 3: energy and execution time of HDC and ML
// algorithms on the Raspberry Pi, CPU, and eGPU.
type Fig3Result struct {
	Cells []Fig3Cell
}

// Cell finds a measurement by device and algorithm name.
func (r *Fig3Result) Cell(dev, alg string) (Fig3Cell, bool) {
	for _, c := range r.Cells {
		if c.Device == dev && c.Algorithm == alg {
			return c, true
		}
	}
	return Fig3Cell{}, false
}

// mlShape captures the analytic operation counts of a classical baseline on
// one dataset, without training it (Figure 3 needs op counts, not models).
type mlShape struct {
	inferOps func(d, nC, nTrain int) int64
	trainOps func(p device.MLTrainParams) device.Ops
}

var fig3ML = map[string]mlShape{
	"MLP": {
		inferOps: func(d, nC, _ int) int64 { return int64(d+1)*128 + 129*int64(nC) },
		trainOps: func(p device.MLTrainParams) device.Ops {
			w := int64(p.Features+1)*128 + 129*int64(p.Classes)
			return p.MLPTrainOps(w, 40)
		},
	},
	"SVM": {
		inferOps: func(d, nC, _ int) int64 { return int64(nC) * int64(d+1) },
		trainOps: func(p device.MLTrainParams) device.Ops { return p.SVMTrainOps(30) },
	},
	"RF": {
		inferOps: func(_, nC, nTrain int) int64 { return 100 * int64(log2i(nTrain)) },
		trainOps: func(p device.MLTrainParams) device.Ops { return p.ForestTrainOps(100, 0, 0) },
	},
	"LR": {
		inferOps: func(d, nC, _ int) int64 { return int64(nC) * int64(d+1) },
		trainOps: func(p device.MLTrainParams) device.Ops { return p.LRTrainOps(30) },
	},
	"KNN": {
		inferOps: func(d, _, nTrain int) int64 { return int64(nTrain) * int64(d) * 2 },
		trainOps: func(p device.MLTrainParams) device.Ops { return device.Ops{} },
	},
	"DNN": {
		inferOps: func(d, nC, _ int) int64 {
			return int64(d+1)*256 + 257*128 + 129*64 + 65*int64(nC)
		},
		trainOps: func(p device.MLTrainParams) device.Ops {
			w := int64(p.Features+1)*256 + 257*128 + 129*64 + 65*int64(p.Classes)
			return p.MLPTrainOps(w, 60)
		},
	},
}

var fig3HDC = map[string]encoding.Kind{
	"RP": encoding.RP, "level-id": encoding.LevelID, "GENERIC": encoding.Generic,
}

// fig3HDCOrder and fig3MLOrder fix the iteration order of the algorithm
// tables above: ranging over the maps directly would aggregate cells in a
// per-run random order.
var (
	fig3HDCOrder = []string{"RP", "level-id", "GENERIC"}
	fig3MLOrder  = []string{"MLP", "SVM", "RF", "LR", "KNN", "DNN"}
)

// PaperD is the hypervector dimensionality of the paper's hardware
// operating point. The device- and accelerator-energy experiments always
// run at this size — op counting is cheap, so Quick mode does not shrink
// it (it only shrinks accuracy-oriented experiments).
const PaperD = 4096

// Figure3 computes per-input training and inference energy/latency for
// every (device, algorithm) pair, aggregated as the geometric mean over the
// eleven classification benchmarks — the layout of the paper's Figure 3.
// The paper omits classical ML on the eGPU (it performed worse than the
// CPU); this harness does the same.
// fig3Entry is one dataset's contribution to a (device, algorithm) cell.
type fig3Entry struct {
	key            string
	ie, it, te, tt float64
}

func Figure3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.normalized()
	key := func(dev, alg string) string { return dev + "|" + alg }

	// Each dataset's measurements are independent; fan them across workers
	// and merge per-dataset entry lists in dataset order, so every cell's
	// aggregation sequence — and hence its geomean — matches the serial run.
	names := dataset.Names()
	perDataset := make([][]fig3Entry, len(names))
	err := cfg.fanOut(len(names), func(idx int) error {
		ds, err := dataset.Load(names[idx], cfg.Seed)
		if err != nil {
			return err
		}
		nTrain := ds.TrainLen()
		p := device.MLTrainParams{Samples: nTrain, Features: ds.Features, Classes: ds.Classes}

		var entries []fig3Entry
		for _, dev := range device.Devices() {
			for _, alg := range fig3HDCOrder {
				kind := fig3HDC[alg]
				n := 3
				if ds.Features < n {
					n = ds.Features
				}
				hp := device.HDCParams{
					Kind: kind, D: PaperD, Features: ds.Features, N: n,
					Classes: ds.Classes, UseID: ds.UseID,
				}
				it, ie := dev.Run(hp.InferOps())
				tt, te := dev.Run(hp.TrainOps(nTrain, cfg.Epochs))
				tt, te = tt/float64(nTrain), te/float64(nTrain)
				entries = append(entries, fig3Entry{key(dev.Name, alg), ie, it, te, tt})
			}
			if dev.Name == device.EGPU.Name {
				// Classical ML on the eGPU: only DNN, as in the paper.
				sh := fig3ML["DNN"]
				it, ie := dev.Run(device.MLInferOps(sh.inferOps(ds.Features, ds.Classes, nTrain)))
				tt, te := dev.Run(sh.trainOps(p))
				entries = append(entries, fig3Entry{
					key(dev.Name, "DNN"), ie, it, te / float64(nTrain), tt / float64(nTrain)})
				continue
			}
			for _, alg := range fig3MLOrder {
				sh := fig3ML[alg]
				it, ie := dev.Run(device.MLInferOps(sh.inferOps(ds.Features, ds.Classes, nTrain)))
				tt, te := dev.Run(sh.trainOps(p))
				entries = append(entries, fig3Entry{
					key(dev.Name, alg), ie, it, te / float64(nTrain), tt / float64(nTrain)})
			}
		}
		perDataset[idx] = entries
		return nil
	})
	if err != nil {
		return nil, err
	}

	sums := map[string]*fig3Agg{}
	for _, entries := range perDataset {
		for _, e := range entries {
			a := getAgg(sums, e.key)
			a.ie = append(a.ie, e.ie)
			a.it = append(a.it, e.it)
			a.te = append(a.te, e.te)
			a.tt = append(a.tt, e.tt)
		}
	}

	res := &Fig3Result{}
	for _, dev := range device.Devices() {
		for _, alg := range Fig3Algorithms {
			a, ok := sums[key(dev.Name, alg)]
			if !ok {
				continue
			}
			res.Cells = append(res.Cells, Fig3Cell{
				Device: dev.Name, Algorithm: alg,
				InferEnergyJ: metrics.GeoMean(a.ie), InferTimeS: metrics.GeoMean(a.it),
				TrainEnergyJ: metrics.GeoMean(a.te), TrainTimeS: metrics.GeoMean(a.tt),
			})
		}
	}
	return res, nil
}

type fig3Agg struct{ te, ie, tt, it []float64 }

func getAgg(m map[string]*fig3Agg, k string) *fig3Agg {
	a, ok := m[k]
	if !ok {
		a = &fig3Agg{}
		m[k] = a
	}
	return a
}

func log2i(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}

// String renders the figure as two tables (energy, time) like Fig. 3a/3b.
func (r *Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3(a): per-input energy (train / inference)\n")
	te := &table{header: []string{"Device", "Algorithm", "Train", "Inference"}}
	for _, c := range r.Cells {
		te.addRow(c.Device, c.Algorithm, fmtEng(c.TrainEnergyJ, "J"), fmtEng(c.InferEnergyJ, "J"))
	}
	b.WriteString(te.String())
	b.WriteString("\nFigure 3(b): per-input execution time (train / inference)\n")
	tt := &table{header: []string{"Device", "Algorithm", "Train", "Inference"}}
	for _, c := range r.Cells {
		tt.addRow(c.Device, c.Algorithm, fmtEng(c.TrainTimeS, "s"), fmtEng(c.InferTimeS, "s"))
	}
	b.WriteString(tt.String())
	return b.String()
}
