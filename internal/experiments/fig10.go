package experiments

import (
	"fmt"
	"strings"

	"github.com/edge-hdc/generic/internal/cluster"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/device"
	"github.com/edge-hdc/generic/internal/metrics"
	"github.com/edge-hdc/generic/internal/power"
	"github.com/edge-hdc/generic/internal/sim"
)

// Fig10Row is one clustering benchmark's per-input energy on the three
// platforms, plus latency and quality for the §5.3 narrative.
type Fig10Row struct {
	Dataset string
	// Per-input energy (J).
	GenericJ, KMeansCPUJ, KMeansRPiJ float64
	// Per-input latency (s).
	GenericS, KMeansCPUS, KMeansRPiS float64
	// Clustering quality (NMI) of the accelerator run and k-means.
	GenericNMI, KMeansNMI float64
}

// Fig10Result reproduces Figure 10 (and feeds Table 2's quality check):
// per-input clustering energy of GENERIC versus k-means on CPU and
// Raspberry Pi over the FCPS benchmarks and Iris.
type Fig10Result struct {
	Rows []Fig10Row
}

// Figure10 runs HDC clustering on the accelerator simulator and k-means on
// the device models for every clustering benchmark.
func Figure10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.normalized()
	names := dataset.ClusterNames()
	rows := make([]Fig10Row, len(names))
	err := cfg.fanOut(len(names), func(idx int) error {
		name := names[idx]
		cs, err := dataset.LoadCluster(name, cfg.Seed)
		if err != nil {
			return err
		}
		n := 3
		if cs.Features < n {
			n = cs.Features
		}
		spec := sim.Spec{
			D: PaperD, Features: cs.Features, N: n, Classes: cs.K,
			BW: 16, UseID: true, Mode: sim.Cluster,
		}
		acc, err := sim.NewWithRange(spec, cfg.Seed, cs.Lo, cs.Hi)
		if err != nil {
			return err
		}
		assign := acc.ClusterFit(cs.X, ClusterEpochs)
		rep := power.Energy(acc.Stats(), power.Config{ActiveBankFrac: spec.ActiveBankFrac()})
		// GENERIC clusters streaming inputs: its per-input cost is the cost
		// of one sample presentation (the paper's 9.6 µs/0.068 µJ figures
		// are per arriving input).
		presentations := float64(len(cs.X) * (ClusterEpochs + 1))

		// k-means is a batch fit: its per-input cost is the whole fit
		// (including sklearn-style n_init=10 restarts and per-sample loop
		// overhead) divided by the dataset size — the per-input cost a user
		// observes, which is what the paper measured.
		km := cluster.KMeansBest(cs.X, cs.K, 100, 10, cfg.Seed)
		iters := km.Iters * 10 // n_init restarts
		ops := device.KMeansOps(len(cs.X), cs.K, cs.Features, iters)
		kmPresentations := int64(len(cs.X)) * int64(iters)
		cpuS, cpuJ := device.CPU.RunLoop(ops, kmPresentations)
		rpiS, rpiJ := device.RaspberryPi.RunLoop(ops, kmPresentations)
		perInput := float64(len(cs.X))

		rows[idx] = Fig10Row{
			Dataset:    name,
			GenericJ:   rep.TotalJ / presentations,
			GenericS:   rep.Seconds / presentations,
			KMeansCPUJ: cpuJ / perInput,
			KMeansCPUS: cpuS / perInput,
			KMeansRPiJ: rpiJ / perInput,
			KMeansRPiS: rpiS / perInput,
			GenericNMI: metrics.NMI(assign, cs.Labels),
			KMeansNMI:  metrics.NMI(km.Assignments, cs.Labels),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Rows: rows}, nil
}

// MeanSpeedup returns GENERIC's geometric-mean latency advantage over the
// given platform ("CPU" or "RPi"); the paper reports 26× and 41×.
func (r *Fig10Result) MeanSpeedup(platform string) float64 {
	var ratios []float64
	for _, row := range r.Rows {
		switch platform {
		case "CPU":
			ratios = append(ratios, row.KMeansCPUS/row.GenericS)
		case "RPi":
			ratios = append(ratios, row.KMeansRPiS/row.GenericS)
		}
	}
	return metrics.GeoMean(ratios)
}

// MeanEnergyAdvantage returns GENERIC's geometric-mean energy advantage;
// the paper reports 61,400× (CPU) and 17,523× (RPi).
func (r *Fig10Result) MeanEnergyAdvantage(platform string) float64 {
	var ratios []float64
	for _, row := range r.Rows {
		switch platform {
		case "CPU":
			ratios = append(ratios, row.KMeansCPUJ/row.GenericJ)
		case "RPi":
			ratios = append(ratios, row.KMeansRPiJ/row.GenericJ)
		}
	}
	return metrics.GeoMean(ratios)
}

// String renders the per-benchmark energy bars plus the summary ratios.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: per-input clustering energy (and NMI quality)\n")
	t := &table{header: []string{
		"Dataset", "GENERIC", "K-means (CPU)", "K-means (R-Pi)", "GEN NMI", "KM NMI",
	}}
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			fmtEng(row.GenericJ, "J"), fmtEng(row.KMeansCPUJ, "J"), fmtEng(row.KMeansRPiJ, "J"),
			fmt.Sprintf("%.3f", row.GenericNMI), fmt.Sprintf("%.3f", row.KMeansNMI))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "energy advantage: %.0f× vs CPU (paper: 61400×), %.0f× vs R-Pi (paper: 17523×)\n",
		r.MeanEnergyAdvantage("CPU"), r.MeanEnergyAdvantage("RPi"))
	fmt.Fprintf(&b, "speedup: %.0f× vs CPU (paper: 26×), %.0f× vs R-Pi (paper: 41×)\n",
		r.MeanSpeedup("CPU"), r.MeanSpeedup("RPi"))
	return b.String()
}
