package sim

import (
	"testing"

	"github.com/edge-hdc/generic/internal/faults"
)

// The faults package cannot import sim (sim imports faults), so its striping
// constant is declared independently; the two must agree.
func TestFaultLanesMatchesM(t *testing.T) {
	if faults.Lanes != M {
		t.Fatalf("faults.Lanes = %d, sim.M = %d", faults.Lanes, M)
	}
}

// faultAccel trains a small accelerator on a deterministic two-class
// problem; identical calls produce bit-identical accelerators.
func faultAccel(t *testing.T) (*Accelerator, [][]float64, []int) {
	t.Helper()
	var X [][]float64
	var Y []int
	for i := 0; i < 60; i++ {
		x := make([]float64, 16)
		c := i % 2
		for j := 0; j < 4; j++ {
			x[c*8+j] = 0.9
		}
		x[(i*5)%16] += 0.05
		X = append(X, x)
		Y = append(Y, c)
	}
	a, err := NewWithRange(Spec{
		D: 512, Features: 16, N: 3, Classes: 2, BW: 16, UseID: true, Mode: Train,
	}, 13, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Train(X, Y, 3)
	return a, X, Y
}

func sameInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Transient input faults: deterministic per seed, and disarmable.
func TestInputFaultDeterministicAndDisarmable(t *testing.T) {
	a, X, _ := faultAccel(t)
	b, _, _ := faultAccel(t)
	clean := a.InferAll(X)

	spec := faults.Spec{Site: faults.SiteInput, Kind: faults.Uniform, Rate: 0.05, Seed: 17}
	if _, err := a.InjectFaults(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InjectFaults(spec); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.InferAll(X), b.InferAll(X)
	if !sameInts(pa, pb) {
		t.Fatal("identical input-fault specs produced different predictions")
	}

	// Disarm: rate 0 restores fault-free inference (input faults are
	// transient — nothing persists).
	if _, err := a.InjectFaults(faults.Spec{Site: faults.SiteInput, Kind: faults.Uniform, Rate: 0}); err != nil {
		t.Fatal(err)
	}
	if got := a.InferAll(X); !sameInts(got, clean) {
		t.Fatal("predictions differ after disarming input faults")
	}
}

// Transient datapath faults: flips are counted, deterministic per seed, and
// disarmable.
func TestDatapathFaultDeterministicAndDisarmable(t *testing.T) {
	a, X, _ := faultAccel(t)
	b, _, _ := faultAccel(t)
	clean := a.InferAll(X)
	before := a.Stats().FaultBits

	spec := faults.Spec{Site: faults.SiteDatapath, Kind: faults.Uniform, Rate: 0.5, Seed: 23}
	if _, err := a.InjectFaults(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InjectFaults(spec); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.InferAll(X), b.InferAll(X)
	if !sameInts(pa, pb) {
		t.Fatal("identical datapath-fault specs produced different predictions")
	}
	if a.Stats().FaultBits <= before {
		t.Error("datapath flips not counted in Stats.FaultBits")
	}

	if _, err := a.InjectFaults(faults.Spec{Site: faults.SiteDatapath, Kind: faults.Uniform, Rate: 0}); err != nil {
		t.Fatal(err)
	}
	if got := a.InferAll(X); !sameInts(got, clean) {
		t.Fatal("predictions differ after disarming datapath faults")
	}
}

// The acceptance criterion: Scrub after level/id corruption restores
// bit-identical predictions, with architectural accounting.
func TestScrubRestoresPredictions(t *testing.T) {
	for _, site := range []faults.Site{faults.SiteLevel, faults.SiteID} {
		t.Run(site.String(), func(t *testing.T) {
			a, X, _ := faultAccel(t)
			want := a.InferAll(X)
			n, err := a.InjectFaults(faults.Spec{Site: site, Kind: faults.Uniform, Rate: 0.2, Seed: 41})
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("injection changed no bits")
			}
			if a.Stats().FaultBits != int64(n) {
				t.Errorf("Stats.FaultBits = %d, want %d", a.Stats().FaultBits, n)
			}
			cyclesBefore := a.Stats().Cycles
			rep := a.Scrub()
			if !rep.EncoderRegenerated {
				t.Error("scrub did not regenerate the encoder")
			}
			if a.Stats().Scrubs != 1 {
				t.Errorf("Stats.Scrubs = %d, want 1", a.Stats().Scrubs)
			}
			if a.Stats().Cycles <= cyclesBefore {
				t.Error("scrub pass accounted no cycles")
			}
			if got := a.InferAll(X); !sameInts(got, want) {
				t.Error("predictions differ after scrub")
			}
		})
	}
}

// A dead class bank survives as a masked lane, reported to the power model.
func TestBankFailMasksLane(t *testing.T) {
	a, X, Y := faultAccel(t)
	if a.MaskedLanes() != 0 {
		t.Fatal("fresh accelerator reports masked lanes")
	}
	if _, err := a.InjectFaults(faults.Spec{Site: faults.SiteClass, Kind: faults.BankFail, Lane: 9, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	rep := a.Scrub()
	if rep.LanesMasked != 1 {
		t.Fatalf("LanesMasked = %d, want 1", rep.LanesMasked)
	}
	if a.MaskedLanes() != 1 {
		t.Errorf("MaskedLanes() = %d, want 1", a.MaskedLanes())
	}
	h := a.Health()
	if len(h.MaskedLanes) != 1 || h.MaskedLanes[0] != 9 {
		t.Errorf("Health.MaskedLanes = %v, want [9]", h.MaskedLanes)
	}
	// The model must remain usable: the problem is separable enough that
	// losing 1/16 of the dimensions cannot break it.
	preds := a.InferAll(X)
	correct := 0
	for i, p := range preds {
		if p == Y[i] {
			correct++
		}
	}
	if correct < len(X)*9/10 {
		t.Errorf("accuracy %d/%d after one masked lane", correct, len(X))
	}
}

// Retraining after faults invalidates the CRC guard: the new legitimate
// state must not be flagged as corruption by the next scrub.
func TestTrainingInvalidatesGuard(t *testing.T) {
	a, X, Y := faultAccel(t)
	if _, err := a.InjectFaults(faults.Spec{Site: faults.SiteClass, Kind: faults.Uniform, Rate: 0.01, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	a.Train(X, Y, 1) // legitimate mutation
	rep := a.Scrub()
	if rep.BadRows != 0 || rep.QuarantinedRows != 0 || rep.LanesMasked != 0 {
		t.Fatalf("scrub after retraining flagged legitimate state: %+v", rep)
	}
}

// Health lists armed transient processes alongside persistent history.
func TestHealthListsArmedTransients(t *testing.T) {
	a, _, _ := faultAccel(t)
	if _, err := a.InjectFaults(faults.Spec{Site: faults.SiteInput, Kind: faults.Uniform, Rate: 0.01, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.InjectFaults(faults.Spec{Site: faults.SiteDatapath, Kind: faults.Uniform, Rate: 0.01, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	h := a.Health()
	if len(h.Faults) != 2 {
		t.Fatalf("Health.Faults = %v, want two armed transients", h.Faults)
	}
}
