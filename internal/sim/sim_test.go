package sim

import (
	"math"
	"testing"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/cluster"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/metrics"
)

func eegSpec() Spec {
	ds := dataset.MustLoad("EEG", 1)
	return Spec{
		D: 2048, Features: ds.Features, N: 3, Classes: ds.Classes,
		BW: 16, UseID: ds.UseID, Mode: Train,
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{D: 4096, Features: 128, N: 3, Classes: 10, BW: 16}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []Spec{
		{D: 100, Features: 128, N: 3, Classes: 10},          // D not multiple of 128
		{D: 4096, Features: 0, N: 3, Classes: 10},           // no features
		{D: 4096, Features: 2000, N: 3, Classes: 10},        // feature mem overflow
		{D: 4096, Features: 128, N: 200, Classes: 10},       // window > features
		{D: 4096, Features: 128, N: 3, Classes: 0},          // no classes
		{D: 4096, Features: 128, N: 3, Classes: 33},         // too many classes
		{D: 8192, Features: 128, N: 3, Classes: 32},         // capacity: 32·8K > 128K
		{D: 4096, Features: 128, N: 3, Classes: 10, BW: 17}, // bad bw
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestCapacityTradeoff(t *testing.T) {
	// The paper's example: 4K dims for 32 classes, or 8K dims for 16.
	if err := (Spec{D: 4096, Features: 10, N: 3, Classes: 32}).Validate(); err != nil {
		t.Errorf("4K×32 should fit: %v", err)
	}
	if err := (Spec{D: 8192, Features: 10, N: 3, Classes: 16}).Validate(); err != nil {
		t.Errorf("8K×16 should fit: %v", err)
	}
}

func TestFillAndBanks(t *testing.T) {
	s := Spec{D: 4096, Features: 128, N: 3, Classes: 32}
	if f := s.Fill(); math.Abs(f-1) > 1e-12 {
		t.Errorf("full occupancy fill = %v", f)
	}
	if b := s.ActiveBankFrac(); b != 1 {
		t.Errorf("full occupancy banks = %v", b)
	}
	// EEG-like: 2 classes × 4K of 128K = 6.25% → 1 of 4 banks.
	s2 := Spec{D: 4096, Features: 128, N: 3, Classes: 2}
	if b := s2.ActiveBankFrac(); b != 0.25 {
		t.Errorf("small app banks = %v, want 0.25", b)
	}
}

func TestInferMatchesSoftwareArgmax(t *testing.T) {
	// The accelerator's fixed-point pipeline (Mitchell divider) must agree
	// with the floating-point reference on ≥99% of predictions.
	ds := dataset.MustLoad("EEG", 1)
	spec := eegSpec()
	acc := MustNewWithRange(spec, 7, ds.Lo, ds.Hi)

	enc := acc.Encoder()
	trainH := encoding.EncodeAll(enc, ds.TrainX)
	m, _ := classifier.TrainEncoded(trainH, ds.TrainY, ds.Classes, classifier.Options{Epochs: 5, Seed: 1})
	if err := acc.LoadModel(m); err != nil {
		t.Fatal(err)
	}

	agree, hwCorrect, swCorrect, total := 0, 0, 0, 0
	testH := encoding.EncodeAll(enc, ds.TestX)
	for i, x := range ds.TestX {
		hw := acc.Infer(x)
		sw, _ := m.Predict(testH[i])
		if hw == sw {
			agree++
		}
		if hw == ds.TestY[i] {
			hwCorrect++
		}
		if sw == ds.TestY[i] {
			swCorrect++
		}
		total++
	}
	// The corrected-Mitchell divider may flip genuinely near-tied scores
	// (these are the uncertain samples), so exact agreement is ≥95%; the
	// paper's claim — no accuracy loss from the approximate divider — must
	// hold within 2%.
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Errorf("hardware/software argmax agreement = %.4f, want ≥ 0.95", frac)
	}
	hwAcc := float64(hwCorrect) / float64(total)
	swAcc := float64(swCorrect) / float64(total)
	if math.Abs(hwAcc-swAcc) > 0.02 {
		t.Errorf("hardware accuracy %.4f deviates from software %.4f by > 2%%", hwAcc, swAcc)
	}
}

func TestTrainOnAcceleratorReachesAccuracy(t *testing.T) {
	ds := dataset.MustLoad("EEG", 1)
	acc := MustNewWithRange(eegSpec(), 7, ds.Lo, ds.Hi)
	acc.Train(ds.TrainX, ds.TrainY, 10)
	preds := acc.InferAll(ds.TestX)
	if a := metrics.MustAccuracy(preds, ds.TestY); a < 0.72 {
		t.Errorf("on-accelerator training accuracy = %.3f, want > 0.72", a)
	}
}

func TestCycleModelInference(t *testing.T) {
	spec := Spec{D: 4096, Features: 128, N: 3, Classes: 10, BW: 16, UseID: true}
	acc := MustNew(spec, 1)
	x := make([]float64, 128)
	acc.Infer(x)
	st := acc.Stats()
	// Expected: load (d) + passes·(max(d,nC)+fill) + divider/argmax (2·nC).
	passes := int64(4096 / M)
	want := int64(128) + passes*(128+PipelineFill) + 20
	if st.Cycles != want {
		t.Errorf("inference cycles = %d, want %d", st.Cycles, want)
	}
	if st.ClassMemReads != int64(10*4096) {
		t.Errorf("class reads = %d, want %d", st.ClassMemReads, 10*4096)
	}
	if st.LevelMemReads != passes*128 {
		t.Errorf("level reads = %d, want %d", st.LevelMemReads, passes*128)
	}
	if st.Inferences != 1 || st.Encodings != 1 {
		t.Errorf("op counters wrong: %+v", st)
	}
}

func TestInferenceLatencyMicroseconds(t *testing.T) {
	// The paper's clustering latency is ~9.6 µs/input at D=4K; a
	// same-order classification latency must come out of the cycle model
	// (few-to-tens of µs for d≈128).
	spec := Spec{D: 4096, Features: 128, N: 3, Classes: 10, BW: 16, UseID: true}
	acc := MustNew(spec, 1)
	acc.Infer(make([]float64, 128))
	us := acc.Stats().Seconds() * 1e6
	if us < 10 || us > 200 {
		t.Errorf("inference latency = %.2f µs, outside the plausible envelope", us)
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	spec := Spec{D: 1024, Features: 16, N: 3, Classes: 4, BW: 16}
	acc := MustNew(spec, 1)
	x := make([]float64, 16)
	acc.Infer(x)
	c1 := acc.Stats().Cycles
	acc.Infer(x)
	if acc.Stats().Cycles != 2*c1 {
		t.Errorf("cycles did not accumulate linearly: %d vs 2×%d", acc.Stats().Cycles, c1)
	}
	acc.ResetStats()
	if acc.Stats().Cycles != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Cycles: 10, ClassMemReads: 5, Inferences: 1}
	b := Stats{Cycles: 3, ClassMemWrites: 7, Updates: 2}
	a.Add(b)
	if a.Cycles != 13 || a.ClassMemReads != 5 || a.ClassMemWrites != 7 || a.Updates != 2 {
		t.Errorf("Stats.Add wrong: %+v", a)
	}
}

func TestRetrainCycleCost(t *testing.T) {
	// A misprediction must cost two class updates of 3·D/m cycles each.
	spec := Spec{D: 1024, Features: 16, N: 3, Classes: 2, BW: 16}
	acc := MustNew(spec, 1)
	X := [][]float64{make([]float64, 16)}
	Y := []int{0}
	acc.TrainInit(X, Y)
	acc.ResetStats()
	// Force a misprediction by labeling the same input differently.
	n := acc.RetrainEpoch(X, []int{1})
	if n != 1 {
		t.Fatalf("expected 1 update, got %d", n)
	}
	if acc.Stats().Updates != 2 {
		t.Errorf("updates = %d, want 2 (subtract + add)", acc.Stats().Updates)
	}
}

func TestLoadModelQuantizes(t *testing.T) {
	ds := dataset.MustLoad("EEG", 1)
	spec := eegSpec()
	spec.BW = 4
	acc := MustNewWithRange(spec, 7, ds.Lo, ds.Hi)
	trainH := encoding.EncodeAll(acc.Encoder(), ds.TrainX[:100])
	m, _ := classifier.TrainEncoded(trainH, ds.TrainY[:100], ds.Classes, classifier.Options{Epochs: 2})
	if err := acc.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	if acc.Model().BW() != 4 {
		t.Errorf("loaded model bw = %d, want 4", acc.Model().BW())
	}
	for c := 0; c < acc.Model().Classes(); c++ {
		for _, v := range acc.Model().Class(c) {
			if v > 7 || v < -8 {
				t.Fatalf("class value %d exceeds 4-bit range after load", v)
			}
		}
	}
	// The original model must be untouched (LoadModel clones).
	if m.BW() != 16 {
		t.Error("LoadModel mutated the caller's model")
	}
}

func TestLoadModelRejectsMismatch(t *testing.T) {
	acc := MustNew(Spec{D: 1024, Features: 16, N: 3, Classes: 2}, 1)
	m := classifier.NewModel(2048, 2, 16)
	if err := acc.LoadModel(m); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestClusterOnAccelerator(t *testing.T) {
	cs := dataset.MustLoadCluster("Hepta", 1)
	spec := Spec{D: 2048, Features: cs.Features, N: cs.Features, Classes: cs.K, BW: 16, UseID: true, Mode: Cluster}
	acc := MustNewWithRange(spec, 11, cs.Lo, cs.Hi)
	assign := acc.ClusterFit(cs.X, 10)
	nmi := metrics.NMI(assign, cs.Labels)
	if nmi < 0.6 {
		t.Errorf("accelerator clustering NMI = %.3f on Hepta, want ≥ 0.6", nmi)
	}
	if acc.Stats().Updates == 0 || acc.Stats().Encodings == 0 {
		t.Error("clustering accounted no activity")
	}
}

func TestClusterMatchesSoftwareClustering(t *testing.T) {
	// The accelerator's clustering and the software HDC clustering share
	// the algorithm; with identical encodings their NMI should be close.
	cs := dataset.MustLoadCluster("Tetra", 1)
	spec := Spec{D: 2048, Features: cs.Features, N: cs.Features, Classes: cs.K, BW: 16, UseID: true, Mode: Cluster}
	acc := MustNewWithRange(spec, 11, cs.Lo, cs.Hi)
	hwAssign := acc.ClusterFit(cs.X, 10)
	encoded := encoding.EncodeAll(acc.Encoder(), cs.X)
	swAssign := cluster.HDC(encoded, cs.K, 10)
	hwNMI := metrics.NMI(hwAssign, cs.Labels)
	swNMI := metrics.NMI(swAssign.Assignments, cs.Labels)
	if math.Abs(hwNMI-swNMI) > 0.25 {
		t.Errorf("hardware (%.3f) vs software (%.3f) clustering NMI diverge", hwNMI, swNMI)
	}
}

func TestModeString(t *testing.T) {
	if Inference.String() != "inference" || Train.String() != "train" || Cluster.String() != "cluster" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func BenchmarkAcceleratorInfer(b *testing.B) {
	spec := Spec{D: 4096, Features: 128, N: 3, Classes: 10, BW: 16, UseID: true}
	acc := MustNew(spec, 1)
	x := make([]float64, 128)
	for i := range x {
		x[i] = float64(i) / 128
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Infer(x)
	}
}
