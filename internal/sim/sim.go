// Package sim models the GENERIC ASIC accelerator (paper §4, Fig. 4) at
// the architectural level: it is functionally exact — encoding, integer
// dot products, and Mitchell-approximate score normalization produce the
// hardware's answers — and it accounts cycles and per-memory accesses the
// way the pipelined datapath would, so the power package can turn a
// workload into energy.
//
// Architecture summary (paper §4.1–4.2):
//
//   - The encoder emits m = 16 partial dimensions per pass over the stored
//     input; a D-dimensional encoding takes D/m passes of ~d cycles each.
//   - Class hypervectors are striped across m class memories so one cycle
//     reads m consecutive dimensions of one class; the dot product is
//     pipelined with encoding.
//   - Scores are normalized with an approximate log-based divider
//     (Mitchell) — no hardware divider.
//   - Retraining updates take 3·D/m cycles per touched class (§4.2.2).
//   - Clustering keeps copy centroids that replace the model each epoch
//     (§4.2.3).
package sim

import (
	"fmt"
	"math"

	"github.com/edge-hdc/generic/internal/approx"
	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/faults"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// Architectural constants (§4.1, §5.1).
const (
	// M is the number of partial dimensions the encoder produces per pass
	// and the number of class memories.
	M = 16
	// ClockHz is the synthesis target clock (500 MHz at 14 nm).
	ClockHz = 500e6
	// MaxFeatures is the input-memory depth (1024 × 8 b).
	MaxFeatures = 1024
	// LevelBins is the number of level hypervectors (64 × D bits).
	LevelBins = 64
	// ClassMemRowsPerMem is the depth of each of the M class memories
	// (8K × 16 b, 16 KB each): total capacity M·8K = 128K dimensions,
	// e.g. D=4K for 32 classes or D=8K for 16 classes.
	ClassMemRowsPerMem = 8192
	// MaxClasses bounds the number of classes/centroids.
	MaxClasses = 32
	// Banks is the power-gating granularity of each class memory (§4.3.2).
	Banks = 4
	// PipelineFill approximates the datapath fill/drain overhead per pass.
	PipelineFill = 4
)

// Mode selects the engine operation, as driven by the spec port.
type Mode int

const (
	// Inference classifies queries against a loaded model.
	Inference Mode = iota
	// Train performs model initialization and retraining.
	Train
	// Cluster performs unsupervised centroid learning.
	Cluster
)

func (m Mode) String() string {
	switch m {
	case Inference:
		return "inference"
	case Train:
		return "train"
	case Cluster:
		return "cluster"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Spec mirrors the accelerator's spec port: the application parameters that
// make GENERIC flexible without an instruction set (§4.1).
type Spec struct {
	D        int  // hypervector dimensionality
	Features int  // d: elements per input
	N        int  // window length (paper default 3)
	Classes  int  // nC: classes or centroids
	BW       int  // effective class bit-width (16 native; 8/4/2/1 masked)
	UseID    bool // bind per-window ids (Eq. 1)
	Mode     Mode
}

// Validate checks the spec against the architectural limits.
func (s Spec) Validate() error {
	if s.D <= 0 || s.D%(classifier.SubNormGranularity) != 0 {
		return fmt.Errorf("sim: D=%d must be a positive multiple of %d", s.D, classifier.SubNormGranularity)
	}
	if s.Features < 1 || s.Features > MaxFeatures {
		return fmt.Errorf("sim: features=%d out of [1,%d]", s.Features, MaxFeatures)
	}
	if s.N < 1 || s.N > s.Features {
		return fmt.Errorf("sim: window n=%d out of [1,features]", s.N)
	}
	if s.Classes < 1 || s.Classes > MaxClasses {
		return fmt.Errorf("sim: classes=%d out of [1,%d]", s.Classes, MaxClasses)
	}
	if s.Classes*s.D > M*ClassMemRowsPerMem {
		return fmt.Errorf("sim: nC·D = %d exceeds class-memory capacity %d dims",
			s.Classes*s.D, M*ClassMemRowsPerMem)
	}
	if s.BW != 0 && (s.BW < 1 || s.BW > 16) {
		return fmt.Errorf("sim: bw=%d out of [1,16]", s.BW)
	}
	return nil
}

// Fill returns the fraction of class-memory rows the application occupies —
// the quantity that drives application-opportunistic power gating (§4.3.2).
func (s Spec) Fill() float64 {
	return float64(s.Classes*s.D) / float64(M*ClassMemRowsPerMem)
}

// ActiveBankFrac returns the fraction of class-memory banks that stay
// powered: banks are gated at Banks granularity per memory.
func (s Spec) ActiveBankFrac() float64 {
	return math.Ceil(s.Fill()*Banks) / Banks
}

// Stats accumulates cycle and memory-access counts for a workload.
type Stats struct {
	Cycles int64

	FeatureMemReads  int64 // 8-bit feature fetches
	FeatureMemWrites int64 // input loading
	LevelMemReads    int64 // m-bit level row fetches
	ClassMemReads    int64 // 16-bit class word reads
	ClassMemWrites   int64 // 16-bit class word writes
	IDGenerations    int64 // rotations of the id seed register

	Encodings  int64
	Inferences int64
	Updates    int64 // retrain/cluster class updates

	FaultBits int64 // bits corrupted by fault injection (persistent + transient)
	Scrubs    int64 // scrub-and-repair passes
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Cycles += o.Cycles
	s.FeatureMemReads += o.FeatureMemReads
	s.FeatureMemWrites += o.FeatureMemWrites
	s.LevelMemReads += o.LevelMemReads
	s.ClassMemReads += o.ClassMemReads
	s.ClassMemWrites += o.ClassMemWrites
	s.IDGenerations += o.IDGenerations
	s.Encodings += o.Encodings
	s.Inferences += o.Inferences
	s.Updates += o.Updates
	s.FaultBits += o.FaultBits
	s.Scrubs += o.Scrubs
}

// Seconds converts the cycle count to wall-clock time at the target clock.
func (s Stats) Seconds() float64 { return float64(s.Cycles) / ClockHz }

// Tracer receives the accelerator's activity windows (phase name, start
// cycle, duration); internal/trace provides timeline and VCD renderers.
type Tracer interface {
	Event(name string, start, dur int64)
}

// Accelerator is a GENERIC engine instance: spec, hypervector material
// (level memory + id seed, loaded via the config port), class memories, and
// activity statistics.
type Accelerator struct {
	spec   Spec
	enc    encoding.Encoder
	model  *classifier.Model
	stats  Stats
	tracer Tracer
	lo, hi float64 // level-quantization range (also the input-memory range)
	// scratch
	q hdc.Vec
	// fault state (see fault.go)
	faultCtl *faults.Controller
	inputInj faults.Injector
	inputRNG *rng.Rand
	inputBuf []float64
	dpRate   float64
	dpRNG    *rng.Rand
}

// SetTracer installs an activity tracer (nil disables tracing).
func (a *Accelerator) SetTracer(t Tracer) { a.tracer = t }

// addCycles advances the cycle counter, reporting the window to the tracer.
func (a *Accelerator) addCycles(phase string, n int64) {
	if a.tracer != nil && n > 0 {
		a.tracer.Event(phase, a.stats.Cycles, n)
	}
	a.stats.Cycles += n
	telemetry.SimCycles.Add(n)
}

// New builds an accelerator for the spec with a [0,1] quantization range,
// generating its hypervector material from seed (in hardware the level/id
// memories are loaded through the config port; the seed stands in for that
// content).
func New(spec Spec, seed uint64) (*Accelerator, error) {
	return NewWithRange(spec, seed, 0, 1)
}

// MustNew is New that panics on error.
func MustNew(spec Spec, seed uint64) *Accelerator {
	a, err := New(spec, seed)
	if err != nil {
		panic(err)
	}
	return a
}

// MustNewWithRange is NewWithRange that panics on error.
func MustNewWithRange(spec Spec, seed uint64, lo, hi float64) *Accelerator {
	a, err := NewWithRange(spec, seed, lo, hi)
	if err != nil {
		panic(err)
	}
	return a
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewWithRange is New with an explicit level-quantization range.
func NewWithRange(spec Spec, seed uint64, lo, hi float64) (*Accelerator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.BW == 0 {
		spec.BW = 16
	}
	enc, err := encoding.New(encoding.Generic, encoding.Config{
		D: spec.D, Features: spec.Features, Bins: LevelBins,
		Lo: lo, Hi: hi, N: spec.N, UseID: spec.UseID, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	a := &Accelerator{spec: spec, enc: enc, lo: lo, hi: hi, q: hdc.NewVec(spec.D)}
	a.model = classifier.NewModel(spec.D, max2(spec.Classes, 2), spec.BW)
	return a, nil
}

// Spec returns the programmed spec; Stats the accumulated activity;
// Model the class memories' current contents.
func (a *Accelerator) Spec() Spec                { return a.spec }
func (a *Accelerator) Stats() Stats              { return a.stats }
func (a *Accelerator) Model() *classifier.Model  { return a.model }
func (a *Accelerator) ResetStats()               { a.stats = Stats{} }
func (a *Accelerator) Encoder() encoding.Encoder { return a.enc }

// LoadModel loads a trained model through the config port (offline
// training), quantizing it to the spec bit-width when narrower than 16.
func (a *Accelerator) LoadModel(m *classifier.Model) error {
	if m.D() != a.spec.D {
		return fmt.Errorf("sim: model D=%d != spec D=%d", m.D(), a.spec.D)
	}
	if m.Classes() > MaxClasses {
		return fmt.Errorf("sim: model has %d classes > %d", m.Classes(), MaxClasses)
	}
	clone := m.Clone()
	if a.spec.BW < 16 {
		clone.Quantize(a.spec.BW)
	}
	a.model = clone
	// The fault controller holds references into the replaced model; its
	// guard and mask state no longer apply.
	a.faultCtl = nil
	// Loading nC·D words through the config port.
	a.stats.ClassMemWrites += int64(m.Classes()) * int64(a.spec.D)
	return nil
}

// passes is the number of encoder iterations per input: D/m.
func (a *Accelerator) passes() int64 { return int64(a.spec.D / M) }

// loadInput accounts for reading one input element-by-element from the
// serial port into the input memory.
func (a *Accelerator) loadInput() {
	d := int64(a.spec.Features)
	a.addCycles("load", d)
	a.stats.FeatureMemWrites += d
}

// encodeCycles accounts one full encoding of the stored input: D/m passes,
// each streaming the d feature rows through the window pipeline.
// overlapped gives the per-pass cycles of a unit running concurrently with
// the encoder (e.g. the nC-cycle dot-product drain); the pass takes the
// slower of the two.
func (a *Accelerator) encodeCycles(overlapped int64) {
	d := int64(a.spec.Features)
	per := d
	if overlapped > per {
		per = overlapped
	}
	p := a.passes()
	a.addCycles("encode", p*(per+PipelineFill))
	a.stats.FeatureMemReads += p * d
	a.stats.LevelMemReads += p * d
	if a.spec.UseID {
		a.stats.IDGenerations += p * int64(a.spec.Features-a.spec.N+1) / M
	}
	a.stats.Encodings++
	telemetry.SimEncodings.Inc()
}

// encode performs the functional encoding into a.q. With an input-memory
// fault armed, the sample first round-trips through the 8-bit input memory
// with the injector corrupting the stored codes (transient: the next load
// overwrites them).
func (a *Accelerator) encode(x []float64) {
	if a.inputInj != nil {
		a.stats.FaultBits += int64(faults.CorruptFeatures(a.inputBuf, x, a.lo, a.hi, a.inputInj, a.inputRNG))
		x = a.inputBuf
	}
	a.enc.Encode(x, a.q)
}

// scoreAll computes the hardware similarity of the current encoding against
// every class: pipelined dot products plus the Mitchell divider, returning
// the argmax. Dot products overlap encoding, so only the divider and argmax
// add cycles here; the per-pass MAC cost is carried by encodeCycles's
// overlapped argument.
func (a *Accelerator) scoreAll() int {
	nC := a.model.Classes()
	best, bestScore := 0, int64(math.MinInt64)
	for c := 0; c < nC; c++ {
		dot := a.q.Dot(a.model.Class(c))
		if a.dpRNG != nil && a.dpRate > 0 && a.dpRNG.Float64() < a.dpRate {
			// Transient adder-tree upset: one bit of the accumulated dot
			// flips. Low datapathBits bits only — upsets hit individual
			// full-adder outputs, not the final sign logic.
			dot ^= int64(1) << uint(a.dpRNG.Intn(datapathBits))
			a.stats.FaultBits++
		}
		s := approx.ScoreApprox(dot, a.model.Norm2(c))
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	a.stats.ClassMemReads += int64(nC) * int64(a.spec.D)
	a.addCycles("search", 2*int64(nC)) // divider + max compare
	return best
}

// Infer classifies one input, returning the predicted class.
func (a *Accelerator) Infer(x []float64) int {
	a.loadInput()
	a.encode(x)
	a.encodeCycles(int64(a.model.Classes())) // dot drain overlaps encoding
	pred := a.scoreAll()
	a.stats.Inferences++
	telemetry.SimInferences.Inc()
	return pred
}

// InferAll classifies a batch and returns predictions.
func (a *Accelerator) InferAll(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = a.Infer(x)
	}
	return out
}

// updateClass accounts a retraining-style read-modify-write of one class:
// 3·D/m cycles (§4.2.2) plus the word traffic.
func (a *Accelerator) updateClassCycles() {
	a.addCycles("update", 3*a.passes())
	a.stats.ClassMemReads += int64(a.spec.D)
	a.stats.ClassMemWrites += int64(a.spec.D)
	a.stats.Updates++
	telemetry.SimUpdates.Inc()
}

// TrainInit performs the first training round: every encoded input is
// accumulated into its class hypervector (Fig. 1a), then squared norms are
// computed into the norm2 memory.
func (a *Accelerator) TrainInit(X [][]float64, Y []int) {
	a.invalidateGuard()
	for i, x := range X {
		a.loadInput()
		a.encode(x)
		a.encodeCycles(0)
		// Accumulate into the class rows as dimensions stream out:
		// read-add-write per pass, 2 extra cycles per pass.
		a.addCycles("bundle", 2*a.passes())
		a.stats.ClassMemReads += int64(a.spec.D)
		a.stats.ClassMemWrites += int64(a.spec.D)
		a.model.AddEncoded(a.q, Y[i])
	}
	a.normPass()
}

// normPass accounts computing ‖C‖² for all classes (§4.2.2).
func (a *Accelerator) normPass() {
	nC := int64(a.model.Classes())
	a.addCycles("norm", nC*a.passes())
	a.stats.ClassMemReads += nC * int64(a.spec.D)
}

// RetrainEpoch performs one retraining pass (Fig. 1c): inference on each
// training input; on misprediction the encoded vector (kept in the class
// memories' temporary rows) is subtracted from the wrong class and added to
// the right one. It returns the number of updates.
func (a *Accelerator) RetrainEpoch(X [][]float64, Y []int) int {
	a.invalidateGuard()
	updates := 0
	for i, x := range X {
		a.loadInput()
		a.encode(x)
		a.encodeCycles(int64(a.model.Classes()))
		// Encoded dims are stored to temporary rows while scoring.
		a.stats.ClassMemWrites += int64(a.spec.D)
		pred := a.scoreAll()
		a.stats.Inferences++
		telemetry.SimInferences.Inc()
		if pred != Y[i] {
			a.model.Update(a.q, Y[i], pred)
			a.updateClassCycles() // subtract from mispredicted class
			a.updateClassCycles() // add to correct class
			updates++
		}
	}
	a.normPass()
	return updates
}

// Train runs initialization plus epochs retraining passes (the paper uses a
// constant 20) and returns the final-epoch update count.
func (a *Accelerator) Train(X [][]float64, Y []int, epochs int) int {
	a.TrainInit(X, Y)
	last := 0
	for e := 0; e < epochs; e++ {
		last = a.RetrainEpoch(X, Y)
		if last == 0 {
			break
		}
	}
	return last
}

// ClusterFit runs k-centroid HDC clustering (§4.2.3) for the given epochs
// and returns the final assignments. The spec's Classes field is the k.
func (a *Accelerator) ClusterFit(X [][]float64, epochs int) []int {
	k := a.spec.Classes
	if len(X) < k {
		panic(fmt.Sprintf("sim: clustering needs at least k=%d inputs", k))
	}
	d := a.spec.D
	// Seed centroids with the first k encodings.
	centroids := make([]hdc.Vec, k)
	norms := make([]int64, k)
	for c := 0; c < k; c++ {
		a.loadInput()
		a.encode(X[c])
		a.encodeCycles(0)
		centroids[c] = a.q.Clone()
		a.stats.ClassMemWrites += int64(d)
	}
	refresh := func() {
		for c := range centroids {
			norms[c] = centroids[c].Norm2()
		}
		a.addCycles("norm", int64(k)*a.passes())
		a.stats.ClassMemReads += int64(k) * int64(d)
	}
	refresh()
	assign := make([]int, len(X))
	for e := 0; e < epochs; e++ {
		copies := make([]hdc.Vec, k)
		counts := make([]int, k)
		for c := range copies {
			copies[c] = hdc.NewVec(d)
		}
		for i, x := range X {
			a.loadInput()
			a.encode(x)
			a.encodeCycles(int64(k))
			a.stats.ClassMemWrites += int64(d) // stash encoding in temp rows
			best, bestScore := 0, int64(math.MinInt64)
			for c := 0; c < k; c++ {
				s := approx.ScoreApprox(a.q.Dot(centroids[c]), norms[c])
				if s > bestScore {
					best, bestScore = c, s
				}
			}
			a.stats.ClassMemReads += int64(k) * int64(d)
			a.addCycles("search", 2*int64(k))
			assign[i] = best
			copies[best].AddInto(a.q)
			counts[best]++
			a.updateClassCycles() // add stored encoding to the copy centroid
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = copies[c]
			}
		}
		refresh()
	}
	// Final assignment against the final model.
	for i, x := range X {
		a.loadInput()
		a.encode(x)
		a.encodeCycles(int64(k))
		best, bestScore := 0, int64(math.MinInt64)
		for c := 0; c < k; c++ {
			s := approx.ScoreApprox(a.q.Dot(centroids[c]), norms[c])
			if s > bestScore {
				best, bestScore = c, s
			}
		}
		a.stats.ClassMemReads += int64(k) * int64(d)
		a.addCycles("search", 2*int64(k))
		assign[i] = best
		a.stats.Inferences++
	}
	return assign
}
