package sim

import (
	"github.com/edge-hdc/generic/internal/faults"
	"github.com/edge-hdc/generic/internal/rng"
)

// datapathBits is the width of the adder-tree slice exposed to transient
// upsets: single-event flips hit individual full-adder outputs, so only the
// low partial-sum bits are vulnerable, not the final sign logic.
const datapathBits = 24

// faultController lazily builds the persistent-fault controller for the
// current model/encoder pair.
func (a *Accelerator) faultController() *faults.Controller {
	if a.faultCtl == nil {
		a.faultCtl = faults.NewController(a.model, a.enc)
	}
	return a.faultCtl
}

// invalidateGuard drops the class-memory CRC reference across legitimate
// model mutations (training passes).
func (a *Accelerator) invalidateGuard() {
	if a.faultCtl != nil {
		a.faultCtl.InvalidateGuard()
	}
}

// InjectFaults applies one fault spec to the accelerator and returns the
// number of bits changed. Persistent sites (class, level, id, norm) corrupt
// stored state immediately through the fault controller. Transient sites
// arm an ongoing fault process instead: SiteInput corrupts every
// subsequently loaded sample in the 8-bit input memory, and SiteDatapath
// flips adder-tree bits during scoring with per-bit probability Rate. Arming
// a transient site with Rate 0 (or, for SiteInput, an injector that changes
// nothing) disarms it.
func (a *Accelerator) InjectFaults(spec faults.Spec) (int, error) {
	switch spec.Site {
	case faults.SiteInput:
		inj, err := spec.Injector()
		if err != nil {
			return 0, err
		}
		if spec.Kind != faults.BankFail && spec.Rate == 0 {
			a.inputInj, a.inputRNG, a.inputBuf = nil, nil, nil
			return 0, nil
		}
		a.inputInj = inj
		a.inputRNG = rng.New(spec.Seed)
		a.inputBuf = make([]float64, a.spec.Features)
		return 0, nil
	case faults.SiteDatapath:
		if err := spec.Validate(); err != nil {
			return 0, err
		}
		if spec.Rate == 0 {
			a.dpRate, a.dpRNG = 0, nil
			return 0, nil
		}
		a.dpRate = spec.Rate
		a.dpRNG = rng.New(spec.Seed)
		return 0, nil
	}
	n, err := a.faultController().Inject(spec)
	a.stats.FaultBits += int64(n)
	return n, err
}

// Scrub runs the detection-and-repair pass (see faults.Controller.Scrub)
// with architectural accounting: the CRC verification streams every class
// word once, regeneration rewrites the level memory and id seed through the
// material generator, and the repaired model gets a norm recompute pass.
func (a *Accelerator) Scrub() faults.ScrubReport {
	rep := a.faultController().Scrub()
	nC := int64(a.model.Classes())
	// CRC pass: every class word is read once, M words per cycle.
	a.stats.ClassMemReads += nC * int64(a.spec.D)
	a.addCycles("scrub", nC*a.passes())
	if rep.EncoderRegenerated {
		// Rewriting LevelBins level rows (+ the id seed), M bits per cycle.
		a.addCycles("scrub", int64(LevelBins+1)*int64(a.spec.D/M))
	}
	a.normPass()
	a.stats.Scrubs++
	return rep
}

// Health reports the accelerator's fault state, including any transient
// fault processes currently armed.
func (a *Accelerator) Health() faults.Health {
	h := a.faultController().Health()
	if a.inputInj != nil {
		h.Faults = append(h.Faults, "input:"+a.inputInj.String()+" (armed)")
	}
	if a.dpRNG != nil {
		h.Faults = append(h.Faults, "datapath:transient (armed)")
	}
	return h
}

// MaskedLanes returns the number of dead class-memory banks masked out of
// the dot product, for the power model's bank accounting.
func (a *Accelerator) MaskedLanes() int {
	if a.faultCtl == nil {
		return 0
	}
	return a.faultCtl.MaskedLaneCount()
}
