package sim

import (
	"testing"
)

// These tests pin the cycle/traffic accounting formulas of the remaining
// engine operations (training init, clustering, id generation), which the
// energy model depends on.

func TestTrainInitAccounting(t *testing.T) {
	spec := Spec{D: 1024, Features: 16, N: 3, Classes: 4, BW: 16, UseID: true}
	acc := MustNew(spec, 1)
	X := [][]float64{make([]float64, 16), make([]float64, 16)}
	Y := []int{0, 1}
	acc.TrainInit(X, Y)
	st := acc.Stats()
	passes := int64(1024 / M)
	d := int64(16)
	// Per input: load (d) + encode passes (d+fill each) + bundle (2·passes);
	// plus one norm pass (nC·passes) at the end.
	wantCycles := 2*(d+passes*(d+PipelineFill)+2*passes) + 4*passes
	if st.Cycles != wantCycles {
		t.Errorf("TrainInit cycles = %d, want %d", st.Cycles, wantCycles)
	}
	// Class traffic: write D and read D per input (read-modify-write),
	// plus nC·D reads for the norm pass.
	if want := int64(2*1024 + 4*1024); st.ClassMemReads != want {
		t.Errorf("class reads = %d, want %d", st.ClassMemReads, want)
	}
	if want := int64(2 * 1024); st.ClassMemWrites != want {
		t.Errorf("class writes = %d, want %d", st.ClassMemWrites, want)
	}
	if st.Encodings != 2 {
		t.Errorf("encodings = %d, want 2", st.Encodings)
	}
}

func TestIDGenerationCounting(t *testing.T) {
	spec := Spec{D: 1024, Features: 16, N: 3, Classes: 2, BW: 16, UseID: true}
	acc := MustNew(spec, 1)
	acc.Infer(make([]float64, 16))
	withID := acc.Stats().IDGenerations
	if withID == 0 {
		t.Fatal("id generations not counted with UseID")
	}
	spec.UseID = false
	acc2 := MustNew(spec, 1)
	acc2.Infer(make([]float64, 16))
	if acc2.Stats().IDGenerations != 0 {
		t.Fatal("id generations counted without UseID")
	}
}

func TestClusterAccountingGrowsWithEpochs(t *testing.T) {
	spec := Spec{D: 1024, Features: 3, N: 3, Classes: 2, BW: 16, UseID: true, Mode: Cluster}
	X := make([][]float64, 10)
	for i := range X {
		X[i] = []float64{float64(i % 2), float64(i % 3), float64(i % 5)}
	}
	acc1 := MustNew(spec, 1)
	acc1.ClusterFit(X, 2)
	acc2 := MustNew(spec, 1)
	acc2.ClusterFit(X, 6)
	s1, s2 := acc1.Stats(), acc2.Stats()
	if s2.Cycles <= s1.Cycles || s2.Updates <= s1.Updates {
		t.Errorf("clustering work must grow with epochs: %d/%d cycles, %d/%d updates",
			s1.Cycles, s2.Cycles, s1.Updates, s2.Updates)
	}
	// Every epoch bundles every input once into a copy centroid.
	if want := int64(len(X) * 2); s1.Updates != want {
		t.Errorf("updates = %d, want %d", s1.Updates, want)
	}
}

func TestLatencyScalesWithD(t *testing.T) {
	// The paper's on-demand dimension trade-off: halving D halves the
	// encode-dominated inference latency.
	mk := func(d int) int64 {
		spec := Spec{D: d, Features: 64, N: 3, Classes: 4, BW: 16, UseID: true}
		acc := MustNew(spec, 1)
		acc.Infer(make([]float64, 64))
		return acc.Stats().Cycles
	}
	c4, c2, c1 := mk(4096), mk(2048), mk(1024)
	if ratio := float64(c4) / float64(c2); ratio < 1.8 || ratio > 2.2 {
		t.Errorf("4K/2K cycle ratio = %.2f, want ≈2", ratio)
	}
	if ratio := float64(c2) / float64(c1); ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2K/1K cycle ratio = %.2f, want ≈2", ratio)
	}
}

func TestEncodeOverlapsDotDrain(t *testing.T) {
	// With nC ≤ d the dot-product drain hides behind the encoder; with
	// nC > d it becomes the bottleneck (per-pass max(d, nC)).
	small := Spec{D: 1024, Features: 32, N: 3, Classes: 4, BW: 16}
	big := Spec{D: 1024, Features: 4, N: 3, Classes: 32, BW: 16}
	a1 := MustNew(small, 1)
	a1.Infer(make([]float64, 32))
	a2 := MustNew(big, 1)
	a2.Infer(make([]float64, 4))
	passes := int64(1024 / M)
	// big: per-pass cost must be nC-bound (32), not d-bound (4).
	wantBig := int64(4) + passes*(32+PipelineFill) + 2*32
	if a2.Stats().Cycles != wantBig {
		t.Errorf("nC-bound cycles = %d, want %d", a2.Stats().Cycles, wantBig)
	}
	// small: per-pass cost must be d-bound (32), with the 4-class drain
	// fully hidden.
	wantSmall := int64(32) + passes*(32+PipelineFill) + 2*4
	if a1.Stats().Cycles != wantSmall {
		t.Errorf("d-bound cycles = %d, want %d", a1.Stats().Cycles, wantSmall)
	}
}
