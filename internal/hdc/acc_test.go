package hdc

import (
	"testing"
	"testing/quick"

	"github.com/edge-hdc/generic/internal/rng"
)

// naiveCounts is the reference implementation the bit-sliced Acc must match.
func naiveCounts(vecs []*BitVec, d int) []int32 {
	c := make([]int32, d)
	for _, v := range vecs {
		for i := 0; i < d; i++ {
			c[i] += int32(v.Bit(i))
		}
	}
	return c
}

func TestAccMatchesNaive(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		r := rng.New(seed)
		const d = 256
		acc := NewAcc(d)
		vecs := make([]*BitVec, n)
		for i := range vecs {
			vecs[i] = RandomBitVec(d, r)
			acc.Add(vecs[i])
		}
		want := naiveCounts(vecs, d)
		got := make([]int32, d)
		acc.Counts(got)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return acc.Count() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAccBipolar(t *testing.T) {
	const d = 128
	acc := NewAcc(d)
	ones := NewBitVec(d)
	for i := 0; i < d; i++ {
		ones.SetBit(i, 1)
	}
	zeros := NewBitVec(d)
	acc.Add(ones)
	acc.Add(ones)
	acc.Add(zeros)
	out := make([]int32, d)
	acc.Bipolar(out)
	for i, v := range out {
		// counts = 2 of 3 ⇒ bipolar = 2·2 − 3 = 1
		if v != 1 {
			t.Fatalf("dim %d: bipolar = %d, want 1", i, v)
		}
	}
}

func TestAccCountAt(t *testing.T) {
	const d = 64
	acc := NewAcc(d)
	v := NewBitVec(d)
	v.SetBit(3, 1)
	for i := 0; i < 9; i++ {
		acc.Add(v)
	}
	if c := acc.CountAt(3); c != 9 {
		t.Fatalf("CountAt(3) = %d, want 9", c)
	}
	if c := acc.CountAt(4); c != 0 {
		t.Fatalf("CountAt(4) = %d, want 0", c)
	}
}

func TestAccReset(t *testing.T) {
	const d = 128
	r := rng.New(3)
	acc := NewAcc(d)
	for i := 0; i < 10; i++ {
		acc.Add(RandomBitVec(d, r))
	}
	acc.Reset()
	if acc.Count() != 0 {
		t.Fatal("Reset did not clear count")
	}
	out := make([]int32, d)
	acc.Counts(out)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("dim %d nonzero after Reset: %d", i, v)
		}
	}
	// Accumulator must be reusable after Reset.
	v := NewBitVec(d)
	v.SetBit(0, 1)
	acc.Add(v)
	if acc.CountAt(0) != 1 {
		t.Fatal("Acc unusable after Reset")
	}
}

func TestAccMajorityRecovery(t *testing.T) {
	// Bundling noisy copies of a prototype must recover the prototype:
	// the fundamental robustness property of HDC bundling.
	r := rng.New(4)
	const d = 4096
	proto := RandomBitVec(d, r)
	acc := NewAcc(d)
	for i := 0; i < 21; i++ {
		noisy := proto.Clone()
		noisy.FlipBits(0.2, r)
		acc.Add(noisy)
	}
	rec := acc.Threshold()
	if h := Hamming(rec, proto); h > d/50 {
		t.Fatalf("majority failed to recover prototype: hamming %d of %d", h, d)
	}
}

func TestThresholdPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Threshold on empty accumulator did not panic")
		}
	}()
	NewAcc(64).Threshold()
}

func TestAccLargeCountPlaneGrowth(t *testing.T) {
	const d = 64
	acc := NewAcc(d)
	v := NewBitVec(d)
	v.SetBit(7, 1)
	const n = 1000
	for i := 0; i < n; i++ {
		acc.Add(v)
	}
	if c := acc.CountAt(7); c != n {
		t.Fatalf("CountAt(7) = %d, want %d", c, n)
	}
}

func BenchmarkAccAdd4096(b *testing.B) {
	r := rng.New(1)
	acc := NewAcc(4096)
	v := RandomBitVec(4096, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Add(v)
	}
}

func BenchmarkAccCounts4096(b *testing.B) {
	r := rng.New(1)
	acc := NewAcc(4096)
	for i := 0; i < 100; i++ {
		acc.Add(RandomBitVec(4096, r))
	}
	dst := make([]int32, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Counts(dst)
	}
}

func TestMajorityIntoMatchesBipolarPackSigns(t *testing.T) {
	// MajorityInto must equal the two-step reference — materialize the
	// bipolar bundle, then pack its signs — for even and odd bundle sizes
	// (ties at n/2 resolve to +1 under the v >= 0 rule).
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) % 70 // 0 included: empty accumulator packs all ones
		r := rng.New(seed)
		const d = 256
		acc := NewAcc(d)
		for i := 0; i < n; i++ {
			acc.Add(RandomBitVec(d, r))
		}
		tmp := make(Vec, d)
		acc.Bipolar(tmp)
		want := NewBinVec(d)
		want.PackSigns(tmp)
		got := NewBinVec(d)
		acc.MajorityInto(got)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityIntoDimGuard(t *testing.T) {
	acc := NewAcc(128)
	defer func() {
		if recover() == nil {
			t.Fatal("MajorityInto across dimensionalities did not panic")
		}
	}()
	acc.MajorityInto(NewBinVec(64))
}
