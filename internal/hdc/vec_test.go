package hdc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edge-hdc/generic/internal/rng"
)

func TestVecAddSub(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{10, -20, 30}
	a.AddInto(b)
	if a[0] != 11 || a[1] != -18 || a[2] != 33 {
		t.Fatalf("AddInto wrong: %v", a)
	}
	a.SubInto(b)
	if a[0] != 1 || a[1] != 2 || a[2] != 3 {
		t.Fatalf("SubInto wrong: %v", a)
	}
}

func TestVecDotNorm(t *testing.T) {
	a := Vec{1, -2, 3}
	b := Vec{4, 5, -6}
	if d := a.Dot(b); d != 4-10-18 {
		t.Fatalf("Dot = %d, want -24", d)
	}
	if n := a.Norm2(); n != 1+4+9 {
		t.Fatalf("Norm2 = %d, want 14", n)
	}
}

func TestVecPrefixOps(t *testing.T) {
	a := Vec{1, 2, 3, 4}
	b := Vec{1, 1, 1, 1}
	if d := a.DotPrefix(b, 2); d != 3 {
		t.Fatalf("DotPrefix(2) = %d, want 3", d)
	}
	if n := a.Norm2Prefix(3); n != 14 {
		t.Fatalf("Norm2Prefix(3) = %d, want 14", n)
	}
	if d := a.DotPrefix(b, 4); d != a.Dot(b) {
		t.Fatal("full prefix dot != Dot")
	}
}

func TestCosineScoreOrdersLikeCosine(t *testing.T) {
	// The paper's modified metric sign(dot)·dot²/‖C‖² must rank candidate
	// classes identically to true cosine for a fixed query.
	r := rng.New(1)
	const d = 512
	q := make(Vec, d)
	for i := range q {
		q[i] = int32(r.Intn(21) - 10)
	}
	qn := math.Sqrt(float64(q.Norm2()))
	classes := make([]Vec, 8)
	for c := range classes {
		classes[c] = make(Vec, d)
		for i := range classes[c] {
			classes[c][i] = int32(r.Intn(2001) - 1000)
		}
	}
	type pair struct{ mod, cos float64 }
	scores := make([]pair, len(classes))
	for c, cv := range classes {
		dot := q.Dot(cv)
		scores[c] = pair{
			mod: CosineScore(dot, cv.Norm2()),
			cos: float64(dot) / (qn * math.Sqrt(float64(cv.Norm2()))),
		}
	}
	for i := range scores {
		for j := range scores {
			if (scores[i].mod > scores[j].mod) != (scores[i].cos > scores[j].cos) {
				t.Fatalf("ranking disagreement between modified and true cosine: %v vs %v",
					scores[i], scores[j])
			}
		}
	}
}

func TestCosineScoreSign(t *testing.T) {
	if s := CosineScore(-5, 100); s >= 0 {
		t.Fatalf("negative dot must score negative, got %v", s)
	}
	if s := CosineScore(5, 100); s <= 0 {
		t.Fatalf("positive dot must score positive, got %v", s)
	}
	if s := CosineScore(5, 0); s > -1e300 {
		t.Fatalf("zero-norm class must rank last, got %v", s)
	}
}

func TestSaturate(t *testing.T) {
	v := Vec{1000, -1000, 127, -128, 0}
	v.Saturate(8)
	want := Vec{127, -128, 127, -128, 0}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Saturate(8): %v, want %v", v, want)
		}
	}
}

func TestSaturatePanics(t *testing.T) {
	for _, bw := range []int{0, -1, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Saturate(%d) did not panic", bw)
				}
			}()
			Vec{1}.Saturate(bw)
		}()
	}
}

func TestQuantizeToPreservesSignAndOrder(t *testing.T) {
	v := Vec{100, 50, -50, -100, 0}
	q := v.Clone()
	q.QuantizeTo(4, 100)
	if q[0] <= q[1] || q[1] <= q[4] || q[4] <= q[2] || q[2] <= q[3] {
		t.Fatalf("quantization broke ordering: %v", q)
	}
	hi := int32(7)
	for i, x := range q {
		if x > hi || x < -8 {
			t.Fatalf("element %d out of 4-bit range: %d", i, x)
		}
	}
}

func TestQuantizeToOneBit(t *testing.T) {
	v := Vec{100, -100, 30, -30}
	v.QuantizeTo(1, 100)
	for i, x := range v {
		if x > 0 || x < -1 {
			t.Fatalf("1-bit quantization out of range at %d: %d", i, x)
		}
	}
}

func TestMaxAbs(t *testing.T) {
	if m := (Vec{3, -7, 5}).MaxAbs(); m != 7 {
		t.Fatalf("MaxAbs = %d, want 7", m)
	}
	if m := (Vec{}).MaxAbs(); m != 0 {
		t.Fatalf("MaxAbs of empty = %d, want 0", m)
	}
}

func TestDotSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a, b := make(Vec, 64), make(Vec, 64)
		for i := range a {
			a[i] = int32(r.Intn(65536) - 32768)
			b[i] = int32(r.Intn(65536) - 32768)
		}
		return a.Dot(b) == b.Dot(a) && a.Norm2() == a.Dot(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVecDot4096(b *testing.B) {
	r := rng.New(1)
	x, y := make(Vec, 4096), make(Vec, 4096)
	for i := range x {
		x[i] = int32(r.Intn(200) - 100)
		y[i] = int32(r.Intn(65536) - 32768)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = x.Dot(y)
	}
	_ = sink
}
