// Package hdc implements the hyperdimensional-computing primitives that the
// GENERIC engine is built on: bit-packed binary hypervectors with bipolar
// (±1) semantics, XOR binding, rotation (permutation), bundling accumulators,
// level-hypervector ladders, and rotating-seed id generation.
//
// Binary hypervectors are stored one bit per dimension in []uint64 words;
// bit 1 represents bipolar +1 and bit 0 represents −1. Under this mapping,
// element-wise bipolar multiplication is XOR of the complement — we follow
// the usual HDC convention where XOR itself is used as the bind operator
// (it flips the sign convention uniformly, which no similarity metric can
// observe). Dot products reduce to popcounts:
//
//	dot(a, b) = D − 2·hamming(a, b)
//
// All dimensionalities must be multiples of 64 so vectors pack exactly into
// words; GENERIC's native sizes (512 … 8192, sub-norm granularity 128) all
// satisfy this.
package hdc

import (
	"fmt"
	"math/bits"

	"github.com/edge-hdc/generic/internal/rng"
)

// WordBits is the number of dimensions packed per storage word.
const WordBits = 64

// BitVec is a binary hypervector of fixed dimensionality.
type BitVec struct {
	d     int
	words []uint64
}

// NewBitVec returns an all-zero (all −1 bipolar) hypervector of d dimensions.
// It panics if d is not a positive multiple of 64.
func NewBitVec(d int) *BitVec {
	checkDim(d)
	return &BitVec{d: d, words: make([]uint64, d/WordBits)}
}

// RandomBitVec returns a hypervector with i.i.d. uniform random bits.
func RandomBitVec(d int, r *rng.Rand) *BitVec {
	v := NewBitVec(d)
	r.FillBits(v.words)
	return v
}

func checkDim(d int) {
	if d <= 0 || d%WordBits != 0 {
		panic(fmt.Sprintf("hdc: dimensionality %d must be a positive multiple of %d", d, WordBits))
	}
}

// D returns the dimensionality.
func (v *BitVec) D() int { return v.d }

// Words exposes the packed storage. The slice must not be resized.
func (v *BitVec) Words() []uint64 { return v.words }

// Bit reports dimension i as 0 or 1.
func (v *BitVec) Bit(i int) int {
	return int(v.words[i/WordBits]>>(uint(i)%WordBits)) & 1
}

// SetBit sets dimension i to b (0 or 1).
func (v *BitVec) SetBit(i, b int) {
	w, m := i/WordBits, uint64(1)<<(uint(i)%WordBits)
	if b != 0 {
		v.words[w] |= m
	} else {
		v.words[w] &^= m
	}
}

// Bipolar reports dimension i as +1 or −1.
func (v *BitVec) Bipolar(i int) int { return 2*v.Bit(i) - 1 }

// Clone returns a deep copy of v.
func (v *BitVec) Clone() *BitVec {
	c := NewBitVec(v.d)
	copy(c.words, v.words)
	return c
}

// CopyFrom overwrites v with src. The dimensionalities must match.
func (v *BitVec) CopyFrom(src *BitVec) {
	mustSameDim("BitVec.CopyFrom", src.d, v.d)
	copy(v.words, src.words)
}

// Equal reports whether v and o have identical dimensionality and bits.
//
//lint:ignore generic/dimguard Equal is a predicate: mismatched dimensionalities compare unequal rather than panic.
func (v *BitVec) Equal(o *BitVec) bool {
	if v.d != o.d {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// XorInto stores a ⊕ b into dst. All three must share a dimensionality;
// dst may alias a or b.
func XorInto(dst, a, b *BitVec) {
	mustSameDim("XorInto", a.d, dst.d)
	mustSameDim("XorInto", b.d, dst.d)
	for i := range dst.words {
		dst.words[i] = a.words[i] ^ b.words[i]
	}
}

// XorAccumulate folds v into dst: dst ^= v.
func XorAccumulate(dst, v *BitVec) {
	mustSameDim("XorAccumulate", v.d, dst.d)
	for i := range dst.words {
		dst.words[i] ^= v.words[i]
	}
}

// RotateInto writes the circular rotation of src by k positions into dst:
// bit i of src becomes bit (i+k) mod D of dst. This is the permutation ρ(k)
// used by the permutation and GENERIC encodings and by the id generator.
// dst must not alias src unless k == 0.
func RotateInto(dst, src *BitVec, k int) {
	mustSameDim("RotateInto", src.d, dst.d)
	n := len(src.words)
	k %= src.d
	if k < 0 {
		k += src.d
	}
	if k == 0 {
		copy(dst.words, src.words)
		return
	}
	ws, bs := k/WordBits, uint(k%WordBits)
	if bs == 0 {
		for w := 0; w < n; w++ {
			dst.words[w] = src.words[((w-ws)%n+n)%n]
		}
		return
	}
	for w := 0; w < n; w++ {
		lo := src.words[((w-ws)%n+n)%n]
		hi := src.words[((w-ws-1)%n+n)%n]
		dst.words[w] = lo<<bs | hi>>(WordBits-bs)
	}
}

// Rotate returns a freshly allocated rotation of v by k positions.
func Rotate(v *BitVec, k int) *BitVec {
	dst := NewBitVec(v.d)
	RotateInto(dst, v, k)
	return dst
}

// Hamming returns the number of dimensions where a and b differ.
func Hamming(a, b *BitVec) int {
	mustSameDim("Hamming", b.d, a.d)
	h := 0
	for i, w := range a.words {
		h += bits.OnesCount64(w ^ b.words[i])
	}
	return h
}

// Dot returns the bipolar dot product of a and b: D − 2·hamming(a, b).
// Orthogonal vectors score ≈ 0; identical vectors score D.
func Dot(a, b *BitVec) int {
	mustSameDim("Dot", b.d, a.d)
	return a.d - 2*Hamming(a, b)
}

// OnesCount returns the number of 1 bits in v.
func (v *BitVec) OnesCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// FlipBits flips each bit of v independently with probability rate, drawing
// randomness from r. It returns the number of bits flipped. This models
// memory bit errors under voltage over-scaling.
func (v *BitVec) FlipBits(rate float64, r *rng.Rand) int {
	if rate <= 0 {
		return 0
	}
	flipped := 0
	for i := 0; i < v.d; i++ {
		if r.Float64() < rate {
			v.words[i/WordBits] ^= 1 << (uint(i) % WordBits)
			flipped++
		}
	}
	return flipped
}

// String renders a short diagnostic form.
func (v *BitVec) String() string {
	return fmt.Sprintf("BitVec(D=%d, ones=%d)", v.d, v.OnesCount())
}
