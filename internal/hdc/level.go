package hdc

import (
	"fmt"

	"github.com/edge-hdc/generic/internal/rng"
)

// LevelTable holds the level hypervectors ℓ(0) … ℓ(bins−1) that map
// quantized scalar features into hyperspace. Neighboring levels are similar
// and the extremes are nearly orthogonal: starting from a random ℓ(0), each
// step flips D/(2·(bins−1)) fresh bit positions, so ℓ(0) and ℓ(bins−1)
// differ in ~D/2 positions (dot ≈ 0), preserving the metric structure of the
// input scale (Fig. 2a of the paper).
type LevelTable struct {
	d      int
	bins   int
	levels []*BitVec
}

// NewLevelTable builds a ladder of bins level hypervectors of d dimensions.
// bins must be at least 2 and must not exceed d/2+1 (there must be enough
// positions to flip).
func NewLevelTable(d, bins int, r *rng.Rand) *LevelTable {
	checkDim(d)
	if bins < 2 || (bins-1)*2 > d {
		panic(fmt.Sprintf("hdc: level bins %d out of range for D=%d", bins, d))
	}
	t := &LevelTable{d: d, bins: bins, levels: make([]*BitVec, bins)}
	t.levels[0] = RandomBitVec(d, r)
	// Partition a random permutation of the dimensions into bins−1 chunks;
	// flipping disjoint chunks guarantees the cumulative hamming distance
	// from ℓ(0) grows linearly up the ladder.
	perm := r.Perm(d)
	flipsPerStep := d / (2 * (bins - 1))
	pos := 0
	for b := 1; b < bins; b++ {
		v := t.levels[b-1].Clone()
		for i := 0; i < flipsPerStep; i++ {
			p := perm[pos]
			pos++
			v.SetBit(p, 1-v.Bit(p))
		}
		t.levels[b] = v
	}
	return t
}

// D returns the dimensionality of the levels.
func (t *LevelTable) D() int { return t.d }

// Bins returns the number of quantization bins.
func (t *LevelTable) Bins() int { return t.bins }

// Level returns the hypervector for bin b. The returned vector is shared;
// callers must not modify it (the fault layer is the sanctioned exception:
// it mutates levels in place to model memory bit errors and repairs them by
// regeneration).
func (t *LevelTable) Level(b int) *BitVec {
	return t.levels[b]
}

// Rows exposes the underlying level vectors as memory rows for the fault
// layer. The slice and its vectors are live, not copies.
func (t *LevelTable) Rows() []*BitVec { return t.levels }

// Clone returns a deep copy of the table, including any in-place mutations
// (e.g. injected bit errors).
func (t *LevelTable) Clone() *LevelTable {
	c := &LevelTable{d: t.d, bins: t.bins, levels: make([]*BitVec, len(t.levels))}
	for i, v := range t.levels {
		c.levels[i] = v.Clone()
	}
	return c
}

// Quantize maps x in [lo, hi] to a bin index in [0, bins); values outside
// the range clamp to the extreme bins.
func (t *LevelTable) Quantize(x, lo, hi float64) int {
	if hi <= lo {
		return 0
	}
	b := int(float64(t.bins) * (x - lo) / (hi - lo))
	if b < 0 {
		return 0
	}
	if b >= t.bins {
		return t.bins - 1
	}
	return b
}

// IDGenerator produces the per-index id hypervectors used for binding.
// Rather than storing one random id per index (1K×4K = 512 KB in hardware),
// it keeps a single random seed and generates id(k) = ρ(k)(seed) on the fly —
// rotation preserves pairwise near-orthogonality, shrinking the id memory
// 1024× (paper §4.3.1).
type IDGenerator struct {
	seed *BitVec
}

// NewIDGenerator creates a generator with a random seed of d dimensions.
func NewIDGenerator(d int, r *rng.Rand) *IDGenerator {
	return &IDGenerator{seed: RandomBitVec(d, r)}
}

// Seed returns the seed hypervector (id 0). Callers must not modify it
// (the fault layer is the sanctioned exception; see LevelTable.Level).
func (g *IDGenerator) Seed() *BitVec { return g.seed }

// Clone returns a deep copy of the generator, including any in-place
// mutations of the seed.
func (g *IDGenerator) Clone() *IDGenerator {
	return &IDGenerator{seed: g.seed.Clone()}
}

// D returns the dimensionality.
func (g *IDGenerator) D() int { return g.seed.d }

// ID writes id(k) = ρ(k)(seed) into dst.
func (g *IDGenerator) ID(k int, dst *BitVec) {
	RotateInto(dst, g.seed, k)
}
