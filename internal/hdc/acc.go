package hdc

import "math/bits"

// Acc bundles binary hypervectors: it counts, per dimension, how many of the
// added vectors had bit 1. Counts are kept bit-sliced — plane j holds bit j
// of every dimension's counter — so adding a vector costs a handful of word
// operations per 64 dimensions instead of 64 integer additions. This mirrors
// the counter-based bundling datapath of HDC accelerators.
//
// After adding W vectors, the bipolar bundle value of dimension i is
// 2·count(i) − W, which Bipolar() materializes into an integer vector.
type Acc struct {
	d      int
	n      int // number of vectors added
	planes [][]uint64
	carry  []uint64 // scratch for the ripple-carry add
}

// NewAcc returns an empty accumulator of d dimensions.
func NewAcc(d int) *Acc {
	checkDim(d)
	return &Acc{d: d}
}

// D returns the dimensionality.
func (a *Acc) D() int { return a.d }

// Count returns the number of vectors added so far.
func (a *Acc) Count() int { return a.n }

// Reset empties the accumulator for reuse without reallocating planes.
//
//generic:hotpath
func (a *Acc) Reset() {
	a.n = 0
	for _, p := range a.planes {
		for i := range p {
			p[i] = 0
		}
	}
}

// Add bundles v into the accumulator.
func (a *Acc) Add(v *BitVec) {
	mustSameDim("Acc.Add", v.d, a.d)
	a.n++
	nw := a.d / WordBits
	// Ripple-carry add of the 1-bit vector into the bit-sliced counters.
	if a.carry == nil {
		//lint:ignore generic/escapes one-time carry-buffer growth behind the nil guard above
		a.carry = make([]uint64, nw)
	}
	carry := a.carry
	copy(carry, v.words)
	for j := 0; ; j++ {
		if j == len(a.planes) {
			//lint:ignore generic/hotalloc,generic/escapes plane growth is amortized: ceil(log2(n)) appends over an accumulator's lifetime, not per call
			a.planes = append(a.planes, make([]uint64, nw))
		}
		plane := a.planes[j]
		done := true
		for w := 0; w < nw; w++ {
			c := carry[w]
			if c == 0 {
				continue
			}
			old := plane[w]
			plane[w] = old ^ c
			carry[w] = old & c
			if carry[w] != 0 {
				done = false
			}
		}
		if done {
			return
		}
	}
}

// CountAt returns the per-dimension count for dimension i.
func (a *Acc) CountAt(i int) int {
	c := 0
	w, b := i/WordBits, uint(i)%WordBits
	for j, p := range a.planes {
		c |= int(p[w]>>b&1) << uint(j)
	}
	return c
}

// Counts writes the per-dimension counts into dst, which must have length D.
//
//generic:hotpath
func (a *Acc) Counts(dst []int32) {
	mustSameDim("Acc.Counts", len(dst), a.d)
	for i := range dst {
		dst[i] = 0
	}
	for j, p := range a.planes {
		for w, word := range p {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				dst[w*WordBits+b] += 1 << uint(j)
				word &= word - 1
			}
		}
	}
}

// Bipolar writes the bipolar bundle 2·count − n into dst (length D).
//
//generic:hotpath
func (a *Acc) Bipolar(dst []int32) {
	a.Counts(dst)
	n := int32(a.n)
	for i := range dst {
		dst[i] = 2*dst[i] - n
	}
}

// MajorityInto materializes the sign-binarized bundle directly into out:
// bit i is 1 exactly when the bipolar bundle value 2·count(i) − n is >= 0,
// i.e. count(i) >= ceil(n/2) — the same v >= 0 → +1 rule BinVec.PackSigns
// applies to integer counters, so MajorityInto(out) equals Bipolar(tmp) +
// PackSigns(tmp) without materializing the integer vector. An empty
// accumulator yields all ones (sign(0) → +1), matching PackSigns on a zero
// counter vector.
//
// The comparison runs word-parallel on the bit-sliced counter planes: a
// borrow-propagating subtraction of the scalar threshold across 64 counters
// at a time; a lane ends with no borrow exactly when its count reaches the
// threshold.
//
//generic:hotpath
func (a *Acc) MajorityInto(out *BinVec) {
	mustSameDim("Acc.MajorityInto", out.d, a.d)
	thr := uint64(a.n+1) / 2
	// Planes only grow when some counter actually carried that high, so the
	// threshold may need more bit positions than exist; absent planes are
	// all-zero counter bits.
	nk := len(a.planes)
	if b := bits.Len64(thr); b > nk {
		nk = b
	}
	for w := range out.words {
		borrow := uint64(0)
		for k := 0; k < nk; k++ {
			var c uint64
			if k < len(a.planes) {
				c = a.planes[k][w]
			}
			var t uint64
			if thr>>uint(k)&1 == 1 {
				t = ^uint64(0)
			}
			borrow = ^c&(t|borrow) | t&borrow
		}
		out.words[w] = ^borrow
	}
	out.words[len(out.words)-1] &= tailMask(out.d)
}

// Threshold materializes the majority vote: bit i of the result is 1 when
// more than half the added vectors had bit 1 there. Ties (possible only for
// even counts) break toward 0. It panics if the accumulator is empty.
func (a *Acc) Threshold() *BitVec {
	if a.n == 0 {
		panic("hdc: Threshold on empty accumulator")
	}
	counts := make([]int32, a.d)
	a.Counts(counts)
	out := NewBitVec(a.d)
	half := int32(a.n)
	for i, c := range counts {
		if 2*c > half {
			out.SetBit(i, 1)
		}
	}
	return out
}
