package hdc

import "fmt"

// Vec is an integer hypervector: the result of bundling binary hypervectors
// (an encoded query) or of accumulating encoded queries (a class or centroid
// hypervector). GENERIC's class memories hold these at 16-bit precision; Vec
// uses int32 in software and models the hardware bit-width via Saturate and
// classifier-level masking.
type Vec []int32

// NewVec returns a zero vector of d dimensions.
func NewVec(d int) Vec { return make(Vec, d) }

// Clone returns a deep copy.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// AddInto accumulates o into v element-wise.
func (v Vec) AddInto(o Vec) {
	mustSameLen("Vec.AddInto", v, o)
	for i, x := range o {
		v[i] += x
	}
}

// SubInto subtracts o from v element-wise.
func (v Vec) SubInto(o Vec) {
	mustSameLen("Vec.SubInto", v, o)
	for i, x := range o {
		v[i] -= x
	}
}

// Dot returns the dot product of v and o as int64.
func (v Vec) Dot(o Vec) int64 {
	mustSameLen("Vec.Dot", v, o)
	var s int64
	for i, x := range v {
		s += int64(x) * int64(o[i])
	}
	return s
}

// DotPrefix returns the dot product of the first d dimensions only, used by
// on-demand dimension reduction.
func (v Vec) DotPrefix(o Vec, d int) int64 {
	if d > len(v) || d > len(o) {
		panic("hdc: DotPrefix length out of range")
	}
	var s int64
	for i := 0; i < d; i++ {
		s += int64(v[i]) * int64(o[i])
	}
	return s
}

// Norm2 returns the squared L2 norm as int64.
func (v Vec) Norm2() int64 {
	var s int64
	for _, x := range v {
		s += int64(x) * int64(x)
	}
	return s
}

// Norm2Prefix returns the squared L2 norm of the first d dimensions.
func (v Vec) Norm2Prefix(d int) int64 {
	if d > len(v) {
		panic("hdc: Norm2Prefix length out of range")
	}
	var s int64
	for i := 0; i < d; i++ {
		s += int64(v[i]) * int64(v[i])
	}
	return s
}

// CosineScore returns the modified cosine similarity the paper uses for
// ranking: sign(H·C) · (H·C)² / ‖C‖², which orders classes identically to
// true cosine (the query norm is constant across classes and the square
// root is monotone). norm2 must be the squared L2 norm of v.
// A zero (or corrupted-negative) norm scores negative infinity ranking-wise,
// returned here as the most negative finite value to keep arithmetic simple.
func CosineScore(dot int64, norm2 int64) float64 {
	if norm2 <= 0 {
		return -1e308
	}
	s := float64(dot) * float64(dot) / float64(norm2)
	if dot < 0 {
		return -s
	}
	return s
}

// Saturate clamps every element of v to the signed range of bw bits
// ([−2^(bw−1), 2^(bw−1)−1]), modeling a fixed-width class memory.
func (v Vec) Saturate(bw int) {
	lo, hi := satBounds("Vec.Saturate", bw)
	for i, x := range v {
		if x > hi {
			v[i] = hi
		} else if x < lo {
			v[i] = lo
		}
	}
}

// QuantizeTo rounds v to bw-bit precision by keeping the top bw bits of the
// magnitude range maxAbs, mimicking loading a quantized model into GENERIC
// (the mask unit masks out unused bits). Elements are scaled into
// [−2^(bw−1), 2^(bw−1)−1] proportionally to maxAbs.
func (v Vec) QuantizeTo(bw int, maxAbs int32) {
	if bw > 16 {
		panic(fmt.Sprintf("hdc: Vec.QuantizeTo bit-width %d out of range [1,16]", bw))
	}
	lo32, hi32 := satBounds("Vec.QuantizeTo", bw)
	if maxAbs <= 0 {
		return
	}
	lo, hi := int64(lo32), int64(hi32)
	for i, x := range v {
		q := (int64(x)*hi + int64(maxAbs)/2) / int64(maxAbs)
		if q > hi {
			q = hi
		} else if q < lo {
			q = lo
		}
		v[i] = int32(q)
	}
}

// MaxAbs returns the largest absolute element value (0 for an empty vector).
func (v Vec) MaxAbs() int32 {
	var m int32
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

func mustSameLen(op string, a, b Vec) {
	mustSameDim(op, len(b), len(a))
}
