package hdc

import (
	"testing"
	"testing/quick"

	"github.com/edge-hdc/generic/internal/rng"
)

const testD = 1024

func TestNewBitVecPanicsOnBadDim(t *testing.T) {
	for _, d := range []int{0, -64, 63, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBitVec(%d) did not panic", d)
				}
			}()
			NewBitVec(d)
		}()
	}
}

func TestBitSetGet(t *testing.T) {
	v := NewBitVec(128)
	for _, i := range []int{0, 1, 63, 64, 65, 127} {
		if v.Bit(i) != 0 {
			t.Fatalf("fresh vector has bit %d set", i)
		}
		v.SetBit(i, 1)
		if v.Bit(i) != 1 {
			t.Fatalf("SetBit(%d,1) not visible", i)
		}
		if v.Bipolar(i) != 1 {
			t.Fatalf("Bipolar(%d) = %d after set, want +1", i, v.Bipolar(i))
		}
		v.SetBit(i, 0)
		if v.Bit(i) != 0 || v.Bipolar(i) != -1 {
			t.Fatalf("SetBit(%d,0) not visible", i)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	r := rng.New(1)
	v := RandomBitVec(testD, r)
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone differs from original")
	}
	c.SetBit(0, 1-c.Bit(0))
	if v.Equal(c) {
		t.Fatal("mutating clone affected original")
	}
}

func TestXorInvolution(t *testing.T) {
	r := rng.New(2)
	a := RandomBitVec(testD, r)
	b := RandomBitVec(testD, r)
	x := NewBitVec(testD)
	XorInto(x, a, b)
	y := NewBitVec(testD)
	XorInto(y, x, b) // (a⊕b)⊕b = a
	if !y.Equal(a) {
		t.Fatal("XOR bind is not an involution")
	}
}

func TestXorAliasingSafe(t *testing.T) {
	r := rng.New(3)
	a := RandomBitVec(testD, r)
	b := RandomBitVec(testD, r)
	want := NewBitVec(testD)
	XorInto(want, a, b)
	got := a.Clone()
	XorInto(got, got, b)
	if !got.Equal(want) {
		t.Fatal("XorInto with dst aliasing a gave wrong result")
	}
}

func TestXorAccumulate(t *testing.T) {
	r := rng.New(4)
	a := RandomBitVec(testD, r)
	b := RandomBitVec(testD, r)
	want := NewBitVec(testD)
	XorInto(want, a, b)
	got := a.Clone()
	XorAccumulate(got, b)
	if !got.Equal(want) {
		t.Fatal("XorAccumulate != XorInto")
	}
}

func TestRotatePreservesBitsExactPositions(t *testing.T) {
	r := rng.New(5)
	v := RandomBitVec(256, r)
	for _, k := range []int{0, 1, 63, 64, 65, 127, 128, 200, 255, 256, 300, -1, -64} {
		got := NewBitVec(256)
		RotateInto(got, v, k)
		for i := 0; i < 256; i++ {
			j := ((i+k)%256 + 256) % 256
			if got.Bit(j) != v.Bit(i) {
				t.Fatalf("rotate %d: bit %d of src should land at %d", k, i, j)
			}
		}
	}
}

func TestRotateComposition(t *testing.T) {
	r := rng.New(6)
	v := RandomBitVec(testD, r)
	a := Rotate(Rotate(v, 37), 91)
	b := Rotate(v, 37+91)
	if !a.Equal(b) {
		t.Fatal("ρ(91)∘ρ(37) != ρ(128)")
	}
}

func TestRotateFullCycleIsIdentity(t *testing.T) {
	r := rng.New(7)
	v := RandomBitVec(testD, r)
	if !Rotate(v, testD).Equal(v) {
		t.Fatal("ρ(D) is not the identity")
	}
}

func TestRotateInvertible(t *testing.T) {
	f := func(seed uint64, kRaw int) bool {
		k := ((kRaw % testD) + testD) % testD
		v := RandomBitVec(testD, rng.New(seed))
		return Rotate(Rotate(v, k), testD-k).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRotatePreservesOnesCount(t *testing.T) {
	f := func(seed uint64, kRaw int) bool {
		v := RandomBitVec(testD, rng.New(seed))
		return Rotate(v, kRaw%4096).OnesCount() == v.OnesCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingBasics(t *testing.T) {
	a := NewBitVec(128)
	b := NewBitVec(128)
	if Hamming(a, b) != 0 {
		t.Fatal("hamming of identical vectors != 0")
	}
	b.SetBit(5, 1)
	b.SetBit(100, 1)
	if h := Hamming(a, b); h != 2 {
		t.Fatalf("hamming = %d, want 2", h)
	}
	if d := Dot(a, b); d != 128-4 {
		t.Fatalf("dot = %d, want %d", d, 124)
	}
}

func TestDotSelfEqualsD(t *testing.T) {
	r := rng.New(8)
	v := RandomBitVec(testD, r)
	if Dot(v, v) != testD {
		t.Fatalf("dot(v,v) = %d, want %d", Dot(v, v), testD)
	}
}

func TestRandomVectorsNearOrthogonal(t *testing.T) {
	r := rng.New(9)
	const d = 4096
	for i := 0; i < 20; i++ {
		a := RandomBitVec(d, r)
		b := RandomBitVec(d, r)
		dot := Dot(a, b)
		// For random ±1 vectors, dot is ~N(0, D); |dot| > 6σ is a failure.
		if dot > 6*64 || dot < -6*64 {
			t.Fatalf("random pair dot = %d, |dot| too large for D=%d", dot, d)
		}
	}
}

func TestDotPopcountIdentity(t *testing.T) {
	// dot = D − 2·hamming must agree with an explicit bipolar dot product.
	f := func(s1, s2 uint64) bool {
		a := RandomBitVec(256, rng.New(s1))
		b := RandomBitVec(256, rng.New(s2))
		explicit := 0
		for i := 0; i < 256; i++ {
			explicit += a.Bipolar(i) * b.Bipolar(i)
		}
		return Dot(a, b) == explicit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitsRate(t *testing.T) {
	r := rng.New(10)
	v := NewBitVec(1 << 16)
	n := v.FlipBits(0.1, r)
	want := 6554
	if n < want*8/10 || n > want*12/10 {
		t.Fatalf("FlipBits(0.1) flipped %d of %d, want ~%d", n, 1<<16, want)
	}
	if v.OnesCount() != n {
		t.Fatalf("flips from zero vector: ones=%d, flipped=%d", v.OnesCount(), n)
	}
	if v.FlipBits(0, r) != 0 {
		t.Fatal("FlipBits(0) flipped bits")
	}
}

func TestRotateRandomStaysOrthogonalToSelf(t *testing.T) {
	// A random vector and its rotation should be near-orthogonal — the
	// property that justifies seed-rotated id generation.
	r := rng.New(11)
	const d = 4096
	v := RandomBitVec(d, r)
	for _, k := range []int{1, 2, 17, 64, 1000, d / 2} {
		dot := Dot(v, Rotate(v, k))
		if dot > 6*64 || dot < -6*64 {
			t.Errorf("dot(v, ρ(%d)v) = %d, expected near-orthogonal", k, dot)
		}
	}
}

func BenchmarkXor4096(b *testing.B) {
	r := rng.New(1)
	x := RandomBitVec(4096, r)
	y := RandomBitVec(4096, r)
	dst := NewBitVec(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorInto(dst, x, y)
	}
}

func BenchmarkRotate4096(b *testing.B) {
	r := rng.New(1)
	x := RandomBitVec(4096, r)
	dst := NewBitVec(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RotateInto(dst, x, 37)
	}
}

func BenchmarkDot4096(b *testing.B) {
	r := rng.New(1)
	x := RandomBitVec(4096, r)
	y := RandomBitVec(4096, r)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = Dot(x, y)
	}
	_ = sink
}
