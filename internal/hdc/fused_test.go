package hdc

import (
	"testing"

	"github.com/edge-hdc/generic/internal/rng"
)

const fusedGran = 128

// unfusedRef applies the historical three-pass sequence the fused kernels
// replace: accumulate, saturate, recompute the cumulative sub-norm ladder.
func unfusedRef(v, o Vec, bw int, sub []int64, add bool) int64 {
	if add {
		v.AddInto(o)
	} else {
		v.SubInto(o)
	}
	v.Saturate(bw)
	var acc int64
	for k := range sub {
		end := (k + 1) * fusedGran
		for i := k * fusedGran; i < end; i++ {
			acc += int64(v[i]) * int64(v[i])
		}
		sub[k] = acc
	}
	return acc
}

func randVec(r *rng.Rand, d int, span int32) Vec {
	v := NewVec(d)
	for i := range v {
		v[i] = int32(r.Intn(int(2*span+1))) - span
	}
	return v
}

func TestFusedKernelsMatchUnfusedSequence(t *testing.T) {
	r := rng.New(7)
	for _, bw := range []int{4, 8, 16} {
		hi := int32(1)<<(uint(bw)-1) - 1
		for trial := 0; trial < 20; trial++ {
			d := fusedGran * (1 + r.Intn(8))
			// Class values near the saturation boundary plus large updates,
			// so clamping actually triggers.
			base := randVec(r, d, hi)
			upd := randVec(r, d, 64)
			for _, add := range []bool{true, false} {
				vRef, vFused := base.Clone(), base.Clone()
				subRef := make([]int64, d/fusedGran)
				subFused := make([]int64, d/fusedGran)
				want := unfusedRef(vRef, upd, bw, subRef, add)
				var got int64
				if add {
					got = vFused.AddSatNorms(upd, bw, fusedGran, subFused)
				} else {
					got = vFused.SubSatNorms(upd, bw, fusedGran, subFused)
				}
				if got != want {
					t.Fatalf("bw=%d add=%v: norm2 %d, want %d", bw, add, got, want)
				}
				for i := range vRef {
					if vRef[i] != vFused[i] {
						t.Fatalf("bw=%d add=%v: element %d: fused %d, unfused %d",
							bw, add, i, vFused[i], vRef[i])
					}
				}
				for k := range subRef {
					if subRef[k] != subFused[k] {
						t.Fatalf("bw=%d add=%v: sub-norm %d: fused %d, unfused %d",
							bw, add, k, subFused[k], subRef[k])
					}
				}
			}
		}
	}
}

func TestFusedKernelPanics(t *testing.T) {
	v, o := NewVec(256), NewVec(256)
	sub := make([]int64, 2)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad bw", func() { v.AddSatNorms(o, 0, fusedGran, sub) })
	mustPanic("bad gran", func() { v.AddSatNorms(o, 16, 100, sub) })
	mustPanic("bad ladder", func() { v.SubSatNorms(o, 16, fusedGran, make([]int64, 3)) })
	mustPanic("len mismatch", func() { v.AddSatNorms(NewVec(128), 16, fusedGran, sub) })
}

// The acceptance bar: the fused kernel must beat the unfused
// sub/add-saturate-refresh sequence single-threaded.
func BenchmarkUpdateUnfused(b *testing.B) {
	r := rng.New(1)
	d := 4096
	v := randVec(r, d, 1<<14)
	o := randVec(r, d, 64)
	sub := make([]int64, d/fusedGran)
	b.SetBytes(int64(d * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unfusedRef(v, o, 16, sub, i%2 == 0)
	}
}

func BenchmarkUpdateFused(b *testing.B) {
	r := rng.New(1)
	d := 4096
	v := randVec(r, d, 1<<14)
	o := randVec(r, d, 64)
	sub := make([]int64, d/fusedGran)
	b.SetBytes(int64(d * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			v.AddSatNorms(o, 16, fusedGran, sub)
		} else {
			v.SubSatNorms(o, 16, fusedGran, sub)
		}
	}
}
