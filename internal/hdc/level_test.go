package hdc

import (
	"testing"

	"github.com/edge-hdc/generic/internal/rng"
)

func TestLevelLadderMonotoneDistance(t *testing.T) {
	r := rng.New(1)
	const d, bins = 4096, 64
	lt := NewLevelTable(d, bins, r)
	base := lt.Level(0)
	prev := -1
	for b := 1; b < bins; b++ {
		h := Hamming(base, lt.Level(b))
		if h <= prev {
			t.Fatalf("ladder distance not strictly increasing at bin %d: %d <= %d", b, h, prev)
		}
		prev = h
	}
	// Extremes must be near-orthogonal: hamming ≈ D/2.
	h := Hamming(base, lt.Level(bins-1))
	if h < d*45/100 || h > d*55/100 {
		t.Fatalf("extreme levels hamming = %d, want ≈ %d", h, d/2)
	}
}

func TestLevelNeighborsSimilar(t *testing.T) {
	r := rng.New(2)
	const d, bins = 4096, 64
	lt := NewLevelTable(d, bins, r)
	step := d / (2 * (bins - 1))
	for b := 1; b < bins; b++ {
		if h := Hamming(lt.Level(b-1), lt.Level(b)); h != step {
			t.Fatalf("neighbor hamming at bin %d = %d, want %d", b, h, step)
		}
	}
}

func TestLevelDeterministicBySeed(t *testing.T) {
	a := NewLevelTable(512, 16, rng.New(9))
	b := NewLevelTable(512, 16, rng.New(9))
	for i := 0; i < 16; i++ {
		if !a.Level(i).Equal(b.Level(i)) {
			t.Fatalf("level %d differs across equal seeds", i)
		}
	}
}

func TestQuantize(t *testing.T) {
	r := rng.New(3)
	lt := NewLevelTable(512, 8, r)
	cases := []struct {
		x, lo, hi float64
		want      int
	}{
		{0, 0, 1, 0},
		{0.999, 0, 1, 7},
		{1, 0, 1, 7},     // clamp at top
		{-5, 0, 1, 0},    // clamp below
		{10, 0, 1, 7},    // clamp above
		{0.5, 0, 1, 4},   // midpoint
		{0.124, 0, 1, 0}, // just below bin edge
		{0.126, 0, 1, 1}, // just above bin edge
		{5, -10, 10, 6},  // shifted range: (5+10)/20*8 = 6
		{3, 3, 3, 0},     // degenerate range
		{7, 9, 3, 0},     // inverted range
	}
	for _, c := range cases {
		if got := lt.Quantize(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Quantize(%v, %v, %v) = %d, want %d", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLevelTablePanicsOnBadBins(t *testing.T) {
	for _, bins := range []int{0, 1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLevelTable(bins=%d, d=64) did not panic", bins)
				}
			}()
			NewLevelTable(64, bins, rng.New(1))
		}()
	}
}

func TestIDGeneratorOrthogonality(t *testing.T) {
	// Rotated ids must stay pairwise near-orthogonal, the property that
	// lets GENERIC shrink the id memory 1024× (paper §4.3.1).
	r := rng.New(4)
	const d = 4096
	g := NewIDGenerator(d, r)
	ids := make([]*BitVec, 16)
	for k := range ids {
		ids[k] = NewBitVec(d)
		g.ID(k*17+1, ids[k])
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			dot := Dot(ids[i], ids[j])
			if dot > 6*64 || dot < -6*64 {
				t.Errorf("ids %d,%d dot = %d, expected near-orthogonal", i, j, dot)
			}
		}
	}
}

func TestIDZeroIsSeed(t *testing.T) {
	r := rng.New(5)
	g := NewIDGenerator(512, r)
	got := NewBitVec(512)
	g.ID(0, got)
	if !got.Equal(g.Seed()) {
		t.Fatal("ID(0) != seed")
	}
}

func TestIDDeterministic(t *testing.T) {
	g := NewIDGenerator(512, rng.New(6))
	a, b := NewBitVec(512), NewBitVec(512)
	g.ID(123, a)
	g.ID(123, b)
	if !a.Equal(b) {
		t.Fatal("ID(123) not deterministic")
	}
}

func BenchmarkLevelTableBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewLevelTable(4096, 64, rng.New(uint64(i)))
	}
}
