package hdc

import (
	"fmt"
	"math/bits"
)

// BinVec is a sign-binarized hypervector: one bit per dimension packed into
// uint64 words, bit 1 meaning bipolar +1 and bit 0 meaning −1 — the packed
// counterpart of a Vec that has been collapsed to its signs (v >= 0 → +1).
// It is the storage type of the binary inference engine: binarized class
// memories and binarized queries are BinVecs, and scoring is Hamming
// distance via XOR + popcount.
//
// Unlike BitVec (the encoding-side material type, which requires D to be a
// multiple of 64), BinVec accepts any positive dimensionality. The final
// storage word is partially used when D is not word-aligned; the unused high
// bits of that tail word are zero by invariant, which every kernel preserves
// and Hamming relies on (a ^ b of two masked tails contributes no phantom
// ones).
type BinVec struct {
	d     int
	words []uint64
}

// NewBinVec returns an all-zero (all −1 bipolar) binarized hypervector of d
// dimensions. Any positive d is accepted; the tail word is masked.
func NewBinVec(d int) *BinVec {
	if d <= 0 {
		panic(fmt.Sprintf("hdc: BinVec dimensionality %d must be positive", d))
	}
	return &BinVec{d: d, words: make([]uint64, binWords(d))}
}

// binWords returns the number of storage words for d dimensions.
func binWords(d int) int { return (d + WordBits - 1) / WordBits }

// tailMask returns the valid-bit mask of the final storage word for d
// dimensions: all ones when d is word-aligned, else the low d mod 64 bits.
func tailMask(d int) uint64 {
	if r := uint(d) % WordBits; r != 0 {
		return 1<<r - 1
	}
	return ^uint64(0)
}

// D returns the dimensionality.
func (v *BinVec) D() int { return v.d }

// Words exposes the packed storage. The slice must not be resized, and
// writers must preserve the tail-word invariant (bits at positions >= D in
// the final word stay zero).
func (v *BinVec) Words() []uint64 { return v.words }

// Bit reports dimension i as 0 or 1. It panics if i is out of range — the
// tail bits beyond D are not addressable.
func (v *BinVec) Bit(i int) int {
	v.checkIndex("Bit", i)
	return int(v.words[i/WordBits]>>(uint(i)%WordBits)) & 1
}

// SetBit sets dimension i to b (0 or 1). It panics if i is out of range, so
// the tail-word invariant cannot be violated through it.
func (v *BinVec) SetBit(i, b int) {
	v.checkIndex("SetBit", i)
	w, m := i/WordBits, uint64(1)<<(uint(i)%WordBits)
	if b != 0 {
		v.words[w] |= m
	} else {
		v.words[w] &^= m
	}
}

func (v *BinVec) checkIndex(op string, i int) {
	if i < 0 || i >= v.d {
		panic(fmt.Sprintf("hdc: BinVec.%s index %d out of range [0,%d)", op, i, v.d))
	}
}

// Bipolar reports dimension i as +1 or −1.
func (v *BinVec) Bipolar(i int) int { return 2*v.Bit(i) - 1 }

// OnesCount returns the number of 1 (+1) dimensions.
func (v *BinVec) OnesCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy of v.
func (v *BinVec) Clone() *BinVec {
	c := NewBinVec(v.d)
	copy(c.words, v.words)
	return c
}

// CopyFrom overwrites v with src. The dimensionalities must match.
//
//generic:hotpath
func (v *BinVec) CopyFrom(src *BinVec) {
	mustSameDim("BinVec.CopyFrom", src.d, v.d)
	copy(v.words, src.words)
}

// Equal reports whether v and o have identical dimensionality and bits.
//
//lint:ignore generic/dimguard Equal is a predicate: mismatched dimensionalities compare unequal rather than panic.
func (v *BinVec) Equal(o *BinVec) bool {
	if v.d != o.d {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// PackSigns binarizes src into v: bit i is 1 exactly when src[i] >= 0 — the
// same sign rule Vec quantization to one bit uses (v >= 0 → +1, v < 0 → −1),
// so packing a Quantize(1) class counter and binarizing the raw counter give
// identical bits. The tail word is masked by construction.
//
//generic:hotpath
func (v *BinVec) PackSigns(src Vec) {
	mustSameDim("BinVec.PackSigns", len(src), v.d)
	i := 0
	for w := range v.words {
		n := v.d - i
		if n > WordBits {
			n = WordBits
		}
		var word uint64
		for b := 0; b < n; b++ {
			if src[i] >= 0 {
				word |= 1 << uint(b)
			}
			i++
		}
		v.words[w] = word
	}
}

// Unpack materializes v as a bipolar integer vector: dst[i] = +1 when bit i
// is 1, −1 otherwise. dst must have length D.
//
//generic:hotpath
func (v *BinVec) Unpack(dst Vec) {
	mustSameDim("BinVec.Unpack", len(dst), v.d)
	for i := range dst {
		dst[i] = int32(2*(v.words[i/WordBits]>>(uint(i)%WordBits)&1)) - 1
	}
}

// Hamming returns the number of dimensions where v and o differ. With the
// tail-word invariant, a plain popcount over XORed words is exact at any D.
//
//generic:hotpath
func (v *BinVec) Hamming(o *BinVec) int {
	mustSameDim("BinVec.Hamming", o.d, v.d)
	h := 0
	for i, w := range v.words {
		h += bits.OnesCount64(w ^ o.words[i])
	}
	return h
}

// HammingPrefix returns the Hamming distance over the first dims dimensions
// only — the packed analogue of Vec.DotPrefix, used for reduced-dimension
// inference. It panics if dims is outside (0, D].
//
//generic:hotpath
func (v *BinVec) HammingPrefix(o *BinVec, dims int) int {
	mustSameDim("BinVec.HammingPrefix", o.d, v.d)
	if dims <= 0 || dims > v.d {
		panic(fmt.Sprintf("hdc: BinVec.HammingPrefix dims %d out of range (0,%d]", dims, v.d))
	}
	full := dims / WordBits
	h := 0
	for i := 0; i < full; i++ {
		h += bits.OnesCount64(v.words[i] ^ o.words[i])
	}
	if r := uint(dims) % WordBits; r != 0 {
		h += bits.OnesCount64((v.words[full] ^ o.words[full]) & (1<<r - 1))
	}
	return h
}

// Dot returns the bipolar dot product D − 2·hamming(v, o): identical vectors
// score D, orthogonal vectors ≈ 0 — the packed equivalent of Vec dot on two
// sign-binarized vectors.
//
//generic:hotpath
func (v *BinVec) Dot(o *BinVec) int {
	mustSameDim("BinVec.Dot", o.d, v.d)
	return v.d - 2*v.Hamming(o)
}

// String renders a short diagnostic form.
func (v *BinVec) String() string {
	return fmt.Sprintf("BinVec(D=%d, ones=%d)", v.d, v.OnesCount())
}
