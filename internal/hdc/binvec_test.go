package hdc

import (
	"testing"
	"testing/quick"

	"github.com/edge-hdc/generic/internal/rng"
)

// randomVec returns a deterministic integer vector with values in [-4, 4],
// including zeros so the sign rule's v >= 0 boundary is exercised.
func randomVec(d int, r *rng.Rand) Vec {
	v := NewVec(d)
	for i := range v {
		v[i] = int32(r.Intn(9)) - 4
	}
	return v
}

func randomBinVec(d int, r *rng.Rand) *BinVec {
	b := NewBinVec(d)
	b.PackSigns(randomVec(d, r))
	return b
}

func TestNewBinVecPanicsOnBadDim(t *testing.T) {
	for _, d := range []int{0, -1, -64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBinVec(%d) did not panic", d)
				}
			}()
			NewBinVec(d)
		}()
	}
}

func TestNewBinVecAcceptsUnalignedDims(t *testing.T) {
	for _, d := range []int{1, 63, 64, 65, 100, 127, 1000} {
		v := NewBinVec(d)
		if v.D() != d {
			t.Fatalf("D() = %d, want %d", v.D(), d)
		}
		if got, want := len(v.Words()), (d+63)/64; got != want {
			t.Fatalf("D=%d: %d words, want %d", d, got, want)
		}
	}
}

func TestBinVecBitSetGet(t *testing.T) {
	v := NewBinVec(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Bit(i) != 0 {
			t.Fatalf("fresh vector has bit %d set", i)
		}
		v.SetBit(i, 1)
		if v.Bit(i) != 1 || v.Bipolar(i) != 1 {
			t.Fatalf("SetBit(%d,1) not visible", i)
		}
		v.SetBit(i, 0)
		if v.Bit(i) != 0 || v.Bipolar(i) != -1 {
			t.Fatalf("SetBit(%d,0) not visible", i)
		}
	}
}

func TestBinVecIndexGuards(t *testing.T) {
	v := NewBinVec(100)
	for _, i := range []int{-1, 100, 127} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) on D=100 did not panic", i)
				}
			}()
			v.Bit(i)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetBit(%d) on D=100 did not panic", i)
				}
			}()
			v.SetBit(i, 1)
		}()
	}
}

func TestPackSignsSignRule(t *testing.T) {
	// The boundary case is zero: v >= 0 packs to 1 (+1), matching the
	// classifier's Quantize(1) sign rule.
	src := Vec{-2, -1, 0, 1, 2}
	v := NewBinVec(5)
	v.PackSigns(src)
	want := []int{0, 0, 1, 1, 1}
	for i, w := range want {
		if v.Bit(i) != w {
			t.Fatalf("bit %d = %d, want %d (src %d)", i, v.Bit(i), w, src[i])
		}
	}
}

func TestPackSignsTailInvariant(t *testing.T) {
	// Bits at positions >= D in the final word must stay zero even when the
	// source is all-nonnegative (which packs every addressable bit to 1).
	for _, d := range []int{1, 63, 65, 100, 127} {
		src := NewVec(d) // all zeros: every sign packs to 1
		v := NewBinVec(d)
		v.PackSigns(src)
		if v.OnesCount() != d {
			t.Fatalf("D=%d: OnesCount = %d, want %d", d, v.OnesCount(), d)
		}
		tail := v.Words()[len(v.Words())-1]
		if masked := tail & tailMask(d); masked != tail {
			t.Fatalf("D=%d: tail word %064b has phantom bits beyond D", d, tail)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		const d = 257 // unaligned on purpose
		r := rng.New(seed)
		src := randomVec(d, r)
		v := NewBinVec(d)
		v.PackSigns(src)
		back := NewVec(d)
		v.Unpack(back)
		for i := range src {
			want := int32(-1)
			if src[i] >= 0 {
				want = 1
			}
			if back[i] != want {
				return false
			}
		}
		// Re-packing the unpacked bipolar vector must be a fixed point.
		v2 := NewBinVec(d)
		v2.PackSigns(back)
		return v.Equal(v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// refHamming is the bit-at-a-time reference the packed kernel must match.
func refHamming(a, b *BinVec, dims int) int {
	h := 0
	for i := 0; i < dims; i++ {
		if a.Bit(i) != b.Bit(i) {
			h++
		}
	}
	return h
}

func TestHammingMatchesReference(t *testing.T) {
	for _, d := range []int{1, 63, 64, 65, 127, 128, 1000, 1024} {
		r := rng.New(uint64(d))
		a := randomBinVec(d, r)
		b := randomBinVec(d, r)
		if got, want := a.Hamming(b), refHamming(a, b, d); got != want {
			t.Fatalf("D=%d: Hamming = %d, reference = %d", d, got, want)
		}
		if a.Hamming(a) != 0 {
			t.Fatalf("D=%d: Hamming(a,a) != 0", d)
		}
	}
}

func TestHammingPrefixMatchesReference(t *testing.T) {
	const d = 1024
	r := rng.New(7)
	a := randomBinVec(d, r)
	b := randomBinVec(d, r)
	for _, dims := range []int{1, 63, 64, 65, 100, 512, 1023, 1024} {
		if got, want := a.HammingPrefix(b, dims), refHamming(a, b, dims); got != want {
			t.Fatalf("dims=%d: HammingPrefix = %d, reference = %d", dims, got, want)
		}
	}
	for _, dims := range []int{0, -1, d + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HammingPrefix(dims=%d) did not panic", dims)
				}
			}()
			a.HammingPrefix(b, dims)
		}()
	}
}

func TestBinVecDimensionGuards(t *testing.T) {
	a, b := NewBinVec(64), NewBinVec(128)
	for name, f := range map[string]func(){
		"Hamming":       func() { a.Hamming(b) },
		"HammingPrefix": func() { a.HammingPrefix(b, 64) },
		"Dot":           func() { a.Dot(b) },
		"CopyFrom":      func() { a.CopyFrom(b) },
		"PackSigns":     func() { a.PackSigns(NewVec(128)) },
		"Unpack":        func() { a.Unpack(NewVec(128)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s across dimensionalities did not panic", name)
				}
			}()
			f()
		}()
	}
	if a.Equal(b) {
		t.Fatal("Equal across dimensionalities should be false, not panic")
	}
}

func TestBinVecDotIdentity(t *testing.T) {
	// Dot = D − 2·hamming must agree with the explicit bipolar dot product,
	// including at unaligned D where the tail invariant carries the proof.
	f := func(s1, s2 uint64) bool {
		const d = 301
		a := randomBinVec(d, rng.New(s1))
		b := randomBinVec(d, rng.New(s2))
		explicit := 0
		for i := 0; i < d; i++ {
			explicit += a.Bipolar(i) * b.Bipolar(i)
		}
		return a.Dot(b) == explicit && a.Dot(a) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinVecCloneIndependence(t *testing.T) {
	r := rng.New(3)
	v := randomBinVec(200, r)
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone differs from original")
	}
	c.SetBit(5, 1-c.Bit(5))
	if v.Equal(c) {
		t.Fatal("mutating clone affected original")
	}
	w := NewBinVec(200)
	w.CopyFrom(v)
	if !w.Equal(v) {
		t.Fatal("CopyFrom differs from source")
	}
}

func FuzzBinVecPackHamming(f *testing.F) {
	f.Add(uint64(1), uint64(2), 65)
	f.Add(uint64(0), uint64(0), 1)
	f.Add(uint64(42), uint64(43), 1024)
	f.Fuzz(func(t *testing.T, s1, s2 uint64, dRaw int) {
		d := dRaw%1500 + 1
		if d < 1 {
			d += 1500
		}
		a := randomBinVec(d, rng.New(s1))
		b := randomBinVec(d, rng.New(s2))
		if got, want := a.Hamming(b), refHamming(a, b, d); got != want {
			t.Fatalf("D=%d: Hamming = %d, reference = %d", d, got, want)
		}
		if a.Hamming(b) != b.Hamming(a) {
			t.Fatalf("D=%d: Hamming not symmetric", d)
		}
		// Tail invariant survives packing random signs.
		tail := a.Words()[len(a.Words())-1]
		if tail&tailMask(d) != tail {
			t.Fatalf("D=%d: phantom tail bits after PackSigns", d)
		}
	})
}

func BenchmarkBinVecHamming4096(b *testing.B) {
	r := rng.New(1)
	x := randomBinVec(4096, r)
	y := randomBinVec(4096, r)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = x.Hamming(y)
	}
	_ = sink
}

func BenchmarkBinVecPackSigns4096(b *testing.B) {
	r := rng.New(1)
	src := randomVec(4096, r)
	dst := NewBinVec(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.PackSigns(src)
	}
}
