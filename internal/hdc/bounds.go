package hdc

import "fmt"

// MaxSatBits is the widest signed class-element bit-width the saturating
// kernels accept. int32 storage leaves 31 usable magnitude+sign bits; the
// accelerator's native memories are 16-bit, but the software model allows
// wider sweeps.
const MaxSatBits = 31

// satBounds is the single source of the signed saturation range for a bw-bit
// class element: [−2^(bw−1), 2^(bw−1)−1]. Every kernel that clamps
// (Vec.Saturate, Vec.QuantizeTo, the fused update kernels) derives its
// bounds here, so a bit-width is interpreted identically everywhere. It
// panics in the canonical "hdc:" shape when bw is out of range.
func satBounds(op string, bw int) (lo, hi int32) {
	if bw <= 0 || bw > MaxSatBits {
		panic(fmt.Sprintf("hdc: %s bit-width %d out of range [1,%d]", op, bw, MaxSatBits))
	}
	hi = int32(1)<<(uint(bw)-1) - 1
	return -hi - 1, hi
}

// mustSameDim panics in the canonical dimensionality-mismatch shape when
// got ≠ want. All two-vector kernels lead with it (or with a sibling
// checker), which generic/dimguard enforces mechanically.
func mustSameDim(op string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("hdc: %s dimensionality mismatch: got %d, want %d", op, got, want))
	}
}
