package hdc

import "fmt"

// Fused update kernels. GENERIC's retraining rule touches a class vector
// three times per update — accumulate (AddInto/SubInto), clamp (Saturate),
// and recompute the squared-norm ladder (one more full pass) — which is six
// full class-vector sweeps per misprediction. These kernels do the whole
// add/sub-saturate-renorm sequence in one pass per class, writing each
// element once and folding its square into the running sub-norm ladder as it
// goes. Results are bit-identical to the unfused sequence: both apply the
// same elementwise accumulate-then-clamp, and the ladder is the same
// cumulative sum.

// fusedCheck validates the shared preconditions of the fused kernels and
// returns the saturation bounds for bw, from the same source (satBounds)
// every other clamping kernel uses.
//
//generic:hotpath
func fusedCheck(op string, v, o Vec, bw, gran int, sub []int64) (lo, hi int32) {
	mustSameLen(op, v, o)
	if gran <= 0 || len(v)%gran != 0 {
		panic(fmt.Sprintf("hdc: %s granularity %d does not divide D=%d", op, gran, len(v)))
	}
	if len(sub) != len(v)/gran {
		panic(fmt.Sprintf("hdc: %s sub-norm ladder has %d entries, want %d", op, len(sub), len(v)/gran))
	}
	return satBounds(op, bw)
}

// AddSatNorms adds o into v, saturates every element to bw bits, and
// rebuilds the cumulative squared-norm ladder at granularity gran in the
// same pass: sub[k] becomes the squared norm of the first (k+1)·gran
// dimensions of the updated v. It returns the full squared norm (sub's last
// entry). Equivalent to AddInto + Saturate + a norm recompute, in one sweep.
func (v Vec) AddSatNorms(o Vec, bw, gran int, sub []int64) int64 {
	lo, hi := fusedCheck("Vec.AddSatNorms", v, o, bw, gran, sub)
	var acc int64
	k := 0
	for base := 0; base < len(v); base += gran {
		for i, end := base, base+gran; i < end; i++ {
			s := v[i] + o[i]
			if s > hi {
				s = hi
			} else if s < lo {
				s = lo
			}
			v[i] = s
			acc += int64(s) * int64(s)
		}
		sub[k] = acc
		k++
	}
	return acc
}

// SubSatNorms is AddSatNorms with subtraction: v -= o elementwise, saturated
// to bw bits, with the sub-norm ladder rebuilt in the same pass.
func (v Vec) SubSatNorms(o Vec, bw, gran int, sub []int64) int64 {
	lo, hi := fusedCheck("Vec.SubSatNorms", v, o, bw, gran, sub)
	var acc int64
	k := 0
	for base := 0; base < len(v); base += gran {
		for i, end := base, base+gran; i < end; i++ {
			s := v[i] - o[i]
			if s > hi {
				s = hi
			} else if s < lo {
				s = lo
			}
			v[i] = s
			acc += int64(s) * int64(s)
		}
		sub[k] = acc
		k++
	}
	return acc
}
