// Drift detection: a reference Profile captured at Fit/Binarize time, a
// PSI-style divergence against the rolling window, and a hysteresis-guarded
// Detector that turns sustained divergence into a drift alarm for the serve
// health machine.
package quality

import (
	"math"
	"sync"

	"github.com/edge-hdc/generic/internal/telemetry"
)

// A Profile is a reference distribution of predict behavior: the bucketed
// margin distribution and the class priors, both normalized to sum to one
// over their populated mass. Captured from calibration data at Fit/Binarize
// (Pipeline.captureProfile) or bootstrapped from the first healthy serving
// window (ProfileFromStats).
type Profile struct {
	Mode       string // "exact" or "binary" — margins are not comparable across modes
	Samples    int
	MeanMargin float64
	Margin     [MarginBuckets]float64
	Priors     [ClassSlots]float64
}

// BuildProfile builds a reference profile from per-sample margins and labels
// (labels may be shorter or empty; priors then cover what is present).
func BuildProfile(margins []float64, labels []int, mode string) *Profile {
	p := &Profile{Mode: mode, Samples: len(margins)}
	if len(margins) > 0 {
		for _, m := range margins {
			p.Margin[MarginBucket(m)]++
			p.MeanMargin += m
		}
		p.MeanMargin /= float64(len(margins))
		for i := range p.Margin {
			p.Margin[i] /= float64(len(margins))
		}
	}
	if len(labels) > 0 {
		for _, l := range labels {
			p.Priors[classSlot(l)]++
		}
		for i := range p.Priors {
			p.Priors[i] /= float64(len(labels))
		}
	}
	return p
}

// ProfileFromStats derives a profile from a window aggregate — the bootstrap
// path when a loaded model carries no calibration data: the first full
// serving window becomes the baseline.
func ProfileFromStats(st *Stats, mode string) *Profile {
	p := &Profile{Mode: mode, MeanMargin: st.MeanMargin()}
	total := st.BucketTotal()
	p.Samples = int(total)
	if total > 0 {
		for i := range p.Margin {
			p.Margin[i] = float64(st.Buckets[i]) / float64(total)
		}
	}
	var classes int64
	for i := range st.Classes {
		classes += st.Classes[i]
	}
	if classes > 0 {
		for i := range p.Priors {
			p.Priors[i] = float64(st.Classes[i]) / float64(classes)
		}
	}
	return p
}

// psiFloor is the smoothing floor applied to both distributions before the
// log-ratio: empty buckets must not blow the divergence up to infinity.
const psiFloor = 1e-4

// psi computes the Population Stability Index between a reference and a
// current distribution of equal length: Σ (q−p)·ln(q/p), floored at psiFloor
// per cell. Symmetric in sign structure, always >= 0. Conventional reading:
// < 0.1 stable, 0.1–0.25 moderate shift, > 0.25 drifted.
func psi(ref, cur []float64) float64 {
	var s float64
	for i := range ref {
		p, q := ref[i], cur[i]
		if p < psiFloor {
			p = psiFloor
		}
		if q < psiFloor {
			q = psiFloor
		}
		s += (q - p) * math.Log(q/p)
	}
	return s
}

// A Verdict is the outcome of one Detector.Check.
type Verdict struct {
	Checked   bool    // false: no reference yet or window under MinSamples
	PSI       float64 // max of the two divergences below
	MarginPSI float64 // margin-distribution divergence
	ClassPSI  float64 // prediction-mix vs class-priors divergence
	Active    bool    // alarm state after this check
	Tripped   bool    // this check transitioned the alarm off→on
}

// A Detector compares rolling windows against a reference profile with
// hysteresis: the alarm trips after Need consecutive checks at or above
// TripPSI and clears after Need consecutive checks at or below ClearPSI;
// anything between holds the current state (and resets both streaks), so a
// distribution hovering at the threshold cannot flap. Windows with fewer
// than MinSamples predicts are skipped entirely — small windows make PSI
// noise, not signal.
//
// All methods are safe for concurrent use; Check is expected from one
// monitor goroutine.
type Detector struct {
	TripPSI    float64
	ClearPSI   float64
	Need       int
	MinSamples int64

	mu      sync.Mutex
	ref     *Profile
	over    int
	under   int
	active  bool
	lastPSI float64
	checks  int64
	trips   int64
}

// NewDetector returns a detector over ref (nil: bootstrap later via SetRef)
// with conventional defaults: trip at PSI 0.25, clear at 0.1, three
// consecutive windows of at least 64 predicts each way.
func NewDetector(ref *Profile) *Detector {
	return &Detector{TripPSI: 0.25, ClearPSI: 0.1, Need: 3, MinSamples: 64, ref: ref}
}

// Ref returns the current reference profile (nil before bootstrap).
func (d *Detector) Ref() *Profile {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ref
}

// SetRef installs a new reference profile and resets the alarm state.
func (d *Detector) SetRef(p *Profile) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ref = p
	d.over, d.under = 0, 0
	d.active = false
	telemetry.QualityDriftActive.Set(0)
}

// Active reports whether the drift alarm is currently raised.
func (d *Detector) Active() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.active
}

// LastPSI returns the most recent checked divergence.
func (d *Detector) LastPSI() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastPSI
}

// Checks returns the number of performed (non-skipped) checks; Trips the
// number of off→on alarm transitions.
func (d *Detector) Checks() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checks
}

func (d *Detector) Trips() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.trips
}

// Check compares one window aggregate against the reference and advances the
// hysteresis state machine. Also feeds the telemetry drift instruments.
func (d *Detector) Check(st *Stats) Verdict {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := Verdict{Active: d.active}
	if d.ref == nil || st.Predicts < d.MinSamples {
		return v
	}
	total := st.BucketTotal()
	if total == 0 {
		return v
	}
	var cur [MarginBuckets]float64
	for i := range cur {
		cur[i] = float64(st.Buckets[i]) / float64(total)
	}
	var classes int64
	for i := range st.Classes {
		classes += st.Classes[i]
	}
	var mix [ClassSlots]float64
	if classes > 0 {
		for i := range mix {
			mix[i] = float64(st.Classes[i]) / float64(classes)
		}
	}
	v.MarginPSI = psi(d.ref.Margin[:], cur[:])
	v.ClassPSI = psi(d.ref.Priors[:], mix[:])
	v.PSI = v.MarginPSI
	if v.ClassPSI > v.PSI {
		v.PSI = v.ClassPSI
	}
	v.Checked = true
	d.checks++
	d.lastPSI = v.PSI
	telemetry.QualityDriftChecks.Inc()
	telemetry.QualityDriftPSIMicro.Set(int64(v.PSI * 1e6))

	switch {
	case v.PSI >= d.TripPSI:
		d.over++
		d.under = 0
	case v.PSI <= d.ClearPSI:
		d.under++
		d.over = 0
	default:
		d.over, d.under = 0, 0
	}
	if !d.active && d.over >= d.Need {
		d.active = true
		d.trips++
		v.Tripped = true
		telemetry.QualityDriftTrips.Inc()
	}
	if d.active && d.under >= d.Need {
		d.active = false
	}
	v.Active = d.active
	if d.active {
		telemetry.QualityDriftActive.Set(1)
	} else {
		telemetry.QualityDriftActive.Set(0)
	}
	return v
}
