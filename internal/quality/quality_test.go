package quality

import (
	"sync"
	"testing"
)

// deterministic (class, margin) stream: goroutine g, step i.
func obsFor(g, i int) (class int, margin float64) {
	class = (g*7 + i) % 5
	margin = float64((g*131+i*17)%1000) / 1000
	return class, margin
}

// TestObserverRaceDeterministic hammers one observer from many goroutines
// while a rotator spins, then proves the cumulative aggregates are exactly
// what a serial oracle produces: the hot path never resets, so rotation can
// neither lose nor double-count an observation.
func TestObserverRaceDeterministic(t *testing.T) {
	const (
		goroutines = 8
		perG       = 5000
		rotations  = 200
	)

	obs := NewObserver()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				class, margin := obsFor(g, i)
				obs.ObservePredict(class, margin)
				if i%10 == 0 {
					obs.ObserveAdapt(class, i%3 == 0)
				}
				if i%25 == 0 {
					obs.ObserveShadow(i%50 == 0)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < rotations; r++ {
			obs.Rotate()
			obs.Window() // concurrent reads must be race-free too
		}
	}()
	wg.Wait()
	<-done
	obs.Rotate() // final snapshot after all writers joined

	oracle := NewObserver()
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			class, margin := obsFor(g, i)
			oracle.ObservePredict(class, margin)
			if i%10 == 0 {
				oracle.ObserveAdapt(class, i%3 == 0)
			}
			if i%25 == 0 {
				oracle.ObserveShadow(i%50 == 0)
			}
		}
	}

	got, want := obs.Total(), oracle.Total()
	got.At, got.SpanNS = 0, 0
	want.At, want.SpanNS = 0, 0
	if got != want {
		t.Fatalf("concurrent aggregates diverged from serial oracle:\n got %+v\nwant %+v", got, want)
	}

	// Window after the final rotation still satisfies the invariants.
	w := obs.Window()
	if w.Predicts != w.BucketTotal() {
		t.Fatalf("window predicts %d != bucket total %d", w.Predicts, w.BucketTotal())
	}
	var classes int64
	for i := range w.Classes {
		classes += w.Classes[i]
	}
	if w.Predicts != classes {
		t.Fatalf("window predicts %d != class total %d", w.Predicts, classes)
	}
}

func TestWindowDifferencing(t *testing.T) {
	obs := NewObserver()
	for i := 0; i < 100; i++ {
		obs.ObservePredict(i%3, 0.5)
	}
	obs.Rotate()
	for i := 0; i < 40; i++ {
		obs.ObservePredict(0, 0.25)
	}
	w := obs.Window()
	if w.Predicts != 40 {
		t.Fatalf("window predicts = %d, want 40 (post-rotation only)", w.Predicts)
	}
	if w.Classes[0] != 40 || w.Classes[1] != 0 {
		t.Fatalf("window class mix = %v, want all 40 in class 0", w.Classes[:3])
	}
	tot := obs.Total()
	if tot.Predicts != 140 {
		t.Fatalf("total predicts = %d, want 140", tot.Predicts)
	}

	// After the ring wraps, the window spans the ringSlots-1 complete
	// intervals since the oldest live snapshot plus the in-progress one
	// (empty here: the last iteration rotates after its observe).
	for r := 0; r < ringSlots+2; r++ {
		obs.ObservePredict(1, 0.9)
		obs.Rotate()
	}
	w = obs.Window()
	if w.Predicts != ringSlots-1 {
		t.Fatalf("wrapped window predicts = %d, want %d", w.Predicts, int64(ringSlots-1))
	}
}

func TestMarginBucketsAndQuantiles(t *testing.T) {
	// Buckets must tile [0,1]: every margin lands in a bucket whose bounds
	// contain it.
	for i := 0; i <= 1000; i++ {
		m := float64(i) / 1000
		b := MarginBucket(m)
		if b < 0 || b >= MarginBuckets {
			t.Fatalf("MarginBucket(%v) = %d out of range", m, b)
		}
		if m > BucketUpper(b)+1e-12 {
			t.Fatalf("margin %v above its bucket %d upper bound %v", m, b, BucketUpper(b))
		}
		if b > 0 && m < BucketUpper(b-1)-1e-12 {
			t.Fatalf("margin %v below bucket %d lower bound %v", m, b, BucketUpper(b-1))
		}
	}

	obs := NewObserver()
	for i := 0; i < 1000; i++ {
		obs.ObservePredict(0, float64(i)/1000)
	}
	st := obs.Total()
	p10, p50, p90 := st.MarginQuantile(0.10), st.MarginQuantile(0.50), st.MarginQuantile(0.90)
	if !(p10 <= p50 && p50 <= p90) {
		t.Fatalf("quantiles not monotone: p10=%v p50=%v p90=%v", p10, p50, p90)
	}
	// Uniform margins: the median bucket's upper bound must be near 0.5
	// (sqrt bucketing is conservative by at most one bucket width).
	if p50 < 0.4 || p50 > 0.65 {
		t.Fatalf("uniform-margin p50 = %v, want ≈0.5", p50)
	}
	if mean := st.MeanMargin(); mean < 0.45 || mean > 0.55 {
		t.Fatalf("uniform-margin mean = %v, want ≈0.5", mean)
	}
}

func TestLowMarginRate(t *testing.T) {
	obs := NewObserver()
	obs.SetLowMarginThreshold(0.10)
	for i := 0; i < 80; i++ {
		obs.ObservePredict(0, 0.5)
	}
	for i := 0; i < 20; i++ {
		obs.ObservePredict(0, 0.01)
	}
	st := obs.Total()
	if got := st.LowMarginRate(); got < 0.19 || got > 0.21 {
		t.Fatalf("low-margin rate = %v, want 0.2", got)
	}
}

func TestClassSlotOverflow(t *testing.T) {
	obs := NewObserver()
	obs.ObservePredict(-1, 0.5)
	obs.ObservePredict(TrackedClasses+5, 0.5)
	obs.ObservePredict(TrackedClasses, 0.5)
	st := obs.Total()
	if st.Classes[TrackedClasses] != 3 {
		t.Fatalf("overflow slot = %d, want 3", st.Classes[TrackedClasses])
	}
}

func TestAdaptAndShadowRates(t *testing.T) {
	obs := NewObserver()
	for i := 0; i < 10; i++ {
		obs.ObserveAdapt(1, i < 7)
	}
	st := obs.Total()
	acc, ok := st.AdaptAccuracy()
	if !ok || acc != 0.7 {
		t.Fatalf("adapt accuracy = %v,%v, want 0.7,true", acc, ok)
	}
	cacc, ok := st.ClassAdaptAccuracy(1)
	if !ok || cacc != 0.7 {
		t.Fatalf("class-1 adapt accuracy = %v,%v, want 0.7,true", cacc, ok)
	}
	if _, ok := st.ClassAdaptAccuracy(2); ok {
		t.Fatal("class-2 adapt accuracy reported with no samples")
	}

	for i := 0; i < 8; i++ {
		obs.ObserveShadow(i != 0)
	}
	st = obs.Total()
	rate, ok := st.ShadowDisagreeRate()
	if !ok || rate != 0.125 {
		t.Fatalf("shadow disagree rate = %v,%v, want 0.125,true", rate, ok)
	}
}

// statsWithMargins builds a window aggregate from explicit margins/classes.
func statsWithMargins(margins []float64, classes []int) *Stats {
	obs := NewObserver()
	for i, m := range margins {
		obs.ObservePredict(classes[i%len(classes)], m)
	}
	st := obs.Total()
	return &st
}

func rampMargins(lo, hi float64, n int) []float64 {
	ms := make([]float64, n)
	for i := range ms {
		ms[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return ms
}

func TestDetectorTripsOnShift(t *testing.T) {
	ref := BuildProfile(rampMargins(0.3, 0.6, 256), []int{0, 1}, "exact")
	det := NewDetector(ref)
	det.Need = 3
	det.MinSamples = 64

	// Matching distribution: never trips.
	same := statsWithMargins(rampMargins(0.3, 0.6, 256), []int{0, 1})
	for i := 0; i < 10; i++ {
		if v := det.Check(same); v.Active {
			t.Fatalf("alarm raised on matching distribution (check %d, psi %v)", i, v.PSI)
		}
	}

	// Collapsed margins: trips after exactly Need consecutive checks.
	shifted := statsWithMargins(rampMargins(0.0, 0.05, 256), []int{0, 1})
	for i := 1; i <= det.Need; i++ {
		v := det.Check(shifted)
		if !v.Checked {
			t.Fatalf("check %d skipped", i)
		}
		if v.PSI < det.TripPSI {
			t.Fatalf("shifted distribution psi = %v, want >= %v", v.PSI, det.TripPSI)
		}
		wantActive := i == det.Need
		if v.Active != wantActive || v.Tripped != wantActive {
			t.Fatalf("check %d: active=%v tripped=%v, want both %v", i, v.Active, v.Tripped, wantActive)
		}
	}
	if det.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", det.Trips())
	}

	// Recovery: clears only after Need consecutive clean checks.
	for i := 1; i <= det.Need; i++ {
		v := det.Check(same)
		wantActive := i != det.Need
		if v.Active != wantActive {
			t.Fatalf("recovery check %d: active=%v, want %v", i, v.Active, wantActive)
		}
	}
	if det.Trips() != 1 {
		t.Fatalf("trips after recovery = %d, want 1 (clearing is not a trip)", det.Trips())
	}
}

func TestDetectorHysteresisPreventsFlapping(t *testing.T) {
	ref := BuildProfile(rampMargins(0.3, 0.6, 256), []int{0, 1}, "exact")
	det := NewDetector(ref)
	det.Need = 3

	same := statsWithMargins(rampMargins(0.3, 0.6, 256), []int{0, 1})
	shifted := statsWithMargins(rampMargins(0.0, 0.05, 256), []int{0, 1})

	// Alternating windows never sustain Need consecutive highs: no trip.
	for i := 0; i < 20; i++ {
		st := same
		if i%2 == 0 {
			st = shifted
		}
		if v := det.Check(st); v.Active {
			t.Fatalf("flapping input raised the alarm at check %d", i)
		}
	}
	if det.Trips() != 0 {
		t.Fatalf("trips = %d, want 0", det.Trips())
	}
}

func TestDetectorClassMixDrift(t *testing.T) {
	// Same margins, skewed prediction mix: the class-PSI leg must catch it.
	ref := BuildProfile(rampMargins(0.3, 0.6, 256), []int{0, 1}, "exact")
	det := NewDetector(ref)
	skew := statsWithMargins(rampMargins(0.3, 0.6, 256), []int{0}) // all class 0
	var v Verdict
	for i := 0; i < det.Need; i++ {
		v = det.Check(skew)
	}
	if !v.Active {
		t.Fatalf("class-mix skew did not trip (classPSI %v, marginPSI %v)", v.ClassPSI, v.MarginPSI)
	}
}

func TestDetectorSkipsSmallWindows(t *testing.T) {
	ref := BuildProfile(rampMargins(0.3, 0.6, 256), []int{0, 1}, "exact")
	det := NewDetector(ref)
	tiny := statsWithMargins(rampMargins(0.0, 0.05, 8), []int{0, 1})
	for i := 0; i < 10; i++ {
		if v := det.Check(tiny); v.Checked || v.Active {
			t.Fatalf("under-sampled window was checked (predicts %d < %d)", tiny.Predicts, det.MinSamples)
		}
	}
	if det.Checks() != 0 {
		t.Fatalf("checks = %d, want 0", det.Checks())
	}
}

func TestDetectorBootstrap(t *testing.T) {
	det := NewDetector(nil)
	win := statsWithMargins(rampMargins(0.3, 0.6, 256), []int{0, 1})
	if v := det.Check(win); v.Checked {
		t.Fatal("check ran with no reference profile")
	}
	det.SetRef(ProfileFromStats(win, "exact"))
	v := det.Check(win)
	if !v.Checked {
		t.Fatal("check skipped after bootstrap")
	}
	if v.PSI > 0.01 {
		t.Fatalf("self-comparison psi = %v, want ≈0", v.PSI)
	}
}
