// Package quality is the model-quality observability layer: where
// internal/telemetry answers "is the engine fast and alive", quality answers
// "is the model still right". It rides signals the classifier already
// computes for free — the top-2 score margin of every predict (dot gap in
// exact mode, Hamming gap in binary mode), the winner class, the
// predict-before-apply outcome of every labeled adapt, and the binary-vs-
// exact agreement of shadow-sampled predicts — and folds them into:
//
//   - cumulative lock-free counters (margin sum, sqrt-bucketed margin
//     distribution, per-class prediction mix, adapt accuracy, shadow
//     disagreement), observed with a handful of atomic adds per predict;
//   - a snapshot ring that turns the cumulative counters into rolling-window
//     aggregates by differencing (no hot-path resets, so concurrent
//     observation and window rotation can never lose or double-count an
//     event — aggregates stay exactly equal to a serial oracle);
//   - a PSI drift detector (profile.go) comparing the rolling window against
//     a reference profile captured at Fit/Binarize time.
//
// The package is stdlib-only, allocation-free on the observe path, and —
// like telemetry — never feeds model state: every signal flows outward to
// operators (/quality, /metrics, the serve health machine), never back into
// the classifier, so determinism and replayability are unaffected. Time is
// drawn only through telemetry.Now.
package quality

import (
	"math"
	"sync/atomic"

	"github.com/edge-hdc/generic/internal/telemetry"
)

const (
	// MarginBuckets is the number of sqrt-scaled margin histogram buckets.
	// Normalized margins live in [0,1] and pile up near zero for hard
	// queries, so bucket i covers (i/N)²..((i+1)/N)² — fine resolution where
	// the decisions are close, coarse where they are easy.
	MarginBuckets = 24

	// TrackedClasses is the number of class labels with individual slots in
	// the prediction-mix and adapt-accuracy aggregates; labels at or above
	// it share one overflow slot. All paper benchmarks fit (max 26 classes).
	TrackedClasses = 32

	// ClassSlots is TrackedClasses plus the shared overflow slot.
	ClassSlots = TrackedClasses + 1

	// ringSlots is the snapshot ring depth: Window spans at most ringSlots
	// rotation intervals.
	ringSlots = 8

	// DefaultLowMarginMicro is the default low-margin threshold (margin
	// 0.05, in micro-units): below it a predict counts as "barely decided".
	DefaultLowMarginMicro = 50_000
)

// MarginBucket maps a normalized margin in [0,1] to its histogram bucket.
//
//generic:hotpath
func MarginBucket(m float64) int {
	if m <= 0 {
		return 0
	}
	if m >= 1 {
		return MarginBuckets - 1
	}
	i := int(math.Sqrt(m) * MarginBuckets)
	if i >= MarginBuckets {
		i = MarginBuckets - 1
	}
	return i
}

// BucketUpper returns bucket i's inclusive upper margin bound.
func BucketUpper(i int) float64 {
	f := float64(i+1) / MarginBuckets
	return f * f
}

// classSlot maps a class label to its aggregate slot, folding out-of-range
// labels (negative or >= TrackedClasses) into the overflow slot.
//
//generic:hotpath
func classSlot(class int) int {
	if class < 0 || class >= TrackedClasses {
		return TrackedClasses
	}
	return class
}

// counters is one cumulative (or snapshotted) set of quality aggregates.
// Every field is atomic so the ring can copy a consistent-enough snapshot
// under concurrent observation without locks; exact cross-field consistency
// is recovered by the window invariant (see Stats).
type counters struct {
	predicts       atomic.Int64
	marginSumMicro atomic.Int64
	lowMargin      atomic.Int64
	buckets        [MarginBuckets]atomic.Int64
	classes        [ClassSlots]atomic.Int64

	adaptEvals      atomic.Int64
	adaptHits       atomic.Int64
	adaptClassEvals [ClassSlots]atomic.Int64
	adaptClassHits  [ClassSlots]atomic.Int64

	shadowSamples  atomic.Int64
	shadowDisagree atomic.Int64
}

// load copies the counter set into a plain Stats value.
func (c *counters) load(st *Stats) {
	st.Predicts = c.predicts.Load()
	st.MarginSumMicro = c.marginSumMicro.Load()
	st.LowMargin = c.lowMargin.Load()
	for i := range c.buckets {
		st.Buckets[i] = c.buckets[i].Load()
	}
	for i := range c.classes {
		st.Classes[i] = c.classes[i].Load()
	}
	st.AdaptEvals = c.adaptEvals.Load()
	st.AdaptHits = c.adaptHits.Load()
	for i := range c.adaptClassEvals {
		st.AdaptClassEvals[i] = c.adaptClassEvals[i].Load()
		st.AdaptClassHits[i] = c.adaptClassHits[i].Load()
	}
	st.ShadowSamples = c.shadowSamples.Load()
	st.ShadowDisagree = c.shadowDisagree.Load()
}

// store overwrites the counter set from a plain Stats value (ring slots
// only; the cumulative set is never stored into).
func (c *counters) store(st *Stats) {
	c.predicts.Store(st.Predicts)
	c.marginSumMicro.Store(st.MarginSumMicro)
	c.lowMargin.Store(st.LowMargin)
	for i := range c.buckets {
		c.buckets[i].Store(st.Buckets[i])
	}
	for i := range c.classes {
		c.classes[i].Store(st.Classes[i])
	}
	c.adaptEvals.Store(st.AdaptEvals)
	c.adaptHits.Store(st.AdaptHits)
	for i := range c.adaptClassEvals {
		c.adaptClassEvals[i].Store(st.AdaptClassEvals[i])
		c.adaptClassHits[i].Store(st.AdaptClassHits[i])
	}
	c.shadowSamples.Store(st.ShadowSamples)
	c.shadowDisagree.Store(st.ShadowDisagree)
}

// ringSlot is one published snapshot of the cumulative counters.
type ringSlot struct {
	at atomic.Int64 // telemetry.Now at snapshot time
	c  counters
}

// An Observer accumulates quality signals. Observation methods are lock-free
// and safe for any concurrency; Rotate must be called from a single
// goroutine (the monitor loop), while Window/Total may race freely with
// everything.
//
// The hot path only ever *adds* to the cumulative set — windows are formed
// by differencing ring snapshots at read time — so no observation is ever
// lost or double-counted across a rotation, no matter the interleaving.
type Observer struct {
	cum            counters
	lowMarginMicro atomic.Int64 // threshold for the low-margin counter
	shadowSeq      atomic.Int64 // global shadow-sampling tick
	head           atomic.Int64 // rotations completed; slot (head-1)%ringSlots is newest
	bootAt         int64        // telemetry.Now at construction
	ring           [ringSlots]ringSlot
}

// NewObserver returns an Observer with the default low-margin threshold.
func NewObserver() *Observer {
	o := &Observer{bootAt: telemetry.Now()}
	o.lowMarginMicro.Store(DefaultLowMarginMicro)
	return o
}

// Default is the process-wide observer the classifier records into;
// cmd/generic-serve rotates and exposes it.
var Default = NewObserver()

// SetLowMarginThreshold sets the margin below which a predict counts as
// low-margin. Applies to future observations only.
func (o *Observer) SetLowMarginThreshold(margin float64) {
	o.lowMarginMicro.Store(int64(margin * 1e6))
}

// ObservePredict records one predict outcome: the winner class and the
// normalized top-2 margin in [0,1]. Also feeds the telemetry margin
// histogram and low-margin counter.
//
//generic:hotpath
func (o *Observer) ObservePredict(class int, margin float64) {
	if margin < 0 {
		margin = 0
	} else if margin > 1 {
		margin = 1
	}
	mi := int64(margin * 1e6)
	o.cum.predicts.Add(1)
	o.cum.marginSumMicro.Add(mi)
	o.cum.buckets[MarginBucket(margin)].Add(1)
	o.cum.classes[classSlot(class)].Add(1)
	if mi < o.lowMarginMicro.Load() {
		o.cum.lowMargin.Add(1)
		telemetry.QualityLowMargin.Inc()
	}
	telemetry.QualityMarginMicro.Observe(mi)
}

// ObserveAdapt records one labeled adapt as a streaming accuracy sample:
// label is the ground truth, correct whether the predict-before-apply
// matched it.
//
//generic:hotpath
func (o *Observer) ObserveAdapt(label int, correct bool) {
	s := classSlot(label)
	o.cum.adaptEvals.Add(1)
	o.cum.adaptClassEvals[s].Add(1)
	telemetry.QualityAdaptEvals.Inc()
	if correct {
		o.cum.adaptHits.Add(1)
		o.cum.adaptClassHits[s].Add(1)
		telemetry.QualityAdaptHits.Inc()
	}
}

// ObserveShadow records one shadow-mode comparison: agree is whether the
// binary fast path and the retained integer counters picked the same class.
//
//generic:hotpath
func (o *Observer) ObserveShadow(agree bool) {
	o.cum.shadowSamples.Add(1)
	telemetry.QualityShadowSamples.Inc()
	if !agree {
		o.cum.shadowDisagree.Add(1)
		telemetry.QualityShadowDisagree.Inc()
	}
}

// ShadowTick advances the global shadow-sampling sequence and returns it;
// callers sample when ShadowTick()%every == 0.
//
//generic:hotpath
func (o *Observer) ShadowTick() int64 { return o.shadowSeq.Add(1) }

// Rotate publishes a snapshot of the cumulative counters into the ring.
// Call it from one goroutine at the window cadence; Window then spans at
// most ringSlots rotation intervals.
func (o *Observer) Rotate() {
	var st Stats
	o.cum.load(&st)
	h := o.head.Load()
	slot := &o.ring[h%ringSlots]
	slot.c.store(&st)
	slot.at.Store(telemetry.Now())
	o.head.Add(1) // publish: readers only trust slots below head
}

// Total returns the cumulative aggregates since construction.
func (o *Observer) Total() Stats {
	var st Stats
	o.cum.load(&st)
	st.At = telemetry.Now()
	st.SpanNS = st.At - o.bootAt
	return st
}

// Window returns the rolling-window aggregates: the cumulative counters
// minus the oldest live ring snapshot. Before the first rotation the window
// is everything since construction. Safe to call concurrently with
// observation and rotation; see sub for the invariants that survive races.
func (o *Observer) Window() Stats {
	cur := o.Total()
	h := o.head.Load()
	if h == 0 {
		return cur
	}
	// Oldest live slot: with fewer than ringSlots rotations it is slot 0;
	// once the ring wraps it is the next slot Rotate will overwrite.
	idx := int64(0)
	if h >= ringSlots {
		idx = h % ringSlots
	}
	var base Stats
	slot := &o.ring[idx]
	baseAt := slot.at.Load()
	slot.c.load(&base)
	return sub(cur, &base, baseAt)
}

// Stats is a plain-value aggregate: either cumulative (Total) or a window
// difference (Window). Invariants that hold even under racy snapshots:
// counts are non-negative, Predicts >= sum(Buckets) is within in-flight
// observations of equality, and ratios are computed against the matching
// denominators.
type Stats struct {
	At     int64 // telemetry.Now at the fresh edge
	SpanNS int64 // window span in nanoseconds

	Predicts       int64
	MarginSumMicro int64
	LowMargin      int64
	Buckets        [MarginBuckets]int64
	Classes        [ClassSlots]int64

	AdaptEvals      int64
	AdaptHits       int64
	AdaptClassEvals [ClassSlots]int64
	AdaptClassHits  [ClassSlots]int64

	ShadowSamples  int64
	ShadowDisagree int64
}

// sub returns cur minus base, clamping each field at zero: a ring slot
// written concurrently with observation can be fresher field-by-field than
// the cumulative load that preceded it, and a clamped zero beats a negative
// count in every downstream ratio.
func sub(cur Stats, base *Stats, baseAt int64) Stats {
	d := Stats{At: cur.At, SpanNS: cur.At - baseAt}
	d.Predicts = clamp0(cur.Predicts - base.Predicts)
	d.MarginSumMicro = clamp0(cur.MarginSumMicro - base.MarginSumMicro)
	d.LowMargin = clamp0(cur.LowMargin - base.LowMargin)
	for i := range d.Buckets {
		d.Buckets[i] = clamp0(cur.Buckets[i] - base.Buckets[i])
	}
	for i := range d.Classes {
		d.Classes[i] = clamp0(cur.Classes[i] - base.Classes[i])
	}
	d.AdaptEvals = clamp0(cur.AdaptEvals - base.AdaptEvals)
	d.AdaptHits = clamp0(cur.AdaptHits - base.AdaptHits)
	for i := range d.AdaptClassEvals {
		d.AdaptClassEvals[i] = clamp0(cur.AdaptClassEvals[i] - base.AdaptClassEvals[i])
		d.AdaptClassHits[i] = clamp0(cur.AdaptClassHits[i] - base.AdaptClassHits[i])
	}
	d.ShadowSamples = clamp0(cur.ShadowSamples - base.ShadowSamples)
	d.ShadowDisagree = clamp0(cur.ShadowDisagree - base.ShadowDisagree)
	return d
}

func clamp0(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// BucketTotal returns the number of predicts in the margin histogram — the
// quantile denominator (preferred over Predicts under racy snapshots).
func (s *Stats) BucketTotal() int64 {
	var t int64
	for i := range s.Buckets {
		t += s.Buckets[i]
	}
	return t
}

// MarginQuantile returns a conservative q-quantile of the window's margins:
// the upper bound of the bucket holding the rank-⌈q·n⌉ observation. Zero
// when the window is empty.
func (s *Stats) MarginQuantile(q float64) float64 {
	total := s.BucketTotal()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	last := 0
	for i := range s.Buckets {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		last = i
		if cum += n; cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(last)
}

// MeanMargin returns the window's mean normalized margin, or 0 when empty.
func (s *Stats) MeanMargin() float64 {
	if s.Predicts == 0 {
		return 0
	}
	return float64(s.MarginSumMicro) / 1e6 / float64(s.Predicts)
}

// LowMarginRate returns the fraction of predicts below the low-margin
// threshold, or 0 when empty.
func (s *Stats) LowMarginRate() float64 {
	if s.Predicts == 0 {
		return 0
	}
	return float64(s.LowMargin) / float64(s.Predicts)
}

// ClassMix returns the per-slot fraction of predictions over the first n
// class slots (n is clamped to ClassSlots). Zero-filled when empty.
func (s *Stats) ClassMix(n int) []float64 {
	if n < 0 {
		n = 0
	} else if n > ClassSlots {
		n = ClassSlots
	}
	mix := make([]float64, n)
	var total int64
	for i := range s.Classes {
		total += s.Classes[i]
	}
	if total == 0 {
		return mix
	}
	for i := 0; i < n; i++ {
		mix[i] = float64(s.Classes[i]) / float64(total)
	}
	return mix
}

// AdaptAccuracy returns the window's streaming accuracy over labeled adapt
// traffic and whether any samples exist.
func (s *Stats) AdaptAccuracy() (float64, bool) {
	if s.AdaptEvals == 0 {
		return 0, false
	}
	return float64(s.AdaptHits) / float64(s.AdaptEvals), true
}

// ClassAdaptAccuracy returns slot i's streaming accuracy and whether any
// samples exist for it.
func (s *Stats) ClassAdaptAccuracy(i int) (float64, bool) {
	if i < 0 || i >= ClassSlots || s.AdaptClassEvals[i] == 0 {
		return 0, false
	}
	return float64(s.AdaptClassHits[i]) / float64(s.AdaptClassEvals[i]), true
}

// ShadowDisagreeRate returns the binary-vs-exact disagreement rate over the
// window's shadow samples and whether any exist.
func (s *Stats) ShadowDisagreeRate() (float64, bool) {
	if s.ShadowSamples == 0 {
		return 0, false
	}
	return float64(s.ShadowDisagree) / float64(s.ShadowSamples), true
}

// Package-level wrappers over Default, mirroring telemetry's style.

// ObservePredict records a predict outcome into the default observer.
//
//generic:hotpath
func ObservePredict(class int, margin float64) { Default.ObservePredict(class, margin) }

// ObserveAdapt records a labeled-adapt accuracy sample into the default
// observer.
//
//generic:hotpath
func ObserveAdapt(label int, correct bool) { Default.ObserveAdapt(label, correct) }

// ObserveShadow records a shadow comparison into the default observer.
//
//generic:hotpath
func ObserveShadow(agree bool) { Default.ObserveShadow(agree) }

// ShadowTick advances the default observer's shadow-sampling sequence.
//
//generic:hotpath
func ShadowTick() int64 { return Default.ShadowTick() }
