// Package telemetry is the runtime observability layer of the engine: cheap
// always-on instruments (atomic counters, gauges, fixed-bucket latency
// histograms) threaded through every hot path — encoding, classification,
// training, clustering, fault management, and the accelerator simulation —
// plus a deterministic JSON exposition that cmd/generic-serve publishes on
// GET /metrics.
//
// The package is stdlib-only and allocation-free on the hot path: an
// observation is two monotonic-clock reads and a handful of atomic adds, so
// instrumented kernels stay within the repository's <5% overhead budget.
// Every type is safe for concurrent use.
//
// Unlike the rest of internal/, telemetry is sanctioned to read the wall
// clock (see the detrand analyzer's skip list): observed durations feed
// operator dashboards, never model state, so replayability is unaffected.
// Model-state code must keep drawing time only through explicit seeds.
//
// Exposition is expvar-compatible: Registry, Counter, Gauge, and Histogram
// all implement the expvar.Var contract (String() returning valid JSON), so
// a registry can be expvar.Publish'ed as one composite var. Keys are emitted
// in sorted order and histograms list only their populated buckets, making
// snapshots stable enough for golden tests.
package telemetry

import (
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// epoch anchors the package's monotonic clock; Now measures against it.
var epoch = time.Now()

// Now returns the telemetry clock in nanoseconds: monotonic, comparable only
// to other Now values. Pair with Histogram.ObserveSince.
//
//generic:hotpath
func Now() int64 { return int64(time.Since(epoch)) }

// A Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n; Inc by one.
//
//generic:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }
func (c *Counter) Inc()        { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// String renders the counter as its expvar JSON value.
func (c *Counter) String() string { return strconv.FormatInt(c.Value(), 10) }

func (c *Counter) appendJSON(b []byte) []byte { return strconv.AppendInt(b, c.Value(), 10) }
func (c *Counter) reset()                     { c.v.Store(0) }

// A Gauge is an atomic point-in-time value (e.g. masked lanes, queue depth).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value; Add moves it by n.
//
//generic:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// String renders the gauge as its expvar JSON value.
func (g *Gauge) String() string { return strconv.FormatInt(g.Value(), 10) }

func (g *Gauge) appendJSON(b []byte) []byte { return strconv.AppendInt(b, g.Value(), 10) }
func (g *Gauge) reset()                     { g.v.Store(0) }

// Histogram bucket layout: power-of-two upper bounds from 2^histMinShift ns
// (512 ns) through 2^(histMinShift+histBuckets-1) ns (~4.3 s), plus one
// overflow bucket. Fixed at compile time so Observe is branch-light and the
// exposition never allocates bucket metadata.
const (
	histMinShift = 9
	histBuckets  = 23
)

// A Histogram is a fixed-bucket latency histogram over nanosecond
// durations. Observations are lock-free atomic adds.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets + 1]atomic.Int64
}

// bucketIndex maps a duration to its bucket: the smallest power-of-two upper
// bound that holds it, saturating into the overflow bucket.
//
//generic:hotpath
func bucketIndex(ns int64) int {
	if ns <= 1<<histMinShift {
		return 0
	}
	i := bits.Len64(uint64(ns-1)) - histMinShift
	if i > histBuckets {
		i = histBuckets
	}
	return i
}

// Observe records one duration in nanoseconds (negative clamps to zero).
//
//generic:hotpath
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// ObserveSince records the time elapsed since start (a Now value).
//
//generic:hotpath
func (h *Histogram) ObserveSince(start int64) { h.Observe(Now() - start) }

// Count returns the number of observations; SumNanos their total duration.
func (h *Histogram) Count() int64    { return h.count.Load() }
func (h *Histogram) SumNanos() int64 { return h.sum.Load() }

// BucketBound returns bucket i's inclusive upper bound in nanoseconds, or -1
// for the overflow bucket.
func BucketBound(i int) int64 {
	if i >= histBuckets {
		return -1
	}
	return 1 << (histMinShift + i)
}

// Quantile returns a conservative estimate of the q-quantile of observed
// durations: the upper bound in nanoseconds of the bucket that contains the
// rank-⌈q·count⌉ observation. With power-of-two buckets the estimate is at
// most 2× the true value — acceptable for the latency summaries /metrics
// derives at read time. Returns 0 when the histogram is empty and -1 when
// the quantile lands in the overflow bucket (beyond ~4.3 s).
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	last := 0 // highest populated bucket seen, for the racy-snapshot fallback
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		last = i
		if cum += n; cum >= rank {
			return BucketBound(i)
		}
	}
	// count was read before the buckets, so a concurrent Observe can leave
	// the scan short of rank; the highest populated bucket bounds the tail.
	return BucketBound(last)
}

// appendJSON renders {"count":N,"sum_ns":S,"buckets":[{"le_ns":B,"n":K},...]}
// listing only populated buckets. The overflow bucket reports le_ns -1.
// Count is loaded first so a concurrent Observe can never yield a snapshot
// whose bucket total exceeds its count by more than in-flight observations.
func (h *Histogram) appendJSON(b []byte) []byte {
	b = append(b, `{"count":`...)
	b = strconv.AppendInt(b, h.count.Load(), 10)
	b = append(b, `,"sum_ns":`...)
	b = strconv.AppendInt(b, h.sum.Load(), 10)
	b = append(b, `,"buckets":[`...)
	first := true
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, `{"le_ns":`...)
		b = strconv.AppendInt(b, BucketBound(i), 10)
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, n, 10)
		b = append(b, '}')
	}
	return append(b, `]}`...)
}

// String renders the histogram as its expvar JSON value.
func (h *Histogram) String() string { return string(h.appendJSON(nil)) }

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// metric is the common behavior the registry needs from an instrument.
type metric interface {
	appendJSON(b []byte) []byte
	reset()
}

// A Registry is a named set of instruments with deterministic JSON
// exposition. Registration takes a lock; reads and observations on the
// returned instruments never do.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

// register installs the metric under name, or returns the existing one.
// Re-registering a name as a different instrument type is a programmer
// error and panics.
func register[M metric](r *Registry, name string, fresh M) M {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.metrics[name]; ok {
		m, ok := existing.(M)
		if !ok {
			panic("telemetry: metric " + name + " re-registered with a different type")
		}
		return m
	}
	r.metrics[name] = fresh
	return fresh
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter { return register(r, name, &Counter{}) }

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge { return register(r, name, &Gauge{}) }

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram { return register(r, name, &Histogram{}) }

// snapshot returns the instruments in sorted-name order.
func (r *Registry) snapshot() (names []string, ms []metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Sorted fold over the map: exposition order must not depend on Go's
	// randomized map iteration.
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	return names, ms
}

// AppendJSON appends the registry's snapshot as one JSON object with keys in
// sorted order.
func (r *Registry) AppendJSON(b []byte) []byte {
	names, ms := r.snapshot()
	b = append(b, '{')
	for i, name := range names {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, name)
		b = append(b, ':')
		b = ms[i].appendJSON(b)
	}
	return append(b, '}')
}

// String renders the registry snapshot as JSON (the expvar.Var contract).
func (r *Registry) String() string { return string(r.AppendJSON(nil)) }

// WriteJSON writes the snapshot to w, newline-terminated.
func (r *Registry) WriteJSON(w io.Writer) error {
	_, err := w.Write(append(r.AppendJSON(nil), '\n'))
	return err
}

// Reset zeroes every registered instrument (tests and serve restarts; the
// instruments stay registered and all handles stay valid).
func (r *Registry) Reset() {
	_, ms := r.snapshot()
	for _, m := range ms {
		m.reset()
	}
}

// Default is the process-wide registry every instrumented package records
// into; cmd/generic-serve exposes it on /metrics.
var Default = NewRegistry()

// The canonical instruments, one handle per hot path. Metric names are part
// of the observability contract documented in DESIGN.md §10.
var (
	// Encoding: one observation per Encoder.Encode call (every path — the
	// facade, batch pools, and the accelerator sim — funnels through it),
	// plus batch-level counters from EncodeAll/EncodeAllWorkers.
	EncodeNS           = Default.Histogram("encode_ns")
	EncodeBatches      = Default.Counter("encode_batches_total")
	EncodeBatchSamples = Default.Counter("encode_batch_samples_total")

	// Classification: per-query scoring latency (Model.PredictDims, which
	// Predict/PredictBatch and the retraining loop all call), training
	// passes, and online adaptation.
	PredictNS  = Default.Histogram("predict_ns")
	FitNS      = Default.Histogram("fit_ns")
	FitEpochs  = Default.Counter("fit_epochs_total")
	FitSamples = Default.Counter("fit_samples_total")
	// FitUpdates counts misclassified training samples per epoch across all
	// strategies (perceptron misprediction updates, LeHDC shadow-model
	// misses); FitLossMicro is the last trained epoch's mean loss in
	// micro-units (loss × 1e6 — the registry's instruments are integral).
	FitUpdates   = Default.Counter("fit_updates_total")
	FitLossMicro = Default.Gauge("fit_loss_micro")
	AdaptNS      = Default.Histogram("adapt_ns")
	AdaptUpdates = Default.Counter("adapt_updates_total")

	// Clustering: per-epoch scan latency and total sample assignments.
	ClusterEpochNS = Default.Histogram("cluster_epoch_ns")
	ClusterAssigns = Default.Counter("cluster_assignments_total")

	// Fault layer: injection activity, scrub passes, and repair state.
	FaultInjections  = Default.Counter("fault_injections_total")
	FaultBits        = Default.Counter("fault_bits_total")
	Scrubs           = Default.Counter("scrubs_total")
	ScrubNS          = Default.Histogram("scrub_ns")
	FaultMaskedLanes = Default.Gauge("fault_masked_lanes")
	FaultPending     = Default.Gauge("fault_pending")

	// Serving core (internal/serve): snapshot lifecycle, adapt WAL
	// durability, admission control, and the self-healing loop. The
	// snapshot gauge is the currently published version; WAL fsync latency
	// is the durability cost each acknowledged adapt pays.
	SnapshotVersion   = Default.Gauge("snapshot_version")
	SnapshotPublishNS = Default.Histogram("snapshot_publish_ns")
	WALAppends        = Default.Counter("wal_appends_total")
	WALBytes          = Default.Counter("wal_bytes_total")
	WALReplayed       = Default.Counter("wal_replayed_total")
	WALErrors         = Default.Counter("wal_errors_total")
	WALFsyncNS        = Default.Histogram("wal_fsync_ns")
	Checkpoints       = Default.Counter("checkpoints_total")
	ServeShed         = Default.Counter("serve_shed_total")
	ServeDeadlines    = Default.Counter("serve_deadline_total")
	ScrubLoopRuns     = Default.Counter("scrub_loop_runs_total")
	ChaosInjections   = Default.Counter("chaos_injections_total")

	// Accelerator sim: mirrors of the cycle-level activity counters.
	SimCycles     = Default.Counter("sim_cycles_total")
	SimEncodings  = Default.Counter("sim_encodings_total")
	SimInferences = Default.Counter("sim_inferences_total")
	SimUpdates    = Default.Counter("sim_updates_total")

	// Model quality (internal/quality): the margin histogram reuses the
	// nanosecond bucket machinery over margin micro-units (margin × 1e6, so
	// the sqrt-free power-of-two buckets still resolve the low end); the
	// drift gauges mirror the detector state and the adapt/shadow counters
	// mirror the streaming-accuracy and binary-disagreement aggregates.
	QualityMarginMicro    = Default.Histogram("quality_margin_micro")
	QualityLowMargin      = Default.Counter("quality_low_margin_total")
	QualityDriftChecks    = Default.Counter("quality_drift_checks_total")
	QualityDriftTrips     = Default.Counter("quality_drift_trips_total")
	QualityDriftPSIMicro  = Default.Gauge("quality_drift_psi_micro")
	QualityDriftActive    = Default.Gauge("quality_drift_active")
	QualityAdaptEvals     = Default.Counter("quality_adapt_evals_total")
	QualityAdaptHits      = Default.Counter("quality_adapt_hits_total")
	QualityShadowSamples  = Default.Counter("quality_shadow_samples_total")
	QualityShadowDisagree = Default.Counter("quality_shadow_disagree_total")
)
