package telemetry

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {512, 0},
		{513, 1}, {1024, 1},
		{1025, 2}, {2048, 2},
		{1 << 31, histBuckets - 1},
		{1<<31 + 1, histBuckets},
		{1 << 62, histBuckets},
	}
	for _, tc := range cases {
		ns := tc.ns
		if ns < 0 {
			// Observe clamps negatives before indexing; mirror that here.
			ns = 0
		}
		if got := bucketIndex(ns); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", ns, got, tc.want)
		}
	}
	if BucketBound(0) != 512 {
		t.Errorf("BucketBound(0) = %d, want 512", BucketBound(0))
	}
	if BucketBound(histBuckets) != -1 {
		t.Errorf("overflow BucketBound = %d, want -1", BucketBound(histBuckets))
	}
}

// TestConcurrentHammer drives every instrument type from GOMAXPROCS
// goroutines; run under -race it proves the hot path is lock-free-safe, and
// the final totals prove no observation is lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	g := r.Gauge("depth")
	h := r.Histogram("op_ns")
	workers := runtime.GOMAXPROCS(0) * 2
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(w*perWorker + i))
				// Concurrent registration of an existing name must return
				// the same instrument, not a fresh one.
				if r.Counter("ops_total") != c {
					t.Error("Counter re-registration returned a different handle")
					return
				}
				_ = r.String() // concurrent exposition snapshot
			}
		}(w)
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	var bucketSum int64
	for i := range h.buckets {
		bucketSum += h.buckets[i].Load()
	}
	if bucketSum != total {
		t.Errorf("bucket sum = %d, want %d", bucketSum, total)
	}
}

// TestSnapshotGolden pins the exposition format byte for byte: sorted keys,
// expvar-style scalar values, histograms with only populated buckets.
func TestSnapshotGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("predict_total").Add(3)
	r.Gauge("fault_masked_lanes").Set(2)
	h := r.Histogram("predict_ns")
	h.Observe(100)     // ≤512 bucket
	h.Observe(600)     // ≤1024 bucket
	h.Observe(700)     // ≤1024 bucket
	h.Observe(1 << 40) // overflow bucket

	const want = `{"fault_masked_lanes":2,` +
		`"predict_ns":{"count":4,"sum_ns":1099511629176,"buckets":[` +
		`{"le_ns":512,"n":1},{"le_ns":1024,"n":2},{"le_ns":-1,"n":1}]},` +
		`"predict_total":3}`
	if got := r.String(); got != want {
		t.Errorf("snapshot mismatch\n got: %s\nwant: %s", got, want)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want+"\n" {
		t.Errorf("WriteJSON = %q, want %q", buf.String(), want+"\n")
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}

	r.Reset()
	const zero = `{"fault_masked_lanes":0,` +
		`"predict_ns":{"count":0,"sum_ns":0,"buckets":[]},` +
		`"predict_total":0}`
	if got := r.String(); got != zero {
		t.Errorf("post-Reset snapshot = %s, want %s", got, zero)
	}
	if r.Histogram("predict_ns") != h {
		t.Error("Reset invalidated the histogram handle")
	}
}

func TestRegisterTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestDefaultInstrumentsRegistered(t *testing.T) {
	// The canonical handles must live in Default under their documented
	// names — generic-serve exposes Default verbatim.
	if Default.Histogram("encode_ns") != EncodeNS {
		t.Error("encode_ns not registered in Default")
	}
	if Default.Histogram("predict_ns") != PredictNS {
		t.Error("predict_ns not registered in Default")
	}
	if Default.Counter("sim_cycles_total") != SimCycles {
		t.Error("sim_cycles_total not registered in Default")
	}
	if Default.Gauge("fault_masked_lanes") != FaultMaskedLanes {
		t.Error("fault_masked_lanes not registered in Default")
	}
}

func TestObserveSince(t *testing.T) {
	h := NewRegistry().Histogram("h")
	start := Now()
	h.ObserveSince(start)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.SumNanos() < 0 {
		t.Errorf("negative elapsed %d", h.SumNanos())
	}
}

// TestQuantileEdgeCases covers the corners the /metrics summaries rely on:
// empty histograms, zero-duration observations, observations beyond the top
// bucket, and quantiles that land exactly on bucket boundaries.
func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %d, want 0", got)
	}

	// Zero-duration observations land in the first bucket; every quantile
	// reports its upper bound.
	h.reset()
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 512 {
			t.Errorf("all-zero observations: Quantile(%v) = %d, want 512", q, got)
		}
	}

	// Observations above the top bucket bound report the overflow marker.
	h.reset()
	h.Observe(int64(1) << 62)
	if got := h.Quantile(0.5); got != -1 {
		t.Errorf("overflow observation: Quantile = %d, want -1", got)
	}

	// Boundary behavior: 512 one-nanosecond observations and 512 at ~1 ms.
	// The median rank (256) sits entirely in the first bucket; anything past
	// 0.5 crosses into the high bucket.
	h.reset()
	for i := 0; i < 512; i++ {
		h.Observe(1)
		h.Observe(1 << 20)
	}
	if got := h.Quantile(0.5); got != 512 {
		t.Errorf("bimodal median = %d, want 512 (first bucket bound)", got)
	}
	wantHigh := BucketBound(bucketIndex(1 << 20))
	if got := h.Quantile(0.51); got != wantHigh {
		t.Errorf("Quantile(0.51) = %d, want %d", got, wantHigh)
	}
	if got := h.Quantile(1); got != wantHigh {
		t.Errorf("Quantile(1) = %d, want %d", got, wantHigh)
	}
	// q outside [0,1] clamps instead of panicking.
	if got := h.Quantile(-3); got != 512 {
		t.Errorf("Quantile(-3) = %d, want 512", got)
	}
	if got := h.Quantile(7); got != wantHigh {
		t.Errorf("Quantile(7) = %d, want %d", got, wantHigh)
	}

	// A single observation on an exact bucket bound reports that bound, not
	// the next bucket up.
	h.reset()
	h.Observe(1024)
	if got := h.Quantile(1); got != 1024 {
		t.Errorf("exact-bound observation: Quantile(1) = %d, want 1024", got)
	}
}
