package telemetry

import (
	"io"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) for the registry: the
// same deterministic sorted snapshot as AppendJSON, rendered as
//
//	# TYPE <name> counter|gauge|histogram
//	<name> <value>
//
// with histograms expanded to the conventional cumulative series —
// <name>_bucket{le="<bound>"} (upper bounds in the instrument's native
// units, nanoseconds for latency histograms and margin micro-units for the
// quality histogram), a le="+Inf" terminal, plus <name>_sum and
// <name>_count. Every bucket of the fixed layout is emitted (not just the
// populated ones, unlike the JSON form): Prometheus rate() needs stable
// series identity across scrapes.
//
// Counter vs gauge is decided by the instrument type, not the name; the
// registry's *_total naming convention already matches what Prometheus
// expects of counters.

// ContentType is the Content-Type for the text exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// AppendProm appends the registry snapshot in Prometheus text format.
func (r *Registry) AppendProm(b []byte) []byte {
	names, ms := r.snapshot()
	for i, name := range names {
		switch m := ms[i].(type) {
		case *Counter:
			b = appendPromScalar(b, name, "counter", m.Value())
		case *Gauge:
			b = appendPromScalar(b, name, "gauge", m.Value())
		case *Histogram:
			b = m.appendProm(b, name)
		}
	}
	return b
}

// WriteProm writes the snapshot to w in Prometheus text format.
func (r *Registry) WriteProm(w io.Writer) error {
	_, err := w.Write(r.AppendProm(nil))
	return err
}

func appendPromScalar(b []byte, name, typ string, v int64) []byte {
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, v, 10)
	return append(b, '\n')
}

// appendProm renders the histogram as the cumulative Prometheus series.
// Count is loaded first, like appendJSON, and the le="+Inf" bucket reports
// the loaded count so the series is always self-consistent.
func (h *Histogram) appendProm(b []byte, name string) []byte {
	count := h.count.Load()
	sum := h.sum.Load()
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, " histogram\n"...)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		b = append(b, name...)
		b = append(b, `_bucket{le="`...)
		b = strconv.AppendInt(b, BucketBound(i), 10)
		b = append(b, `"} `...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, `_bucket{le="+Inf"} `...)
	b = strconv.AppendInt(b, count, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_sum "...)
	b = strconv.AppendInt(b, sum, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count "...)
	b = strconv.AppendInt(b, count, 10)
	return append(b, '\n')
}
