package telemetry

import (
	"strconv"
	"strings"
	"testing"
)

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

// TestPromGoldenSnapshot locks the exposition format byte-for-byte on a
// local registry: deterministic sorted names, TYPE lines per instrument
// kind, and the full cumulative histogram series with +Inf/_sum/_count.
func TestPromGoldenSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	g := r.Gauge("depth")
	h := r.Histogram("latency_ns")

	c.Add(42)
	g.Set(-7)
	h.Observe(400)     // bucket 0 (le 512)
	h.Observe(400)     // bucket 0
	h.Observe(1000)    // bucket 1 (le 1024)
	h.Observe(5 << 30) // overflow (beyond the largest finite bound)

	var want strings.Builder
	want.WriteString("# TYPE depth gauge\ndepth -7\n")
	want.WriteString("# TYPE latency_ns histogram\n")
	cum := []int64{2, 3}
	for i := 0; i < histBuckets; i++ {
		n := int64(3)
		if i < len(cum) {
			n = cum[i]
		}
		want.WriteString("latency_ns_bucket{le=\"")
		want.WriteString(itoa(BucketBound(i)))
		want.WriteString("\"} ")
		want.WriteString(itoa(n))
		want.WriteString("\n")
	}
	want.WriteString("latency_ns_bucket{le=\"+Inf\"} 4\n")
	want.WriteString("latency_ns_sum ")
	want.WriteString(itoa(400 + 400 + 1000 + 5<<30))
	want.WriteString("\n")
	want.WriteString("latency_ns_count 4\n")
	want.WriteString("# TYPE requests_total counter\nrequests_total 42\n")

	got := string(r.AppendProm(nil))
	if got != want.String() {
		t.Fatalf("prom exposition diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want.String())
	}

	// Scrape determinism: two renders of an untouched registry are equal.
	if again := string(r.AppendProm(nil)); again != got {
		t.Fatal("second render differs from first")
	}
}

func TestPromCoversDefaultQualitySeries(t *testing.T) {
	out := string(Default.AppendProm(nil))
	for _, name := range []string{
		"quality_margin_micro", "quality_low_margin_total",
		"quality_drift_trips_total", "quality_drift_psi_micro",
		"quality_shadow_samples_total", "predict_ns",
	} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Fatalf("default exposition missing series %q", name)
		}
	}
}
