package encoding

import (
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// This file exposes encoder hypervector material to the fault layer
// (internal/faults). The key property it operationalizes is the paper's:
// level and id memories are pseudorandom-from-seed, so unlike class memory
// they need no active protection — any corruption is perfectly repairable by
// regeneration (Regenerate), which replays the exact constructor RNG
// sequence from Config().Seed.

// MaterialCloner is implemented by encoders that can clone their *current*
// hypervector material bit-exactly — including any in-place corruption —
// rather than regenerating pristine material from the config seed. Pools
// prefer it so that batch encoding sees the same (possibly faulted) memory
// state as the primary encoder.
type MaterialCloner interface {
	// CloneMaterial returns an independent encoder with fresh scratch state
	// and a bit-exact copy (or an immutable share) of the receiver's current
	// hypervector material.
	CloneMaterial() Encoder
}

// Faultable is implemented by level-based encoders whose Fig. 4 memories
// (level memory, id seed register) can be mutated in place by the fault
// layer and repaired by regeneration.
type Faultable interface {
	Encoder
	MaterialCloner
	// LevelRows returns the live level-memory rows ℓ(0)…ℓ(bins−1). Mutating
	// their bits models level-memory errors; call RebuildDerived afterwards.
	LevelRows() []*hdc.BitVec
	// IDSeed returns the live id seed register, or nil if the encoding does
	// not bind ids. Mutating its bits models id-memory errors; call
	// RebuildDerived afterwards.
	IDSeed() *hdc.BitVec
	// RebuildDerived recomputes material derived from the level rows and id
	// seed (rotated levels, materialized ids) so Encode observes in-place
	// mutations.
	RebuildDerived()
	// Regenerate rebuilds all hypervector material from Config().Seed,
	// discarding any corruption — the self-heal path.
	Regenerate()
}

// --- levelIDEncoder ---------------------------------------------------------

func (e *levelIDEncoder) LevelRows() []*hdc.BitVec { return e.levels.Rows() }
func (e *levelIDEncoder) IDSeed() *hdc.BitVec      { return e.idGen.Seed() }

func (e *levelIDEncoder) RebuildDerived() {
	if e.ids == nil {
		e.ids = make([]*hdc.BitVec, e.cfg.Features)
		for m := range e.ids {
			e.ids[m] = hdc.NewBitVec(e.cfg.D)
		}
	}
	for m := range e.ids {
		e.idGen.ID(m, e.ids[m])
	}
}

func (e *levelIDEncoder) Regenerate() {
	r := rng.New(e.cfg.Seed)
	e.levels = hdc.NewLevelTable(e.cfg.D, e.cfg.Bins, r.Split())
	e.idGen = hdc.NewIDGenerator(e.cfg.D, r.Split())
	e.RebuildDerived()
}

func (e *levelIDEncoder) CloneMaterial() Encoder {
	c := &levelIDEncoder{
		cfg:    e.cfg,
		levels: e.levels.Clone(),
		idGen:  e.idGen.Clone(),
		bound:  hdc.NewBitVec(e.cfg.D),
		acc:    hdc.NewAcc(e.cfg.D),
	}
	c.RebuildDerived()
	return c
}

// --- permuteEncoder ---------------------------------------------------------

func (e *permuteEncoder) LevelRows() []*hdc.BitVec { return e.levels.Rows() }
func (e *permuteEncoder) IDSeed() *hdc.BitVec      { return nil }
func (e *permuteEncoder) RebuildDerived()          {} // levels are used directly

func (e *permuteEncoder) Regenerate() {
	r := rng.New(e.cfg.Seed)
	e.levels = hdc.NewLevelTable(e.cfg.D, e.cfg.Bins, r.Split())
}

func (e *permuteEncoder) CloneMaterial() Encoder {
	return &permuteEncoder{
		cfg:    e.cfg,
		levels: e.levels.Clone(),
		rot:    hdc.NewBitVec(e.cfg.D),
		acc:    hdc.NewAcc(e.cfg.D),
	}
}

// --- windowedEncoder --------------------------------------------------------

func (e *windowedEncoder) LevelRows() []*hdc.BitVec { return e.quant.Rows() }

func (e *windowedEncoder) IDSeed() *hdc.BitVec {
	if e.idGen == nil {
		return nil
	}
	return e.idGen.Seed()
}

func (e *windowedEncoder) RebuildDerived() {
	if e.rotLevels == nil {
		e.rotLevels = make([][]*hdc.BitVec, e.cfg.N)
		for j := range e.rotLevels {
			e.rotLevels[j] = make([]*hdc.BitVec, e.cfg.Bins)
		}
	}
	for j := 0; j < e.cfg.N; j++ {
		for b := 0; b < e.cfg.Bins; b++ {
			e.rotLevels[j][b] = hdc.Rotate(e.quant.Level(b), j)
		}
	}
	if e.useID {
		if e.ids == nil {
			nWin := e.cfg.Features - e.cfg.N + 1
			e.ids = make([]*hdc.BitVec, nWin)
			for i := range e.ids {
				e.ids[i] = hdc.NewBitVec(e.cfg.D)
			}
		}
		for i := range e.ids {
			e.idGen.ID(i, e.ids[i])
		}
	}
}

func (e *windowedEncoder) Regenerate() {
	r := rng.New(e.cfg.Seed)
	e.quant = hdc.NewLevelTable(e.cfg.D, e.cfg.Bins, r.Split())
	if e.useID {
		e.idGen = hdc.NewIDGenerator(e.cfg.D, r.Split())
	}
	e.RebuildDerived()
}

func (e *windowedEncoder) CloneMaterial() Encoder {
	c := &windowedEncoder{
		cfg:     e.cfg,
		generic: e.generic,
		useID:   e.useID,
		quant:   e.quant.Clone(),
		win:     hdc.NewBitVec(e.cfg.D),
		acc:     hdc.NewAcc(e.cfg.D),
		bins:    make([]int, e.cfg.Features),
		bin:     newBinScratch(e.cfg),
	}
	if e.idGen != nil {
		c.idGen = e.idGen.Clone()
	}
	c.RebuildDerived()
	return c
}

// --- rpEncoder --------------------------------------------------------------

// CloneMaterial shares the projection rows, which are immutable after
// construction (RP has no Fig. 4 memory and is not Faultable), and gives the
// clone its own accumulator scratch so concurrent encodes never conflict.
func (e *rpEncoder) CloneMaterial() Encoder {
	return &rpEncoder{cfg: e.cfg, d: e.d, rows: e.rows, acc: make([]float64, e.d)}
}
