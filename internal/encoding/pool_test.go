package encoding

import (
	"testing"

	"github.com/edge-hdc/generic/internal/rng"
)

func TestPoolMatchesSequential(t *testing.T) {
	cfg := testCfg(24)
	pool, err := NewPool(Generic, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Workers() != 4 || pool.D() != cfg.D {
		t.Fatalf("pool shape wrong: %d workers, D=%d", pool.Workers(), pool.D())
	}
	r := rng.New(9)
	X := make([][]float64, 200)
	for i := range X {
		X[i] = randInput(r, 24)
	}
	seq := EncodeAll(MustNew(Generic, cfg), X)
	par := pool.EncodeAll(X)
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("sample %d dim %d: parallel %d != sequential %d",
					i, j, par[i][j], seq[i][j])
			}
		}
	}
}

func TestPoolEmptyInput(t *testing.T) {
	pool, err := NewPool(LevelID, testCfg(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	out := pool.EncodeAll(nil)
	if len(out) != 0 {
		t.Fatal("non-empty output for empty input")
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	pool, err := NewPool(Permute, testCfg(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Workers() < 1 {
		t.Fatal("no workers")
	}
}

func TestPoolInvalidConfig(t *testing.T) {
	if _, err := NewPool(Generic, Config{D: 100, Features: 4}, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func BenchmarkPoolEncode200(b *testing.B) {
	cfg := Config{D: 2048, Features: 64, Bins: 64, Lo: 0, Hi: 1, N: 3, UseID: true, Seed: 1}
	pool, err := NewPool(Generic, cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	X := make([][]float64, 200)
	for i := range X {
		X[i] = randInput(r, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.EncodeAll(X)
	}
}
