// Package encoding implements the hyperdimensional encodings compared in
// the GENERIC paper: random projection (RP), level-id, ngram, permutation,
// and the proposed GENERIC encoding (Eq. 1 / Fig. 2).
//
// All encoders map a feature vector x ∈ ℝᵈ to an integer hypervector
// H(x) ∈ ℤᴰ. Level-based encoders quantize each feature into one of Bins
// level hypervectors and bundle bound/permuted levels; RP projects x through
// a random bipolar matrix and takes signs.
package encoding

import (
	"fmt"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/rng"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// Kind selects an encoding family.
type Kind int

const (
	// RP is random-projection encoding: H = sign(Φx), Φ ∈ {±1}^{D×d}.
	RP Kind = iota
	// LevelID binds each feature's level hypervector with a per-index id:
	// H = Σ_m id_m ⊕ ℓ(x_m).
	LevelID
	// Ngram bundles windows of n consecutive features, each window the XOR
	// of its intra-window-permuted levels; no global position information.
	Ngram
	// Permute binds position by permutation: H = Σ_m ρ(m)(ℓ(x_m)).
	Permute
	// Generic is the paper's encoding: ngram windows, each optionally bound
	// with a per-window id to restore global order (Eq. 1).
	Generic
)

var kindNames = map[Kind]string{
	RP: "RP", LevelID: "level-id", Ngram: "ngram", Permute: "permute", Generic: "GENERIC",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists all encodings in the paper's Table 1 column order.
func Kinds() []Kind { return []Kind{RP, LevelID, Ngram, Permute, Generic} }

// Config parameterizes an encoder.
type Config struct {
	D        int     // hypervector dimensionality (multiple of 64)
	Features int     // input feature count d
	Bins     int     // quantization bins for level encoders
	Lo, Hi   float64 // quantization range
	N        int     // window length for Ngram/Generic (paper default 3)
	UseID    bool    // Generic only: bind per-window ids (global order)
	Seed     uint64  // hypervector material seed
}

// Default fills unset fields with the paper's defaults: D=4096, Bins=64, N=3.
func (c Config) Default() Config {
	if c.D == 0 {
		c.D = 4096
	}
	if c.Bins == 0 {
		c.Bins = 64
	}
	if c.N == 0 {
		c.N = 3
	}
	if c.Hi == c.Lo {
		c.Hi = c.Lo + 1
	}
	return c
}

// Encoder maps feature vectors into integer hypervectors.
type Encoder interface {
	// Encode writes H(x) into out, which must have length D().
	Encode(x []float64, out hdc.Vec)
	// D returns the dimensionality of produced hypervectors.
	D() int
	// Kind identifies the encoding family.
	Kind() Kind
	// Config returns the (defaulted) configuration the encoder was built
	// with, sufficient to reconstruct an identical encoder.
	Config() Config
}

// New constructs an encoder of the given kind. It returns an error for
// invalid configurations (e.g. fewer features than the window length).
func New(kind Kind, cfg Config) (Encoder, error) {
	cfg = cfg.Default()
	if cfg.Features <= 0 {
		return nil, fmt.Errorf("encoding: Features must be positive, got %d", cfg.Features)
	}
	if cfg.D <= 0 || cfg.D%hdc.WordBits != 0 {
		return nil, fmt.Errorf("encoding: D=%d must be a positive multiple of %d", cfg.D, hdc.WordBits)
	}
	// Level-based encoders hand Bins straight to hdc.NewLevelTable, which
	// panics outside its ladder range; surface that as a config error here.
	if kind != RP && (cfg.Bins < 2 || (cfg.Bins-1)*2 > cfg.D) {
		return nil, fmt.Errorf("encoding: Bins=%d outside the level-ladder range [2, D/2+1] for D=%d", cfg.Bins, cfg.D)
	}
	switch kind {
	case RP:
		return newRP(cfg), nil
	case LevelID:
		return newLevelID(cfg), nil
	case Ngram, Generic:
		if cfg.N < 1 {
			return nil, fmt.Errorf("encoding: window length N=%d must be positive", cfg.N)
		}
		if cfg.Features < cfg.N {
			return nil, fmt.Errorf("encoding: %d features < window length %d", cfg.Features, cfg.N)
		}
		if kind == Ngram {
			return newWindowed(cfg, false, false), nil
		}
		return newWindowed(cfg, cfg.UseID, true), nil
	case Permute:
		return newPermute(cfg), nil
	}
	return nil, fmt.Errorf("encoding: unknown kind %v", kind)
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(kind Kind, cfg Config) Encoder {
	e, err := New(kind, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// EncodeAll encodes every row of X into a slice of fresh hypervectors.
func EncodeAll(e Encoder, X [][]float64) []hdc.Vec {
	sp := perf.Begin("encode.batch")
	defer sp.End()
	telemetry.EncodeBatches.Inc()
	telemetry.EncodeBatchSamples.Add(int64(len(X)))
	out := make([]hdc.Vec, len(X))
	for i, x := range X {
		out[i] = hdc.NewVec(e.D())
		e.Encode(x, out[i])
	}
	return out
}

// ---------------------------------------------------------------------------

// rpEncoder implements classic random-projection encoding. The projection
// matrix rows are bipolar ±1; the output is the per-dimension sign. Being
// linear in x up to the final sign, RP cannot separate classes whose
// difference is invisible to first-order statistics — the failure Table 1
// shows on EEG/EMG.
type rpEncoder struct {
	cfg  Config
	d    int
	rows [][]float64 // rows[m][i] ∈ {−1,+1}, one row per feature
	acc  []float64   // scratch: projection accumulator, reused across calls
}

func newRP(cfg Config) *rpEncoder {
	r := rng.New(cfg.Seed)
	e := &rpEncoder{cfg: cfg, d: cfg.D, rows: make([][]float64, cfg.Features), acc: make([]float64, cfg.D)}
	for m := range e.rows {
		row := make([]float64, cfg.D)
		for i := 0; i < cfg.D; i += hdc.WordBits {
			w := r.Uint64()
			for b := 0; b < hdc.WordBits; b++ {
				if w>>uint(b)&1 == 1 {
					row[i+b] = 1
				} else {
					row[i+b] = -1
				}
			}
		}
		e.rows[m] = row
	}
	return e
}

func (e *rpEncoder) D() int         { return e.d }
func (e *rpEncoder) Kind() Kind     { return RP }
func (e *rpEncoder) Config() Config { return e.cfg }

//generic:hotpath
func (e *rpEncoder) Encode(x []float64, out hdc.Vec) {
	start := telemetry.Now()
	checkEncodeArgs(len(e.rows), e.d, x, out)
	acc := e.acc
	for i := range acc {
		acc[i] = 0
	}
	for m, v := range x {
		row := e.rows[m]
		if v == 0 {
			continue
		}
		for i, p := range row {
			acc[i] += v * p
		}
	}
	for i, s := range acc {
		if s >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	telemetry.EncodeNS.ObserveSince(start)
}

// ---------------------------------------------------------------------------

// levelIDEncoder binds quantized levels with per-index ids (Fig. 2c).
type levelIDEncoder struct {
	cfg    Config
	levels *hdc.LevelTable
	idGen  *hdc.IDGenerator
	ids    []*hdc.BitVec // materialized ρ(m)(seed) per feature index
	// scratch
	bound *hdc.BitVec
	acc   *hdc.Acc
}

func newLevelID(cfg Config) *levelIDEncoder {
	e := &levelIDEncoder{
		cfg:   cfg,
		bound: hdc.NewBitVec(cfg.D),
		acc:   hdc.NewAcc(cfg.D),
	}
	e.Regenerate()
	return e
}

func (e *levelIDEncoder) D() int         { return e.cfg.D }
func (e *levelIDEncoder) Kind() Kind     { return LevelID }
func (e *levelIDEncoder) Config() Config { return e.cfg }

//generic:hotpath
func (e *levelIDEncoder) Encode(x []float64, out hdc.Vec) {
	start := telemetry.Now()
	checkEncodeArgs(len(e.ids), e.cfg.D, x, out)
	e.acc.Reset()
	for m, v := range x {
		lv := e.levels.Level(e.levels.Quantize(v, e.cfg.Lo, e.cfg.Hi))
		hdc.XorInto(e.bound, lv, e.ids[m])
		e.acc.Add(e.bound)
	}
	e.acc.Bipolar(out)
	telemetry.EncodeNS.ObserveSince(start)
}

// ---------------------------------------------------------------------------

// permuteEncoder binds position by rotation (Fig. 2b).
type permuteEncoder struct {
	cfg    Config
	levels *hdc.LevelTable
	rot    *hdc.BitVec
	acc    *hdc.Acc
}

func newPermute(cfg Config) *permuteEncoder {
	e := &permuteEncoder{
		cfg: cfg,
		rot: hdc.NewBitVec(cfg.D),
		acc: hdc.NewAcc(cfg.D),
	}
	e.Regenerate()
	return e
}

func (e *permuteEncoder) D() int         { return e.cfg.D }
func (e *permuteEncoder) Kind() Kind     { return Permute }
func (e *permuteEncoder) Config() Config { return e.cfg }

//generic:hotpath
func (e *permuteEncoder) Encode(x []float64, out hdc.Vec) {
	start := telemetry.Now()
	checkEncodeArgs(e.cfg.Features, e.cfg.D, x, out)
	e.acc.Reset()
	for m, v := range x {
		lv := e.levels.Level(e.levels.Quantize(v, e.cfg.Lo, e.cfg.Hi))
		hdc.RotateInto(e.rot, lv, m)
		e.acc.Add(e.rot)
	}
	e.acc.Bipolar(out)
	telemetry.EncodeNS.ObserveSince(start)
}

// ---------------------------------------------------------------------------

// windowedEncoder implements both the ngram encoding and the proposed
// GENERIC encoding (Eq. 1): every length-n window's levels are permuted by
// their intra-window offset and XORed; GENERIC additionally XORs a
// per-window id (generated by rotating a seed id, §4.3.1) to restore the
// global order of windows. With ids disabled the two coincide.
type windowedEncoder struct {
	cfg     Config
	generic bool
	useID   bool
	// rotLevels[j][bin] = ρ(j)(ℓ(bin)), precomputed for the n offsets.
	rotLevels [][]*hdc.BitVec
	idGen     *hdc.IDGenerator // nil when !useID
	ids       []*hdc.BitVec    // per-window ids (nil when !useID)
	quant     *hdc.LevelTable
	win       *hdc.BitVec
	acc       *hdc.Acc
	bins      []int       // scratch: per-feature quantized levels, reused across calls
	bin       *binScratch // scratch for the fused binarized encode kernel
}

func newWindowed(cfg Config, useID, generic bool) *windowedEncoder {
	e := &windowedEncoder{
		cfg:     cfg,
		generic: generic,
		useID:   useID,
		win:     hdc.NewBitVec(cfg.D),
		acc:     hdc.NewAcc(cfg.D),
		bins:    make([]int, cfg.Features),
		bin:     newBinScratch(cfg),
	}
	e.Regenerate()
	return e
}

func (e *windowedEncoder) D() int { return e.cfg.D }

// Config reports the effective configuration (UseID reflects the actual
// binding state; plain ngram always reports false).
func (e *windowedEncoder) Config() Config {
	cfg := e.cfg
	cfg.UseID = e.useID
	return cfg
}

func (e *windowedEncoder) Kind() Kind {
	if e.generic {
		return Generic
	}
	return Ngram
}

//generic:hotpath
func (e *windowedEncoder) Encode(x []float64, out hdc.Vec) {
	start := telemetry.Now()
	checkEncodeArgs(e.cfg.Features, e.cfg.D, x, out)
	e.acc.Reset()
	n := e.cfg.N
	bins := e.bins
	for m, v := range x {
		bins[m] = e.quant.Quantize(v, e.cfg.Lo, e.cfg.Hi)
	}
	for i := 0; i+n <= len(x); i++ {
		e.win.CopyFrom(e.rotLevels[0][bins[i]])
		for j := 1; j < n; j++ {
			hdc.XorAccumulate(e.win, e.rotLevels[j][bins[i+j]])
		}
		if e.useID {
			hdc.XorAccumulate(e.win, e.ids[i])
		}
		e.acc.Add(e.win)
	}
	e.acc.Bipolar(out)
	telemetry.EncodeNS.ObserveSince(start)
}

//generic:hotpath
func checkEncodeArgs(features, d int, x []float64, out hdc.Vec) {
	if len(x) != features {
		panic(fmt.Sprintf("encoding: input has %d features, encoder expects %d", len(x), features))
	}
	if len(out) != d {
		panic(fmt.Sprintf("encoding: output length %d, want %d", len(out), d))
	}
}
