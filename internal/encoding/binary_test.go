package encoding

import (
	"fmt"
	"testing"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// binTestConfigs spans every encoder family and, for the windowed fused
// kernel, window counts below, at, and beyond the Harley-Seal block size of
// eight (windows = Features − N + 1), with and without the id binding.
var binTestConfigs = []struct {
	kind Kind
	cfg  Config
}{
	{RP, Config{D: 512, Features: 16, Lo: 0, Hi: 1, Seed: 11}},
	{LevelID, Config{D: 512, Features: 16, Lo: 0, Hi: 1, Seed: 12}},
	{Permute, Config{D: 512, Features: 16, Lo: 0, Hi: 1, Seed: 13}},
	{Generic, Config{D: 2048, Features: 128, Lo: 0, Hi: 1, Seed: 1, UseID: true}},    // 127 windows: blocks + remainder
	{Generic, Config{D: 1024, Features: 21, N: 4, Lo: -1, Hi: 1, Seed: 7}},           // default gather path, no id
	{Generic, Config{D: 512, Features: 5, N: 2, Lo: 0, Hi: 1, Seed: 2}},              // 4 windows: remainder only
	{Generic, Config{D: 512, Features: 9, N: 2, Lo: 0, Hi: 1, Seed: 3, UseID: true}}, // exactly one block
	{Generic, Config{D: 512, Features: 10, N: 3, Lo: 0, Hi: 1, Seed: 5, UseID: true}},
	{Generic, Config{D: 512, Features: 12, N: 3, Lo: 0, Hi: 1, Seed: 6}}, // 10 windows: block + 2 remainder
	{Ngram, Config{D: 512, Features: 9, N: 2, Lo: 0, Hi: 1, Seed: 3}},
	{Ngram, Config{D: 1024, Features: 30, N: 5, Lo: 0, Hi: 1, Seed: 9}},
}

func randomInput(n int, r *rng.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()
	}
	return x
}

// TestEncodeBinEquivalence locks the BinaryEncoder contract: EncodeBin(x)
// is bit-identical to PackSigns(Encode(x)) for every library encoder.
func TestEncodeBinEquivalence(t *testing.T) {
	for _, tc := range binTestConfigs {
		t.Run(fmt.Sprintf("%v_F%d_N%d_id%v", tc.kind, tc.cfg.Features, tc.cfg.N, tc.cfg.UseID), func(t *testing.T) {
			e := MustNew(tc.kind, tc.cfg)
			be, ok := AsBinary(e)
			if !ok {
				t.Fatalf("%v encoder does not implement BinaryEncoder", tc.kind)
			}
			cfg := tc.cfg.Default()
			r := rng.New(tc.cfg.Seed * 1000003)
			ref := hdc.NewVec(cfg.D)
			want := hdc.NewBinVec(cfg.D)
			got := hdc.NewBinVec(cfg.D)
			for trial := 0; trial < 20; trial++ {
				x := randomInput(cfg.Features, r)
				e.Encode(x, ref)
				want.PackSigns(ref)
				be.EncodeBin(x, got)
				if !got.Equal(want) {
					t.Fatalf("trial %d: EncodeBin != PackSigns(Encode)", trial)
				}
			}
		})
	}
}

// TestEncodeBinCloneMaterial checks the pooled-clone path the pipeline's
// concurrent Predict relies on: a material clone must produce the same
// binarized bits as the primary encoder.
func TestEncodeBinCloneMaterial(t *testing.T) {
	for _, tc := range binTestConfigs {
		e := MustNew(tc.kind, tc.cfg)
		mc, ok := e.(MaterialCloner)
		if !ok {
			continue
		}
		clone := mc.CloneMaterial()
		be, _ := AsBinary(e)
		bc, ok := AsBinary(clone)
		if !ok {
			t.Fatalf("%v: CloneMaterial clone lost the binarized path", tc.kind)
		}
		cfg := tc.cfg.Default()
		r := rng.New(99)
		a := hdc.NewBinVec(cfg.D)
		b := hdc.NewBinVec(cfg.D)
		for trial := 0; trial < 5; trial++ {
			x := randomInput(cfg.Features, r)
			be.EncodeBin(x, a)
			bc.EncodeBin(x, b)
			if !a.Equal(b) {
				t.Fatalf("%v trial %d: clone EncodeBin differs from primary", tc.kind, trial)
			}
		}
	}
}

func TestEncodeBinArgGuards(t *testing.T) {
	e := MustNew(Generic, Config{D: 512, Features: 16, Lo: 0, Hi: 1, Seed: 1})
	be, _ := AsBinary(e)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EncodeBin with wrong feature count did not panic")
			}
		}()
		be.EncodeBin(make([]float64, 7), hdc.NewBinVec(512))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EncodeBin with wrong output dimensionality did not panic")
			}
		}()
		be.EncodeBin(make([]float64, 16), hdc.NewBinVec(256))
	}()
}

// TestEncodeBinDeterministic: same input, same bits — across repeated calls
// on one encoder (scratch reuse must not leak state between calls).
func TestEncodeBinDeterministic(t *testing.T) {
	e := MustNew(Generic, Config{D: 1024, Features: 32, N: 3, Lo: 0, Hi: 1, Seed: 21, UseID: true})
	be, _ := AsBinary(e)
	r := rng.New(5)
	x1 := randomInput(32, r)
	x2 := randomInput(32, r)
	first := hdc.NewBinVec(1024)
	be.EncodeBin(x1, first)
	scratch := hdc.NewBinVec(1024)
	be.EncodeBin(x2, scratch) // interleave a different input to dirty scratch
	again := hdc.NewBinVec(1024)
	be.EncodeBin(x1, again)
	if !first.Equal(again) {
		t.Fatal("EncodeBin not deterministic across interleaved calls")
	}
}

func benchInput(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%17) / 17
	}
	return x
}

func BenchmarkEncodeExact(b *testing.B) {
	cfg := Config{D: 2048, Features: 128, Lo: 0, Hi: 1, Seed: 1, UseID: true}
	e := MustNew(Generic, cfg)
	x := benchInput(128)
	out := hdc.NewVec(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(x, out)
	}
}

func BenchmarkEncodeBin(b *testing.B) {
	cfg := Config{D: 2048, Features: 128, Lo: 0, Hi: 1, Seed: 1, UseID: true}
	e := MustNew(Generic, cfg)
	be, _ := AsBinary(e)
	x := benchInput(128)
	out := hdc.NewBinVec(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.EncodeBin(x, out)
	}
}
