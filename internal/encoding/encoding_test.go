package encoding

import (
	"testing"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

func testCfg(features int) Config {
	return Config{D: 512, Features: features, Bins: 16, Lo: 0, Hi: 1, N: 3, UseID: true, Seed: 1}
}

func randInput(r *rng.Rand, d int) []float64 {
	x := make([]float64, d)
	for i := range x {
		x[i] = r.Float64()
	}
	return x
}

func TestAllKindsConstruct(t *testing.T) {
	for _, k := range Kinds() {
		e, err := New(k, testCfg(20))
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		if e.Kind() != k {
			t.Fatalf("Kind() = %v, want %v", e.Kind(), k)
		}
		if e.D() != 512 {
			t.Fatalf("%v: D() = %d, want 512", k, e.D())
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{RP: "RP", LevelID: "level-id", Ngram: "ngram", Permute: "permute", Generic: "GENERIC"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind string = %q", Kind(42).String())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Generic, Config{D: 512, Features: 2, N: 3, Lo: 0, Hi: 1}); err == nil {
		t.Error("features < N accepted")
	}
	if _, err := New(LevelID, Config{D: 100, Features: 10, Lo: 0, Hi: 1}); err == nil {
		t.Error("D not multiple of 64 accepted")
	}
	if _, err := New(LevelID, Config{D: 512, Features: 0, Lo: 0, Hi: 1}); err == nil {
		t.Error("zero features accepted")
	}
	if _, err := New(Kind(99), testCfg(10)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.Default()
	if c.D != 4096 || c.Bins != 64 || c.N != 3 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.Hi <= c.Lo {
		t.Fatalf("default range degenerate: [%v,%v]", c.Lo, c.Hi)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	r := rng.New(7)
	x := randInput(r, 20)
	for _, k := range Kinds() {
		e1 := MustNew(k, testCfg(20))
		e2 := MustNew(k, testCfg(20))
		a, b := hdc.NewVec(512), hdc.NewVec(512)
		e1.Encode(x, a)
		e2.Encode(x, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: encoding not deterministic at dim %d", k, i)
			}
		}
		// Same encoder, repeated call (scratch reuse must not leak state).
		e1.Encode(x, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: repeated Encode differs at dim %d (scratch leak)", k, i)
			}
		}
	}
}

func TestEncodeSimilarInputsSimilarVectors(t *testing.T) {
	// Core HDC property: encodings preserve locality. A slightly perturbed
	// input must be far more similar to the original than a random input.
	r := rng.New(8)
	x := randInput(r, 40)
	xPert := append([]float64(nil), x...)
	for i := range xPert {
		xPert[i] += 0.02 * r.NormFloat64()
	}
	xRand := randInput(r, 40)
	for _, k := range Kinds() {
		e := MustNew(k, testCfg(40))
		hx, hp, hr := hdc.NewVec(512), hdc.NewVec(512), hdc.NewVec(512)
		e.Encode(x, hx)
		e.Encode(xPert, hp)
		e.Encode(xRand, hr)
		simPert := cosine(hx, hp)
		simRand := cosine(hx, hr)
		if simPert <= simRand {
			t.Errorf("%v: perturbed similarity %.3f <= random similarity %.3f", k, simPert, simRand)
		}
		if simPert < 0.5 {
			t.Errorf("%v: perturbed similarity %.3f too low", k, simPert)
		}
	}
}

func cosine(a, b hdc.Vec) float64 {
	num := float64(a.Dot(b))
	den := float64(a.Norm2()) * float64(b.Norm2())
	if den == 0 {
		return 0
	}
	return num * num / den * sign(num)
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

func TestRPOutputsAreSigns(t *testing.T) {
	e := MustNew(RP, testCfg(20))
	out := hdc.NewVec(512)
	e.Encode(randInput(rng.New(1), 20), out)
	for i, v := range out {
		if v != 1 && v != -1 {
			t.Fatalf("RP output dim %d = %d, want ±1", i, v)
		}
	}
}

func TestLevelEncodersRangeBounded(t *testing.T) {
	// Bundled bipolar windows: |H_i| cannot exceed the number of bundled
	// vectors (features for level-id/permute, windows for ngram/GENERIC).
	const features = 20
	x := randInput(rng.New(2), features)
	cases := map[Kind]int32{
		LevelID: features,
		Permute: features,
		Ngram:   features - 3 + 1,
		Generic: features - 3 + 1,
	}
	for k, bound := range cases {
		e := MustNew(k, testCfg(features))
		out := hdc.NewVec(512)
		e.Encode(x, out)
		for i, v := range out {
			if v > bound || v < -bound {
				t.Fatalf("%v: |out[%d]| = %d exceeds bundle bound %d", k, i, v, bound)
			}
		}
		// Parity check: sum of W ±1 values has the parity of W.
		if (out[0]-bound)%2 != 0 {
			t.Fatalf("%v: out[0] = %d has wrong parity for %d bundled vectors", k, out[0], bound)
		}
	}
}

func TestNgramIgnoresGlobalOrder(t *testing.T) {
	// Swapping two distant windows' content must leave the ngram encoding
	// nearly unchanged (same multiset of windows at the boundary level),
	// while the GENERIC encoding with ids must change substantially.
	const features = 32
	cfg := testCfg(features)
	x := make([]float64, features)
	for i := range x {
		x[i] = float64(i%4) / 4
	}
	// Move a distinctive block from the front to the back.
	y := append([]float64(nil), x...)
	block := []float64{0.9, 0.1, 0.9}
	copy(y[0:3], block)
	z := append([]float64(nil), x...)
	copy(z[26:29], block)

	ng := MustNew(Ngram, cfg)
	hy, hz := hdc.NewVec(512), hdc.NewVec(512)
	ng.Encode(y, hy)
	ng.Encode(z, hz)
	ngramSim := cosine(hy, hz)

	gen := MustNew(Generic, cfg)
	gy, gz := hdc.NewVec(512), hdc.NewVec(512)
	gen.Encode(y, gy)
	gen.Encode(z, gz)
	genSim := cosine(gy, gz)

	if ngramSim <= genSim {
		t.Errorf("ngram should be more invariant to block position: ngram %.3f vs GENERIC %.3f", ngramSim, genSim)
	}
}

func TestGenericWithoutIDEqualsNgram(t *testing.T) {
	cfg := testCfg(24)
	cfg.UseID = false
	x := randInput(rng.New(3), 24)
	a, b := hdc.NewVec(512), hdc.NewVec(512)
	MustNew(Generic, cfg).Encode(x, a)
	MustNew(Ngram, cfg).Encode(x, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("id-less GENERIC differs from ngram at dim %d", i)
		}
	}
}

func TestPermuteDistinguishesPosition(t *testing.T) {
	// "abc" vs "bca": permutation encoding must produce distinct vectors.
	cfg := testCfg(3)
	e := MustNew(Permute, cfg)
	a, b := hdc.NewVec(512), hdc.NewVec(512)
	e.Encode([]float64{0.1, 0.5, 0.9}, a)
	e.Encode([]float64{0.5, 0.9, 0.1}, b)
	if cosine(a, b) > 0.9 {
		t.Error("permute encoding failed to distinguish rotated inputs")
	}
}

func TestEncodePanicsOnBadArgs(t *testing.T) {
	e := MustNew(LevelID, testCfg(10))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong feature count did not panic")
			}
		}()
		e.Encode(make([]float64, 5), hdc.NewVec(512))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong output length did not panic")
			}
		}()
		e.Encode(make([]float64, 10), hdc.NewVec(64))
	}()
}

func TestEncodeAll(t *testing.T) {
	e := MustNew(Generic, testCfg(12))
	X := [][]float64{randInput(rng.New(1), 12), randInput(rng.New(2), 12)}
	vs := EncodeAll(e, X)
	if len(vs) != 2 || len(vs[0]) != 512 {
		t.Fatalf("EncodeAll shape wrong: %d × %d", len(vs), len(vs[0]))
	}
	single := hdc.NewVec(512)
	e.Encode(X[1], single)
	for i := range single {
		if vs[1][i] != single[i] {
			t.Fatal("EncodeAll disagrees with Encode")
		}
	}
}

func BenchmarkGenericEncode(b *testing.B) {
	cfg := Config{D: 4096, Features: 128, Bins: 64, Lo: 0, Hi: 1, N: 3, UseID: true, Seed: 1}
	e := MustNew(Generic, cfg)
	x := randInput(rng.New(1), 128)
	out := hdc.NewVec(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(x, out)
	}
}

func BenchmarkLevelIDEncode(b *testing.B) {
	cfg := Config{D: 4096, Features: 128, Bins: 64, Lo: 0, Hi: 1, Seed: 1}
	e := MustNew(LevelID, cfg)
	x := randInput(rng.New(1), 128)
	out := hdc.NewVec(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(x, out)
	}
}

func BenchmarkRPEncode(b *testing.B) {
	cfg := Config{D: 4096, Features: 128, Lo: 0, Hi: 1, Seed: 1}
	e := MustNew(RP, cfg)
	x := randInput(rng.New(1), 128)
	out := hdc.NewVec(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(x, out)
	}
}
