package encoding

import (
	"math"
	"testing"

	"github.com/edge-hdc/generic/internal/hdc"
)

// FuzzGenericEncode drives the GENERIC encoder through adversarial configs
// and inputs. Invalid configurations must surface as New errors — never
// panics — and any valid encoder must be deterministic two ways: re-encoding
// with the same encoder (scratch-state reuse) and encoding with a fresh
// encoder rebuilt from Config() both reproduce the hypervector bit for bit.
func FuzzGenericEncode(f *testing.F) {
	// Seed corpus: the window edge cases called out in the encoder docs.
	f.Add(uint64(1), 512, 8, 3, 16, true, []byte{0, 17, 200, 63, 5})   // nominal
	f.Add(uint64(2), 256, 2, 5, 8, true, []byte{1, 2})                 // window n > feature count
	f.Add(uint64(3), 100, 6, 3, 8, false, []byte{9, 9, 9})             // d=100 does not divide into 64-bit words
	f.Add(uint64(4), 256, 0, 3, 8, true, []byte{})                     // zero-feature input
	f.Add(uint64(5), 256, 6, 6, 8, false, []byte{40, 80, 120})         // id disabled, single full-width window
	f.Add(uint64(6), 512, 4, 3, -1, true, []byte{7})                   // negative bin count
	f.Add(uint64(7), 512, 4, -2, 16, true, []byte{7})                  // negative window length
	f.Add(uint64(8), 512, 5, 3, 16, true, []byte{255, 254, 3, 255, 0}) // NaN / +Inf features

	f.Fuzz(func(t *testing.T, seed uint64, d, features, n, bins int, useID bool, data []byte) {
		// Bound only the success-path allocation size; negative and
		// otherwise-invalid values stay in play so New's validation is
		// exercised.
		if d > 2048 || features > 64 || n > 32 || bins > 1025 {
			t.Skip("config too large for the fuzz harness")
		}
		cfg := Config{D: d, Features: features, Bins: bins, Lo: -4, Hi: 4, N: n, UseID: useID, Seed: seed}
		e, err := New(Generic, cfg)
		if err != nil {
			return // invalid configs must error, not panic
		}

		x := make([]float64, features)
		for i := range x {
			if len(data) == 0 {
				break
			}
			switch b := data[i%len(data)]; b {
			case 255:
				x[i] = math.NaN()
			case 254:
				x[i] = math.Inf(1)
			default:
				x[i] = (float64(b) - 128) / 16 // spills past [Lo, Hi] to hit the clamp bins
			}
		}

		out := hdc.NewVec(e.D())
		e.Encode(x, out)

		again := hdc.NewVec(e.D())
		e.Encode(x, again)
		if !vecsEqual(out, again) {
			t.Fatalf("re-encode with the same encoder diverged (cfg %+v)", e.Config())
		}

		fresh, err := New(e.Kind(), e.Config())
		if err != nil {
			t.Fatalf("Config() of a valid encoder was rejected: %v", err)
		}
		rebuilt := hdc.NewVec(fresh.D())
		fresh.Encode(x, rebuilt)
		if !vecsEqual(out, rebuilt) {
			t.Fatalf("fresh encoder from Config() diverged (cfg %+v)", e.Config())
		}
	})
}

func vecsEqual(a, b hdc.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
