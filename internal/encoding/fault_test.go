package encoding

import (
	"testing"

	"github.com/edge-hdc/generic/internal/hdc"
)

func faultCfg(useID bool) Config {
	return Config{D: 512, Features: 16, Bins: 16, Lo: 0, Hi: 1, N: 3, UseID: useID, Seed: 21}
}

var faultInput = []float64{0.1, 0.9, 0.4, 0.2, 0.8, 0.3, 0.7, 0.5, 0, 1, 0.6, 0.15, 0.85, 0.45, 0.55, 0.95}

func encodeOne(e Encoder, x []float64) hdc.Vec {
	out := make(hdc.Vec, e.D())
	e.Encode(x, out)
	return out
}

// Every level-based encoder must be Faultable, and RP must not be (it has
// no Fig. 4 level memory).
func TestFaultableCoverage(t *testing.T) {
	for _, kind := range Kinds() {
		e, err := New(kind, faultCfg(true))
		if err != nil {
			t.Fatal(err)
		}
		_, faultable := e.(Faultable)
		if kind == RP && faultable {
			t.Error("RP encoder claims to be Faultable")
		}
		if kind != RP && !faultable {
			t.Errorf("%v encoder is not Faultable", kind)
		}
		if _, ok := e.(MaterialCloner); !ok {
			t.Errorf("%v encoder is not a MaterialCloner", kind)
		}
	}
}

// Regenerate must discard arbitrary in-place corruption and restore material
// bit-identical to a freshly constructed encoder.
func TestRegenerateEqualsFresh(t *testing.T) {
	for _, tc := range []struct {
		kind  Kind
		useID bool
	}{
		{LevelID, false}, {Permute, false}, {Ngram, false},
		{Generic, false}, {Generic, true},
	} {
		name := tc.kind.String()
		if tc.useID {
			name += "+id"
		}
		t.Run(name, func(t *testing.T) {
			e, err := New(tc.kind, faultCfg(tc.useID))
			if err != nil {
				t.Fatal(err)
			}
			f := e.(Faultable)
			want := encodeOne(e, faultInput)

			// Corrupt the level memory and (when present) the id seed.
			for _, row := range f.LevelRows() {
				row.SetBit(3, 1-row.Bit(3))
				row.SetBit(100, 1-row.Bit(100))
			}
			if seed := f.IDSeed(); seed != nil {
				seed.SetBit(7, 1-seed.Bit(7))
			}
			f.RebuildDerived()
			if vecsEqual(encodeOne(e, faultInput), want) {
				t.Fatal("corruption did not change the encoding")
			}

			f.Regenerate()
			if !vecsEqual(encodeOne(e, faultInput), want) {
				t.Fatal("Regenerate is not bit-identical to fresh construction")
			}
		})
	}
}

// CloneMaterial must copy the *current* material — including corruption — so
// pooled encoders see the same faulted memory state as the primary.
func TestCloneMaterialPreservesCorruption(t *testing.T) {
	for _, tc := range []struct {
		kind  Kind
		useID bool
	}{
		{LevelID, false}, {Permute, false}, {Generic, true},
	} {
		t.Run(tc.kind.String(), func(t *testing.T) {
			e, err := New(tc.kind, faultCfg(tc.useID))
			if err != nil {
				t.Fatal(err)
			}
			f := e.(Faultable)
			for _, row := range f.LevelRows() {
				row.SetBit(11, 1-row.Bit(11))
			}
			f.RebuildDerived()
			want := encodeOne(e, faultInput)

			clone := f.CloneMaterial()
			if !vecsEqual(encodeOne(clone, faultInput), want) {
				t.Fatal("clone does not reproduce the corrupted encoding")
			}

			// The clone is independent: healing the original must not heal
			// material the clone owns (shared immutable material is allowed
			// only when mutation happens through Regenerate-replacement, as
			// here — the original re-allocates, the clone keeps its copy).
			f.Regenerate()
			if vecsEqual(encodeOne(e, faultInput), want) {
				t.Fatal("original still corrupted after Regenerate")
			}
			if !vecsEqual(encodeOne(clone, faultInput), want) {
				t.Fatal("Regenerate on the original mutated the clone's material")
			}
		})
	}
}

// RP's CloneMaterial shares immutable rows but must encode identically and
// stay safe for independent scratch use.
func TestRPCloneMaterial(t *testing.T) {
	e, err := New(RP, faultCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	clone := e.(MaterialCloner).CloneMaterial()
	if !vecsEqual(encodeOne(clone, faultInput), encodeOne(e, faultInput)) {
		t.Fatal("RP clone encodes differently")
	}
}
