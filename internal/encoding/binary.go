// Binarized query path: every library encoder can emit the sign-binarized
// hypervector sign(H(x)) directly into a packed hdc.BinVec, without
// materializing the intermediate integer vector. This is the encode side of
// the binary inference engine — for the level-based encoders the majority
// vote is taken word-parallel on bit-sliced counters, and for the windowed
// (GENERIC/ngram) encoder the whole window-bundle-threshold chain is fused
// into one kernel, which is where the batch-path speedup comes from.
//
// Contract: for any encoder e and input x, EncodeBin(x) produces exactly
// PackSigns(Encode(x)) — the equivalence tests lock this bit-identically.
package encoding

import (
	"fmt"
	"math/bits"

	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// BinaryEncoder is implemented by encoders that can produce a packed
// sign-binarized hypervector directly. All library encoders implement it.
type BinaryEncoder interface {
	Encoder
	// EncodeBin writes sign(H(x)) into out, which must have dimensionality
	// D(). The result is bit-identical to packing the signs of Encode(x).
	EncodeBin(x []float64, out *hdc.BinVec)
}

// AsBinary reports e's binarized query path, if it has one.
func AsBinary(e Encoder) (BinaryEncoder, bool) {
	be, ok := e.(BinaryEncoder)
	return be, ok
}

//generic:hotpath
func checkEncodeBinArgs(features, d int, x []float64, out *hdc.BinVec) {
	if len(x) != features {
		panic(fmt.Sprintf("encoding: input has %d features, encoder expects %d", len(x), features))
	}
	if out.D() != d {
		panic(fmt.Sprintf("encoding: binary output dimensionality %d, want %d", out.D(), d))
	}
}

// EncodeBin for RP packs the projection signs directly: bit i = 1 exactly
// when the accumulated projection is >= 0, matching sign(Φx) → ±1 → pack.
//
//generic:hotpath
func (e *rpEncoder) EncodeBin(x []float64, out *hdc.BinVec) {
	start := telemetry.Now()
	checkEncodeBinArgs(len(e.rows), e.d, x, out)
	acc := e.acc
	for i := range acc {
		acc[i] = 0
	}
	for m, v := range x {
		row := e.rows[m]
		if v == 0 {
			continue
		}
		for i, p := range row {
			acc[i] += v * p
		}
	}
	words := out.Words()
	for w := range words {
		var word uint64
		base := w * hdc.WordBits
		for b := 0; b < hdc.WordBits; b++ {
			if acc[base+b] >= 0 {
				word |= 1 << uint(b)
			}
		}
		words[w] = word
	}
	telemetry.EncodeNS.ObserveSince(start)
}

//generic:hotpath
func (e *levelIDEncoder) EncodeBin(x []float64, out *hdc.BinVec) {
	start := telemetry.Now()
	checkEncodeBinArgs(len(e.ids), e.cfg.D, x, out)
	e.acc.Reset()
	for m, v := range x {
		lv := e.levels.Level(e.levels.Quantize(v, e.cfg.Lo, e.cfg.Hi))
		hdc.XorInto(e.bound, lv, e.ids[m])
		e.acc.Add(e.bound)
	}
	e.acc.MajorityInto(out)
	telemetry.EncodeNS.ObserveSince(start)
}

//generic:hotpath
func (e *permuteEncoder) EncodeBin(x []float64, out *hdc.BinVec) {
	start := telemetry.Now()
	checkEncodeBinArgs(e.cfg.Features, e.cfg.D, x, out)
	e.acc.Reset()
	for m, v := range x {
		lv := e.levels.Level(e.levels.Quantize(v, e.cfg.Lo, e.cfg.Hi))
		hdc.RotateInto(e.rot, lv, m)
		e.acc.Add(e.rot)
	}
	e.acc.MajorityInto(out)
	telemetry.EncodeNS.ObserveSince(start)
}

// binScratch is the windowed encoder's fused-kernel working set, sized once
// at construction (window count and plane depth are functions of the
// configuration alone, so Regenerate never needs to touch it).
type binScratch struct {
	rows [][]uint64 // per-offset level word rows of the current window (generic-n gather)
	// win is the transposed fused-window buffer: win[w*windows+i] holds word
	// w of bound window i, so the counting pass reads each word's window
	// stream contiguously.
	win []uint64
	// hi holds the bit-sliced counter planes for count bits 3 and up; bits
	// 0-2 live in registers inside the counting pass and are never stored.
	hi [][]uint64
}

func newBinScratch(cfg Config) *binScratch {
	windows := cfg.Features - cfg.N + 1
	nw := cfg.D / hdc.WordBits
	s := &binScratch{
		rows: make([][]uint64, cfg.N),
		win:  make([]uint64, windows*nw),
	}
	if planes := bits.Len(uint(windows)) - 3; planes > 0 {
		s.hi = make([][]uint64, planes)
		for k := range s.hi {
			s.hi[k] = make([]uint64, nw)
		}
	}
	return s
}

// csa is a carry-save full adder over 64 lanes: sum = a ^ b ^ c,
// carry = majority(a, b, c). Small enough to inline into the hot loop.
func csa(a, b, c uint64) (sum, carry uint64) {
	u := a ^ b
	return u ^ c, (a & b) | (u & c)
}

// EncodeBin for the windowed (GENERIC/ngram) encoder fuses the whole
// pipeline — window XOR, counter bundling, and majority threshold — into two
// tight passes, and the integer hypervector never exists.
//
// Pass 1 XOR-combines each window's rotated level rows (and id) into a
// transposed buffer, so pass 2 sees each 64-lane word's window stream
// contiguously. Pass 2 counts votes per lane with a Harley-Seal carry-save
// tree: seven full adders compress eight windows into running weight-1/2/4
// registers plus one weight-8 word, and only that weight-8 word ripples into
// the bit-sliced counter planes — one memory-plane visit per eight windows
// instead of the naive one-ripple-per-window, which is what an accumulator
// of per-lane counts (the exact path's Acc) has to do. The final majority
// threshold count >= ceil(W/2) is a word-parallel borrow subtraction
// emitting packed sign bits directly.
//
//generic:hotpath
func (e *windowedEncoder) EncodeBin(x []float64, out *hdc.BinVec) {
	start := telemetry.Now()
	checkEncodeBinArgs(e.cfg.Features, e.cfg.D, x, out)
	n := e.cfg.N
	bins := e.bins
	for m, v := range x {
		bins[m] = e.quant.Quantize(v, e.cfg.Lo, e.cfg.Hi)
	}
	nw := e.cfg.D / hdc.WordBits
	windows := len(x) - n + 1
	win := e.bin.win

	// Pass 1: gather and bind. The common window widths keep every row
	// header in a register; other widths go through the rows scratch.
	for i := 0; i < windows; i++ {
		var id []uint64
		if e.useID {
			id = e.ids[i].Words()
		}
		switch n {
		case 2:
			r0 := e.rotLevels[0][bins[i]].Words()
			r1 := e.rotLevels[1][bins[i+1]].Words()
			if id != nil {
				for w := 0; w < nw; w++ {
					win[w*windows+i] = r0[w] ^ r1[w] ^ id[w]
				}
			} else {
				for w := 0; w < nw; w++ {
					win[w*windows+i] = r0[w] ^ r1[w]
				}
			}
		case 3:
			r0 := e.rotLevels[0][bins[i]].Words()
			r1 := e.rotLevels[1][bins[i+1]].Words()
			r2 := e.rotLevels[2][bins[i+2]].Words()
			if id != nil {
				for w := 0; w < nw; w++ {
					win[w*windows+i] = r0[w] ^ r1[w] ^ r2[w] ^ id[w]
				}
			} else {
				for w := 0; w < nw; w++ {
					win[w*windows+i] = r0[w] ^ r1[w] ^ r2[w]
				}
			}
		default:
			rows := e.bin.rows
			for j := 0; j < n; j++ {
				rows[j] = e.rotLevels[j][bins[i+j]].Words()
			}
			r0 := rows[0]
			for w := 0; w < nw; w++ {
				t := r0[w]
				for j := 1; j < n; j++ {
					t ^= rows[j][w]
				}
				if id != nil {
					t ^= id[w]
				}
				win[w*windows+i] = t
			}
		}
	}

	hi := e.bin.hi
	for k := range hi {
		p := hi[k]
		for w := range p {
			p[w] = 0
		}
	}

	// Pass 2: count and threshold. Majority: bit = 1 iff
	// count >= ceil(W/2), i.e. 2·count − W >= 0 — the sign rule. The borrow
	// of (count − thr) computed word-parallel is set exactly for the lanes
	// below threshold.
	thr := uint64(windows+1) / 2
	nk := bits.Len(uint(windows))
	words := out.Words()
	for w := 0; w < nw; w++ {
		row := win[w*windows : (w+1)*windows]
		var ones, twos, fours uint64
		i := 0
		for ; i+8 <= len(row); i += 8 {
			var twosA, twosB, foursA, foursB, eights uint64
			ones, twosA = csa(row[i], row[i+1], ones)
			ones, twosB = csa(row[i+2], row[i+3], ones)
			twos, foursA = csa(twosA, twosB, twos)
			ones, twosA = csa(row[i+4], row[i+5], ones)
			ones, twosB = csa(row[i+6], row[i+7], ones)
			twos, foursB = csa(twosA, twosB, twos)
			fours, eights = csa(foursA, foursB, fours)
			for k := 0; eights != 0; k++ {
				p := hi[k]
				p[w], eights = p[w]^eights, p[w]&eights
			}
		}
		for ; i < len(row); i++ {
			a := row[i]
			c2 := ones & a
			ones ^= a
			c4 := twos & c2
			twos ^= c2
			c8 := fours & c4
			fours ^= c4
			for k := 0; c8 != 0; k++ {
				p := hi[k]
				p[w], c8 = p[w]^c8, p[w]&c8
			}
		}
		borrow := uint64(0)
		for k := 0; k < nk; k++ {
			var c uint64
			switch k {
			case 0:
				c = ones
			case 1:
				c = twos
			case 2:
				c = fours
			default:
				c = hi[k-3][w]
			}
			var tb uint64
			if thr>>uint(k)&1 == 1 {
				tb = ^uint64(0)
			}
			borrow = ^c&(tb|borrow) | tb&borrow
		}
		words[w] = ^borrow
	}
	telemetry.EncodeNS.ObserveSince(start)
}
