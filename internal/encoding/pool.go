package encoding

import (
	"runtime"
	"sync"

	"github.com/edge-hdc/generic/internal/hdc"
)

// Pool is a set of functionally identical encoders for concurrent batch
// encoding. Individual encoders carry scratch state and are not safe for
// concurrent use; a Pool builds one encoder per worker from the same
// configuration (hence identical hypervector material — the outputs are
// bit-identical to sequential encoding).
type Pool struct {
	encs []Encoder
}

// NewPool builds a pool of workers encoders (≤ 0 means GOMAXPROCS).
func NewPool(kind Kind, cfg Config, workers int) (*Pool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	for i := 0; i < workers; i++ {
		e, err := New(kind, cfg)
		if err != nil {
			return nil, err
		}
		p.encs = append(p.encs, e)
	}
	return p, nil
}

// Workers reports the pool size; D the encoders' dimensionality.
func (p *Pool) Workers() int { return len(p.encs) }
func (p *Pool) D() int       { return p.encs[0].D() }

// EncodeAll encodes every row of X concurrently and returns the
// hypervectors in input order. Results are identical to sequential
// EncodeAll with any of the pool's encoders.
func (p *Pool) EncodeAll(X [][]float64) []hdc.Vec {
	out := make([]hdc.Vec, len(X))
	if len(X) == 0 {
		return out
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, enc := range p.encs {
		wg.Add(1)
		go func(enc Encoder) {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(X) {
					return
				}
				v := hdc.NewVec(enc.D())
				enc.Encode(X[i], v)
				out[i] = v
			}
		}(enc)
	}
	wg.Wait()
	return out
}
