package encoding

import (
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/parallel"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// Pool is a set of functionally identical encoders for concurrent batch
// encoding. Individual encoders carry scratch state and are not safe for
// concurrent use; a Pool builds one encoder per worker from the same
// configuration (hence identical hypervector material — the outputs are
// bit-identical to sequential encoding).
type Pool struct {
	encs []Encoder
}

// NewPool builds a pool of workers encoders (≤ 0 means GOMAXPROCS).
func NewPool(kind Kind, cfg Config, workers int) (*Pool, error) {
	workers = parallel.Workers(workers)
	p := &Pool{}
	for i := 0; i < workers; i++ {
		e, err := New(kind, cfg)
		if err != nil {
			return nil, err
		}
		p.encs = append(p.encs, e)
	}
	return p, nil
}

// NewPoolFrom builds a pool of workers encoders cloned from e. Library
// encoders implement MaterialCloner, so clones carry a bit-exact copy of e's
// *current* material — including any fault-layer corruption — and pool
// outputs are bit-identical to encoding with e itself. Foreign encoders fall
// back to reconstruction from Kind and Config, whose contract guarantees
// identical pristine material.
func NewPoolFrom(e Encoder, workers int) (*Pool, error) {
	mc, ok := e.(MaterialCloner)
	if !ok {
		return NewPool(e.Kind(), e.Config(), workers)
	}
	workers = parallel.Workers(workers)
	p := &Pool{}
	for i := 0; i < workers; i++ {
		p.encs = append(p.encs, mc.CloneMaterial())
	}
	return p, nil
}

// Workers reports the pool size; D the encoders' dimensionality.
func (p *Pool) Workers() int { return len(p.encs) }
func (p *Pool) D() int       { return p.encs[0].D() }

// EncodeAll encodes every row of X concurrently — contiguous chunks of the
// batch, one per pool encoder — and returns the hypervectors in input
// order. Results are identical to sequential EncodeAll with any of the
// pool's encoders.
func (p *Pool) EncodeAll(X [][]float64) []hdc.Vec {
	sp := perf.Begin("encode.batch")
	defer sp.End()
	telemetry.EncodeBatches.Inc()
	telemetry.EncodeBatchSamples.Add(int64(len(X)))
	out := make([]hdc.Vec, len(X))
	parallel.For(len(p.encs), len(X), func(worker, i int) {
		enc := p.encs[worker]
		v := hdc.NewVec(enc.D())
		enc.Encode(X[i], v)
		out[i] = v
	})
	return out
}

// EncodeAllWorkers encodes X with workers parallel encoders cloned from e
// (workers ≤ 0 means GOMAXPROCS). It is the batch-first form of EncodeAll:
// serial encoding with e when a single worker suffices (or the batch is too
// small to amortize cloning the encoder material), a transient Pool
// otherwise. Outputs are bit-identical either way.
func EncodeAllWorkers(e Encoder, X [][]float64, workers int) []hdc.Vec {
	w := parallel.Workers(workers)
	if w > len(X) {
		w = len(X)
	}
	if w <= 1 || len(X) < 2*w {
		return EncodeAll(e, X)
	}
	p, err := NewPoolFrom(e, w)
	if err != nil {
		// The configuration built e, so cloning cannot fail for library
		// encoders; a foreign Encoder whose Config does not round-trip
		// falls back to the serial path.
		return EncodeAll(e, X)
	}
	return p.EncodeAll(X)
}
