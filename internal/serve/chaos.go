package serve

import (
	"sync"
	"time"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/rng"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// Chaos is a seeded fault-and-latency injector used to prove the serving
// core degrades gracefully instead of falling over. Two independent
// torments, both deterministic from the seed:
//
//   - Step injects a small randomized persistent fault (class/level/norm
//     site, uniform or burst corruption) through the core's
//     clone-modify-publish path — the background scrub loop then has real
//     damage to detect and repair, and /healthz has real degradation to
//     report.
//   - Latency returns a randomized handler delay (up to MaxLatency, drawn
//     on roughly half of requests) that the HTTP layer sleeps before
//     serving, which drives the admission gates and per-request deadlines
//     under test the way a saturated CPU would in production.
//
// All methods are safe for concurrent use.
type Chaos struct {
	mu         sync.Mutex
	r          *rng.Rand
	maxLatency time.Duration
}

// NewChaos builds a chaos driver. maxLatency bounds injected handler
// delays; 0 disables latency injection.
func NewChaos(seed uint64, maxLatency time.Duration) *Chaos {
	return &Chaos{r: rng.New(seed), maxLatency: maxLatency}
}

// chaosSites are the persistent fault sites Step rotates through. Class
// memory dominates (it is the guarded, repairable one); level and norm
// memory prove the regeneration and norm-recompute repair paths.
var chaosSites = []generic.FaultSite{
	generic.FaultSiteClass,
	generic.FaultSiteClass,
	generic.FaultSiteLevel,
	generic.FaultSiteNorm,
}

// Step injects one randomized fault into the core. The spec is drawn from
// the chaos stream, so a given seed produces the same torment sequence on
// every run. Returns the bits flipped.
func (c *Chaos) Step(core *Core) (int, error) {
	c.mu.Lock()
	site := chaosSites[int(c.r.Uint64()%uint64(len(chaosSites)))]
	kind := generic.FaultUniform
	if c.r.Uint64()%4 == 0 {
		kind = generic.FaultBurst
	}
	// Rates in the BER band the paper's Fig. 6 shows HDC absorbing —
	// enough corruption to trip CRC guards, not enough to destroy the
	// model between scrub ticks.
	rate := 0.0005 + c.r.Float64()*0.002
	spec := generic.FaultSpec{
		Site: site, Kind: kind, Rate: rate,
		Lane: int(c.r.Uint64() % 16),
		Seed: c.r.Uint64(),
	}
	c.mu.Unlock()
	n, err := core.InjectFaults(spec)
	if err != nil {
		return n, err
	}
	telemetry.ChaosInjections.Inc()
	return n, nil
}

// Latency draws the next injected handler delay: zero half the time,
// otherwise uniform in (0, MaxLatency]. Deterministic from the seed in
// sequence, though under concurrent handlers the interleaving is the
// client's schedule.
func (c *Chaos) Latency() time.Duration {
	if c == nil || c.maxLatency <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.r.Uint64()%2 == 0 {
		return 0
	}
	return time.Duration(c.r.Float64() * float64(c.maxLatency))
}

// StartChaos launches the torment loop: every interval it injects one
// Step fault into the core. The returned stop function halts the loop.
func (c *Chaos) StartChaos(core *Core, interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				// Injection can race shutdown (core closed) — chaos is
				// best-effort by definition.
				_, _ = c.Step(core)
			}
		}
	}()
	return func() { close(done); <-finished }
}
