package serve

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/rng"
)

// testPipeline trains a small two-class pipeline on a separable synthetic
// problem.
func testPipeline(t testing.TB, d int) (*generic.Pipeline, [][]float64, []int) {
	t.Helper()
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: d, Features: 6, Lo: 0, Hi: 1, UseID: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var X [][]float64
	var Y []int
	for i := 0; i < 48; i++ {
		x := make([]float64, 6)
		c := i % 2
		for j := range x {
			if (j < 3) == (c == 0) {
				x[j] = 0.85
			} else {
				x[j] = 0.15
			}
		}
		X = append(X, x)
		Y = append(Y, c)
	}
	p := generic.NewPipeline(enc, 2)
	if _, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return p, X, Y
}

// modelBytes serializes a pipeline for bit-exact state comparison.
func modelBytes(t testing.TB, p *generic.Pipeline) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// adaptStream generates a deterministic sequence of adapt steps that force
// real model updates (each sample is labeled with the opposite class).
func adaptStream(n int, seed uint64) ([][]float64, []int) {
	r := rng.New(seed)
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := range X {
		x := make([]float64, 6)
		c := int(r.Uint64() % 2)
		for j := range x {
			base := 0.15
			if (j < 3) == (c == 0) {
				base = 0.85
			}
			x[j] = base + (r.Float64()-0.5)*0.1
		}
		X[i] = x
		Y[i] = 1 - c // deliberately wrong: guarantees perceptron updates
	}
	return X, Y
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adapt.wal")
	w, recs, lastSeq, err := OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || lastSeq != 0 {
		t.Fatalf("fresh WAL: %d records, seq %d", len(recs), lastSeq)
	}
	want := []Record{
		{Seq: 1, Label: 0, X: []float64{0.25, -1, 3.5}},
		{Seq: 2, Label: 1, X: []float64{0.5}},
		{Seq: 3, Label: -7, X: nil}, // negative labels and empty features round-trip
	}
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, lastSeq, err := OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if lastSeq != 3 {
		t.Errorf("lastSeq = %d, want 3", lastSeq)
	}
	if len(recs) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Seq != want[i].Seq || rec.Label != want[i].Label || len(rec.X) != len(want[i].X) {
			t.Errorf("record %d = %+v, want %+v", i, rec, want[i])
		}
		for j := range rec.X {
			if rec.X[j] != want[i].X[j] {
				t.Errorf("record %d feature %d = %v, want %v", i, j, rec.X[j], want[i].X[j])
			}
		}
	}
}

// TestWALTornTail simulates a crash mid-append: a truncated final frame must
// be repaired away on open, preserving every intact record before it.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adapt.wal")
	w, _, _, err := OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.Append(Record{Seq: seq, Label: 1, X: []float64{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Tear the tail: chop the last 5 bytes (mid-CRC of record 3).
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	w2, recs, lastSeq, err := OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || lastSeq != 2 {
		t.Fatalf("after torn tail: %d records, seq %d; want 2, 2", len(recs), lastSeq)
	}
	// The repaired log must accept appends cleanly on the frame boundary.
	if err := w2.Append(Record{Seq: 3, Label: 0, X: []float64{9}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs, lastSeq, err = OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || lastSeq != 3 {
		t.Errorf("after repair+append: %d records, seq %d; want 3, 3", len(recs), lastSeq)
	}
}

// TestWALCorruptRecord flips a payload byte mid-log: the scan must stop at
// the last intact frame rather than replay damage.
func TestWALCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adapt.wal")
	w, _, _, err := OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	for seq := uint64(1); seq <= 3; seq++ {
		pos, _ := w.f.Seek(0, io.SeekCurrent)
		offsets = append(offsets, pos)
		if err := w.Append(Record{Seq: seq, Label: 1, X: []float64{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Corrupt one byte inside record 2's payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[offsets[1]+8] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, lastSeq, err := OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || lastSeq != 1 {
		t.Errorf("after corrupt middle: %d records, seq %d; want 1, 1", len(recs), lastSeq)
	}

	// A clobbered header is a hard error — the file is not a WAL.
	if err := os.WriteFile(path, []byte("not a wal header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenWAL(path, SyncAlways); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	p, X, _ := testPipeline(t, 256)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := WriteCheckpoint(path, p, 42); err != nil {
		t.Fatal(err)
	}
	got, seq, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Errorf("lastSeq = %d, want 42", seq)
	}
	if !bytes.Equal(modelBytes(t, got), modelBytes(t, p)) {
		t.Error("checkpointed model differs from original")
	}
	w0, _ := p.Predict(X[0])
	g0, _ := got.Predict(X[0])
	if w0 != g0 {
		t.Errorf("checkpointed predict = %d, want %d", g0, w0)
	}

	// A flipped header byte must fail the CRC, not load silently.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[6] ^= 0xff // lastSeq field
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(path); err == nil {
		t.Error("corrupt checkpoint header accepted")
	}

	// Missing file surfaces os.ErrNotExist so Open can fall back.
	if _, _, err := ReadCheckpoint(filepath.Join(t.TempDir(), "absent")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing checkpoint: err = %v, want os.ErrNotExist", err)
	}
}

// TestKillAndReplay is the durability contract: every acknowledged adapt
// survives an unclean death. A core takes adapts in a state dir and is
// abandoned without Close (the in-process equivalent of kill -9 — nothing
// is flushed or checkpointed beyond what Append already made durable); a
// fresh core on the same dir must replay to bit-identical model state.
func TestKillAndReplay(t *testing.T) {
	p, _, _ := testPipeline(t, 256)
	dir := t.TempDir()
	core, err := Open(p.Clone(), Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	AX, AY := adaptStream(16, 11)
	updates := 0
	for i := range AX {
		_, updated, err := core.Adapt(AX[i], AY[i])
		if err != nil {
			t.Fatal(err)
		}
		if updated {
			updates++
		}
	}
	if updates == 0 {
		t.Fatal("adapt stream produced no updates; the test is vacuous")
	}
	want := modelBytes(t, core.Current().Pipeline)
	// Abandon core without Close: no checkpoint, WAL handle simply leaks.

	reborn, err := Open(p.Clone(), Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	if got := reborn.Replayed(); got != len(AX) {
		t.Errorf("replayed %d adapts, want %d", got, len(AX))
	}
	if !bytes.Equal(modelBytes(t, reborn.Current().Pipeline), want) {
		t.Error("replayed model differs from the acknowledged pre-crash state")
	}
	if snap := reborn.Current(); snap.Seq != uint64(len(AX)) {
		t.Errorf("reborn snapshot seq = %d, want %d", snap.Seq, len(AX))
	}

	// The reborn core continues the sequence where the dead one stopped.
	if _, _, err := reborn.Adapt(AX[0], AY[0]); err != nil {
		t.Fatal(err)
	}
	if snap := reborn.Current(); snap.Seq != uint64(len(AX))+1 {
		t.Errorf("post-replay adapt seq = %d, want %d", snap.Seq, len(AX)+1)
	}
}

// TestCheckpointSeqSkip pins crash safety of the checkpoint-then-truncate
// pair: a checkpoint written WITHOUT the WAL truncate (the crash-between
// interleaving) must not double-apply the logged records on restart.
func TestCheckpointSeqSkip(t *testing.T) {
	p, _, _ := testPipeline(t, 256)
	dir := t.TempDir()
	core, err := Open(p.Clone(), Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	AX, AY := adaptStream(8, 13)
	for i := range AX {
		if _, _, err := core.Adapt(AX[i], AY[i]); err != nil {
			t.Fatal(err)
		}
	}
	snap := core.Current()
	want := modelBytes(t, snap.Pipeline)
	// Simulate the torn interleaving: checkpoint lands, truncate never runs.
	if err := WriteCheckpoint(filepath.Join(dir, checkpointFile), snap.Pipeline, snap.Seq); err != nil {
		t.Fatal(err)
	}

	// Restart: the checkpoint is the truth, every WAL record is stale.
	reborn, err := Open(nil, Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	if got := reborn.Replayed(); got != 0 {
		t.Errorf("replayed %d stale records, want 0 (all at or below checkpoint seq)", got)
	}
	if !bytes.Equal(modelBytes(t, reborn.Current().Pipeline), want) {
		t.Error("restart state differs after checkpoint-without-truncate")
	}

	// And a proper Checkpoint does truncate: a third life replays nothing
	// and the WAL is back to bare header.
	if err := reborn.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(filepath.Join(dir, walFile)); err != nil || info.Size() != int64(walHeaderLen) {
		t.Errorf("WAL after checkpoint: size %v, err %v; want bare header", info.Size(), err)
	}
}

// TestOpenPrecedence: a checkpoint beats the caller's pipeline; no pipeline
// and no checkpoint is an error; untrained pipelines are rejected.
func TestOpenPrecedence(t *testing.T) {
	p, X, _ := testPipeline(t, 256)
	dir := t.TempDir()
	core, err := Open(p, Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	AX, AY := adaptStream(4, 17)
	for i := range AX {
		if _, _, err := core.Adapt(AX[i], AY[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := core.Close(); err != nil { // checkpoints
		t.Fatal(err)
	}
	want := modelBytes(t, core.Current().Pipeline)
	if !HasCheckpoint(dir) {
		t.Fatal("Close did not leave a checkpoint")
	}

	// A different (untouched) pipeline is ignored in favor of the checkpoint.
	fresh, _, _ := testPipeline(t, 256)
	reopened, err := Open(fresh, Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if !bytes.Equal(modelBytes(t, reopened.Current().Pipeline), want) {
		t.Error("checkpoint did not take precedence over the provided pipeline")
	}
	if _, err := reopened.Current().Pipeline.Predict(X[0]); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(nil, Options{}); err == nil {
		t.Error("Open with no pipeline and no checkpoint succeeded")
	}
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 128, Features: 6, Lo: 0, Hi: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(generic.NewPipeline(enc, 2), Options{}); err == nil {
		t.Error("Open with untrained pipeline succeeded")
	}
}

// TestConcurrentPredictAdaptRace is the snapshot-isolation hammer (run under
// -race in CI): readers predict lock-free on whatever snapshot is current
// while one adapter publishes a storm of updates; afterward the core's state
// must be bit-identical to the same adapt sequence applied serially.
func TestConcurrentPredictAdaptRace(t *testing.T) {
	p, X, _ := testPipeline(t, 256)
	core, err := Open(p.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()

	const nAdapts = 200
	AX, AY := adaptStream(nAdapts, 23)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				snap := core.Current()
				label, err := snap.Pipeline.Predict(X[(g+i)%len(X)])
				if err != nil {
					t.Errorf("concurrent predict: %v", err)
					return
				}
				if label < 0 || label > 1 {
					t.Errorf("concurrent predict returned label %d", label)
					return
				}
				// Health reads share the snapshot too (the /healthz path).
				if _, err := snap.Pipeline.Health(); err != nil {
					t.Errorf("concurrent health: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < nAdapts; i++ {
		if _, _, err := core.Adapt(AX[i], AY[i]); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	// Serial oracle: the identical sequence applied to a lone clone.
	oracle := p.Clone()
	for i := 0; i < nAdapts; i++ {
		if _, _, err := oracle.Adapt(AX[i], AY[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(modelBytes(t, core.Current().Pipeline), modelBytes(t, oracle)) {
		t.Error("concurrent core state differs from the serial oracle")
	}
	if v := core.Current().Version; v != uint64(1+nAdapts) {
		t.Errorf("snapshot version = %d, want %d", v, 1+nAdapts)
	}
}

// TestHealthStateMachine walks ok → degraded (injected damage) → ok (scrub)
// and ok → failing (WAL sabotage) → recovery via the next good mutation.
func TestHealthStateMachine(t *testing.T) {
	p, _, _ := testPipeline(t, 512)
	dir := t.TempDir()
	core, err := Open(p.Clone(), Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	if got := core.State(); got != StateOK {
		t.Fatalf("initial state = %v, want ok", got)
	}

	// Injected damage: degraded, still serving.
	if _, err := core.InjectFaults(generic.FaultSpec{
		Site: generic.FaultSiteClass, Kind: generic.FaultBankFail, Lane: 2, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	if got := core.State(); got != StateDegraded {
		t.Errorf("state after bank fault = %v, want degraded", got)
	}
	if _, err := core.Current().Pipeline.Predict(make([]float64, 6)); err != nil {
		t.Errorf("degraded predict failed: %v", err)
	}

	// Scrub clears the pending damage (masked lanes may persist — the state
	// then stays degraded, which is correct; only failing is forbidden).
	if _, err := core.Scrub(); err != nil {
		t.Fatal(err)
	}
	if got := core.State(); got == StateFailing {
		t.Errorf("state after scrub = %v", got)
	}
	h, err := core.Current().Pipeline.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.PendingFaults != 0 {
		t.Errorf("pending faults after scrub = %d, want 0", h.PendingFaults)
	}

	// WAL sabotage: close the log's file underneath it. The next adapt must
	// refuse the update with ErrWAL, keep the published snapshot untouched,
	// and flip the machine to failing.
	AX, AY := adaptStream(1, 29)
	before := core.Current()
	core.wal.f.Close()
	if _, _, err := core.Adapt(AX[0], AY[0]); !errors.Is(err, ErrWAL) {
		t.Fatalf("adapt with dead WAL: err = %v, want ErrWAL", err)
	}
	if got := core.State(); got != StateFailing {
		t.Errorf("state after WAL failure = %v, want failing", got)
	}
	if core.Current() != before {
		t.Error("failed adapt published a snapshot")
	}

	// Recovery: a successful mutation (the scrub tick) re-derives ok/degraded.
	if _, err := core.Scrub(); err != nil {
		t.Fatal(err)
	}
	if got := core.State(); got == StateFailing {
		t.Error("state stuck at failing after a successful scrub")
	}
	// Disarm Close's checkpoint-to-dead-WAL: reopen the log so the deferred
	// Close can sync it. (Production restarts the process here.)
	w, _, _, err := OpenWAL(filepath.Join(dir, walFile), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	core.wal = w
}

// TestDriftDegradesState: the model-quality drift alarm folds into the
// health verdict as a degraded cause, ranks below failing, and clears.
func TestDriftDegradesState(t *testing.T) {
	p, _, _ := testPipeline(t, 512)
	core, err := Open(p.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	if core.Drift() || core.State() != StateOK {
		t.Fatalf("initial drift=%v state=%v, want false/ok", core.Drift(), core.State())
	}
	core.SetDrift(true)
	if !core.Drift() || core.State() != StateDegraded {
		t.Fatalf("after SetDrift(true): drift=%v state=%v, want true/degraded", core.Drift(), core.State())
	}
	core.SetDrift(false)
	if got := core.State(); got != StateOK {
		t.Fatalf("after SetDrift(false): state = %v, want ok", got)
	}

	// Drift must not mask a harder verdict: force failing underneath.
	core.state.Store(int32(StateFailing))
	core.SetDrift(true)
	if got := core.State(); got != StateFailing {
		t.Fatalf("drift over failing: state = %v, want failing", got)
	}
}

func TestGate(t *testing.T) {
	if g := NewGate(0); g != nil {
		t.Error("NewGate(0) should be the nil unlimited gate")
	}
	var unlimited *Gate
	if !unlimited.TryAcquire() || unlimited.InFlight() != 0 || unlimited.Cap() != 0 {
		t.Error("nil gate must admit everything")
	}
	unlimited.Release()

	g := NewGate(2)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("gate refused admission under capacity")
	}
	if g.TryAcquire() {
		t.Error("gate admitted past capacity")
	}
	if g.InFlight() != 2 || g.Cap() != 2 {
		t.Errorf("InFlight=%d Cap=%d, want 2, 2", g.InFlight(), g.Cap())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Error("gate refused admission after release")
	}
}

// TestChaos pins the chaos driver: latency draws are deterministic per seed
// and bounded; Step degrades a live core in a way the scrub loop repairs.
func TestChaos(t *testing.T) {
	const maxLat = 20 * time.Millisecond
	a, b := NewChaos(9, maxLat), NewChaos(9, maxLat)
	sawNonzero := false
	for i := 0; i < 64; i++ {
		la, lb := a.Latency(), b.Latency()
		if la != lb {
			t.Fatalf("draw %d: %v != %v (same seed)", i, la, lb)
		}
		if la < 0 || la > maxLat {
			t.Fatalf("draw %d: latency %v out of bounds", i, la)
		}
		if la > 0 {
			sawNonzero = true
		}
	}
	if !sawNonzero {
		t.Error("64 draws produced no nonzero latency")
	}
	var nilChaos *Chaos
	if nilChaos.Latency() != 0 {
		t.Error("nil chaos must inject nothing")
	}

	p, _, _ := testPipeline(t, 512)
	core, err := Open(p.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	c := NewChaos(3, 0)
	injected := 0
	for i := 0; i < 8; i++ {
		n, err := c.Step(core)
		if err != nil {
			t.Fatal(err)
		}
		injected += n
	}
	if injected == 0 {
		t.Error("8 chaos steps flipped no bits")
	}
	if got := core.State(); got == StateFailing {
		t.Errorf("chaos drove the core to failing: %v", got)
	}
	if _, err := core.Scrub(); err != nil {
		t.Fatal(err)
	}
	h, err := core.Current().Pipeline.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.PendingFaults != 0 {
		t.Errorf("pending faults after post-chaos scrub = %d, want 0", h.PendingFaults)
	}
}

// TestLoops smoke-tests the background scrub and chaos tickers: they run,
// they publish, and their stop functions return without leaking.
func TestLoops(t *testing.T) {
	p, _, _ := testPipeline(t, 256)
	core, err := Open(p.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()

	stopScrub := core.StartScrubLoop(2 * time.Millisecond)
	c := NewChaos(5, 0)
	stopChaos := c.StartChaos(core, 2*time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	stopChaos()
	stopScrub()
	if v := core.Current().Version; v < 2 {
		t.Errorf("loops published no snapshots (version %d)", v)
	}
	if got := core.State(); got == StateFailing {
		t.Errorf("loops drove the core to failing")
	}
	// Zero intervals are disabled loops.
	core.StartScrubLoop(0)()
	c.StartChaos(core, 0)()
}
