package serve

// Gate is a bounded-concurrency admission controller: a counting semaphore
// that never blocks. The HTTP layer tries to acquire a slot per request and
// sheds with 429 + Retry-After when none is free, so overload surfaces as
// fast, explicit backpressure instead of unbounded queueing and latency
// collapse. A nil *Gate admits everything (admission disabled).
type Gate struct {
	slots chan struct{}
}

// NewGate builds a gate admitting at most n concurrent holders. n <= 0
// returns nil — the unlimited gate.
func NewGate(n int) *Gate {
	if n <= 0 {
		return nil
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// TryAcquire claims a slot without blocking, reporting whether admission
// succeeded. Every true must be paired with exactly one Release.
func (g *Gate) TryAcquire() bool {
	if g == nil {
		return true
	}
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	<-g.slots
}

// InFlight reports the number of currently held slots.
func (g *Gate) InFlight() int {
	if g == nil {
		return 0
	}
	return len(g.slots)
}

// Cap reports the gate's concurrency bound (0 for the unlimited gate).
func (g *Gate) Cap() int {
	if g == nil {
		return 0
	}
	return cap(g.slots)
}
