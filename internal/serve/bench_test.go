package serve

import (
	"sort"
	"sync"
	"testing"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// lockedPipeline is the pre-snapshot serving architecture: one RWMutex over
// the pipeline, readers share, adapts exclude. It exists only as the
// benchmark baseline the snapshot core is measured against.
type lockedPipeline struct {
	mu sync.RWMutex
	p  *generic.Pipeline
}

func (l *lockedPipeline) predict(x []float64) (int, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.p.Predict(x)
}

func (l *lockedPipeline) adapt(x []float64, label int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _, err := l.p.Adapt(x, label)
	return err
}

// BenchmarkPredictUnderAdaptStorm measures predict latency while a
// background goroutine adapts as fast as it can — the overload scenario the
// snapshot architecture exists for. The rwmutex baseline blocks every
// reader for the full duration of each adapt; the snapshot core pays one
// atomic load. Tail latency (p99-ns, reported per sub-benchmark) is the
// number that matters: it bounds the worst predict a client sees during an
// adapt storm.
func BenchmarkPredictUnderAdaptStorm(b *testing.B) {
	p, X, _ := testPipeline(b, 1024)
	AX, AY := adaptStream(256, 41)

	run := func(b *testing.B, predict func([]float64) (int, error), adapt func([]float64, int) error) {
		done := make(chan struct{})
		var stormWG sync.WaitGroup
		stormWG.Add(1)
		go func() {
			defer stormWG.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if err := adapt(AX[i%len(AX)], AY[i%len(AX)]); err != nil {
					b.Errorf("storm adapt: %v", err)
					return
				}
			}
		}()

		var mu sync.Mutex
		var all []int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			local := make([]int64, 0, 1024)
			i := 0
			for pb.Next() {
				start := telemetry.Now()
				if _, err := predict(X[i%len(X)]); err != nil {
					b.Errorf("predict: %v", err)
					return
				}
				local = append(local, telemetry.Now()-start)
				i++
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		})
		b.StopTimer()
		close(done)
		stormWG.Wait()
		if len(all) > 0 {
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			b.ReportMetric(float64(all[len(all)/2]), "p50-ns")
			b.ReportMetric(float64(all[len(all)*99/100]), "p99-ns")
		}
	}

	b.Run("rwmutex", func(b *testing.B) {
		l := &lockedPipeline{p: p.Clone()}
		run(b, l.predict, l.adapt)
	})
	b.Run("snapshot", func(b *testing.B) {
		core, err := Open(p.Clone(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer core.Close()
		run(b,
			func(x []float64) (int, error) { return core.Current().Pipeline.Predict(x) },
			func(x []float64, label int) error { _, _, err := core.Adapt(x, label); return err },
		)
	})
}
