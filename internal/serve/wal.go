// Package serve is the crash-safe, overload-resilient serving core behind
// cmd/generic-serve. It owns four concerns the HTTP layer composes:
//
//   - Immutable snapshot hot-swap: the live model sits behind an
//     atomic.Pointer[Snapshot]. Predicts read the current snapshot with one
//     atomic load and never take a lock; mutators (adapt, scrub, fault
//     injection) clone the snapshot's pipeline, modify the clone, and
//     publish it — inference latency is fully decoupled from mutation.
//   - Crash-safe persistence: an append-only adapt WAL (CRC-framed records,
//     configurable fsync policy) is written before an adapt is published,
//     so every acknowledged update survives kill -9; checkpoints wrap the
//     modelio format with the last applied WAL sequence and are written
//     through the atomic temp-fsync-rename protocol, after which the WAL is
//     truncated.
//   - Admission control: bounded-concurrency Gates let the HTTP layer shed
//     load with 429 instead of queueing into latency collapse.
//   - Self-healing: a background loop CRC-sweeps and scrubs the model
//     (driving the internal/faults repair path), and a three-state
//     ok→degraded→failing health machine gives load balancers real
//     readiness semantics. A seeded Chaos driver injects faults and handler
//     latency to prove, under test and in CI, that the daemon degrades
//     instead of falling over.
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strings"

	"github.com/edge-hdc/generic/internal/telemetry"
)

// WAL file layout:
//
//	magic "GWAL" | version u16 | records...
//
// Each record is an independently CRC-framed adapt:
//
//	u32 payloadLen | payload | u32 crc32(payload)
//	payload = u64 seq | u32 label | u32 nFeatures | nFeatures × f64
//
// All integers little-endian, floats as IEEE-754 bits. Records carry a
// strictly increasing sequence number; replay skips records at or below the
// checkpoint's last applied sequence, which makes the
// checkpoint-then-truncate pair crash-safe in every interleaving (a crash
// between the two merely leaves already-applied records to be skipped).
// A torn tail — the partial record a mid-append crash leaves — is detected
// by length/CRC and truncated away on open; everything before it replays.
const (
	walMagic   = "GWAL"
	walVersion = 1
	// walHeaderLen is the byte offset of the first record.
	walHeaderLen = len(walMagic) + 2
	// maxWALPayload bounds a record's declared length so a corrupt length
	// word cannot drive a giant allocation (64k features is far beyond any
	// encoder config).
	maxWALPayload = 16 + 8*65536
)

// ErrWAL wraps adapt-WAL append/sync failures: the update could not be made
// durable and was not acknowledged. Serving layers map it to 503.
var ErrWAL = errors.New("serve: adapt WAL write failed")

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append — an acknowledged adapt is
	// durable even across power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves flushing to the OS page cache: acknowledged adapts
	// survive process death (kill -9) but a machine crash may lose a recent
	// suffix. ~10-100× higher append throughput.
	SyncNone
)

// ParseSyncPolicy parses the CLI names "always" and "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always", "":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("serve: unknown WAL sync policy %q (want always or none)", s)
}

// Record is one logged adapt step.
type Record struct {
	Seq   uint64
	Label int
	X     []float64
}

// WAL is the append-only adapt log. It is not safe for concurrent use; the
// Core serializes appends under its mutator lock.
type WAL struct {
	f      *os.File
	path   string
	policy SyncPolicy
	buf    []byte // reusable frame-encoding scratch
}

// OpenWAL opens (creating if absent) the WAL at path, repairs any torn
// tail, and returns the log positioned for appending plus every intact
// record in order. lastSeq is the highest sequence present (0 when empty).
func OpenWAL(path string, policy SyncPolicy) (w *WAL, records []Record, lastSeq uint64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, 0, err
	}
	if info.Size() == 0 {
		var hdr [walHeaderLen]byte
		copy(hdr[:], walMagic)
		binary.LittleEndian.PutUint16(hdr[len(walMagic):], walVersion)
		if _, err = f.Write(hdr[:]); err != nil {
			return nil, nil, 0, err
		}
		if err = f.Sync(); err != nil {
			return nil, nil, 0, err
		}
		return &WAL{f: f, path: path, policy: policy}, nil, 0, nil
	}
	records, goodEnd, lastSeq, err := scanWAL(f)
	if err != nil {
		return nil, nil, 0, err
	}
	if goodEnd < info.Size() {
		// Torn or corrupt tail: drop it so the next append starts on a
		// clean frame boundary.
		if err = f.Truncate(goodEnd); err != nil {
			return nil, nil, 0, err
		}
	}
	if _, err = f.Seek(goodEnd, io.SeekStart); err != nil {
		return nil, nil, 0, err
	}
	return &WAL{f: f, path: path, policy: policy}, records, lastSeq, nil
}

// scanWAL validates the header and reads intact records, returning the file
// offset just past the last intact record. A torn or corrupt record ends
// the scan without error — it is the expected residue of a crash mid-append
// — but a bad header is a hard error (the file is not a WAL).
func scanWAL(f *os.File) (records []Record, goodEnd int64, lastSeq uint64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, err
	}
	br := bufio.NewReader(f)
	hdr := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, 0, 0, fmt.Errorf("serve: WAL header unreadable: %w", err)
	}
	if string(hdr[:len(walMagic)]) != walMagic {
		return nil, 0, 0, fmt.Errorf("serve: bad WAL magic %q", hdr[:len(walMagic)])
	}
	if v := binary.LittleEndian.Uint16(hdr[len(walMagic):]); v != walVersion {
		return nil, 0, 0, fmt.Errorf("serve: unsupported WAL version %d", v)
	}
	goodEnd = int64(walHeaderLen)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return records, goodEnd, lastSeq, nil // clean EOF or torn length word
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n < 16 || n > maxWALPayload {
			return records, goodEnd, lastSeq, nil // corrupt length: stop at last good frame
		}
		frame := make([]byte, int(n)+4)
		if _, err := io.ReadFull(br, frame); err != nil {
			return records, goodEnd, lastSeq, nil // torn payload
		}
		payload, crc := frame[:n], binary.LittleEndian.Uint32(frame[n:])
		if crc32.ChecksumIEEE(payload) != crc {
			return records, goodEnd, lastSeq, nil // corrupt payload
		}
		rec, ok := decodeRecord(payload)
		if !ok {
			return records, goodEnd, lastSeq, nil
		}
		records = append(records, rec)
		lastSeq = rec.Seq
		goodEnd += int64(4 + len(frame))
	}
}

// decodeRecord parses one CRC-verified payload.
func decodeRecord(p []byte) (Record, bool) {
	le := binary.LittleEndian
	seq := le.Uint64(p)
	label := int(int32(le.Uint32(p[8:])))
	nFeat := le.Uint32(p[12:])
	if int(16+8*nFeat) != len(p) {
		return Record{}, false
	}
	x := make([]float64, nFeat)
	for i := range x {
		bits := le.Uint64(p[16+8*i:])
		x[i] = math.Float64frombits(bits)
	}
	return Record{Seq: seq, Label: label, X: x}, true
}

// Append frames, writes, and (per policy) fsyncs one record. On any error
// the update must be treated as unacknowledged: the caller reports ErrWAL
// and leaves the published snapshot untouched. The file position may be
// mid-frame after a failed write; the torn-tail repair on the next open
// discards it.
func (w *WAL) Append(rec Record) error {
	le := binary.LittleEndian
	payload := 16 + 8*len(rec.X)
	need := 4 + payload + 4
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	b := w.buf[:need]
	le.PutUint32(b, uint32(payload))
	le.PutUint64(b[4:], rec.Seq)
	le.PutUint32(b[12:], uint32(int32(rec.Label)))
	le.PutUint32(b[16:], uint32(len(rec.X)))
	for i, v := range rec.X {
		le.PutUint64(b[20+8*i:], math.Float64bits(v))
	}
	le.PutUint32(b[4+payload:], crc32.ChecksumIEEE(b[4:4+payload]))
	if _, err := w.f.Write(b); err != nil {
		telemetry.WALErrors.Inc()
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	if w.policy == SyncAlways {
		start := telemetry.Now()
		if err := w.f.Sync(); err != nil {
			telemetry.WALErrors.Inc()
			return fmt.Errorf("%w: fsync: %v", ErrWAL, err)
		}
		telemetry.WALFsyncNS.ObserveSince(start)
	}
	telemetry.WALAppends.Inc()
	telemetry.WALBytes.Add(int64(need))
	return nil
}

// Reset truncates the log back to its header — called after a successful
// checkpoint has made every logged record redundant. Crash-safe: if the
// process dies before Reset completes, replay simply skips the stale
// records by sequence number.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(int64(walHeaderLen)); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(walHeaderLen), io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

// Sync forces buffered records to disk regardless of policy (shutdown).
func (w *WAL) Sync() error { return w.f.Sync() }

// Close syncs and closes the log.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
