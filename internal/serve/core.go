package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/modelio"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// Snapshot is one immutable published model state. Its pipeline must only
// be used through concurrency-safe entry points (Predict, PredictAll,
// Health, Save — never Adapt/Fit/Scrub); mutation goes through the Core,
// which clones, modifies, and publishes a successor.
type Snapshot struct {
	Pipeline *generic.Pipeline
	// Version counts publishes since boot, starting at 1.
	Version uint64
	// Seq is the last adapt WAL sequence folded into this state.
	Seq uint64
}

// State is the serving health machine.
//
//	StateOK       — model intact, durability intact.
//	StateDegraded — serving with known damage (masked banks, quarantined
//	                columns, unscrubbed injections) or an active model-
//	                quality drift alarm (SetDrift); answers may be
//	                approximate but the engine keeps answering.
//	StateFailing  — a mutator hit an operational error (WAL append failed,
//	                scrub errored): durability or repair is broken. Load
//	                balancers should drain; predicts still serve the last
//	                good snapshot.
//
// ok⇄degraded transitions follow the fault controller's Health after every
// successful mutation; any mutator error forces failing, and the next
// successful mutation (including the background scrub tick) recovers to
// ok/degraded.
type State int32

const (
	StateOK State = iota
	StateDegraded
	StateFailing
)

func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateFailing:
		return "failing"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Options configures a Core.
type Options struct {
	// Dir is the durable state directory (checkpoint + adapt WAL). Empty
	// disables persistence: adapts are published in memory only.
	Dir string
	// Sync is the WAL fsync policy.
	Sync SyncPolicy
	// CheckpointEvery checkpoints and truncates the WAL after this many
	// appended records. 0 disables automatic checkpoints (shutdown and
	// explicit Checkpoint calls still write one).
	CheckpointEvery int
}

const (
	checkpointFile = "model.ckpt"
	walFile        = "adapt.wal"
)

// Core is the serving core: one atomically published snapshot, one mutator
// lock, and the durability machinery. Predict-side methods (Current, State)
// are lock-free and safe for any concurrency; mutators serialize on an
// internal lock and never block readers.
type Core struct {
	cur   atomic.Pointer[Snapshot]
	state atomic.Int32
	// drift is the model-quality alarm (internal/quality): set by the
	// serving monitor when the rolling margin/class distribution has
	// sustainedly diverged from the reference profile. It folds into State
	// as a degraded cause — the model serves on, but operators see
	// degraded(drift) on /healthz until the distribution recovers or the
	// model is refit.
	drift atomic.Bool

	mu        sync.Mutex // serializes Adapt/Scrub/InjectFaults/Checkpoint/Close
	wal       *WAL       // nil when persistence is disabled
	nextSeq   uint64
	sinceCkpt int
	replayed  int
	closed    bool

	opts     Options
	ckptPath string
}

// Open builds a serving core. Precedence for the initial model state:
//
//  1. A checkpoint in opts.Dir, when present (p, if also given, is ignored
//     — the durable state is the truth after a restart).
//  2. The caller-provided trained pipeline p.
//
// With opts.Dir set, the adapt WAL is then opened (repairing any torn
// tail) and every record after the checkpoint's sequence is replayed, so
// the returned core's published snapshot contains every acknowledged adapt
// from the previous life of the process. Replayed counts them.
func Open(p *generic.Pipeline, opts Options) (*Core, error) {
	c := &Core{opts: opts}
	var lastSeq uint64
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
		c.ckptPath = filepath.Join(opts.Dir, checkpointFile)
		if ck, seq, err := ReadCheckpoint(c.ckptPath); err == nil {
			p, lastSeq = ck, seq
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("serve: loading checkpoint: %w", err)
		}
	}
	if p == nil {
		return nil, errors.New("serve: no initial pipeline and no checkpoint")
	}
	if _, err := p.Health(); err != nil {
		return nil, err // untrained pipeline cannot serve
	}
	work := p
	if opts.Dir != "" {
		wal, records, walSeq, err := OpenWAL(filepath.Join(opts.Dir, walFile), opts.Sync)
		if err != nil {
			return nil, err
		}
		c.wal = wal
		for _, rec := range records {
			if rec.Seq <= lastSeq {
				continue // already folded into the checkpoint
			}
			if work == p {
				work = p.Clone() // copy-on-first-replay: keep the caller's pipeline pristine
			}
			if _, _, err := work.Adapt(rec.X, rec.Label); err != nil {
				wal.Close()
				return nil, fmt.Errorf("serve: WAL replay at seq %d: %w", rec.Seq, err)
			}
			lastSeq = rec.Seq
			c.replayed++
		}
		if walSeq > lastSeq {
			lastSeq = walSeq
		}
		telemetry.WALReplayed.Add(int64(c.replayed))
	}
	c.nextSeq = lastSeq + 1
	c.cur.Store(&Snapshot{Pipeline: work, Version: 1, Seq: lastSeq})
	telemetry.SnapshotVersion.Set(1)
	c.refreshState(work)
	return c, nil
}

// Current returns the live snapshot: one atomic load, never blocks, safe
// from any goroutine. The snapshot is immutable — hold it as long as
// needed; later publishes do not disturb it.
func (c *Core) Current() *Snapshot { return c.cur.Load() }

// State returns the health machine's current verdict. An active drift alarm
// degrades an otherwise-OK verdict; fault degradation and operational
// failure rank above it unchanged.
func (c *Core) State() State {
	s := State(c.state.Load())
	if s == StateOK && c.drift.Load() {
		return StateDegraded
	}
	return s
}

// SetDrift raises or clears the model-quality drift alarm (see the drift
// field). Safe from any goroutine; the serving monitor owns it.
func (c *Core) SetDrift(active bool) { c.drift.Store(active) }

// Drift reports whether the drift alarm is currently raised.
func (c *Core) Drift() bool { return c.drift.Load() }

// Replayed reports how many WAL records Open folded back in after a crash.
func (c *Core) Replayed() int { return c.replayed }

// publish installs next as the live snapshot.
func (c *Core) publish(next *generic.Pipeline, seq uint64) {
	start := telemetry.Now()
	v := c.cur.Load().Version + 1
	c.cur.Store(&Snapshot{Pipeline: next, Version: v, Seq: seq})
	telemetry.SnapshotVersion.Set(int64(v))
	telemetry.SnapshotPublishNS.ObserveSince(start)
}

// refreshState recomputes ok/degraded from the pipeline's fault health.
func (c *Core) refreshState(p *generic.Pipeline) {
	h, err := p.Health()
	switch {
	case err != nil:
		c.state.Store(int32(StateFailing))
	case h.Degraded():
		c.state.Store(int32(StateDegraded))
	default:
		c.state.Store(int32(StateOK))
	}
}

// Adapt performs one durable online-learning step through the
// clone-modify-publish protocol:
//
//  1. Clone the current snapshot's pipeline and apply the update to the
//     clone (validation errors surface here, before anything is logged).
//  2. Append the step to the WAL and fsync per policy — the acknowledgment
//     point. A WAL failure returns ErrWAL (wrapped), publishes nothing,
//     and flips the health machine to failing.
//  3. Publish the clone. Readers switch to the new state with one atomic
//     pointer swap; in-flight predicts keep their old snapshot.
//
// The returned values mirror Pipeline.Adapt. Concurrent Adapts serialize;
// concurrent Predicts are never blocked.
func (c *Core) Adapt(x []float64, label int) (pred int, updated bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, false, errors.New("serve: core closed")
	}
	cur := c.cur.Load()
	next := cur.Pipeline.Clone()
	pred, updated, err = next.Adapt(x, label)
	if err != nil {
		return 0, false, err
	}
	seq := c.nextSeq
	if c.wal != nil {
		if err := c.wal.Append(Record{Seq: seq, Label: label, X: x}); err != nil {
			c.state.Store(int32(StateFailing))
			return 0, false, err
		}
	}
	c.nextSeq++
	c.publish(next, seq)
	if c.State() == StateFailing {
		// Durability is back (the append above succeeded); let the fault
		// health decide between ok and degraded again.
		c.refreshState(next)
	}
	if c.wal != nil {
		c.sinceCkpt++
		if c.opts.CheckpointEvery > 0 && c.sinceCkpt >= c.opts.CheckpointEvery {
			// Best-effort: a failed checkpoint is not a lost update (the WAL
			// still holds everything); keep serving and retry next time.
			if err := c.checkpointLocked(); err != nil {
				telemetry.WALErrors.Inc()
			}
		}
	}
	return pred, updated, nil
}

// Scrub clones the live pipeline, runs the CRC sweep and self-repair pass
// on the clone, and publishes the repaired state. The health machine is
// refreshed from the post-scrub fault health.
func (c *Core) Scrub() (generic.FaultScrubReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return generic.FaultScrubReport{}, errors.New("serve: core closed")
	}
	cur := c.cur.Load()
	next := cur.Pipeline.Clone()
	rep, err := next.Scrub()
	if err != nil {
		c.state.Store(int32(StateFailing))
		return rep, err
	}
	c.publish(next, cur.Seq)
	c.refreshState(next)
	return rep, nil
}

// InjectFaults applies a fault spec through clone-modify-publish — the
// chaos driver's entry point, also used by tests to degrade a live core
// without touching its published snapshot mid-read.
func (c *Core) InjectFaults(spec generic.FaultSpec) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("serve: core closed")
	}
	cur := c.cur.Load()
	next := cur.Pipeline.Clone()
	n, err := next.InjectFaults(spec)
	if err != nil {
		return n, err
	}
	c.publish(next, cur.Seq)
	c.refreshState(next)
	return n, nil
}

// Checkpoint durably persists the current snapshot and truncates the WAL.
// No-op without a state directory.
func (c *Core) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkpointLocked()
}

func (c *Core) checkpointLocked() error {
	if c.ckptPath == "" {
		return nil
	}
	snap := c.cur.Load()
	if err := WriteCheckpoint(c.ckptPath, snap.Pipeline, snap.Seq); err != nil {
		return err
	}
	if c.wal != nil {
		if err := c.wal.Reset(); err != nil {
			return err
		}
	}
	c.sinceCkpt = 0
	telemetry.Checkpoints.Inc()
	return nil
}

// Close checkpoints (when persistent), syncs, and closes the WAL. The core
// rejects further mutation; Current keeps serving the last snapshot so
// in-flight reads drain cleanly.
func (c *Core) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var first error
	if err := c.checkpointLocked(); err != nil {
		first = err
	}
	if c.wal != nil {
		if err := c.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// StartScrubLoop launches the self-healing loop: every interval it runs a
// CRC sweep + scrub through the clone-modify-publish path, keeping the
// health machine honest and repairing damage (chaos-injected or real)
// without any caller intervention. The returned stop function halts the
// loop and waits for a tick in progress.
func (c *Core) StartScrubLoop(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				telemetry.ScrubLoopRuns.Inc()
				// A scrub error flips the machine to failing; the loop keeps
				// ticking so a later pass can recover.
				_, _ = c.Scrub()
			}
		}
	}()
	return func() { close(done); <-finished }
}

// HasCheckpoint reports whether dir holds a serving checkpoint — the boot
// path uses it to decide whether -model/-dataset are required.
func HasCheckpoint(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, checkpointFile))
	return err == nil
}

// Checkpoint file layout:
//
//	magic "GCKP" | version u16 | lastSeq u64 | crc32(magic..lastSeq) u32 |
//	modelio bundle (self-checksummed)
//
// binding the last applied WAL sequence to the model bytes in one atomic
// file, so replay-after-restart knows exactly which log records are already
// folded in.
const (
	ckptMagic   = "GCKP"
	ckptVersion = 1
)

// WriteCheckpoint atomically persists a pipeline plus its last applied WAL
// sequence. The previous checkpoint (if any) survives any failure.
func WriteCheckpoint(path string, p *generic.Pipeline, lastSeq uint64) error {
	return modelio.AtomicWriteFile(path, func(w io.Writer) error {
		var hdr [len(ckptMagic) + 2 + 8 + 4]byte
		le := binary.LittleEndian
		copy(hdr[:], ckptMagic)
		le.PutUint16(hdr[4:], ckptVersion)
		le.PutUint64(hdr[6:], lastSeq)
		le.PutUint32(hdr[14:], crc32.ChecksumIEEE(hdr[:14]))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		return p.Save(w)
	})
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint. A missing
// file returns os.ErrNotExist (wrapped); a corrupt header or model payload
// is an error — the caller decides whether to fall back to a fresh model.
func ReadCheckpoint(path string) (*generic.Pipeline, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var hdr [len(ckptMagic) + 2 + 8 + 4]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("serve: checkpoint header: %w", err)
	}
	le := binary.LittleEndian
	if string(hdr[:4]) != ckptMagic {
		return nil, 0, fmt.Errorf("serve: bad checkpoint magic %q", hdr[:4])
	}
	if v := le.Uint16(hdr[4:]); v != ckptVersion {
		return nil, 0, fmt.Errorf("serve: unsupported checkpoint version %d", v)
	}
	if le.Uint32(hdr[14:]) != crc32.ChecksumIEEE(hdr[:14]) {
		return nil, 0, errors.New("serve: checkpoint header CRC mismatch")
	}
	lastSeq := le.Uint64(hdr[6:])
	p, err := generic.LoadPipeline(f)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: checkpoint model: %w", err)
	}
	return p, lastSeq, nil
}
