package approx

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edge-hdc/generic/internal/rng"
)

func TestLog2FixedExactPowers(t *testing.T) {
	for n := 0; n < 63; n++ {
		want := int64(n) << FracBits
		if got := Log2Fixed(1 << uint(n)); got != want {
			t.Fatalf("Log2Fixed(2^%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLog2FixedPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2Fixed(0) did not panic")
		}
	}()
	Log2Fixed(0)
}

func TestLog2FixedErrorBound(t *testing.T) {
	// Corrected Mitchell log error stays within ~±0.008 bits.
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		x := r.Uint64()>>uint(r.Intn(40)) | 1
		got := float64(Log2Fixed(x)) / (1 << FracBits)
		want := math.Log2(float64(x))
		if diff := want - got; diff < -0.01 || diff > 0.01 {
			t.Fatalf("Log2Fixed(%d) error %v outside ±0.01", x, diff)
		}
	}
}

func TestExp2FixedExact(t *testing.T) {
	for k := 0; k < 40; k++ {
		if got := Exp2Fixed(int64(k) << FracBits); got != 1<<uint(k) {
			t.Fatalf("Exp2Fixed(%d<<16) = %d, want 2^%d", k, got, k)
		}
	}
	if Exp2Fixed(-1) != 0 {
		t.Fatal("negative exponent must truncate to 0")
	}
}

func TestDivApproxRelativeError(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 20000; i++ {
		a := r.Uint64()>>uint(r.Intn(32)) | 1
		b := r.Uint64()>>uint(r.Intn(32)) | 1
		got := float64(DivApprox(a, b))
		want := float64(a) / float64(b)
		if want < 1 {
			continue // truncation region
		}
		// Three chained corrected-Mitchell approximations keep the
		// relative error under ~2%; integer truncation adds ≤1 absolute.
		if math.Abs(got-want) > 0.02*want+1 {
			t.Fatalf("DivApprox(%d,%d) = %v, want %v", a, b, got, want)
		}
	}
}

func TestDivApproxSpecialCases(t *testing.T) {
	if DivApprox(0, 5) != 0 {
		t.Fatal("0/b != 0")
	}
	if got := DivApprox(8, 2); got != 4 {
		t.Fatalf("8/2 = %d (powers of two are exact in Mitchell)", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	DivApprox(1, 0)
}

func TestScoreApproxSignAndZero(t *testing.T) {
	if s := ScoreApprox(-100, 50); s >= 0 {
		t.Fatalf("negative dot scored %d", s)
	}
	if s := ScoreApprox(100, 50); s <= 0 {
		t.Fatalf("positive dot scored %d", s)
	}
	if s := ScoreApprox(0, 50); s != 0 {
		t.Fatalf("zero dot scored %d", s)
	}
	if s := ScoreApprox(100, 0); s != -(1 << 62) {
		t.Fatalf("zero norm scored %d, want sentinel", s)
	}
}

func TestScoreApproxTracksExact(t *testing.T) {
	r := rng.New(3)
	scale := float64(int64(1) << ScoreScaleBits)
	for i := 0; i < 10000; i++ {
		dot := int64(r.Intn(1<<30)) - 1<<29
		norm2 := int64(r.Intn(1<<40)) + 1
		got := float64(ScoreApprox(dot, norm2))
		want := scale * float64(dot) * float64(dot) / float64(norm2)
		if dot < 0 {
			want = -want
		}
		// Chained corrected approximations (two logs + antilog) stay
		// within ~4%; integer truncation adds ≤1 absolute.
		if math.Abs(got-want) > 0.04*math.Abs(want)+1 {
			t.Fatalf("ScoreApprox(%d,%d) = %v, want %v", dot, norm2, got, want)
		}
	}
}

func TestScoreApproxPreservesClearRankings(t *testing.T) {
	// If two scores differ by more than the Mitchell error envelope, the
	// approximate scores must rank identically — the property GENERIC's
	// inference correctness rests on.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dotA := int64(r.Intn(1<<20) + 1<<10)
		dotB := dotA * 2 // 4× score gap, far beyond the error envelope
		norm := int64(r.Intn(1<<20) + 1)
		return ScoreApprox(dotB, norm) > ScoreApprox(dotA, norm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneInDot(t *testing.T) {
	// For fixed norm, ScoreApprox must be non-decreasing in dot over a
	// dense range (piecewise-linear Mitchell segments are monotone).
	norm := int64(12345)
	prev := int64(math.MinInt64)
	for dot := int64(1); dot < 5000; dot++ {
		s := ScoreApprox(dot, norm)
		if s < prev {
			t.Fatalf("ScoreApprox not monotone at dot=%d: %d < %d", dot, s, prev)
		}
		prev = s
	}
}

func BenchmarkDivApprox(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = DivApprox(uint64(i)|1, 12345)
	}
	_ = sink
}

func BenchmarkScoreApprox(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = ScoreApprox(int64(i-b.N/2), 98765)
	}
	_ = sink
}
