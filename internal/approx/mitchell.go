// Package approx implements the approximate arithmetic GENERIC's datapath
// uses: Mitchell's logarithm-based division (IRE Trans. 1962), which the
// accelerator employs to normalize dot-product scores by class norms
// without a hardware divider (paper §4.2.1, ref [18]).
//
// Mitchell's method approximates log₂(2ⁿ·(1+f)) ≈ n + f and its inverse
// 2^(k+f) ≈ 2ᵏ·(1+f); a division a/b becomes an exponent subtraction.
// Raw Mitchell has up to 8.6% error per op, which is too coarse to rank
// near-tied HDC similarity scores, so — as hardware log dividers commonly
// do — we add the one-multiplier quadratic correction term c·f·(1−f)
// (c ≈ 0.344), shrinking the log error to ≲ 0.6% and keeping the divider's
// cost at one extra multiply per operand. The sim package's equivalence
// tests verify the corrected divider preserves the inference argmax.
package approx

import "math/bits"

// FracBits is the fixed-point fractional precision of the log domain,
// matching a 16-bit hardware log unit.
const FracBits = 16

// corrC is the quadratic correction coefficient 0.344 in Q(FracBits).
const corrC = 22544

// corr returns c·f·(1−f) in Q(FracBits) for a fractional part f.
func corr(f uint64) uint64 {
	return (f * ((1 << FracBits) - f) >> FracBits) * corrC >> FracBits
}

// Log2Fixed returns the error-corrected Mitchell approximation of log₂(x)
// in Q(FracBits) fixed point: n + f + c·f·(1−f). x must be positive.
func Log2Fixed(x uint64) int64 {
	if x == 0 {
		panic("approx: Log2Fixed(0)")
	}
	n := bits.Len64(x) - 1 // position of the leading one
	var frac uint64
	if n >= FracBits {
		frac = (x - 1<<uint(n)) >> uint(n-FracBits)
	} else {
		frac = (x - 1<<uint(n)) << uint(FracBits-n)
	}
	return int64(n)<<FracBits + int64(frac) + int64(corr(frac))
}

// Exp2Fixed returns the error-corrected Mitchell approximation of
// 2^(l/2^FracBits) for a fixed-point exponent l ≥ 0: 2ᵏ·(1 + f − c·f·(1−f)).
func Exp2Fixed(l int64) uint64 {
	if l < 0 {
		return 0 // result < 1 truncates to 0 in the integer datapath
	}
	k := l >> FracBits
	f := uint64(l & (1<<FracBits - 1))
	if k >= 63 {
		return 1 << 63 // saturate
	}
	base := uint64(1) << uint(k)
	mant := (1<<FracBits + f - corr(f))
	return base * mant >> FracBits
}

// DivApprox approximates a/b with Mitchell's method. b must be positive;
// a == 0 returns 0. Results below 1 truncate to 0, mirroring the integer
// hardware datapath.
func DivApprox(a, b uint64) uint64 {
	if b == 0 {
		panic("approx: DivApprox by zero")
	}
	if a == 0 {
		return 0
	}
	return Exp2Fixed(Log2Fixed(a) - Log2Fixed(b))
}

// ScoreScaleBits is the number of extra fractional bits the score register
// carries: ScoreApprox returns sign(dot)·(dot²/norm2)·2^ScoreScaleBits so
// that small similarity scores are not destroyed by integer truncation.
// Rankings are unaffected; only the fixed scale changes.
const ScoreScaleBits = 10

// ScoreApprox computes the accelerator's similarity score
// sign(dot)·(dot²)/norm2 (scaled by 2^ScoreScaleBits) using Mitchell
// division, in integer arithmetic. A zero norm ranks the class last (most
// negative representable score).
func ScoreApprox(dot int64, norm2 int64) int64 {
	if norm2 <= 0 {
		return -1 << 62
	}
	mag := dot
	if mag < 0 {
		mag = -mag
	}
	// dot² can exceed 64 bits only for |dot| > 2³¹·√2; GENERIC's 16-bit
	// classes with D ≤ 8K keep |dot| well below that (|dot| ≤ D·2¹⁵·Hmax).
	// Work in the log domain directly to avoid the squaring overflow:
	// log(dot²/norm2) = 2·log|dot| − log(norm2).
	if mag == 0 {
		return 0
	}
	l := 2*Log2Fixed(uint64(mag)) - Log2Fixed(uint64(norm2)) + ScoreScaleBits<<FracBits
	q := int64(Exp2Fixed(l))
	if dot < 0 {
		return -q
	}
	return q
}
