package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	x, y := r.Uint64(), r.Uint64()
	if x == 0 && y == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first outputs")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: got %d, want ~%d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(17)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: %v", s)
	}
}

func TestFillBits(t *testing.T) {
	r := New(21)
	buf := make([]uint64, 64)
	r.FillBits(buf)
	zero := 0
	for _, w := range buf {
		if w == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Fatalf("FillBits produced %d zero words out of %d", zero, len(buf))
	}
}

func TestMul64MatchesBigMul(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		// Verify via decomposition: (x*y) mod 2^64 must equal lo, and
		// hi must satisfy the schoolbook identity on 32-bit halves.
		if lo != x*y {
			return false
		}
		x0, x1 := x&0xffffffff, x>>32
		y0, y1 := y&0xffffffff, y>>32
		t := x1*y0 + (x0*y0)>>32
		w1 := t&0xffffffff + x0*y1
		wantHi := x1*y1 + t>>32 + w1>>32
		return hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the public-domain splitmix64 implementation
	// with seed 0.
	z := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&z); got != w {
			t.Fatalf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
