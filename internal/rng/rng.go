// Package rng provides small, deterministic pseudo-random number generators
// used throughout the GENERIC reproduction.
//
// Every stochastic component in the library (hypervector material, synthetic
// dataset generation, baseline ML initialization, fault injection) draws from
// these generators with an explicit seed, so experiments are reproducible
// bit-for-bit across runs and platforms. The generators are SplitMix64 (for
// seeding) and xoshiro256** (for streams), both from Blackman & Vigna.
package rng

import "math"

// SplitMix64 advances the state z and returns the next 64-bit output.
// It is used to expand a single user seed into independent stream seeds.
func SplitMix64(z *uint64) uint64 {
	*z += 0x9e3779b97f4a7c15
	x := *z
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, as recommended by
// the xoshiro authors. Any seed, including 0, yields a valid stream.
func New(seed uint64) *Rand {
	var r Rand
	z := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&z)
	}
	// An all-zero state would be a fixed point; SplitMix64 cannot produce
	// four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives a new, statistically independent generator from r.
// It is used to hand child seeds to sub-components without correlating
// their streams.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the next 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1, w2 := t&mask32, t>>32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Bool returns a uniform random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// FillBits fills dst with uniformly random 64-bit words.
func (r *Rand) FillBits(dst []uint64) {
	for i := range dst {
		dst[i] = r.Uint64()
	}
}
