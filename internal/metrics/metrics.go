// Package metrics provides the evaluation metrics used in the paper:
// classification accuracy, confusion matrices, and normalized mutual
// information for external clustering validation (Table 2).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy returns the fraction of predictions equal to labels. A length
// mismatch is an error; empty input scores 0.
func Accuracy(pred, labels []int) (float64, error) {
	if len(pred) != len(labels) {
		return 0, fmt.Errorf("metrics: %d predictions vs %d labels", len(pred), len(labels))
	}
	if len(pred) == 0 {
		return 0, nil
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred)), nil
}

// MustAccuracy is Accuracy for call sites where the lengths are correct by
// construction (e.g. predictions just computed from the labeled set); it
// panics on error.
func MustAccuracy(pred, labels []int) float64 {
	a, err := Accuracy(pred, labels)
	if err != nil {
		panic(err)
	}
	return a
}

// Confusion returns the confusion matrix C where C[true][pred] counts
// samples. Classes are sized by the largest index seen. A length mismatch
// is an error.
func Confusion(pred, labels []int) ([][]int, error) {
	if len(pred) != len(labels) {
		return nil, fmt.Errorf("metrics: Confusion: %d predictions vs %d labels", len(pred), len(labels))
	}
	n := 0
	for i := range pred {
		if pred[i]+1 > n {
			n = pred[i] + 1
		}
		if labels[i]+1 > n {
			n = labels[i] + 1
		}
	}
	c := make([][]int, n)
	for i := range c {
		c[i] = make([]int, n)
	}
	for i := range pred {
		c[labels[i]][pred[i]]++
	}
	return c, nil
}

// MustConfusion is Confusion that panics on error.
func MustConfusion(pred, labels []int) [][]int {
	c, err := Confusion(pred, labels)
	if err != nil {
		panic(err)
	}
	return c
}

// NMI returns the normalized mutual information between two labelings,
// using arithmetic-mean normalization: NMI = 2·I(A;B) / (H(A)+H(B)).
// It is symmetric, invariant to label permutation, 1 for identical
// partitions and 0 for independent ones. If both partitions are trivial
// (single cluster), NMI is defined as 1 when they are identical partitions
// and 0 otherwise by the degenerate-entropy convention used here.
func NMI(a, b []int) float64 {
	if len(a) != len(b) {
		panic("metrics: NMI length mismatch")
	}
	n := len(a)
	if n == 0 {
		return 0
	}
	ca := countLabels(a)
	cb := countLabels(b)
	joint := make(map[[2]int]int)
	for i := range a {
		joint[[2]int{a[i], b[i]}]++
	}
	ha := entropy(ca, n)
	hb := entropy(cb, n)
	if ha == 0 && hb == 0 {
		return 1 // both trivial partitions: identical by definition
	}
	if ha == 0 || hb == 0 {
		return 0
	}
	// Accumulate in sorted key order: float addition is not associative, so
	// summing in map order would make the low bits of NMI vary run to run.
	pairs := make([][2]int, 0, len(joint))
	for k := range joint {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	var mi float64
	fn := float64(n)
	for _, k := range pairs {
		pij := float64(joint[k]) / fn
		pa := float64(ca[k[0]]) / fn
		pb := float64(cb[k[1]]) / fn
		mi += pij * math.Log(pij/(pa*pb))
	}
	nmi := 2 * mi / (ha + hb)
	// Guard tiny negative round-off.
	if nmi < 0 && nmi > -1e-12 {
		nmi = 0
	}
	return nmi
}

func countLabels(x []int) map[int]int {
	c := make(map[int]int)
	for _, v := range x {
		c[v]++
	}
	return c
}

func entropy(counts map[int]int, n int) float64 {
	// Sorted label order for the same reason as the mutual-information sum:
	// a map-order float fold is nondeterministic in its last bits.
	labels := make([]int, 0, len(counts))
	for k := range counts {
		labels = append(labels, k)
	}
	sort.Ints(labels)
	var h float64
	fn := float64(n)
	for _, l := range labels {
		p := float64(counts[l]) / fn
		h -= p * math.Log(p)
	}
	return h
}

// ClassReport holds per-class precision/recall/F1 plus macro averages —
// the breakdown a deployment needs on imbalanced benchmarks like PAGE.
type ClassReport struct {
	Precision []float64
	Recall    []float64
	F1        []float64
	MacroF1   float64
}

// PerClass computes the per-class report from predictions and labels. A
// length mismatch is an error.
func PerClass(pred, labels []int) (ClassReport, error) {
	conf, err := Confusion(pred, labels)
	if err != nil {
		return ClassReport{}, err
	}
	n := len(conf)
	r := ClassReport{
		Precision: make([]float64, n),
		Recall:    make([]float64, n),
		F1:        make([]float64, n),
	}
	for c := 0; c < n; c++ {
		var tp, fp, fn int
		for o := 0; o < n; o++ {
			if o == c {
				tp = conf[c][c]
				continue
			}
			fp += conf[o][c]
			fn += conf[c][o]
		}
		if tp+fp > 0 {
			r.Precision[c] = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			r.Recall[c] = float64(tp) / float64(tp+fn)
		}
		if r.Precision[c]+r.Recall[c] > 0 {
			r.F1[c] = 2 * r.Precision[c] * r.Recall[c] / (r.Precision[c] + r.Recall[c])
		}
	}
	r.MacroF1 = Mean(r.F1)
	return r, nil
}

// GeoMean returns the geometric mean of positive values, the aggregation
// the paper uses for cross-benchmark energy and latency comparisons.
// Non-positive values are skipped; an empty input returns 0.
func GeoMean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean and StdDev are the aggregations used in Table 1's summary rows.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}
