package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edge-hdc/generic/internal/rng"
)

func TestAccuracy(t *testing.T) {
	a, err := Accuracy([]int{1, 2, 3}, []int{1, 2, 4})
	if err != nil || math.Abs(a-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v, %v, want 2/3", a, err)
	}
	if a, err := Accuracy(nil, nil); err != nil || a != 0 {
		t.Fatalf("empty accuracy = %v, %v", a, err)
	}
	if a := MustAccuracy([]int{1, 2}, []int{1, 2}); a != 1 {
		t.Fatalf("MustAccuracy = %v, want 1", a)
	}
}

func TestAccuracyLengthMismatch(t *testing.T) {
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch did not error")
	}
	if _, err := Confusion([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("Confusion length mismatch did not error")
	}
	if _, err := PerClass([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("PerClass length mismatch did not error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAccuracy did not panic on mismatch")
		}
	}()
	MustAccuracy([]int{1}, []int{1, 2})
}

func TestConfusion(t *testing.T) {
	c := MustConfusion([]int{0, 1, 1, 2}, []int{0, 1, 2, 2})
	if c[0][0] != 1 || c[1][1] != 1 || c[2][1] != 1 || c[2][2] != 1 {
		t.Fatalf("confusion wrong: %v", c)
	}
	total := 0
	for _, row := range c {
		for _, v := range row {
			total += v
		}
	}
	if total != 4 {
		t.Fatalf("confusion total = %d, want 4", total)
	}
}

func TestNMIIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if nmi := NMI(a, a); math.Abs(nmi-1) > 1e-12 {
		t.Fatalf("NMI(a,a) = %v, want 1", nmi)
	}
}

func TestNMIPermutationInvariant(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7} // same partition, different label names
	if nmi := NMI(a, b); math.Abs(nmi-1) > 1e-12 {
		t.Fatalf("NMI under relabeling = %v, want 1", nmi)
	}
}

func TestNMIIndependent(t *testing.T) {
	// A partition vs a perfectly crossed partition: I = 0.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	if nmi := NMI(a, b); math.Abs(nmi) > 1e-12 {
		t.Fatalf("NMI of independent partitions = %v, want 0", nmi)
	}
}

func TestNMISymmetricAndBounded(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(50)
		a, b := make([]int, n), make([]int, n)
		for i := range a {
			a[i] = r.Intn(4)
			b[i] = r.Intn(3)
		}
		x, y := NMI(a, b), NMI(b, a)
		return math.Abs(x-y) < 1e-12 && x >= 0 && x <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNMITrivialPartitions(t *testing.T) {
	if nmi := NMI([]int{0, 0, 0}, []int{1, 1, 1}); nmi != 1 {
		t.Fatalf("NMI of two trivial partitions = %v, want 1", nmi)
	}
	if nmi := NMI([]int{0, 0, 0}, []int{0, 1, 2}); nmi != 0 {
		t.Fatalf("NMI of trivial vs discrete = %v, want 0", nmi)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean(1,100) = %v, want 10", g)
	}
	if g := GeoMean([]float64{2, 0, -3, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("GeoMean skipping non-positive = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
	if s := StdDev([]float64{1}); s != 0 {
		t.Fatalf("StdDev singleton = %v", s)
	}
}

func TestPerClassPerfect(t *testing.T) {
	pred := []int{0, 1, 2, 0, 1, 2}
	r, err := PerClass(pred, pred)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if r.Precision[c] != 1 || r.Recall[c] != 1 || r.F1[c] != 1 {
			t.Fatalf("class %d not perfect: %+v", c, r)
		}
	}
	if r.MacroF1 != 1 {
		t.Fatalf("macro F1 = %v", r.MacroF1)
	}
}

func TestPerClassKnownValues(t *testing.T) {
	// Class 0: predicted 3 times, 2 correct → precision 2/3.
	// Class 0 truth appears 2 times, 2 found → recall 1.
	labels := []int{0, 0, 1, 1, 1}
	pred := []int{0, 0, 0, 1, 1}
	r, err := PerClass(pred, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Precision[0]-2.0/3) > 1e-12 || r.Recall[0] != 1 {
		t.Fatalf("class 0: P=%v R=%v", r.Precision[0], r.Recall[0])
	}
	if r.Precision[1] != 1 || math.Abs(r.Recall[1]-2.0/3) > 1e-12 {
		t.Fatalf("class 1: P=%v R=%v", r.Precision[1], r.Recall[1])
	}
	wantF1 := 0.8 // both classes: 2·(2/3·1)/(2/3+1) = 0.8
	if math.Abs(r.F1[0]-wantF1) > 1e-12 || math.Abs(r.F1[1]-wantF1) > 1e-12 {
		t.Fatalf("F1 = %v/%v, want %v", r.F1[0], r.F1[1], wantF1)
	}
	if math.Abs(r.MacroF1-wantF1) > 1e-12 {
		t.Fatalf("macro F1 = %v", r.MacroF1)
	}
}

func TestPerClassAbsentClass(t *testing.T) {
	// Class 2 never predicted and never true except once mispredicted:
	// metrics must stay finite (zero), not NaN.
	labels := []int{0, 1, 2}
	pred := []int{0, 1, 0}
	r, err := PerClass(pred, labels)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recall[2] != 0 || r.F1[2] != 0 {
		t.Fatalf("absent class metrics: %+v", r)
	}
	if math.IsNaN(r.MacroF1) {
		t.Fatal("macro F1 is NaN")
	}
}
