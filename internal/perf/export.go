// Chrome trace-event export: spans and simulator cycle timelines serialize
// into the Trace Event Format (the JSON chrome://tracing and Perfetto load),
// so one file shows "software phase X ↔ accelerator phase Y" on a shared
// time axis.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace-event pid/tid layout: everything lives in one process row; wall-clock
// spans render on the pipeline thread and sim-cycle phases on the
// accelerator thread, sharing the time axis.
const (
	TracePID     = 1
	TIDPipeline  = 1
	TIDSim       = 2
	processName  = "generic"
	pipelineName = "pipeline (wall clock)"
	simName      = "accelerator (sim cycles)"
)

// TraceEvent is one entry of the Chrome Trace Event Format. Spans and sim
// phases emit "X" (complete) events with microsecond timestamps; process and
// thread names emit "M" (metadata) events.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the envelope chrome://tracing expects.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Metadata returns the naming events for the shared process and its two
// threads; include them once per exported file.
func Metadata() []TraceEvent {
	name := func(ph string, tid int, n string) TraceEvent {
		return TraceEvent{Name: ph, Phase: "M", PID: TracePID, TID: tid,
			Args: map[string]any{"name": n}}
	}
	return []TraceEvent{
		name("process_name", TIDPipeline, processName),
		name("thread_name", TIDPipeline, pipelineName),
		name("thread_name", TIDSim, simName),
	}
}

// Events converts finished span records into complete trace events on the
// pipeline thread. Span ID and parent ID ride along in args so the nesting
// recorded at runtime survives even where the viewer stacks by time alone.
func Events(records []Record) []TraceEvent {
	out := make([]TraceEvent, len(records))
	for i, r := range records {
		args := map[string]any{"id": fmt.Sprintf("%016x", r.ID)}
		if r.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", r.Parent)
		}
		out[i] = TraceEvent{
			Name: r.Name, Cat: "span", Phase: "X",
			TS: float64(r.Start) / 1e3, Dur: float64(r.Dur) / 1e3,
			PID: TracePID, TID: TIDPipeline, Args: args,
		}
	}
	return out
}

// SimPhase is one hardware activity window on the sim-cycle track, in
// cycles. It mirrors trace.Event field-for-field — convert with
// perf.SimPhase(ev) — but the exporter keeps its own copy of the shape:
// internal/perf is imported by the instrumented model packages, so importing
// internal/trace here would close a cycle through the sim stack.
type SimPhase struct {
	Name  string
	Start int64
	Dur   int64
}

// SimEvents converts accelerator activity phases (units: cycles) into
// complete trace events on the accelerator thread. anchorNS places cycle 0
// on the wall-clock axis (pass the telemetry.Now value captured when the
// simulated run started, so hardware phases line up under the software spans
// that drove them); cyclePeriodNS is the modeled clock period (2 ns at the
// paper's 500 MHz synthesis target).
func SimEvents(phases []SimPhase, anchorNS int64, cyclePeriodNS float64) []TraceEvent {
	out := make([]TraceEvent, len(phases))
	for i, e := range phases {
		out[i] = TraceEvent{
			Name: e.Name, Cat: "sim", Phase: "X",
			TS:  (float64(anchorNS) + float64(e.Start)*cyclePeriodNS) / 1e3,
			Dur: float64(e.Dur) * cyclePeriodNS / 1e3,
			PID: TracePID, TID: TIDSim,
			Args: map[string]any{"start_cycle": e.Start, "cycles": e.Dur},
		}
	}
	return out
}

// WriteTrace writes the events as one Chrome trace-event JSON document.
// Callers typically pass append(append(Metadata(), Events(t.Snapshot())...),
// SimEvents(phases, anchor, period)...).
func WriteTrace(w io.Writer, events []TraceEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}
