// Profiling glue for the CLIs: generic-train, generic-cluster, generic-bench
// and generic-perf all expose -cpuprofile / -memprofile / -trace flags and
// delegate the lifecycle here.
package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles manages the profile outputs of one CLI run. Start it after flag
// parsing, defer Stop.
type Profiles struct {
	cpuFile   *os.File
	memPath   string
	tracePath string
}

// StartProfiles opens the requested outputs: cpuPath starts a CPU profile,
// memPath schedules a heap profile at Stop, and tracePath enables the
// default span tracer and writes its Chrome trace-event JSON at Stop. Empty
// paths disable the corresponding output. On error, anything already
// started is stopped.
func StartProfiles(cpuPath, memPath, tracePath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath, tracePath: tracePath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("perf: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("perf: -cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if tracePath != "" {
		Reset()
		Enable()
	}
	return p, nil
}

// Stop finalizes every output started by StartProfiles. It returns the
// first error encountered but always attempts all outputs.
func (p *Profiles) Stop() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(p.cpuFile.Close())
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err == nil {
			runtime.GC() // materialize final live-heap statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		} else {
			keep(fmt.Errorf("perf: -memprofile: %w", err))
		}
		p.memPath = ""
	}
	if p.tracePath != "" {
		Disable()
		f, err := os.Create(p.tracePath)
		if err == nil {
			events := append(Metadata(), Events(Snapshot())...)
			keep(WriteTrace(f, events))
			keep(f.Close())
		} else {
			keep(fmt.Errorf("perf: -trace: %w", err))
		}
		p.tracePath = ""
	}
	return first
}
