// Package perf is the performance-observability layer of the engine: a
// request-scoped span tracer threaded through the pipeline hot paths
// (encode, score, fit/adapt epochs, fault scrub), a Chrome trace-event
// exporter that unifies wall-clock spans with the accelerator simulator's
// cycle timeline, and the benchmark-statistics machinery behind
// cmd/generic-perf (summaries, BENCH_GENERIC.json, regression compare).
//
// The tracer is off by default and built so the disabled path costs one
// atomic load per instrumentation site — the repository's <5% overhead
// budget holds even on BenchmarkPipelinePredict, whose body is microseconds.
// When enabled, finished spans land in a fixed-capacity atomic ring buffer
// (oldest records are overwritten; nothing blocks, nothing allocates beyond
// the record itself), so tracing a long run has bounded memory.
//
// Span identity is deterministic: IDs derive from an internal/rng SplitMix64
// stream keyed by the tracer seed and an atomic sequence number, so two
// identical serial runs produce identical traces — the same replayability
// stance the rest of the repository takes, applied to observability.
//
// Like internal/telemetry, perf is a sanctioned observability clock (see the
// detrand analyzer's skip list): spans measure wall time for operator eyes,
// and no perf value ever feeds back into model state. Timestamps come from
// the telemetry monotonic clock so span traces and latency histograms share
// one timebase.
package perf

import (
	"context"
	"runtime/pprof"
	"sync/atomic"

	"github.com/edge-hdc/generic/internal/rng"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// Record is one finished span as stored in the ring buffer.
type Record struct {
	// Name is the span's phase name ("pipeline.predict", "encode", ...).
	Name string
	// ID is the span's deterministic identifier; Parent is the enclosing
	// span's ID (0 for a root span).
	ID, Parent uint64
	// Start is the span's start time on the telemetry monotonic clock
	// (nanoseconds, comparable across spans and histograms in one process);
	// Dur is the span's duration in nanoseconds.
	Start, Dur int64
}

// A Span is an in-flight timed region. The zero of *Span (nil) is the
// disabled tracer's span: every method on a nil *Span is a no-op, so call
// sites never branch on enablement themselves.
type Span struct {
	tracer *Tracer
	name   string
	id     uint64
	parent uint64
	start  int64
	// labelCtx/prevCtx carry pprof goroutine labels for spans created via
	// Start: End restores prevCtx's labels. Both are nil for Begin/Child
	// spans, which skip label propagation to stay cheap.
	prevCtx context.Context
}

// A Tracer records spans into a fixed-capacity ring buffer. All methods are
// safe for concurrent use; Enable/Disable may race with Begin/End freely
// (spans started while enabled still record on End).
type Tracer struct {
	enabled atomic.Bool
	seed    uint64
	seq     atomic.Uint64
	cursor  atomic.Uint64
	slots   []atomic.Pointer[Record]
}

// New returns a disabled tracer holding up to capacity finished spans
// (minimum 1); seed keys the deterministic span-ID stream.
func New(capacity int, seed uint64) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{seed: seed, slots: make([]atomic.Pointer[Record], capacity)}
}

// Enable turns span recording on; Disable turns it off. Enabled reports the
// current state.
func (t *Tracer) Enable()       { t.enabled.Store(true) }
func (t *Tracer) Disable()      { t.enabled.Store(false) }
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Reset discards all recorded spans and rewinds the ID sequence, so a fresh
// run over the same code path reproduces the same span IDs.
func (t *Tracer) Reset() {
	for i := range t.slots {
		t.slots[i].Store(nil)
	}
	t.cursor.Store(0)
	t.seq.Store(0)
}

// nextID derives the next deterministic span ID: the atomic sequence number
// keyed into a SplitMix64 stream by the tracer seed. IDs are nonzero (0
// means "no parent" in Record).
//
//generic:hotpath
func (t *Tracer) nextID() uint64 {
	z := t.seed ^ t.seq.Add(1)*0x9e3779b97f4a7c15
	id := rng.SplitMix64(&z)
	if id == 0 {
		id = 1
	}
	return id
}

// Begin opens a root span, or returns nil immediately when the tracer is
// disabled (one atomic load — the entire disabled-path cost).
//
//generic:hotpath
func (t *Tracer) Begin(name string) *Span {
	if !t.enabled.Load() {
		return nil
	}
	//lint:ignore generic/hotalloc,generic/escapes span allocation happens only when tracing is enabled; the disabled path above is the hot one and costs one atomic load
	return &Span{tracer: t, name: name, id: t.nextID(), start: telemetry.Now()}
}

// Child opens a span nested under s. On a nil span (disabled tracer) it
// returns nil.
//
//generic:hotpath
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	//lint:ignore generic/hotalloc,generic/escapes child spans exist only when tracing is enabled; disabled-path calls return nil above
	return &Span{tracer: s.tracer, name: name, id: s.tracer.nextID(), parent: s.id, start: telemetry.Now()}
}

// spanKey carries the current span through a context.
type spanKey struct{}

// FromContext returns the span stored in ctx by Start, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a request-scoped span: the parent is taken from ctx (so
// handler → pipeline call chains nest), the returned context carries the new
// span for further nesting, and the goroutine's pprof labels gain
// span=<name> so CPU profiles taken while the span runs attribute samples to
// it. End restores the previous labels. When the tracer is disabled the
// original ctx and a nil span are returned.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if !t.enabled.Load() {
		return ctx, nil
	}
	s := &Span{tracer: t, name: name, id: t.nextID(), start: telemetry.Now(), prevCtx: ctx}
	if parent := FromContext(ctx); parent != nil {
		s.parent = parent.id
	}
	ctx = pprof.WithLabels(context.WithValue(ctx, spanKey{}, s), pprof.Labels("span", name))
	pprof.SetGoroutineLabels(ctx)
	return ctx, s
}

// End closes the span and stores its record in the ring buffer. No-op on a
// nil span. A span must be ended at most once, on the goroutine that is
// currently running it.
//
//generic:hotpath
func (s *Span) End() {
	if s == nil {
		return
	}
	//lint:ignore generic/hotalloc,generic/escapes the record is the span's output and exists only when tracing is enabled (End on a nil span returned above)
	rec := &Record{Name: s.name, ID: s.id, Parent: s.parent,
		Start: s.start, Dur: telemetry.Now() - s.start}
	t := s.tracer
	i := t.cursor.Add(1) - 1
	t.slots[i%uint64(len(t.slots))].Store(rec)
	if s.prevCtx != nil {
		//lint:ignore generic/hotalloc label restore runs only for Start-created (request-scoped) spans, never on the Begin/Child fast path
		pprof.SetGoroutineLabels(s.prevCtx)
	}
}

// Snapshot returns the recorded spans ordered by start time (ties by ID).
// When more spans finished than the tracer's capacity, only the most recent
// capacity records survive (ring semantics).
func (t *Tracer) Snapshot() []Record {
	out := make([]Record, 0, len(t.slots))
	for i := range t.slots {
		if r := t.slots[i].Load(); r != nil {
			out = append(out, *r)
		}
	}
	sortRecords(out)
	return out
}

// sortRecords orders by (Start, ID) — parents, which start no later than
// their children, come first, and equal-start spans order deterministically.
func sortRecords(rs []Record) {
	// Insertion sort keeps this dependency-free and the record counts are
	// ring-capacity bounded.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j-1], rs[j]
			if a.Start < b.Start || (a.Start == b.Start && a.ID <= b.ID) {
				break
			}
			rs[j-1], rs[j] = b, a
		}
	}
}

// DefaultCapacity is the default tracer's ring size: enough for every span
// of a full train-plus-evaluate run at per-epoch granularity.
const DefaultCapacity = 1 << 14

// Default is the process-wide tracer the instrumented hot paths record into,
// disabled until a tool (generic-perf, the -trace flag of generic-train /
// generic-cluster / generic-bench) enables it.
var Default = New(DefaultCapacity, 0x67656e65726963)

// Package-level forwarders to Default, mirroring telemetry's usage style.

// Enable turns the default tracer on; Disable off; Enabled reports it.
func Enable()       { Default.Enable() }
func Disable()      { Default.Disable() }
func Enabled() bool { return Default.Enabled() }

// Begin opens a root span on the default tracer (nil when disabled).
//
//generic:hotpath
func Begin(name string) *Span { return Default.Begin(name) }

// Start opens a request-scoped span on the default tracer.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return Default.Start(ctx, name)
}

// Snapshot returns the default tracer's recorded spans; Reset clears them.
func Snapshot() []Record { return Default.Snapshot() }
func Reset()             { Default.Reset() }
