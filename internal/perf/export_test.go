package perf_test

// End-to-end export test: run the real pipeline (fit + predict) and the
// cycle-level accelerator with an activity timeline, export one Chrome
// trace-event JSON, and validate it against the trace-event schema. This is
// the acceptance check that a single trace carries both wall-clock software
// spans and sim-cycle hardware phases on a shared timeline.

import (
	"bytes"
	"encoding/json"
	"testing"

	generic "github.com/edge-hdc/generic"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/telemetry"
	"github.com/edge-hdc/generic/internal/trace"
)

// validateTraceEvents checks the Chrome trace-event schema: a top-level
// traceEvents array whose entries carry name/ph/pid/tid, a numeric ts, and —
// for complete ("X") events — a non-negative dur.
func validateTraceEvents(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("trace output lacks a traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			t.Fatalf("event %d: missing or non-string name: %v", i, ev)
		}
		ph, ok := ev["ph"].(string)
		if !ok || (ph != "X" && ph != "M") {
			t.Fatalf("event %d (%s): ph = %v, want \"X\" or \"M\"", i, name, ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event %d (%s): missing numeric ts", i, name)
		}
		for _, key := range [2]string{"pid", "tid"} {
			v, ok := ev[key].(float64)
			if !ok || v != float64(int(v)) {
				t.Fatalf("event %d (%s): %s = %v, want integer", i, name, key, ev[key])
			}
		}
		if ph == "X" {
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				t.Fatalf("event %d (%s): complete event needs dur >= 0, got %v", i, name, ev["dur"])
			}
		}
	}
	return doc.TraceEvents
}

func TestChromeTraceExportFromPipelineRun(t *testing.T) {
	perf.Reset()
	perf.Enable()
	defer func() {
		perf.Disable()
		perf.Reset()
	}()

	ds, err := generic.LoadDataset("EEG", 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := generic.EncoderForDataset(generic.Generic, ds, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := generic.NewPipeline(enc, ds.Classes)
	if _, err := p.Fit(ds.TrainX[:120], ds.TrainY[:120], generic.TrainOptions{Epochs: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(ds.TestX[0]); err != nil {
		t.Fatal(err)
	}

	// Drive the accelerator model over the same queries with an activity
	// timeline attached, anchored at the wall-clock instant it starts.
	anchor := telemetry.Now()
	spec := generic.Spec{D: 1024, Features: ds.Features, N: 3,
		Classes: ds.Classes, BW: 16, UseID: ds.UseID}
	acc, err := generic.NewAccelerator(spec, 1, ds.Lo, ds.Hi)
	if err != nil {
		t.Fatal(err)
	}
	var tl trace.Timeline
	acc.SetTracer(&tl)
	for i := 0; i < 3; i++ {
		acc.Infer(ds.TestX[i])
	}
	if len(tl.Events) == 0 {
		t.Fatal("accelerator timeline recorded no phases")
	}

	phases := make([]perf.SimPhase, len(tl.Events))
	for i, e := range tl.Events {
		phases[i] = perf.SimPhase(e)
	}
	events := append(perf.Metadata(), perf.Events(perf.Snapshot())...)
	events = append(events, perf.SimEvents(phases, anchor, 2)...)
	var buf bytes.Buffer
	if err := perf.WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}

	parsed := validateTraceEvents(t, buf.Bytes())

	// The one trace must contain wall-clock pipeline spans AND sim-cycle
	// accelerator phases, plus at least one nested (parented) span.
	counts := map[string]int{}
	sawParent := false
	spanNames := map[string]bool{}
	for _, ev := range parsed {
		if cat, _ := ev["cat"].(string); cat != "" {
			counts[cat]++
			if cat == "span" {
				spanNames[ev["name"].(string)] = true
				if args, ok := ev["args"].(map[string]any); ok {
					if _, ok := args["parent"]; ok {
						sawParent = true
					}
				}
			}
		}
	}
	if counts["span"] == 0 {
		t.Error("trace has no wall-clock spans")
	}
	if counts["sim"] == 0 {
		t.Error("trace has no sim-cycle phases")
	}
	if !sawParent {
		t.Error("trace has no nested span (parent arg missing everywhere)")
	}
	for _, want := range [4]string{"pipeline.fit", "fit.epoch", "pipeline.predict", "encode"} {
		if !spanNames[want] {
			t.Errorf("trace is missing expected span %q", want)
		}
	}
	// Sim phases sit on the accelerator thread of the shared process and
	// start at or after the anchor on the shared microsecond axis.
	for _, ev := range parsed {
		if cat, _ := ev["cat"].(string); cat != "sim" {
			continue
		}
		if int(ev["pid"].(float64)) != perf.TracePID || int(ev["tid"].(float64)) != perf.TIDSim {
			t.Fatalf("sim phase %v on pid/tid %v/%v, want %d/%d",
				ev["name"], ev["pid"], ev["tid"], perf.TracePID, perf.TIDSim)
		}
		if ev["ts"].(float64) < float64(anchor)/1e3 {
			t.Fatalf("sim phase %v starts before the anchor", ev["name"])
		}
	}
}
