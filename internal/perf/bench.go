// Benchmark statistics: the BENCH_GENERIC.json schema cmd/generic-perf
// emits, the per-suite summaries (median/p10/p90 over interleaved
// repetitions), and the regression-compare engine CI runs against the
// committed baseline.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// BenchSchemaVersion identifies the BENCH_GENERIC.json layout; bump it when
// a field changes meaning so a compare across incompatible files fails loud.
const BenchSchemaVersion = 1

// BenchResult is the summary of one suite entry over all repetitions.
// Per-op numbers are medians across repetitions; P10/P90 bound the spread so
// the compare engine can distinguish drift from noise.
type BenchResult struct {
	Name string `json:"name"`
	// Reps is the number of interleaved repetitions; Iters the fixed
	// per-repetition iteration count (ns/op = rep wall time / Iters).
	Reps  int `json:"reps"`
	Iters int `json:"iters"`

	MedianNsPerOp float64 `json:"median_ns_per_op"`
	P10NsPerOp    float64 `json:"p10_ns_per_op"`
	P90NsPerOp    float64 `json:"p90_ns_per_op"`

	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// BenchFile is the on-disk perf trajectory record (BENCH_GENERIC.json at the
// repository root): one run of the generic-perf suite plus enough host
// metadata to judge whether two files are comparable.
type BenchFile struct {
	Schema     int    `json:"schema"`
	GitSHA     string `json:"git_sha"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Results []BenchResult `json:"results"`
}

// WriteJSON writes the file as indented JSON (it is committed to the repo, so
// diffs should be line-stable).
func (f *BenchFile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadBenchFile parses a BENCH_GENERIC.json and checks the schema version.
func ReadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("perf: parsing %s: %w", path, err)
	}
	if f.Schema != BenchSchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema %d, this tool speaks %d", path, f.Schema, BenchSchemaVersion)
	}
	return &f, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of samples by linear
// interpolation between order statistics. The input need not be sorted; it
// is not modified. An empty input returns NaN.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Summarize folds per-repetition measurements into one BenchResult. nsPerOp
// must hold one value per repetition; bytesPerOp/allocsPerOp likewise (their
// medians are reported, which shrugs off a stray GC or background
// allocation in one rep).
func Summarize(name string, iters int, nsPerOp, bytesPerOp, allocsPerOp []float64) BenchResult {
	return BenchResult{
		Name: name, Reps: len(nsPerOp), Iters: iters,
		MedianNsPerOp: Quantile(nsPerOp, 0.5),
		P10NsPerOp:    Quantile(nsPerOp, 0.10),
		P90NsPerOp:    Quantile(nsPerOp, 0.90),
		BytesPerOp:    Quantile(bytesPerOp, 0.5),
		AllocsPerOp:   Quantile(allocsPerOp, 0.5),
	}
}

// CompareStatus classifies one suite entry across two runs.
type CompareStatus string

const (
	// StatusOK: medians within threshold, or spreads overlap (noise).
	StatusOK CompareStatus = "ok"
	// StatusRegression: the new median exceeds the old by more than the
	// threshold AND the interquantile ranges are disjoint.
	StatusRegression CompareStatus = "regression"
	// StatusImprovement: the mirror of regression — faster beyond both the
	// threshold and the noise bands.
	StatusImprovement CompareStatus = "improvement"
	// StatusAdded / StatusRemoved: the entry exists in only one file.
	StatusAdded   CompareStatus = "added"
	StatusRemoved CompareStatus = "removed"
)

// Verdict is the compare outcome for one suite entry.
type Verdict struct {
	Name    string
	Status  CompareStatus
	OldNsOp float64
	NewNsOp float64
	Ratio   float64 // new/old median; 0 when either side is missing
}

// Compare judges new against old with a relative threshold (0.30 = flag a
// >30% median slowdown). The rule combines a median ratio test with an
// interquantile-overlap test: a slowdown only counts as a regression when
// the new p10 clears the old p90 — i.e. the distributions separated, not
// merely wobbled. Entries present on one side only are reported as
// added/removed, never as regressions.
func Compare(old, new *BenchFile, threshold float64) []Verdict {
	oldByName := make(map[string]BenchResult, len(old.Results))
	for _, r := range old.Results {
		oldByName[r.Name] = r
	}
	newByName := make(map[string]BenchResult, len(new.Results))
	for _, r := range new.Results {
		newByName[r.Name] = r
	}
	var out []Verdict
	for _, o := range old.Results {
		n, ok := newByName[o.Name]
		if !ok {
			out = append(out, Verdict{Name: o.Name, Status: StatusRemoved, OldNsOp: o.MedianNsPerOp})
			continue
		}
		out = append(out, judge(o, n, threshold))
	}
	for _, n := range new.Results {
		if _, ok := oldByName[n.Name]; !ok {
			out = append(out, Verdict{Name: n.Name, Status: StatusAdded, NewNsOp: n.MedianNsPerOp})
		}
	}
	return out
}

// judge applies the median + interquantile-overlap rule to one matched pair.
func judge(o, n BenchResult, threshold float64) Verdict {
	v := Verdict{Name: o.Name, Status: StatusOK,
		OldNsOp: o.MedianNsPerOp, NewNsOp: n.MedianNsPerOp}
	if o.MedianNsPerOp > 0 {
		v.Ratio = n.MedianNsPerOp / o.MedianNsPerOp
	}
	switch {
	case v.Ratio > 1+threshold && n.P10NsPerOp > o.P90NsPerOp:
		v.Status = StatusRegression
	case v.Ratio > 0 && v.Ratio < 1/(1+threshold) && n.P90NsPerOp < o.P10NsPerOp:
		v.Status = StatusImprovement
	}
	return v
}

// Regressed reports whether any verdict is a regression.
func Regressed(vs []Verdict) bool {
	for _, v := range vs {
		if v.Status == StatusRegression {
			return true
		}
	}
	return false
}

// WriteVerdicts renders a compare report, one line per entry, aligned for
// terminal reading.
func WriteVerdicts(w io.Writer, vs []Verdict) error {
	for _, v := range vs {
		var err error
		switch v.Status {
		case StatusAdded:
			_, err = fmt.Fprintf(w, "%-32s %-12s %38s %12.0f ns/op\n", v.Name, v.Status, "", v.NewNsOp)
		case StatusRemoved:
			_, err = fmt.Fprintf(w, "%-32s %-12s %12.0f ns/op\n", v.Name, v.Status, v.OldNsOp)
		default:
			_, err = fmt.Fprintf(w, "%-32s %-12s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
				v.Name, v.Status, v.OldNsOp, v.NewNsOp, 100*(v.Ratio-1))
		}
		if err != nil {
			return err
		}
	}
	return nil
}
