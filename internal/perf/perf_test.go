package perf

import (
	"context"
	"runtime/pprof"
	"sync"
	"testing"
)

func TestDisabledTracerIsSilent(t *testing.T) {
	tr := New(16, 1)
	if sp := tr.Begin("x"); sp != nil {
		t.Fatalf("Begin on a disabled tracer = %v, want nil", sp)
	}
	ctx, sp := tr.Start(context.Background(), "x")
	if sp != nil {
		t.Fatalf("Start on a disabled tracer returned a span")
	}
	if got := FromContext(ctx); got != nil {
		t.Fatalf("disabled Start stored a span in ctx")
	}
	// All nil-span methods are no-ops.
	sp.End()
	if child := sp.Child("y"); child != nil {
		t.Fatalf("Child of nil span = %v, want nil", child)
	}
	if recs := tr.Snapshot(); len(recs) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(recs))
	}
}

func TestSpanRecordingAndNesting(t *testing.T) {
	tr := New(64, 7)
	tr.Enable()
	root := tr.Begin("root")
	child := root.Child("child")
	grand := child.Child("grand")
	grand.End()
	child.End()
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Snapshot orders by start time: root, child, grand.
	if recs[0].Name != "root" || recs[1].Name != "child" || recs[2].Name != "grand" {
		t.Fatalf("order = %s,%s,%s", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	if recs[0].Parent != 0 {
		t.Errorf("root has parent %d", recs[0].Parent)
	}
	if recs[1].Parent != recs[0].ID {
		t.Errorf("child.Parent = %d, want root ID %d", recs[1].Parent, recs[0].ID)
	}
	if recs[2].Parent != recs[1].ID {
		t.Errorf("grand.Parent = %d, want child ID %d", recs[2].Parent, recs[1].ID)
	}
	for _, r := range recs {
		if r.ID == 0 {
			t.Errorf("span %q has zero ID", r.Name)
		}
		if r.Dur < 0 {
			t.Errorf("span %q has negative duration %d", r.Name, r.Dur)
		}
	}
	// Children are contained in their parents on the timeline.
	if recs[1].Start < recs[0].Start || recs[1].Start+recs[1].Dur > recs[0].Start+recs[0].Dur {
		t.Errorf("child span [%d,+%d] escapes root [%d,+%d]",
			recs[1].Start, recs[1].Dur, recs[0].Start, recs[0].Dur)
	}
}

func TestContextNestingAndPprofLabels(t *testing.T) {
	tr := New(16, 3)
	tr.Enable()
	ctx, root := tr.Start(context.Background(), "request")
	if got, ok := pprof.Label(ctx, "span"); !ok || got != "request" {
		t.Errorf(`ctx label "span" = %q,%v, want "request",true`, got, ok)
	}
	ctx2, inner := tr.Start(ctx, "encode")
	if got, _ := pprof.Label(ctx2, "span"); got != "encode" {
		t.Errorf(`inner ctx label = %q, want "encode"`, got)
	}
	if FromContext(ctx2) != inner {
		t.Errorf("FromContext(ctx2) is not the inner span")
	}
	inner.End()
	root.End()
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[1].Parent != recs[0].ID {
		t.Errorf("ctx nesting lost: inner.Parent = %d, want %d", recs[1].Parent, recs[0].ID)
	}
}

// TestDeterministicIDs: identical span sequences after Reset reproduce
// identical IDs — traces are replayable like everything else in the repo.
func TestDeterministicIDs(t *testing.T) {
	tr := New(16, 42)
	tr.Enable()
	run := func() []uint64 {
		tr.Reset()
		a := tr.Begin("a")
		b := a.Child("b")
		b.End()
		a.End()
		recs := tr.Snapshot()
		ids := make([]uint64, len(recs))
		for i, r := range recs {
			ids[i] = r.ID
		}
		return ids
	}
	first, second := run(), run()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("record counts: %d, %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("ID %d differs across identical runs: %x vs %x", i, first[i], second[i])
		}
	}
	// A different seed yields a different stream.
	other := New(16, 43)
	other.Enable()
	sp := other.Begin("a")
	sp.End()
	if got := other.Snapshot()[0].ID; got == first[0] {
		t.Errorf("seed 43 reproduced seed 42's first ID %x", got)
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	tr := New(4, 1)
	tr.Enable()
	for i := 0; i < 10; i++ {
		tr.Begin("s").End()
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring of 4 holds %d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Errorf("snapshot not start-ordered at %d", i)
		}
	}
}

// TestConcurrentSpans hammers Begin/End/Snapshot from many goroutines; run
// with -race. Also exercises Enable/Disable flips mid-flight.
func TestConcurrentSpans(t *testing.T) {
	tr := New(128, 9)
	tr.Enable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Begin("work")
				sp.Child("inner").End()
				sp.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Snapshot()
			tr.Disable()
			tr.Enable()
		}
	}()
	wg.Wait()
	<-done
	if recs := tr.Snapshot(); len(recs) == 0 {
		t.Fatal("no spans recorded under concurrency")
	}
}

// BenchmarkBeginDisabled documents the disabled-path cost: one atomic load.
func BenchmarkBeginDisabled(b *testing.B) {
	tr := New(16, 1)
	for i := 0; i < b.N; i++ {
		tr.Begin("x").End()
	}
}

// BenchmarkSpanEnabled documents the enabled-path cost per span.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(1<<12, 1)
	tr.Enable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Begin("x").End()
	}
}
