package perf

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/edge-hdc/generic/internal/rng"
)

func TestQuantile(t *testing.T) {
	s := []float64{4, 1, 3, 2, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(s, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input is not mutated (Quantile sorts a copy).
	if s[0] != 4 {
		t.Errorf("Quantile mutated its input: %v", s)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Errorf("Quantile(nil) = %v, want NaN", Quantile(nil, 0.5))
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("Quantile of singleton = %v, want 7", got)
	}
}

func TestSummarize(t *testing.T) {
	ns := []float64{100, 110, 90, 105, 95}
	r := Summarize("x", 1000, ns, []float64{32, 32, 32, 32, 32}, []float64{2, 2, 2, 2, 2})
	if r.Name != "x" || r.Reps != 5 || r.Iters != 1000 {
		t.Fatalf("metadata wrong: %+v", r)
	}
	if r.MedianNsPerOp != 100 {
		t.Errorf("median = %v, want 100", r.MedianNsPerOp)
	}
	if r.P10NsPerOp >= r.MedianNsPerOp || r.P90NsPerOp <= r.MedianNsPerOp {
		t.Errorf("quantile ordering violated: p10=%v med=%v p90=%v",
			r.P10NsPerOp, r.MedianNsPerOp, r.P90NsPerOp)
	}
	if r.BytesPerOp != 32 || r.AllocsPerOp != 2 {
		t.Errorf("bytes/allocs = %v/%v, want 32/2", r.BytesPerOp, r.AllocsPerOp)
	}
}

// synthetic draws reps samples around mean with +-spread uniform noise from a
// seeded deterministic stream.
func synthetic(r *rng.Rand, reps int, mean, spread float64) []float64 {
	out := make([]float64, reps)
	for i := range out {
		out[i] = mean + (2*r.Float64()-1)*spread
	}
	return out
}

func fileWith(results ...BenchResult) *BenchFile {
	return &BenchFile{Schema: BenchSchemaVersion, Results: results}
}

// TestCompareFlagsInjectedSlowdown: a synthetic 2x regression must be
// flagged even under realistic rep-to-rep noise.
func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	r := rng.New(1)
	old := Summarize("encode/single", 1000, synthetic(r, 9, 1000, 50), nil, nil)
	slow := Summarize("encode/single", 1000, synthetic(r, 9, 2000, 100), nil, nil)
	vs := Compare(fileWith(old), fileWith(slow), 0.30)
	if len(vs) != 1 {
		t.Fatalf("got %d verdicts, want 1", len(vs))
	}
	if vs[0].Status != StatusRegression {
		t.Fatalf("2x slowdown judged %q (ratio %.2f), want regression", vs[0].Status, vs[0].Ratio)
	}
	if !Regressed(vs) {
		t.Error("Regressed = false with a regression present")
	}
}

// TestCompareSameDistributionPasses: two runs drawn from one distribution
// must not be flagged — the control that keeps the CI gate advisory-quiet.
func TestCompareSameDistributionPasses(t *testing.T) {
	r := rng.New(2)
	a := Summarize("predict", 500, synthetic(r, 9, 5000, 400), nil, nil)
	b := Summarize("predict", 500, synthetic(r, 9, 5000, 400), nil, nil)
	vs := Compare(fileWith(a), fileWith(b), 0.30)
	if vs[0].Status != StatusOK {
		t.Fatalf("same-distribution run judged %q (ratio %.2f), want ok", vs[0].Status, vs[0].Ratio)
	}
	if Regressed(vs) {
		t.Error("Regressed = true on same-distribution noise")
	}
}

// TestCompareOverlapSuppresses: a median past the threshold whose spread
// still overlaps the baseline is noise, not a regression.
func TestCompareOverlapSuppresses(t *testing.T) {
	old := BenchResult{Name: "x", MedianNsPerOp: 100, P10NsPerOp: 60, P90NsPerOp: 160}
	noisy := BenchResult{Name: "x", MedianNsPerOp: 140, P10NsPerOp: 90, P90NsPerOp: 200}
	vs := Compare(fileWith(old), fileWith(noisy), 0.30)
	if vs[0].Status != StatusOK {
		t.Fatalf("overlapping spread judged %q, want ok (p10 %v <= old p90 %v)",
			vs[0].Status, noisy.P10NsPerOp, old.P90NsPerOp)
	}
}

func TestCompareImprovementAndChurn(t *testing.T) {
	r := rng.New(3)
	old := fileWith(
		Summarize("a", 100, synthetic(r, 9, 2000, 50), nil, nil),
		Summarize("gone", 100, synthetic(r, 9, 100, 5), nil, nil),
	)
	new := fileWith(
		Summarize("a", 100, synthetic(r, 9, 900, 30), nil, nil),
		Summarize("fresh", 100, synthetic(r, 9, 100, 5), nil, nil),
	)
	vs := Compare(old, new, 0.30)
	got := map[string]CompareStatus{}
	for _, v := range vs {
		got[v.Name] = v.Status
	}
	if got["a"] != StatusImprovement {
		t.Errorf("a judged %q, want improvement", got["a"])
	}
	if got["gone"] != StatusRemoved || got["fresh"] != StatusAdded {
		t.Errorf("churn verdicts: gone=%q fresh=%q", got["gone"], got["fresh"])
	}
	if Regressed(vs) {
		t.Error("improvement/churn counted as regression")
	}
	var buf bytes.Buffer
	if err := WriteVerdicts(&buf, vs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("WriteVerdicts produced no output")
	}
}

func TestBenchFileRoundTripAndSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	f := &BenchFile{
		Schema: BenchSchemaVersion, GitSHA: "deadbeef", GoVersion: "go1.24.0",
		GOOS: "linux", GOARCH: "amd64", NumCPU: 8, GOMAXPROCS: 8,
		Results: []BenchResult{{Name: "x", Reps: 5, Iters: 100,
			MedianNsPerOp: 1, P10NsPerOp: 0.9, P90NsPerOp: 1.1}},
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GitSHA != "deadbeef" || len(got.Results) != 1 || got.Results[0].Name != "x" {
		t.Fatalf("round trip lost data: %+v", got)
	}

	// A future-schema file is rejected loudly, not misread.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchFile(bad); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}
