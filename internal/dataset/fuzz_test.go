package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV hardens the CSV loader: arbitrary input must yield an error
// or a valid dataset — never a panic.
func FuzzReadCSV(f *testing.F) {
	f.Add("0,1.0,2.0\n1,3.0,4.0\n0,1.1,2.1\n1,3.1,4.1\n", 0, false)
	f.Add("h1,h2,label\n1.0,2.0,0\n3.0,4.0,1\n", 2, true)
	f.Add("", 0, false)
	f.Add("0\n1\n", 0, false)
	f.Add("0,NaN\n1,Inf\n0,1\n1,2\n", 0, false)
	f.Fuzz(func(t *testing.T, in string, labelCol int, header bool) {
		if labelCol < 0 || labelCol > 16 {
			labelCol = 0
		}
		ds, err := ReadCSV(strings.NewReader(in), CSVOptions{
			LabelColumn: labelCol, HasHeader: header, Seed: 1,
		})
		if err != nil {
			return
		}
		if verr := ds.Validate(); verr != nil {
			t.Fatalf("parsed dataset fails validation: %v", verr)
		}
	})
}
