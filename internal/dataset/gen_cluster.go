package dataset

import (
	"fmt"
	"math"

	"github.com/edge-hdc/generic/internal/rng"
)

// ClusterSet is an unlabelled-learning benchmark with ground-truth cluster
// assignments for external validation (normalized mutual information).
type ClusterSet struct {
	Name     string
	Features int
	K        int // true number of clusters
	X        [][]float64
	Labels   []int
	Lo, Hi   float64
}

var clusterNames = []string{"Hepta", "Tetra", "TwoDiamonds", "WingNut", "Iris"}

// ClusterNames returns the clustering benchmarks in the paper's Table 2 /
// Figure 10 order.
func ClusterNames() []string {
	out := make([]string, len(clusterNames))
	copy(out, clusterNames)
	return out
}

// LoadCluster generates the named clustering benchmark deterministically.
// The four FCPS sets follow Ultsch's "Fundamental Clustering Problem Suite"
// geometric constructions; Iris follows the classical three-species
// structure (one linearly separable cluster, two overlapping).
func LoadCluster(name string, seed uint64) (*ClusterSet, error) {
	r := rng.New(seed ^ hashName("cluster:"+name))
	var cs *ClusterSet
	switch name {
	case "Hepta":
		cs = genHepta(r)
	case "Tetra":
		cs = genTetra(r)
	case "TwoDiamonds":
		cs = genTwoDiamonds(r)
	case "WingNut":
		cs = genWingNut(r)
	case "Iris":
		cs = genIris(r)
	default:
		return nil, fmt.Errorf("dataset: unknown clustering benchmark %q (known: %v)", name, clusterNames)
	}
	cs.Name = name
	cs.computeRange()
	return cs, nil
}

// MustLoadCluster is LoadCluster that panics on error.
func MustLoadCluster(name string, seed uint64) *ClusterSet {
	cs, err := LoadCluster(name, seed)
	if err != nil {
		panic(err)
	}
	return cs
}

func (c *ClusterSet) computeRange() {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range c.X {
		for _, v := range x {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	c.Lo, c.Hi = lo, hi
}

// Validate checks internal consistency.
func (c *ClusterSet) Validate() error {
	if len(c.X) != len(c.Labels) || len(c.X) == 0 {
		return fmt.Errorf("clusterset %s: bad sizes", c.Name)
	}
	seen := make([]bool, c.K)
	for i, x := range c.X {
		if len(x) != c.Features {
			return fmt.Errorf("clusterset %s: sample %d has %d features, want %d", c.Name, i, len(x), c.Features)
		}
		if c.Labels[i] < 0 || c.Labels[i] >= c.K {
			return fmt.Errorf("clusterset %s: label %d out of range", c.Name, c.Labels[i])
		}
		seen[c.Labels[i]] = true
	}
	for k, ok := range seen {
		if !ok {
			return fmt.Errorf("clusterset %s: cluster %d empty", c.Name, k)
		}
	}
	return nil
}

// genHepta: FCPS Hepta — seven clearly separated spherical clusters in 3D,
// one at the origin and six on the axes. 212 points.
func genHepta(r *rng.Rand) *ClusterSet {
	centers := [][3]float64{
		{0, 0, 0},
		{3, 0, 0}, {-3, 0, 0},
		{0, 3, 0}, {0, -3, 0},
		{0, 0, 3}, {0, 0, -3},
	}
	cs := &ClusterSet{Features: 3, K: 7}
	perCluster := []int{32, 30, 30, 30, 30, 30, 30}
	for k, c := range centers {
		for i := 0; i < perCluster[k]; i++ {
			cs.X = append(cs.X, []float64{
				c[0] + 0.45*r.NormFloat64(),
				c[1] + 0.45*r.NormFloat64(),
				c[2] + 0.45*r.NormFloat64(),
			})
			cs.Labels = append(cs.Labels, k)
		}
	}
	return cs
}

// genTetra: FCPS Tetra — four almost-touching spherical clusters at the
// vertices of a tetrahedron. 400 points.
func genTetra(r *rng.Rand) *ClusterSet {
	s := 1.2
	centers := [][3]float64{
		{s, s, s}, {s, -s, -s}, {-s, s, -s}, {-s, -s, s},
	}
	cs := &ClusterSet{Features: 3, K: 4}
	for k, c := range centers {
		for i := 0; i < 100; i++ {
			cs.X = append(cs.X, []float64{
				c[0] + 0.72*r.NormFloat64(),
				c[1] + 0.72*r.NormFloat64(),
				c[2] + 0.72*r.NormFloat64(),
			})
			cs.Labels = append(cs.Labels, k)
		}
	}
	return cs
}

// genTwoDiamonds: FCPS TwoDiamonds — two diamond-shaped (L1-ball) clusters
// in 2D whose corners nearly touch. 800 points.
func genTwoDiamonds(r *rng.Rand) *ClusterSet {
	cs := &ClusterSet{Features: 2, K: 2}
	sample := func(cx float64, label int) {
		// Uniform in the L1 ball |x|+|y| <= 1 via rejection.
		for {
			x := 2*r.Float64() - 1
			y := 2*r.Float64() - 1
			if math.Abs(x)+math.Abs(y) <= 1 {
				cs.X = append(cs.X, []float64{cx + x, y})
				cs.Labels = append(cs.Labels, label)
				return
			}
		}
	}
	for i := 0; i < 400; i++ {
		sample(-1.02, 0)
		sample(1.02, 1)
	}
	return cs
}

// genWingNut: FCPS WingNut — two rectangular point slabs with a density
// gradient that pulls centroid methods toward the dense edges. 1016 points.
func genWingNut(r *rng.Rand) *ClusterSet {
	cs := &ClusterSet{Features: 2, K: 2}
	sample := func(flip float64, label int) {
		// Rectangle [0,3]x[0,1]; density increases linearly with x via
		// rejection, then mirrored/offset per wing.
		for {
			x := 3 * r.Float64()
			if r.Float64() > (0.25 + 0.75*x/3) {
				continue
			}
			y := r.Float64()
			cs.X = append(cs.X, []float64{flip * (x + 0.3), flip*y + (1-flip)/2})
			cs.Labels = append(cs.Labels, label)
			return
		}
	}
	for i := 0; i < 508; i++ {
		sample(1, 0)
		sample(-1, 1)
	}
	return cs
}

// genIris: the classical Iris structure — three 4-feature clusters, one
// well separated (setosa) and two overlapping (versicolor/virginica).
// 150 points.
func genIris(r *rng.Rand) *ClusterSet {
	// Means/scales approximate the real dataset (cm).
	means := [3][4]float64{
		{5.0, 3.4, 1.5, 0.25}, // setosa
		{5.9, 2.8, 4.3, 1.3},  // versicolor
		{6.6, 3.0, 5.6, 2.0},  // virginica
	}
	sds := [3][4]float64{
		{0.35, 0.38, 0.17, 0.10},
		{0.52, 0.31, 0.47, 0.20},
		{0.64, 0.32, 0.55, 0.27},
	}
	cs := &ClusterSet{Features: 4, K: 3}
	for k := 0; k < 3; k++ {
		for i := 0; i < 50; i++ {
			x := make([]float64, 4)
			for j := range x {
				x[j] = means[k][j] + sds[k][j]*r.NormFloat64()
			}
			cs.X = append(cs.X, x)
			cs.Labels = append(cs.Labels, k)
		}
	}
	return cs
}
