package dataset

import (
	"math"
	"testing"
)

func TestAllBenchmarksValid(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			ds := MustLoad(name, 1)
			if err := ds.Validate(); err != nil {
				t.Fatal(err)
			}
			if ds.Name != name {
				t.Fatalf("Name = %q, want %q", ds.Name, name)
			}
		})
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("NOPE", 1); err == nil {
		t.Fatal("Load of unknown benchmark did not error")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := MustLoad("EEG", 7)
	b := MustLoad("EEG", 7)
	if len(a.TrainX) != len(b.TrainX) {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range a.TrainX {
		if a.TrainY[i] != b.TrainY[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.TrainX[i] {
			if a.TrainX[i][j] != b.TrainX[i][j] {
				t.Fatal("features differ across identical seeds")
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := MustLoad("CARDIO", 1)
	b := MustLoad("CARDIO", 2)
	same := true
	for i := range a.TrainX[0] {
		if a.TrainX[0][i] != b.TrainX[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical first samples")
	}
}

func TestRangeCoversData(t *testing.T) {
	for _, name := range Names() {
		ds := MustLoad(name, 3)
		below, total := 0, 0
		for _, x := range ds.TrainX {
			for _, v := range x {
				total++
				if v < ds.Lo || v > ds.Hi {
					below++
				}
			}
		}
		// Percentile clipping allows ~1% outside.
		if float64(below)/float64(total) > 0.03 {
			t.Errorf("%s: %.1f%% of train values outside [Lo,Hi]", name, 100*float64(below)/float64(total))
		}
	}
}

func TestClassBalanceRoughlyUniformWhereExpected(t *testing.T) {
	ds := MustLoad("ISOLET", 1)
	counts := make([]int, ds.Classes)
	for _, y := range ds.TrainY {
		counts[y]++
	}
	want := len(ds.TrainY) / ds.Classes
	for c, n := range counts {
		if n < want/3 {
			t.Errorf("class %d badly under-represented: %d (expected ~%d)", c, n, want)
		}
	}
}

func TestPageSkewedPriors(t *testing.T) {
	ds := MustLoad("PAGE", 1)
	counts := make([]int, ds.Classes)
	for _, y := range ds.TrainY {
		counts[y]++
	}
	if counts[0] <= counts[4] {
		t.Errorf("PAGE should be skewed toward class 0: %v", counts)
	}
}

func TestEEGMotifStructure(t *testing.T) {
	// Seizure samples must have larger amplitude extremes than background:
	// the property that lets quantized-level encodings get partial accuracy.
	ds := MustLoad("EEG", 1)
	maxAbs := func(x []float64) float64 {
		m := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return m
	}
	var seiz, bg, nSeiz, nBg float64
	for i, x := range ds.TrainX {
		if ds.TrainY[i] == 1 {
			seiz += maxAbs(x)
			nSeiz++
		} else {
			bg += maxAbs(x)
			nBg++
		}
	}
	if seiz/nSeiz <= bg/nBg {
		t.Error("seizure class does not have larger amplitude extremes")
	}
	if ds.UseID {
		t.Error("EEG should disable global id binding")
	}
}

func TestLangZeroMeanPositionStats(t *testing.T) {
	ds := MustLoad("LANG", 1)
	if ds.UseID {
		t.Error("LANG should disable global id binding")
	}
	if ds.Kind != Sequence {
		t.Errorf("LANG kind = %v, want sequence", ds.Kind)
	}
}

func TestNormalize(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 30}, {5, 50}}
	st := FitNormalize(X)
	st.Apply(X)
	for j := 0; j < 2; j++ {
		var mean, varr float64
		for i := range X {
			mean += X[i][j]
		}
		mean /= 3
		for i := range X {
			varr += (X[i][j] - mean) * (X[i][j] - mean)
		}
		varr /= 3
		if math.Abs(mean) > 1e-9 || math.Abs(varr-1) > 1e-9 {
			t.Fatalf("feature %d not standardized: mean=%v var=%v", j, mean, varr)
		}
	}
}

func TestNormalizeConstantFeature(t *testing.T) {
	X := [][]float64{{2, 1}, {2, 2}, {2, 3}}
	st := FitNormalize(X)
	st.Apply(X)
	for i := range X {
		if X[i][0] != 0 {
			t.Fatalf("constant feature not centered to 0: %v", X[i][0])
		}
		if math.IsNaN(X[i][1]) || math.IsInf(X[i][1], 0) {
			t.Fatalf("normalization produced non-finite value")
		}
	}
}

func TestNormalizedDoesNotMutate(t *testing.T) {
	ds := MustLoad("PAGE", 1)
	orig := ds.TrainX[0][0]
	trainX, testX := ds.Normalized()
	if ds.TrainX[0][0] != orig {
		t.Fatal("Normalized mutated the dataset")
	}
	if len(trainX) != len(ds.TrainX) || len(testX) != len(ds.TestX) {
		t.Fatal("Normalized changed split sizes")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Tabular: "tabular", TimeSeries: "time-series", Motif: "motif",
		Sequence: "sequence", Image: "image", Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestAllClusterSetsValid(t *testing.T) {
	for _, name := range ClusterNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cs := MustLoadCluster(name, 1)
			if err := cs.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLoadClusterUnknown(t *testing.T) {
	if _, err := LoadCluster("NOPE", 1); err == nil {
		t.Fatal("LoadCluster of unknown benchmark did not error")
	}
}

func TestClusterSizes(t *testing.T) {
	want := map[string]int{
		"Hepta": 212, "Tetra": 400, "TwoDiamonds": 800, "WingNut": 1016, "Iris": 150,
	}
	for name, n := range want {
		cs := MustLoadCluster(name, 1)
		if len(cs.X) != n {
			t.Errorf("%s: %d points, want %d", name, len(cs.X), n)
		}
	}
}

func TestHeptaWellSeparated(t *testing.T) {
	cs := MustLoadCluster("Hepta", 1)
	// Within-cluster spread must be far smaller than between-center
	// distance (3.0): compute mean distance to own center.
	centers := make([][]float64, cs.K)
	counts := make([]int, cs.K)
	for i := range centers {
		centers[i] = make([]float64, cs.Features)
	}
	for i, x := range cs.X {
		k := cs.Labels[i]
		counts[k]++
		for j, v := range x {
			centers[k][j] += v
		}
	}
	for k := range centers {
		for j := range centers[k] {
			centers[k][j] /= float64(counts[k])
		}
	}
	var within float64
	for i, x := range cs.X {
		c := centers[cs.Labels[i]]
		var d2 float64
		for j := range x {
			d2 += (x[j] - c[j]) * (x[j] - c[j])
		}
		within += math.Sqrt(d2)
	}
	within /= float64(len(cs.X))
	if within > 1.5 {
		t.Errorf("Hepta within-cluster spread %v too large for separation 3", within)
	}
}

func TestTwoDiamondsGeometry(t *testing.T) {
	cs := MustLoadCluster("TwoDiamonds", 1)
	for i, x := range cs.X {
		cx := -1.02
		if cs.Labels[i] == 1 {
			cx = 1.02
		}
		if math.Abs(x[0]-cx)+math.Abs(x[1]) > 1+1e-9 {
			t.Fatalf("point %d outside its diamond: %v", i, x)
		}
	}
}

func TestClusterDeterminism(t *testing.T) {
	a := MustLoadCluster("WingNut", 5)
	b := MustLoadCluster("WingNut", 5)
	for i := range a.X {
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("cluster generation not deterministic")
			}
		}
	}
}
