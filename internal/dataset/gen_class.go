package dataset

import (
	"math"

	"github.com/edge-hdc/generic/internal/rng"
)

// This file holds the per-benchmark generators. Each one documents the
// structural property of the real dataset it stands in for and how the
// synthetic construction preserves it (see package comment and DESIGN.md §2).

// genCardio stands in for UCI Cardiotocography: 21 tabular features, 3
// fetal-state classes. Real CTG labels follow clinical threshold rules, so
// the label here is produced by a random depth-3 axis-aligned decision tree
// (which is why random forests dominate this benchmark in Table 1), with
// Gaussian feature noise on top.
func genCardio(r *rng.Rand) *Dataset {
	const nf, nc, n = 21, 3, 1200
	d := &Dataset{Kind: Tabular, Features: nf, Classes: nc, UseID: true}
	// Random threshold tree over 3 feature axes → 8 leaves → classes.
	axes := [3]int{r.Intn(nf), r.Intn(nf), r.Intn(nf)}
	thr := [3]float64{0.35 + 0.3*r.Float64(), 0.35 + 0.3*r.Float64(), 0.35 + 0.3*r.Float64()}
	leafClass := make([]int, 8)
	for i := range leafClass {
		leafClass[i] = r.Intn(nc)
	}
	// Ensure every class owns at least one leaf.
	leafClass[0], leafClass[1], leafClass[2] = 0, 1, 2
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		x := make([]float64, nf)
		for j := range x {
			x[j] = r.Float64()
		}
		leaf := 0
		for b, a := range axes {
			if x[a] > thr[b] {
				leaf |= 1 << uint(b)
			}
		}
		// Moderate label noise keeps accuracies below 100%.
		y := leafClass[leaf]
		if r.Float64() < 0.04 {
			y = r.Intn(nc)
		}
		X[i], Y[i] = x, y
	}
	split(r, X, Y, 0.3, d)
	return d
}

// genDNA stands in for the splice-junction DNA benchmark: a categorical
// sequence with a class-defining motif at a *fixed* (center) position.
// Because the discriminative pattern is both local and positionally
// anchored, every encoding family solves it (~99% across Table 1).
func genDNA(r *rng.Rand) *Dataset {
	const length, nc, n, motifLen = 120, 3, 900, 8
	d := &Dataset{Kind: Sequence, Features: length, Classes: nc, UseID: true}
	// Nucleotides map to 4 evenly spaced levels.
	nt := func(k int) float64 { return float64(k) / 3 }
	motifs := make([][]int, nc)
	for c := range motifs {
		m := make([]int, motifLen)
		for j := range m {
			m[j] = r.Intn(4)
		}
		motifs[c] = m
	}
	center := length/2 - motifLen/2
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(nc)
		x := make([]float64, length)
		for j := range x {
			x[j] = nt(r.Intn(4))
		}
		for j, m := range motifs[c] {
			// 5% per-base mutation noise.
			if r.Float64() < 0.05 {
				m = r.Intn(4)
			}
			x[center+j] = nt(m)
		}
		X[i], Y[i] = x, c
	}
	split(r, X, Y, 0.3, d)
	return d
}

// genEEG stands in for skull-surface EEG seizure detection: a binary
// time-series task where the seizure class contains a short high-frequency
// burst at an unpredictable position. The burst is zero-mean (oscillation),
// so linear random projection sees nothing (RP collapses in Table 1);
// quantized level statistics see the amplitude tails (level-id partial);
// window encodings see the motif itself (ngram/GENERIC best). The GENERIC
// encoding runs id-less here (UseID=false), as the paper prescribes for
// applications without global window order.
func genEEG(r *rng.Rand) *Dataset {
	const length, n, burstLen = 128, 1000, 16
	d := &Dataset{Kind: Motif, Features: length, Classes: 2, UseID: false}
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(2)
		x := make([]float64, length)
		for j := range x {
			x[j] = 0.25 * r.NormFloat64() // background EEG noise
		}
		if c == 1 {
			// Seizure burst: strong alternating spikes, random onset.
			pos := r.Intn(length - burstLen)
			phase := r.Float64() * 2 * math.Pi
			for j := 0; j < burstLen; j++ {
				x[pos+j] += 1.4 * math.Sin(phase+float64(j)*2.1)
			}
		} else if r.Float64() < 0.35 {
			// Background sometimes has weak artifacts, limiting ngram
			// accuracy below 100%.
			pos := r.Intn(length - burstLen)
			phase := r.Float64() * 2 * math.Pi
			for j := 0; j < burstLen; j++ {
				x[pos+j] += 0.7 * math.Sin(phase+float64(j)*2.1)
			}
		}
		X[i], Y[i] = x, c
	}
	split(r, X, Y, 0.3, d)
	return d
}

// genEMG stands in for hand-gesture EMG classification: each gesture has a
// characteristic per-channel activation envelope, but the carrier is a
// zero-mean oscillation — so amplitude (captured by quantized levels at
// each position) separates classes while first-order linear statistics
// (random projection) do not. That is exactly the Table 1 split:
// RP ≈ 54%, everything else ≈ 91%.
func genEMG(r *rng.Rand) *Dataset {
	const length, nc, n = 64, 4, 1000
	d := &Dataset{Kind: TimeSeries, Features: length, Classes: nc, UseID: true}
	// Per-class smooth envelope templates in [0.2, 1].
	envs := make([][]float64, nc)
	for c := range envs {
		env := make([]float64, length)
		// Sum of two random-center Gaussian bumps.
		for b := 0; b < 2; b++ {
			center := float64(r.Intn(length))
			width := 6 + 6*r.Float64()
			amp := 0.5 + 0.5*r.Float64()
			for j := range env {
				dj := float64(j) - center
				env[j] += amp * math.Exp(-dj*dj/(2*width*width))
			}
		}
		envs[c] = env
	}
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(nc)
		x := make([]float64, length)
		phase := r.Float64() * 2 * math.Pi
		for j := range x {
			carrier := math.Sin(phase + float64(j)*2.9)
			x[j] = envs[c][j]*carrier + 0.12*r.NormFloat64()
		}
		X[i], Y[i] = x, c
	}
	split(r, X, Y, 0.3, d)
	return d
}

// genFace stands in for binary face detection on small grayscale patches.
// Faces are a fixed arrangement of intensity blobs (eyes, mouth); non-faces
// contain the *same* blobs at scrambled positions. Local windows therefore
// look alike across classes — ngram drops to ~73% in Table 1 — while any
// positional encoding separates the classes easily.
func genFace(r *rng.Rand) *Dataset {
	const side, n = 16, 1000
	d := &Dataset{Kind: Image, Features: side * side, Classes: 2, UseID: true}
	type blob struct{ cx, cy, w, amp float64 }
	faceBlobs := []blob{
		{4.5, 5, 1.6, 1},  // left eye
		{11.5, 5, 1.6, 1}, // right eye
		{8, 11, 2.2, 0.8}, // mouth
		{8, 8, 1.2, 0.5},  // nose
	}
	render := func(blobs []blob, x []float64, r *rng.Rand) {
		for i := range x {
			x[i] = 0.15 * r.NormFloat64()
		}
		for _, b := range blobs {
			for yy := 0; yy < side; yy++ {
				for xx := 0; xx < side; xx++ {
					dx, dy := float64(xx)-b.cx, float64(yy)-b.cy
					x[yy*side+xx] += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.w*b.w))
				}
			}
		}
	}
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(2)
		x := make([]float64, side*side)
		if c == 1 {
			// Face: canonical arrangement with ±1 pixel jitter.
			jb := make([]blob, len(faceBlobs))
			copy(jb, faceBlobs)
			for k := range jb {
				jb[k].cx += float64(r.Intn(3) - 1)
				jb[k].cy += float64(r.Intn(3) - 1)
			}
			render(jb, x, r)
		} else {
			// Non-face: same blob inventory, scrambled positions.
			jb := make([]blob, len(faceBlobs))
			copy(jb, faceBlobs)
			for k := range jb {
				jb[k].cx = 2 + 12*r.Float64()
				jb[k].cy = 2 + 12*r.Float64()
			}
			render(jb, x, r)
		}
		X[i], Y[i] = x, c
	}
	split(r, X, Y, 0.3, d)
	return d
}

// genIsolet stands in for ISOLET spoken-letter recognition: 26 classes of
// spectral-feature curves. Every letter's curve is assembled from the same
// small dictionary of smooth spectral segments — letters differ in the
// global *arrangement* of segments, the way spoken letters share formant
// shapes but sequence them differently. Position-free window statistics
// therefore alias heavily between classes (ngram collapses to ~39% in
// Table 1) while positional encodings exceed 93%.
func genIsolet(r *rng.Rand) *Dataset {
	const segLen, segsPerInput, dictSize, nc, n = 16, 8, 6, 26, 2080
	const length = segLen * segsPerInput
	d := &Dataset{Kind: Tabular, Features: length, Classes: nc, UseID: true}
	// Shared segment dictionary: smooth random curves.
	dict := make([][]float64, dictSize)
	for s := range dict {
		seg := make([]float64, segLen)
		a, b, ph := r.NormFloat64(), r.NormFloat64()*0.5, r.Float64()*2*math.Pi
		for j := range seg {
			t := 2 * math.Pi * float64(j) / segLen
			seg[j] = a*math.Sin(t+ph) + b*math.Cos(2*t+ph)
		}
		dict[s] = seg
	}
	// Class identity = arrangement of dictionary segments.
	arrangement := make([][]int, nc)
	for c := range arrangement {
		arr := make([]int, segsPerInput)
		for k := range arr {
			arr[k] = r.Intn(dictSize)
		}
		arrangement[c] = arr
	}
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(nc)
		x := make([]float64, length)
		for k, s := range arrangement[c] {
			for j, v := range dict[s] {
				x[k*segLen+j] = v + 0.3*r.NormFloat64()
			}
		}
		X[i], Y[i] = x, c
	}
	split(r, X, Y, 0.25, d)
	return d
}

// genLang stands in for language identification from character streams.
// Each language is a first-order Markov chain over a 24-letter alphabet
// with near-identical stationary distributions but disjoint preferred
// transitions: only sub-sequence (n-gram) statistics identify the language.
// ngram and GENERIC reach ~100% in Table 1; positional encodings see mostly
// the (shared) unigram statistics; linear RP is near chance. Global window
// order is meaningless, so GENERIC runs id-less.
func genLang(r *rng.Rand) *Dataset {
	const alphabet, length, nc, n = 24, 64, 12, 960
	d := &Dataset{Kind: Sequence, Features: length, Classes: nc, UseID: false}
	// Each language: from letter a, the successor is drawn from a small
	// language-specific subset of size 3 (90%) or uniform (10%).
	succ := make([][][3]int, nc)
	for c := range succ {
		succ[c] = make([][3]int, alphabet)
		for a := 0; a < alphabet; a++ {
			for k := 0; k < 3; k++ {
				succ[c][a][k] = r.Intn(alphabet)
			}
		}
	}
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(nc)
		x := make([]float64, length)
		cur := r.Intn(alphabet)
		for j := 0; j < length; j++ {
			x[j] = float64(cur) / float64(alphabet-1)
			if r.Float64() < 0.9 {
				cur = succ[c][cur][r.Intn(3)]
			} else {
				cur = r.Intn(alphabet)
			}
		}
		X[i], Y[i] = x, c
	}
	split(r, X, Y, 0.3, d)
	return d
}

// genMNIST stands in for MNIST digit recognition on 14×14 images. Digits
// are rendered from seven-segment-style stroke masks with jitter, noise,
// and ±1-pixel translation. Strokes are shared between digits (e.g. 8 ⊃ 0),
// so position-free window statistics confuse classes (ngram ≈ 53% in
// Table 1) while positional encodings reach ~90%.
func genMNIST(r *rng.Rand) *Dataset {
	const side, nc, n = 14, 10, 2000
	d := &Dataset{Kind: Image, Features: side * side, Classes: nc, UseID: true}
	// Seven segments on a 14x14 canvas: A top, B top-right, C bottom-right,
	// D bottom, E bottom-left, F top-left, G middle.
	segs := [10]uint8{
		0b0111111, // 0: ABCDEF
		0b0000110, // 1: BC
		0b1011011, // 2: ABDEG
		0b1001111, // 3: ABCDG
		0b1100110, // 4: BCFG
		0b1101101, // 5: ACDFG
		0b1111101, // 6: ACDEFG
		0b0000111, // 7: ABC
		0b1111111, // 8: all
		0b1101111, // 9: ABCDFG
	}
	drawSeg := func(x []float64, seg int, dx, dy int) {
		hline := func(y, x0, x1 int) {
			for xx := x0; xx <= x1; xx++ {
				px, py := xx+dx, y+dy
				if px >= 0 && px < side && py >= 0 && py < side {
					x[py*side+px] += 1
				}
			}
		}
		vline := func(xcol, y0, y1 int) {
			for yy := y0; yy <= y1; yy++ {
				px, py := xcol+dx, yy+dy
				if px >= 0 && px < side && py >= 0 && py < side {
					x[py*side+px] += 1
				}
			}
		}
		switch seg {
		case 0: // A
			hline(2, 4, 9)
		case 1: // B
			vline(9, 2, 6)
		case 2: // C
			vline(9, 7, 11)
		case 3: // D
			hline(11, 4, 9)
		case 4: // E
			vline(4, 7, 11)
		case 5: // F
			vline(4, 2, 6)
		case 6: // G
			hline(7, 4, 9)
		}
	}
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(nc)
		x := make([]float64, side*side)
		dx, dy := r.Intn(3)-1, r.Intn(3)-1
		for s := 0; s < 7; s++ {
			if segs[c]>>uint(s)&1 == 1 {
				drawSeg(x, s, dx, dy)
			}
		}
		for j := range x {
			if x[j] > 1 {
				x[j] = 1
			}
			x[j] += 0.18 * r.NormFloat64()
		}
		X[i], Y[i] = x, c
	}
	split(r, X, Y, 0.25, d)
	return d
}

// genPage stands in for UCI page-blocks: 10 tabular layout features, 5
// block classes with skewed priors. Class-conditional Gaussians with a few
// overlapping pairs keep accuracies in the low-to-mid 90s across methods.
func genPage(r *rng.Rand) *Dataset {
	const nf, nc, n = 10, 5, 1100
	d := &Dataset{Kind: Tabular, Features: nf, Classes: nc, UseID: true}
	centers := make([][]float64, nc)
	for c := range centers {
		ctr := make([]float64, nf)
		for j := range ctr {
			ctr[j] = r.Float64()
		}
		centers[c] = ctr
	}
	// Skewed priors like real page-blocks (text blocks dominate).
	priors := []float64{0.55, 0.2, 0.1, 0.08, 0.07}
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		c := 0
		for acc := 0.0; c < nc-1; c++ {
			acc += priors[c]
			if u < acc {
				break
			}
		}
		x := make([]float64, nf)
		for j := range x {
			x[j] = centers[c][j] + 0.13*r.NormFloat64()
		}
		X[i], Y[i] = x, c
	}
	split(r, X, Y, 0.3, d)
	return d
}

// genPAMAP2 stands in for PAMAP2 physical-activity recognition from
// body-worn motion sensors: three 32-sample channels per window, each a
// class-specific periodic pattern plus posture offset. Per-channel DC
// offsets give linear methods partial traction (RP ≈ 83% in Table 1);
// local windows alone confuse activities that share limb frequencies
// (ngram ≈ 61%); positional encodings resolve them (~94%).
func genPAMAP2(r *rng.Rand) *Dataset {
	const chans, chanLen, nc, n = 3, 32, 8, 1600
	length := chans * chanLen
	d := &Dataset{Kind: TimeSeries, Features: length, Classes: nc, UseID: true}
	type chanSpec struct{ freq, amp, offset, phaseJit float64 }
	spec := make([][]chanSpec, nc)
	// A small shared pool of limb frequencies creates cross-class window
	// aliasing for position-free encodings.
	freqs := []float64{1.1, 1.7, 2.3, 2.9}
	for c := range spec {
		spec[c] = make([]chanSpec, chans)
		for ch := range spec[c] {
			spec[c][ch] = chanSpec{
				freq:     freqs[r.Intn(len(freqs))],
				amp:      0.25 + 0.5*r.Float64(),
				offset:   0.6 * (r.Float64() - 0.5),
				phaseJit: 1,
			}
		}
	}
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(nc)
		x := make([]float64, length)
		for ch := 0; ch < chans; ch++ {
			s := spec[c][ch]
			phase := r.Float64() * 2 * math.Pi * s.phaseJit
			for j := 0; j < chanLen; j++ {
				x[ch*chanLen+j] = s.offset + s.amp*math.Sin(phase+s.freq*float64(j)) +
					0.1*r.NormFloat64()
			}
		}
		X[i], Y[i] = x, c
	}
	split(r, X, Y, 0.3, d)
	return d
}

// genUCIHAR stands in for UCI HAR smartphone activity recognition, whose
// public form is a vector of hand-crafted statistics. The synthetic version
// is a 128-feature tabular task: class centroids over correlated feature
// groups, where group correlations make short windows ambiguous (ngram ≈
// 65% in Table 1) but global patterns cleanly separable (~94%).
func genUCIHAR(r *rng.Rand) *Dataset {
	const nf, nc, n = 128, 6, 1200
	d := &Dataset{Kind: Tabular, Features: nf, Classes: nc, UseID: true}
	// Feature groups of 8 share a latent factor; class controls the factor
	// means. A small pool of factor levels is reused across classes so
	// individual windows alias between classes.
	const groups = nf / 8
	levels := []float64{-0.8, -0.3, 0.3, 0.8}
	classFactor := make([][]float64, nc)
	for c := range classFactor {
		f := make([]float64, groups)
		for g := range f {
			f[g] = levels[r.Intn(len(levels))]
		}
		classFactor[c] = f
	}
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(nc)
		x := make([]float64, nf)
		for g := 0; g < groups; g++ {
			latent := classFactor[c][g] + 0.2*r.NormFloat64()
			for j := 0; j < 8; j++ {
				x[g*8+j] = latent + 0.25*r.NormFloat64()
			}
		}
		X[i], Y[i] = x, c
	}
	split(r, X, Y, 0.3, d)
	return d
}
