package dataset

import (
	"strings"
	"testing"
)

const csvSample = `0,1.0,2.0,3.0
1,4.0,5.0,6.0
0,1.1,2.1,3.1
1,4.1,5.1,6.1
0,0.9,1.9,2.9
1,3.9,4.9,5.9
`

func TestReadCSV(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(csvSample), CSVOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Features != 3 || ds.Classes != 2 {
		t.Fatalf("shape: %d features, %d classes", ds.Features, ds.Classes)
	}
	if ds.TrainLen()+ds.TestLen() != 6 {
		t.Fatalf("split sizes %d+%d", ds.TrainLen(), ds.TestLen())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Lo >= ds.Hi {
		t.Fatalf("bad range [%v,%v]", ds.Lo, ds.Hi)
	}
}

func TestReadCSVHeaderAndLabelColumn(t *testing.T) {
	in := "a,b,label\n1.0,2.0,0\n3.0,4.0,1\n1.1,2.1,0\n3.1,4.1,1\n"
	ds, err := ReadCSV(strings.NewReader(in), CSVOptions{HasHeader: true, LabelColumn: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Features != 2 || ds.Classes != 2 {
		t.Fatalf("shape: %d features, %d classes", ds.Features, ds.Classes)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad label":       "x,1.0\n0,2.0\n1,3.0\n",
		"negative label":  "-1,1.0\n0,2.0\n1,3.0\n",
		"bad float":       "0,abc\n1,2.0\n0,3.0\n",
		"ragged rows":     "0,1.0,2.0\n1,3.0\n0,1.0,2.0\n",
		"single class":    "0,1.0\n0,2.0\n0,3.0\n",
		"too few samples": "0,1.0\n",
		"label col range": "0\n1\n",
	}
	for name, in := range cases {
		opt := CSVOptions{Seed: 1}
		if name == "label col range" {
			opt.LabelColumn = 5
		}
		if _, err := ReadCSV(strings.NewReader(in), opt); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCSVDeterministicSplit(t *testing.T) {
	a, err := ReadCSV(strings.NewReader(csvSample), CSVOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadCSV(strings.NewReader(csvSample), CSVOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TrainY {
		if a.TrainY[i] != b.TrainY[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestLoadCSVFileMissing(t *testing.T) {
	if _, err := LoadCSVFile("/nonexistent.csv", CSVOptions{}); err == nil {
		t.Fatal("missing file accepted")
	}
}
