// Package dataset provides deterministic synthetic versions of the eleven
// classification benchmarks and the clustering benchmarks evaluated in the
// GENERIC paper (DAC'22).
//
// The real datasets (UCI Cardiotocography, splice-junction DNA, skull-EEG
// seizure, EMG gestures, face detection, ISOLET, language identification,
// MNIST, page blocks, PAMAP2, UCI HAR, FCPS, Iris) are replaced by
// generators that reproduce the *structural property* each benchmark
// stresses, because Table 1's ordering of encodings is driven entirely by
// which structure an encoding can capture:
//
//   - global positional structure (images, voice, tabular) — favors
//     positional encodings (level-id, permutation, RP), defeats ngram;
//   - local motifs at unpredictable positions (EEG seizure bursts) —
//     favors window encodings (ngram, GENERIC), defeats global ones;
//   - sequence statistics (language identification) — favors ngram and
//     GENERIC, defeats everything positional;
//   - zero-mean amplitude structure (EMG/EEG oscillations) — defeats
//     linear random projection, which only sees first-order statistics.
//
// All generators take an explicit seed and are reproducible bit-for-bit.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"github.com/edge-hdc/generic/internal/rng"
)

// Kind describes the structural family of a benchmark, which downstream
// code uses to pick encoder configuration (e.g. whether the GENERIC encoding
// binds window ids).
type Kind int

const (
	// Tabular feature vectors without meaningful adjacency.
	Tabular Kind = iota
	// TimeSeries signals where both local motifs and global position matter.
	TimeSeries
	// Motif signals classified by a local pattern at an unpredictable
	// position (global position is uninformative).
	Motif
	// Sequence data classified by sub-sequence statistics (n-grams).
	Sequence
	// Image data (flattened), strongly positional.
	Image
)

func (k Kind) String() string {
	switch k {
	case Tabular:
		return "tabular"
	case TimeSeries:
		return "time-series"
	case Motif:
		return "motif"
	case Sequence:
		return "sequence"
	case Image:
		return "image"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dataset is a labelled classification benchmark split into train and test.
// Feature values are float64; Lo/Hi give the global quantization range used
// by level-hypervector encoders (computed from the training split).
type Dataset struct {
	Name     string
	Kind     Kind
	Features int
	Classes  int

	TrainX [][]float64
	TrainY []int
	TestX  [][]float64
	TestY  []int

	Lo, Hi float64

	// UseID reports whether the GENERIC encoding should bind per-window id
	// hypervectors for this benchmark. The paper sets id = 0 for
	// applications where global window order is uninformative (§3.1).
	UseID bool
}

// names lists the classification benchmarks in the paper's Table 1 order.
var names = []string{
	"CARDIO", "DNA", "EEG", "EMG", "FACE", "ISOLET",
	"LANG", "MNIST", "PAGE", "PAMAP2", "UCIHAR",
}

// Names returns the classification benchmark names in Table 1 order.
func Names() []string {
	out := make([]string, len(names))
	copy(out, names)
	return out
}

// Load generates the named classification benchmark deterministically from
// seed. It returns an error for unknown names.
func Load(name string, seed uint64) (*Dataset, error) {
	r := rng.New(seed ^ hashName(name))
	var ds *Dataset
	switch name {
	case "CARDIO":
		ds = genCardio(r)
	case "DNA":
		ds = genDNA(r)
	case "EEG":
		ds = genEEG(r)
	case "EMG":
		ds = genEMG(r)
	case "FACE":
		ds = genFace(r)
	case "ISOLET":
		ds = genIsolet(r)
	case "LANG":
		ds = genLang(r)
	case "MNIST":
		ds = genMNIST(r)
	case "PAGE":
		ds = genPage(r)
	case "PAMAP2":
		ds = genPAMAP2(r)
	case "UCIHAR":
		ds = genUCIHAR(r)
	default:
		return nil, fmt.Errorf("dataset: unknown benchmark %q (known: %v)", name, names)
	}
	ds.Name = name
	ds.computeRange()
	return ds, nil
}

// MustLoad is Load that panics on error, for tests and examples.
func MustLoad(name string, seed uint64) *Dataset {
	ds, err := Load(name, seed)
	if err != nil {
		panic(err)
	}
	return ds
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// computeRange sets Lo/Hi from the 0.5 and 99.5 percentiles of the training
// values, so a handful of outliers cannot squash the quantization ladder.
func (d *Dataset) computeRange() {
	var all []float64
	for _, x := range d.TrainX {
		all = append(all, x...)
	}
	if len(all) == 0 {
		d.Lo, d.Hi = 0, 1
		return
	}
	sort.Float64s(all)
	lo := all[len(all)/200]
	hi := all[len(all)-1-len(all)/200]
	if hi <= lo {
		hi = lo + 1
	}
	d.Lo, d.Hi = lo, hi
}

// TrainLen and TestLen report split sizes.
func (d *Dataset) TrainLen() int { return len(d.TrainX) }
func (d *Dataset) TestLen() int  { return len(d.TestX) }

// Validate checks internal consistency; generators are unit-tested with it.
func (d *Dataset) Validate() error {
	if len(d.TrainX) != len(d.TrainY) || len(d.TestX) != len(d.TestY) {
		return fmt.Errorf("dataset %s: X/Y length mismatch", d.Name)
	}
	if len(d.TrainX) == 0 || len(d.TestX) == 0 {
		return fmt.Errorf("dataset %s: empty split", d.Name)
	}
	seen := make([]bool, d.Classes)
	check := func(X [][]float64, Y []int) error {
		for i, x := range X {
			if len(x) != d.Features {
				return fmt.Errorf("dataset %s: sample %d has %d features, want %d", d.Name, i, len(x), d.Features)
			}
			if Y[i] < 0 || Y[i] >= d.Classes {
				return fmt.Errorf("dataset %s: label %d out of range [0,%d)", d.Name, Y[i], d.Classes)
			}
			seen[Y[i]] = true
		}
		return nil
	}
	if err := check(d.TrainX, d.TrainY); err != nil {
		return err
	}
	if err := check(d.TestX, d.TestY); err != nil {
		return err
	}
	for c, ok := range seen {
		if !ok {
			return fmt.Errorf("dataset %s: class %d absent", d.Name, c)
		}
	}
	if d.Hi <= d.Lo {
		return fmt.Errorf("dataset %s: bad range [%v,%v]", d.Name, d.Lo, d.Hi)
	}
	return nil
}

// split shuffles (X, Y) and splits off the last testFrac as the test set.
func split(r *rng.Rand, X [][]float64, Y []int, testFrac float64, d *Dataset) {
	r.Shuffle(len(X), func(i, j int) {
		X[i], X[j] = X[j], X[i]
		Y[i], Y[j] = Y[j], Y[i]
	})
	nTest := int(float64(len(X)) * testFrac)
	if nTest < 1 {
		nTest = 1
	}
	cut := len(X) - nTest
	d.TrainX, d.TrainY = X[:cut], Y[:cut]
	d.TestX, d.TestY = X[cut:], Y[cut:]
}

// NormalizeStats holds per-feature affine normalization parameters computed
// on a training split, for the classical-ML baselines.
type NormalizeStats struct {
	Mean, Scale []float64
}

// FitNormalize computes per-feature mean and inverse standard deviation.
func FitNormalize(X [][]float64) *NormalizeStats {
	if len(X) == 0 {
		return &NormalizeStats{}
	}
	nf := len(X[0])
	mean := make([]float64, nf)
	for _, x := range X {
		for j, v := range x {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(X))
	}
	variance := make([]float64, nf)
	for _, x := range X {
		for j, v := range x {
			dv := v - mean[j]
			variance[j] += dv * dv
		}
	}
	scale := make([]float64, nf)
	for j := range scale {
		v := variance[j] / float64(len(X))
		if v < 1e-12 {
			scale[j] = 1
		} else {
			scale[j] = 1 / math.Sqrt(v)
		}
	}
	return &NormalizeStats{Mean: mean, Scale: scale}
}

// Apply standardizes X in place using the fitted statistics.
func (s *NormalizeStats) Apply(X [][]float64) {
	if len(s.Mean) == 0 {
		return
	}
	for _, x := range X {
		for j := range x {
			x[j] = (x[j] - s.Mean[j]) * s.Scale[j]
		}
	}
}

// Normalized returns standardized deep copies of the train and test inputs.
func (d *Dataset) Normalized() (trainX, testX [][]float64) {
	trainX = deepCopy(d.TrainX)
	testX = deepCopy(d.TestX)
	st := FitNormalize(trainX)
	st.Apply(trainX)
	st.Apply(testX)
	return trainX, testX
}

func deepCopy(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, x := range X {
		out[i] = append([]float64(nil), x...)
	}
	return out
}
