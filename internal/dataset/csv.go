package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/edge-hdc/generic/internal/rng"
)

// maxCSVLabel bounds class labels in CSV input; labels are dense class
// indices, so anything near this bound indicates a malformed file.
const maxCSVLabel = 1 << 20

// CSVOptions controls parsing of labelled CSV data (the format
// cmd/generic-datagen emits: label in the first column, features after).
type CSVOptions struct {
	// LabelColumn is the index of the integer class label (default 0).
	LabelColumn int
	// HasHeader skips the first row.
	HasHeader bool
	// TestFraction is split off (after shuffling with Seed) as the test
	// set; 0 defaults to 0.3.
	TestFraction float64
	// Seed drives the shuffle.
	Seed uint64
	// Name labels the resulting dataset (default "csv").
	Name string
}

// ReadCSV parses labelled samples from r into a Dataset, inferring the
// class count from the labels (which must be integers in [0, k) for some
// k) and the quantization range from the training split.
func ReadCSV(r io.Reader, opt CSVOptions) (*Dataset, error) {
	if opt.TestFraction <= 0 || opt.TestFraction >= 1 {
		opt.TestFraction = 0.3
	}
	if opt.Name == "" {
		opt.Name = "csv"
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	var X [][]float64
	var Y []int
	features := -1
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", row, err)
		}
		row++
		if opt.HasHeader && row == 1 {
			continue
		}
		if opt.LabelColumn >= len(rec) {
			return nil, fmt.Errorf("dataset: csv row %d has %d columns, label column is %d", row, len(rec), opt.LabelColumn)
		}
		label, err := strconv.Atoi(rec[opt.LabelColumn])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: label %q: %w", row, rec[opt.LabelColumn], err)
		}
		// Labels must be dense class indices; an absurd value would later
		// drive an absurd class-table allocation.
		if label < 0 || label > maxCSVLabel {
			return nil, fmt.Errorf("dataset: csv row %d: label %d out of [0,%d]", row, label, maxCSVLabel)
		}
		x := make([]float64, 0, len(rec)-1)
		for i, cell := range rec {
			if i == opt.LabelColumn {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv row %d col %d: %w", row, i, err)
			}
			x = append(x, v)
		}
		if features < 0 {
			features = len(x)
		} else if len(x) != features {
			return nil, fmt.Errorf("dataset: csv row %d has %d features, want %d", row, len(x), features)
		}
		X = append(X, x)
		Y = append(Y, label)
	}
	if len(X) < 2 {
		return nil, fmt.Errorf("dataset: csv has %d samples, need ≥ 2", len(X))
	}
	classes := 0
	for _, y := range Y {
		if y+1 > classes {
			classes = y + 1
		}
	}
	if classes < 2 {
		return nil, fmt.Errorf("dataset: csv has a single class")
	}
	if classes > len(X) {
		return nil, fmt.Errorf("dataset: csv labels imply %d classes for %d samples (labels must be dense class indices)", classes, len(X))
	}
	d := &Dataset{
		Name: opt.Name, Kind: Tabular, Features: features, Classes: classes,
		UseID: true,
	}
	split(rng.New(opt.Seed), X, Y, opt.TestFraction, d)
	d.computeRange()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// LoadCSVFile is ReadCSV over a file path.
func LoadCSVFile(path string, opt CSVOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opt.Name == "" {
		opt.Name = path
	}
	return ReadCSV(f, opt)
}
