package faults

import (
	"errors"
	"testing"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// harness bundles one trained encoder/model pair plus the inputs it was
// trained on, so tests can compare predictions before and after faults.
type harness struct {
	enc   encoding.Encoder
	model *classifier.Model
	X     [][]float64
	Y     []int
}

// newHarness builds a deterministic two-class problem (pulse in the first
// vs second half of the window) and trains a small model on it. Identical
// calls produce bit-identical harnesses.
func newHarness(t *testing.T, kind encoding.Kind, useID bool) *harness {
	t.Helper()
	var X [][]float64
	var Y []int
	for i := 0; i < 80; i++ {
		x := make([]float64, 16)
		c := i % 2
		for j := 0; j < 4; j++ {
			x[c*8+j] = 0.9
		}
		x[(i*5)%16] += 0.05
		X = append(X, x)
		Y = append(Y, c)
	}
	enc, err := encoding.New(kind, encoding.Config{
		D: 512, Features: 16, Bins: 16, Lo: 0, Hi: 1, N: 3, UseID: useID, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	encoded := make([]hdc.Vec, len(X))
	for i, x := range X {
		encoded[i] = make(hdc.Vec, enc.D())
		enc.Encode(x, encoded[i])
	}
	m, _ := classifier.TrainEncoded(encoded, Y, 2, classifier.Options{Epochs: 3, Seed: 9})
	return &harness{enc: enc, model: m, X: X, Y: Y}
}

// predictions re-encodes every sample through the harness's (possibly
// faulted) encoder and classifies it.
func (h *harness) predictions() []int {
	out := make([]int, len(h.X))
	hv := make(hdc.Vec, h.enc.D())
	for i, x := range h.X {
		h.enc.Encode(x, hv)
		out[i], _ = h.model.Predict(hv)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func modelsEqual(a, b *classifier.Model) bool {
	if a.D() != b.D() || a.Classes() != b.Classes() {
		return false
	}
	for c := 0; c < a.Classes(); c++ {
		av, bv := a.Class(c), b.Class(c)
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
		if a.Norm2(c) != b.Norm2(c) {
			return false
		}
	}
	return true
}

func TestParseRoundTrips(t *testing.T) {
	for _, s := range Sites() {
		got, err := ParseSite(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSite(%q) = %v, %v", s.String(), got, err)
		}
	}
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseSite("bogus"); err == nil {
		t.Error("ParseSite accepted bogus name")
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus name")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Site: Site(99), Kind: Uniform, Rate: 0.1},
		{Site: SiteClass, Kind: Kind(99), Rate: 0.1},
		{Site: SiteClass, Kind: Uniform, Rate: -0.1},
		{Site: SiteClass, Kind: Uniform, Rate: 1.5},
		{Site: SiteClass, Kind: BankFail, Lane: Lanes},
		{Site: SiteClass, Kind: BankFail, Lane: -1},
		{Site: SiteClass, Kind: Burst, Rate: 0.1, Burst: -4},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", s)
		}
	}
	good := Spec{Site: SiteLevel, Kind: Burst, Rate: 0.5, Burst: 16, Seed: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected %+v: %v", good, err)
	}
}

// The acceptance criterion: the same seed and spec corrupt the same state
// bit-identically, at every persistent fault site and for every fault model.
func TestInjectionDeterministicEverySite(t *testing.T) {
	specs := []Spec{
		{Site: SiteClass, Kind: Uniform, Rate: 0.01, Seed: 101},
		{Site: SiteClass, Kind: StuckAt0, Rate: 0.02, Seed: 102},
		{Site: SiteClass, Kind: StuckAt1, Rate: 0.02, Seed: 103},
		{Site: SiteClass, Kind: Burst, Rate: 0.3, Burst: 12, Seed: 104},
		{Site: SiteClass, Kind: BankFail, Lane: 5, Seed: 105},
		{Site: SiteLevel, Kind: Uniform, Rate: 0.01, Seed: 106},
		{Site: SiteLevel, Kind: Burst, Rate: 0.5, Seed: 107},
		{Site: SiteID, Kind: Uniform, Rate: 0.05, Seed: 108},
		{Site: SiteNorm, Kind: Uniform, Rate: 0.05, Seed: 109},
	}
	for _, spec := range specs {
		t.Run(spec.String(), func(t *testing.T) {
			a := newHarness(t, encoding.Generic, true)
			b := newHarness(t, encoding.Generic, true)
			ca := NewController(a.model, a.enc)
			cb := NewController(b.model, b.enc)
			na, err := ca.Inject(spec)
			if err != nil {
				t.Fatal(err)
			}
			nb, err := cb.Inject(spec)
			if err != nil {
				t.Fatal(err)
			}
			if na != nb {
				t.Fatalf("injected bit counts differ: %d vs %d", na, nb)
			}
			if !modelsEqual(a.model, b.model) {
				t.Fatal("models diverged under identical specs")
			}
			if !equalInts(a.predictions(), b.predictions()) {
				t.Fatal("predictions diverged under identical specs")
			}
			// A different seed must realize a different fault pattern.
			// Predictions can coincide (HDC is robust — that is the point),
			// so compare the corrupted state itself: model bits for
			// class/norm sites, the encoded hypervector for level/id sites.
			c := newHarness(t, encoding.Generic, true)
			cc := NewController(c.model, c.enc)
			other := spec
			other.Seed ^= 0xdeadbeef
			if _, err := cc.Inject(other); err != nil {
				t.Fatal(err)
			}
			if spec.Kind == StuckAt0 || spec.Kind == StuckAt1 {
				return // sparse stuck-at defect maps can coincide
			}
			same := modelsEqual(a.model, c.model)
			if same && (spec.Site == SiteLevel || spec.Site == SiteID) {
				ha := make(hdc.Vec, a.enc.D())
				hc := make(hdc.Vec, c.enc.D())
				a.enc.Encode(a.X[0], ha)
				c.enc.Encode(c.X[0], hc)
				same = true
				for i := range ha {
					if ha[i] != hc[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Error("different seeds produced identical corruption")
			}
		})
	}
}

// Level and id memories are pseudorandom-from-seed: after arbitrary
// corruption, Scrub's regeneration must restore bit-identical predictions.
func TestScrubRestoresLevelAndID(t *testing.T) {
	for _, site := range []Site{SiteLevel, SiteID} {
		t.Run(site.String(), func(t *testing.T) {
			h := newHarness(t, encoding.Generic, true)
			want := h.predictions()
			ctl := NewController(h.model, h.enc)
			n, err := ctl.Inject(Spec{Site: site, Kind: Uniform, Rate: 0.2, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("injection changed no bits")
			}
			rep := ctl.Scrub()
			if !rep.EncoderRegenerated {
				t.Error("scrub did not regenerate the encoder")
			}
			if got := h.predictions(); !equalInts(got, want) {
				t.Error("predictions differ after scrub; regeneration is not bit-exact")
			}
			// Encoded vectors must match a pristine encoder exactly.
			fresh, err := encoding.New(h.enc.Kind(), h.enc.Config())
			if err != nil {
				t.Fatal(err)
			}
			a := make(hdc.Vec, h.enc.D())
			b := make(hdc.Vec, h.enc.D())
			h.enc.Encode(h.X[0], a)
			fresh.Encode(h.X[0], b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("regenerated encoder differs from fresh at dim %d", i)
				}
			}
		})
	}
}

// A dead class-memory bank is detected by the CRC guard and masked out of
// the dot product, lowering EffectiveDims by one lane's worth.
func TestScrubMasksDeadBank(t *testing.T) {
	h := newHarness(t, encoding.Generic, true)
	ctl := NewController(h.model, h.enc)
	const lane = 3
	if _, err := ctl.Inject(Spec{Site: SiteClass, Kind: BankFail, Lane: lane, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	rep := ctl.Scrub()
	if rep.LanesMasked != 1 {
		t.Fatalf("LanesMasked = %d, want 1 (report: %v)", rep.LanesMasked, rep)
	}
	hl := ctl.Health()
	if len(hl.MaskedLanes) != 1 || hl.MaskedLanes[0] != lane {
		t.Fatalf("MaskedLanes = %v, want [%d]", hl.MaskedLanes, lane)
	}
	d := h.model.D()
	if want := d / Lanes * (Lanes - 1); hl.EffectiveDims != want {
		t.Errorf("EffectiveDims = %d, want %d", hl.EffectiveDims, want)
	}
	for c := 0; c < h.model.Classes(); c++ {
		cv := h.model.Class(c)
		for i := lane; i < d; i += Lanes {
			if cv[i] != 0 {
				t.Fatalf("class %d dim %d not masked", c, i)
			}
		}
	}
	if n := ctl.MaskedLaneCount(); n != 1 {
		t.Errorf("MaskedLaneCount = %d, want 1", n)
	}
	// A second scrub must not re-check or re-mask the dead lane.
	rep2 := ctl.Scrub()
	if rep2.LanesMasked != 0 || rep2.BadRows != 0 {
		t.Errorf("second scrub found new damage: %v", rep2)
	}
}

// An isolated corrupt (class, lane) column — not a whole dead bank — is
// unrecoverable under a detection-only code and must be quarantined.
func TestScrubQuarantinesIsolatedColumn(t *testing.T) {
	h := newHarness(t, encoding.Generic, true)
	ctl := NewController(h.model, h.enc)
	// Arm the guard without changing anything (rate 0), then corrupt a
	// single column directly through the memory adapter.
	if _, err := ctl.Inject(Spec{Site: SiteClass, Kind: Uniform, Rate: 0, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	mem := ClassMem(h.model)
	const lane = 6
	mem.SetBit(0, lane, 0, 1-mem.Bit(0, lane, 0))
	rep := ctl.Scrub()
	if rep.BadRows != 1 || rep.QuarantinedRows != 1 || rep.LanesMasked != 0 {
		t.Fatalf("report = %+v, want 1 bad, 1 quarantined, 0 masked", rep)
	}
	cv := h.model.Class(0)
	for i := lane; i < h.model.D(); i += Lanes {
		if cv[i] != 0 {
			t.Fatalf("quarantined column dim %d not zeroed", i)
		}
	}
	// Other classes' columns in the same lane survive untouched.
	if hl := ctl.Health(); len(hl.MaskedLanes) != 0 {
		t.Errorf("isolated column masked a lane: %v", hl.MaskedLanes)
	}
}

// Norm corruption leaves a stored norm that disagrees with the class
// vector; Scrub's recompute pass repairs it.
func TestScrubRepairsNorms(t *testing.T) {
	h := newHarness(t, encoding.Generic, true)
	want := make([]int64, h.model.Classes())
	for c := range want {
		want[c] = h.model.Norm2(c)
	}
	ctl := NewController(h.model, h.enc)
	if _, err := ctl.Inject(Spec{Site: SiteNorm, Kind: Uniform, Rate: 0.2, Seed: 77}); err != nil {
		t.Fatal(err)
	}
	changed := false
	for c := range want {
		if h.model.Norm2(c) != want[c] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("norm injection changed nothing")
	}
	ctl.Scrub()
	for c := range want {
		if got := h.model.Norm2(c); got != want[c] {
			t.Errorf("class %d norm2 = %d after scrub, want %d", c, got, want[c])
		}
	}
}

func TestTransientSitesRejected(t *testing.T) {
	h := newHarness(t, encoding.Generic, true)
	ctl := NewController(h.model, h.enc)
	for _, site := range []Site{SiteInput, SiteDatapath} {
		if _, err := ctl.Inject(Spec{Site: site, Kind: Uniform, Rate: 0.1}); !errors.Is(err, ErrTransientSite) {
			t.Errorf("%v: err = %v, want ErrTransientSite", site, err)
		}
	}
}

func TestIDSiteWithoutIDMemory(t *testing.T) {
	h := newHarness(t, encoding.Permute, false)
	ctl := NewController(h.model, h.enc)
	if _, err := ctl.Inject(Spec{Site: SiteID, Kind: Uniform, Rate: 0.1}); !errors.Is(err, ErrNoIDMemory) {
		t.Errorf("err = %v, want ErrNoIDMemory", err)
	}
	// The level memory is still injectable.
	if _, err := ctl.Inject(Spec{Site: SiteLevel, Kind: Uniform, Rate: 0.05, Seed: 2}); err != nil {
		t.Errorf("level injection on permute encoder: %v", err)
	}
}

func TestHealthTracksHistory(t *testing.T) {
	h := newHarness(t, encoding.Generic, true)
	ctl := NewController(h.model, h.enc)
	if got := ctl.Health(); got.GuardActive || len(got.Faults) != 0 {
		t.Fatalf("fresh controller health = %+v", got)
	}
	spec := Spec{Site: SiteClass, Kind: Uniform, Rate: 0.01, Seed: 5}
	n, err := ctl.Inject(spec)
	if err != nil {
		t.Fatal(err)
	}
	hl := ctl.Health()
	if !hl.GuardActive {
		t.Error("guard not active after class injection")
	}
	if hl.InjectedBits != n {
		t.Errorf("InjectedBits = %d, want %d", hl.InjectedBits, n)
	}
	if len(hl.Faults) != 1 || hl.Faults[0] != spec.String() {
		t.Errorf("Faults = %v, want [%q]", hl.Faults, spec.String())
	}
	if hl.String() == "" {
		t.Error("Health.String empty")
	}
}

func TestCorruptFeaturesDeterministic(t *testing.T) {
	x := []float64{0, 0.25, 0.5, 0.75, 1, 1.5, -0.5, 0.333}
	spec := Spec{Site: SiteInput, Kind: Uniform, Rate: 0.1, Seed: 11}
	inj, err := spec.Injector()
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, len(x))
	b := make([]float64, len(x))
	na := CorruptFeatures(a, x, 0, 1, inj, rng.New(spec.Seed))
	nb := CorruptFeatures(b, x, 0, 1, inj, rng.New(spec.Seed))
	if na != nb {
		t.Fatalf("changed-bit counts differ: %d vs %d", na, nb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %d differs: %g vs %g", i, a[i], b[i])
		}
	}
	// Rate 0 still round-trips through 8-bit quantization: values clamp to
	// [lo, hi] and snap to the 256-code grid.
	zero, _ := Spec{Site: SiteInput, Kind: Uniform, Rate: 0, Seed: 1}.Injector()
	CorruptFeatures(a, x, 0, 1, zero, rng.New(1))
	for i, v := range a {
		if v < 0 || v > 1 {
			t.Fatalf("feature %d = %g outside [0,1] after quantization", i, v)
		}
		code := v * 255
		if diff := code - float64(int(code+0.5)); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("feature %d = %g not on the 8-bit grid", i, v)
		}
	}
}

func TestStuckAtInjectors(t *testing.T) {
	h := newHarness(t, encoding.Generic, true)
	ctl := NewController(h.model, h.enc)
	// Stuck-at-0 with rate 1 zeroes the entire class memory.
	if _, err := ctl.Inject(Spec{Site: SiteClass, Kind: StuckAt0, Rate: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < h.model.Classes(); c++ {
		for i, v := range h.model.Class(c) {
			if v != 0 {
				t.Fatalf("class %d dim %d = %d after stuck-at-0 rate 1", c, i, v)
			}
		}
		if h.model.Norm2(c) != 0 {
			t.Fatalf("class %d norm2 = %d after zeroing", c, h.model.Norm2(c))
		}
	}
}

func TestBinaryClassMemGeometry(t *testing.T) {
	h := newHarness(t, encoding.Generic, true)
	bm := classifier.Binarize(h.model)
	mem := BinaryClassMem(bm)
	if mem.Rows() != bm.Classes() || mem.Cells() != bm.D() || mem.CellBits() != 1 {
		t.Fatalf("geometry %dx%dx%d, want %dx%dx1", mem.Rows(), mem.Cells(), mem.CellBits(), bm.Classes(), bm.D())
	}
	// Bit/SetBit address the packed class vectors directly.
	for _, probe := range []struct{ row, cell int }{{0, 0}, {1, 63}, {0, 64}, {1, bm.D() - 1}} {
		want := bm.Class(probe.row).Bit(probe.cell)
		if got := mem.Bit(probe.row, probe.cell, 0); got != want {
			t.Fatalf("Bit(%d,%d) = %d, class bit = %d", probe.row, probe.cell, got, want)
		}
		mem.SetBit(probe.row, probe.cell, 0, 1-want)
		if bm.Class(probe.row).Bit(probe.cell) != 1-want {
			t.Fatalf("SetBit(%d,%d) not visible in the packed class", probe.row, probe.cell)
		}
		mem.SetBit(probe.row, probe.cell, 0, want)
	}
}

func TestBinaryClassMemInjection(t *testing.T) {
	h := newHarness(t, encoding.Generic, true)
	bm := classifier.Binarize(h.model)
	orig := bm.Clone()
	spec := Spec{Site: SiteClass, Kind: Uniform, Rate: 0.05, Seed: 77}
	inj, err := spec.Injector()
	if err != nil {
		t.Fatal(err)
	}
	n := inj.Apply(BinaryClassMem(bm), rng.New(spec.Seed))
	total := bm.Classes() * bm.D()
	if n == 0 || n > total/5 {
		t.Fatalf("injected %d of %d bits at rate 0.05", n, total)
	}
	// The flip count must equal the Hamming distance to the pristine model —
	// every injected bit landed in the packed storage, none elsewhere.
	diff := 0
	for c := 0; c < bm.Classes(); c++ {
		diff += bm.Class(c).Hamming(orig.Class(c))
	}
	if diff != n {
		t.Fatalf("injector reported %d flips, packed storage differs in %d bits", n, diff)
	}
	// Same spec, same seed: bit-identical corruption (determinism contract).
	bm2 := classifier.Binarize(h.model)
	inj2, _ := spec.Injector()
	if n2 := inj2.Apply(BinaryClassMem(bm2), rng.New(spec.Seed)); n2 != n {
		t.Fatalf("replay injected %d bits, first run %d", n2, n)
	}
	for c := 0; c < bm.Classes(); c++ {
		if !bm.Class(c).Equal(bm2.Class(c)) {
			t.Fatalf("replayed corruption differs in class %d", c)
		}
	}
}
