package faults

import (
	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/rng"
)

// Mem is the bit-addressable view of one accelerator memory: Rows()
// addressable rows of Cells() cells, each CellBits() bits wide. Injectors
// visit bits in (row, cell, bit) order; adapters translate bit positions
// into the software representation of the memory.
type Mem interface {
	Rows() int
	Cells() int
	CellBits() int
	// Bit returns bit b of cell (row, cell) as 0 or 1.
	Bit(row, cell, b int) int
	// SetBit stores v (0 or 1) into bit b of cell (row, cell).
	SetBit(row, cell, b, v int)
}

// --- level memory / id seed register ---------------------------------------

// bitRowsMem views a slice of bit-vectors as rows of 1-bit cells — the level
// memory (64 rows × D bits) or the id seed register (1 row × D bits).
type bitRowsMem struct{ rows []*hdc.BitVec }

// BitRowsMem wraps live bit-vector rows for injection. Mutations are
// in place; callers owning derived material must rebuild it afterwards.
func BitRowsMem(rows []*hdc.BitVec) Mem { return bitRowsMem{rows: rows} }

func (m bitRowsMem) Rows() int     { return len(m.rows) }
func (m bitRowsMem) Cells() int    { return m.rows[0].D() }
func (m bitRowsMem) CellBits() int { return 1 }

func (m bitRowsMem) Bit(row, cell, _ int) int { return m.rows[row].Bit(cell) }

func (m bitRowsMem) SetBit(row, cell, _, v int) { m.rows[row].SetBit(cell, v) }

// --- class memory -----------------------------------------------------------

// classMem views the model's class vectors as the accelerator's striped
// class memories: one row per class, D cells of BW bits each, cell i living
// in bank i mod Lanes. Elements are bw-bit two's-complement words
// (sign-magnitude ±1 at bw=1, matching Model.InjectBitErrors). The caller
// must refresh norms after injection.
type classMem struct {
	m    *classifier.Model
	bw   int
	mask uint32
	sign uint32
}

// ClassMem wraps a live model for class-memory injection.
func ClassMem(m *classifier.Model) Mem {
	bw := m.BW()
	return classMem{
		m:    m,
		bw:   bw,
		mask: uint32(1)<<uint(bw) - 1,
		sign: uint32(1) << uint(bw-1),
	}
}

func (c classMem) Rows() int     { return c.m.Classes() }
func (c classMem) Cells() int    { return c.m.D() }
func (c classMem) CellBits() int { return c.bw }

func (c classMem) Bit(row, cell, b int) int {
	v := c.m.Class(row)[cell]
	if c.bw == 1 {
		if v < 0 {
			return 1
		}
		return 0
	}
	return int(uint32(v) >> uint(b) & 1)
}

func (c classMem) SetBit(row, cell, b, bit int) {
	cv := c.m.Class(row)
	if c.bw == 1 {
		// Bipolar storage: the single bit is the sign.
		if bit == 1 {
			cv[cell] = -1
		} else {
			cv[cell] = 1
		}
		return
	}
	u := uint32(cv[cell]) & c.mask
	if bit == 1 {
		u |= 1 << uint(b)
	} else {
		u &^= 1 << uint(b)
	}
	if u&c.sign != 0 { // sign-extend back to int32
		u |= ^c.mask
	}
	cv[cell] = int32(u)
}

// --- packed binary class memory ---------------------------------------------

// binaryClassMem views a binary model's packed class vectors as the
// accelerator's bw=1 class memory: one row per class, D cells of one bit
// each. Bits are flipped directly in the packed words — the stored
// representation under test — so a flip changes the Hamming geometry with no
// norm memory to go stale (bipolar norms are constants).
type binaryClassMem struct{ b *classifier.BinaryModel }

// BinaryClassMem wraps a live binary model for packed class-memory
// injection. Mutations are in place on the packed words.
func BinaryClassMem(b *classifier.BinaryModel) Mem { return binaryClassMem{b: b} }

func (m binaryClassMem) Rows() int     { return m.b.Classes() }
func (m binaryClassMem) Cells() int    { return m.b.D() }
func (m binaryClassMem) CellBits() int { return 1 }

func (m binaryClassMem) Bit(row, cell, _ int) int { return m.b.Class(row).Bit(cell) }

func (m binaryClassMem) SetBit(row, cell, _, v int) { m.b.Class(row).SetBit(cell, v) }

// --- norm2 memory -----------------------------------------------------------

// normMem views the per-class squared norms as 64-bit memory words. Norm
// corruption is NOT followed by a recompute — the whole point is a stored
// norm that disagrees with the class vector until a scrub repairs it.
type normMem struct{ m *classifier.Model }

// NormMem wraps a live model's norm2 memory for injection.
func NormMem(m *classifier.Model) Mem { return normMem{m: m} }

func (n normMem) Rows() int     { return n.m.Classes() }
func (n normMem) Cells() int    { return 1 }
func (n normMem) CellBits() int { return 64 }

func (n normMem) Bit(row, _, b int) int { return int(n.m.Norm2Word(row) >> uint(b) & 1) }

func (n normMem) SetBit(row, _, b, v int) {
	w := n.m.Norm2Word(row)
	if v == 1 {
		w |= 1 << uint(b)
	} else {
		w &^= 1 << uint(b)
	}
	n.m.SetNorm2Word(row, w)
}

// --- input feature memory ---------------------------------------------------

// byteMem views a byte slice as one row of 8-bit cells — the accelerator's
// 1024×8-bit input memory holding one quantized sample.
type byteMem struct{ b []byte }

// ByteMem wraps a byte buffer (e.g. a quantized feature row) for injection.
func ByteMem(b []byte) Mem { return byteMem{b: b} }

func (m byteMem) Rows() int     { return 1 }
func (m byteMem) Cells() int    { return len(m.b) }
func (m byteMem) CellBits() int { return 8 }

func (m byteMem) Bit(_, cell, b int) int { return int(m.b[cell] >> uint(b) & 1) }

func (m byteMem) SetBit(_, cell, b, v int) {
	if v == 1 {
		m.b[cell] |= 1 << uint(b)
	} else {
		m.b[cell] &^= 1 << uint(b)
	}
}

// inputCodeMax is the largest 8-bit feature code.
const inputCodeMax = 255

// CorruptFeatures models an input-memory fault on one sample: features are
// quantized to the accelerator's 8-bit codes over [lo, hi] (values outside
// clamp), the injector corrupts the code bytes, and the codes are
// dequantized into dst. It returns the number of bits changed. dst and x
// must have the same length; dst is fully overwritten, so even uncorrupted
// features round-trip through 8-bit quantization exactly as the hardware's
// input memory would store them.
func CorruptFeatures(dst, x []float64, lo, hi float64, inj Injector, r *rng.Rand) int {
	if len(dst) != len(x) {
		panic("faults: CorruptFeatures dst/x length mismatch")
	}
	if hi <= lo {
		hi = lo + 1
	}
	codes := make([]byte, len(x))
	scale := float64(inputCodeMax) / (hi - lo)
	for i, v := range x {
		c := int((v-lo)*scale + 0.5)
		if c < 0 {
			c = 0
		} else if c > inputCodeMax {
			c = inputCodeMax
		}
		codes[i] = byte(c)
	}
	changed := inj.Apply(ByteMem(codes), r)
	for i, c := range codes {
		dst[i] = lo + float64(c)/float64(inputCodeMax)*(hi-lo)
	}
	return changed
}
