// Package faults is the unified fault-injection and resilience layer for
// every memory of the GENERIC accelerator (paper Fig. 4): level memory, id
// seed register, class memories, norm2 memory, and — through the sim — the
// input memory and the score datapath.
//
// The package operationalizes the paper's robustness premise (§4.3.4):
// level/id material is pseudorandom-from-seed and therefore perfectly
// repairable by regeneration, which is why only the class memories need
// active protection (here: per-(class,lane) CRC32 with scrub-time
// quarantine) and why class memory is the one the paper voltage-over-scales
// into non-zero bit-error rates.
//
// Every fault process is a deterministic Injector driven by internal/rng:
// the same Spec (including its Seed) applied to the same memory state yields
// a bit-identical corrupted state, so resilience sweeps are reproducible
// like everything else in the repo.
package faults

import (
	"errors"
	"fmt"
	"strings"

	"github.com/edge-hdc/generic/internal/rng"
)

// Lanes is the accelerator's class-memory striping factor: dimension i lives
// in class memory i mod Lanes. It must equal sim.M (= 16); the sim's tests
// assert the two constants agree (faults cannot import sim — the sim imports
// faults).
const Lanes = 16

// Site identifies which Fig. 4 memory a fault targets.
type Site int

const (
	// SiteClass targets the striped class memories (the VOS-scaled ones).
	SiteClass Site = iota
	// SiteLevel targets the 64-row level memory.
	SiteLevel
	// SiteID targets the id seed register.
	SiteID
	// SiteNorm targets the norm2 (score) memory words.
	SiteNorm
	// SiteInput targets the 1024×8-bit input feature memory. Input faults
	// are transient (overwritten by the next sample load), so they are
	// injected per-encode by the accelerator sim, not by the Controller.
	SiteInput
	// SiteDatapath targets the adder tree of the scoring datapath: transient
	// single-bit flips in dot-product accumulation, injected per-inference
	// by the accelerator sim.
	SiteDatapath
)

var siteNames = map[Site]string{
	SiteClass: "class", SiteLevel: "level", SiteID: "id",
	SiteNorm: "norm", SiteInput: "input", SiteDatapath: "datapath",
}

func (s Site) String() string {
	if n, ok := siteNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Site(%d)", int(s))
}

// Sites lists every injectable site in display order.
func Sites() []Site {
	return []Site{SiteClass, SiteLevel, SiteID, SiteNorm, SiteInput, SiteDatapath}
}

// ParseSite parses a site name as accepted by the -fault-site flag.
func ParseSite(s string) (Site, error) {
	for _, site := range Sites() {
		if siteNames[site] == strings.ToLower(strings.TrimSpace(s)) {
			return site, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown fault site %q (want class, level, id, norm, input, or datapath)", s)
}

// Kind selects a fault model.
type Kind int

const (
	// Uniform flips each stored bit independently with probability Rate —
	// the voltage-over-scaling error model of Fig. 6.
	Uniform Kind = iota
	// StuckAt0 forces each bit to 0 with probability Rate (a stuck-at-0
	// cell defect map drawn once per injection).
	StuckAt0
	// StuckAt1 forces each bit to 1 with probability Rate.
	StuckAt1
	// Burst corrupts whole spans: each row is hit with probability Rate,
	// and a hit flips Burst consecutive bits starting at a random offset —
	// the word-line/row-failure model.
	Burst
	// BankFail randomizes every bit of the cells belonging to one striped
	// bank (cell index ≡ Lane mod Lanes) — a dead class memory returning
	// garbage.
	BankFail
)

var kindNames = map[Kind]string{
	Uniform: "uniform", StuckAt0: "stuck0", StuckAt1: "stuck1",
	Burst: "burst", BankFail: "bank",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists every fault model in display order.
func Kinds() []Kind { return []Kind{Uniform, StuckAt0, StuckAt1, Burst, BankFail} }

// ParseKind parses a fault-model name as accepted by the -fault-model flag.
func ParseKind(s string) (Kind, error) {
	for _, kind := range Kinds() {
		if kindNames[kind] == strings.ToLower(strings.TrimSpace(s)) {
			return kind, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown fault model %q (want uniform, stuck0, stuck1, burst, or bank)", s)
}

// Spec is a complete, reproducible description of one fault process.
type Spec struct {
	Site Site
	Kind Kind
	// Rate is the per-bit corruption probability (Uniform/StuckAt) or the
	// per-row hit probability (Burst). Ignored by BankFail.
	Rate float64
	// Burst is the burst length in bits (Burst only; 0 means 8).
	Burst int
	// Lane is the dead bank index in [0, Lanes) (BankFail only).
	Lane int
	// Seed drives the fault process RNG. The same Spec applied to the same
	// memory state corrupts it bit-identically.
	Seed uint64
}

// Validate checks the spec's parameters.
func (s Spec) Validate() error {
	if _, ok := siteNames[s.Site]; !ok {
		return fmt.Errorf("faults: invalid site %d", int(s.Site))
	}
	if _, ok := kindNames[s.Kind]; !ok {
		return fmt.Errorf("faults: invalid kind %d", int(s.Kind))
	}
	switch s.Kind {
	case BankFail:
		if s.Lane < 0 || s.Lane >= Lanes {
			return fmt.Errorf("faults: bank lane %d out of range [0,%d)", s.Lane, Lanes)
		}
	default:
		if s.Rate < 0 || s.Rate > 1 {
			return fmt.Errorf("faults: rate %g out of range [0,1]", s.Rate)
		}
		if s.Kind == Burst && s.Burst < 0 {
			return fmt.Errorf("faults: burst length %d must be non-negative", s.Burst)
		}
	}
	return nil
}

func (s Spec) String() string {
	switch s.Kind {
	case BankFail:
		return fmt.Sprintf("%s:%s lane=%d seed=%d", s.Site, s.Kind, s.Lane, s.Seed)
	case Burst:
		b := s.Burst
		if b == 0 {
			b = 8
		}
		return fmt.Sprintf("%s:%s rate=%g len=%d seed=%d", s.Site, s.Kind, s.Rate, b, s.Seed)
	}
	return fmt.Sprintf("%s:%s rate=%g seed=%d", s.Site, s.Kind, s.Rate, s.Seed)
}

// Injector corrupts a memory in place. Implementations must draw all
// randomness from the supplied *rng.Rand in a fixed visitation order
// (row-major, then cell, then bit) so injections are bit-reproducible.
type Injector interface {
	// Apply corrupts mem and returns the number of bits actually changed.
	Apply(mem Mem, r *rng.Rand) int
	String() string
}

// ErrTransientSite is returned when a Spec targets the input memory or the
// datapath, which hold no persistent state: those faults are injected
// per-operation by the accelerator sim, not by a Controller.
var ErrTransientSite = errors.New("faults: input/datapath faults are transient; inject them through the accelerator sim")

// Injector builds the deterministic injector for the spec's fault model.
func (s Spec) Injector() (Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case Uniform:
		return uniformInjector{rate: s.Rate}, nil
	case StuckAt0:
		return stuckAtInjector{rate: s.Rate, v: 0}, nil
	case StuckAt1:
		return stuckAtInjector{rate: s.Rate, v: 1}, nil
	case Burst:
		b := s.Burst
		if b == 0 {
			b = 8
		}
		return burstInjector{rate: s.Rate, length: b}, nil
	case BankFail:
		return bankFailInjector{lane: s.Lane}, nil
	}
	return nil, fmt.Errorf("faults: invalid kind %d", int(s.Kind))
}

// --- injector implementations ----------------------------------------------

type uniformInjector struct{ rate float64 }

func (inj uniformInjector) String() string { return fmt.Sprintf("uniform(ber=%g)", inj.rate) }

func (inj uniformInjector) Apply(mem Mem, r *rng.Rand) int {
	if inj.rate <= 0 {
		return 0
	}
	flipped := 0
	rows, cells, bits := mem.Rows(), mem.Cells(), mem.CellBits()
	for row := 0; row < rows; row++ {
		for cell := 0; cell < cells; cell++ {
			for b := 0; b < bits; b++ {
				if r.Float64() < inj.rate {
					mem.SetBit(row, cell, b, 1-mem.Bit(row, cell, b))
					flipped++
				}
			}
		}
	}
	return flipped
}

type stuckAtInjector struct {
	rate float64
	v    int
}

func (inj stuckAtInjector) String() string {
	return fmt.Sprintf("stuck-at-%d(frac=%g)", inj.v, inj.rate)
}

func (inj stuckAtInjector) Apply(mem Mem, r *rng.Rand) int {
	if inj.rate <= 0 {
		return 0
	}
	changed := 0
	rows, cells, bits := mem.Rows(), mem.Cells(), mem.CellBits()
	for row := 0; row < rows; row++ {
		for cell := 0; cell < cells; cell++ {
			for b := 0; b < bits; b++ {
				if r.Float64() < inj.rate {
					if mem.Bit(row, cell, b) != inj.v {
						mem.SetBit(row, cell, b, inj.v)
						changed++
					}
				}
			}
		}
	}
	return changed
}

type burstInjector struct {
	rate   float64
	length int
}

func (inj burstInjector) String() string {
	return fmt.Sprintf("burst(rowRate=%g, len=%d)", inj.rate, inj.length)
}

func (inj burstInjector) Apply(mem Mem, r *rng.Rand) int {
	if inj.rate <= 0 || inj.length <= 0 {
		return 0
	}
	flipped := 0
	rows, cells, bits := mem.Rows(), mem.Cells(), mem.CellBits()
	rowBits := cells * bits
	for row := 0; row < rows; row++ {
		if r.Float64() >= inj.rate {
			continue
		}
		start := r.Intn(rowBits)
		end := start + inj.length
		if end > rowBits {
			end = rowBits
		}
		for p := start; p < end; p++ {
			cell, b := p/bits, p%bits
			mem.SetBit(row, cell, b, 1-mem.Bit(row, cell, b))
			flipped++
		}
	}
	return flipped
}

type bankFailInjector struct{ lane int }

func (inj bankFailInjector) String() string { return fmt.Sprintf("bank-fail(lane=%d)", inj.lane) }

func (inj bankFailInjector) Apply(mem Mem, r *rng.Rand) int {
	changed := 0
	rows, cells, bits := mem.Rows(), mem.Cells(), mem.CellBits()
	for row := 0; row < rows; row++ {
		for cell := inj.lane; cell < cells; cell += Lanes {
			for b := 0; b < bits; b++ {
				v := 0
				if r.Bool() {
					v = 1
				}
				if mem.Bit(row, cell, b) != v {
					mem.SetBit(row, cell, b, v)
					changed++
				}
			}
		}
	}
	return changed
}
