package faults

import (
	"hash/crc32"

	"github.com/edge-hdc/generic/internal/classifier"
)

// Guard holds the detection codes protecting class memory: one CRC32 (IEEE)
// per (class, lane) over the lane's 16-bit class words, mirroring how the
// hardware would attach a checksum to each physical class-memory column.
// Level/id memories carry no guard — they are regenerable from seed, which
// is cheaper than any code (see the package comment).
type Guard struct {
	classes int
	d       int
	crcs    [][Lanes]uint32 // crcs[class][lane]
}

// NewGuard snapshots CRCs for the model's current class memory.
func NewGuard(m *classifier.Model) *Guard {
	g := &Guard{classes: m.Classes(), d: m.D(), crcs: make([][Lanes]uint32, m.Classes())}
	g.Resync(m)
	return g
}

// Clone returns an independent copy of the guard, so a cloned model can
// carry its CRC reference into a new controller without re-blessing the
// (possibly corrupted) current state.
func (g *Guard) Clone() *Guard {
	c := &Guard{classes: g.classes, d: g.d, crcs: make([][Lanes]uint32, len(g.crcs))}
	copy(c.crcs, g.crcs)
	return c
}

// Resync recomputes every CRC from the model's current state, blessing it as
// the new reference. Call after any legitimate mutation (training,
// quantization, scrub repair).
func (g *Guard) Resync(m *classifier.Model) {
	for c := 0; c < g.classes; c++ {
		for lane := 0; lane < Lanes; lane++ {
			g.crcs[c][lane] = laneCRC(m, c, lane)
		}
	}
}

// Check reports whether class c's lane column still matches its reference
// CRC.
func (g *Guard) Check(m *classifier.Model, c, lane int) bool {
	return laneCRC(m, c, lane) == g.crcs[c][lane]
}

// laneCRC computes the CRC32-IEEE over the 16-bit memory words of one
// (class, lane) column: dimensions i ≡ lane (mod Lanes), in ascending order.
// Class elements always fit 16 bits (the model saturates to bw ≤ 16), so
// truncating the int32 to its low half-word is lossless.
func laneCRC(m *classifier.Model, c, lane int) uint32 {
	cv := m.Class(c)
	var buf [2]byte
	crc := uint32(0)
	for i := lane; i < m.D(); i += Lanes {
		w := uint16(uint32(cv[i]))
		buf[0] = byte(w)
		buf[1] = byte(w >> 8)
		crc = crc32.Update(crc, crc32.IEEETable, buf[:])
	}
	return crc
}
