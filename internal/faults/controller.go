package faults

import (
	"errors"
	"fmt"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/rng"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// ErrNoIDMemory is returned when a SiteID spec targets an encoder without id
// binding (RP, permutation, plain ngram, or GENERIC with UseID=false).
var ErrNoIDMemory = errors.New("faults: encoder has no id memory")

// ErrEncoderNotFaultable is returned when a level/id spec targets an encoder
// that does not expose its hypervector material (e.g. RP, which has no
// Fig. 4 level memory).
var ErrEncoderNotFaultable = errors.New("faults: encoder does not expose fault-injectable material")

// Controller owns persistent-fault state for one model/encoder pair: it
// injects faults into the persistent memories, keeps the class-memory CRC
// guard, and runs the scrub-and-repair pass. It is not safe for concurrent
// use — like training, fault management requires exclusive access.
type Controller struct {
	model *classifier.Model
	enc   encoding.Faultable // nil when the encoder has no faultable material

	guard        *Guard
	injectedBits int
	pending      int // injections since the last scrub
	quarantined  int
	masked       [Lanes]bool
	history      []string
}

// NewController builds a controller for the model and encoder. A nil or
// non-Faultable encoder limits injection to the class and norm memories.
func NewController(m *classifier.Model, enc encoding.Encoder) *Controller {
	c := &Controller{model: m}
	if f, ok := enc.(encoding.Faultable); ok {
		c.enc = f
	}
	return c
}

// CloneFor returns a controller carrying this controller's accumulated
// fault state — guard CRCs, injected/pending counters, masked lanes,
// quarantine totals, and history — rebound to a cloned model/encoder pair.
// The serving layer's clone-modify-publish protocol uses it so that a
// published snapshot remembers which banks are dead and which corruption a
// scrub has not yet seen, rather than resetting fault bookkeeping on every
// publish.
func (c *Controller) CloneFor(m *classifier.Model, enc encoding.Encoder) *Controller {
	n := &Controller{
		model:        m,
		injectedBits: c.injectedBits,
		pending:      c.pending,
		quarantined:  c.quarantined,
		masked:       c.masked,
		history:      append([]string(nil), c.history...),
	}
	if f, ok := enc.(encoding.Faultable); ok {
		n.enc = f
	}
	if c.guard != nil {
		n.guard = c.guard.Clone()
	}
	return n
}

// InvalidateGuard drops the class-memory CRC reference. Call after any
// legitimate model mutation (training, quantization, adaptation, model
// load); the guard re-snapshots lazily before the next class injection.
func (c *Controller) InvalidateGuard() { c.guard = nil }

// ensureGuard snapshots the CRC reference if none is active. It must run
// before class-memory corruption so Scrub can tell faults from legitimate
// state.
func (c *Controller) ensureGuard() {
	if c.guard == nil {
		c.guard = NewGuard(c.model)
	}
}

// Inject applies one fault spec to its target memory and returns the number
// of bits changed. Class injection refreshes norms afterwards (the stored
// norms track the corrupted vectors, as in Fig. 6's VOS model); norm
// injection deliberately leaves the stale/corrupt value in place. Input and
// datapath specs return ErrTransientSite — route them through the sim.
func (c *Controller) Inject(spec Spec) (int, error) {
	inj, err := spec.Injector()
	if err != nil {
		return 0, err
	}
	r := rng.New(spec.Seed)
	var n int
	switch spec.Site {
	case SiteClass:
		c.ensureGuard()
		n = inj.Apply(ClassMem(c.model), r)
		c.model.RefreshAllNorms()
	case SiteLevel:
		if c.enc == nil {
			return 0, ErrEncoderNotFaultable
		}
		n = inj.Apply(BitRowsMem(c.enc.LevelRows()), r)
		c.enc.RebuildDerived()
	case SiteID:
		if c.enc == nil {
			return 0, ErrEncoderNotFaultable
		}
		seed := c.enc.IDSeed()
		if seed == nil {
			return 0, ErrNoIDMemory
		}
		n = inj.Apply(BitRowsMem([]*hdc.BitVec{seed}), r)
		c.enc.RebuildDerived()
	case SiteNorm:
		n = inj.Apply(NormMem(c.model), r)
	case SiteInput, SiteDatapath:
		return 0, ErrTransientSite
	default:
		return 0, fmt.Errorf("faults: invalid site %d", int(spec.Site))
	}
	c.injectedBits += n
	c.pending++
	c.history = append(c.history, spec.String())
	telemetry.FaultInjections.Inc()
	telemetry.FaultBits.Add(int64(n))
	telemetry.FaultPending.Set(int64(c.pending))
	return n, nil
}

// ScrubReport summarizes one scrub-and-repair pass.
type ScrubReport struct {
	// EncoderRegenerated reports whether level/id material was rebuilt from
	// the config seed (always true when the encoder is faultable — the
	// hardware regenerates unconditionally because it is cheaper than
	// checking).
	EncoderRegenerated bool
	// RowsChecked is the number of (class, lane) columns CRC-verified.
	RowsChecked int
	// BadRows is the number of columns whose CRC mismatched.
	BadRows int
	// LanesMasked is how many lanes were newly declared dead (bad in more
	// than half the classes) and masked out of the dot product.
	LanesMasked int
	// QuarantinedRows is the number of isolated bad columns zeroed out.
	QuarantinedRows int
	// ToleratedRows is the number of bad columns left in place because the
	// corruption was widespread: when more than half of all columns fail
	// their CRC, the errors are VOS-style uniform soft errors (Fig. 6), and
	// HDC's inherent tolerance beats any detection-only repair — zeroing
	// most of the memory would destroy the model to remove noise it can
	// absorb.
	ToleratedRows int
}

func (r ScrubReport) String() string {
	return fmt.Sprintf("scrub: %d/%d columns bad, %d lanes masked, %d rows quarantined, %d tolerated, encoder regenerated=%v",
		r.BadRows, r.RowsChecked, r.LanesMasked, r.QuarantinedRows, r.ToleratedRows, r.EncoderRegenerated)
}

// Scrub runs the detection-and-repair pass:
//
//  1. Level/id memories self-heal by regeneration from the stored seed —
//     after this step the encoder is bit-identical to a freshly built one.
//  2. Every unmasked (class, lane) column is CRC-checked. If more than
//     half of all columns mismatch, the corruption is widespread — the
//     VOS-style uniform soft errors of Fig. 6 — and repair stands down:
//     HDC absorbs distributed bit noise, while zeroing most of the memory
//     would not. Otherwise a lane bad in more than half the classes is a
//     dead bank: its dimensions are masked out of every class (DistHD-style
//     dimension drop) and the dot product renormalizes over the survivors;
//     remaining isolated bad columns are unrecoverable under a
//     detection-only code and are quarantined (zeroed), which the modified
//     cosine treats as "no evidence".
//  3. Norms are recomputed from the (repaired) class vectors — this also
//     repairs any norm2-memory corruption — and the guard resyncs.
//
// Without an active guard (nothing injected since the last legitimate
// mutation) the class memory is trusted as-is; step 3 still runs.
func (c *Controller) Scrub() ScrubReport {
	start := telemetry.Now()
	sp := perf.Begin("faults.scrub")
	defer sp.End()
	var rep ScrubReport
	if c.enc != nil {
		c.enc.Regenerate()
		rep.EncoderRegenerated = true
	}
	if c.guard != nil {
		nC := c.model.Classes()
		var bad [Lanes][]int // bad[lane] = classes whose column mismatched
		for lane := 0; lane < Lanes; lane++ {
			if c.masked[lane] {
				continue
			}
			for cls := 0; cls < nC; cls++ {
				rep.RowsChecked++
				if !c.guard.Check(c.model, cls, lane) {
					bad[lane] = append(bad[lane], cls)
				}
			}
		}
		for lane := 0; lane < Lanes; lane++ {
			rep.BadRows += len(bad[lane])
		}
		if rep.BadRows*2 > rep.RowsChecked {
			// Widespread soft errors: tolerate rather than destroy.
			rep.ToleratedRows = rep.BadRows
		} else {
			for lane := 0; lane < Lanes; lane++ {
				nBad := len(bad[lane])
				if nBad == 0 {
					continue
				}
				if nBad*2 > nC {
					c.model.MaskDims(lane, Lanes)
					c.masked[lane] = true
					rep.LanesMasked++
					continue
				}
				for _, cls := range bad[lane] {
					cv := c.model.Class(cls)
					for i := lane; i < c.model.D(); i += Lanes {
						cv[i] = 0
					}
					c.quarantined++
					rep.QuarantinedRows++
				}
			}
		}
	}
	c.model.RefreshAllNorms()
	if c.guard == nil {
		c.guard = NewGuard(c.model)
	} else {
		c.guard.Resync(c.model)
	}
	c.pending = 0
	telemetry.Scrubs.Inc()
	telemetry.FaultPending.Set(0)
	telemetry.FaultMaskedLanes.Set(int64(c.MaskedLaneCount()))
	telemetry.ScrubNS.ObserveSince(start)
	return rep
}

// Health is a point-in-time summary of the controller's fault state.
type Health struct {
	// GuardActive reports whether a class-memory CRC reference is live.
	GuardActive bool
	// InjectedBits counts bits changed by every persistent injection so far.
	InjectedBits int
	// QuarantinedRows counts (class, lane) columns zeroed across all scrubs.
	QuarantinedRows int
	// PendingFaults counts injections applied since the last scrub — the
	// corruption a scrub-and-repair pass has not yet seen.
	PendingFaults int
	// MaskedLanes lists dead class-memory banks in ascending order.
	MaskedLanes []int
	// EffectiveDims is the dimensionality still contributing to scores
	// after lane masking.
	EffectiveDims int
	// Faults is the history of injected specs, oldest first.
	Faults []string
}

func (h Health) String() string {
	return fmt.Sprintf("faults=%d bits=%d pending=%d maskedLanes=%v effectiveD=%d quarantined=%d guard=%v",
		len(h.Faults), h.InjectedBits, h.PendingFaults, h.MaskedLanes, h.EffectiveDims, h.QuarantinedRows, h.GuardActive)
}

// Degraded reports whether the engine is running with known or suspected
// damage: unscrubbed injections, dead (masked) banks, or quarantined columns.
// Serving layers map this to a not-ready health status.
func (h Health) Degraded() bool {
	return h.PendingFaults > 0 || len(h.MaskedLanes) > 0 || h.QuarantinedRows > 0
}

// Health reports the current fault state.
func (c *Controller) Health() Health {
	h := Health{
		GuardActive:     c.guard != nil,
		InjectedBits:    c.injectedBits,
		PendingFaults:   c.pending,
		QuarantinedRows: c.quarantined,
		Faults:          append([]string(nil), c.history...),
	}
	nMasked := 0
	for lane := 0; lane < Lanes; lane++ {
		if c.masked[lane] {
			h.MaskedLanes = append(h.MaskedLanes, lane)
			nMasked++
		}
	}
	h.EffectiveDims = c.model.D() / Lanes * (Lanes - nMasked)
	return h
}

// MaskedLaneCount returns how many class-memory banks are currently masked,
// for the power model's bank accounting.
func (c *Controller) MaskedLaneCount() int {
	n := 0
	for lane := 0; lane < Lanes; lane++ {
		if c.masked[lane] {
			n++
		}
	}
	return n
}
