// Package hdc is a golden fixture for the generic/dimguard analyzer. It
// mirrors the real internal/hdc type names (the analyzer recognizes Vec and
// BitVec declared in the package under its import path) and seeds kernels
// with and without the leading dimensionality guard.
package hdc

import "fmt"

// Vec mirrors hdc.Vec.
type Vec []int32

// BitVec mirrors hdc.BitVec.
type BitVec struct {
	d     int
	words []uint64
}

// Unguarded lacks the leading check entirely.
func Unguarded(a, b *BitVec) int { // want generic/dimguard
	return len(a.words) - len(b.words)
}

// LateGuard checks, but not as the first statement.
func LateGuard(v, o Vec) { // want generic/dimguard
	_ = len(v)
	mustSameLen("LateGuard", v, o)
}

// WrongPrefix panics without the hdc: prefix.
func WrongPrefix(a, b *BitVec) int { // want generic/dimguard
	if a.d != b.d {
		panic("dimensionality mismatch")
	}
	return a.d
}

// InlineGuard leads with an if statement that panics in shape: allowed.
func InlineGuard(a, b *BitVec) int {
	if a.d != b.d {
		panic(fmt.Sprintf("hdc: InlineGuard dimensionality mismatch: got %d, want %d", b.d, a.d))
	}
	return a.d
}

// DelegatedGuard leads with a package-local checker call: allowed.
func DelegatedGuard(v, o Vec) {
	mustSameLen("DelegatedGuard", v, o)
}

// AssignedGuard takes the checker's return values: allowed.
func AssignedGuard(v, o Vec) int32 {
	lo, hi := fusedCheck("AssignedGuard", v, o)
	return hi - lo
}

// SingleVector takes one hypervector: exempt.
func SingleVector(v Vec) int { return len(v) }

// ScalarArgs takes no hypervectors: exempt.
func ScalarArgs(a, b int) int { return a + b }

// Predicate is exempted by directive: allowed.
//
//lint:ignore generic/dimguard predicates report a mismatch as false rather than panicking
func Predicate(a, b *BitVec) bool { return a.d == b.d }

// unexported kernels are outside the exported-API contract.
func unexported(a, b *BitVec) int { return a.d + b.d }

func mustSameLen(op string, a, b Vec) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hdc: %s dimensionality mismatch: got %d, want %d", op, len(b), len(a)))
	}
}

func fusedCheck(op string, v, o Vec) (lo, hi int32) {
	mustSameLen(op, v, o)
	return -8, 7
}
