// Package hotalloc seeds every violation class the generic/hotalloc
// analyzer must flag inside //generic:hotpath functions, alongside the
// sanctioned patterns it must stay silent on.
package hotalloc

import (
	"fmt"
	"math"
	"sync/atomic"
)

// enc is a stand-in hot-path worker with reusable scratch.
type enc struct {
	scratch []float64
	count   atomic.Int64
	sink    any
}

// Encode is the canonical clean hot function: guards that end in panic,
// scratch reuse, sanctioned stdlib math, and a small inlinable helper.
//
//generic:hotpath
func (e *enc) Encode(x []float64) float64 {
	if len(x) != len(e.scratch) {
		panic(fmt.Sprintf("hotalloc: got %d features, want %d", len(x), len(e.scratch)))
	}
	var s float64
	for i, v := range x {
		e.scratch[i] = v
		s += math.Abs(v)
	}
	e.count.Add(1)
	return s + tiny(s)
}

// tiny is small enough to inline, so hot callers may use it unannotated.
func tiny(v float64) float64 { return v * 0.5 }

// big is too large to inline and not annotated; hot callers must not call it.
func big(v float64) float64 {
	for i := 0; i < 8; i++ {
		v += float64(i)
		v *= 1.0001
		v -= 0.5
		v /= 1.0002
	}
	return v
}

//generic:hotpath
func allocates(e *enc, x []float64, s string) float64 {
	defer e.count.Add(1)                                                                                             // want generic/hotalloc
	buf := make([]float64, len(x))                                                                                   // want generic/hotalloc
	extra := []int{1, 2, 3}                                                                                          // want generic/hotalloc
	m := map[string]int{}                                                                                            // want generic/hotalloc
	p := new(enc)                                                                                                    // want generic/hotalloc
	q := &enc{}                                                                                                      // want generic/hotalloc
	f := func() float64 { return 1 }                                                                                 // want generic/hotalloc
	buf = append(buf, 1)                                                                                             // want generic/hotalloc
	b := []byte(s)                                                                                                   // want generic/hotalloc
	s2 := string(b)                                                                                                  // want generic/hotalloc
	e.sink = x[0]                                                                                                    // no finding: assignment boxing is the compiler's view (-escapes)
	fmt.Fprintln(nil, s2)                                                                                            // want generic/hotalloc generic/hotalloc
	return big(x[0]) + f() + float64(m[s]) + float64(len(extra)) + float64(p.count.Load()) + float64(q.count.Load()) // want generic/hotalloc
}

//generic:hotpath
func boxing(e *enc) {
	box(e.count.Load()) // want generic/hotalloc
	box(e.sink)         // no finding: already an interface
	box(nil)            // no finding: untyped nil
}

// box is inlinable, so the call itself is fine — the boxed argument is not.
func box(v any) { _ = v }

// lazyInit shows the sanctioned amortized patterns: make behind nil/len/cap
// guards and append onto an explicitly-capacity'd local.
//
//generic:hotpath
func lazyInit(e *enc, n int) {
	if e.scratch == nil {
		e.scratch = make([]float64, n)
	}
	if cap(e.scratch) < n {
		e.scratch = make([]float64, n)
	}
	out := make([]float64, 0, n) // want generic/hotalloc
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // no finding: out has preallocated capacity
	}
	e.scratch = out
}

// suppressed proves //lint:ignore generic/hotalloc silences a finding.
//
//generic:hotpath
func suppressed(n int) []float64 {
	//lint:ignore generic/hotalloc fixture: result buffer is the function's output
	out := make([]float64, n)
	return out
}

// cold is not annotated: nothing below may be reported.
func cold(n int) []float64 {
	defer func() {}()
	return make([]float64, n)
}

// optedOut would be hot but for the coldpath directive.
//
//generic:coldpath
//generic:hotpath
func optedOut(n int) []float64 {
	return make([]float64, n)
}
