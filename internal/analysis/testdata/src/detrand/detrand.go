// Package state is a golden fixture for the generic/detrand analyzer: it
// seeds one violation of each banned construct plus the sanctioned patterns
// that must stay silent.
package state

import (
	"math/rand" // want generic/detrand
	"time"
)

// WallClockSeed leaks wall-clock time into a seed.
func WallClockSeed() int64 {
	return time.Now().UnixNano() // want generic/detrand
}

// GlobalRand uses the process-global generator.
func GlobalRand() int { return rand.Int() }

// FoldInMapOrder accumulates floats in map order.
func FoldInMapOrder(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want generic/detrand
		s += v
	}
	return s
}

// SortedKeys is the sanctioned collect-then-sort idiom: allowed.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SuppressedFold carries an ignore directive with a reason: allowed.
func SuppressedFold(m map[string]int) int {
	s := 0
	//lint:ignore generic/detrand integer addition commutes, the fold is order-independent
	for _, v := range m {
		s += v
	}
	return s
}

// SliceRange ranges a slice, not a map: allowed.
func SliceRange(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
