// Package serveapp is a golden fixture for the generic/depapi rule: calls to
// the deprecated fixed-signature batch methods of the facade Pipeline are
// flagged outside their defining package, while the canonical
// variadic-option forms and same-name methods on unrelated types stay
// silent.
package serveapp

import (
	generic "github.com/edge-hdc/generic"
)

// DeprecatedCalls exercises the deprecated Pipeline methods: flagged.
func DeprecatedCalls(p *generic.Pipeline, X [][]float64, Y []int) {
	p.PredictBatch(X, 4)         // want generic/depapi
	p.AccuracyWorkers(X, Y, 2)   // want generic/depapi
	p.PredictReduced(X[0], 1024) // want generic/depapi
	p.Quantize(1)                // want generic/depapi
}

// CanonicalCalls uses the variadic-option surface: silent.
func CanonicalCalls(p *generic.Pipeline, X [][]float64, Y []int) {
	p.PredictAll(X, generic.WithWorkers(4))
	p.Accuracy(X, Y, generic.WithWorkers(2))
	p.Predict(X[0])
	p.Binarize()
	p.Predict(X[0], generic.WithMode(generic.Binary), generic.WithDims(1024))
}

// Local is an unrelated type that happens to share the deprecated method
// names; calling them is not a finding.
type Local struct{}

func (Local) PredictBatch(X [][]float64, workers int) []int         { return nil }
func (Local) AccuracyWorkers(X [][]float64, Y []int, w int) float64 { return 0 }
func (Local) Evaluate(X [][]float64, Y []int) float64               { return 0 }
func (Local) Quantize(bw int)                                       {}
func UnrelatedReceivers(l Local, X [][]float64, Y []int) {
	l.PredictBatch(X, 4)
	l.AccuracyWorkers(X, Y, 2)
	l.Evaluate(X, Y)
	l.Quantize(1) // same name as Pipeline.Quantize, different receiver: silent
}

// Suppressed documents the sanctioned escape hatch.
func Suppressed(p *generic.Pipeline, X [][]float64) {
	//lint:ignore generic/depapi compatibility shim measured against the old surface
	p.PredictBatch(X, 4)
}
