// Package merge is a golden fixture for the generic/mergeorder analyzer:
// arrival-order merges are seeded violations, single-receive coordination
// and index-ordered merges stay silent.
package merge

// RangeMerge collects worker results in channel-arrival order: flagged.
func RangeMerge(ch chan []float64) []float64 {
	var out []float64
	for part := range ch { // want generic/mergeorder
		out = append(out, part...)
	}
	return out
}

// RecvLoopMerge is the hand-rolled arrival-order merge: flagged.
func RecvLoopMerge(ch chan float64, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += <-ch // want generic/mergeorder
	}
	return s
}

// SelectLoopMerge drains via select inside a loop: flagged.
func SelectLoopMerge(a, b chan int, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		select {
		case v := <-a: // want generic/mergeorder
			s += v
		case v := <-b: // want generic/mergeorder
			s += v
		}
	}
	return s
}

// SingleRecv waits for one completion signal outside any loop: allowed.
func SingleRecv(done chan struct{}) {
	<-done
}

// TickerLoop is the standard cancellation/ticker select: both receives
// discard their value, so nothing merges in arrival order — allowed.
func TickerLoop(done, tick chan struct{}, work func()) {
	for {
		select {
		case <-done:
			return
		case <-tick:
			work()
		}
	}
}

// SelectMixed pairs a bare coordination receive with a value-consuming
// one: only the consuming case is an arrival-order merge.
func SelectMixed(done chan struct{}, results chan int) int {
	s := 0
	for {
		select {
		case <-done:
			return s
		case v := <-results: // want generic/mergeorder
			s += v
		}
	}
}

// RecvInClosure receives once per closure invocation; the enclosing loop
// does not make it an arrival-order merge: allowed.
func RecvInClosure(chs []chan int) []func() int {
	var fns []func() int
	for _, ch := range chs {
		ch := ch
		fns = append(fns, func() int { return <-ch })
	}
	return fns
}

// IndexedMerge is the sanctioned shape: per-worker slots, combined in
// worker order after the barrier.
func IndexedMerge(partials [][]float64) []float64 {
	var out []float64
	for _, p := range partials {
		out = append(out, p...)
	}
	return out
}
