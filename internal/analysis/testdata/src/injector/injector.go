// Package inj is a golden fixture for the generic/detrand injector rule: a
// function that threads an explicit *rng.Rand (the fault-injector shape)
// must draw every random bit from it. It seeds private-stream violations
// plus the sanctioned patterns that must stay silent.
package inj

import (
	"github.com/edge-hdc/generic/internal/rng"
)

// Mem mirrors the faults.Mem memory shape.
type Mem interface {
	Rows() int
	Bit(row, cell, b int) int
	SetBit(row, cell, b, v int)
}

// ForkedStream builds a private generator instead of drawing from the
// threaded one: flagged.
func ForkedStream(mem Mem, r *rng.Rand) int {
	local := rng.New(42) // want generic/detrand
	flipped := 0
	for row := 0; row < mem.Rows(); row++ {
		if local.Float64() < 0.5 {
			mem.SetBit(row, 0, 0, 1-mem.Bit(row, 0, 0))
			flipped++
		}
	}
	return flipped
}

// ClosureFork forks inside a helper closure of an injector: still flagged.
func ClosureFork(mem Mem, r *rng.Rand) {
	flip := func(row int) {
		if rng.New(uint64(row)).Bool() { // want generic/detrand
			mem.SetBit(row, 0, 0, 1)
		}
	}
	for row := 0; row < mem.Rows(); row++ {
		flip(row)
	}
}

// ThreadedStream draws from the supplied generator: allowed.
func ThreadedStream(mem Mem, r *rng.Rand) int {
	flipped := 0
	for row := 0; row < mem.Rows(); row++ {
		if r.Float64() < 0.5 {
			mem.SetBit(row, 0, 0, 1-mem.Bit(row, 0, 0))
			flipped++
		}
	}
	return flipped
}

// Seeded is not an injector — it owns the seed and builds the stream the
// injectors consume (the Controller.Inject shape): allowed.
func Seeded(mem Mem, seed uint64) int {
	return ThreadedStream(mem, rng.New(seed))
}

// NestedInjector declares an inner injector-shaped literal: the inner
// literal's fork is attributed once, to the literal itself.
func NestedInjector(mem Mem, seed uint64) {
	apply := func(m Mem, r *rng.Rand) {
		bad := rng.New(7) // want generic/detrand
		m.SetBit(0, 0, 0, bad.Intn(2))
	}
	apply(mem, rng.New(seed))
}

// SuppressedFork documents a deliberate second stream: allowed via directive.
func SuppressedFork(mem Mem, r *rng.Rand) {
	//lint:ignore generic/detrand defect maps are drawn from a fixed side stream so the flip stream stays aligned across kinds
	defects := rng.New(1)
	mem.SetBit(0, 0, 0, defects.Intn(2))
}
