// Package hotallochdc mirrors internal/hdc's shape to exercise hotalloc's
// default-hot rule: exported kernels taking a hypervector parameter are hot
// with no annotation, constructors and receiver-only methods are not, and
// //generic:coldpath opts out. Loaded under example.com/m/internal/hdc by
// the test; the same fixture under another path must stay silent.
package hotallochdc

import "fmt"

// Vec, BitVec, and BinVec mirror the real hypervector types.
type Vec []int32

type BitVec struct {
	d     int
	words []uint64
}

type BinVec struct {
	d     int
	words []uint64
}

// NewBadVec allocates freely: New* names are exempt from the default-hot
// rule even with a vector parameter.
func NewBadVec(o Vec) Vec {
	c := make(Vec, len(o))
	copy(c, o)
	return c
}

// AddInto is default-hot (exported, Vec parameter) and clean.
func (v Vec) AddInto(o Vec) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("hdc: AddInto %d vs %d", len(v), len(o)))
	}
	for i, x := range o {
		v[i] += x
	}
}

// Scaled is default-hot and allocates its result per call.
func (v Vec) Scaled(o Vec, k int32) Vec {
	out := make(Vec, len(v)) // want generic/hotalloc
	for i, x := range o {
		out[i] = x * k
	}
	return out
}

// Grow is default-hot; the plane append is the sanctioned suppression site.
func (b *BitVec) Grow(o *BitVec) {
	if len(b.words) < len(o.words) {
		//lint:ignore generic/hotalloc fixture: amortized growth mirrors Acc.Add
		b.words = append(b.words, make([]uint64, len(o.words)-len(b.words))...)
	}
}

// Shrink is default-hot; the bare append must be flagged.
func (b *BitVec) Shrink(o *BitVec) {
	b.words = append(b.words, o.words...) // want generic/hotalloc
}

// Reverse is default-hot and clean under hotalloc; the directive below
// acknowledges a compiler-reported escape for the -escapes reconciliation
// tests.
func (v Vec) Reverse(o Vec) {
	//lint:ignore generic/escapes fixture: acknowledged compiler escape
	for i, x := range o {
		v[len(v)-1-i] = x
	}
}

// Hamming is default-hot (exported, BinVec parameter) and clean.
func (v *BinVec) Hamming(o *BinVec) int {
	if v.d != o.d {
		panic(fmt.Sprintf("hdc: Hamming %d vs %d", v.d, o.d))
	}
	h := 0
	for i, w := range v.words {
		if w != o.words[i] {
			h++
		}
	}
	return h
}

// Packed is default-hot via its BinVec parameter and allocates per call.
func Packed(o *BinVec) []uint64 {
	out := make([]uint64, len(o.words)) // want generic/hotalloc
	copy(out, o.words)
	return out
}

// Describe is receiver-only (no vector parameter): not default-hot, free to
// allocate.
func (v Vec) Describe() string {
	return fmt.Sprintf("vec[%d]", len(v))
}

// Materialize opts out of the default-hot rule explicitly.
//
//generic:coldpath
func (v Vec) Materialize(o Vec) Vec {
	out := make(Vec, len(o))
	copy(out, o)
	return out
}
