// Package expt is a golden fixture for the generic/depapi rule on the
// internal classifier surface: Evaluate and EvaluateBatch are deprecated in
// favor of classifier.Accuracy.
package expt

import (
	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/hdc"
)

// DeprecatedCalls uses both deprecated forms: flagged.
func DeprecatedCalls(m *classifier.Model, enc []hdc.Vec, labels []int) (float64, float64) {
	a := classifier.Evaluate(m, enc, labels)         // want generic/depapi
	b := classifier.EvaluateBatch(m, enc, labels, 4) // want generic/depapi
	return a, b
}

// CanonicalCalls uses the replacement surface: silent.
func CanonicalCalls(m *classifier.Model, enc []hdc.Vec, labels []int) float64 {
	_ = classifier.EvaluateDims(m, enc, labels, 128, true)
	return classifier.Accuracy(m, enc, labels, 4)
}
