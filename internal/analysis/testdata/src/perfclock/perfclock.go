// Package perfclock is a golden fixture for the detrand sanctioned-clock
// skip list: observability code (loaded under example.com/m/internal/perf)
// may read the wall clock and summarize map-keyed results, while the same
// file loaded under a model-state path must be flagged on every marked line.
package perfclock

import "time"

// SpanStamp reads the wall clock the way a tracer's Begin/End pair does.
func SpanStamp() int64 {
	return time.Now().UnixNano() // want generic/detrand
}

// MedianByName folds per-benchmark samples in map order — harmless for a
// read-time summary, banned in model-state code.
func MedianByName(samples map[string][]float64) float64 {
	var total float64
	var n int
	for _, s := range samples { // want generic/detrand
		for _, v := range s {
			total += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
