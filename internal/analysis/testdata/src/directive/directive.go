// Package directive is a golden fixture for the suppression-directive
// parser: directives without a reason or with names outside the generic/
// namespace are themselves findings (reported as "directive" in the test
// table — want-markers cannot share a line with the directive comment).
package directive

//lint:ignore generic/detrand
var MissingReason = 1

//lint:ignore detrand the namespace prefix is missing
var MissingNamespace = 2

//lint:ignore generic/detrand,generic/dimguard both suppressed with one shared reason
var TwoNames = map[string]int{}
