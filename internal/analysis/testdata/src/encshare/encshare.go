// Package enc is a golden fixture for the generic/encshare analyzer. It
// declares a miniature encoder with the library Encode shape and seeds
// captures of it into a go statement and a parallel.For body.
package enc

import (
	"sync"

	"github.com/edge-hdc/generic/internal/parallel"
)

// Vec mirrors the hdc hypervector shape (an int32 slice).
type Vec []int32

// Encoder mirrors a library encoder: Encode writes into out using scratch.
type Encoder struct{ scratch Vec }

// Encode has the library encoder shape, so the type is encoder-ish.
func (e *Encoder) Encode(x []float64, out Vec) {}

// Iface mirrors encoding.Encoder.
type Iface interface {
	Encode(x []float64, out Vec)
}

// NewEncoder builds a fresh encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// GoCapture shares one encoder across goroutines: flagged.
func GoCapture(e *Encoder, X [][]float64, out []Vec) {
	var wg sync.WaitGroup
	for i := range X {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.Encode(X[i], out[i]) // want generic/encshare
		}(i)
	}
	wg.Wait()
}

// ForCapture fans one interface-typed encoder into parallel.For: flagged.
func ForCapture(e Iface, X [][]float64, out []Vec) {
	parallel.For(0, len(X), func(w, i int) {
		e.Encode(X[i], out[i]) // want generic/encshare
	})
}

// CloneInside builds a per-worker encoder inside the closure: allowed.
func CloneInside(X [][]float64, out []Vec) {
	parallel.For(0, len(X), func(w, i int) {
		e := NewEncoder()
		e.Encode(X[i], out[i])
	})
}

// SerialUse encodes on the calling goroutine: allowed.
func SerialUse(e *Encoder, X [][]float64, out []Vec) {
	for i := range X {
		e.Encode(X[i], out[i])
	}
}

// SuppressedCapture documents a read-only capture: allowed via directive.
func SuppressedCapture(e *Encoder, ds []Vec) {
	parallel.For(0, len(ds), func(w, i int) {
		//lint:ignore generic/encshare the closure only reads immutable config, never Encode
		_ = e
	})
}
