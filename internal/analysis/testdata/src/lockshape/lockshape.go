// Package lockshape seeds the four concurrency shapes generic/lockshape
// flags — mixed atomic/direct field access, mutex value copies, read-lock
// upgrade deadlocks, and sync.Pool use-after-Put — next to the disciplined
// forms it must accept. Loaded under example.com/m/cmd/generic-serve by the
// test; under another path the same fixture must stay silent.
package lockshape

import (
	"sync"
	"sync/atomic"
)

type server struct {
	mu      sync.RWMutex
	hits    int64 // accessed both atomically and directly: flagged
	misses  int64 // atomics only: fine
	pending int   // mutex-guarded only: fine
	pool    sync.Pool
}

func (s *server) record() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.misses, 1)
}

func (s *server) stats() (int64, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits, s.pending // want generic/lockshape
}

func (s *server) load() int64 {
	return atomic.LoadInt64(&s.misses) // fine: consistent atomic discipline
}

// reconfigure takes the write lock; calling it under RLock deadlocks.
func (s *server) reconfigure(n int) {
	s.mu.Lock()
	s.pending = n
	s.mu.Unlock()
}

func (s *server) upgradeDeadlock() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.reconfigure(1) // want generic/lockshape
}

func (s *server) directUpgrade() {
	s.mu.RLock()
	s.mu.Lock() // want generic/lockshape
	s.mu.Unlock()
	s.mu.RUnlock()
}

func (s *server) sequentialLocks(n int) {
	s.mu.RLock()
	p := s.pending
	s.mu.RUnlock()
	s.reconfigure(p + n) // fine: the read lock was released first
}

type holder struct {
	srv server
}

func copies(h *holder) server {
	s := h.srv // want generic/lockshape
	return s
}

func byValue(s server) int { // want generic/lockshape
	return s.pending
}

func byPointer(s *server) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pending
}

func rangeCopies(servers []server) int {
	n := 0
	for _, s := range servers { // want generic/lockshape
		n += s.pending
	}
	return n
}

type state struct{ n int }

func (s *server) poolReuse() int {
	st := s.pool.Get().(*state)
	n := st.n
	s.pool.Put(st)
	return n + st.n // want generic/lockshape
}

func (s *server) poolClean() int {
	st := s.pool.Get().(*state)
	n := st.n
	s.pool.Put(st)
	st = s.pool.Get().(*state) // fine: reassignment kills the taint
	defer s.pool.Put(st)
	return n + st.n
}
