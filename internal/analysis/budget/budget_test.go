package budget

import (
	"flag"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite ALLOC_BUDGET.json with the measured allocs/op")

const budgetPath = "../../../ALLOC_BUDGET.json"

// measure runs every registered op under testing.AllocsPerRun.
func measure(t *testing.T) map[string]float64 {
	t.Helper()
	measured := map[string]float64{}
	for _, op := range Ops() {
		if _, dup := measured[op.Name]; dup {
			t.Fatalf("duplicate op name %q in registry", op.Name)
		}
		measured[op.Name] = testing.AllocsPerRun(100, op.Run)
	}
	return measured
}

// TestAllocBudget is the alloc-budget gate: every registered hot op must
// measure at or under its committed budget. Run with -update to ratify
// changed numbers into ALLOC_BUDGET.json (a reviewed diff, like
// BENCH_GENERIC.json).
func TestAllocBudget(t *testing.T) {
	measured := measure(t)

	if *update {
		f := File{Schema: SchemaVersion}
		for name, got := range measured {
			f.Entries = append(f.Entries, Entry{Name: name, MaxAllocsPerOp: got})
		}
		if err := f.Write(budgetPath); err != nil {
			t.Fatal(err)
		}
		abs, _ := filepath.Abs(budgetPath)
		t.Logf("wrote %d budgets to %s", len(f.Entries), abs)
		return
	}

	f, err := ReadFile(budgetPath)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/analysis/budget -run TestAllocBudget -update)", err)
	}
	for _, v := range Check(f, measured) {
		t.Error(v)
	}
}

// TestGateCatchesInjectedAlloc proves the gate actually fires: an op that
// allocates once per call against a zero budget must come back over-budget.
func TestGateCatchesInjectedAlloc(t *testing.T) {
	var sink []byte
	leaky := Op{Name: "test/leaky", Run: func() { sink = make([]byte, 1024) }}
	_ = sink
	got := testing.AllocsPerRun(100, leaky.Run)
	if got < 1 {
		t.Fatalf("injected alloc measured %.1f allocs/op; harness cannot see allocations", got)
	}
	f := File{Schema: SchemaVersion, Entries: []Entry{{Name: "test/leaky", MaxAllocsPerOp: 0}}}
	vs := Check(f, map[string]float64{"test/leaky": got})
	if len(vs) != 1 || vs[0].Kind != "over-budget" {
		t.Fatalf("gate did not flag the injected allocation: %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "budget 0.0") {
		t.Errorf("violation detail = %q", vs[0].Detail)
	}
}

// TestCheckMissingAndStale covers the other two failure modes: a new hot op
// with no ratified budget, and a budget entry whose op was deleted.
func TestCheckMissingAndStale(t *testing.T) {
	f := File{Schema: SchemaVersion, Entries: []Entry{
		{Name: "old/gone", MaxAllocsPerOp: 2},
		{Name: "still/here", MaxAllocsPerOp: 1},
	}}
	vs := Check(f, map[string]float64{"still/here": 1, "new/unratified": 0})
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	kinds := map[string]string{}
	for _, v := range vs {
		kinds[v.Name] = v.Kind
	}
	if kinds["new/unratified"] != "missing-entry" || kinds["old/gone"] != "stale-entry" {
		t.Errorf("violation kinds = %v", kinds)
	}
}

// TestBudgetFileRoundTrip pins the on-disk schema.
func TestBudgetFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ALLOC_BUDGET.json")
	f := File{Entries: []Entry{
		{Name: "b/second", MaxAllocsPerOp: 1},
		{Name: "a/first", MaxAllocsPerOp: 0},
	}}
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || len(got.Entries) != 2 {
		t.Fatalf("round-trip = %+v", got)
	}
	if got.Entries[0].Name != "a/first" || got.Entries[1].Name != "b/second" {
		t.Errorf("entries not sorted on write: %+v", got.Entries)
	}
}
