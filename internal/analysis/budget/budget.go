// Package budget is the third leg of the performance contract (DESIGN.md
// "Performance contract"): where generic/hotalloc reasons about syntax and
// -escapes about compiler analysis, this package measures what the hot paths
// actually allocate, with testing.AllocsPerRun, and gates the result against
// the committed ALLOC_BUDGET.json at the repository root.
//
// The budget file is regenerated the same way BENCH_GENERIC.json is:
//
//	go test ./internal/analysis/budget -run TestAllocBudget -update
//
// Raising a budget is a reviewed change to a committed file, never a silent
// drift. The gate fails three ways: an op measuring above its budget, an op
// with no budget entry (new hot path, not yet ratified), and a budget entry
// with no op (stale entry for a deleted hot path).
package budget

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion identifies the ALLOC_BUDGET.json layout.
const SchemaVersion = 1

// An Entry budgets one hot operation.
type Entry struct {
	// Name is the op's registry name (see Ops), e.g. "encode/rp".
	Name string `json:"name"`
	// MaxAllocsPerOp is the ceiling on testing.AllocsPerRun's average.
	MaxAllocsPerOp float64 `json:"max_allocs_per_op"`
}

// A File is the parsed ALLOC_BUDGET.json.
type File struct {
	Schema  int     `json:"schema"`
	Entries []Entry `json:"entries"`
}

// ReadFile loads and validates a budget file.
func ReadFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("budget: parsing %s: %v", path, err)
	}
	if f.Schema != SchemaVersion {
		return File{}, fmt.Errorf("budget: %s has schema %d, this tool speaks %d — regenerate with -update", path, f.Schema, SchemaVersion)
	}
	return f, nil
}

// Write stores the budget with entries sorted by name, so regeneration
// diffs are stable.
func (f File) Write(path string) error {
	f.Schema = SchemaVersion
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Name < f.Entries[j].Name })
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Index maps entry names to their budgets.
func (f File) Index() map[string]float64 {
	idx := make(map[string]float64, len(f.Entries))
	for _, e := range f.Entries {
		idx[e.Name] = e.MaxAllocsPerOp
	}
	return idx
}

// A Violation is one way the measured tree disagrees with the budget.
type Violation struct {
	// Kind is "over-budget", "missing-entry", or "stale-entry".
	Kind string
	Name string
	// Detail is a human-readable explanation with both numbers.
	Detail string
}

func (v Violation) String() string { return fmt.Sprintf("%s %s: %s", v.Kind, v.Name, v.Detail) }

// Check compares measured allocs/op against the budget and returns every
// disagreement, sorted by op name. A clean run returns nil.
func Check(f File, measured map[string]float64) []Violation {
	budgets := f.Index()
	var out []Violation
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got := measured[name]
		max, ok := budgets[name]
		switch {
		case !ok:
			out = append(out, Violation{
				Kind: "missing-entry", Name: name,
				Detail: fmt.Sprintf("measured %.1f allocs/op but ALLOC_BUDGET.json has no entry; ratify it with -update", got),
			})
		case got > max:
			out = append(out, Violation{
				Kind: "over-budget", Name: name,
				Detail: fmt.Sprintf("measured %.1f allocs/op, budget %.1f; fix the regression or raise the budget with -update", got, max),
			})
		}
	}
	for _, e := range f.Entries {
		if _, ok := measured[e.Name]; !ok {
			out = append(out, Violation{
				Kind: "stale-entry", Name: e.Name,
				Detail: "budgeted but no registered op measures it; drop it with -update",
			})
		}
	}
	return out
}
