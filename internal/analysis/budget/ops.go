package budget

import (
	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/quality"
	"github.com/edge-hdc/generic/internal/telemetry"
)

// An Op is one hot operation under an allocation budget. Run executes
// exactly one operation; all setup lives in the closure so repeated runs
// measure the steady state, not construction.
type Op struct {
	Name string
	Run  func()
}

// opDims keeps the measurement fixtures small but structurally real: D is a
// multiple of 64 (BitVec words) and of classifier.SubNormGranularity.
const (
	opD        = 1024
	opFeatures = 16
	opClasses  = 4
)

// features returns a deterministic feature vector in [0,1); no RNG so the
// registry is replayable by construction.
func features(phase int) []float64 {
	x := make([]float64, opFeatures)
	for i := range x {
		x[i] = float64((i*7+phase*3)%11) / 11
	}
	return x
}

// Ops registers the hot paths the budget binds. Names are stable: they are
// the keys of ALLOC_BUDGET.json.
func Ops() []Op {
	cfg := encoding.Config{D: opD, Features: opFeatures, Lo: 0, Hi: 1, Seed: 42, UseID: true}

	var ops []Op
	for _, k := range []encoding.Kind{encoding.RP, encoding.LevelID, encoding.Permute, encoding.Generic} {
		enc := encoding.MustNew(k, cfg)
		x := features(int(k))
		out := hdc.NewVec(enc.D())
		name := "encode/" + map[encoding.Kind]string{
			encoding.RP: "rp", encoding.LevelID: "levelid",
			encoding.Permute: "permute", encoding.Generic: "generic",
		}[k]
		ops = append(ops, Op{Name: name, Run: func() { enc.Encode(x, out) }})
	}

	// A small trained model and a batch of encoded queries for the scoring
	// and online-learning paths.
	enc := encoding.MustNew(encoding.Generic, cfg)
	model := classifier.NewModel(opD, opClasses, 0)
	batch := make([]hdc.Vec, 8)
	for i := range batch {
		h := hdc.NewVec(opD)
		enc.Encode(features(i), h)
		batch[i] = h
		model.AddEncoded(h, i%opClasses)
	}
	model.RefreshAllNorms()
	query := batch[0]
	// Adapt must not update during measurement (an update would drift the
	// model across runs): feed it its own current prediction as the label.
	stableLabel, _ := model.Predict(query)
	// Update mutates class vectors, so it runs on its own clone — the shared
	// model stays fixed and stableLabel stays Adapt's prediction.
	updModel := model.Clone()

	ops = append(ops,
		Op{Name: "model/predict_dims", Run: func() { model.PredictDims(query, opD, true) }},
		Op{Name: "model/predict_batch_w1", Run: func() { model.PredictBatch(batch, 1) }},
		Op{Name: "model/update", Run: func() { updModel.Update(query, 0, 1) }},
		Op{Name: "model/adapt_hit", Run: func() { model.Adapt(query, stableLabel) }},
	)

	// The binary inference engine: binarized encode (fused kernel), packed
	// Hamming scoring, and the zero-alloc batch path.
	bmodel := classifier.Binarize(model)
	bbatch := make([]*hdc.BinVec, len(batch))
	for i, h := range batch {
		bv := hdc.NewBinVec(opD)
		bv.PackSigns(h)
		bbatch[i] = bv
	}
	bquery := bbatch[0]
	bout := hdc.NewBinVec(opD)
	benc, _ := encoding.AsBinary(enc)
	bx := features(0)
	bdst := make([]int, len(bbatch))
	ops = append(ops,
		Op{Name: "encode/generic_bin", Run: func() { benc.EncodeBin(bx, bout) }},
		Op{Name: "model/binary_predict", Run: func() { bmodel.Predict(bquery) }},
		Op{Name: "model/binary_predict_batch_w1", Run: func() { bmodel.PredictBatchInto(bdst, bbatch, 1) }},
	)

	// The hdc kernels under the classifier: bundling update and scoring dot.
	a, b := hdc.NewVec(opD), hdc.NewVec(opD)
	for i := range b {
		b[i] = int32(i%5) - 2
	}
	ops = append(ops,
		Op{Name: "hdc/vec_add_into", Run: func() { a.AddInto(b) }},
		Op{Name: "hdc/vec_dot", Run: func() { _ = a.Dot(b) }},
	)

	// The packed binary kernels: sign pack and Hamming distance.
	pa, pb := hdc.NewBinVec(opD), hdc.NewBinVec(opD)
	pa.PackSigns(a)
	pb.PackSigns(b)
	ops = append(ops,
		Op{Name: "hdc/binvec_pack", Run: func() { pa.PackSigns(b) }},
		Op{Name: "hdc/binvec_hamming", Run: func() { _ = pa.Hamming(pb) }},
	)

	// Telemetry and tracing fast paths: the per-sample instrumentation cost
	// every encode/predict already pays, so it must stay at zero.
	reg := telemetry.NewRegistry()
	hist := reg.Histogram("budget_test_ns")
	ctr := reg.Counter("budget_test_total")
	tracer := perf.New(16, 1)
	ops = append(ops,
		Op{Name: "telemetry/histogram_observe", Run: func() { hist.Observe(12345) }},
		Op{Name: "telemetry/counter_inc", Run: func() { ctr.Inc() }},
		Op{Name: "perf/span_disabled", Run: func() {
			sp := tracer.Begin("budget")
			sp.End()
		}},
	)

	// The model-quality observe paths ride every predict/adapt (margin
	// observe) and the monitor cadence (ring push, drift check): all three
	// stay allocation-free so observability never costs the hot path.
	obs := quality.NewObserver()
	det := quality.NewDetector(quality.BuildProfile(
		[]float64{0.1, 0.4, 0.7}, []int{0, 1, 2}, "exact"))
	det.MinSamples = 1
	var driftStats quality.Stats
	for i := 0; i < 8; i++ {
		obs.ObservePredict(i%opClasses, 0.125)
	}
	driftStats = obs.Total()
	ops = append(ops,
		Op{Name: "quality/margin_observe", Run: func() { obs.ObservePredict(1, 0.125) }},
		Op{Name: "quality/ring_push", Run: func() { obs.Rotate() }},
		Op{Name: "quality/drift_check", Run: func() { det.Check(&driftStats) }},
	)
	return ops
}
