package analysis

import (
	"go/ast"
	"go/types"
)

// DepAPI flags in-repo callers of the deprecated batch entry points that the
// variadic-option API replaced. The deprecated forms stay exported for
// downstream compatibility, but new repository code must use the canonical
// surface — one spelling per operation keeps the facade regular and lets the
// old names retire eventually. The table is hardcoded because analyzers see
// one package at a time and cannot read Deprecated: doc comments across
// package boundaries.
var DepAPI = &Analyzer{
	Name: "depapi",
	Doc:  "ban in-repo use of deprecated facade entry points (PredictBatch, AccuracyWorkers, PredictReduced, Quantize)",
	Run:  runDepAPI,
}

// deprecatedSym identifies one deprecated function or method by defining
// package name, receiver type (empty for package-level functions), and name.
type deprecatedSym struct {
	pkgName string
	recv    string
	name    string
	use     string // canonical replacement, shown in the finding
}

// classifier.Evaluate/EvaluateBatch used to be listed here; the wrappers
// were deleted outright once no in-tree callers remained.
var deprecatedSyms = []deprecatedSym{
	{"generic", "Pipeline", "PredictBatch", "PredictAll(X, WithWorkers(n))"},
	{"generic", "Pipeline", "AccuracyWorkers", "Accuracy(X, Y, WithWorkers(n))"},
	{"generic", "Pipeline", "PredictReduced", "Predict(x, WithDims(n))"},
	{"generic", "Pipeline", "Quantize", "Binarize() or TrainOptions.BW at training time"},
}

func runDepAPI(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
				// Unresolved, or a call inside the defining package — the
				// deprecated wrappers themselves are exempt.
				return true
			}
			for _, d := range deprecatedSyms {
				if fn.Name() != d.name || fn.Pkg().Name() != d.pkgName || recvTypeName(fn) != d.recv {
					continue
				}
				pass.Reportf(call.Pos(), "%s is deprecated: use %s", symString(d), d.use)
				break
			}
			return true
		})
	}
}

// recvTypeName returns the name of a method's receiver type, or "" for a
// package-level function.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

func symString(d deprecatedSym) string {
	if d.recv != "" {
		return d.recv + "." + d.name
	}
	return d.pkgName + "." + d.name
}
