package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture parses and type-checks one testdata/src package, presenting it
// under the given import path (the analyzers scope rules by path).
func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	full := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(full, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{
		Module: "example.com/m", ImportPath: importPath, Dir: full,
		Fset: fset, Files: files, Pkg: pkg, Info: info,
	}
}

// wantFindings collects the fixture's expectations: every "// want
// generic/<name> [generic/<name> ...]" comment expects those analyzers to
// fire on its line.
func wantFindings(pkg *Package) []string {
	var want []string
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Fields(strings.TrimPrefix(text, "want ")) {
					short := strings.TrimPrefix(name, "generic/")
					want = append(want, fmt.Sprintf("%s:%d %s", filepath.Base(pos.Filename), pos.Line, short))
				}
			}
		}
	}
	return want
}

func gotFindings(findings []Finding) []string {
	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer))
	}
	return got
}

// TestAnalyzersOnFixtures is the golden-fixture table: each analyzer must
// fire exactly on its seeded violations and stay silent on the sanctioned
// patterns, with suppression directives honored.
func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		name      string
		dir       string
		path      string
		analyzers []*Analyzer
		// extraWant lists expectations that cannot be expressed as want
		// comments (findings on comment-only lines, e.g. malformed
		// directives), as "file.go:line analyzer".
		extraWant []string
	}{
		{name: "detrand", dir: "detrand", path: "example.com/m/internal/state", analyzers: []*Analyzer{DetRand}},
		{name: "detrand out of scope", dir: "detrand", path: "example.com/m/simstate", analyzers: []*Analyzer{DetRand}},
		{name: "detrand skips rng", dir: "detrand", path: "example.com/m/internal/rng", analyzers: []*Analyzer{DetRand}},
		{name: "detrand skips perf", dir: "perfclock", path: "example.com/m/internal/perf", analyzers: []*Analyzer{DetRand}},
		{name: "detrand perfclock in model-state path", dir: "perfclock", path: "example.com/m/internal/state", analyzers: []*Analyzer{DetRand}},
		{name: "detrand injector", dir: "injector", path: "example.com/m/internal/faults", analyzers: []*Analyzer{DetRand}},
		{name: "detrand injector out of scope", dir: "injector", path: "example.com/m/faults", analyzers: []*Analyzer{DetRand}},
		{name: "encshare", dir: "encshare", path: "example.com/m/internal/encoding", analyzers: []*Analyzer{EncShare}},
		{name: "mergeorder", dir: "mergeorder", path: "example.com/m/internal/cluster", analyzers: []*Analyzer{MergeOrder}},
		{name: "dimguard", dir: "dimguard", path: "example.com/m/internal/hdc", analyzers: []*Analyzer{DimGuard}},
		{name: "depapi facade", dir: "depapi", path: "example.com/m/serveapp", analyzers: []*Analyzer{DepAPI}},
		{name: "dimguard out of scope", dir: "dimguard", path: "example.com/m/internal/tinyhd", analyzers: []*Analyzer{DimGuard}},
		{name: "directives", dir: "directive", path: "example.com/m/internal/directive", analyzers: nil,
			extraWant: []string{"directive.go:7 directive", "directive.go:10 directive"}},
		{name: "hotalloc annotated", dir: "hotalloc", path: "example.com/m/internal/encoding", analyzers: []*Analyzer{HotAlloc}},
		{name: "hotalloc hdc default-hot", dir: "hotallochdc", path: "example.com/m/internal/hdc", analyzers: []*Analyzer{HotAlloc}},
		{name: "hotalloc hdc default-hot out of scope", dir: "hotallochdc", path: "example.com/m/hdcmirror", analyzers: []*Analyzer{HotAlloc}},
		{name: "lockshape", dir: "lockshape", path: "example.com/m/cmd/generic-serve", analyzers: []*Analyzer{LockShape}},
		{name: "lockshape out of scope", dir: "lockshape", path: "example.com/m/serveapp", analyzers: []*Analyzer{LockShape}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.dir, tc.path)
			want := tc.extraWant
			// Out-of-scope runs reuse a fixture under a path the analyzer
			// must ignore: every want comment is expected to stay silent.
			if !strings.Contains(tc.name, "out of scope") && !strings.Contains(tc.name, "skips") {
				want = append(want, wantFindings(pkg)...)
			}
			got := gotFindings(Run([]*Package{pkg}, tc.analyzers))
			sort.Strings(want)
			sort.Strings(got)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestSuppressionRequiresExactName ensures an ignore directive for one
// analyzer does not silence another on the same line.
func TestSuppressionRequiresExactName(t *testing.T) {
	pkg := loadFixture(t, "detrand", "example.com/m/internal/state")
	got := gotFindings(Run([]*Package{pkg}, []*Analyzer{MergeOrder}))
	if len(got) != 0 {
		t.Errorf("mergeorder found %v in the detrand fixture", got)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %v, %v", all, err)
	}
	two, err := ByName("dimguard, detrand")
	if err != nil || len(two) != 2 || two[0] != DimGuard || two[1] != DetRand {
		t.Fatalf("ByName subset = %v, %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

func TestInternalPkgScoping(t *testing.T) {
	cases := []struct {
		path string
		skip []string
		want bool
	}{
		{"example.com/m/internal/hdc", nil, true},
		{"example.com/m/internal/rng", []string{"rng"}, false},
		{"example.com/m/internal/rng/sub", []string{"rng"}, false},
		{"example.com/m/pkg", nil, false},
		{"example.com/m", nil, false},
	}
	for _, tc := range cases {
		p := &Pass{Module: "example.com/m", Path: tc.path}
		if got := p.InternalPkg(tc.skip...); got != tc.want {
			t.Errorf("InternalPkg(%q, skip %v) = %v, want %v", tc.path, tc.skip, got, tc.want)
		}
	}
}

// TestLoadRepo exercises the go list -json loader against the real module.
func TestLoadRepo(t *testing.T) {
	pkgs, loadErrs, err := Load("../..", []string{"./internal/hdc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(loadErrs) != 0 {
		t.Fatalf("load errors on the real module: %v", loadErrs)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Module != "github.com/edge-hdc/generic" {
		t.Errorf("module = %q", p.Module)
	}
	if !strings.HasSuffix(p.ImportPath, "internal/hdc") || p.Pkg.Name() != "hdc" {
		t.Errorf("loaded %q (%s)", p.ImportPath, p.Pkg.Name())
	}
	if p.Pkg.Scope().Lookup("Vec") == nil {
		t.Error("type info missing hdc.Vec")
	}
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			t.Errorf("loader picked up test file %s", p.Fset.Position(f.Pos()).Filename)
		}
	}
}
