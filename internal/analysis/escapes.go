package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
)

// This file implements the optional -escapes mode: hotalloc's checks are
// syntactic heuristics, while the compiler's escape analysis is ground truth
// for what actually reaches the heap. generic-lint -escapes shells out to
// `go build -gcflags=-m=1`, parses the diagnostics, and reports any heap
// escape inside a hotpath function that hotalloc did not already flag — so
// the heuristic and compiler views reconcile instead of silently diverging.

// An EscapeDiag is one heap diagnostic from `go build -gcflags=-m=1`.
type EscapeDiag struct {
	File    string // as printed by the compiler, usually module-relative
	Line    int
	Col     int
	Message string
}

// ParseEscapes extracts heap diagnostics ("escapes to heap", "moved to
// heap") from compiler -m output, ignoring inlining chatter and the
// "# pkgpath" group headers.
func ParseEscapes(out []byte) []EscapeDiag {
	var diags []EscapeDiag
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// file.go:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		diags = append(diags, EscapeDiag{
			File: parts[0], Line: ln, Col: col,
			Message: strings.TrimSpace(parts[3]),
		})
	}
	return diags
}

// A HotRegion is the line span of one hotpath function, for matching
// compiler diagnostics against the contract's scope.
type HotRegion struct {
	File      string // as recorded in the package's FileSet
	Func      string
	StartLine int
	EndLine   int
	// Cold holds [start, end] line spans inside the function that are dead
	// on the hot path — panic-guard bodies and panic arguments, the same
	// exemption hotalloc applies. Escapes there (error-message formatting,
	// mostly) are the cold price of failing, not a hot-path cost.
	Cold [][2]int
}

// coldLine reports whether line falls in one of the region's cold spans.
func (r HotRegion) coldLine(line int) bool {
	for _, span := range r.Cold {
		if line >= span[0] && line <= span[1] {
			return true
		}
	}
	return false
}

// HotRegions returns the hotpath function spans of a loaded package, using
// the same selection rule as the hotalloc analyzer.
func HotRegions(pkg *Package) []HotRegion {
	pass := &Pass{
		Module: pkg.Module, Path: pkg.ImportPath,
		Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info,
	}
	hot, decls := hotFuncs(pass)
	var regions []HotRegion
	for obj, fd := range decls {
		if !hot[obj] {
			continue
		}
		start := pkg.Fset.Position(fd.Pos())
		end := pkg.Fset.Position(fd.End())
		region := HotRegion{
			File: start.Filename, Func: fd.Name.Name,
			StartLine: start.Line, EndLine: end.Line,
		}
		if fd.Body == nil {
			regions = append(regions, region)
			continue
		}
		for node := range coldRegions(pass, fd.Body) {
			region.Cold = append(region.Cold, [2]int{
				pkg.Fset.Position(node.Pos()).Line,
				pkg.Fset.Position(node.End()).Line,
			})
		}
		// Calls to pure guard helpers (mustSameDim and kin) are cold too:
		// the compiler inlines them, so their panic-path escapes — the
		// message and its arguments — are attributed to the call line here
		// rather than to any syntactic panic block.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil {
				return true
			}
			if gd, ok := decls[callee]; ok && pureGuard(pass, gd) {
				region.Cold = append(region.Cold, [2]int{
					pkg.Fset.Position(call.Pos()).Line,
					pkg.Fset.Position(call.End()).Line,
				})
			}
			return true
		})
		regions = append(regions, region)
	}
	return regions
}

// ReconcileEscapes cross-checks compiler escape diagnostics against the
// hotpath regions of pkgs, returning findings (analyzer "escapes") for each
// heap escape inside a hot function that existing does not already cover at
// the same file and line. Positions are rewritten to the FileSet's file
// names so suppression directives and sorting work unchanged.
func ReconcileEscapes(pkgs []*Package, diags []EscapeDiag, existing []Finding) []Finding {
	covered := map[string]bool{}
	for _, f := range existing {
		covered[fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		for _, region := range HotRegions(pkg) {
			for _, d := range diags {
				if d.Line < region.StartLine || d.Line > region.EndLine || !sameFile(d.File, region.File) {
					continue
				}
				if region.coldLine(d.Line) || coldMessage(d.Message) {
					continue
				}
				key := fmt.Sprintf("%s:%d", region.File, d.Line)
				if covered[key] {
					continue
				}
				covered[key] = true
				out = append(out, Finding{
					Analyzer: "escapes",
					Pos:      token.Position{Filename: region.File, Line: d.Line, Column: d.Col},
					Message: fmt.Sprintf("compiler escape analysis: %s inside hotpath %s, not covered by a hotalloc finding; restructure so the value stays on the stack",
						d.Message, region.Func),
				})
			}
		}
	}
	return out
}

// pureGuard reports whether fd's body consists solely of if-blocks that end
// in panic — a validation helper with no hot-path work of its own.
func pureGuard(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) == 0 {
		return false
	}
	for _, stmt := range fd.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || !blockEndsInPanic(pass, ifs.Body) {
			return false
		}
	}
	return true
}

// coldMessage reports whether a diagnostic describes panic/error-message
// material rather than hot-path data. Guard helpers (mustSameDim and kin)
// are inlined into their hot callers, so their panic-argument escapes are
// attributed to the call line — outside any syntactic cold span. The
// escaping values are recognizable instead: quoted string constants and
// fmt.Sprintf calls, which hot-path data (slices, structs, boxed scalars)
// never prints as.
func coldMessage(msg string) bool {
	return strings.HasPrefix(msg, `"`) || strings.Contains(msg, "fmt.Sprintf(")
}

// sameFile matches a compiler-printed path (usually relative) against a
// FileSet path (usually absolute): equal after cleaning, or one is a
// path-boundary suffix of the other.
func sameFile(a, b string) bool {
	a, b = filepath.ToSlash(filepath.Clean(a)), filepath.ToSlash(filepath.Clean(b))
	if a == b {
		return true
	}
	return strings.HasSuffix(a, "/"+b) || strings.HasSuffix(b, "/"+a)
}
