package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway Go module for loader tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadPartialFailure is the regression test for the exit-code contract's
// load half: a package that fails to type-check becomes a LoadError while
// its siblings still load and get analyzed.
func TestLoadPartialFailure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module example.com/broken\n\ngo 1.22\n",
		"ok/ok.go":   "package ok\n\nfunc Ok() int { return 1 }\n",
		"bad/bad.go": "package bad\n\nvar X int = \"not an int\"\n",
	})
	pkgs, loadErrs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "example.com/broken/ok" {
		t.Fatalf("loaded %d packages (%v), want just example.com/broken/ok", len(pkgs), pkgs)
	}
	if len(loadErrs) != 1 {
		t.Fatalf("got %d load errors, want 1: %v", len(loadErrs), loadErrs)
	}
	le := loadErrs[0]
	if le.ImportPath != "example.com/broken/bad" || !strings.Contains(le.Error(), "example.com/broken/bad") {
		t.Errorf("load error = %v", le)
	}
	if ExitCode(len(pkgs), 0, len(loadErrs)) != 2 {
		t.Error("partial load must exit 2 even with zero findings")
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		pkgs, findings, loadErrs, want int
	}{
		{pkgs: 3, want: 0},
		{pkgs: 3, findings: 2, want: 1},
		{pkgs: 3, loadErrs: 1, want: 2},
		{pkgs: 3, findings: 2, loadErrs: 1, want: 2}, // load failures outrank findings
		{pkgs: 0, want: 2},                           // nothing loaded is a failed run, not a clean one
	}
	for _, tc := range cases {
		if got := ExitCode(tc.pkgs, tc.findings, tc.loadErrs); got != tc.want {
			t.Errorf("ExitCode(%d, %d, %d) = %d, want %d", tc.pkgs, tc.findings, tc.loadErrs, got, tc.want)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings encode as %q, want []", got)
	}

	buf.Reset()
	findings := []Finding{{
		Analyzer: "hotalloc",
		Pos:      token.Position{Filename: "internal/hdc/vec.go", Line: 12, Column: 7},
		Message:  "hot path allocates",
	}}
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d findings, want 1", len(decoded))
	}
	d := decoded[0]
	if d.File != "internal/hdc/vec.go" || d.Line != 12 || d.Col != 7 || d.Analyzer != "hotalloc" || d.Message != "hot path allocates" {
		t.Errorf("decoded finding = %+v", d)
	}
}
