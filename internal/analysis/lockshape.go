package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockShape enforces the concurrency-shape contract in the packages that mix
// locks, atomics, and pools on the serving path: internal/telemetry,
// internal/faults, and cmd/generic-serve. Four shapes are flagged:
//
//   - mixed discipline: a struct field updated via sync/atomic (passed as
//     &x.f to an atomic function) that is also read or written directly —
//     the direct access races with the atomic one whether or not a mutex
//     guards it, because the atomic side does not take the mutex.
//   - mutex value copies: assigning, ranging over, or passing by value any
//     type that transitively contains a sync.Mutex or sync.RWMutex.
//   - read-lock upgrade: code holding mu.RLock() that calls mu.Lock() or a
//     package-local function that takes mu.Lock() on the same mutex field —
//     sync.RWMutex is not upgradable; this deadlocks under contention.
//   - pool reuse-after-Put: statements after sync.Pool.Put(x) in the same
//     block that still read x — the pointee may already be handed to
//     another goroutine.
var LockShape = &Analyzer{
	Name: "lockshape",
	Doc:  "flag atomic/direct mixed field access, mutex copies, RLock upgrade deadlocks, and sync.Pool use-after-Put",
	Run:  runLockShape,
}

func runLockShape(pass *Pass) {
	if !lockShapeScope(pass) {
		return
	}
	checkMixedAtomic(pass)
	checkMutexCopies(pass)
	checkRLockUpgrades(pass)
	checkPoolPutReuse(pass)
}

// lockShapeScope limits the analyzer to the packages whose concurrency
// shapes it models.
func lockShapeScope(pass *Pass) bool {
	for _, s := range [...]string{"internal/telemetry", "internal/faults", "internal/serve", "internal/quality", "cmd/generic-serve"} {
		if pathHasSuffix(pass.Path, s) {
			return true
		}
	}
	return false
}

// checkMixedAtomic flags fields accessed both via sync/atomic and directly.
func checkMixedAtomic(pass *Pass) {
	atomicUse := map[types.Object]bool{}      // fields passed as &x.f to sync/atomic
	atomicSel := map[*ast.SelectorExpr]bool{} // the selector nodes inside those calls
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := arg.(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := u.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObject(pass, sel); obj != nil {
					atomicUse[obj] = true
					atomicSel[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicUse) == 0 {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSel[sel] {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj == nil || !atomicUse[obj] {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is updated via sync/atomic elsewhere but accessed directly here; mixed discipline races — use the atomic API for every access or drop the atomics", obj.Name())
			return true
		})
	}
}

// fieldObject resolves a selector to the struct field it names, or nil.
func fieldObject(pass *Pass, sel *ast.SelectorExpr) types.Object {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// checkMutexCopies flags by-value movement of mutex-containing types.
func checkMutexCopies(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldListCopies(pass, n.Recv, "receiver")
				checkFieldListCopies(pass, n.Type.Params, "parameter")
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if copiesMutexValue(pass, rhs) {
						pass.Reportf(rhs.Pos(), "copies %s by value; it contains a sync mutex, and the copy's lock state diverges from the original — use a pointer", pass.Info.TypeOf(rhs))
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if t := pass.Info.TypeOf(n.Value); t != nil && containsMutex(t) {
					pass.Reportf(n.Value.Pos(), "range copies %s elements by value; they contain a sync mutex — iterate by index or store pointers", t)
				}
			}
			return true
		})
	}
}

func checkFieldListCopies(pass *Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, ptr := t.(*types.Pointer); ptr {
			continue
		}
		if containsMutex(t) {
			pass.Reportf(field.Type.Pos(), "%s takes %s by value; it contains a sync mutex, so every call copies the lock — use a pointer", kind, t)
		}
	}
}

// copiesMutexValue reports whether evaluating rhs copies an existing
// mutex-containing value: reading a variable, field, dereference, or index.
// Construction (composite literals) and call results are the producer's
// responsibility, not a copy of live lock state.
func copiesMutexValue(pass *Pass, rhs ast.Expr) bool {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	t := pass.Info.TypeOf(rhs)
	if t == nil {
		return false
	}
	if _, ptr := t.(*types.Pointer); ptr {
		return false
	}
	return containsMutex(t)
}

// containsMutex reports whether t transitively holds a sync.Mutex or
// sync.RWMutex by value.
func containsMutex(t types.Type) bool {
	return containsMutexRec(t, map[types.Type]bool{})
}

// containsMutexRec is containsMutex with a cycle guard; the guard is per
// top-level query so one type's answer never shadows another's.
func containsMutexRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutexRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutexRec(u.Elem(), seen)
	}
	return false
}

// mutexEvent is one lock-relevant action in a function body, in source order.
type mutexEvent struct {
	pos      token.Pos
	kind     string       // "rlock", "runlock", "lock", "call"
	mutex    types.Object // for lock events: the mutex field/var
	deferred bool
	callee   *types.Func // for call events
}

// checkRLockUpgrades flags write-lock acquisition (direct or via a
// package-local callee) while a read lock on the same mutex is held.
func checkRLockUpgrades(pass *Pass) {
	// Pass 1: which package-local functions take a write lock on which mutex?
	writeLocks := map[*types.Func]map[types.Object]bool{}
	forEachFunc(pass, func(fd *ast.FuncDecl) {
		fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			return
		}
		for _, ev := range mutexEvents(pass, fd) {
			if ev.kind == "lock" && ev.mutex != nil {
				if writeLocks[fn] == nil {
					writeLocks[fn] = map[types.Object]bool{}
				}
				writeLocks[fn][ev.mutex] = true
			}
		}
	})
	// Pass 2: scan each function's read-lock regions.
	forEachFunc(pass, func(fd *ast.FuncDecl) {
		held := map[types.Object]bool{} // read locks currently held
		for _, ev := range mutexEvents(pass, fd) {
			switch ev.kind {
			case "rlock":
				if ev.mutex != nil {
					held[ev.mutex] = true
				}
			case "runlock":
				// A deferred RUnlock holds the read lock to function end.
				if ev.mutex != nil && !ev.deferred {
					delete(held, ev.mutex)
				}
			case "lock":
				if ev.mutex != nil && held[ev.mutex] {
					pass.Reportf(ev.pos, "%s takes the write lock while holding the read lock on the same mutex; sync.RWMutex cannot upgrade — this deadlocks under contention", fd.Name.Name)
				}
			case "call":
				for m := range writeLocks[ev.callee] {
					if held[m] {
						pass.Reportf(ev.pos, "%s calls %s while holding the read lock; the callee takes the write lock on the same mutex — sync.RWMutex cannot upgrade, this deadlocks", fd.Name.Name, ev.callee.Name())
					}
				}
			}
		}
	})
}

// mutexEvents extracts lock operations and package-local calls from a
// function body in source order. Control flow is approximated linearly —
// good enough for the straight-line lock regions this repository writes.
func mutexEvents(pass *Pass, fd *ast.FuncDecl) []mutexEvent {
	var evs []mutexEvent
	if fd.Body == nil {
		return nil
	}
	addCall := func(call *ast.CallExpr, deferred bool) {
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if fn.Pkg().Path() == "sync" {
			var kind string
			switch fn.Name() {
			case "RLock":
				kind = "rlock"
			case "RUnlock":
				kind = "runlock"
			case "Lock":
				kind = "lock"
			default:
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			evs = append(evs, mutexEvent{pos: call.Pos(), kind: kind, mutex: mutexObject(pass, sel.X), deferred: deferred})
			return
		}
		if fn.Pkg() == pass.Pkg {
			evs = append(evs, mutexEvent{pos: call.Pos(), kind: "call", callee: fn})
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			addCall(n.Call, true)
			return false
		case *ast.CallExpr:
			addCall(n, false)
		case *ast.FuncLit:
			return false // closures run on their own schedule
		}
		return true
	})
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// mutexObject identifies the mutex a Lock/RLock receiver names: a struct
// field (s.mu) or a plain variable.
func mutexObject(pass *Pass, x ast.Expr) types.Object {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if obj := fieldObject(pass, x); obj != nil {
			return obj
		}
		return pass.Info.ObjectOf(x.Sel)
	case *ast.Ident:
		return pass.Info.ObjectOf(x)
	}
	return nil
}

// checkPoolPutReuse flags reads of a variable after it was returned to a
// sync.Pool in the same block: the pointee may already belong to another
// goroutine. A reassignment of the variable ends the taint.
func checkPoolPutReuse(pass *Pass) {
	forEachFunc(pass, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				obj := poolPutArg(pass, stmt)
				if obj == nil {
					continue
				}
				scanUsesAfterPut(pass, block.List[i+1:], obj)
			}
			return true
		})
	})
}

// poolPutArg matches `pool.Put(x)` statements and returns x's object.
func poolPutArg(pass *Pass, stmt ast.Stmt) types.Object {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Put" {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.ObjectOf(id)
}

// scanUsesAfterPut reports uses of obj in the statements after its Put,
// stopping at a reassignment (which kills the pooled value).
func scanUsesAfterPut(pass *Pass, stmts []ast.Stmt, obj types.Object) {
	for _, stmt := range stmts {
		if as, ok := stmt.(*ast.AssignStmt); ok {
			reassigned := false
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					reassigned = true
				}
			}
			for _, rhs := range as.Rhs {
				reportUses(pass, rhs, obj)
			}
			if reassigned {
				return
			}
			continue
		}
		reportUses(pass, stmt, obj)
	}
}

func reportUses(pass *Pass, n ast.Node, obj types.Object) {
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if ok && pass.Info.Uses[id] == obj {
			pass.Reportf(id.Pos(), "%s was returned to its sync.Pool above but is still used here; another goroutine may already own the pointee — finish all reads before Put", id.Name)
		}
		return true
	})
}

// forEachFunc applies f to every function declaration with a body.
func forEachFunc(pass *Pass, f func(*ast.FuncDecl)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				f(fd)
			}
		}
	}
}
