package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Module     string // owning module path
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Module     *struct{ Path string }
}

// A LoadError records one listed package that could not be parsed or
// type-checked. Loading continues past it so the rest of the tree is still
// analyzed, but the caller must surface the failure: findings from a partial
// load are a lower bound, not a clean bill.
type LoadError struct {
	ImportPath string
	Err        error
}

func (e LoadError) Error() string {
	return fmt.Sprintf("%s: %v", e.ImportPath, e.Err)
}

// Load resolves patterns (e.g. "./...") to packages via `go list -json`,
// parses their non-test files, and type-checks them with the stdlib source
// importer. dir is the working directory for the go command and must lie
// inside the module under analysis. Test files are skipped by construction:
// the contracts bind library code, and tests routinely violate them on
// purpose to prove the guarantees hold.
//
// A package that fails to parse or type-check does not abort the load: it is
// reported in the returned LoadError slice and the remaining packages are
// still analyzed. The error return is reserved for failures of the load
// itself (go list, output decoding).
func Load(dir string, patterns []string) ([]*Package, []LoadError, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	fset := token.NewFileSet()
	// The source importer type-checks transitive imports (stdlib included)
	// from source, so no compiled export data is needed. It caches packages
	// internally; sharing one instance across the whole load keeps the cost
	// of common dependencies (fmt, sort, ...) to a single check.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	var loadErrs []LoadError
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		p, err := check(fset, imp, lp)
		if err != nil {
			loadErrs = append(loadErrs, LoadError{ImportPath: lp.ImportPath, Err: err})
			continue
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, loadErrs, nil
}

// ExitCode maps a run's outcome to generic-lint's exit-status contract:
// 2 when loading failed (including a load that produced no packages at
// all), 1 when findings were reported, 0 when the tree is clean. Load
// failures outrank findings: a partial analysis must never read as a
// merely-dirty tree.
func ExitCode(pkgs, findings, loadErrs int) int {
	switch {
	case loadErrs > 0 || pkgs == 0:
		return 2
	case findings > 0:
		return 1
	}
	return 0
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, lp listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	mod := ""
	if lp.Module != nil {
		mod = lp.Module.Path
	}
	return &Package{
		Module: mod, ImportPath: lp.ImportPath, Dir: lp.Dir,
		Fset: fset, Files: files, Pkg: pkg, Info: info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}
