package analysis

import (
	"go/ast"
	"go/types"
)

// EncShare guards the encoder-sharing contract. Encoders carry per-call
// scratch state (window buffers, bundling accumulators), so one encoder
// touched from two goroutines corrupts encodings silently — the results are
// plausible hypervectors, just wrong ones. The sanctioned fan-out vehicles
// are encoding.Pool and per-worker clones built inside the worker body.
//
// The analyzer flags any identifier of an encoder type (anything with an
// Encode([]float64, <int32-slice vector>) method, including the
// encoding.Encoder interface) that a function literal captures from an
// enclosing scope when that literal is either launched by a `go` statement
// or handed to parallel.For / ForChunks / ForErr. Encoders obtained inside
// the literal (pool lookup, clone, sync.Pool Get) are declared in the
// literal's own scope and pass.
var EncShare = &Analyzer{
	Name: "encshare",
	Doc:  "forbid capturing a shared encoder in go statements or parallel.For bodies",
	Run:  runEncShare,
}

func runEncShare(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkCallLits(pass, n.Call, "a go statement")
			case *ast.CallExpr:
				if name, ok := parallelCallee(pass.Info, n); ok {
					checkCallLits(pass, n, "parallel."+name)
				}
			}
			return true
		})
	}
}

// parallelCallee matches calls into the module's internal/parallel package.
func parallelCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "internal/parallel") {
		return "", false
	}
	switch fn.Name() {
	case "For", "ForChunks", "ForErr":
		return fn.Name(), true
	}
	return "", false
}

// checkCallLits inspects every function literal in the call — the callee of
// `go func(){...}()` as well as literal arguments — for captured encoders.
func checkCallLits(pass *Pass, call *ast.CallExpr, context string) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		checkCapturedEncoders(pass, lit, context)
	}
	for _, arg := range call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			checkCapturedEncoders(pass, lit, context)
		}
	}
}

// checkCapturedEncoders reports every encoder-typed identifier inside lit
// whose declaration lies outside the literal (a capture).
func checkCapturedEncoders(pass *Pass, lit *ast.FuncLit, context string) {
	// Field and method selections (x.enc, e.Encode) resolve their Sel ident
	// to an object declared at the type definition; only the base identifier
	// expresses a capture, so selector Sels are excluded.
	selNames := map[*ast.Ident]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			selNames[sel.Sel] = true
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || selNames[id] {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal: not a capture
		}
		if !isEncoderType(v.Type()) {
			return true
		}
		pass.Reportf(id.Pos(), "encoder %q is captured by %s: encoders carry window scratch state and are not concurrency-safe; fan out through encoding.Pool or a per-worker clone built inside the closure", id.Name, context)
		return true
	})
}

// isEncoderType reports whether t (or *t) has an Encode method with the
// library encoder shape: exactly two parameters, a []float64 input and an
// int32-slice-based hypervector output, and no results. This catches the
// encoding.Encoder interface, every concrete encoder, and aliases, without
// tying the analyzer to one package's type identity.
func isEncoderType(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Encode")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	in, ok := sig.Params().At(0).Type().Underlying().(*types.Slice)
	if !ok || !isBasic(in.Elem(), types.Float64) {
		return false
	}
	out, ok := sig.Params().At(1).Type().Underlying().(*types.Slice)
	return ok && isBasic(out.Elem(), types.Int32)
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// pathHasSuffix reports whether path equals suffix or ends with "/"+suffix.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || len(path) > len(suffix) && path[len(path)-len(suffix)-1] == '/' && path[len(path)-len(suffix):] == suffix
}
