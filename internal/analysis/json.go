package analysis

import (
	"encoding/json"
	"io"
)

// jsonFinding is the wire form of one finding for generic-lint -json: flat
// fields CI can turn into GitHub annotations without knowing the engine.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON encodes findings as a JSON array in their given (sorted) order.
// An empty run encodes as [], never null, so consumers can range without a
// nil check.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
