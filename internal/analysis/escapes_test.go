package analysis

import (
	"go/token"
	"strings"
	"testing"
)

const escapesFixtureOut = `# example.com/m/internal/hdc
testdata/src/hotallochdc/hotallochdc.go:20:6: can inline NewBadVec
testdata/src/hotallochdc/hotallochdc.go:21:11: make(Vec, len(o)) escapes to heap
testdata/src/hotallochdc/hotallochdc.go:29:22: ... argument does not escape
testdata/src/hotallochdc/hotallochdc.go:38:13: make(Vec, len(v)) escapes to heap
testdata/src/hotallochdc/hotallochdc.go:31:9: moved to heap: x
mangled line that still escapes to heap
`

func TestParseEscapes(t *testing.T) {
	diags := ParseEscapes([]byte(escapesFixtureOut))
	if len(diags) != 3 {
		t.Fatalf("parsed %d diagnostics, want 3: %+v", len(diags), diags)
	}
	want := []EscapeDiag{
		{File: "testdata/src/hotallochdc/hotallochdc.go", Line: 21, Col: 11, Message: "make(Vec, len(o)) escapes to heap"},
		{File: "testdata/src/hotallochdc/hotallochdc.go", Line: 38, Col: 13, Message: "make(Vec, len(v)) escapes to heap"},
		{File: "testdata/src/hotallochdc/hotallochdc.go", Line: 31, Col: 9, Message: "moved to heap: x"},
	}
	for i, d := range diags {
		if d != want[i] {
			t.Errorf("diag %d = %+v, want %+v", i, d, want[i])
		}
	}
}

// regionsByFunc loads the hdc mirror fixture and indexes its hot regions so
// the reconciliation tests can reference lines relative to declarations
// instead of hard-coding fixture line numbers.
func regionsByFunc(t *testing.T) (*Package, map[string]HotRegion) {
	t.Helper()
	pkg := loadFixture(t, "hotallochdc", "example.com/m/internal/hdc")
	byFunc := map[string]HotRegion{}
	for _, r := range HotRegions(pkg) {
		byFunc[r.Func] = r
	}
	return pkg, byFunc
}

func TestHotRegions(t *testing.T) {
	_, byFunc := regionsByFunc(t)
	for _, name := range []string{"AddInto", "Scaled", "Grow", "Shrink", "Reverse"} {
		r, ok := byFunc[name]
		if !ok {
			t.Errorf("hot region for %s missing", name)
			continue
		}
		if r.StartLine <= 0 || r.EndLine < r.StartLine {
			t.Errorf("%s region has bad span %d-%d", name, r.StartLine, r.EndLine)
		}
		if !strings.HasSuffix(r.File, "hotallochdc.go") {
			t.Errorf("%s region file = %q", name, r.File)
		}
	}
	// Constructors, receiver-only methods, and coldpath opt-outs must not
	// produce regions: the compiler is allowed to see escapes there.
	for _, name := range []string{"NewBadVec", "Describe", "Materialize"} {
		if _, ok := byFunc[name]; ok {
			t.Errorf("%s must not be a hot region", name)
		}
	}
}

func TestReconcileEscapes(t *testing.T) {
	pkg, byFunc := regionsByFunc(t)
	add, scaled := byFunc["AddInto"], byFunc["Scaled"]

	t.Run("escape inside hot region is reported", func(t *testing.T) {
		// EndLine-1 is the loop body's closing line: hot, outside the
		// panic-guard cold span at the top of the function.
		diags := []EscapeDiag{{File: add.File, Line: add.EndLine - 1, Col: 3, Message: "moved to heap: x"}}
		got := ReconcileEscapes([]*Package{pkg}, diags, nil)
		if len(got) != 1 {
			t.Fatalf("got %d findings, want 1: %v", len(got), got)
		}
		f := got[0]
		if f.Analyzer != "escapes" || f.Pos.Filename != add.File || f.Pos.Line != add.EndLine-1 {
			t.Errorf("finding = %+v", f)
		}
		if !strings.Contains(f.Message, "AddInto") {
			t.Errorf("message does not name the hot function: %q", f.Message)
		}
	})

	t.Run("compiler-relative path matches fileset path", func(t *testing.T) {
		diags := []EscapeDiag{{File: "/abs/checkout/" + add.File, Line: add.EndLine - 1, Message: "moved to heap: x"}}
		if got := ReconcileEscapes([]*Package{pkg}, diags, nil); len(got) != 1 {
			t.Fatalf("suffix-matched diag produced %d findings, want 1", len(got))
		}
	})

	t.Run("escape outside hot regions is ignored", func(t *testing.T) {
		// Line 1 is the package comment: never inside a function.
		diags := []EscapeDiag{
			{File: add.File, Line: 1, Message: "escapes to heap"},
			{File: "elsewhere.go", Line: add.EndLine - 1, Message: "escapes to heap"},
		}
		if got := ReconcileEscapes([]*Package{pkg}, diags, nil); len(got) != 0 {
			t.Fatalf("cold/foreign diags produced findings: %v", got)
		}
	})

	t.Run("panic-guard lines and message shapes are cold", func(t *testing.T) {
		// AddInto opens with an if-panic dimension guard: escapes attributed
		// there are the cold price of failing, not a hot-path cost.
		diags := []EscapeDiag{
			{File: add.File, Line: add.StartLine + 1, Message: "escapes to heap"},
			{File: add.File, Line: add.EndLine - 1, Message: `"hdc: boom" escapes to heap`},
			{File: add.File, Line: add.EndLine - 1, Message: "fmt.Sprintf(\"hdc: %d\", d) escapes to heap"},
		}
		if got := ReconcileEscapes([]*Package{pkg}, diags, nil); len(got) != 0 {
			t.Fatalf("cold escapes were reported: %v", got)
		}
	})

	t.Run("hotalloc finding on the same line wins", func(t *testing.T) {
		diags := []EscapeDiag{{File: scaled.File, Line: scaled.StartLine + 1, Message: "make(Vec, len(v)) escapes to heap"}}
		existing := []Finding{{
			Analyzer: "hotalloc",
			Pos:      token.Position{Filename: scaled.File, Line: scaled.StartLine + 1},
		}}
		if got := ReconcileEscapes([]*Package{pkg}, diags, existing); len(got) != 0 {
			t.Fatalf("diag already covered by hotalloc was re-reported: %v", got)
		}
	})

	t.Run("lint:ignore generic/escapes suppresses", func(t *testing.T) {
		rev := byFunc["Reverse"]
		// The fixture's directive sits on the first statement line; it covers
		// its own line and the one below.
		diags := []EscapeDiag{{File: rev.File, Line: rev.StartLine + 2, Message: "escapes to heap"}}
		got := ReconcileEscapes([]*Package{pkg}, diags, nil)
		if len(got) != 1 {
			t.Fatalf("reconcile produced %d findings, want 1 before suppression", len(got))
		}
		if got = FilterSuppressed([]*Package{pkg}, got); len(got) != 0 {
			t.Fatalf("generic/escapes directive did not suppress: %v", got)
		}
	})
}

func TestSameFile(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"a/b/c.go", "a/b/c.go", true},
		{"/abs/mod/a/b/c.go", "a/b/c.go", true},
		{"a/b/c.go", "/abs/mod/a/b/c.go", true},
		{"bb/c.go", "a/b/c.go", false},
		{"c.go", "d.go", false},
	}
	for _, tc := range cases {
		if got := sameFile(tc.a, tc.b); got != tc.want {
			t.Errorf("sameFile(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
