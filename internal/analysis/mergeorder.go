package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MergeOrder guards the reduction contract of the batch APIs: per-worker
// partial results are written into a slice indexed by worker (or chunk)
// index and combined by a plain ordered loop after the barrier. Collecting
// results from a channel as they arrive merges in scheduling order, which
// breaks bit-identity for any non-commutative fold (float accumulation,
// append, first-wins selection) — and does so only occasionally, which is
// worse.
//
// The analyzer flags, in module packages:
//
//   - ranging over a channel — the canonical arrival-order merge loop;
//   - a channel receive inside a for loop — the hand-rolled variant.
//
// A single receive outside a loop (waiting for one completion signal) is
// legitimate coordination and passes, as is a bare receive in a select
// case (`case <-done:`, `case <-ticker.C:`): the value is discarded, so
// nothing is merged — that is the standard cancellation/ticker loop.
var MergeOrder = &Analyzer{
	Name: "mergeorder",
	Doc:  "require per-worker results to merge by worker index, not channel-arrival order",
	Run:  runMergeOrder,
}

func runMergeOrder(pass *Pass) {
	for _, file := range pass.Files {
		checkMergeOrder(pass, file, 0)
	}
}

// checkMergeOrder walks n tracking the enclosing loop depth. Function
// literals and declarations reset the depth: a receive inside a closure that
// is itself inside a loop still receives once per closure call.
func checkMergeOrder(pass *Pass, n ast.Node, loopDepth int) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkMergeOrder(pass, n.Body, 0)
			return false
		case *ast.ForStmt:
			checkLoopBody(pass, n.Body, loopDepth+1)
			if n.Init != nil {
				checkMergeOrder(pass, n.Init, loopDepth)
			}
			if n.Cond != nil {
				checkMergeOrder(pass, n.Cond, loopDepth)
			}
			if n.Post != nil {
				checkMergeOrder(pass, n.Post, loopDepth)
			}
			return false
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Reportf(n.Pos(), "ranging over a channel merges worker results in arrival order, which is scheduling-dependent; store per-worker partials in a slice and combine them by worker index")
				}
			}
			checkLoopBody(pass, n.Body, loopDepth+1)
			return false
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if !isBareReceive(cc.Comm) && cc.Comm != nil {
					checkMergeOrder(pass, cc.Comm, loopDepth)
				}
				for _, stmt := range cc.Body {
					checkMergeOrder(pass, stmt, loopDepth)
				}
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && loopDepth > 0 {
				pass.Reportf(n.Pos(), "channel receive inside a loop merges worker results in arrival order, which is scheduling-dependent; store per-worker partials in a slice and combine them by worker index")
			}
		}
		return true
	})
}

// isBareReceive reports whether a select communication is a receive whose
// value is discarded (`case <-ch:`) — pure coordination, nothing to merge.
func isBareReceive(comm ast.Stmt) bool {
	es, ok := comm.(*ast.ExprStmt)
	if !ok {
		return false
	}
	u, ok := es.X.(*ast.UnaryExpr)
	return ok && u.Op == token.ARROW
}

// checkLoopBody continues the walk inside a loop body at the given depth.
func checkLoopBody(pass *Pass, body *ast.BlockStmt, depth int) {
	for _, stmt := range body.List {
		checkMergeOrder(pass, stmt, depth)
	}
}
