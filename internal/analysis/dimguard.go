package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DimGuard enforces the kernel precondition contract in internal/hdc: every
// exported function or method that operates on two or more hypervectors
// (Vec or BitVec, by value or pointer, receiver included) must begin with a
// dimensionality check that panics with the "hdc:" prefix. Vector kernels
// are plain loops over parallel slices; without the leading guard a length
// mismatch either panics with a bare index error deep in the loop or — for
// word-packed kernels — silently reads short. The guard may be direct (an if
// statement panicking with an "hdc:"-prefixed message) or delegated to a
// package-local checker (mustSameLen, fusedCheck, check*).
var DimGuard = &Analyzer{
	Name: "dimguard",
	Doc:  "require exported internal/hdc kernels on two vectors to lead with an hdc:-prefixed dimensionality check",
	Run:  runDimGuard,
}

func runDimGuard(pass *Pass) {
	if !pathHasSuffix(pass.Path, "internal/hdc") {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if countVectorParams(pass, fd) < 2 {
				continue
			}
			if len(fd.Body.List) > 0 && isDimGuardStmt(pass, fd.Body.List[0]) {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported kernel %s takes multiple hypervectors but does not begin with a dimensionality check that panics with the \"hdc:\" prefix", fd.Name.Name)
		}
	}
}

// countVectorParams counts receiver and parameter entries whose type is the
// package's Vec or BitVec (possibly behind a pointer).
func countVectorParams(pass *Pass, fd *ast.FuncDecl) int {
	n := 0
	count := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if !isVectorType(pass, pass.Info.TypeOf(field.Type)) {
				continue
			}
			// An unnamed entry (receiver or `Vec` in a signature) is one
			// vector; `a, b *BitVec` is two.
			if len(field.Names) == 0 {
				n++
			} else {
				n += len(field.Names)
			}
		}
	}
	count(fd.Recv)
	count(fd.Type.Params)
	return n
}

// isVectorType recognizes the hdc hypervector types by name within the
// analyzed package: Vec, BitVec, and BinVec, by value or pointer.
func isVectorType(pass *Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return false
	}
	name := named.Obj().Name()
	return name == "Vec" || name == "BitVec" || name == "BinVec"
}

// isDimGuardStmt reports whether stmt is an acceptable leading guard: a call
// to a package-local checker (must*/check*/...Check) — bare or as the sole
// right-hand side of an assignment — or an if statement that panics with an
// "hdc:"-prefixed message.
func isDimGuardStmt(pass *Pass, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isCheckerName(calleeName(call))
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		return ok && isCheckerName(calleeName(call))
	case *ast.IfStmt:
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "panic" {
				return true
			}
			if len(call.Args) == 1 && panicsWithHDCPrefix(call.Args[0]) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	return false
}

// isCheckerName matches the package-local guard naming convention.
func isCheckerName(name string) bool {
	return strings.HasPrefix(name, "must") || strings.HasPrefix(name, "check") || strings.Contains(name, "Check")
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// panicsWithHDCPrefix reports whether the panic argument is an "hdc:"-
// prefixed string literal, directly or as the format of a nested call
// (fmt.Sprintf and friends).
func panicsWithHDCPrefix(arg ast.Expr) bool {
	switch a := arg.(type) {
	case *ast.BasicLit:
		s, err := strconv.Unquote(a.Value)
		return err == nil && strings.HasPrefix(s, "hdc:")
	case *ast.CallExpr:
		if len(a.Args) > 0 {
			return panicsWithHDCPrefix(a.Args[0])
		}
	}
	return false
}
