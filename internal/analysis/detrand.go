package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DetRand enforces the replayability contract on model-state-affecting code:
// every package under internal/ except internal/rng (the sanctioned
// randomness source), internal/analysis (this linter), internal/telemetry
// (the observability clock — latency measurement needs the wall clock, and
// telemetry values never feed back into model state), and internal/perf
// (span tracing and benchmark statistics sit on the same side of the fence:
// they time model code but never feed it).
//
// Three constructs are banned there:
//
//   - importing math/rand or math/rand/v2 — the global generator is seeded
//     per-process and its streams are not splittable, so results silently
//     stop being a pure function of the explicit seed;
//   - calling time.Now — wall-clock values leaking into seeds, tie-breaks,
//     or recorded state make runs unreplayable;
//   - ranging over a map — Go randomizes map iteration order per run, so
//     any order-sensitive fold (float accumulation, first/best-wins
//     selection, output row order) becomes nondeterministic.
//
// Additionally, fault injectors are model-state code with a stricter rule:
// a function that threads an explicit *rng.Rand (the Injector.Apply shape)
// must draw every random bit from that generator. Calling rng.New inside
// such a function forks a private stream, so composed injections stop being
// a pure function of the caller's Spec.Seed even though each piece looks
// deterministic in isolation.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "ban math/rand, time.Now, map-range iteration, and private rng streams in model-state code under internal/",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) {
	if !pass.InternalPkg("rng", "analysis", "telemetry", "perf") {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in model-state code: draw all randomness from internal/rng with an explicit seed", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(pass.Info, n.Fun, "time", "Now") {
					pass.Reportf(n.Pos(), "time.Now in model-state code: wall-clock input makes runs unreplayable; thread an explicit seed or timestamp through the caller")
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok && !isKeyCollect(n) {
						pass.Reportf(n.Pos(), "map iteration order is randomized per run: range over a sorted or fixed key order (collect keys with `for k := range m { keys = append(keys, k) }`, sort, then iterate)")
					}
				}
			case *ast.FuncDecl:
				if n.Body != nil && takesRngRand(pass.Info, n.Type) {
					checkInjectorBody(pass, n.Body)
				}
			case *ast.FuncLit:
				if takesRngRand(pass.Info, n.Type) {
					checkInjectorBody(pass, n.Body)
				}
			}
			return true
		})
	}
}

// takesRngRand reports whether the function signature threads an explicit
// *rng.Rand parameter — the fault-injector shape (Injector.Apply and the
// helpers it fans into).
func takesRngRand(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isRngRandPtr(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isRngRandPtr matches *rng.Rand from the module's internal/rng package.
func isRngRandPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Rand" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pathHasSuffix(pkg.Path(), "internal/rng")
}

// checkInjectorBody flags rng.New calls inside a function that already
// receives a *rng.Rand. Nested function literals with their own *rng.Rand
// parameter are skipped — the outer traversal visits them as injectors in
// their own right.
func checkInjectorBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if takesRngRand(pass.Info, n.Type) {
				return false
			}
		case *ast.CallExpr:
			if isRngNew(pass.Info, n.Fun) {
				pass.Reportf(n.Pos(), "rng.New inside a fault injector: draw all randomness from the *rng.Rand parameter — a private generator forks the stream and breaks bit-reproducibility of composed injections")
			}
		}
		return true
	})
}

// isRngNew matches calls to the module rng package's constructor.
func isRngNew(info *types.Info, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "New" || fn.Pkg() == nil {
		return false
	}
	return pathHasSuffix(fn.Pkg().Path(), "internal/rng")
}

// isKeyCollect recognizes the one sanctioned map-range idiom — gathering the
// keys for sorting:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//
// The body must be exactly that single append of the range key; anything
// order-sensitive (value reads, folds, early exits) disqualifies it.
func isKeyCollect(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	arg, ok2 := call.Args[1].(*ast.Ident)
	return ok && ok2 && src.Name == dst.Name && arg.Name == key.Name
}

// isPkgFunc reports whether fun denotes the package-level function pkg.name.
func isPkgFunc(info *types.Info, fun ast.Expr, pkg, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkg
}
