package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Function-level directives recognized by the hotalloc analyzer. They live in
// the doc comment directly above the function, staticcheck-directive style:
//
//	//generic:hotpath
//	func (e *rpEncoder) Encode(x []float64, out hdc.Vec) { ... }
//
// //generic:coldpath opts an internal/hdc kernel out of the default-hot rule.
const (
	hotpathDirective  = "generic:hotpath"
	coldpathDirective = "generic:coldpath"
)

// HotAlloc enforces the hot-path performance contract: a function annotated
// //generic:hotpath (or an exported internal/hdc kernel taking a hypervector,
// hot by default) runs on the per-sample encode/predict/update path and must
// not allocate. The analyzer flags, inside such functions:
//
//   - heap-escaping composite literals (&T{...}, slice and map literals)
//   - make/new — per-call buffer allocation (a make guarded by a nil/len/cap
//     check is sanctioned lazy init)
//   - append without provably preallocated capacity
//   - defer, closures, and go statements
//   - interface boxing: concrete values passed to interface parameters or
//     converted to interface types
//   - string↔[]byte conversions, which copy
//   - calls to helpers that are neither hotpath-annotated themselves, nor
//     small enough to inline, nor in the sanctioned alloc-free call set
//     (internal/{hdc,telemetry,perf,rng,quality}, math, math/bits,
//     sync/atomic, time)
//
// Guard blocks that end in panic are dead on the hot path and are skipped, so
// the dimguard-mandated dimension checks (which format a message and panic)
// do not trip the contract. The optional generic-lint -escapes mode
// reconciles this heuristic view with the compiler's escape analysis.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation in //generic:hotpath functions and default-hot internal/hdc kernels",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	hot, decls := hotFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil && hot[obj] {
				checkHotFunc(pass, fd, hot, decls)
			}
		}
	}
}

// hotFuncs selects the package's hot functions and indexes every top-level
// declaration so hot callers can vet package-local callees.
func hotFuncs(pass *Pass) (hot map[types.Object]bool, decls map[types.Object]*ast.FuncDecl) {
	hot = map[types.Object]bool{}
	decls = map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if hasDirective(fd, coldpathDirective) {
				continue
			}
			if hasDirective(fd, hotpathDirective) || defaultHotKernel(pass, fd) {
				hot[obj] = true
			}
		}
	}
	return hot, decls
}

// hasDirective reports whether the function's doc comment carries the given
// machine directive (exact line, no leading space after //).
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//"+directive {
			return true
		}
	}
	return false
}

// defaultHotKernel implements the default-hot rule: in internal/hdc, every
// exported function taking at least one hypervector parameter (Vec, BitVec,
// or Acc) is a kernel on the per-sample path. Receivers alone do not qualify
// — constructors and cold maintenance methods live on the same types — and
// allocating constructors (New*, Clone*, Random*) and String are exempt by
// name. //generic:coldpath opts out explicitly.
func defaultHotKernel(pass *Pass, fd *ast.FuncDecl) bool {
	if !pathHasSuffix(pass.Path, "internal/hdc") || !fd.Name.IsExported() {
		return false
	}
	name := fd.Name.Name
	if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Clone") ||
		strings.HasPrefix(name, "Random") || name == "String" {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if hotVectorType(pass, pass.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// hotVectorType recognizes the hypervector types by name within the analyzed
// package: Vec, BitVec, BinVec, and Acc, by value or pointer.
func hotVectorType(pass *Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return false
	}
	switch named.Obj().Name() {
	case "Vec", "BitVec", "BinVec", "Acc":
		return true
	}
	return false
}

// sanctionedCallPkg lists the packages hotpath code may call into: the HDC
// kernels themselves plus the instrumentation and math layers, all of which
// are alloc-free on their fast paths (and themselves under this analyzer or
// the alloc-budget gate).
func sanctionedCallPkg(path string) bool {
	for _, s := range [...]string{"internal/hdc", "internal/telemetry", "internal/perf", "internal/rng", "internal/quality"} {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	switch path {
	case "math", "math/bits", "sync/atomic", "time":
		return true
	}
	return false
}

// checkHotFunc walks one hot function body with an ancestor stack, skipping
// cold regions (blocks that end in panic, and panic arguments).
func checkHotFunc(pass *Pass, fd *ast.FuncDecl, hot map[types.Object]bool, decls map[types.Object]*ast.FuncDecl) {
	name := fd.Name.Name
	prealloc := preallocatedLocals(pass, fd.Body)
	cold := coldRegions(pass, fd.Body)
	var stack []ast.Node
	coldDepth := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cold[top] {
				coldDepth--
			}
			return true
		}
		stack = append(stack, n)
		if cold[n] {
			coldDepth++
		}
		if coldDepth > 0 {
			return true
		}
		// prune pops the node Inspect will not send a nil for when we
		// decline to descend.
		prune := func() bool {
			stack = stack[:len(stack)-1]
			if cold[n] {
				coldDepth--
			}
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hotpath %s uses defer: the deferred frame is per-call overhead and delays the epilogue; restructure without defer", name)
			return prune()
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hotpath %s spawns a goroutine: fan-out belongs on the batch layer, not in a per-sample kernel", name)
			return prune()
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hotpath %s allocates a closure: a func literal here escapes per call; hoist it or pass state explicitly", name)
			return prune()
		case *ast.CompositeLit:
			if len(stack) >= 2 {
				if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op == token.AND {
					pass.Reportf(u.Pos(), "hotpath %s heap-allocates &%s per call; reuse a struct field or pool entry", name, types.ExprString(n.Type))
					return prune()
				}
			}
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "hotpath %s allocates a slice literal per call; preallocate the backing store outside the hot path", name)
			case *types.Map:
				pass.Reportf(n.Pos(), "hotpath %s allocates a map literal per call; preallocate outside the hot path", name)
			}
		case *ast.CallExpr:
			if !checkHotCall(pass, name, n, stack, hot, decls, prealloc) {
				return prune()
			}
		}
		return true
	})
}

// checkHotCall applies the call-site checks: conversions, allocating
// builtins, helper-call vetting, and interface boxing. It returns false to
// prune the subtree (the caller reports nothing further inside it).
func checkHotCall(pass *Pass, name string, call *ast.CallExpr, stack []ast.Node,
	hot map[types.Object]bool, decls map[types.Object]*ast.FuncDecl, prealloc map[types.Object]bool) bool {

	// Type conversions: T(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pass.Info.TypeOf(call.Args[0])
		switch {
		case stringBytesConv(dst, src):
			pass.Reportf(call.Pos(), "hotpath %s converts between string and []byte, which copies per call; keep one representation end to end", name)
		case boxes(dst, src):
			pass.Reportf(call.Pos(), "hotpath %s converts concrete %s to interface %s: boxing allocates; use the concrete type", name, src, dst)
		}
		return true
	}

	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if !appendsToPrealloc(pass, call, prealloc) {
					pass.Reportf(call.Pos(), "hotpath %s appends without preallocated capacity: growth reallocates and copies; size the buffer up front with make(T, len, cap)", name)
				}
			case "make":
				if !lazyInitGuarded(stack) {
					pass.Reportf(call.Pos(), "hotpath %s allocates with make per call; move the buffer into a struct scratch field or sync.Pool (lazy init behind a nil/len/cap guard is fine)", name)
				}
			case "new":
				pass.Reportf(call.Pos(), "hotpath %s heap-allocates with new per call; reuse a struct field or pool entry", name)
			}
			return true
		}
	}

	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		// Func values, method expressions, universe-scope methods
		// (error.Error): nothing to vet statically.
		return true
	}
	boxingAtCall(pass, name, call)
	if fn.Pkg() == pass.Pkg {
		obj := types.Object(fn)
		if hot[obj] {
			return true
		}
		if decl := decls[obj]; decl != nil && inlinable(decl) {
			return true
		}
		pass.Reportf(call.Pos(), "hotpath %s calls %s, which is neither //generic:hotpath nor small enough to inline; annotate the helper (it will then be checked too) or shrink it", name, fn.Name())
		return true
	}
	if !sanctionedCallPkg(fn.Pkg().Path()) {
		pass.Reportf(call.Pos(), "hotpath %s calls %s.%s outside the sanctioned hot-call set (internal/{hdc,telemetry,perf,rng,quality}, math, math/bits, sync/atomic, time)", name, fn.Pkg().Name(), fn.Name())
	}
	return true
}

// calleeFunc resolves a call's static target, or nil for func values and
// builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		inner := &ast.CallExpr{Fun: fun.X, Args: call.Args, Ellipsis: call.Ellipsis}
		return calleeFunc(pass, inner)
	}
	return nil
}

// boxingAtCall flags concrete values passed to interface parameters: each
// such argument is boxed, which allocates unless the compiler can prove
// otherwise (the -escapes mode confirms).
func boxingAtCall(pass *Pass, name string, call *ast.CallExpr) {
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through whole
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !boxes(pt, pass.Info.TypeOf(arg)) {
			continue
		}
		pass.Reportf(arg.Pos(), "hotpath %s passes concrete %s to an interface parameter: boxing allocates per call", name, pass.Info.TypeOf(arg))
	}
}

// boxes reports whether assigning a src value to a dst location is a
// concrete-to-interface conversion.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil || !types.IsInterface(dst) || types.IsInterface(src) {
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// stringBytesConv reports a string↔[]byte conversion in either direction.
func stringBytesConv(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return (isStr(dst) && isBytes(src)) || (isBytes(dst) && isStr(src))
}

// preallocatedLocals collects locals initialized from a make with an explicit
// capacity (make([]T, len, cap)); appending to those is sanctioned — the
// capacity was sized up front, so growth never reallocates.
func preallocatedLocals(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) < 3 {
			return
		}
		if fid, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[fid].(*types.Builtin); ok && b.Name() == "make" {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// appendsToPrealloc reports whether the append's destination is a local with
// provably preallocated capacity.
func appendsToPrealloc(pass *Pass, call *ast.CallExpr, prealloc map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.ObjectOf(id)
	return obj != nil && prealloc[obj]
}

// lazyInitGuarded reports whether the node sits inside an if whose condition
// inspects storage state (nil, len, cap) — the sanctioned amortized-growth
// pattern: allocate once, on first use or on capacity exhaustion.
func lazyInitGuarded(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				switch id.Name {
				case "nil", "len", "cap":
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// coldRegions marks subtrees dead on the hot path: bodies of if statements
// that end in panic (guard blocks), and panic calls themselves (their
// message formatting runs only when the contract is already violated).
func coldRegions(pass *Pass, body *ast.BlockStmt) map[ast.Node]bool {
	cold := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if blockEndsInPanic(pass, n.Body) {
				cold[n.Body] = true
			}
		case *ast.CallExpr:
			if isBuiltinCall(pass, n, "panic") {
				cold[n] = true
			}
		}
		return true
	})
	return cold
}

func blockEndsInPanic(pass *Pass, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && isBuiltinCall(pass, call, "panic")
}

func isBuiltinCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// inlinable approximates the compiler's inlining budget: a helper with no
// loops, defers, goroutines, selects, or closures and a handful of
// statements is assumed to inline into its hot caller, costing no frame. The
// -escapes mode reconciles this approximation against the compiler.
func inlinable(fd *ast.FuncDecl) bool {
	if fd.Body == nil {
		return false
	}
	stmts := 0
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.DeferStmt, *ast.GoStmt, *ast.SelectStmt, *ast.FuncLit:
			ok = false
		case ast.Stmt:
			stmts++
		}
		return ok
	})
	return ok && stmts <= 8
}
