// Package analysis is the custom static-analysis engine behind
// cmd/generic-lint. It mechanically enforces the determinism and concurrency
// contracts this repository documents in DESIGN.md ("Determinism contract"):
// any worker count must produce bit-identical models, predictions, and
// assignments, and all randomness must be explicit and replayable.
//
// The engine is built purely on the standard library (go/ast, go/parser,
// go/token, go/types; package metadata via `go list -json`), so go.mod stays
// dependency-free. One analyzer exists per contract:
//
//   - detrand:    no math/rand, no time.Now, no map-range iteration in
//     model-state-affecting code under internal/ — randomness flows
//     through internal/rng, iteration order is fixed.
//   - encshare:   an encoder captured by a `go` closure or a parallel.For
//     body is an error — encoders carry window scratch state; fan out
//     through encoding.Pool or per-worker clones.
//   - mergeorder: per-worker partial results are combined by worker index,
//     never by channel-arrival order.
//   - dimguard:   exported internal/hdc kernels taking two hypervectors
//     begin with a dimensionality check that panics with the
//     "hdc:" prefix.
//   - depapi:     repository code does not call the deprecated batch entry
//     points (Pipeline.PredictBatch, Pipeline.AccuracyWorkers) — new code
//     uses the variadic-option forms.
//   - hotalloc:   //generic:hotpath functions (and default-hot internal/hdc
//     kernels) do not allocate: no escaping literals, bare make/append,
//     defer, closures, interface boxing, or unvetted helper calls. See
//     DESIGN.md "Performance contract".
//   - lockshape:  in the lock-heavy serving packages, no mixed
//     atomic/direct field access, mutex value copies, RLock→Lock
//     upgrades, or sync.Pool use-after-Put.
//
// A third performance check is not an analyzer: the alloc-budget gate
// (internal/analysis/budget) measures real allocs/op with
// testing.AllocsPerRun against the committed ALLOC_BUDGET.json.
//
// Findings can be suppressed with a staticcheck-style directive on the line
// of, or the line immediately above, the offending node:
//
//	//lint:ignore generic/<name> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one contract over a single type-checked package.
type Analyzer struct {
	// Name is the short rule name; findings print as "generic/<Name>".
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run inspects the package and reports findings through pass.Reportf.
	Run func(pass *Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, EncShare, MergeOrder, DimGuard, DepAPI, HotAlloc, LockShape}
}

// ByName resolves a comma-separated analyzer list ("detrand,dimguard").
// An empty spec selects the full suite.
func ByName(spec string) ([]*Analyzer, error) {
	if spec == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Finding is one reported contract violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: generic/%s: %s", f.Pos, f.Analyzer, f.Message)
}

// A Pass hands one type-checked package to one analyzer.
type Pass struct {
	// Module is the module path ("github.com/edge-hdc/generic"); analyzers
	// use it to scope rules to internal/ packages.
	Module string
	// Path is the package import path under analysis.
	Path string
	Fset *token.FileSet
	// Files holds the package's non-test syntax trees.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	report   func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InternalPkg reports whether the pass's package lives under the module's
// internal/ tree, excluding skip (bare names like "rng").
func (p *Pass) InternalPkg(skip ...string) bool {
	prefix := p.Module + "/internal/"
	if !strings.HasPrefix(p.Path, prefix) {
		return false
	}
	rest := strings.TrimPrefix(p.Path, prefix)
	for _, s := range skip {
		if rest == s || strings.HasPrefix(rest, s+"/") {
			return false
		}
	}
	return true
}

// Run applies each analyzer to each package, filters suppressed findings,
// and returns the rest sorted by file position. Malformed suppression
// directives are reported under the pseudo-analyzer "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		sup, bad := directives(pkg.Fset, pkg.Files)
		findings = append(findings, bad...)
		collect := func(f Finding) {
			if sup.suppressed(f) {
				return
			}
			findings = append(findings, f)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Module: pkg.Module, Path: pkg.ImportPath,
				Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info,
				analyzer: a, report: collect,
			}
			a.Run(pass)
		}
	}
	SortFindings(findings)
	return findings
}

// SortFindings orders findings by file position then analyzer name — the
// engine's canonical output order. Exported so callers merging extra
// findings (the -escapes mode) can restore it.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// FilterSuppressed drops findings covered by lint:ignore directives in pkgs.
// Run applies this internally; findings produced outside Run (escape
// reconciliation) go through here so directives work uniformly.
func FilterSuppressed(pkgs []*Package, findings []Finding) []Finding {
	sup := suppressions{}
	for _, pkg := range pkgs {
		s, _ := directives(pkg.Fset, pkg.Files)
		for k, v := range s {
			sup[k] = v
		}
	}
	out := findings[:0]
	for _, f := range findings {
		if !sup.suppressed(f) {
			out = append(out, f)
		}
	}
	return out
}

// ignorePrefix is the directive form this suite honors. The "lint:" vocabulary
// matches staticcheck so editors already highlight it.
const ignorePrefix = "lint:ignore "

// suppressions maps file:line to the set of analyzer names ignored there.
type suppressions map[string]map[string]bool

func (s suppressions) suppressed(f Finding) bool {
	// A directive acts on its own line and on the line directly below it,
	// covering both end-of-line and preceding-line comment placement.
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		names := s[fmt.Sprintf("%s:%d", f.Pos.Filename, line)]
		if names[f.Analyzer] {
			return true
		}
	}
	return false
}

// directives scans the package comments for lint:ignore directives, returning
// the suppression table and findings for malformed directives.
func directives(fset *token.FileSet, files []*ast.File) (suppressions, []Finding) {
	sup := suppressions{}
	var bad []Finding
	malformed := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{Analyzer: "directive", Pos: fset.Position(pos), Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, " ")
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				names, reason, _ := strings.Cut(rest, " ")
				if strings.TrimSpace(reason) == "" {
					malformed(c.Pos(), "lint:ignore directive needs a reason: //lint:ignore generic/<analyzer> <why this is safe>")
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, name := range strings.Split(names, ",") {
					short, ok := strings.CutPrefix(name, "generic/")
					if !ok || short == "" {
						malformed(c.Pos(), fmt.Sprintf("lint:ignore directive names %q; this suite's checks are written generic/<analyzer>", name))
						continue
					}
					if sup[key] == nil {
						sup[key] = map[string]bool{}
					}
					sup[key][short] = true
				}
			}
		}
	}
	return sup, bad
}
