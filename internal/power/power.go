// Package power models the GENERIC ASIC's area, power, and energy at the
// 14 nm node, calibrated to the paper's reported silicon numbers (§5.1):
// 0.30 mm² area, 0.25 mW worst-case static power (all class-memory banks
// on), 0.09 mW application-average static power after bank gating, and
// ~1.79 mW average dynamic power at 500 MHz — with the Fig. 7 component
// breakdown (class memories dominate every category).
//
// The package also models the paper's energy-reduction levers:
//
//   - application-opportunistic power gating (§4.3.2): class-memory static
//     power scales with the fraction of powered banks;
//   - voltage over-scaling (§4.3.4): an interpolated voltage↔bit-error-rate
//     ↔power table in the spirit of the SRAM measurements of Yang & Murmann
//     (ISQED'17, the paper's ref [20]);
//   - bit-width masking: dynamic class-memory and datapath energy scale
//     with the effective bit-width bw/16;
//   - technology scaling between CMOS nodes following Stillmaker & Baas
//     (Integration'17, the paper's ref [21]), used to place prior
//     accelerators on a common 14 nm footing.
package power

import (
	"fmt"
	"math"

	"github.com/edge-hdc/generic/internal/sim"
)

// Breakdown assigns a quantity (area, power, energy) to the six components
// of Fig. 7.
type Breakdown struct {
	Control    float64
	Datapath   float64
	BaseMem    float64 // score/norm2/temporary memories
	FeatureMem float64 // 1024×8b input memory
	LevelMem   float64 // 64×D level memory (32 KB)
	ClassMem   float64 // m × 8K×16b class memories (256 KB)
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Control + b.Datapath + b.BaseMem + b.FeatureMem + b.LevelMem + b.ClassMem
}

// Scale returns the breakdown multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		Control: b.Control * f, Datapath: b.Datapath * f, BaseMem: b.BaseMem * f,
		FeatureMem: b.FeatureMem * f, LevelMem: b.LevelMem * f, ClassMem: b.ClassMem * f,
	}
}

// Fractions returns each component as a fraction of the total.
func (b Breakdown) Fractions() Breakdown {
	t := b.Total()
	if t == 0 {
		return Breakdown{}
	}
	return b.Scale(1 / t)
}

// Area returns the synthesized area in mm² (total 0.30 mm², §5.1), with
// class memories ≈ 80% (Fig. 7a).
func Area() Breakdown {
	return Breakdown{
		Control:    0.0045,
		Datapath:   0.0165,
		BaseMem:    0.0051,
		FeatureMem: 0.0042,
		LevelMem:   0.0288,
		ClassMem:   0.2409,
	}
}

// StaticPowerAllBanks returns the worst-case static power in mW with every
// class-memory bank powered (total 0.25 mW, §5.1; class memories 88.4%,
// Fig. 7b).
func StaticPowerAllBanks() Breakdown {
	return Breakdown{
		Control:    0.0020,
		Datapath:   0.0040,
		BaseMem:    0.0028,
		FeatureMem: 0.0019,
		LevelMem:   0.0183,
		ClassMem:   0.2210,
	}
}

// Per-access dynamic energies at 14 nm / nominal voltage, in picojoules.
// Calibrated so a representative classification workload (D=4K, d≈128,
// nC≈10) averages ≈1.8 mW dynamic at 500 MHz with the class memories
// consuming ~3/4 of it (§4.3.4: "the large class memories consume ∼80% of
// the total power").
const (
	classWordPJ    = 2.1  // one 16-bit class-memory word read or write
	levelRowPJ     = 0.65 // one m-bit level-memory row read
	featureReadPJ  = 0.20 // one 8-bit feature read
	featureWritePJ = 0.22
	idGenPJ        = 0.05 // one id-seed rotation step
	datapathPJ     = 0.28 // encoder/MAC/divider activity per cycle
	controlPJ      = 0.06 // controller per cycle
)

// VOSPoint is one operating point of the voltage over-scaling model:
// scaling the SRAM supply to VFrac of nominal yields bit-error rate BER and
// multiplies static and dynamic power by the given factors. The table shape
// follows the SRAM scaling measurements of the paper's ref [20]: static
// power falls roughly exponentially with voltage (up to ~7× at 10% BER,
// Fig. 6 right axes), dynamic quadratically.
type VOSPoint struct {
	VFrac        float64
	BER          float64
	StaticFactor float64
	DynFactor    float64
}

// Nominal is the no-over-scaling operating point.
func Nominal() VOSPoint { return VOSPoint{VFrac: 1, BER: 0, StaticFactor: 1, DynFactor: 1} }

var vosTable = []VOSPoint{
	{1.00, 0, 1.00, 1.00},
	{0.95, 1e-6, 0.72, 0.90},
	{0.90, 1e-5, 0.52, 0.81},
	{0.85, 1e-4, 0.38, 0.72},
	{0.80, 1e-3, 0.27, 0.64},
	{0.75, 1e-2, 0.19, 0.56},
	{0.70, 1e-1, 0.14, 0.49},
}

// VOSTable returns a copy of the model's operating points.
func VOSTable() []VOSPoint {
	out := make([]VOSPoint, len(vosTable))
	copy(out, vosTable)
	return out
}

// VOSForBER returns the operating point whose memories exhibit the given
// bit-error rate, interpolating between table points in log-BER space.
// Rates above the table maximum clamp to the last point.
func VOSForBER(ber float64) VOSPoint {
	if ber <= 0 {
		return vosTable[0]
	}
	last := vosTable[len(vosTable)-1]
	if ber >= last.BER {
		return last
	}
	for i := 1; i < len(vosTable); i++ {
		lo, hi := vosTable[i-1], vosTable[i]
		if ber <= hi.BER {
			// Interpolate in log space (lo.BER may be 0 on the first
			// segment; substitute a floor).
			lb := lo.BER
			if lb <= 0 {
				lb = hi.BER / 100
				if ber <= lb {
					return lo
				}
			}
			t := (math.Log(ber) - math.Log(lb)) / (math.Log(hi.BER) - math.Log(lb))
			return VOSPoint{
				VFrac:        lo.VFrac + t*(hi.VFrac-lo.VFrac),
				BER:          ber,
				StaticFactor: lo.StaticFactor + t*(hi.StaticFactor-lo.StaticFactor),
				DynFactor:    lo.DynFactor + t*(hi.DynFactor-lo.DynFactor),
			}
		}
	}
	return last
}

// Config selects the energy-reduction state for an energy computation.
type Config struct {
	// ActiveBankFrac is the powered fraction of class-memory banks
	// (sim.Spec.ActiveBankFrac); zero means all banks on.
	ActiveBankFrac float64
	// VOS is the voltage operating point; the zero value means nominal.
	VOS VOSPoint
	// BW is the effective class bit-width (≤16); zero means 16. Narrower
	// widths proportionally reduce class-memory and MAC dynamic energy
	// (§4.3.4: quantized elements reduce the dot-product dynamic power).
	BW int
	// MaskedLanes is the number of dead class-memory banks masked out of
	// the dot product by the fault layer (sim.Accelerator.MaskedLanes). A
	// masked bank is powered off entirely — its static and dynamic
	// class-memory share disappears along with its dimensions.
	MaskedLanes int
}

func (c Config) normalized() Config {
	if c.ActiveBankFrac <= 0 || c.ActiveBankFrac > 1 {
		c.ActiveBankFrac = 1
	}
	if c.VOS.VFrac == 0 {
		c.VOS = Nominal()
	}
	if c.BW <= 0 || c.BW > 16 {
		c.BW = 16
	}
	if c.MaskedLanes < 0 || c.MaskedLanes >= sim.M {
		c.MaskedLanes = 0
	}
	return c
}

// laneFrac returns the fraction of class-memory lanes still alive.
func (c Config) laneFrac() float64 {
	return float64(sim.M-c.MaskedLanes) / float64(sim.M)
}

// Report is the energy accounting for one workload.
type Report struct {
	Seconds   float64
	StaticJ   float64
	DynamicJ  float64
	DynParts  Breakdown // dynamic energy per component, J
	TotalJ    float64
	AvgPowerW float64
}

// StaticPowerW returns the gated, voltage-scaled static power in watts.
func StaticPowerW(cfg Config) float64 {
	cfg = cfg.normalized()
	b := StaticPowerAllBanks()
	classW := b.ClassMem * cfg.ActiveBankFrac * cfg.VOS.StaticFactor * cfg.laneFrac()
	others := b.Total() - b.ClassMem
	return (classW + others) * 1e-3 // mW → W
}

// Energy turns a simulated workload into joules under the given config.
func Energy(st sim.Stats, cfg Config) Report {
	cfg = cfg.normalized()
	bwScale := float64(cfg.BW) / 16

	var dyn Breakdown
	dyn.ClassMem = float64(st.ClassMemReads+st.ClassMemWrites) * classWordPJ * bwScale * cfg.VOS.DynFactor * cfg.laneFrac()
	dyn.LevelMem = float64(st.LevelMemReads) * levelRowPJ
	dyn.FeatureMem = float64(st.FeatureMemReads)*featureReadPJ + float64(st.FeatureMemWrites)*featureWritePJ
	dyn.Datapath = float64(st.Cycles)*datapathPJ*bwScale + float64(st.IDGenerations)*idGenPJ
	dyn.Control = float64(st.Cycles) * controlPJ
	dyn = dyn.Scale(1e-12) // pJ → J

	sec := st.Seconds()
	r := Report{
		Seconds:  sec,
		StaticJ:  StaticPowerW(cfg) * sec,
		DynamicJ: dyn.Total(),
		DynParts: dyn,
	}
	r.TotalJ = r.StaticJ + r.DynamicJ
	if sec > 0 {
		r.AvgPowerW = r.TotalJ / sec
	}
	return r
}

// TinyHDStaticPowerW returns the static power of the tiny-HD-style
// inference-only design (paper ref [8]) modeled in internal/tinyhd: its
// 4-bit read-only class memories are 4× smaller than GENERIC's trainable
// 16-bit ones (and need no temporary rows).
func TinyHDStaticPowerW(activeBankFrac float64) float64 {
	if activeBankFrac <= 0 || activeBankFrac > 1 {
		activeBankFrac = 1
	}
	b := StaticPowerAllBanks()
	classW := b.ClassMem / 4 * activeBankFrac
	others := b.Total() - b.ClassMem
	return (classW + others) * 1e-3
}

// TinyHDEnergy turns a tiny-HD workload (internal/tinyhd stats, whose
// class accesses are already counted in word-units over the 4× smaller
// memories) into joules.
func TinyHDEnergy(st sim.Stats, activeBankFrac float64) Report {
	var dyn Breakdown
	dyn.ClassMem = float64(st.ClassMemReads+st.ClassMemWrites) * classWordPJ
	dyn.LevelMem = float64(st.LevelMemReads) * levelRowPJ
	dyn.FeatureMem = float64(st.FeatureMemReads)*featureReadPJ + float64(st.FeatureMemWrites)*featureWritePJ
	dyn.Datapath = float64(st.Cycles) * datapathPJ
	dyn.Control = float64(st.Cycles) * controlPJ
	dyn = dyn.Scale(1e-12)
	sec := st.Seconds()
	r := Report{
		Seconds:  sec,
		StaticJ:  TinyHDStaticPowerW(activeBankFrac) * sec,
		DynamicJ: dyn.Total(),
		DynParts: dyn,
	}
	r.TotalJ = r.StaticJ + r.DynamicJ
	if sec > 0 {
		r.AvgPowerW = r.TotalJ / sec
	}
	return r
}

// Per-event energies of the programmable HD processor modeled in
// internal/hdproc (the paper's ref [10]), at the same 14 nm node. The
// processor pays instruction fetch/decode on every operation and streams
// vectors through a 256-bit register-file datapath — both substantially
// more expensive per useful bit than GENERIC's fixed-function pipeline.
const (
	procInstrPJ = 2.5 // fetch + decode + issue per instruction
	procLanePJ  = 2.2 // one 256-bit lane-cycle (RF read/op/write)
	procMemPJ   = 6.0 // one 256-bit memory row read
)

// ProcStaticPowerW is the processor's static power: comparable memories to
// GENERIC (it is also trainable, storing 16-bit class vectors) plus a
// larger datapath/control section. No application bank gating — a
// general-purpose design keeps its memories powered.
func ProcStaticPowerW() float64 {
	b := StaticPowerAllBanks()
	return (b.Total() + 2*b.Datapath + 2*b.Control) * 1e-3
}

// ProcEnergy turns an hdproc workload (instruction count, vector
// lane-cycles, memory lane reads, wall time) into joules.
func ProcEnergy(instructions, laneCycles, memReads int64, seconds float64) Report {
	dyn := Breakdown{
		Control:  float64(instructions) * procInstrPJ * 1e-12,
		Datapath: float64(laneCycles) * procLanePJ * 1e-12,
		ClassMem: float64(memReads) * procMemPJ * 1e-12,
	}
	r := Report{
		Seconds:  seconds,
		StaticJ:  ProcStaticPowerW() * seconds,
		DynamicJ: dyn.Total(),
		DynParts: dyn,
	}
	r.TotalJ = r.StaticJ + r.DynamicJ
	if seconds > 0 {
		r.AvgPowerW = r.TotalJ / seconds
	}
	return r
}

// Stillmaker-Baas style energy-per-operation scaling factors by CMOS node,
// normalized to 14 nm. Used to bring prior accelerators published at other
// nodes onto GENERIC's node for Fig. 9's comparison, as the paper does with
// its ref [21].
var nodeEnergyFactor = map[int]float64{
	180: 31.0,
	130: 18.5,
	90:  10.5,
	65:  6.6,
	45:  3.9,
	40:  3.4,
	32:  2.5,
	28:  2.1,
	22:  1.45,
	16:  1.08,
	14:  1.0,
	10:  0.72,
	7:   0.48,
}

// EnergyScale returns the multiplicative factor that converts an energy
// measured at fromNM to the equivalent at toNM. Unknown nodes return an
// error.
func EnergyScale(fromNM, toNM int) (float64, error) {
	f, ok := nodeEnergyFactor[fromNM]
	if !ok {
		return 0, fmt.Errorf("power: unknown node %d nm", fromNM)
	}
	t, ok := nodeEnergyFactor[toNM]
	if !ok {
		return 0, fmt.Errorf("power: unknown node %d nm", toNM)
	}
	return t / f, nil
}
