package power

import (
	"math"
	"testing"

	"github.com/edge-hdc/generic/internal/sim"
)

func TestAreaMatchesPaper(t *testing.T) {
	a := Area()
	if got := a.Total(); math.Abs(got-0.30) > 0.01 {
		t.Errorf("total area = %.4f mm², paper reports 0.30", got)
	}
	fr := a.Fractions()
	if fr.ClassMem < 0.7 {
		t.Errorf("class-memory area share = %.2f, should dominate (~0.8)", fr.ClassMem)
	}
	if fr.LevelMem > 0.10 {
		t.Errorf("level-memory area share = %.2f, paper says < 10%%", fr.LevelMem)
	}
}

func TestStaticPowerMatchesPaper(t *testing.T) {
	s := StaticPowerAllBanks()
	if got := s.Total(); math.Abs(got-0.25) > 0.01 {
		t.Errorf("worst-case static = %.4f mW, paper reports 0.25", got)
	}
	// Application-average: the paper's datasets fill 28% of the class
	// memories → ~1.6 of 4 banks (≈0.4 active fraction) → 0.09 mW.
	got := StaticPowerW(Config{ActiveBankFrac: 0.3}) * 1e3
	if math.Abs(got-0.09) > 0.02 {
		t.Errorf("gated static = %.3f mW, paper reports 0.09", got)
	}
}

func TestStaticGatingSavesClassPower(t *testing.T) {
	full := StaticPowerW(Config{ActiveBankFrac: 1})
	gated := StaticPowerW(Config{ActiveBankFrac: 0.25})
	if gated >= full {
		t.Fatal("gating did not reduce static power")
	}
	// Class memories are ~88% of static; gating 75% of them saves ~66%.
	saving := 1 - gated/full
	if saving < 0.5 || saving > 0.75 {
		t.Errorf("gating saving = %.2f, want ≈ 0.66", saving)
	}
}

// referenceWorkload builds the stats of a representative classification
// inference batch (D=4K, d=128, nC=10).
func referenceWorkload(t *testing.T, n int) sim.Stats {
	t.Helper()
	spec := sim.Spec{D: 4096, Features: 128, N: 3, Classes: 10, BW: 16, UseID: true}
	acc := sim.MustNew(spec, 1)
	x := make([]float64, 128)
	for i := range x {
		x[i] = float64(i%7) / 7
	}
	for i := 0; i < n; i++ {
		acc.Infer(x)
	}
	return acc.Stats()
}

func TestDynamicPowerInPaperRange(t *testing.T) {
	st := referenceWorkload(t, 20)
	r := Energy(st, Config{ActiveBankFrac: 0.5})
	dynMW := r.DynamicJ / r.Seconds * 1e3
	// Paper: 1.79 mW average dynamic. Allow a generous band around it.
	if dynMW < 1.0 || dynMW > 3.0 {
		t.Errorf("dynamic power = %.2f mW, want ≈ 1.8 (paper)", dynMW)
	}
	fr := r.DynParts.Fractions()
	if fr.ClassMem < 0.55 {
		t.Errorf("class-memory dynamic share = %.2f, must dominate (§4.3.4)", fr.ClassMem)
	}
}

func TestEnergyAdditivity(t *testing.T) {
	st1 := referenceWorkload(t, 1)
	st10 := referenceWorkload(t, 10)
	r1 := Energy(st1, Config{})
	r10 := Energy(st10, Config{})
	if math.Abs(r10.TotalJ-10*r1.TotalJ) > 1e-9*10*r1.TotalJ {
		t.Errorf("energy not additive: %g vs 10×%g", r10.TotalJ, r1.TotalJ)
	}
}

func TestBWScalingReducesDynamic(t *testing.T) {
	st := referenceWorkload(t, 5)
	full := Energy(st, Config{BW: 16})
	narrow := Energy(st, Config{BW: 4})
	if narrow.DynamicJ >= full.DynamicJ {
		t.Fatal("narrow bit-width did not reduce dynamic energy")
	}
	// Class-memory dynamic should scale ~4×; total less (level/feature
	// memories unaffected).
	if narrow.DynParts.ClassMem*3.9 > full.DynParts.ClassMem*1.01 {
		t.Errorf("class dynamic did not scale with bw: %g vs %g",
			narrow.DynParts.ClassMem, full.DynParts.ClassMem)
	}
}

func TestVOSForBER(t *testing.T) {
	if p := VOSForBER(0); p != Nominal() {
		t.Errorf("BER 0 = %+v, want nominal", p)
	}
	p := VOSForBER(0.1)
	if math.Abs(1/p.StaticFactor-7.1) > 0.5 {
		t.Errorf("10%% BER static reduction = %.2f×, paper's Fig. 6 shows ≈7×", 1/p.StaticFactor)
	}
	if p.DynFactor >= 1 || p.DynFactor <= 0 {
		t.Errorf("bad dyn factor %v", p.DynFactor)
	}
	// Clamp above the table.
	if p2 := VOSForBER(0.5); p2.StaticFactor != p.StaticFactor {
		t.Error("BER above table did not clamp")
	}
}

func TestVOSMonotone(t *testing.T) {
	prev := Nominal()
	for _, ber := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		p := VOSForBER(ber)
		if p.StaticFactor > prev.StaticFactor+1e-12 || p.DynFactor > prev.DynFactor+1e-12 {
			t.Errorf("power factors not monotone at BER %g: %+v after %+v", ber, p, prev)
		}
		if p.VFrac > prev.VFrac+1e-12 {
			t.Errorf("voltage not monotone at BER %g", ber)
		}
		prev = p
	}
}

func TestVOSReducesEnergy(t *testing.T) {
	st := referenceWorkload(t, 5)
	nom := Energy(st, Config{})
	vos := Energy(st, Config{VOS: VOSForBER(0.01)})
	if vos.TotalJ >= nom.TotalJ {
		t.Error("voltage over-scaling did not reduce energy")
	}
}

func TestEnergyScale(t *testing.T) {
	f, err := EnergyScale(28, 14)
	if err != nil {
		t.Fatal(err)
	}
	if f >= 1 {
		t.Errorf("scaling 28→14 nm must shrink energy, factor %v", f)
	}
	g, err := EnergyScale(14, 28)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f*g-1) > 1e-12 {
		t.Errorf("round-trip scaling = %v", f*g)
	}
	if _, err := EnergyScale(3, 14); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := EnergyScale(14, 3); err == nil {
		t.Error("unknown target node accepted")
	}
}

func TestConfigNormalization(t *testing.T) {
	st := referenceWorkload(t, 1)
	a := Energy(st, Config{})
	b := Energy(st, Config{ActiveBankFrac: 1, VOS: Nominal(), BW: 16})
	if a.TotalJ != b.TotalJ {
		t.Error("zero config does not normalize to nominal")
	}
}

func TestInferenceEnergyOrderOfMagnitude(t *testing.T) {
	// One inference at D=4K, d=128: tens of nanojoules (µW·µs scale) —
	// the basis for Fig. 9's 3-4 orders-of-magnitude win over CPUs.
	st := referenceWorkload(t, 1)
	r := Energy(st, Config{ActiveBankFrac: 0.5})
	nj := r.TotalJ * 1e9
	if nj < 10 || nj > 1000 {
		t.Errorf("per-inference energy = %.1f nJ, outside the plausible envelope", nj)
	}
}

func TestVOSTableCopy(t *testing.T) {
	tbl := VOSTable()
	if len(tbl) < 5 {
		t.Fatalf("table too short: %d", len(tbl))
	}
	tbl[0].StaticFactor = -1
	if VOSTable()[0].StaticFactor == -1 {
		t.Fatal("VOSTable returned shared storage")
	}
}

func TestProcEnergy(t *testing.T) {
	r := ProcEnergy(1000, 5000, 2000, 1e-4)
	if r.TotalJ <= 0 || r.DynamicJ <= 0 || r.StaticJ <= 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
	if r.AvgPowerW <= 0 {
		t.Fatal("no average power")
	}
	// Doubling the work doubles dynamic energy.
	r2 := ProcEnergy(2000, 10000, 4000, 1e-4)
	if math.Abs(r2.DynamicJ-2*r.DynamicJ) > 1e-18 {
		t.Fatalf("dynamic energy not linear: %g vs 2×%g", r2.DynamicJ, r.DynamicJ)
	}
	// Zero time: no static, no average power blowup.
	r0 := ProcEnergy(10, 10, 10, 0)
	if r0.StaticJ != 0 || math.IsInf(r0.AvgPowerW, 0) || math.IsNaN(r0.AvgPowerW) {
		t.Fatalf("zero-time report broken: %+v", r0)
	}
}

func TestProcStaticAboveGENERIC(t *testing.T) {
	// The programmable processor keeps everything powered and carries a
	// bigger control/datapath section: its static power must exceed
	// GENERIC's worst case.
	if ProcStaticPowerW() <= StaticPowerW(Config{ActiveBankFrac: 1}) {
		t.Fatal("processor static power should exceed GENERIC's")
	}
}

func TestTinyHDEnergyBankFracClamp(t *testing.T) {
	st := referenceWorkload(t, 1)
	a := TinyHDEnergy(st, 0) // clamps to 1
	b := TinyHDEnergy(st, 1)
	if a.StaticJ != b.StaticJ {
		t.Fatal("bank fraction 0 should clamp to all banks")
	}
	gated := TinyHDEnergy(st, 0.25)
	if gated.StaticJ >= b.StaticJ {
		t.Fatal("gating should reduce tiny-HD static energy")
	}
}

func TestStaticPowerVOSInteraction(t *testing.T) {
	nominal := StaticPowerW(Config{ActiveBankFrac: 0.5})
	scaled := StaticPowerW(Config{ActiveBankFrac: 0.5, VOS: VOSForBER(0.01)})
	if scaled >= nominal {
		t.Fatal("VOS should reduce static power")
	}
	// Only the class-memory share scales; the floor is the other
	// components.
	floor := StaticPowerAllBanks()
	others := (floor.Total() - floor.ClassMem) * 1e-3
	if scaled < others {
		t.Fatal("static power fell below the non-gated components")
	}
}

func TestMaskedLanesScalePower(t *testing.T) {
	st := sim.Stats{Cycles: 1000, ClassMemReads: 5000, ClassMemWrites: 100, Inferences: 10}
	full := Energy(st, Config{})
	masked := Energy(st, Config{MaskedLanes: 4})
	// A dead bank draws no dynamic class-memory power: 4 of 16 lanes off
	// cuts the class share by exactly a quarter.
	if masked.DynamicJ >= full.DynamicJ {
		t.Errorf("masked-lane dynamic energy %.3g not below full %.3g", masked.DynamicJ, full.DynamicJ)
	}
	sFull := StaticPowerW(Config{})
	sMasked := StaticPowerW(Config{MaskedLanes: 4})
	if sMasked >= sFull {
		t.Errorf("masked-lane static power %.3g not below full %.3g", sMasked, sFull)
	}
	// Out-of-range lane counts normalize to zero (all lanes alive).
	if got := StaticPowerW(Config{MaskedLanes: sim.M}); got != sFull {
		t.Errorf("MaskedLanes=%d not normalized: %.3g vs %.3g", sim.M, got, sFull)
	}
	if got := StaticPowerW(Config{MaskedLanes: -1}); got != sFull {
		t.Errorf("MaskedLanes=-1 not normalized: %.3g vs %.3g", got, sFull)
	}
}
