// Package trace records the GENERIC accelerator's activity as a timeline
// of named phases (input load, encoder passes, similarity search, class
// updates, norm recomputation) and renders it as a summary table, an ASCII
// occupancy strip, or a VCD waveform — the view a hardware engineer would
// pull from a simulation run to check pipeline utilization.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Event is one contiguous activity window of a named phase, in cycles.
type Event struct {
	Name  string
	Start int64
	Dur   int64
}

// Timeline collects events; it implements the sim package's Tracer hook.
// The zero value is ready to use.
type Timeline struct {
	Events []Event
	// Cap bounds the recorded event count (0 = unlimited); once reached,
	// further events only accumulate into the per-phase totals so long
	// simulations stay bounded.
	Cap      int
	totals   map[string]int64
	counts   map[string]int64
	lastEnd  int64
	overflow bool
}

// Event records an activity window (the sim.Tracer interface).
func (t *Timeline) Event(name string, start, dur int64) {
	if t.totals == nil {
		t.totals = make(map[string]int64)
		t.counts = make(map[string]int64)
	}
	t.totals[name] += dur
	t.counts[name]++
	if end := start + dur; end > t.lastEnd {
		t.lastEnd = end
	}
	if t.Cap > 0 && len(t.Events) >= t.Cap {
		t.overflow = true
		return
	}
	t.Events = append(t.Events, Event{Name: name, Start: start, Dur: dur})
}

// Reset clears the timeline for reuse.
func (t *Timeline) Reset() {
	t.Events = t.Events[:0]
	t.totals = nil
	t.counts = nil
	t.lastEnd = 0
	t.overflow = false
}

// TotalCycles returns the end of the last recorded window.
func (t *Timeline) TotalCycles() int64 { return t.lastEnd }

// Phases returns the recorded phase names, busiest first.
func (t *Timeline) Phases() []string {
	names := make([]string, 0, len(t.totals))
	for n := range t.totals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if t.totals[names[i]] != t.totals[names[j]] {
			return t.totals[names[i]] > t.totals[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Busy returns the total cycles attributed to a phase.
func (t *Timeline) Busy(name string) int64 { return t.totals[name] }

// String renders the per-phase utilization summary.
func (t *Timeline) String() string {
	var b strings.Builder
	total := t.TotalCycles()
	fmt.Fprintf(&b, "activity over %d cycles", total)
	if t.overflow {
		fmt.Fprintf(&b, " (event list capped at %d; totals complete)", t.Cap)
	}
	b.WriteByte('\n')
	for _, name := range t.Phases() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(t.totals[name]) / float64(total)
		}
		fmt.Fprintf(&b, "  %-8s %10d cycles  %5.1f%%  (%d windows)\n",
			name, t.totals[name], pct, t.counts[name])
	}
	return b.String()
}

// RenderASCII draws a width-column occupancy strip: each column is the
// phase that owned the most cycles in that slice of the run ('.' = idle).
func (t *Timeline) RenderASCII(width int) string {
	if width < 1 || t.lastEnd == 0 {
		return ""
	}
	phases := t.Phases()
	glyph := map[string]byte{}
	var taken [256]bool
	legend := make([]string, 0, len(phases))
	for i, name := range phases {
		g := byte('A' + i%26)
		if len(name) > 0 {
			g = name[0] | 0x20 // lower-case first letter when unique
		}
		if taken[g] {
			g = byte('A' + i%26)
		}
		taken[g] = true
		glyph[name] = g
		legend = append(legend, fmt.Sprintf("%c=%s", g, name))
	}
	owner := make(map[int]map[string]int64)
	perCol := float64(t.lastEnd) / float64(width)
	for _, e := range t.Events {
		for c := int(float64(e.Start) / perCol); c <= int(float64(e.Start+e.Dur-1)/perCol) && c < width; c++ {
			if owner[c] == nil {
				owner[c] = map[string]int64{}
			}
			owner[c][e.Name] += e.Dur
		}
	}
	row := make([]byte, width)
	for c := 0; c < width; c++ {
		row[c] = '.'
		var best string
		var bestCy int64
		// Scan candidates in the fixed Phases() order rather than ranging
		// owner[c]: ties on cycle count would otherwise resolve by map
		// order and redraw differently run to run.
		for _, name := range phases {
			if cy := owner[c][name]; cy > bestCy {
				best, bestCy = name, cy
			}
		}
		if bestCy > 0 {
			row[c] = glyph[best]
		}
	}
	return string(row) + "\n" + strings.Join(legend, " ") + "\n"
}

// WriteVCD emits the timeline as a Value Change Dump: one 1-bit signal per
// phase, high while the phase is active. Timescale is 2 ns (one 500 MHz
// cycle). Viewable in GTKWave or any VCD viewer.
func (t *Timeline) WriteVCD(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "$timescale 2ns $end")
	fmt.Fprintln(bw, "$scope module generic $end")
	phases := t.Phases()
	ids := map[string]string{}
	for i, name := range phases {
		id := vcdID(i)
		ids[name] = id
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", id, sanitize(name))
	}
	fmt.Fprintln(bw, "$upscope $end")
	fmt.Fprintln(bw, "$enddefinitions $end")

	// Build change list: phase rises at Start, falls at Start+Dur.
	type change struct {
		at   int64
		id   string
		bit  byte
		prio int // falls before rises at the same instant
	}
	var changes []change
	for _, e := range t.Events {
		changes = append(changes,
			change{e.Start, ids[e.Name], '1', 1},
			change{e.Start + e.Dur, ids[e.Name], '0', 0},
		)
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].at != changes[j].at {
			return changes[i].at < changes[j].at
		}
		return changes[i].prio < changes[j].prio
	})
	fmt.Fprintln(bw, "#0")
	for _, name := range phases {
		fmt.Fprintf(bw, "0%s\n", ids[name])
	}
	last := int64(0)
	for _, c := range changes {
		if c.at != last {
			fmt.Fprintf(bw, "#%d\n", c.at)
			last = c.at
		}
		fmt.Fprintf(bw, "%c%s\n", c.bit, c.id)
	}
	return bw.Flush()
}

// vcdID maps an index to a compact VCD identifier.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./:;<=>?@"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return fmt.Sprintf("z%d", i)
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' {
			return '_'
		}
		return r
	}, name)
}
