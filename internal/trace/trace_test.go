package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/edge-hdc/generic/internal/sim"
)

func TestTimelineTotals(t *testing.T) {
	var tl Timeline
	tl.Event("encode", 0, 100)
	tl.Event("search", 100, 20)
	tl.Event("encode", 120, 100)
	if tl.TotalCycles() != 220 {
		t.Fatalf("total = %d, want 220", tl.TotalCycles())
	}
	if tl.Busy("encode") != 200 || tl.Busy("search") != 20 {
		t.Fatalf("busy totals wrong: %d/%d", tl.Busy("encode"), tl.Busy("search"))
	}
	phases := tl.Phases()
	if len(phases) != 2 || phases[0] != "encode" {
		t.Fatalf("phases = %v, want encode first", phases)
	}
	out := tl.String()
	if !strings.Contains(out, "encode") || !strings.Contains(out, "90.9%") {
		t.Errorf("summary missing utilization: %q", out)
	}
}

func TestTimelineCap(t *testing.T) {
	tl := Timeline{Cap: 2}
	for i := int64(0); i < 10; i++ {
		tl.Event("x", i*10, 10)
	}
	if len(tl.Events) != 2 {
		t.Fatalf("cap ignored: %d events", len(tl.Events))
	}
	if tl.Busy("x") != 100 {
		t.Fatalf("totals must stay complete past the cap: %d", tl.Busy("x"))
	}
	if !strings.Contains(tl.String(), "capped") {
		t.Error("summary should note the cap")
	}
}

func TestTimelineReset(t *testing.T) {
	var tl Timeline
	tl.Event("a", 0, 5)
	tl.Reset()
	if tl.TotalCycles() != 0 || len(tl.Events) != 0 || tl.Busy("a") != 0 {
		t.Fatal("Reset incomplete")
	}
	tl.Event("b", 0, 5)
	if tl.Busy("b") != 5 {
		t.Fatal("timeline unusable after Reset")
	}
}

func TestRenderASCII(t *testing.T) {
	var tl Timeline
	tl.Event("encode", 0, 80)
	tl.Event("search", 80, 20)
	strip := tl.RenderASCII(10)
	if !strings.Contains(strip, "e") || !strings.Contains(strip, "=encode") {
		t.Errorf("strip missing encode: %q", strip)
	}
	if tl.RenderASCII(0) != "" {
		t.Error("zero width should render empty")
	}
	if (&Timeline{}).RenderASCII(10) != "" {
		t.Error("empty timeline should render empty")
	}
}

func TestWriteVCD(t *testing.T) {
	var tl Timeline
	tl.Event("encode", 0, 10)
	tl.Event("search", 10, 4)
	var buf bytes.Buffer
	if err := tl.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 2ns $end", "$var wire 1", "encode", "search",
		"$enddefinitions $end", "#0", "#10", "#14",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// Every rise must have a matching fall.
	if strings.Count(out, "1!") != strings.Count(out, "0!")-1 {
		// one extra '0' from the #0 initialization
		t.Errorf("unbalanced rises/falls for first signal:\n%s", out)
	}
}

func TestTimelineWithAccelerator(t *testing.T) {
	spec := sim.Spec{D: 1024, Features: 32, N: 3, Classes: 4, BW: 16, UseID: true}
	acc := sim.MustNew(spec, 1)
	var tl Timeline
	acc.SetTracer(&tl)
	x := make([]float64, 32)
	acc.Infer(x)
	// The timeline must cover the accelerator's cycle count exactly.
	if tl.TotalCycles() != acc.Stats().Cycles {
		t.Fatalf("timeline end %d != accelerator cycles %d", tl.TotalCycles(), acc.Stats().Cycles)
	}
	for _, phase := range []string{"load", "encode", "search"} {
		if tl.Busy(phase) == 0 {
			t.Errorf("phase %q not recorded", phase)
		}
	}
	// An inference is encode-dominated.
	if tl.Busy("encode") < tl.Busy("search") {
		t.Error("encode should dominate an inference")
	}
	// Training adds bundle/update/norm phases.
	tl.Reset()
	acc.TrainInit([][]float64{x}, []int{0})
	if tl.Busy("bundle") == 0 || tl.Busy("norm") == 0 {
		t.Errorf("training phases missing: %s", tl.String())
	}
}
