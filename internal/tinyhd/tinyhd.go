// Package tinyhd models tiny-HD (Khaleghi et al., DATE'21 — the paper's
// ref [8]): the inference-only HDC ASIC GENERIC is compared against in
// Figure 9. Architecturally it shares GENERIC's windowed encoder datapath
// but, lacking training support, provisions a quantized read-only model:
//
//   - class memories store 4-bit elements — 4× smaller and proportionally
//     cheaper than GENERIC's 16-bit trainable memories (the 16-bit width
//     exists only to absorb training accumulation, §4.3.4);
//   - no temporary rows, no read-modify-write datapath, no update logic;
//   - the same pipelined modified-cosine search (dot product + Mitchell
//     divider against stored 4-bit norms).
//
// The model is functional (it classifies, with the small accuracy cost of
// 4-bit classes) and accounted (cycles + memory accesses), so Figure 9
// places tiny-HD by architecture rather than by a copied ratio.
//
// A design note recorded for posterity: a pure 1-bit Hamming engine was
// tried first and collapses to chance on benchmarks whose class scores are
// dominated by the bundling common mode (EEG) — precisely the "prior
// designs achieve low accuracy" motivation the paper opens with.
package tinyhd

import (
	"fmt"
	"math"

	"github.com/edge-hdc/generic/internal/approx"
	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/sim"
)

// BW is the engine's class bit-width.
const BW = 4

// Engine is a tiny-HD instance: an encoder plus a read-only 4-bit model.
type Engine struct {
	enc   encoding.Encoder
	model *classifier.Model
	stats sim.Stats
	q     hdc.Vec
}

// FromModel provisions a tiny-HD engine from a trained GENERIC model,
// quantizing it to the engine's 4-bit class width.
func FromModel(m *classifier.Model, enc encoding.Encoder) (*Engine, error) {
	if m.D() != enc.D() {
		return nil, fmt.Errorf("tinyhd: model D=%d != encoder D=%d", m.D(), enc.D())
	}
	q := m.Clone()
	q.Quantize(BW)
	e := &Engine{enc: enc, model: q, q: hdc.NewVec(m.D())}
	// Provisioning through the config port: nC·D 4-bit elements = nC·D/4
	// word-units of class-memory traffic.
	e.stats.ClassMemWrites += int64(m.Classes()) * int64(m.D()) / 4
	return e, nil
}

// D and Classes report the engine geometry.
func (e *Engine) D() int       { return e.enc.D() }
func (e *Engine) Classes() int { return e.model.Classes() }

// Stats returns the accumulated activity; ResetStats clears it.
func (e *Engine) Stats() sim.Stats { return e.stats }
func (e *Engine) ResetStats()      { e.stats = sim.Stats{} }

// Infer classifies one input with the same cycle structure as the GENERIC
// engine (§4.2.1) minus all training machinery.
func (e *Engine) Infer(x []float64) int {
	d := e.enc.D()
	features := int64(len(x))
	passes := int64(d / sim.M)
	nc := int64(e.model.Classes())

	e.stats.Cycles += features // serial input load
	e.stats.FeatureMemWrites += features
	per := features
	if nc > per {
		per = nc
	}
	e.stats.Cycles += passes * (per + sim.PipelineFill)
	e.stats.FeatureMemReads += passes * features
	e.stats.LevelMemReads += passes * features
	e.stats.Encodings++

	e.enc.Encode(x, e.q)
	best, bestScore := 0, int64(math.MinInt64)
	for c := 0; c < e.model.Classes(); c++ {
		s := approx.ScoreApprox(e.q.Dot(e.model.Class(c)), e.model.Norm2(c))
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	// 4-bit class reads, counted in word-units over the 4× smaller memory.
	e.stats.ClassMemReads += nc * int64(d) / 4
	e.stats.Cycles += 2 * nc // divider + compare
	e.stats.Inferences++
	return best
}

// InferAll classifies a batch.
func (e *Engine) InferAll(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = e.Infer(x)
	}
	return out
}
