package tinyhd

import (
	"testing"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/metrics"
	"github.com/edge-hdc/generic/internal/power"
	"github.com/edge-hdc/generic/internal/sim"
)

func trainedSetup(t *testing.T, name string) (*classifier.Model, encoding.Encoder, *dataset.Dataset) {
	t.Helper()
	ds := dataset.MustLoad(name, 1)
	n := 3
	if ds.Features < n {
		n = ds.Features
	}
	enc := encoding.MustNew(encoding.Generic, encoding.Config{
		D: 2048, Features: ds.Features, Bins: 64, Lo: ds.Lo, Hi: ds.Hi,
		N: n, UseID: ds.UseID, Seed: 5,
	})
	trainH := encoding.EncodeAll(enc, ds.TrainX)
	m, _ := classifier.TrainEncoded(trainH, ds.TrainY, ds.Classes, classifier.Options{Epochs: 10, Seed: 1})
	return m, enc, ds
}

func TestFromModelValidates(t *testing.T) {
	m, _, ds := trainedSetup(t, "EEG")
	other := encoding.MustNew(encoding.Generic, encoding.Config{
		D: 1024, Features: ds.Features, Lo: ds.Lo, Hi: ds.Hi, Seed: 5,
	})
	if _, err := FromModel(m, other); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestQuantizedInferenceAccuracy(t *testing.T) {
	// FACE is the paper's robust-quantization witness (Fig. 6 shows its
	// low-bit models holding accuracy); EEG, by contrast, has knife-edge
	// score margins that *no* quantized inference survives — the "prior
	// designs achieve low accuracy" motivation of §1.
	m, enc, ds := trainedSetup(t, "FACE")
	e, err := FromModel(m, enc)
	if err != nil {
		t.Fatal(err)
	}
	if e.D() != 2048 || e.Classes() != ds.Classes {
		t.Fatalf("engine geometry wrong: D=%d classes=%d", e.D(), e.Classes())
	}
	preds := e.InferAll(ds.TestX)
	acc := metrics.MustAccuracy(preds, ds.TestY)
	if acc < 0.9 {
		t.Errorf("tiny-HD accuracy on FACE = %.3f, want ≥ 0.9", acc)
	}
}

func TestQuantizedNotBetterThanFull(t *testing.T) {
	m, enc, ds := trainedSetup(t, "FACE")
	e, _ := FromModel(m, enc)
	testH := encoding.EncodeAll(enc, ds.TestX)
	full := classifier.Accuracy(m, testH, ds.TestY, 1)
	preds := e.InferAll(ds.TestX)
	quant := metrics.MustAccuracy(preds, ds.TestY)
	if quant > full+0.02 {
		t.Errorf("4-bit inference (%.3f) should not beat full precision (%.3f)", quant, full)
	}
}

func TestGenericBeatsTinyHDOnFragileBenchmark(t *testing.T) {
	// The paper's core argument for a trainable 16-bit engine: on
	// benchmarks with near-tied class scores (EEG), quantized
	// inference-only engines lose badly to full-precision GENERIC.
	m, enc, ds := trainedSetup(t, "EEG")
	e, _ := FromModel(m, enc)
	testH := encoding.EncodeAll(enc, ds.TestX)
	full := classifier.Accuracy(m, testH, ds.TestY, 1)
	quant := metrics.MustAccuracy(e.InferAll(ds.TestX), ds.TestY)
	if full-quant < 0.1 {
		t.Errorf("expected a clear GENERIC advantage on EEG: full %.3f vs tiny-HD %.3f", full, quant)
	}
}

func TestTinyHDDoesNotMutateSource(t *testing.T) {
	m, enc, _ := trainedSetup(t, "EEG")
	before := m.Class(0).Clone()
	if _, err := FromModel(m, enc); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if m.Class(0)[i] != before[i] {
			t.Fatal("FromModel mutated the source model")
		}
	}
	if m.BW() != 16 {
		t.Fatal("FromModel changed the source bit-width")
	}
}

func TestTinyHDClassTrafficIs4xSmaller(t *testing.T) {
	m, enc, ds := trainedSetup(t, "EEG")
	e, _ := FromModel(m, enc)
	e.ResetStats()
	e.Infer(ds.TestX[0])
	tiny := e.Stats()

	spec := sim.Spec{D: 2048, Features: ds.Features, N: 3, Classes: ds.Classes, BW: 16, UseID: ds.UseID}
	acc := sim.MustNewWithRange(spec, 5, ds.Lo, ds.Hi)
	acc.Infer(ds.TestX[0])
	full := acc.Stats()

	if tiny.ClassMemReads*4 != full.ClassMemReads {
		t.Errorf("tiny-HD class reads %d should be 1/4 of GENERIC's %d",
			tiny.ClassMemReads, full.ClassMemReads)
	}
	if tiny.LevelMemReads != full.LevelMemReads {
		t.Errorf("encode traffic should match: %d vs %d", tiny.LevelMemReads, full.LevelMemReads)
	}
}

func TestTinyHDEnergyBetweenLPAndBaseline(t *testing.T) {
	// The Figure 9 placement: tiny-HD must be cheaper than baseline
	// GENERIC (smaller memories) but not cheaper than an aggressive
	// GENERIC-LP configuration.
	m, enc, ds := trainedSetup(t, "EEG")
	e, _ := FromModel(m, enc)
	e.ResetStats()
	const q = 8
	for i := 0; i < q; i++ {
		e.Infer(ds.TestX[i])
	}
	tinyJ := power.TinyHDEnergy(e.Stats(), 0.25).TotalJ / q

	spec := sim.Spec{D: 2048, Features: ds.Features, N: 3, Classes: ds.Classes, BW: 16, UseID: ds.UseID}
	acc := sim.MustNewWithRange(spec, 5, ds.Lo, ds.Hi)
	for i := 0; i < q; i++ {
		acc.Infer(ds.TestX[i])
	}
	baseJ := power.Energy(acc.Stats(), power.Config{ActiveBankFrac: spec.ActiveBankFrac()}).TotalJ / q

	if tinyJ >= baseJ {
		t.Errorf("tiny-HD (%g J) should be cheaper than baseline GENERIC (%g J)", tinyJ, baseJ)
	}
	if baseJ/tinyJ > 8 {
		t.Errorf("tiny-HD advantage %.1f× implausibly large", baseJ/tinyJ)
	}
}

func TestTinyHDStaticPower(t *testing.T) {
	full := power.StaticPowerW(power.Config{ActiveBankFrac: 1})
	tiny := power.TinyHDStaticPowerW(1)
	if tiny >= full {
		t.Fatal("tiny-HD static power should be below GENERIC's")
	}
	// Class memories are 88% of GENERIC's static; shrinking them 4×
	// leaves roughly a third.
	if tiny > 0.5*full {
		t.Errorf("tiny-HD static %.4f mW too close to GENERIC's %.4f mW", tiny*1e3, full*1e3)
	}
}
