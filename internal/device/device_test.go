package device

import (
	"testing"

	"github.com/edge-hdc/generic/internal/encoding"
)

func genericParams() HDCParams {
	return HDCParams{
		Kind: encoding.Generic, D: 4096, Features: 128, N: 3, Classes: 26, UseID: true,
	}
}

func TestRunLinearInOps(t *testing.T) {
	ops := Ops{Packed: 1000, Int: 2000, Float: 3000, MemBytes: 4000}
	s1, e1 := CPU.Run(ops)
	s2, e2 := CPU.Run(ops.Scale(10))
	if s2 < s1*9.99 || s2 > s1*10.01 {
		t.Errorf("latency not linear: %g vs 10×%g", s2, s1)
	}
	if e2 < e1*9.99 || e2 > e1*10.01 {
		t.Errorf("energy not linear: %g vs 10×%g", e2, e1)
	}
}

func TestOpsAdd(t *testing.T) {
	a := Ops{Packed: 1, Int: 2, Float: 3, MemBytes: 4}
	a.Add(Ops{Packed: 10, Int: 20, Float: 30, MemBytes: 40})
	if a.Packed != 11 || a.Int != 22 || a.Float != 33 || a.MemBytes != 44 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestEncodeOpsPerKind(t *testing.T) {
	p := genericParams()
	for _, k := range encoding.Kinds() {
		p.Kind = k
		o := p.EncodeOps()
		if o.Packed+o.Int+o.Float <= 0 {
			t.Errorf("%v: zero encode ops", k)
		}
	}
	// RP is float-dominated; windowed kinds are packed-dominated.
	p.Kind = encoding.RP
	if rp := p.EncodeOps(); rp.Float == 0 || rp.Packed != 0 {
		t.Error("RP should count float projection ops")
	}
	p.Kind = encoding.Generic
	if g := p.EncodeOps(); g.Packed == 0 {
		t.Error("GENERIC should count packed ops")
	}
}

func TestGenericCostsMoreThanNgram(t *testing.T) {
	// §3.3: GENERIC processes one extra XOR (the id) per window, so it is
	// less efficient than plain ngram on conventional hardware.
	p := genericParams()
	p.Kind = encoding.Generic
	g := p.EncodeOps()
	p.Kind = encoding.Ngram
	p.UseID = false
	n := p.EncodeOps()
	if g.Packed <= n.Packed {
		t.Errorf("GENERIC packed ops %d should exceed ngram %d", g.Packed, n.Packed)
	}
}

func TestEGPUBestConventionalHomeForHDC(t *testing.T) {
	// Figure 3's headline: the eGPU's packing+parallelism make it ≥2
	// orders of magnitude more energy-efficient than the Pi for HDC
	// inference, and faster than both CPU and Pi.
	ops := genericParams().InferOps()
	_, eRPi := RaspberryPi.Run(ops)
	tCPU, eCPU := CPU.Run(ops)
	tEGPU, eEGPU := EGPU.Run(ops)
	if ratio := eRPi / eEGPU; ratio < 50 {
		t.Errorf("RPi/eGPU HDC energy ratio = %.0f, want ≫ 50 (paper: 134)", ratio)
	}
	if eCPU <= eEGPU {
		t.Error("CPU should cost more energy than eGPU for HDC")
	}
	if tEGPU >= tCPU {
		t.Error("eGPU should be faster than CPU for HDC")
	}
}

func TestMLCheaperThanHDCOnConventional(t *testing.T) {
	// Figure 3: conventional ML (e.g. a small MLP, ~10⁵ MACs) costs less
	// energy than HDC on the Pi and the CPU. (The paper omits ML-on-eGPU:
	// it performed worse than the CPU there.)
	hdcOps := genericParams().InferOps()
	mlOps := MLInferOps(100_000)
	for _, d := range []Device{RaspberryPi, CPU} {
		_, eHDC := d.Run(hdcOps)
		_, eML := d.Run(mlOps)
		if eML >= eHDC {
			t.Errorf("%s: ML inference (%g J) not cheaper than HDC (%g J)", d.Name, eML, eHDC)
		}
	}
}

func TestTrainOpsScaleWithEpochs(t *testing.T) {
	p := genericParams()
	o1 := p.TrainOps(1000, 1)
	o20 := p.TrainOps(1000, 20)
	if o20.Int <= o1.Int {
		t.Error("training ops must grow with epochs")
	}
	// Encoding cost is paid once (cached encodings).
	if o20.Packed != o1.Packed {
		t.Error("encoding ops should not scale with epochs (cached)")
	}
}

func TestClusterOps(t *testing.T) {
	p := genericParams()
	o := p.ClusterOps(800, 2, 10)
	if o.Packed <= 0 || o.Int <= 0 {
		t.Errorf("cluster ops empty: %+v", o)
	}
	o2 := p.ClusterOps(800, 7, 10)
	if o2.Int <= o.Int {
		t.Error("more centroids must cost more")
	}
}

func TestMLTrainFormulas(t *testing.T) {
	p := MLTrainParams{Samples: 1000, Features: 128, Classes: 10}
	if o := p.ForestTrainOps(100, 0, 0); o.Float <= 0 {
		t.Error("forest train ops empty")
	}
	if o := p.SVMTrainOps(30); o.Float != 10*30*1000*128*4 {
		t.Errorf("SVM train ops = %d", o.Float)
	}
	if o := p.LRTrainOps(30); o.Float <= 0 {
		t.Error("LR train ops empty")
	}
	if o := p.MLPTrainOps(50_000, 40); o.Float != 50_000*1000*40*6 {
		t.Errorf("MLP train ops = %d", o.Float)
	}
}

func TestKMeansOps(t *testing.T) {
	o := KMeansOps(800, 2, 2, 20)
	want := int64(20) * (800*2*2*3 + 800*2)
	if o.Float != want {
		t.Errorf("KMeansOps = %d, want %d", o.Float, want)
	}
}

func TestHelperMath(t *testing.T) {
	if isqrt(128) != 11 {
		t.Errorf("isqrt(128) = %d", isqrt(128))
	}
	if isqrt(0) != 0 || isqrt(1) != 1 {
		t.Error("isqrt edge cases wrong")
	}
	if log2int(1024) != 10 {
		t.Errorf("log2int(1024) = %d", log2int(1024))
	}
	if log2int(1) != 1 {
		t.Errorf("log2int(1) = %d (floor of 0 clamps to 1)", log2int(1))
	}
}
