// Package device models the conventional platforms the paper measures HDC
// and classical ML on (§3.3, Figs. 3/8/9/10): a Raspberry Pi 3 embedded
// processor, a desktop CPU (Intel i7-8700), and an NVIDIA Jetson TX2
// low-power edge GPU — plus reference models of the two prior HDC ASICs of
// Fig. 9 (tiny-HD [8] and the Datta et al. programmable HD processor [10]).
//
// The models are deliberately simple and fully documented: a workload is a
// vector of operation counts (bit-packed word ops, integer MACs, float
// MACs, memory traffic) counted exactly from this repository's own
// implementations; a device turns counts into latency via calibrated
// effective throughputs and into energy via its average active power. The
// throughput constants are calibrated so the *relative* positions of the
// paper's Figure 3 reproduce (HDC costs more than classical ML on every
// conventional device; the eGPU's bit-packing makes it the most efficient
// conventional home for HDC by ~2 orders of magnitude over the Pi);
// absolute numbers are indicative only — see EXPERIMENTS.md.
package device

import (
	"github.com/edge-hdc/generic/internal/encoding"
)

// Ops counts the work of a workload, split by execution resource.
type Ops struct {
	Packed   int64 // 64-bit word operations (XOR/popcount/shift on packed HVs)
	Int      int64 // scalar/SIMD integer MACs (16/32-bit)
	Float    int64 // floating-point MACs
	MemBytes int64 // bulk memory traffic beyond cache
}

// Add accumulates o into p.
func (p *Ops) Add(o Ops) {
	p.Packed += o.Packed
	p.Int += o.Int
	p.Float += o.Float
	p.MemBytes += o.MemBytes
}

// Scale multiplies all counts by k (for per-sample → per-batch conversion).
func (p Ops) Scale(k int64) Ops {
	return Ops{Packed: p.Packed * k, Int: p.Int * k, Float: p.Float * k, MemBytes: p.MemBytes * k}
}

// Device is a conventional execution platform.
type Device struct {
	Name string
	// ActivePowerW is the measured average power drawn while running these
	// workloads (wall power for the Pi per the paper's Hioki meter setup;
	// package power for CPU/eGPU).
	ActivePowerW float64
	// Effective sustained throughputs for each resource. These fold in all
	// software inefficiency (interpreter overhead, memory stalls, limited
	// parallel occupancy), which is why they sit far below datasheet peaks.
	PackedOpsPerSec float64
	IntOpsPerSec    float64
	FloatOpsPerSec  float64
	MemBytesPerSec  float64
	// LoopOverheadS is the per-sample-presentation software overhead of
	// iterative fitting loops (interpreter dispatch, library call setup) —
	// the dominant cost of scikit-learn-style k-means on small datasets,
	// which the paper's §5.3 measurements reflect. Batched inference paths
	// amortize this to ~zero and do not pay it.
	LoopOverheadS float64
	// InferOverheadS is the residual per-query overhead of a batched
	// inference call (dispatch, result marshalling, kernel launch on the
	// eGPU). It dominates the cost of very cheap models like random-forest
	// prediction.
	InferOverheadS float64
}

// The three platforms of §3.3.
var (
	RaspberryPi = Device{
		Name:            "Raspberry Pi",
		ActivePowerW:    3.7,
		PackedOpsPerSec: 0.15e9,
		IntOpsPerSec:    0.40e9,
		FloatOpsPerSec:  0.30e9,
		MemBytesPerSec:  0.8e9,
		LoopOverheadS:   13e-6,
		InferOverheadS:  2e-6,
	}
	CPU = Device{
		Name:            "CPU",
		ActivePowerW:    45,
		PackedOpsPerSec: 8e9,
		IntOpsPerSec:    5e9,
		FloatOpsPerSec:  40e9,
		MemBytesPerSec:  15e9,
		LoopOverheadS:   7e-6,
		InferOverheadS:  0.1e-6,
	}
	EGPU = Device{
		Name:            "eGPU",
		ActivePowerW:    7.5,
		PackedOpsPerSec: 80e9,
		IntOpsPerSec:    60e9,
		FloatOpsPerSec:  30e9,
		MemBytesPerSec:  30e9,
		LoopOverheadS:   0.1e-6,
		InferOverheadS:  0.2e-6,
	}
)

// Devices lists the conventional platforms in the paper's order.
func Devices() []Device { return []Device{RaspberryPi, CPU, EGPU} }

// Run converts an op-count workload into latency (s) and energy (J).
func (d Device) Run(ops Ops) (seconds, joules float64) {
	seconds = float64(ops.Packed)/d.PackedOpsPerSec +
		float64(ops.Int)/d.IntOpsPerSec +
		float64(ops.Float)/d.FloatOpsPerSec +
		float64(ops.MemBytes)/d.MemBytesPerSec
	return seconds, seconds * d.ActivePowerW
}

// RunLoop is Run for iterative fitting workloads: it adds the per-sample
// loop overhead for the given number of sample presentations.
func (d Device) RunLoop(ops Ops, presentations int64) (seconds, joules float64) {
	seconds, _ = d.Run(ops)
	seconds += float64(presentations) * d.LoopOverheadS
	return seconds, seconds * d.ActivePowerW
}

// RunInference is Run for one batched-inference query: it adds the
// per-query dispatch overhead once.
func (d Device) RunInference(ops Ops) (seconds, joules float64) {
	seconds, _ = d.Run(ops)
	seconds += d.InferOverheadS
	return seconds, seconds * d.ActivePowerW
}

// ---------------------------------------------------------------------------
// HDC op counting. Counts follow the bit-packed software implementations in
// internal/encoding and internal/classifier exactly.

// HDCParams describes an HDC configuration for op counting.
type HDCParams struct {
	Kind     encoding.Kind
	D        int // dimensionality
	Features int // d
	N        int // window length (Ngram/Generic)
	Classes  int
	UseID    bool
}

func (p HDCParams) words() int64 { return int64(p.D) / 64 }

// EncodeOps counts one input encoding.
func (p HDCParams) EncodeOps() Ops {
	w := p.words()
	switch p.Kind {
	case encoding.RP:
		// Dense float projection: d·D MACs plus the sign pass.
		return Ops{Float: int64(p.Features)*int64(p.D) + int64(p.D)}
	case encoding.LevelID, encoding.Permute:
		// Per feature: one XOR-or-rotate over D bits + bundling add
		// (bit-sliced: ~4 word ops per vector).
		return Ops{Packed: int64(p.Features) * w * 6, Int: int64(p.Features)}
	case encoding.Ngram, encoding.Generic:
		windows := int64(p.Features - p.N + 1)
		perWindow := int64(p.N) + 4 // n XORs (+1 id XOR) + bundling
		if p.UseID {
			perWindow++
		}
		return Ops{Packed: windows * perWindow * w, Int: int64(p.Features)}
	}
	return Ops{}
}

// InferOps counts one query: encode + nC dot products + score/argmax.
func (p HDCParams) InferOps() Ops {
	o := p.EncodeOps()
	o.Int += int64(p.Classes) * int64(p.D) // integer MACs against classes
	o.Int += int64(p.Classes) * 4          // normalization + compare
	return o
}

// TrainOps counts HDC training: encode the training set once (encodings are
// cached), bundle, then retrain for epochs passes of predict+update.
func (p HDCParams) TrainOps(nTrain, epochs int) Ops {
	var o Ops
	o.Add(p.EncodeOps().Scale(int64(nTrain)))
	o.Int += int64(nTrain) * int64(p.D) // initial bundling
	perPredict := int64(p.Classes)*int64(p.D) + int64(p.Classes)*4
	updates := int64(nTrain) / 5 // ~20% mispredictions on average
	perEpoch := int64(nTrain)*perPredict + updates*2*int64(p.D)
	o.Int += int64(epochs) * perEpoch
	return o
}

// ClusterOps counts HDC clustering: encode once, then epochs passes of
// k similarity checks plus copy-centroid bundling per input.
func (p HDCParams) ClusterOps(n, k, epochs int) Ops {
	var o Ops
	o.Add(p.EncodeOps().Scale(int64(n)))
	perEpoch := int64(n) * (int64(k)*int64(p.D) + int64(p.D))
	o.Int += int64(epochs+1) * perEpoch
	return o
}

// ---------------------------------------------------------------------------
// Classical-ML op counting. Inference counts defer to the trained models'
// own InferenceOps; training counts use standard complexity formulas.

// MLInferOps wraps a trained model's per-query cost as float work.
func MLInferOps(inferenceOps int64) Ops {
	return Ops{Float: inferenceOps}
}

// MLTrainParams describes a classical training job.
type MLTrainParams struct {
	Samples  int
	Features int
	Classes  int
}

// ForestTrainOps estimates CART forest training: per tree, per depth level,
// a sort-based split scan over the bootstrap sample and √d features.
func (p MLTrainParams) ForestTrainOps(trees, maxFeatures, avgDepth int) Ops {
	if maxFeatures <= 0 {
		maxFeatures = isqrt(p.Features)
	}
	if avgDepth <= 0 {
		avgDepth = log2int(p.Samples)
	}
	perTree := int64(p.Samples) * int64(log2int(p.Samples)) * int64(maxFeatures) * int64(avgDepth)
	return Ops{Float: int64(trees) * perTree * 3}
}

// SVMTrainOps estimates one-vs-rest Pegasos training.
func (p MLTrainParams) SVMTrainOps(epochs int) Ops {
	return Ops{Float: int64(p.Classes) * int64(epochs) * int64(p.Samples) * int64(p.Features) * 4}
}

// LRTrainOps estimates softmax-SGD logistic regression training.
func (p MLTrainParams) LRTrainOps(epochs int) Ops {
	return Ops{Float: int64(epochs) * int64(p.Samples) * int64(p.Features) * int64(p.Classes) * 4}
}

// MLPTrainOps estimates backprop training: ~6 MACs per weight per sample
// per epoch (forward, backward, update).
func (p MLTrainParams) MLPTrainOps(weights int64, epochs int) Ops {
	return Ops{Float: weights * int64(p.Samples) * int64(epochs) * 6}
}

// KMeansOps counts Lloyd's algorithm: per iteration, n·k·d distance MACs
// plus the centroid update.
func KMeansOps(n, k, d, iters int) Ops {
	per := int64(n)*int64(k)*int64(d)*3 + int64(n)*int64(d)
	return Ops{Float: int64(iters) * per}
}

func isqrt(x int) int {
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

func log2int(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}

// Prior HDC ASICs (Fig. 9) are modeled architecturally: tiny-HD [8] in
// internal/tinyhd (4-bit inference-only memories) and the Datta et al.
// programmable HD processor [10] in internal/hdproc (an executable
// vector-processor model).
