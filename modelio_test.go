package generic_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	generic "github.com/edge-hdc/generic"
)

func TestPipelineSaveLoadRoundTrip(t *testing.T) {
	p, X, Y := trainXor(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := generic.LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasChecksum() {
		t.Error("loaded pipeline does not report a verified checksum")
	}
	for i, x := range X {
		if got, want := must(q.Predict(x)), must(p.Predict(x)); got != want {
			t.Fatalf("sample %d: loaded pipeline predicts %d, original %d", i, got, want)
		}
		_ = Y
	}
}

func TestLoadPipelineCorrupt(t *testing.T) {
	p, _, _ := trainXor(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the payload: the CRC32 footer must
	// catch it and LoadPipeline must answer with the corruption sentinel.
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x10
	if _, err := generic.LoadPipeline(bytes.NewReader(raw)); !errors.Is(err, generic.ErrCorruptModel) {
		t.Fatalf("corrupt payload: err = %v, want ErrCorruptModel", err)
	}
}

func TestPipelineSaveLoadFile(t *testing.T) {
	p, X, _ := trainXor(t)
	path := filepath.Join(t.TempDir(), "model.ghdc")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := generic.LoadPipelineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if must(q.Predict(X[0])) != must(p.Predict(X[0])) {
		t.Fatal("file round trip changed predictions")
	}
}

func TestLoadPipelineFileMissing(t *testing.T) {
	if _, err := generic.LoadPipelineFile("/nonexistent/model.ghdc"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSaveUntrainedErrors(t *testing.T) {
	enc, _ := generic.NewEncoder(generic.LevelID, generic.EncoderConfig{
		D: 256, Features: 4, Lo: 0, Hi: 1, Seed: 1,
	})
	p := generic.NewPipeline(enc, 2)
	var buf bytes.Buffer
	if err := p.Save(&buf); !errors.Is(err, generic.ErrNotTrained) {
		t.Fatalf("Save before Fit: err = %v, want ErrNotTrained", err)
	}
}

func TestLoadPipelineGarbage(t *testing.T) {
	if _, err := generic.LoadPipeline(bytes.NewReader([]byte("garbage data"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadQuantizedPipeline(t *testing.T) {
	p, X, Y := trainXor(t)
	if err := p.Quantize(4); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := generic.LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if must(q.Predict(x)) == Y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(X)); frac < 0.95 {
		t.Fatalf("quantized round-trip accuracy %.3f", frac)
	}
	if q.Model().BW() != 4 {
		t.Fatalf("bw = %d after round trip", q.Model().BW())
	}
}
