package generic_test

// Integration floors: every classification benchmark must stay learnable by
// the GENERIC pipeline at reduced dimensionality, and every clustering
// benchmark must stay clusterable. These floors catch regressions in the
// generators, the encoders, and the classifier at once; the precise Table 1
// shape is asserted in internal/experiments.

import (
	"testing"

	generic "github.com/edge-hdc/generic"
)

// floors are deliberately below the expected values (Table 1 ≫ these) so
// the test guards against breakage, not noise.
var accuracyFloor = map[string]float64{
	"CARDIO": 0.70,
	"DNA":    0.90,
	"EEG":    0.85,
	"EMG":    0.90,
	"FACE":   0.85,
	"ISOLET": 0.90,
	"LANG":   0.80,
	"MNIST":  0.75,
	"PAGE":   0.90,
	"PAMAP2": 0.90,
	"UCIHAR": 0.90,
}

func TestGenericPipelineFloorsAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on all 11 benchmarks (~20 s)")
	}
	for _, name := range generic.Datasets() {
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := generic.LoadDataset(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			enc, err := generic.EncoderForDataset(generic.Generic, ds, 1024, 1)
			if err != nil {
				t.Fatal(err)
			}
			p := generic.NewPipeline(enc, ds.Classes)
			if _, err := p.Fit(ds.TrainX, ds.TrainY, generic.TrainOptions{Epochs: 5, Seed: 1}); err != nil {
				t.Fatal(err)
			}
			acc := must(p.Accuracy(ds.TestX, ds.TestY))
			if floor := accuracyFloor[name]; acc < floor {
				t.Errorf("%s: accuracy %.3f below floor %.2f", name, acc, floor)
			}
		})
	}
}

var nmiFloor = map[string]float64{
	"Hepta":       0.75,
	"Tetra":       0.45,
	"TwoDiamonds": 0.80,
	"WingNut":     0.60,
	"Iris":        0.50,
}

func TestHDCClusteringFloorsAllBenchmarks(t *testing.T) {
	for _, name := range generic.ClusterSets() {
		name := name
		t.Run(name, func(t *testing.T) {
			cs, err := generic.LoadClusterSet(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			n := 3
			if cs.Features < n {
				n = cs.Features
			}
			enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
				D: 2048, Features: cs.Features, Bins: 32, Lo: cs.Lo, Hi: cs.Hi,
				N: n, UseID: true, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := generic.Cluster(enc, cs.X, cs.K, 10)
			nmi := generic.NMI(res.Assignments, cs.Labels)
			if floor := nmiFloor[name]; nmi < floor {
				t.Errorf("%s: NMI %.3f below floor %.2f", name, nmi, floor)
			}
		})
	}
}

func TestAcceleratorMatchesPipelineAcrossBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on several benchmarks")
	}
	// The on-accelerator path (fixed-point scoring, Mitchell divider) and
	// the software pipeline must land within a few points of each other on
	// every tested benchmark.
	for _, name := range []string{"EEG", "FACE", "PAGE"} {
		ds, err := generic.LoadDataset(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := generic.EncoderForDataset(generic.Generic, ds, 1024, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := generic.NewPipeline(enc, ds.Classes)
		if _, err := p.Fit(ds.TrainX, ds.TrainY, generic.TrainOptions{Epochs: 5, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		sw := must(p.Accuracy(ds.TestX, ds.TestY))

		spec := generic.Spec{
			D: 1024, Features: ds.Features, N: 3, Classes: ds.Classes,
			BW: 16, UseID: ds.UseID,
		}
		acc, err := generic.NewAccelerator(spec, 1, ds.Lo, ds.Hi)
		if err != nil {
			t.Fatal(err)
		}
		acc.Train(ds.TrainX, ds.TrainY, 5)
		preds := acc.InferAll(ds.TestX)
		correct := 0
		for i, pr := range preds {
			if pr == ds.TestY[i] {
				correct++
			}
		}
		hw := float64(correct) / float64(ds.TestLen())
		if sw-hw > 0.08 {
			t.Errorf("%s: accelerator accuracy %.3f too far below software %.3f", name, hw, sw)
		}
	}
}
