package generic

import (
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/modelio"
)

// ErrCorruptModel is returned (wrapped) by LoadPipeline when the stream's
// CRC32 integrity footer does not match its contents.
var ErrCorruptModel = errors.New("generic: model file corrupt (checksum mismatch)")

// Save serializes a trained pipeline (encoder configuration + model) to w
// in the library's versioned binary format — the software counterpart of
// the accelerator's config port. The encoder configuration includes the
// hypervector seed, so LoadPipeline reconstructs a pipeline whose
// predictions are bit-identical. The stream carries a CRC32 integrity
// footer that LoadPipeline verifies.
func (p *Pipeline) Save(w io.Writer) error {
	if err := p.trained("Save"); err != nil {
		return err
	}
	b := &modelio.Bundle{
		Kind: p.enc.Kind(), Cfg: p.enc.Config(), Model: p.model, Trainer: p.trainer,
	}
	// A binarized pipeline saves its counters plus the representation flag;
	// the packed class vectors are re-derived from the counter signs on load.
	if p.bmodel != nil {
		b.Binarized = true
		b.BinarizedFromBW = p.bmodel.SourceBW()
	}
	return modelio.Write(w, b)
}

// SaveFile is Save to a file path, through the crash-safe
// temp-fsync-rename protocol: the bytes land in a temporary file first and
// are renamed over path only after a successful fsync, so a crash mid-write
// (or a serialization error) leaves any previous model file at path intact
// instead of a truncated one.
func (p *Pipeline) SaveFile(path string) error {
	if err := p.trained("SaveFile"); err != nil {
		return err
	}
	return modelio.AtomicWriteFile(path, p.Save)
}

// LoadPipeline reconstructs a trained pipeline from a stream written by
// Save. Corrupt payloads (failing the CRC32 footer check) are rejected with
// an error wrapping ErrCorruptModel. Legacy footerless files (format
// version 1) still load; HasChecksum reports false for them — the "no
// checksum" note.
func LoadPipeline(r io.Reader) (*Pipeline, error) {
	b, err := modelio.Read(r)
	if err != nil {
		if errors.Is(err, modelio.ErrChecksum) {
			return nil, fmt.Errorf("%w: %v", ErrCorruptModel, err)
		}
		return nil, err
	}
	enc, err := encoding.New(b.Kind, b.Cfg)
	if err != nil {
		return nil, fmt.Errorf("generic: rebuilding encoder: %w", err)
	}
	if enc.D() != b.Model.D() {
		return nil, fmt.Errorf("generic: encoder D=%d does not match model D=%d", enc.D(), b.Model.D())
	}
	p := NewPipeline(enc, b.Model.Classes())
	p.model = b.Model
	p.trainer = b.Trainer
	p.hasChecksum = b.HasChecksum
	if b.Binarized {
		// Re-derive the packed representation and restore binary as the
		// pipeline's default inference mode, as at save time.
		if err := p.Binarize(); err != nil {
			return nil, fmt.Errorf("generic: rebinarizing loaded model: %w", err)
		}
	}
	return p, nil
}

// HasChecksum reports whether the model file this pipeline was loaded from
// carried (and passed) a CRC32 integrity footer. False for pipelines built
// in memory or loaded from legacy version-1 files, which predate the
// footer.
func (p *Pipeline) HasChecksum() bool { return p.hasChecksum }

// LoadPipelineFile is LoadPipeline from a file path.
func LoadPipelineFile(path string) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadPipeline(f)
}
