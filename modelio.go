package generic

import (
	"fmt"
	"io"
	"os"

	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/modelio"
)

// Save serializes a trained pipeline (encoder configuration + model) to w
// in the library's versioned binary format — the software counterpart of
// the accelerator's config port. The encoder configuration includes the
// hypervector seed, so LoadPipeline reconstructs a pipeline whose
// predictions are bit-identical.
func (p *Pipeline) Save(w io.Writer) error {
	p.mustBeTrained()
	return modelio.Write(w, &modelio.Bundle{Kind: p.enc.Kind(), Cfg: p.enc.Config(), Model: p.model})
}

// SaveFile is Save to a file path.
func (p *Pipeline) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadPipeline reconstructs a trained pipeline from a stream written by
// Save.
func LoadPipeline(r io.Reader) (*Pipeline, error) {
	b, err := modelio.Read(r)
	if err != nil {
		return nil, err
	}
	enc, err := encoding.New(b.Kind, b.Cfg)
	if err != nil {
		return nil, fmt.Errorf("generic: rebuilding encoder: %w", err)
	}
	if enc.D() != b.Model.D() {
		return nil, fmt.Errorf("generic: encoder D=%d does not match model D=%d", enc.D(), b.Model.D())
	}
	p := NewPipeline(enc, b.Model.Classes())
	p.model = b.Model
	return p, nil
}

// LoadPipelineFile is LoadPipeline from a file path.
func LoadPipelineFile(path string) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadPipeline(f)
}
