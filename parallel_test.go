package generic_test

import (
	"sync"
	"testing"

	generic "github.com/edge-hdc/generic"
)

// fitWorkers trains the same separable problem as trainXor with an
// explicit worker count.
func fitWorkers(t *testing.T, workers int) (*generic.Pipeline, [][]float64, []int) {
	t.Helper()
	var X [][]float64
	var Y []int
	for i := 0; i < 200; i++ {
		x := make([]float64, 32)
		c := i % 2
		base := 0
		if c == 1 {
			base = 16
		}
		for j := 0; j < 8; j++ {
			x[base+j] = 0.9
		}
		x[(i*7)%32] += 0.05
		X = append(X, x)
		Y = append(Y, c)
	}
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 512, Features: 32, Lo: 0, Hi: 1, UseID: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := generic.NewPipeline(enc, 2)
	if _, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 5, Seed: 1, Workers: workers}); err != nil {
		t.Fatal(err)
	}
	return p, X, Y
}

// The public determinism guarantee: Fit with any worker count yields a
// model bit-identical to the serial one.
func TestFitParallelBitIdentical(t *testing.T) {
	serial, X, Y := fitWorkers(t, 1)
	for _, workers := range []int{2, 4} {
		par, _, _ := fitWorkers(t, workers)
		sm, pm := serial.Model(), par.Model()
		for c := 0; c < sm.Classes(); c++ {
			sv, pv := sm.Class(c), pm.Class(c)
			for i := range sv {
				if sv[i] != pv[i] {
					t.Fatalf("workers=%d: class %d element %d differs", workers, c, i)
				}
			}
		}
		if sa, pa := must(serial.AccuracyWorkers(X, Y, 1)), must(par.AccuracyWorkers(X, Y, workers)); sa != pa {
			t.Fatalf("workers=%d: accuracy %v vs serial %v", workers, pa, sa)
		}
		want := must(serial.PredictBatch(X, 1))
		got := must(par.PredictBatch(X, workers))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: PredictBatch sample %d differs", workers, i)
			}
		}
	}
}

// Concurrent Predict/PredictReduced on one Pipeline must be safe (the
// encoder/scratch pool) and agree with the serial answers. Run under
// -race to verify the safety half.
func TestPredictConcurrentSafe(t *testing.T) {
	p, X, Y := fitWorkers(t, 1)
	want := make([]int, len(X))
	wantRed := make([]int, len(X))
	for i, x := range X {
		want[i] = must(p.Predict(x))
		wantRed[i] = must(p.PredictReduced(x, 256))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(X); i += 8 {
				if got := must(p.Predict(X[i])); got != want[i] {
					t.Errorf("concurrent Predict(%d) = %d, want %d", i, got, want[i])
					return
				}
				if got := must(p.PredictReduced(X[i], 256)); got != wantRed[i] {
					t.Errorf("concurrent PredictReduced(%d) = %d, want %d", i, got, wantRed[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	_ = Y
}

func TestEncodeWorkersMatchesSerial(t *testing.T) {
	_, X, _ := fitWorkers(t, 1)
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 512, Features: 32, Lo: 0, Hi: 1, UseID: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := generic.Encode(enc, X)
	got := generic.EncodeWorkers(enc, X, 4)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("encoded sample %d element %d differs", i, j)
			}
		}
	}
}

func TestClusterWorkersBitIdentical(t *testing.T) {
	cs, err := generic.LoadClusterSet("Iris", 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 1024, Features: cs.Features, Bins: 32, Lo: cs.Lo, Hi: cs.Hi,
		N: cs.Features, UseID: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	serial := generic.Cluster(enc, cs.X, cs.K, 5)
	par := generic.ClusterWorkers(enc, cs.X, cs.K, 5, 4)
	for i := range serial.Assignments {
		if par.Assignments[i] != serial.Assignments[i] {
			t.Fatalf("assignment %d differs: %d vs %d", i, par.Assignments[i], serial.Assignments[i])
		}
	}
}
