package generic_test

import (
	"fmt"

	generic "github.com/edge-hdc/generic"
)

// ExamplePipeline shows the minimal classify flow: build the GENERIC
// encoder, fit, predict.
func ExamplePipeline() {
	// Two classes: a pulse in the first half vs the second half.
	var X [][]float64
	var Y []int
	for i := 0; i < 40; i++ {
		x := make([]float64, 16)
		c := i % 2
		for j := 0; j < 4; j++ {
			x[c*8+j] = 1
		}
		X = append(X, x)
		Y = append(Y, c)
	}
	enc, _ := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 512, Features: 16, Lo: 0, Hi: 1, UseID: true, Seed: 1,
	})
	p := generic.NewPipeline(enc, 2)
	p.Fit(X, Y, generic.TrainOptions{Epochs: 3, Seed: 1})

	query := make([]float64, 16)
	query[9], query[10] = 1, 1 // pulse in the second half
	label, _ := p.Predict(query)
	fmt.Println(label)
	// Output: 1
}

// ExampleModel_PredictDims shows on-demand dimension reduction with the
// norm2 memory's sub-norms (§4.3.3).
func ExampleModel_PredictDims() {
	enc, _ := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 1024, Features: 8, Lo: 0, Hi: 1, Seed: 2,
	})
	X := [][]float64{
		{1, 1, 1, 1, 0, 0, 0, 0}, {0, 0, 0, 0, 1, 1, 1, 1},
		{1, 1, 1, 0.9, 0, 0, 0, 0}, {0, 0.1, 0, 0, 1, 1, 0.9, 1},
	}
	Y := []int{0, 1, 0, 1}
	m := generic.Train(generic.Encode(enc, X), Y, 2, generic.TrainOptions{Epochs: 2})

	h := generic.Encode(enc, X[:1])[0]
	full, _ := m.Predict(h)
	reduced, _ := m.PredictDims(h, 256, true) // a quarter of the dimensions
	fmt.Println(full, reduced)
	// Output: 0 0
}

// ExampleVOSForBER shows the voltage-over-scaling trade-off table (§4.3.4).
func ExampleVOSForBER() {
	p := generic.VOSForBER(0.01) // tolerate 1% class-memory bit errors
	fmt.Printf("static power ×%.2f, dynamic ×%.2f\n", p.StaticFactor, p.DynFactor)
	// Output: static power ×0.19, dynamic ×0.56
}

// ExampleSpec_Fill shows the class-memory occupancy that drives
// application-opportunistic power gating (§4.3.2).
func ExampleSpec_Fill() {
	spec := generic.Spec{D: 4096, Features: 128, N: 3, Classes: 2, BW: 16}
	fmt.Printf("fill %.1f%%, %.0f of 4 banks powered\n",
		100*spec.Fill(), 4*spec.ActiveBankFrac())
	// Output: fill 6.2%, 1 of 4 banks powered
}
