package generic_test

import (
	"errors"
	"strings"
	"testing"

	generic "github.com/edge-hdc/generic"
)

// must unwraps a (value, error) pair from the trained-pipeline API. A
// non-nil error is a test bug, so it fails loudly via panic (Go forbids
// passing a multi-value call alongside a *testing.T argument).
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func trainXor(t *testing.T) (*generic.Pipeline, [][]float64, []int) {
	t.Helper()
	// A small positional problem: class = which half of the input carries
	// the bump.
	var X [][]float64
	var Y []int
	for i := 0; i < 200; i++ {
		x := make([]float64, 32)
		c := i % 2
		base := 0
		if c == 1 {
			base = 16
		}
		for j := 0; j < 8; j++ {
			x[base+j] = 0.9
		}
		x[(i*7)%32] += 0.05 // mild noise
		X = append(X, x)
		Y = append(Y, c)
	}
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 512, Features: 32, Lo: 0, Hi: 1, UseID: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := generic.NewPipeline(enc, 2)
	if _, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return p, X, Y
}

func TestPipelineEndToEnd(t *testing.T) {
	p, X, Y := trainXor(t)
	if acc := must(p.Accuracy(X, Y)); acc < 0.99 {
		t.Errorf("pipeline accuracy = %.3f on a separable problem", acc)
	}
	if p.Model() == nil || p.Encoder() == nil {
		t.Error("accessors returned nil after Fit")
	}
}

func TestPipelineReducedAndQuantized(t *testing.T) {
	p, X, Y := trainXor(t)
	correct := 0
	for i, x := range X {
		if must(p.PredictReduced(x, 256)) == Y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(X)); frac < 0.95 {
		t.Errorf("reduced-dimension accuracy = %.3f", frac)
	}
	if err := p.Quantize(4); err != nil {
		t.Fatal(err)
	}
	if acc := must(p.Accuracy(X, Y)); acc < 0.95 {
		t.Errorf("4-bit accuracy = %.3f", acc)
	}
}

func TestPipelineErrorsBeforeFit(t *testing.T) {
	enc, _ := generic.NewEncoder(generic.LevelID, generic.EncoderConfig{
		D: 256, Features: 4, Lo: 0, Hi: 1, Seed: 1,
	})
	p := generic.NewPipeline(enc, 2)
	if _, err := p.Predict([]float64{0, 0, 0, 0}); !errors.Is(err, generic.ErrNotTrained) {
		t.Errorf("Predict before Fit: err = %v, want ErrNotTrained", err)
	}
	if _, err := p.PredictBatch([][]float64{{0, 0, 0, 0}}, 0); !errors.Is(err, generic.ErrNotTrained) {
		t.Errorf("PredictBatch before Fit: err = %v, want ErrNotTrained", err)
	}
	if _, err := p.PredictReduced([]float64{0, 0, 0, 0}, 128); !errors.Is(err, generic.ErrNotTrained) {
		t.Errorf("PredictReduced before Fit: err = %v, want ErrNotTrained", err)
	}
	if _, _, err := p.Adapt([]float64{0, 0, 0, 0}, 0); !errors.Is(err, generic.ErrNotTrained) {
		t.Errorf("Adapt before Fit: err = %v, want ErrNotTrained", err)
	}
	if _, err := p.Accuracy([][]float64{{0, 0, 0, 0}}, []int{0}); !errors.Is(err, generic.ErrNotTrained) {
		t.Errorf("Accuracy before Fit: err = %v, want ErrNotTrained", err)
	}
	if err := p.Quantize(4); !errors.Is(err, generic.ErrNotTrained) {
		t.Errorf("Quantize before Fit: err = %v, want ErrNotTrained", err)
	}
	if _, err := p.InjectFaults(generic.FaultSpec{Site: generic.FaultSiteClass, Kind: generic.FaultUniform, Rate: 0.01}); !errors.Is(err, generic.ErrNotTrained) {
		t.Errorf("InjectFaults before Fit: err = %v, want ErrNotTrained", err)
	}
	if _, err := p.Scrub(); !errors.Is(err, generic.ErrNotTrained) {
		t.Errorf("Scrub before Fit: err = %v, want ErrNotTrained", err)
	}
}

func TestTrainOnEncoded(t *testing.T) {
	enc, _ := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 256, Features: 8, Lo: 0, Hi: 1, Seed: 2,
	})
	X := [][]float64{
		{1, 1, 1, 1, 0, 0, 0, 0}, {0, 0, 0, 0, 1, 1, 1, 1},
		{1, 1, 1, 0.9, 0, 0, 0, 0.1}, {0.1, 0, 0, 0, 1, 0.9, 1, 1},
	}
	Y := []int{0, 1, 0, 1}
	encoded := generic.Encode(enc, X)
	m := generic.Train(encoded, Y, 2, generic.TrainOptions{Epochs: 3})
	for i, h := range encoded {
		if c, _ := m.Predict(h); c != Y[i] {
			t.Errorf("sample %d predicted %d, want %d", i, c, Y[i])
		}
	}
}

func TestClusterAPI(t *testing.T) {
	cs, err := generic.LoadClusterSet("Hepta", 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 1024, Features: cs.Features, Bins: 32, Lo: cs.Lo, Hi: cs.Hi,
		N: cs.Features, UseID: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := generic.Cluster(enc, cs.X, cs.K, 5)
	km := generic.KMeans(cs.X, cs.K, 100, 10, 3)
	if nmi := generic.NMI(res.Assignments, cs.Labels); nmi < 0.6 {
		t.Errorf("HDC clustering NMI = %.3f", nmi)
	}
	if nmi := generic.NMI(km.Assignments, cs.Labels); nmi < 0.9 {
		t.Errorf("k-means NMI = %.3f", nmi)
	}
}

func TestAcceleratorAPI(t *testing.T) {
	ds, err := generic.LoadDataset("EEG", 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := generic.Spec{
		D: 1024, Features: ds.Features, N: 3, Classes: ds.Classes,
		BW: 16, UseID: ds.UseID, Mode: generic.ModeTrain,
	}
	acc, err := generic.NewAccelerator(spec, 1, ds.Lo, ds.Hi)
	if err != nil {
		t.Fatal(err)
	}
	acc.Train(ds.TrainX[:100], ds.TrainY[:100], 3)
	pred := acc.InferAll(ds.TestX[:50])
	correct := 0
	for i, p := range pred {
		if p == ds.TestY[i] {
			correct++
		}
	}
	if correct < 30 {
		t.Errorf("accelerator accuracy %d/50 too low", correct)
	}
	rep := generic.Energy(acc.Stats(), generic.PowerConfig{
		ActiveBankFrac: spec.ActiveBankFrac(),
	})
	if rep.TotalJ <= 0 || rep.Seconds <= 0 {
		t.Errorf("degenerate energy report: %+v", rep)
	}
	// Voltage over-scaling must reduce energy.
	vos := generic.Energy(acc.Stats(), generic.PowerConfig{
		ActiveBankFrac: spec.ActiveBankFrac(), VOS: generic.VOSForBER(0.01),
	})
	if vos.TotalJ >= rep.TotalJ {
		t.Error("VOS did not reduce energy")
	}
}

func TestDatasetHelpers(t *testing.T) {
	if len(generic.Datasets()) != 11 {
		t.Errorf("Datasets() = %d names, want 11", len(generic.Datasets()))
	}
	if len(generic.ClusterSets()) != 5 {
		t.Errorf("ClusterSets() = %d names, want 5", len(generic.ClusterSets()))
	}
	if _, err := generic.LoadDataset("NOPE", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	ds, _ := generic.LoadDataset("PAGE", 1)
	if _, err := generic.EncoderForDataset(generic.Generic, ds, 512, 1); err != nil {
		t.Errorf("EncoderForDataset: %v", err)
	}
	if _, err := generic.EncoderForDataset(generic.Generic, nil, 512, 1); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	if _, err := generic.RunExperiment("nope", generic.QuickExperimentConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
	// fig7 is the cheapest experiment; use it to exercise the dispatcher.
	res, err := generic.RunExperiment("fig7", generic.QuickExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "class mem") {
		t.Error("fig7 rendering incomplete")
	}
	if len(generic.Experiments()) != 16 {
		t.Errorf("Experiments() = %d ids, want 16", len(generic.Experiments()))
	}
}
