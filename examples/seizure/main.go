// Seizure detection on EEG-like time series — the motivating edge workload
// of the paper's §3: a battery-powered wearable must flag seizure bursts
// that appear at unpredictable positions in the signal.
//
// The example shows why the GENERIC encoding matters: a burst is a *local*
// pattern, so global positional encodings (random projection) miss it,
// while GENERIC's windowed encoding — run id-less, as the paper prescribes
// for applications without global window order — catches it. It then moves
// the trained model onto the accelerator model and reports the energy of
// continuous monitoring.
//
//	go run ./examples/seizure
package main

import (
	"fmt"
	"log"

	generic "github.com/edge-hdc/generic"
)

func main() {
	ds, err := generic.LoadDataset("EEG", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EEG: %d train / %d test windows of %d samples\n",
		ds.TrainLen(), ds.TestLen(), ds.Features)

	// Compare the GENERIC encoding against random projection on the same
	// data — the Table 1 contrast this workload exists to show.
	for _, kind := range []generic.EncodingKind{generic.RP, generic.Generic} {
		enc, err := generic.EncoderForDataset(kind, ds, 4096, 7)
		if err != nil {
			log.Fatal(err)
		}
		p := generic.NewPipeline(enc, ds.Classes)
		if _, err := p.Fit(ds.TrainX, ds.TrainY, generic.TrainOptions{Epochs: 20, Seed: 7}); err != nil {
			log.Fatal(err)
		}
		acc, err := p.Accuracy(ds.TestX, ds.TestY)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v test accuracy: %.1f%%\n", kind, 100*acc)
	}

	// Deploy on the accelerator: train on-device, then measure the energy
	// of classifying the test stream with bank gating active.
	spec := generic.Spec{
		D: 4096, Features: ds.Features, N: 3, Classes: ds.Classes,
		BW: 16, UseID: ds.UseID, Mode: generic.ModeTrain,
	}
	acc, err := generic.NewAccelerator(spec, 7, ds.Lo, ds.Hi)
	if err != nil {
		log.Fatal(err)
	}
	acc.Train(ds.TrainX, ds.TrainY, 10)
	acc.ResetStats()
	preds := acc.InferAll(ds.TestX)
	correct := 0
	for i, p := range preds {
		if p == ds.TestY[i] {
			correct++
		}
	}
	rep := generic.Energy(acc.Stats(), generic.PowerConfig{
		ActiveBankFrac: spec.ActiveBankFrac(),
	})
	perInput := rep.TotalJ / float64(ds.TestLen())
	fmt.Printf("on-accelerator accuracy: %.1f%% | %.1f nJ and %.1f µs per window | avg power %.2f mW\n",
		100*float64(correct)/float64(ds.TestLen()),
		perInput*1e9, rep.Seconds/float64(ds.TestLen())*1e6, rep.AvgPowerW*1e3)

	// Year-long battery check (the paper's design goal): a 225 mAh coin
	// cell at 3 V holds ~2430 J. The budget is dominated by static power,
	// which bank gating cuts to ~0.09 mW.
	const coinCellJ = 2430.0
	windowsPerDay := 24.0 * 3600 / 2 // one 2-second window at a time
	staticW := generic.StaticPowerW(generic.PowerConfig{ActiveBankFrac: spec.ActiveBankFrac()})
	perDay := rep.DynamicJ/float64(ds.TestLen())*windowsPerDay + staticW*24*3600
	years := coinCellJ / (perDay * 365)
	fmt.Printf("continuous monitoring: ~%.1f years per coin cell (static %.2f mW dominates)\n",
		years, staticW*1e3)
}
