// Spoken-letter recognition (ISOLET-like) with IoT-gateway retraining —
// the paper's burst-inference scenario: a gateway first trains on-device,
// then serves inference bursts, trading dimensions for energy on demand
// (§4.3.3).
//
// The example sweeps the deployed dimensionality and shows the Fig. 5
// effect: with the norm2 memory's per-128-dimension sub-norms, accuracy
// holds far below the trained dimensionality; with stale full-model norms
// it collapses.
//
//	go run ./examples/isolet
package main

import (
	"fmt"
	"log"

	generic "github.com/edge-hdc/generic"
)

func main() {
	ds, err := generic.LoadDataset("ISOLET", 3)
	if err != nil {
		log.Fatal(err)
	}
	const d = 4096
	enc, err := generic.EncoderForDataset(generic.Generic, ds, d, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ISOLET: %d train / %d test, %d features, %d classes\n",
		ds.TrainLen(), ds.TestLen(), ds.Features, ds.Classes)

	// Train once at full dimensionality. The gateway bootstraps from a
	// small on-device training set (a tenth of the corpus) — the regime
	// where the dimension/accuracy trade-off is visible.
	boot := ds.TrainLen() / 10
	encoded := generic.Encode(enc, ds.TrainX[:boot])
	model := generic.Train(encoded, ds.TrainY[:boot], ds.Classes, generic.TrainOptions{Epochs: 20, Seed: 3})
	testH := generic.Encode(enc, ds.TestX)

	evalDims := func(dims int, updated bool) float64 {
		correct := 0
		for i, h := range testH {
			if c, _ := model.PredictDims(h, dims, updated); c == ds.TestY[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(testH))
	}

	fmt.Println("\ndims   updated-norms   constant-norms   rel. energy")
	for dims := 512; dims <= d; dims *= 2 {
		fmt.Printf("%4d   %6.1f%%         %6.1f%%          %.2f×\n",
			dims, 100*evalDims(dims, true), 100*evalDims(dims, false),
			float64(dims)/float64(d))
	}
	fmt.Println("\nwith sub-norms the gateway can serve bursts at 1K dims —")
	fmt.Println("4× less energy per query — and return to 4K when accuracy matters.")
	fmt.Println("(this synthetic ISOLET is dimension-tolerant; run the fig5 experiment")
	fmt.Println(" on EEG to see the constant-norm collapse the paper reports)")
}
