// Resilience sweep: bit errors in every persistent memory of the GENERIC
// accelerator, with and without the scrub-and-repair pass.
//
// The paper's robustness story (§4.3.4, Fig. 6) is that HDC models survive
// memory bit errors — that is what makes voltage over-scaling safe. This
// example stress-tests the claim memory by memory: uniform bit errors are
// injected into the class, level, id, and norm2 memories at increasing
// rates, accuracy is measured right after corruption and again after a
// scrub, and finally one whole striped class-memory bank is killed to show
// the masked model limping on 15/16 of its dimensions.
//
// Level and id memories recover exactly (their material regenerates from
// the config seed); the class memory relies on HDC's inherent tolerance
// plus CRC-guided quarantine/masking for structured damage.
//
//	go run ./examples/resilience            # table + resilience.json artifact
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	generic "github.com/edge-hdc/generic"
)

func main() {
	cfg := generic.QuickExperimentConfig()
	res, err := generic.RunExperiment("resilience", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())

	// The experiment result doubles as a BENCH-style machine-readable
	// artifact for tracking resilience regressions over time.
	if w, ok := res.(interface{ WriteJSON(io.Writer) error }); ok {
		f, err := os.Create("resilience.json")
		if err != nil {
			log.Fatal(err)
		}
		if err := w.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote resilience.json")
	}
}
