// Low-power deployment walk-through: stacking the paper's three §4.3
// energy-reduction techniques on the accelerator model and watching energy
// and accuracy move — the recipe behind the GENERIC-LP bars of Figure 9.
//
//   - application-opportunistic power gating (free: unused class-memory
//     banks are permanently off for a given application);
//
//   - on-demand dimension reduction (4× fewer dimensions with sub-norms);
//
//   - bit-width masking plus voltage over-scaling (quantized model +
//     SRAM supply scaled into the error-tolerant region).
//
//     go run ./examples/lowpower
package main

import (
	"fmt"
	"log"

	generic "github.com/edge-hdc/generic"
)

func main() {
	ds, err := generic.LoadDataset("FACE", 5)
	if err != nil {
		log.Fatal(err)
	}

	type step struct {
		label string
		d     int
		bw    int
		ber   float64
	}
	steps := []step{
		{"baseline (D=4K, 16b, nominal V)", 4096, 16, 0},
		{"+ dimension reduction (D=1K)", 1024, 16, 0},
		{"+ 4-bit model", 1024, 4, 0},
		{"+ voltage over-scaling (1% BER)", 1024, 4, 0.01},
	}

	fmt.Printf("FACE, %d features, %d classes — energy ladder:\n\n", ds.Features, ds.Classes)
	var baseline float64
	for _, s := range steps {
		// Train at 16-bit precision; the accelerator's mask unit quantizes
		// the model when a narrower bw is deployed (§4.3.4).
		spec := generic.Spec{
			D: s.d, Features: ds.Features, N: 3, Classes: ds.Classes,
			BW: 16, UseID: ds.UseID, Mode: generic.ModeTrain,
		}
		acc, err := generic.NewAccelerator(spec, 5, ds.Lo, ds.Hi)
		if err != nil {
			log.Fatal(err)
		}
		acc.Train(ds.TrainX, ds.TrainY, 10)
		if s.bw < 16 {
			acc.Model().Quantize(s.bw)
		}
		if s.ber > 0 {
			// Voltage over-scaling corrupts the class memories; HDC's
			// redundancy absorbs it (Fig. 6).
			acc.Model().InjectBitErrorsSeeded(s.ber, 99)
		}
		acc.ResetStats()
		preds := acc.InferAll(ds.TestX)
		correct := 0
		for i, p := range preds {
			if p == ds.TestY[i] {
				correct++
			}
		}
		pcfg := generic.PowerConfig{
			ActiveBankFrac: spec.ActiveBankFrac(), BW: s.bw,
		}
		if s.ber > 0 {
			pcfg.VOS = generic.VOSForBER(s.ber)
		}
		rep := generic.Energy(acc.Stats(), pcfg)
		perInput := rep.TotalJ / float64(ds.TestLen())
		if baseline == 0 {
			baseline = perInput
		}
		fmt.Printf("%-34s %8.1f nJ/input  (%.1f×)  accuracy %.1f%%\n",
			s.label, perInput*1e9, baseline/perInput,
			100*float64(correct)/float64(ds.TestLen()))
	}
}
