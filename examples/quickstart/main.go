// Quickstart: encode → train → predict with the GENERIC HDC pipeline.
//
// The task is a tiny positional one — decide which half of a 32-sample
// window carries a pulse — small enough to read in one sitting but enough
// to show the whole public API surface.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	generic "github.com/edge-hdc/generic"
)

func makeData(n int) (X [][]float64, Y []int) {
	for i := 0; i < n; i++ {
		x := make([]float64, 32)
		class := i % 2
		start := 4
		if class == 1 {
			start = 20
		}
		for j := 0; j < 8; j++ {
			x[start+j] = 0.8 + 0.1*float64((i+j)%3)
		}
		// A little background texture.
		for j := range x {
			x[j] += 0.05 * float64((i*13+j*7)%5) / 5
		}
		X = append(X, x)
		Y = append(Y, class)
	}
	return X, Y
}

func main() {
	trainX, trainY := makeData(200)
	testX, testY := makeData(61) // different phase → unseen samples

	// 1. Build the GENERIC encoder (Eq. 1 of the paper): windows of n=3,
	//    64 quantization levels, per-window id binding for global order.
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D:        2048, // hypervector dimensionality
		Features: 32,
		Lo:       0, Hi: 1, // quantization range
		UseID: true,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train: one-shot class bundling plus retraining epochs.
	p := generic.NewPipeline(enc, 2)
	if _, err := p.Fit(trainX, trainY, generic.TrainOptions{Epochs: 10, Seed: 42}); err != nil {
		log.Fatal(err)
	}

	// 3. Predict. The trained-pipeline API returns errors (a pipeline used
	//    before Fit reports generic.ErrNotTrained).
	acc, err := p.Accuracy(testX, testY)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy: %.1f%%\n", 100*acc)

	// 4. Edge deployments can trade accuracy for energy on demand: score
	//    only a prefix of the dimensions (the accelerator's on-demand
	//    dimension reduction) without retraining anything.
	correct := 0
	for i, x := range testX {
		pred, err := p.Predict(x, generic.WithDims(1024))
		if err != nil {
			log.Fatal(err)
		}
		if pred == testY[i] {
			correct++
		}
	}
	fmt.Printf("accuracy @ 1024 of 2048 dims: %.1f%%\n",
		100*float64(correct)/float64(len(testX)))

	// 5. For the cheapest inference, binarize: classes collapse to packed
	//    sign bits and prediction becomes XOR + popcount. Binarize switches
	//    the pipeline's default mode; WithMode selects per call when both
	//    representations matter.
	if err := p.Binarize(); err != nil {
		log.Fatal(err)
	}
	accBin, err := p.Accuracy(testX, testY) // binary mode is now the default
	if err != nil {
		log.Fatal(err)
	}
	accExact, err := p.Accuracy(testX, testY, generic.WithMode(generic.Exact))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy binarized: %.1f%% (exact counters still available: %.1f%%)\n",
		100*accBin, 100*accExact)
}
