// Unsupervised learning on edge: HDC clustering versus k-means on the FCPS
// geometry benchmarks and Iris (paper §5.3, Table 2, Figure 10).
//
// The example clusters each benchmark twice — in hyperspace with the
// GENERIC engine's copy-centroid algorithm, and with classical k-means —
// and reports external quality (normalized mutual information) alongside
// the accelerator's per-input energy for the HDC run.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	generic "github.com/edge-hdc/generic"
)

func main() {
	fmt.Println("dataset       k   HDC NMI  k-means NMI  accel energy/input")
	for _, name := range generic.ClusterSets() {
		cs, err := generic.LoadClusterSet(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		n := 3
		if cs.Features < n {
			n = cs.Features
		}

		// Software runs for quality.
		enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
			D: 4096, Features: cs.Features, Bins: 32, Lo: cs.Lo, Hi: cs.Hi,
			N: n, UseID: true, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		hdcRes := generic.Cluster(enc, cs.X, cs.K, 10)
		kmRes := generic.KMeans(cs.X, cs.K, 100, 10, 1)

		// Accelerator run for energy.
		spec := generic.Spec{
			D: 4096, Features: cs.Features, N: n, Classes: cs.K,
			BW: 16, UseID: true, Mode: generic.ModeCluster,
		}
		acc, err := generic.NewAccelerator(spec, 1, cs.Lo, cs.Hi)
		if err != nil {
			log.Fatal(err)
		}
		acc.ClusterFit(cs.X, 10)
		rep := generic.Energy(acc.Stats(), generic.PowerConfig{
			ActiveBankFrac: spec.ActiveBankFrac(),
		})
		perInput := rep.TotalJ / float64(len(cs.X)*11)

		fmt.Printf("%-12s %2d   %.3f    %.3f        %.3f µJ\n",
			cs.Name, cs.K,
			generic.NMI(hdcRes.Assignments, cs.Labels),
			generic.NMI(kmRes.Assignments, cs.Labels),
			perInput*1e6)
	}
}
