// Lifelong learning on an IoT gateway: the trainable-edge story of the
// paper (§1: "fast enough during training and burst inference, e.g., when
// it serves as an IoT gateway").
//
// A gateway classifies streaming activity windows (PAMAP2-like motion
// data). Mid-stream the sensor placement changes — a concept drift that
// breaks the deployed model. Because GENERIC supports on-device training,
// the gateway adapts from labelled feedback with single-sample updates
// (Model.Adapt); an inference-only accelerator would have to ship data to
// the cloud instead.
//
//	go run ./examples/gateway
package main

import (
	"fmt"
	"log"

	generic "github.com/edge-hdc/generic"
)

// must unwraps (value, error) results from the trained-pipeline API.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	ds, err := generic.LoadDataset("PAMAP2", 11)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := generic.EncoderForDataset(generic.Generic, ds, 4096, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy a model trained on the original sensor placement.
	p := generic.NewPipeline(enc, ds.Classes)
	must(p.Fit(ds.TrainX, ds.TrainY, generic.TrainOptions{Epochs: 10, Seed: 11}))
	fmt.Printf("deployed accuracy: %.1f%%\n", 100*must(p.Accuracy(ds.TestX, ds.TestY)))

	// The placement changes: simulate drift by negating and re-biasing the
	// signal (what flipping a body-worn IMU does to its axes).
	drift := func(x []float64) []float64 {
		y := make([]float64, len(x))
		for i, v := range x {
			y[i] = -v + 0.1
		}
		return y
	}
	driftedTest := make([][]float64, len(ds.TestX))
	for i, x := range ds.TestX {
		driftedTest[i] = drift(x)
	}
	fmt.Printf("after drift, before adaptation: %.1f%%\n",
		100*must(p.Accuracy(driftedTest, ds.TestY)))

	// Online recovery: the gateway receives labelled feedback and adapts
	// one sample at a time.
	for epoch := 0; epoch < 3; epoch++ {
		updates := 0
		for i, x := range ds.TrainX {
			_, up, err := p.Adapt(drift(x), ds.TrainY[i])
			if err != nil {
				log.Fatal(err)
			}
			if up {
				updates++
			}
		}
		fmt.Printf("adaptation epoch %d: %d/%d updates, drifted accuracy now %.1f%%\n",
			epoch+1, updates, len(ds.TrainX), 100*must(p.Accuracy(driftedTest, ds.TestY)))
	}
}
