package generic_test

import (
	"strings"
	"testing"

	generic "github.com/edge-hdc/generic"
)

// TestFitValidation pins the upfront shape checks: malformed training input
// is an error from Fit, never a panic from deep inside encoding or training.
func TestFitValidation(t *testing.T) {
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 256, Features: 4, Lo: 0, Hi: 1, UseID: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	good := [][]float64{{0, 0, 1, 1}, {1, 1, 0, 0}}
	cases := []struct {
		name    string
		classes int
		X       [][]float64
		Y       []int
		wantSub string
	}{
		{"empty set", 2, nil, nil, "empty training set"},
		{"length mismatch", 2, good, []int{0}, "2 samples vs 1 labels"},
		{"feature count", 2, [][]float64{{0, 0, 1}}, []int{0}, "has 3 features, encoder expects 4"},
		{"label high", 2, good, []int{0, 2}, "label 2 at sample 1 out of range"},
		{"label negative", 2, good, []int{-1, 0}, "label -1 at sample 0 out of range"},
		{"too few classes", 1, good, []int{0, 0}, "at least 2 classes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := generic.NewPipeline(enc, tc.classes)
			epochs, err := p.Fit(tc.X, tc.Y, generic.TrainOptions{Epochs: 2, Seed: 1})
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Fit err = %v, want substring %q", err, tc.wantSub)
			}
			if epochs != 0 {
				t.Errorf("failed Fit reported %d epochs", epochs)
			}
			if p.Model() != nil {
				t.Error("failed Fit installed a model")
			}
		})
	}
}

// TestFitReturnsEpochs checks the new return value: the number of retraining
// epochs actually run, bounded by the request.
func TestFitReturnsEpochs(t *testing.T) {
	p, X, Y := trainableProblem(t)
	epochs, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if epochs < 1 || epochs > 7 {
		t.Fatalf("Fit ran %d epochs, want within [1,7]", epochs)
	}
}

// TestOptionFormsMatchDeprecated proves the variadic-option entry points and
// the deprecated fixed-signature wrappers are the same computation.
func TestOptionFormsMatchDeprecated(t *testing.T) {
	p, X, Y := trainableProblem(t)
	if _, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 0} {
		newPreds, err := p.PredictAll(X, generic.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		oldPreds, err := p.PredictBatch(X, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range newPreds {
			if newPreds[i] != oldPreds[i] {
				t.Fatalf("workers=%d: PredictAll[%d]=%d, PredictBatch=%d",
					workers, i, newPreds[i], oldPreds[i])
			}
		}
		newAcc, err := p.Accuracy(X, Y, generic.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		oldAcc, err := p.AccuracyWorkers(X, Y, workers)
		if err != nil {
			t.Fatal(err)
		}
		if newAcc != oldAcc {
			t.Fatalf("workers=%d: Accuracy=%v, AccuracyWorkers=%v", workers, newAcc, oldAcc)
		}
	}
	// Default (no options) is the serial path.
	serial, err := p.PredictAll(X)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := p.PredictAll(X, generic.WithWorkers(1))
	for i := range serial {
		if serial[i] != one[i] {
			t.Fatalf("default PredictAll differs from WithWorkers(1) at %d", i)
		}
	}
}

// TestAccuracyLengthMismatch: the regularized Accuracy surfaces shape errors
// instead of silently misaligning.
func TestAccuracyLengthMismatch(t *testing.T) {
	p, X, Y := trainableProblem(t)
	if _, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Accuracy(X, Y[:len(Y)-1]); err == nil {
		t.Fatal("Accuracy accepted mismatched X/Y lengths")
	}
}

// TestPredictShapeValidation: a wrong feature width is an error at every
// inference entry point, not an encoding panic; Adapt also rejects labels
// outside the class range.
func TestPredictShapeValidation(t *testing.T) {
	p, X, Y := trainableProblem(t)
	if _, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	narrow := []float64{1, 2, 3}
	if _, err := p.Predict(narrow); err == nil || !strings.Contains(err.Error(), "features") {
		t.Errorf("Predict on narrow input: err = %v", err)
	}
	if _, err := p.PredictReduced(narrow, 256); err == nil || !strings.Contains(err.Error(), "features") {
		t.Errorf("PredictReduced on narrow input: err = %v", err)
	}
	if _, err := p.PredictAll([][]float64{X[0], narrow}); err == nil || !strings.Contains(err.Error(), "sample 1") {
		t.Errorf("PredictAll on narrow row: err = %v", err)
	}
	if _, err := p.Accuracy([][]float64{narrow}, []int{0}); err == nil || !strings.Contains(err.Error(), "features") {
		t.Errorf("Accuracy on narrow row: err = %v", err)
	}
	if _, _, err := p.Adapt(narrow, 0); err == nil || !strings.Contains(err.Error(), "features") {
		t.Errorf("Adapt on narrow input: err = %v", err)
	}
	if _, _, err := p.Adapt(X[0], 2); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("Adapt with label 2 of 2 classes: err = %v", err)
	}
	if _, _, err := p.Adapt(X[0], Y[0]); err != nil {
		t.Errorf("valid Adapt errored: %v", err)
	}
}

// trainableProblem builds an untrained two-class pipeline plus a linearly
// separable dataset for it.
func trainableProblem(t *testing.T) (*generic.Pipeline, [][]float64, []int) {
	t.Helper()
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 512, Features: 8, Lo: 0, Hi: 1, UseID: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var X [][]float64
	var Y []int
	for i := 0; i < 64; i++ {
		x := make([]float64, 8)
		c := i % 2
		for j := range x {
			if (j < 4) == (c == 0) {
				x[j] = 0.9
			} else {
				x[j] = 0.1
			}
		}
		X = append(X, x)
		Y = append(Y, c)
	}
	return generic.NewPipeline(enc, 2), X, Y
}
