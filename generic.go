// Package generic is a Go reproduction of GENERIC — the highly efficient
// hyperdimensional-computing (HDC) learning engine for the edge published
// at DAC 2022 (Khaleghi et al., DOI 10.1145/3489517.3530669).
//
// The package exposes four layers:
//
//   - Encoders (NewEncoder): the paper's windowed GENERIC encoding plus the
//     four baseline HDC encodings it is evaluated against (random
//     projection, level-id, ngram, permutation).
//   - Learning (Pipeline, Train, Cluster): HDC classification with
//     retraining, bit-width quantization, on-demand dimension reduction,
//     and k-centroid HDC clustering.
//   - Hardware (NewAccelerator): a cycle-level model of the GENERIC ASIC —
//     functional fixed-point inference with Mitchell-approximate scoring,
//     cycle/memory-access accounting, and the §4.3 energy-reduction levers
//     (bank power gating, voltage over-scaling, bit-width masking), with
//     area/power/energy models calibrated to the paper's 14 nm numbers.
//   - Experiments (Experiments, RunExperiment): harnesses that regenerate
//     every table and figure of the paper's evaluation.
//
// A minimal classification flow:
//
//	enc, _ := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
//		D: 4096, Features: 64, Lo: 0, Hi: 1, UseID: true, Seed: 1,
//	})
//	p := generic.NewPipeline(enc, nClasses)
//	epochs, err := p.Fit(trainX, trainY, generic.TrainOptions{Epochs: 20})
//	label, err := p.Predict(x)
//
// Batch entry points take variadic options: PredictAll(X) and
// Accuracy(X, Y) run serially, PredictAll(X, generic.WithWorkers(0)) fans
// out across GOMAXPROCS workers with bit-identical results.
//
// See the examples directory for runnable end-to-end scenarios and
// EXPERIMENTS.md for the paper-versus-measured record.
package generic

import (
	"errors"
	"fmt"
	"sync"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/cluster"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/faults"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/metrics"
	"github.com/edge-hdc/generic/internal/parallel"
	"github.com/edge-hdc/generic/internal/perf"
	"github.com/edge-hdc/generic/internal/power"
	"github.com/edge-hdc/generic/internal/quality"
	"github.com/edge-hdc/generic/internal/sim"
	"github.com/edge-hdc/generic/internal/trace"
)

// ErrNotTrained is returned (wrapped) by pipeline entry points used before
// Fit (or before loading a trained model).
var ErrNotTrained = errors.New("generic: pipeline used before Fit")

// ErrNotBinarized is returned (wrapped) when binary inference is requested —
// WithMode(Binary) — on a pipeline that has not made the mode transition via
// Binarize (or loaded a binarized model file).
var ErrNotBinarized = errors.New("generic: binary inference requested before Binarize")

// EncodingKind selects an HDC encoding family.
type EncodingKind = encoding.Kind

// The five encodings of the paper's Table 1.
const (
	RP      = encoding.RP
	LevelID = encoding.LevelID
	Ngram   = encoding.Ngram
	Permute = encoding.Permute
	Generic = encoding.Generic
)

// EncoderConfig parameterizes an encoder; zero fields take the paper's
// defaults (D=4096, Bins=64, N=3).
type EncoderConfig = encoding.Config

// Encoder maps feature vectors to integer hypervectors.
type Encoder = encoding.Encoder

// Hypervector is an integer hypervector (an encoded query or a class
// vector).
type Hypervector = hdc.Vec

// NewEncoder constructs an encoder of the given kind.
func NewEncoder(kind EncodingKind, cfg EncoderConfig) (Encoder, error) {
	return encoding.New(kind, cfg)
}

// Encode is a convenience that encodes a batch of inputs serially.
func Encode(e Encoder, X [][]float64) []Hypervector {
	return encoding.EncodeAll(e, X)
}

// EncodeWorkers encodes a batch across workers parallel encoders cloned
// from e's configuration (workers ≤ 0 means GOMAXPROCS, 1 is serial).
// Outputs are bit-identical to Encode.
func EncodeWorkers(e Encoder, X [][]float64, workers int) []Hypervector {
	return encoding.EncodeAllWorkers(e, X, workers)
}

// EncoderPool encodes batches concurrently (one encoder per worker, same
// hypervector material, bit-identical outputs).
type EncoderPool = encoding.Pool

// NewEncoderPool builds a concurrent encoding pool; workers ≤ 0 means
// GOMAXPROCS.
func NewEncoderPool(kind EncodingKind, cfg EncoderConfig, workers int) (*EncoderPool, error) {
	return encoding.NewPool(kind, cfg, workers)
}

// Model is a trained HDC classification model.
type Model = classifier.Model

// BinaryModel is the packed sign-binarized inference representation derived
// from a Model by Pipeline.Binarize: one bit per dimension per class, scored
// by Hamming distance.
type BinaryModel = classifier.BinaryModel

// TrainOptions configures HDC training; zero values take the paper's
// defaults (20 retraining epochs, 16-bit classes).
type TrainOptions = classifier.Options

// SubNormGranularity is the dimension granularity of the norm2 memory's
// sub-norms (on-demand dimension reduction, §4.3.3).
const SubNormGranularity = classifier.SubNormGranularity

// TrainResult reports what a training run did: which strategy ran, how many
// epochs, and the per-epoch update/loss trajectory.
type TrainResult = classifier.TrainResult

// EpochStat is one epoch's entry in a TrainResult.
type EpochStat = classifier.EpochStat

// Trainers returns the registered training-strategy names ("lehdc",
// "perceptron"), sorted. The empty name selects the default (perceptron).
func Trainers() []string { return classifier.TrainerNames() }

// Train builds a model from pre-encoded hypervectors.
func Train(encoded []Hypervector, labels []int, classes int, opt TrainOptions) *Model {
	m, _ := classifier.TrainEncoded(encoded, labels, classes, opt)
	return m
}

// Mode selects the inference representation for one call (see WithMode).
type Mode int

const (
	// Exact scores the integer class counters with the modified cosine
	// metric — the paper's full-precision datapath.
	Exact Mode = iota
	// Binary scores the packed sign-binarized model by Hamming distance
	// (XOR + popcount) with a binarized query — the BinHD-style limit case.
	// Requires a prior Pipeline.Binarize.
	Binary
)

// modeDefault makes a call follow the pipeline's current mode: Binary after
// Binarize, Exact otherwise.
const modeDefault Mode = -1

func (m Mode) String() string {
	switch m {
	case Exact:
		return "exact"
	case Binary:
		return "binary"
	case modeDefault:
		return "default"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Option configures one call to a Pipeline inference entry point (Predict,
// PredictAll, Accuracy, and their deprecated fixed-signature forms).
// Option is an opaque value (not a closure) so building and applying
// options never allocates — the single-sample binary Predict path runs at
// zero allocations per call, and the alloc-budget gate depends on that.
type Option struct {
	kind optKind
	v    int
}

type optKind uint8

const (
	optWorkers optKind = iota + 1
	optMode
	optDims
)

type callOpts struct {
	workers int
	mode    Mode
	dims    int
}

// WithWorkers fans the call's encoding and scoring across n workers (n ≤ 0
// means GOMAXPROCS). The default is 1 (serial); results are bit-identical
// for every worker count.
func WithWorkers(n int) Option {
	return Option{kind: optWorkers, v: n}
}

// WithMode selects the inference representation for this call: Exact forces
// the integer path, Binary the packed Hamming path (an error wrapping
// ErrNotBinarized if the pipeline was never binarized). Without WithMode a
// call follows the pipeline's current mode — Binary after Binarize, Exact
// otherwise.
func WithMode(m Mode) Option {
	return Option{kind: optMode, v: int(m)}
}

// WithDims scores only the first n dimensions — the accelerator's on-demand
// dimension reduction (§4.3.3) — rounded down to the sub-norm granularity
// (minimum one chunk) and clamped to D. Zero (the default) scores every
// dimension. The exact path uses the per-chunk sub-norms (the paper's
// "updated norms" fix); the binary path's prefix Hamming needs no norms.
func WithDims(n int) Option {
	return Option{kind: optDims, v: n}
}

func applyOpts(opts []Option) callOpts {
	o := callOpts{workers: 1, mode: modeDefault}
	for _, f := range opts {
		switch f.kind {
		case optWorkers:
			o.workers = f.v
		case optMode:
			o.mode = Mode(f.v)
		case optDims:
			o.dims = f.v
		}
	}
	return o
}

// resolveMode turns a call's requested mode into Exact or Binary, defaulting
// to the pipeline's current mode and validating that binary inference has a
// binarized model to run on.
func (p *Pipeline) resolveMode(op string, o callOpts) (Mode, error) {
	m := o.mode
	if m == modeDefault {
		m = p.mode
	}
	switch m {
	case Exact:
		return Exact, nil
	case Binary:
		if p.bmodel == nil {
			return 0, fmt.Errorf("generic: %s: %w", op, ErrNotBinarized)
		}
		return Binary, nil
	}
	return 0, fmt.Errorf("generic: %s: unknown inference mode %v", op, m)
}

// Pipeline couples an encoder with a model, providing the end-to-end API a
// downstream application uses.
//
// Concurrency: a trained pipeline is safe for concurrent Predict and the
// batch scoring methods, in either inference mode — each goroutine draws a
// private encoder clone plus scratch hypervectors from an internal pool
// (encoders carry scratch state, so sharing one across goroutines would
// corrupt encodings). Methods that mutate state — Fit, Adapt, Quantize,
// Binarize — require exclusive access.
type Pipeline struct {
	enc     Encoder
	model   *Model
	classes int
	// bmodel is the packed binary inference representation, built by
	// Binarize and kept in sync by the mutating entry points (Adapt
	// rebinarizes the touched classes; Quantize, Scrub, and class-site fault
	// injection rebinarize wholesale; Fit drops it — retraining is an
	// explicit transition back to Exact). mode is the pipeline's default
	// inference mode, overridable per call with WithMode.
	bmodel *classifier.BinaryModel
	mode   Mode
	// states pools per-goroutine (encoder clone, scratch) pairs so Predict
	// is safe and allocation-free under concurrency. Clones carry a
	// bit-exact copy of enc's current hypervector material (including any
	// injected faults), so every state produces bit-identical encodings.
	// The pool is replaced wholesale whenever the primary encoder's
	// material changes (fault injection, scrub) to drop stale clones.
	states *sync.Pool
	// faultCtl manages persistent fault state (lazily built; see
	// InjectFaults). hasChecksum records whether a loaded model file
	// carried an integrity footer.
	faultCtl    *faults.Controller
	hasChecksum bool
	// trainer is the pipeline's default training strategy, set by
	// WithTrainer (or recorded from a loaded model file). Fit uses it when
	// the call's TrainOptions leave Trainer empty; after a successful fit it
	// holds the strategy that actually trained the current model.
	trainer string
	// Model-quality observability (internal/quality). profile is the drift
	// reference captured at Fit/Binarize from calibX/calibY, a bounded
	// stride-subsample of the encoded training set retained for re-profiling
	// across mode transitions. All three are immutable once built and shared
	// (not deep-copied) across Clone — the serving layer clones per adapt,
	// and calibration data never mutates. shadowEvery > 0 samples one in
	// shadowEvery binary predicts through the retained integer counters to
	// track binary-vs-exact disagreement; it is configuration, set before
	// serving starts (SetShadowSampling requires exclusive access, like Fit).
	profile     *quality.Profile
	calibX      []hdc.Vec
	calibY      []int
	shadowEvery int
}

// pipeState is the per-goroutine working set of a Pipeline: an encoder
// clone (encoders are not concurrency-safe), a scratch hypervector, and a
// packed scratch vector for binarized queries.
type pipeState struct {
	enc     Encoder
	scratch Hypervector
	bin     *hdc.BinVec
}

// encodeBin writes the sign-binarized encoding of x into the state's packed
// scratch. Library encoders take their fused binarized path; a foreign
// encoder falls back to packing the signs of its integer encoding, which is
// the same bits by the BinaryEncoder contract.
func (st *pipeState) encodeBin(x []float64) {
	if be, ok := encoding.AsBinary(st.enc); ok {
		be.EncodeBin(x, st.bin)
		return
	}
	st.enc.Encode(x, st.scratch)
	st.bin.PackSigns(st.scratch)
}

// PipelineOption configures a Pipeline at construction.
type PipelineOption func(*Pipeline)

// WithTrainer sets the pipeline's default training strategy (see Trainers
// for the registered names). A per-call TrainOptions.Trainer still wins; an
// unknown name surfaces as an error from Fit, not here.
func WithTrainer(name string) PipelineOption {
	return func(p *Pipeline) { p.trainer = name }
}

// NewPipeline creates an untrained pipeline for the given class count.
func NewPipeline(enc Encoder, classes int, opts ...PipelineOption) *Pipeline {
	p := &Pipeline{enc: enc, classes: classes}
	for _, f := range opts {
		f(p)
	}
	p.resetStates()
	return p
}

// resetStates installs a fresh state pool. Clones prefer CloneMaterial (a
// bit-exact copy of the primary encoder's current material) so concurrent
// prediction observes injected faults; foreign encoders rebuild from their
// configuration. Called whenever pooled clones would go stale.
func (p *Pipeline) resetStates() {
	p.states = &sync.Pool{New: func() any {
		var clone Encoder
		if mc, ok := p.enc.(encoding.MaterialCloner); ok {
			clone = mc.CloneMaterial()
		} else {
			clone = encoding.MustNew(p.enc.Kind(), p.enc.Config())
		}
		return &pipeState{enc: clone, scratch: hdc.NewVec(p.enc.D()), bin: hdc.NewBinVec(p.enc.D())}
	}}
	// Seed the pool with the primary encoder so single-goroutine use never
	// builds a clone.
	p.states.Put(&pipeState{enc: p.enc, scratch: hdc.NewVec(p.enc.D()), bin: hdc.NewBinVec(p.enc.D())})
}

// Encoder returns the pipeline's encoder; Model its trained model (nil
// before Fit).
func (p *Pipeline) Encoder() Encoder { return p.enc }
func (p *Pipeline) Model() *Model    { return p.model }

// Fit encodes the training set and trains the model (initialization plus
// retraining, Fig. 1). The encoding and initialization phases fan out
// across opt.Workers workers (0 means GOMAXPROCS, 1 forces serial); the
// trained model is bit-identical for every worker count.
//
// Shapes are validated upfront — X and Y must be the same nonempty length,
// every sample must carry the encoder's feature count, and labels must lie
// in [0, classes) — so malformed input is an error here rather than a panic
// deep inside encoding or training. It returns the number of retraining
// epochs actually run (early convergence stops before opt.Epochs). For the
// full per-epoch trajectory use FitResult.
func (p *Pipeline) Fit(X [][]float64, Y []int, opt TrainOptions) (int, error) {
	res, err := p.FitResult(X, Y, opt)
	return res.EpochsRun, err
}

// FitResult is Fit returning the full training record: the strategy that
// ran, epochs completed, and per-epoch update counts, loss, and learning
// rate. When opt.Trainer is empty, the pipeline's WithTrainer default (or
// "perceptron") selects the strategy.
func (p *Pipeline) FitResult(X [][]float64, Y []int, opt TrainOptions) (TrainResult, error) {
	if err := p.validateFit(X, Y); err != nil {
		return TrainResult{}, err
	}
	if opt.Trainer == "" {
		opt.Trainer = p.trainer
	}
	sp := perf.Begin("pipeline.fit")
	esp := sp.Child("encode")
	encoded := encoding.EncodeAllWorkers(p.enc, X, opt.Workers)
	esp.End()
	tsp := sp.Child("train")
	m, res, err := classifier.Train(encoded, Y, p.classes, opt)
	tsp.End()
	sp.End()
	if err != nil {
		return TrainResult{}, err
	}
	p.model = m
	p.trainer = res.Trainer
	// Retraining replaces the model wholesale: the binary representation is
	// dropped (re-binarizing is an explicit transition) and a fault
	// controller's guard and mask state no longer apply.
	p.bmodel = nil
	p.mode = Exact
	p.faultCtl = nil
	p.captureCalibration(encoded, Y)
	return res, nil
}

// calibCap bounds the calibration subsample retained for quality profiling:
// enough samples for a stable margin distribution, small enough that a
// pipeline keeps O(calibCap·D) extra bytes, not the training set.
const calibCap = 256

// captureCalibration stride-subsamples the encoded training set and builds
// the drift reference profile for the current mode. The retained vectors
// are references into the encoded set (training never mutates them), so the
// rest of the set stays collectable.
func (p *Pipeline) captureCalibration(encoded []hdc.Vec, Y []int) {
	n := len(encoded)
	if n == 0 {
		p.calibX, p.calibY, p.profile = nil, nil, nil
		return
	}
	stride := (n + calibCap - 1) / calibCap
	cx := make([]hdc.Vec, 0, calibCap)
	cy := make([]int, 0, calibCap)
	for i := 0; i < n; i += stride {
		cx = append(cx, encoded[i])
		cy = append(cy, Y[i])
	}
	p.calibX, p.calibY = cx, cy
	p.reprofile()
}

// reprofile rebuilds the drift reference from the retained calibration
// subsample under the pipeline's current mode. Margins are not comparable
// across representations — binarizing both re-scores the calibration set
// through the packed path and rebases the reference. Pipelines without
// calibration data (loaded model files) keep a nil profile; the serving
// monitor bootstraps a baseline from the first healthy window instead.
func (p *Pipeline) reprofile() {
	if len(p.calibX) == 0 || p.model == nil {
		p.profile = nil
		return
	}
	margins := make([]float64, len(p.calibX))
	if p.mode == Binary && p.bmodel != nil {
		bv := hdc.NewBinVec(p.bmodel.D())
		for i, h := range p.calibX {
			bv.PackSigns(h)
			_, margins[i] = p.bmodel.MarginDims(bv, p.bmodel.D())
		}
		p.profile = quality.BuildProfile(margins, p.calibY, "binary")
		return
	}
	for i, h := range p.calibX {
		_, margins[i] = p.model.MarginDims(h, p.model.D())
	}
	p.profile = quality.BuildProfile(margins, p.calibY, "exact")
}

// Trainer returns the pipeline's training strategy: the name set via
// WithTrainer (or recorded in a loaded model file), updated after each fit
// to the strategy that actually trained the current model. Empty means the
// default (perceptron) and nothing has been trained or loaded yet.
func (p *Pipeline) Trainer() string { return p.trainer }

// Clone returns an independent deep copy of the pipeline: the model, the
// encoder's current hypervector material (bit-exact, including any injected
// faults), and the fault controller's guard/mask state. Clone is the
// snapshot hook of the serving layer's clone-modify-publish protocol —
// mutate the clone, then atomically publish it — so readers of the original
// never observe a half-applied mutation. Clone requires the same exclusive
// access as Fit/Adapt (it reads every piece of mutable state).
func (p *Pipeline) Clone() *Pipeline {
	c := &Pipeline{
		classes:     p.classes,
		trainer:     p.trainer,
		hasChecksum: p.hasChecksum,
		mode:        p.mode,
		// Quality state is immutable after capture: share, don't copy —
		// Clone runs on every serving adapt and must stay cheap.
		profile:     p.profile,
		calibX:      p.calibX,
		calibY:      p.calibY,
		shadowEvery: p.shadowEvery,
	}
	if mc, ok := p.enc.(encoding.MaterialCloner); ok {
		c.enc = mc.CloneMaterial()
	} else {
		c.enc = encoding.MustNew(p.enc.Kind(), p.enc.Config())
	}
	if p.model != nil {
		c.model = p.model.Clone()
	}
	if p.bmodel != nil {
		c.bmodel = p.bmodel.Clone()
	}
	if p.faultCtl != nil {
		c.faultCtl = p.faultCtl.CloneFor(c.model, c.enc)
	}
	c.resetStates()
	return c
}

// validateFit checks the training set's shape against the pipeline before
// any encoding work starts.
func (p *Pipeline) validateFit(X [][]float64, Y []int) error {
	if p.classes < 2 {
		return fmt.Errorf("generic: Fit: need at least 2 classes, pipeline has %d", p.classes)
	}
	if len(X) == 0 {
		return errors.New("generic: Fit: empty training set")
	}
	if len(X) != len(Y) {
		return fmt.Errorf("generic: Fit: %d samples vs %d labels", len(X), len(Y))
	}
	features := p.enc.Config().Features
	for i, row := range X {
		if len(row) != features {
			return fmt.Errorf("generic: Fit: sample %d has %d features, encoder expects %d", i, len(row), features)
		}
	}
	for i, y := range Y {
		if y < 0 || y >= p.classes {
			return fmt.Errorf("generic: Fit: label %d at sample %d out of range [0,%d)", y, i, p.classes)
		}
	}
	return nil
}

// checkFeatures validates one sample's width against the encoder, turning
// what would surface as an encoding panic into a caller error. A negative
// index means a single-sample entry point.
func (p *Pipeline) checkFeatures(op string, x []float64, i int) error {
	if want := p.enc.Config().Features; len(x) != want {
		if i >= 0 {
			return fmt.Errorf("generic: %s: sample %d has %d features, encoder expects %d", op, i, len(x), want)
		}
		return fmt.Errorf("generic: %s: input has %d features, encoder expects %d", op, len(x), want)
	}
	return nil
}

// Predict classifies one input. Safe for concurrent use on a trained
// pipeline. It returns ErrNotTrained (wrapped) before Fit, and an error on
// a feature-width mismatch. WithMode selects the inference representation
// (defaulting to the pipeline's current mode) and WithDims reduces the
// scored dimensions; a single sample has nothing to fan out, so WithWorkers
// has no effect here.
func (p *Pipeline) Predict(x []float64, opts ...Option) (int, error) {
	c, _, err := p.predictOne("Predict", x, opts)
	return c, err
}

// PredictMargin is Predict also returning the normalized top-2 confidence
// margin in [0,1] — the quality signal the scoring loop computes for free
// (score gap in Exact mode, Hamming gap over scored dimensions in Binary).
// Zero means the decision was a coin flip; serving surfaces the margin's
// rolling distribution on /quality.
func (p *Pipeline) PredictMargin(x []float64, opts ...Option) (int, float64, error) {
	return p.predictOne("PredictMargin", x, opts)
}

// predictOne is the validated single-sample core of Predict/PredictMargin.
func (p *Pipeline) predictOne(op string, x []float64, opts []Option) (int, float64, error) {
	if err := p.trained(op); err != nil {
		return 0, 0, err
	}
	if err := p.checkFeatures(op, x, -1); err != nil {
		return 0, 0, err
	}
	o := applyOpts(opts)
	mode, err := p.resolveMode(op, o)
	if err != nil {
		return 0, 0, err
	}
	dims := o.dims
	if dims <= 0 {
		dims = p.model.D()
	}
	sp := perf.Begin("pipeline.predict")
	st := p.states.Get().(*pipeState)
	esp := sp.Child("encode")
	var c int
	var margin float64
	if mode == Binary {
		st.encodeBin(x)
		esp.End()
		ssp := sp.Child("score")
		c, _, margin = p.bmodel.PredictDimsMargin(st.bin, dims)
		ssp.End()
		p.maybeShadow(st, x, dims, c)
	} else {
		st.enc.Encode(x, st.scratch)
		esp.End()
		ssp := sp.Child("score")
		c, _, margin = p.model.PredictDimsMargin(st.scratch, dims, true)
		ssp.End()
	}
	p.states.Put(st)
	sp.End()
	return c, margin, nil
}

// maybeShadow re-scores one in shadowEvery binary predicts through the
// retained integer counters and records whether the representations agree —
// the production cost probe of the binary fast path. The shadow score uses
// the non-observing MarginDims, so sampled predicts are not double-counted
// in the quality aggregates.
func (p *Pipeline) maybeShadow(st *pipeState, x []float64, dims, binPred int) {
	every := p.shadowEvery
	if every <= 0 || p.model == nil {
		return
	}
	if quality.ShadowTick()%int64(every) != 0 {
		return
	}
	st.enc.Encode(x, st.scratch)
	ec, _ := p.model.MarginDims(st.scratch, dims)
	quality.ObserveShadow(ec == binPred)
}

// SetShadowSampling enables shadow-mode disagreement tracking: every'th
// binary predict (globally across goroutines) is re-scored through the
// retained integer counters, feeding the shadow series of /quality and
// /metrics. Zero or negative disables. Configuration, not a hot-path
// control: call it before serving starts, with the same exclusive access as
// Fit (Clone propagates it to snapshots).
func (p *Pipeline) SetShadowSampling(every int) {
	if every < 0 {
		every = 0
	}
	p.shadowEvery = every
}

// ShadowEvery returns the shadow-sampling interval (0: disabled).
func (p *Pipeline) ShadowEvery() int { return p.shadowEvery }

// QualityProfile is the drift reference distribution captured at
// Fit/Binarize: the bucketed margin distribution and class priors the
// serving monitor compares rolling windows against (see internal/quality).
type QualityProfile = quality.Profile

// QualityProfile returns the drift reference profile captured at
// Fit/Binarize, or nil when the pipeline carries no calibration data (e.g.
// loaded from a model file) — the serving monitor then bootstraps a
// baseline from the first healthy window.
func (p *Pipeline) QualityProfile() *QualityProfile { return p.profile }

// PredictAll classifies a batch of inputs, returning predictions in input
// order. Encoding and scoring fan out across WithWorkers(n) workers
// (default serial); WithMode and WithDims select the representation and
// scored dimensions as in Predict. Predictions are bit-identical to calling
// Predict per input for every worker count.
func (p *Pipeline) PredictAll(X [][]float64, opts ...Option) ([]int, error) {
	dst := make([]int, len(X))
	if err := p.PredictAllInto(dst, X, opts...); err != nil {
		return nil, err
	}
	return dst, nil
}

// PredictAllInto is PredictAll writing predictions into a caller-provided
// slice of len(X) — the steady-state zero-allocation batch path: in Binary
// mode each worker streams its contiguous chunk through pooled scratch
// (packed query in, label out) and no per-sample hypervector is ever
// materialized.
func (p *Pipeline) PredictAllInto(dst []int, X [][]float64, opts ...Option) error {
	if err := p.trained("PredictAllInto"); err != nil {
		return err
	}
	if len(dst) != len(X) {
		return fmt.Errorf("generic: PredictAllInto: dst length %d, want %d", len(dst), len(X))
	}
	for i, x := range X {
		if err := p.checkFeatures("PredictAllInto", x, i); err != nil {
			return err
		}
	}
	o := applyOpts(opts)
	mode, err := p.resolveMode("PredictAllInto", o)
	if err != nil {
		return err
	}
	p.predictAllInto(dst, X, mode, o)
	return nil
}

// predictAllInto is the validated core of the batch predictors.
func (p *Pipeline) predictAllInto(dst []int, X [][]float64, mode Mode, o callOpts) {
	dims := o.dims
	if dims <= 0 {
		dims = p.model.D()
	}
	sp := perf.Begin("pipeline.predict_all")
	defer sp.End()
	if mode == Binary {
		w := parallel.Workers(o.workers)
		if w > len(X) {
			w = len(X)
		}
		if w <= 1 {
			// Serial fast path without the chunk closure: with a warm state
			// pool the steady-state batch allocates nothing.
			st := p.states.Get().(*pipeState)
			for i, x := range X {
				st.encodeBin(x)
				dst[i], _ = p.bmodel.PredictDims(st.bin, dims)
				p.maybeShadow(st, x, dims, dst[i])
			}
			p.states.Put(st)
			return
		}
		parallel.ForChunks(w, len(X), func(_, lo, hi int) {
			st := p.states.Get().(*pipeState)
			for i := lo; i < hi; i++ {
				st.encodeBin(X[i])
				dst[i], _ = p.bmodel.PredictDims(st.bin, dims)
				p.maybeShadow(st, X[i], dims, dst[i])
			}
			p.states.Put(st)
		})
		return
	}
	encoded := encoding.EncodeAllWorkers(p.enc, X, o.workers)
	copy(dst, p.model.PredictDimsBatch(encoded, dims, true, o.workers))
}

// PredictBatch classifies a batch of inputs across workers workers (≤ 0
// means GOMAXPROCS, 1 is serial), returning predictions in input order.
//
// Deprecated: use PredictAll with WithWorkers. generic-lint's depapi check
// flags in-repo callers of this form.
func (p *Pipeline) PredictBatch(X [][]float64, workers int) ([]int, error) {
	return p.PredictAll(X, WithWorkers(workers))
}

// PredictReduced classifies using only the first dims dimensions with the
// updated sub-norms — the accelerator's on-demand dimension reduction.
// Safe for concurrent use on a trained pipeline.
//
// Deprecated: use Predict with WithDims (add WithMode(Exact) to pin the
// historical representation on a binarized pipeline). generic-lint's depapi
// check flags in-repo callers of this form.
func (p *Pipeline) PredictReduced(x []float64, dims int) (int, error) {
	return p.Predict(x, WithDims(dims), WithMode(Exact))
}

// Adapt performs one online-learning step: classify x and, when the
// prediction disagrees with label, apply the retraining update. It returns
// the pre-update prediction and whether the model changed — the streaming
// lifelong-learning path of the paper's IoT-gateway scenario. Adapt mutates
// the model and therefore requires exclusive access.
func (p *Pipeline) Adapt(x []float64, label int) (pred int, updated bool, err error) {
	if err := p.trained("Adapt"); err != nil {
		return 0, false, err
	}
	if err := p.checkFeatures("Adapt", x, -1); err != nil {
		return 0, false, err
	}
	if label < 0 || label >= p.classes {
		return 0, false, fmt.Errorf("generic: Adapt: label %d out of range [0,%d)", label, p.classes)
	}
	sp := perf.Begin("pipeline.adapt")
	st := p.states.Get().(*pipeState)
	st.enc.Encode(x, st.scratch)
	pred, updated = p.model.Adapt(st.scratch, label)
	p.states.Put(st)
	sp.End()
	if updated {
		if p.bmodel != nil {
			// The update touched exactly the mispredicted and correct
			// classes; re-derive just their packed vectors.
			p.bmodel.RebinarizeClass(p.model, pred)
			p.bmodel.RebinarizeClass(p.model, label)
		}
		p.invalidateGuard()
	}
	return pred, updated, nil
}

// accuracyBlock bounds how many samples Accuracy encodes at once, so
// scoring a large set streams through a constant memory footprint instead
// of materializing every hypervector.
const accuracyBlock = 2048

// Accuracy scores the pipeline on a labelled set. Encoding and scoring fan
// out across WithWorkers(n) workers (default serial), with WithMode and
// WithDims selecting the representation and scored dimensions; samples
// stream through in bounded blocks, and the result is bit-identical for
// every worker count. X and Y must be the same length.
func (p *Pipeline) Accuracy(X [][]float64, Y []int, opts ...Option) (float64, error) {
	if err := p.trained("Accuracy"); err != nil {
		return 0, err
	}
	if len(X) != len(Y) {
		return 0, fmt.Errorf("generic: Accuracy: %d samples vs %d labels", len(X), len(Y))
	}
	if len(X) == 0 {
		return 0, nil
	}
	for i, x := range X {
		if err := p.checkFeatures("Accuracy", x, i); err != nil {
			return 0, err
		}
	}
	o := applyOpts(opts)
	mode, err := p.resolveMode("Accuracy", o)
	if err != nil {
		return 0, err
	}
	preds := make([]int, accuracyBlock)
	correct := 0
	for lo := 0; lo < len(X); lo += accuracyBlock {
		hi := lo + accuracyBlock
		if hi > len(X) {
			hi = len(X)
		}
		blk := preds[:hi-lo]
		p.predictAllInto(blk, X[lo:hi], mode, o)
		for i, pred := range blk {
			if pred == Y[lo+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(X)), nil
}

// AccuracyWorkers scores the pipeline on a labelled set with encoding and
// scoring fanned across workers workers (≤ 0 means GOMAXPROCS).
//
// Deprecated: use Accuracy with WithWorkers. generic-lint's depapi check
// flags in-repo callers of this form.
func (p *Pipeline) AccuracyWorkers(X [][]float64, Y []int, workers int) (float64, error) {
	return p.Accuracy(X, Y, WithWorkers(workers))
}

// Quantize reduces the model's class bit-width (the accelerator's bw input).
//
// Deprecated: for training-time widths set TrainOptions.BW; for binary
// inference make the explicit mode transition with Binarize, which keeps the
// integer counters for continued adaptation instead of destructively
// collapsing them. generic-lint's depapi check flags in-repo callers of this
// form.
func (p *Pipeline) Quantize(bw int) error {
	if err := p.trained("Quantize"); err != nil {
		return err
	}
	p.model.Quantize(bw)
	if p.bmodel != nil {
		p.bmodel = classifier.Binarize(p.model)
	}
	p.invalidateGuard()
	return nil
}

// Binarize derives the packed binary inference representation from the
// trained integer model and switches the pipeline's default inference mode
// to Binary — the explicit mode transition of the inference-mode API. The
// integer counters are retained: Adapt keeps learning on them (rebinarizing
// the classes it touches), and WithMode(Exact) still scores them directly.
// Requires exclusive access, like Fit.
func (p *Pipeline) Binarize() error {
	if err := p.trained("Binarize"); err != nil {
		return err
	}
	p.bmodel = classifier.Binarize(p.model)
	p.mode = Binary
	// The margin distribution changes representation with the mode; rebase
	// the drift reference on the retained calibration subsample (no-op when
	// none exists, e.g. a loaded model file).
	p.reprofile()
	return nil
}

// Binarized reports whether the pipeline carries a binary model (and thus
// defaults to Binary mode). Mode returns the pipeline's default inference
// mode, as set by Binarize / Fit and overridable per call with WithMode.
func (p *Pipeline) Binarized() bool { return p.bmodel != nil }
func (p *Pipeline) Mode() Mode      { return p.mode }

// BinaryModel returns the pipeline's packed binary model (nil before
// Binarize).
func (p *Pipeline) BinaryModel() *BinaryModel { return p.bmodel }

// trained guards the exported entry points: using a pipeline before Fit is
// a caller error reported as a wrapped ErrNotTrained, not a panic (panics
// remain reserved for internal invariants).
func (p *Pipeline) trained(op string) error {
	if p.model == nil {
		return fmt.Errorf("generic: %s: %w", op, ErrNotTrained)
	}
	return nil
}

// invalidateGuard drops the fault controller's class-memory CRC reference
// after a legitimate model mutation.
func (p *Pipeline) invalidateGuard() {
	if p.faultCtl != nil {
		p.faultCtl.InvalidateGuard()
	}
}

// ---------------------------------------------------------------------------
// Fault injection & self-repair (see internal/faults).

// FaultSpec describes one reproducible fault process; FaultSite selects the
// targeted Fig. 4 memory and FaultModel the corruption model.
type FaultSpec = faults.Spec

// FaultSite identifies an accelerator memory.
type FaultSite = faults.Site

// The injectable fault sites. Input and datapath faults are transient and
// only exist on the Accelerator (the software pipeline has no input memory
// or adder tree).
const (
	FaultSiteClass = faults.SiteClass
	FaultSiteLevel = faults.SiteLevel
	FaultSiteID    = faults.SiteID
	FaultSiteNorm  = faults.SiteNorm
	FaultSiteInput = faults.SiteInput
	FaultSiteDP    = faults.SiteDatapath
)

// FaultModel selects a corruption model.
type FaultModel = faults.Kind

// The fault models.
const (
	FaultUniform  = faults.Uniform
	FaultStuckAt0 = faults.StuckAt0
	FaultStuckAt1 = faults.StuckAt1
	FaultBurst    = faults.Burst
	FaultBankFail = faults.BankFail
)

// FaultHealth summarizes injected-fault state; FaultScrubReport one
// scrub-and-repair pass.
type FaultHealth = faults.Health

// FaultScrubReport summarizes a Scrub pass.
type FaultScrubReport = faults.ScrubReport

// ParseFaultSite and ParseFaultModel parse the CLI names ("class", "level",
// …; "uniform", "stuck0", …).
func ParseFaultSite(s string) (FaultSite, error)   { return faults.ParseSite(s) }
func ParseFaultModel(s string) (FaultModel, error) { return faults.ParseKind(s) }

// faultController lazily builds the pipeline's fault controller.
func (p *Pipeline) faultController() *faults.Controller {
	if p.faultCtl == nil {
		p.faultCtl = faults.NewController(p.model, p.enc)
	}
	return p.faultCtl
}

// InjectFaults applies one persistent fault spec (class, level, id, or norm
// site) to the trained pipeline and returns the number of bits changed.
// Same spec, same state ⇒ bit-identical corruption. Input/datapath sites
// are transient and only exist on the Accelerator. Requires exclusive
// access, like Fit.
func (p *Pipeline) InjectFaults(spec FaultSpec) (int, error) {
	if err := p.trained("InjectFaults"); err != nil {
		return 0, err
	}
	n, err := p.faultController().Inject(spec)
	if err != nil {
		return n, err
	}
	if spec.Site == faults.SiteLevel || spec.Site == faults.SiteID {
		// Pooled encoder clones predate the corruption; rebuild them from
		// the primary encoder's now-corrupted material.
		p.resetStates()
	}
	if spec.Site == faults.SiteClass && p.bmodel != nil {
		// The binary model mirrors the integer counters; corrupted counters
		// re-binarize so both representations see the same damage. (The
		// resilience experiment additionally injects into the packed words
		// directly, via faults.BinaryClassMem.)
		p.bmodel = classifier.Binarize(p.model)
	}
	return n, nil
}

// Scrub runs the detection-and-repair pass: level/id material regenerates
// from the stored seed, CRC-guarded class memory masks dead lanes and
// quarantines unrecoverable rows, and norms are recomputed. See
// FaultScrubReport for what was repaired.
func (p *Pipeline) Scrub() (FaultScrubReport, error) {
	if err := p.trained("Scrub"); err != nil {
		return FaultScrubReport{}, err
	}
	sp := perf.Begin("pipeline.scrub")
	rep := p.faultController().Scrub()
	p.resetStates()
	if p.bmodel != nil {
		p.bmodel = classifier.Binarize(p.model)
	}
	sp.End()
	return rep, nil
}

// Health reports the pipeline's current fault state.
func (p *Pipeline) Health() (FaultHealth, error) {
	if err := p.trained("Health"); err != nil {
		return FaultHealth{}, err
	}
	return p.faultController().Health(), nil
}

// ClusterResult is the outcome of HDC clustering.
type ClusterResult = cluster.HDCResult

// Cluster runs k-centroid HDC clustering over raw inputs using the given
// encoder (§2.1/§4.2.3), serially.
func Cluster(enc Encoder, X [][]float64, k, epochs int) *ClusterResult {
	return ClusterWorkers(enc, X, k, epochs, 1)
}

// ClusterWorkers is Cluster with encoding and the per-epoch assignment
// scans fanned across workers workers (≤ 0 means GOMAXPROCS, 1 is serial).
// Assignments and centroids are bit-identical to Cluster: within an epoch
// the centroid model is frozen, so workers score independently and their
// partial centroid bundles merge in worker order.
func ClusterWorkers(enc Encoder, X [][]float64, k, epochs, workers int) *ClusterResult {
	encoded := encoding.EncodeAllWorkers(enc, X, workers)
	return cluster.HDCWorkers(encoded, k, epochs, workers)
}

// KMeans exposes the classical baseline clusterer (Lloyd's algorithm with
// k-means++ seeding and restarts).
func KMeans(X [][]float64, k, maxIter, restarts int, seed uint64) *cluster.KMeansResult {
	return cluster.KMeansBest(X, k, maxIter, restarts, seed)
}

// NMI is the normalized mutual information between two labelings.
func NMI(a, b []int) float64 { return metrics.NMI(a, b) }

// ---------------------------------------------------------------------------
// Hardware model.

// Spec mirrors the accelerator's spec port (§4.1).
type Spec = sim.Spec

// Accelerator is the cycle-level model of the GENERIC ASIC.
type Accelerator = sim.Accelerator

// Stats is the accelerator's activity accounting.
type Stats = sim.Stats

// Hardware operation modes.
const (
	ModeInference = sim.Inference
	ModeTrain     = sim.Train
	ModeCluster   = sim.Cluster
)

// NewAccelerator builds an accelerator with the given quantization range.
func NewAccelerator(spec Spec, seed uint64, lo, hi float64) (*Accelerator, error) {
	return sim.NewWithRange(spec, seed, lo, hi)
}

// PowerConfig selects the energy-reduction state for Energy.
type PowerConfig = power.Config

// EnergyReport is the energy accounting of a simulated workload.
type EnergyReport = power.Report

// Energy turns accelerator statistics into joules under the given
// configuration (gating, voltage over-scaling, bit-width masking).
func Energy(st Stats, cfg PowerConfig) EnergyReport {
	return power.Energy(st, cfg)
}

// VOSForBER returns the voltage-over-scaling operating point for a target
// class-memory bit-error rate (§4.3.4).
func VOSForBER(ber float64) power.VOSPoint { return power.VOSForBER(ber) }

// StaticPowerW returns the accelerator's static power in watts under the
// given gating/voltage configuration (0.25 mW worst case; ~0.09 mW at the
// benchmarks' average bank occupancy).
func StaticPowerW(cfg PowerConfig) float64 { return power.StaticPowerW(cfg) }

// ActivityTimeline records the accelerator's per-phase activity when
// installed via Accelerator.SetTracer; it renders utilization summaries,
// ASCII occupancy strips, and VCD waveforms.
type ActivityTimeline = trace.Timeline

// ---------------------------------------------------------------------------
// Benchmarks.

// Dataset is a synthetic classification benchmark (see internal/dataset for
// the construction each benchmark uses).
type Dataset = dataset.Dataset

// ClusterSet is a synthetic clustering benchmark.
type ClusterSet = dataset.ClusterSet

// Datasets returns the names of the eleven classification benchmarks of
// Table 1; ClusterSets the clustering benchmarks of Table 2 / Figure 10.
func Datasets() []string    { return dataset.Names() }
func ClusterSets() []string { return dataset.ClusterNames() }

// LoadDataset generates the named classification benchmark.
func LoadDataset(name string, seed uint64) (*Dataset, error) {
	return dataset.Load(name, seed)
}

// LoadClusterSet generates the named clustering benchmark.
func LoadClusterSet(name string, seed uint64) (*ClusterSet, error) {
	return dataset.LoadCluster(name, seed)
}

// CSVOptions controls parsing of labelled CSV data (label column +
// float features), the format cmd/generic-datagen emits.
type CSVOptions = dataset.CSVOptions

// LoadCSV parses a labelled CSV file into a Dataset, so the pipeline can
// run on real data alongside the synthetic benchmarks.
func LoadCSV(path string, opt CSVOptions) (*Dataset, error) {
	return dataset.LoadCSVFile(path, opt)
}

// EncoderForDataset builds the encoder configuration the experiments use
// for a benchmark: the paper's defaults with the dataset's quantization
// range and its prescribed id setting.
func EncoderForDataset(kind EncodingKind, ds *Dataset, d int, seed uint64) (Encoder, error) {
	if ds == nil {
		return nil, fmt.Errorf("generic: nil dataset")
	}
	n := 3
	if ds.Features < n {
		n = ds.Features
	}
	return encoding.New(kind, encoding.Config{
		D: d, Features: ds.Features, Bins: 64, Lo: ds.Lo, Hi: ds.Hi,
		N: n, UseID: ds.UseID, Seed: seed,
	})
}
