// Package generic is a Go reproduction of GENERIC — the highly efficient
// hyperdimensional-computing (HDC) learning engine for the edge published
// at DAC 2022 (Khaleghi et al., DOI 10.1145/3489517.3530669).
//
// The package exposes four layers:
//
//   - Encoders (NewEncoder): the paper's windowed GENERIC encoding plus the
//     four baseline HDC encodings it is evaluated against (random
//     projection, level-id, ngram, permutation).
//   - Learning (Pipeline, Train, Cluster): HDC classification with
//     retraining, bit-width quantization, on-demand dimension reduction,
//     and k-centroid HDC clustering.
//   - Hardware (NewAccelerator): a cycle-level model of the GENERIC ASIC —
//     functional fixed-point inference with Mitchell-approximate scoring,
//     cycle/memory-access accounting, and the §4.3 energy-reduction levers
//     (bank power gating, voltage over-scaling, bit-width masking), with
//     area/power/energy models calibrated to the paper's 14 nm numbers.
//   - Experiments (Experiments, RunExperiment): harnesses that regenerate
//     every table and figure of the paper's evaluation.
//
// A minimal classification flow:
//
//	enc, _ := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
//		D: 4096, Features: 64, Lo: 0, Hi: 1, UseID: true, Seed: 1,
//	})
//	p := generic.NewPipeline(enc, nClasses)
//	p.Fit(trainX, trainY, generic.TrainOptions{Epochs: 20})
//	label := p.Predict(x)
//
// See the examples directory for runnable end-to-end scenarios and
// EXPERIMENTS.md for the paper-versus-measured record.
package generic

import (
	"fmt"
	"sync"

	"github.com/edge-hdc/generic/internal/classifier"
	"github.com/edge-hdc/generic/internal/cluster"
	"github.com/edge-hdc/generic/internal/dataset"
	"github.com/edge-hdc/generic/internal/encoding"
	"github.com/edge-hdc/generic/internal/hdc"
	"github.com/edge-hdc/generic/internal/metrics"
	"github.com/edge-hdc/generic/internal/power"
	"github.com/edge-hdc/generic/internal/sim"
	"github.com/edge-hdc/generic/internal/trace"
)

// EncodingKind selects an HDC encoding family.
type EncodingKind = encoding.Kind

// The five encodings of the paper's Table 1.
const (
	RP      = encoding.RP
	LevelID = encoding.LevelID
	Ngram   = encoding.Ngram
	Permute = encoding.Permute
	Generic = encoding.Generic
)

// EncoderConfig parameterizes an encoder; zero fields take the paper's
// defaults (D=4096, Bins=64, N=3).
type EncoderConfig = encoding.Config

// Encoder maps feature vectors to integer hypervectors.
type Encoder = encoding.Encoder

// Hypervector is an integer hypervector (an encoded query or a class
// vector).
type Hypervector = hdc.Vec

// NewEncoder constructs an encoder of the given kind.
func NewEncoder(kind EncodingKind, cfg EncoderConfig) (Encoder, error) {
	return encoding.New(kind, cfg)
}

// Encode is a convenience that encodes a batch of inputs serially.
func Encode(e Encoder, X [][]float64) []Hypervector {
	return encoding.EncodeAll(e, X)
}

// EncodeWorkers encodes a batch across workers parallel encoders cloned
// from e's configuration (workers ≤ 0 means GOMAXPROCS, 1 is serial).
// Outputs are bit-identical to Encode.
func EncodeWorkers(e Encoder, X [][]float64, workers int) []Hypervector {
	return encoding.EncodeAllWorkers(e, X, workers)
}

// EncoderPool encodes batches concurrently (one encoder per worker, same
// hypervector material, bit-identical outputs).
type EncoderPool = encoding.Pool

// NewEncoderPool builds a concurrent encoding pool; workers ≤ 0 means
// GOMAXPROCS.
func NewEncoderPool(kind EncodingKind, cfg EncoderConfig, workers int) (*EncoderPool, error) {
	return encoding.NewPool(kind, cfg, workers)
}

// Model is a trained HDC classification model.
type Model = classifier.Model

// TrainOptions configures HDC training; zero values take the paper's
// defaults (20 retraining epochs, 16-bit classes).
type TrainOptions = classifier.Options

// SubNormGranularity is the dimension granularity of the norm2 memory's
// sub-norms (on-demand dimension reduction, §4.3.3).
const SubNormGranularity = classifier.SubNormGranularity

// Train builds a model from pre-encoded hypervectors.
func Train(encoded []Hypervector, labels []int, classes int, opt TrainOptions) *Model {
	m, _ := classifier.TrainEncoded(encoded, labels, classes, opt)
	return m
}

// Pipeline couples an encoder with a model, providing the end-to-end API a
// downstream application uses.
//
// Concurrency: a trained pipeline is safe for concurrent Predict,
// PredictReduced, and the batch scoring methods — each goroutine draws a
// private encoder clone plus scratch hypervector from an internal pool
// (encoders carry scratch state, so sharing one across goroutines would
// corrupt encodings). Methods that mutate state — Fit, Adapt, Quantize —
// require exclusive access.
type Pipeline struct {
	enc     Encoder
	model   *Model
	classes int
	// states pools per-goroutine (encoder clone, scratch) pairs so Predict
	// is safe and allocation-free under concurrency. Clones are built from
	// enc's configuration and carry identical hypervector material, so
	// every state produces bit-identical encodings.
	states sync.Pool
}

// pipeState is the per-goroutine working set of a Pipeline: an encoder
// clone (encoders are not concurrency-safe) and a scratch hypervector.
type pipeState struct {
	enc     Encoder
	scratch Hypervector
}

// NewPipeline creates an untrained pipeline for the given class count.
func NewPipeline(enc Encoder, classes int) *Pipeline {
	p := &Pipeline{enc: enc, classes: classes}
	p.states.New = func() any {
		return &pipeState{enc: encoding.MustNew(enc.Kind(), enc.Config()), scratch: hdc.NewVec(enc.D())}
	}
	// Seed the pool with the primary encoder so single-goroutine use never
	// builds a clone.
	p.states.Put(&pipeState{enc: enc, scratch: hdc.NewVec(enc.D())})
	return p
}

// Encoder returns the pipeline's encoder; Model its trained model (nil
// before Fit).
func (p *Pipeline) Encoder() Encoder { return p.enc }
func (p *Pipeline) Model() *Model    { return p.model }

// Fit encodes the training set and trains the model (initialization plus
// retraining, Fig. 1). The encoding and initialization phases fan out
// across opt.Workers workers (0 means GOMAXPROCS, 1 forces serial); the
// trained model is bit-identical for every worker count. It returns the
// number of mispredictions in the final retraining epoch (0 means
// converged).
func (p *Pipeline) Fit(X [][]float64, Y []int, opt TrainOptions) int {
	encoded := encoding.EncodeAllWorkers(p.enc, X, opt.Workers)
	m, last := classifier.TrainEncoded(encoded, Y, p.classes, opt)
	p.model = m
	return last
}

// Predict classifies one input. Safe for concurrent use on a trained
// pipeline.
func (p *Pipeline) Predict(x []float64) int {
	p.mustBeTrained()
	st := p.states.Get().(*pipeState)
	st.enc.Encode(x, st.scratch)
	c, _ := p.model.Predict(st.scratch)
	p.states.Put(st)
	return c
}

// PredictBatch classifies a batch of inputs across workers workers (≤ 0
// means GOMAXPROCS, 1 is serial), returning predictions in input order —
// bit-identical to calling Predict per input.
func (p *Pipeline) PredictBatch(X [][]float64, workers int) []int {
	p.mustBeTrained()
	encoded := encoding.EncodeAllWorkers(p.enc, X, workers)
	return p.model.PredictBatch(encoded, workers)
}

// PredictReduced classifies using only the first dims dimensions with the
// updated sub-norms — the accelerator's on-demand dimension reduction.
// Safe for concurrent use on a trained pipeline.
func (p *Pipeline) PredictReduced(x []float64, dims int) int {
	p.mustBeTrained()
	st := p.states.Get().(*pipeState)
	st.enc.Encode(x, st.scratch)
	c, _ := p.model.PredictDims(st.scratch, dims, true)
	p.states.Put(st)
	return c
}

// Adapt performs one online-learning step: classify x and, when the
// prediction disagrees with label, apply the retraining update. It returns
// the pre-update prediction and whether the model changed — the streaming
// lifelong-learning path of the paper's IoT-gateway scenario. Adapt mutates
// the model and therefore requires exclusive access.
func (p *Pipeline) Adapt(x []float64, label int) (pred int, updated bool) {
	p.mustBeTrained()
	st := p.states.Get().(*pipeState)
	st.enc.Encode(x, st.scratch)
	pred, updated = p.model.Adapt(st.scratch, label)
	p.states.Put(st)
	return pred, updated
}

// Accuracy scores the pipeline on a labelled set.
func (p *Pipeline) Accuracy(X [][]float64, Y []int) float64 {
	return p.AccuracyWorkers(X, Y, 1)
}

// accuracyBlock bounds how many samples AccuracyWorkers encodes at once, so
// scoring a large set streams through a constant memory footprint instead
// of materializing every hypervector.
const accuracyBlock = 2048

// AccuracyWorkers scores the pipeline on a labelled set with encoding and
// scoring fanned across workers workers (≤ 0 means GOMAXPROCS). Samples
// stream through in bounded blocks; the result is bit-identical to
// Accuracy.
func (p *Pipeline) AccuracyWorkers(X [][]float64, Y []int, workers int) float64 {
	p.mustBeTrained()
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for lo := 0; lo < len(X); lo += accuracyBlock {
		hi := lo + accuracyBlock
		if hi > len(X) {
			hi = len(X)
		}
		encoded := encoding.EncodeAllWorkers(p.enc, X[lo:hi], workers)
		preds := p.model.PredictBatch(encoded, workers)
		for i, pred := range preds {
			if pred == Y[lo+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(X))
}

// Quantize reduces the model's class bit-width (the accelerator's bw input).
func (p *Pipeline) Quantize(bw int) {
	p.mustBeTrained()
	p.model.Quantize(bw)
}

func (p *Pipeline) mustBeTrained() {
	if p.model == nil {
		panic("generic: pipeline used before Fit")
	}
}

// ClusterResult is the outcome of HDC clustering.
type ClusterResult = cluster.HDCResult

// Cluster runs k-centroid HDC clustering over raw inputs using the given
// encoder (§2.1/§4.2.3), serially.
func Cluster(enc Encoder, X [][]float64, k, epochs int) *ClusterResult {
	return ClusterWorkers(enc, X, k, epochs, 1)
}

// ClusterWorkers is Cluster with encoding and the per-epoch assignment
// scans fanned across workers workers (≤ 0 means GOMAXPROCS, 1 is serial).
// Assignments and centroids are bit-identical to Cluster: within an epoch
// the centroid model is frozen, so workers score independently and their
// partial centroid bundles merge in worker order.
func ClusterWorkers(enc Encoder, X [][]float64, k, epochs, workers int) *ClusterResult {
	encoded := encoding.EncodeAllWorkers(enc, X, workers)
	return cluster.HDCWorkers(encoded, k, epochs, workers)
}

// KMeans exposes the classical baseline clusterer (Lloyd's algorithm with
// k-means++ seeding and restarts).
func KMeans(X [][]float64, k, maxIter, restarts int, seed uint64) *cluster.KMeansResult {
	return cluster.KMeansBest(X, k, maxIter, restarts, seed)
}

// NMI is the normalized mutual information between two labelings.
func NMI(a, b []int) float64 { return metrics.NMI(a, b) }

// ---------------------------------------------------------------------------
// Hardware model.

// Spec mirrors the accelerator's spec port (§4.1).
type Spec = sim.Spec

// Accelerator is the cycle-level model of the GENERIC ASIC.
type Accelerator = sim.Accelerator

// Stats is the accelerator's activity accounting.
type Stats = sim.Stats

// Hardware operation modes.
const (
	ModeInference = sim.Inference
	ModeTrain     = sim.Train
	ModeCluster   = sim.Cluster
)

// NewAccelerator builds an accelerator with the given quantization range.
func NewAccelerator(spec Spec, seed uint64, lo, hi float64) (*Accelerator, error) {
	return sim.NewWithRange(spec, seed, lo, hi)
}

// PowerConfig selects the energy-reduction state for Energy.
type PowerConfig = power.Config

// EnergyReport is the energy accounting of a simulated workload.
type EnergyReport = power.Report

// Energy turns accelerator statistics into joules under the given
// configuration (gating, voltage over-scaling, bit-width masking).
func Energy(st Stats, cfg PowerConfig) EnergyReport {
	return power.Energy(st, cfg)
}

// VOSForBER returns the voltage-over-scaling operating point for a target
// class-memory bit-error rate (§4.3.4).
func VOSForBER(ber float64) power.VOSPoint { return power.VOSForBER(ber) }

// StaticPowerW returns the accelerator's static power in watts under the
// given gating/voltage configuration (0.25 mW worst case; ~0.09 mW at the
// benchmarks' average bank occupancy).
func StaticPowerW(cfg PowerConfig) float64 { return power.StaticPowerW(cfg) }

// ActivityTimeline records the accelerator's per-phase activity when
// installed via Accelerator.SetTracer; it renders utilization summaries,
// ASCII occupancy strips, and VCD waveforms.
type ActivityTimeline = trace.Timeline

// ---------------------------------------------------------------------------
// Benchmarks.

// Dataset is a synthetic classification benchmark (see internal/dataset for
// the construction each benchmark uses).
type Dataset = dataset.Dataset

// ClusterSet is a synthetic clustering benchmark.
type ClusterSet = dataset.ClusterSet

// Datasets returns the names of the eleven classification benchmarks of
// Table 1; ClusterSets the clustering benchmarks of Table 2 / Figure 10.
func Datasets() []string    { return dataset.Names() }
func ClusterSets() []string { return dataset.ClusterNames() }

// LoadDataset generates the named classification benchmark.
func LoadDataset(name string, seed uint64) (*Dataset, error) {
	return dataset.Load(name, seed)
}

// LoadClusterSet generates the named clustering benchmark.
func LoadClusterSet(name string, seed uint64) (*ClusterSet, error) {
	return dataset.LoadCluster(name, seed)
}

// CSVOptions controls parsing of labelled CSV data (label column +
// float features), the format cmd/generic-datagen emits.
type CSVOptions = dataset.CSVOptions

// LoadCSV parses a labelled CSV file into a Dataset, so the pipeline can
// run on real data alongside the synthetic benchmarks.
func LoadCSV(path string, opt CSVOptions) (*Dataset, error) {
	return dataset.LoadCSVFile(path, opt)
}

// EncoderForDataset builds the encoder configuration the experiments use
// for a benchmark: the paper's defaults with the dataset's quantization
// range and its prescribed id setting.
func EncoderForDataset(kind EncodingKind, ds *Dataset, d int, seed uint64) (Encoder, error) {
	if ds == nil {
		return nil, fmt.Errorf("generic: nil dataset")
	}
	n := 3
	if ds.Features < n {
		n = ds.Features
	}
	return encoding.New(kind, encoding.Config{
		D: d, Features: ds.Features, Bins: 64, Lo: ds.Lo, Hi: ds.Hi,
		N: n, UseID: ds.UseID, Seed: seed,
	})
}
