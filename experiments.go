package generic

import (
	"fmt"

	"github.com/edge-hdc/generic/internal/experiments"
)

// ExperimentConfig controls the fidelity/runtime trade-off of the
// evaluation harness.
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig is the paper-fidelity configuration (D=4096, 20
// retraining epochs); QuickExperimentConfig shrinks the accuracy-oriented
// experiments so the whole suite runs in well under a minute.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }
func QuickExperimentConfig() ExperimentConfig   { return experiments.QuickConfig() }

// experimentOrder lists the experiment ids in the paper's order, followed
// by the ablation studies for design choices the paper fixes by experiment
// (window length n=3, per-window id binding, 64 level bins).
var experimentOrder = []string{
	"table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "table2", "fig10",
	"ablation-n", "ablation-id", "ablation-bins", "gating", "epochs", "resilience",
	"trainers",
}

// Experiments returns the ids accepted by RunExperiment, in paper order.
func Experiments() []string {
	out := make([]string, len(experimentOrder))
	copy(out, experimentOrder)
	return out
}

// RunExperiment regenerates one table or figure of the paper's evaluation
// and returns a result that renders the paper-style table via String().
func RunExperiment(id string, cfg ExperimentConfig) (fmt.Stringer, error) {
	switch id {
	case "table1":
		return experiments.Table1(cfg)
	case "table2":
		return experiments.Table2(cfg)
	case "fig3":
		return experiments.Figure3(cfg)
	case "fig5":
		return experiments.Figure5(cfg)
	case "fig6":
		return experiments.Figure6(cfg)
	case "fig7":
		return experiments.Figure7(cfg)
	case "fig8":
		return experiments.Figure8(cfg)
	case "fig9":
		return experiments.Figure9(cfg)
	case "fig10":
		return experiments.Figure10(cfg)
	case "ablation-n":
		return experiments.AblationWindow(cfg)
	case "ablation-id":
		return experiments.AblationID(cfg)
	case "ablation-bins":
		return experiments.AblationBins(cfg)
	case "gating":
		return experiments.PowerGating(cfg)
	case "epochs":
		return experiments.EpochSaturation(cfg)
	case "resilience":
		return experiments.Resilience(cfg)
	case "trainers":
		return experiments.Trainers(cfg)
	}
	return nil, fmt.Errorf("generic: unknown experiment %q (known: %v)", id, experimentOrder)
}
