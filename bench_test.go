package generic_test

// One benchmark per table/figure of the paper's evaluation (DESIGN.md §4):
// each bench regenerates its experiment end to end under the Quick
// configuration, so `go test -bench=.` exercises every harness. Reported
// ns/op is the harness runtime, not a claim about the modeled hardware —
// the modeled energy/latency numbers are what the experiments print (see
// cmd/generic-bench and EXPERIMENTS.md).

import (
	"testing"

	generic "github.com/edge-hdc/generic"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := generic.QuickExperimentConfig()
	for i := 0; i < b.N; i++ {
		if _, err := generic.RunExperiment(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFigure3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }

// Ablation benches for the design choices DESIGN.md calls out.
func BenchmarkAblationWindow(b *testing.B) { benchExperiment(b, "ablation-n") }
func BenchmarkAblationID(b *testing.B)     { benchExperiment(b, "ablation-id") }
func BenchmarkAblationBins(b *testing.B)   { benchExperiment(b, "ablation-bins") }

// Micro-benches on the public API: the hot paths a downstream user hits.

func quickEncoder(b *testing.B, kind generic.EncodingKind) generic.Encoder {
	b.Helper()
	enc, err := generic.NewEncoder(kind, generic.EncoderConfig{
		D: 4096, Features: 128, Lo: 0, Hi: 1, UseID: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

func benchInput() []float64 {
	x := make([]float64, 128)
	for i := range x {
		x[i] = float64(i%17) / 17
	}
	return x
}

func BenchmarkEncodeGeneric4K(b *testing.B) {
	enc := quickEncoder(b, generic.Generic)
	x := benchInput()
	out := make(generic.Hypervector, enc.D())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(x, out)
	}
}

func BenchmarkEncodeLevelID4K(b *testing.B) {
	enc := quickEncoder(b, generic.LevelID)
	x := benchInput()
	out := make(generic.Hypervector, enc.D())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(x, out)
	}
}

func BenchmarkPipelinePredict(b *testing.B) {
	ds, err := generic.LoadDataset("EEG", 1)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := generic.EncoderForDataset(generic.Generic, ds, 2048, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := generic.NewPipeline(enc, ds.Classes)
	if _, err := p.Fit(ds.TrainX[:200], ds.TrainY[:200], generic.TrainOptions{Epochs: 2, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(ds.TestX[i%ds.TestLen()])
	}
}

func BenchmarkAcceleratorInfer(b *testing.B) {
	ds, err := generic.LoadDataset("EEG", 1)
	if err != nil {
		b.Fatal(err)
	}
	spec := generic.Spec{
		D: 2048, Features: ds.Features, N: 3, Classes: ds.Classes,
		BW: 16, UseID: ds.UseID,
	}
	acc, err := generic.NewAccelerator(spec, 1, ds.Lo, ds.Hi)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Infer(ds.TestX[i%ds.TestLen()])
	}
}

// Serial-versus-parallel benches for the batch-first paths. Each pair runs
// the identical workload with Workers: 1 and Workers: 0 (= GOMAXPROCS), so
// `go test -bench 'Serial|Parallel' -cpu 1,4` shows how the chunked worker
// pool scales. Results are bit-identical either way; only wall-clock moves.

func benchBatchSetup(b *testing.B) (generic.Encoder, [][]float64, []int) {
	b.Helper()
	ds, err := generic.LoadDataset("EEG", 1)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := generic.EncoderForDataset(generic.Generic, ds, 2048, 1)
	if err != nil {
		b.Fatal(err)
	}
	n := 400
	if ds.TrainLen() < n {
		n = ds.TrainLen()
	}
	return enc, ds.TrainX[:n], ds.TrainY[:n]
}

func benchEncodeBatch(b *testing.B, workers int) {
	enc, X, _ := benchBatchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		generic.EncodeWorkers(enc, X, workers)
	}
}

func BenchmarkEncodeBatchSerial(b *testing.B)   { benchEncodeBatch(b, 1) }
func BenchmarkEncodeBatchParallel(b *testing.B) { benchEncodeBatch(b, 0) }

func benchFit(b *testing.B, workers int) {
	enc, X, Y := benchBatchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := generic.NewPipeline(enc, 6)
		if _, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 3, Seed: 1, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitSerial(b *testing.B)   { benchFit(b, 1) }
func BenchmarkFitParallel(b *testing.B) { benchFit(b, 0) }

func benchEvaluate(b *testing.B, workers int) {
	enc, X, Y := benchBatchSetup(b)
	p := generic.NewPipeline(enc, 6)
	if _, err := p.Fit(X, Y, generic.TrainOptions{Epochs: 2, Seed: 1, Workers: workers}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AccuracyWorkers(X, Y, workers)
	}
}

func BenchmarkEvaluateSerial(b *testing.B)   { benchEvaluate(b, 1) }
func BenchmarkEvaluateParallel(b *testing.B) { benchEvaluate(b, 0) }

func benchCluster(b *testing.B, workers int) {
	cs, err := generic.LoadClusterSet("Hepta", 1)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 1024, Features: cs.Features, Bins: 32, Lo: cs.Lo, Hi: cs.Hi,
		N: cs.Features, UseID: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		generic.ClusterWorkers(enc, cs.X, cs.K, 5, workers)
	}
}

func BenchmarkClusterSerial(b *testing.B)   { benchCluster(b, 1) }
func BenchmarkClusterParallel(b *testing.B) { benchCluster(b, 0) }

func BenchmarkHDCClusterHepta(b *testing.B) {
	cs, err := generic.LoadClusterSet("Hepta", 1)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := generic.NewEncoder(generic.Generic, generic.EncoderConfig{
		D: 1024, Features: cs.Features, Bins: 32, Lo: cs.Lo, Hi: cs.Hi,
		N: cs.Features, UseID: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		generic.Cluster(enc, cs.X, cs.K, 5)
	}
}
